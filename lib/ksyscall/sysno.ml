(* First-class syscall numbers.  One constructor per system call the
   simulated kernel offers, including the consolidated calls of §2.2.
   The numbering of the first fifteen matches the Cosy compound
   encoding's fixed syscall table, so a compound's integer sysno and a
   [Sysno.t] agree on the wire. *)

type t =
  | Open
  | Close
  | Read
  | Write
  | Pread
  | Pwrite
  | Lseek
  | Stat
  | Fstat
  | Readdir
  | Mkdir
  | Unlink
  | Rename
  | Fsync
  | Getpid
  (* consolidated calls (§2.2) *)
  | Readdirplus
  | Open_read_close
  | Open_write_close
  | Sendfile
  | Open_fstat
  (* knet sockets *)
  | Socket
  | Bind
  | Listen
  | Accept
  | Recv
  | Send
  | Epoll_create
  | Epoll_ctl
  | Epoll_wait
  (* consolidated / zero-copy network calls (§2.2, §2.3) *)
  | Accept_recv
  | Recv_send
  | Sendfile_sock

let all =
  [
    Open; Close; Read; Write; Pread; Pwrite; Lseek; Stat; Fstat; Readdir;
    Mkdir; Unlink; Rename; Fsync; Getpid; Readdirplus; Open_read_close;
    Open_write_close; Sendfile; Open_fstat; Socket; Bind; Listen; Accept;
    Recv; Send; Epoll_create; Epoll_ctl; Epoll_wait; Accept_recv; Recv_send;
    Sendfile_sock;
  ]

let to_int = function
  | Open -> 0
  | Close -> 1
  | Read -> 2
  | Write -> 3
  | Pread -> 4
  | Pwrite -> 5
  | Lseek -> 6
  | Stat -> 7
  | Fstat -> 8
  | Readdir -> 9
  | Mkdir -> 10
  | Unlink -> 11
  | Rename -> 12
  | Fsync -> 13
  | Getpid -> 14
  | Readdirplus -> 15
  | Open_read_close -> 16
  | Open_write_close -> 17
  | Sendfile -> 18
  | Open_fstat -> 19
  | Socket -> 20
  | Bind -> 21
  | Listen -> 22
  | Accept -> 23
  | Recv -> 24
  | Send -> 25
  | Epoll_create -> 26
  | Epoll_ctl -> 27
  | Epoll_wait -> 28
  | Accept_recv -> 29
  | Recv_send -> 30
  | Sendfile_sock -> 31

let of_int = function
  | 0 -> Some Open
  | 1 -> Some Close
  | 2 -> Some Read
  | 3 -> Some Write
  | 4 -> Some Pread
  | 5 -> Some Pwrite
  | 6 -> Some Lseek
  | 7 -> Some Stat
  | 8 -> Some Fstat
  | 9 -> Some Readdir
  | 10 -> Some Mkdir
  | 11 -> Some Unlink
  | 12 -> Some Rename
  | 13 -> Some Fsync
  | 14 -> Some Getpid
  | 15 -> Some Readdirplus
  | 16 -> Some Open_read_close
  | 17 -> Some Open_write_close
  | 18 -> Some Sendfile
  | 19 -> Some Open_fstat
  | 20 -> Some Socket
  | 21 -> Some Bind
  | 22 -> Some Listen
  | 23 -> Some Accept
  | 24 -> Some Recv
  | 25 -> Some Send
  | 26 -> Some Epoll_create
  | 27 -> Some Epoll_ctl
  | 28 -> Some Epoll_wait
  | 29 -> Some Accept_recv
  | 30 -> Some Recv_send
  | 31 -> Some Sendfile_sock
  | _ -> None

let to_string = function
  | Open -> "open"
  | Close -> "close"
  | Read -> "read"
  | Write -> "write"
  | Pread -> "pread"
  | Pwrite -> "pwrite"
  | Lseek -> "lseek"
  | Stat -> "stat"
  | Fstat -> "fstat"
  | Readdir -> "readdir"
  | Mkdir -> "mkdir"
  | Unlink -> "unlink"
  | Rename -> "rename"
  | Fsync -> "fsync"
  | Getpid -> "getpid"
  | Readdirplus -> "readdirplus"
  | Open_read_close -> "open_read_close"
  | Open_write_close -> "open_write_close"
  | Sendfile -> "sendfile"
  | Open_fstat -> "open_fstat"
  | Socket -> "socket"
  | Bind -> "bind"
  | Listen -> "listen"
  | Accept -> "accept"
  | Recv -> "recv"
  | Send -> "send"
  | Epoll_create -> "epoll_create"
  | Epoll_ctl -> "epoll_ctl"
  | Epoll_wait -> "epoll_wait"
  | Accept_recv -> "accept_recv"
  | Recv_send -> "recv_send"
  | Sendfile_sock -> "sendfile_sock"

let of_string s = List.find_opt (fun t -> to_string t = s) all

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare (to_int a) (to_int b)
let pp ppf t = Fmt.string ppf (to_string t)

(* True for the §2.2 consolidated calls that replace a syscall sequence. *)
let is_consolidated = function
  | Readdirplus | Open_read_close | Open_write_close | Sendfile | Open_fstat
  | Accept_recv | Recv_send | Sendfile_sock ->
      true
  | _ -> false
