(* User-level syscall wrappers.  Each wrapper crosses the user/kernel
   boundary (charging entry/exit), copies arguments and results across
   (charging per-byte costs), bumps the calling process's syscall count,
   and reports a trace record to any attached tracer.

   These are the "expensive" calls whose overhead the paper's both
   techniques — consolidation (§2.2) and Cosy (§2.3) — exist to avoid. *)

open Kvfs

let enter sys =
  let k = Systable.kernel sys in
  (* the libc stub, argument marshalling and errno handling run in user
     mode before and after the trap *)
  Ksim.Kernel.charge_user k (Ksim.Kernel.cost k).Ksim.Cost_model.user_stub;
  Ksim.Kernel.enter_kernel k;
  (Ksim.Kernel.current k).Ksim.Kproc.syscalls <-
    (Ksim.Kernel.current k).Ksim.Kproc.syscalls + 1

let exit sys = Ksim.Kernel.exit_kernel (Systable.kernel sys)

let path_bytes path = String.length path + 1

(* Wrap a service invocation with the boundary protocol.  [bytes_in] and
   [bytes_out] may depend on the result, so they are functions. *)
let wrap sys ~name ~arg ~bytes_in ~bytes_out f =
  let k = Systable.kernel sys in
  let t0 = Ksim.Kernel.now k in
  enter sys;
  let result =
    match f () with
    | r -> r
    | exception e ->
        exit sys;
        raise e
  in
  let bin = bytes_in result and bout = bytes_out result in
  if bin > 0 then Ksim.Kernel.charge_copy_from_user k bin;
  if bout > 0 then Ksim.Kernel.charge_copy_to_user k bout;
  Systable.record sys ~name ~arg ~bytes_in:bin ~bytes_out:bout
    ~ok:(match result with Ok _ -> true | Error _ -> false);
  exit sys;
  Systable.observe_latency sys ~name ~cycles:(Ksim.Kernel.now k - t0);
  result

let some_bytes f = function Ok v -> f v | Error _ -> 0

let sys_open sys ~path ~flags =
  wrap sys ~name:"open" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_open sys ~path ~flags)

let sys_close sys ~fd =
  wrap sys ~name:"close" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_close sys ~fd)

let sys_read sys ~fd ~len =
  wrap sys ~name:"read" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(some_bytes Bytes.length)
    (fun () -> Sys_file.service_read sys ~fd ~len)

let sys_write sys ~fd ~data =
  wrap sys ~name:"write" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> Bytes.length data)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_write sys ~fd ~data)

let sys_pread sys ~fd ~off ~len =
  wrap sys ~name:"pread" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(some_bytes Bytes.length)
    (fun () -> Sys_file.service_pread sys ~fd ~off ~len)

let sys_pwrite sys ~fd ~off ~data =
  wrap sys ~name:"pwrite" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> Bytes.length data)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_pwrite sys ~fd ~off ~data)

let sys_lseek sys ~fd ~off ~whence =
  wrap sys ~name:"lseek" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_lseek sys ~fd ~off ~whence)

let sys_stat sys ~path =
  wrap sys ~name:"stat" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(some_bytes (fun _ -> Vtypes.stat_wire_size))
    (fun () -> Sys_file.service_stat sys ~path)

let sys_fstat sys ~fd =
  wrap sys ~name:"fstat" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(some_bytes (fun _ -> Vtypes.stat_wire_size))
    (fun () -> Sys_file.service_fstat sys ~fd)

let dirents_bytes entries =
  List.fold_left (fun n d -> n + Vtypes.dirent_wire_size d) 0 entries

let sys_readdir sys ~path =
  wrap sys ~name:"readdir" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(some_bytes dirents_bytes)
    (fun () -> Sys_file.service_readdir sys ~path)

let sys_mkdir sys ~path =
  wrap sys ~name:"mkdir" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_mkdir sys ~path)

let sys_unlink sys ~path =
  wrap sys ~name:"unlink" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_unlink sys ~path)

let sys_rename sys ~src ~dst =
  wrap sys ~name:"rename" ~arg:(src ^ "->" ^ dst)
    ~bytes_in:(fun _ -> path_bytes src + path_bytes dst)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_rename sys ~src ~dst)

let sys_fsync sys ~fd =
  wrap sys ~name:"fsync" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Sys_file.service_fsync sys ~fd)

let sys_getpid sys =
  let k = Systable.kernel sys in
  enter sys;
  let pid = Sys_file.service_getpid sys in
  Systable.record sys ~name:"getpid" ~arg:"" ~bytes_in:0 ~bytes_out:0 ~ok:true;
  Ksim.Kernel.exit_kernel k;
  pid

(* --- consolidated wrappers (E1/E2) ------------------------------------- *)

let sys_readdirplus sys ~path =
  wrap sys ~name:"readdirplus" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:
      (some_bytes
         (List.fold_left
            (fun n (d, _st) ->
              n + Vtypes.dirent_wire_size d + Vtypes.stat_wire_size)
            0))
    (fun () -> Consolidated.service_readdirplus sys ~path)

let sys_open_read_close sys ~path ~maxlen =
  wrap sys ~name:"open_read_close" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(some_bytes Bytes.length)
    (fun () -> Consolidated.service_open_read_close sys ~path ~maxlen)

let sys_open_write_close sys ~path ~data ~flags =
  wrap sys ~name:"open_write_close" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path + Bytes.length data)
    ~bytes_out:(fun _ -> 0)
    (fun () -> Consolidated.service_open_write_close sys ~path ~data ~flags)

let sys_sendfile sys ~fd ~off ~len =
  wrap sys ~name:"sendfile" ~arg:(string_of_int fd)
    ~bytes_in:(fun _ -> 0)
    ~bytes_out:(fun _ -> 0) (* the point: data never crosses the boundary *)
    (fun () -> Consolidated.service_sendfile sys ~fd ~off ~len)

let sys_open_fstat sys ~path ~flags =
  wrap sys ~name:"open_fstat" ~arg:path
    ~bytes_in:(fun _ -> path_bytes path)
    ~bytes_out:(some_bytes (fun _ -> Vtypes.stat_wire_size))
    (fun () -> Consolidated.service_open_fstat sys ~path ~flags)
