(* User-level syscall dispatch.  Every call is a typed [Syscall.req]
   pushed through one generic [invoke]: the single choke point all four
   entry paths funnel through —

     Plain     the synchronous wrappers below: cross the boundary
               (charging entry/exit), run the in-kernel service routine,
               copy arguments and results across (charging per-byte
               costs), bump the syscall count, report a trace record;
     Ring      a drained kring entry: already in kernel mode, no
               crossing or copy charges (the batch pays those), but the
               call still counts, traces and lands in the histograms;
     Compound  a Cosy op: bare service dispatch, the compound's own
               bookkeeping wraps it.

   Interposition (kverify's syscall-flow gate) therefore happens in
   exactly one place, whichever way a request reaches the kernel.  The
   per-call functions below are thin builders over [invoke]; [dispatch]
   and [dispatch_in_kernel] survive as aliases so callers don't churn.

   These are the "expensive" calls whose overhead the paper's both
   techniques — consolidation (§2.2) and Cosy (§2.3) — exist to avoid;
   the kring subsystem batches many [Syscall.req]s through a single
   crossing using the same [service] routine. *)

let enter sys =
  let k = Systable.kernel sys in
  (* the libc stub, argument marshalling and errno handling run in user
     mode before and after the trap *)
  Ksim.Kernel.charge_user k (Ksim.Kernel.cost k).Ksim.Cost_model.user_stub;
  Ksim.Kernel.enter_kernel k;
  (Ksim.Kernel.current k).Ksim.Kproc.syscalls <-
    (Ksim.Kernel.current k).Ksim.Kproc.syscalls + 1

let exit sys = Ksim.Kernel.exit_kernel (Systable.kernel sys)

let path_bytes = Syscall.path_bytes

(* The in-kernel half of every syscall: map a typed request to its
   service routine.  Precondition: kernel mode.  No boundary or copy
   accounting happens here — [dispatch] (one crossing per call) and
   Kring.enter (one crossing per batch) layer that on differently. *)
let service sys (req : Syscall.req) : Syscall.reply =
  let open Syscall in
  let ok_int = Result.map (fun n -> R_int n) in
  let ok_unit = Result.map (fun () -> R_unit) in
  match req with
  | Open { path; flags } -> ok_int (Sys_file.service_open sys ~path ~flags)
  | Close { fd } -> ok_unit (Sys_file.service_close sys ~fd)
  | Read { fd; len } ->
      Result.map (fun b -> R_bytes b) (Sys_file.service_read sys ~fd ~len)
  | Write { fd; data } -> ok_int (Sys_file.service_write sys ~fd ~data)
  | Pread { fd; off; len } ->
      Result.map (fun b -> R_bytes b) (Sys_file.service_pread sys ~fd ~off ~len)
  | Pwrite { fd; off; data } ->
      ok_int (Sys_file.service_pwrite sys ~fd ~off ~data)
  | Lseek { fd; off; whence } ->
      ok_int (Sys_file.service_lseek sys ~fd ~off ~whence)
  | Stat { path } ->
      Result.map (fun st -> R_stat st) (Sys_file.service_stat sys ~path)
  | Fstat { fd } ->
      Result.map (fun st -> R_stat st) (Sys_file.service_fstat sys ~fd)
  | Readdir { path } ->
      Result.map (fun es -> R_dirents es) (Sys_file.service_readdir sys ~path)
  | Mkdir { path } -> ok_int (Sys_file.service_mkdir sys ~path)
  | Unlink { path } -> ok_unit (Sys_file.service_unlink sys ~path)
  | Rename { src; dst } -> ok_unit (Sys_file.service_rename sys ~src ~dst)
  | Fsync { fd } -> ok_unit (Sys_file.service_fsync sys ~fd)
  | Getpid -> Ok (R_int (Sys_file.service_getpid sys))
  | Readdirplus { path } ->
      Result.map
        (fun es -> R_dirents_stats es)
        (Consolidated.service_readdirplus sys ~path)
  | Open_read_close { path; maxlen } ->
      Result.map
        (fun b -> R_bytes b)
        (Consolidated.service_open_read_close sys ~path ~maxlen)
  | Open_write_close { path; data; flags } ->
      ok_int (Consolidated.service_open_write_close sys ~path ~data ~flags)
  | Sendfile { fd; off; len } ->
      ok_int (Consolidated.service_sendfile sys ~fd ~off ~len)
  | Open_fstat { path; flags } ->
      Result.map
        (fun (fd, stat) -> R_fd_stat { fd; stat })
        (Consolidated.service_open_fstat sys ~path ~flags)
  | Socket -> Ok (R_int (Sys_net.service_socket sys))
  | Bind { sock; port } -> ok_unit (Sys_net.service_bind sys ~sock ~port)
  | Listen { sock; backlog } ->
      ok_unit (Sys_net.service_listen sys ~sock ~backlog)
  | Accept { sock } -> ok_int (Sys_net.service_accept sys ~sock)
  | Recv { sock; len } ->
      Result.map (fun b -> R_bytes b) (Sys_net.service_recv sys ~sock ~len)
  | Send { sock; data } -> ok_int (Sys_net.service_send sys ~sock ~data)
  | Epoll_create -> Ok (R_int (Sys_net.service_epoll_create sys))
  | Epoll_ctl { ep; sock; add; mask; cookie } ->
      ok_unit (Sys_net.service_epoll_ctl sys ~ep ~sock ~add ~mask ~cookie)
  | Epoll_wait { ep; max } ->
      Result.map
        (fun ready -> R_ready ready)
        (Sys_net.service_epoll_wait sys ~ep ~max)
  | Accept_recv { sock; len } ->
      Result.map
        (fun (fd, data) -> R_fd_bytes { fd; data })
        (Sys_net.service_accept_recv sys ~sock ~len)
  | Recv_send { sock; len; data } ->
      Result.map
        (fun (n, received) -> R_int_bytes { n; data = received })
        (Sys_net.service_recv_send sys ~sock ~len ~data)
  | Sendfile_sock { sock; fd; off; len } ->
      ok_int (Sys_net.service_sendfile_sock sys ~sock ~fd ~off ~len)

(* How a request reached the dispatcher; decides which boundary/copy
   protocol [invoke] layers around [service]. *)
type origin =
  | Plain       (* synchronous wrapper: full boundary round trip *)
  | Ring        (* drained kring entry: already in kernel mode *)
  | Compound    (* Cosy op: bare service, compound does the accounting *)

(* Raised when the admission gate returns [Gate_kill]: the syscall-flow
   automaton saw a forbidden transition under the Kill policy.  On the
   Plain path the offender is already dead when this escapes; kring and
   Cosy catch it and kill the offender themselves, watchdog-style. *)
exception Flow_violation of { pid : int; sysno : Sysno.t }

(* Consult the admission gate (if any).  Precondition: kernel mode, so
   any cycles the gate charges land as system time.  The [None] branch
   is the entire cost of a disabled verifier. *)
let gate_decide sys sysno =
  match Systable.gate sys with
  | None -> Systable.Gate_allow
  | Some g ->
      let k = Systable.kernel sys in
      g ~pid:(Ksim.Kernel.current k).Ksim.Kproc.pid ~sysno

(* The single dispatch choke point. *)
let invoke ?(origin = Plain) sys (req : Syscall.req) : Syscall.reply =
  match origin with
  | Compound -> (
      (* the compound already crossed; per-op spans/accounting are the
         caller's.  Only the gate interposes before the service routine. *)
      let sysno = Syscall.sysno_of_req req in
      match gate_decide sys sysno with
      | Systable.Gate_allow -> service sys req
      | Systable.Gate_deny e -> Error e
      | Systable.Gate_kill ->
          let k = Systable.kernel sys in
          raise
            (Flow_violation
               { pid = (Ksim.Kernel.current k).Ksim.Kproc.pid; sysno }))
  | Ring ->
      (* a drained ring entry: no crossing, no copy charges — the batch
         accounts those — but the syscall still counts, traces, and
         lands in the latency histogram *)
      let k = Systable.kernel sys in
      let sysno = Syscall.sysno_of_req req in
      let t0 = Ksim.Kernel.now k in
      let perf = Ksim.Kernel.perf k in
      let pid = (Ksim.Kernel.current k).Ksim.Kproc.pid in
      let span =
        Kperf.span_begin perf ~pid ~cat:"syscall"
          ~name:(Sysno.to_string sysno) ()
      in
      (Ksim.Kernel.current k).Ksim.Kproc.syscalls <-
        (Ksim.Kernel.current k).Ksim.Kproc.syscalls + 1;
      let reply =
        match gate_decide sys sysno with
        | Systable.Gate_allow -> service sys req
        | Systable.Gate_deny e -> Error e
        | Systable.Gate_kill ->
            (* the ring's enter loop owns the kernel stay; let it unwind
               exactly like a watchdog expiry *)
            Kperf.span_end perf ~pid span;
            raise (Flow_violation { pid; sysno })
      in
      Systable.record sys ~sysno ~arg:(Syscall.arg_of_req req)
        ~bytes_in:0 ~bytes_out:0
        ~ok:(Result.is_ok reply);
      Systable.observe_latency sys ~sysno ~cycles:(Ksim.Kernel.now k - t0);
      Kperf.span_end perf ~pid span;
      reply
  | Plain ->
      (* the generic synchronous path: one request, one round trip *)
      let k = Systable.kernel sys in
      let sysno = Syscall.sysno_of_req req in
      let t0 = Ksim.Kernel.now k in
      let perf = Ksim.Kernel.perf k in
      let pid = (Ksim.Kernel.current k).Ksim.Kproc.pid in
      (* the span covers the whole round trip, entry trap to exit, so its
         self time in a flamegraph is exactly the boundary-crossing tax
         the paper's techniques exist to amortize *)
      let span =
        Kperf.span_begin perf ~pid ~cat:"syscall"
          ~name:(Sysno.to_string sysno) ()
      in
      enter sys;
      let denied =
        match gate_decide sys sysno with
        | Systable.Gate_allow -> None
        | Systable.Gate_deny e -> Some e
        | Systable.Gate_kill ->
            (* account the boundary exit, then kill — the same order the
               Cosy watchdog uses.  Kernel.reap is Scheduler.kill unless
               a kcrash reaper is installed, in which case the
               offender's resources are reaped too. *)
            let offender = Ksim.Kernel.current k in
            exit sys;
            Ksim.Kernel.reap k offender ~reason:"flow-gate";
            Kperf.span_end perf ~pid span;
            raise (Flow_violation { pid; sysno })
      in
      (* Injected boundary faults, consulted once the gate has allowed
         the request but before any work happens.

         EINTR restart: a signal lands during the entry path; like
         ERESTARTSYS, the kernel returns to user mode and the libc stub
         transparently re-issues the call — a full exit/enter round
         trip charged per restart (retry.eintr_restarts).  A plan
         hammering the site eventually exhausts the restart budget and
         the interruption surfaces as a clean [Error EINTR].

         Spurious EAGAIN: the wakeup raced the readiness check.  Only
         injected on [Recv]/[Accept] — the calls whose contract already
         includes would-block — so callers' existing retry loops absorb
         it (retry.eagain_injected). *)
      let denied =
        match denied with
        | Some _ -> denied
        | None ->
            let fa = Systable.fault sys in
            let rec restart n =
              if not (Kfault.fire fa (Systable.eintr_site sys)) then None
              else begin
                Systable.count_eintr_restart sys;
                Kperf.instant perf ~pid ~cat:"retry" ~name:"eintr_restart" ();
                exit sys;
                enter sys;
                if n + 1 >= 8 then Some Kvfs.Vtypes.EINTR
                else restart (n + 1)
              end
            in
            let eintr = restart 0 in
            if eintr <> None then eintr
            else begin
              match req with
              | Syscall.Recv _ | Syscall.Accept _
                when Kfault.fire fa (Systable.eagain_site sys) ->
                  Systable.count_eagain_injected sys;
                  Some Kvfs.Vtypes.EAGAIN
              | _ -> None
            end
      in
      let reply =
        match denied with
        | Some e -> Error e   (* rejected before argument copy-in *)
        | None -> (
            match service sys req with
            | r -> r
            | exception e -> (
                exit sys;
                Kperf.span_end perf ~pid span;
                match e with
                | Ksim.Fault.Fault _ when Ksim.Kernel.has_reaper k ->
                    (* oops containment: a kernel-mode memory fault that
                       would have been a panic kills and reaps only the
                       offender; the caller sees a contained Oops
                       instead of the raw fault *)
                    let offender = Ksim.Kernel.current k in
                    Ksim.Kernel.reap k offender
                      ~reason:
                        (Printf.sprintf "fault in %s" (Sysno.to_string sysno));
                    raise (Ksim.Kernel.Oops { pid; reason = "memory fault" })
                | _ -> raise e))
      in
      let bin =
        match denied with Some _ -> 0 | None -> Syscall.req_copy_bytes req
      and bout = Syscall.reply_copy_bytes reply in
      if bin > 0 then Ksim.Kernel.charge_copy_from_user k bin;
      if bout > 0 then Ksim.Kernel.charge_copy_to_user k bout;
      Systable.record sys ~sysno ~arg:(Syscall.arg_of_req req) ~bytes_in:bin
        ~bytes_out:bout
        ~ok:(Result.is_ok reply);
      exit sys;
      Systable.observe_latency sys ~sysno ~cycles:(Ksim.Kernel.now k - t0);
      Kperf.span_end perf ~pid span;
      reply

(* Historical entry points, now thin aliases over the choke point. *)
let dispatch sys req = invoke ~origin:Plain sys req
let dispatch_in_kernel sys req = invoke ~origin:Ring sys req

(* --- reply extractors --------------------------------------------------- *)

(* The builders preserve the historical per-call result types; a shape
   mismatch would mean [service] broke its own contract. *)
let int_ok = function
  | Ok (Syscall.R_int n) -> Ok n
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_int"

let unit_ok = function
  | Ok Syscall.R_unit -> Ok ()
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_unit"

let bytes_ok = function
  | Ok (Syscall.R_bytes b) -> Ok b
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_bytes"

let stat_ok = function
  | Ok (Syscall.R_stat st) -> Ok st
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_stat"

let dirents_ok = function
  | Ok (Syscall.R_dirents es) -> Ok es
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_dirents"

let dirents_stats_ok = function
  | Ok (Syscall.R_dirents_stats es) -> Ok es
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_dirents_stats"

let fd_stat_ok = function
  | Ok (Syscall.R_fd_stat { fd; stat }) -> Ok (fd, stat)
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_fd_stat"

let ready_ok = function
  | Ok (Syscall.R_ready r) -> Ok r
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_ready"

let fd_bytes_ok = function
  | Ok (Syscall.R_fd_bytes { fd; data }) -> Ok (fd, data)
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_fd_bytes"

let int_bytes_ok = function
  | Ok (Syscall.R_int_bytes { n; data }) -> Ok (n, data)
  | Error e -> Error e
  | Ok _ -> invalid_arg "Usyscall: expected R_int_bytes"

(* --- thin per-call builders --------------------------------------------- *)

let sys_open sys ~path ~flags = int_ok (dispatch sys (Syscall.Open { path; flags }))
let sys_close sys ~fd = unit_ok (dispatch sys (Syscall.Close { fd }))
let sys_read sys ~fd ~len = bytes_ok (dispatch sys (Syscall.Read { fd; len }))
let sys_write sys ~fd ~data = int_ok (dispatch sys (Syscall.Write { fd; data }))

let sys_pread sys ~fd ~off ~len =
  bytes_ok (dispatch sys (Syscall.Pread { fd; off; len }))

let sys_pwrite sys ~fd ~off ~data =
  int_ok (dispatch sys (Syscall.Pwrite { fd; off; data }))

let sys_lseek sys ~fd ~off ~whence =
  int_ok (dispatch sys (Syscall.Lseek { fd; off; whence }))

let sys_stat sys ~path = stat_ok (dispatch sys (Syscall.Stat { path }))
let sys_fstat sys ~fd = stat_ok (dispatch sys (Syscall.Fstat { fd }))
let sys_readdir sys ~path = dirents_ok (dispatch sys (Syscall.Readdir { path }))
let sys_mkdir sys ~path = int_ok (dispatch sys (Syscall.Mkdir { path }))
let sys_unlink sys ~path = unit_ok (dispatch sys (Syscall.Unlink { path }))
let sys_rename sys ~src ~dst = unit_ok (dispatch sys (Syscall.Rename { src; dst }))
let sys_fsync sys ~fd = unit_ok (dispatch sys (Syscall.Fsync { fd }))

(* getpid cannot fail; routed through [dispatch] like everything else so
   it shows up in the latency histograms. *)
let sys_getpid sys =
  match int_ok (dispatch sys Syscall.Getpid) with
  | Ok pid -> pid
  | Error _ -> assert false

(* --- consolidated wrappers (E1/E2) ------------------------------------- *)

let sys_readdirplus sys ~path =
  dirents_stats_ok (dispatch sys (Syscall.Readdirplus { path }))

let sys_open_read_close sys ~path ~maxlen =
  bytes_ok (dispatch sys (Syscall.Open_read_close { path; maxlen }))

let sys_open_write_close sys ~path ~data ~flags =
  int_ok (dispatch sys (Syscall.Open_write_close { path; data; flags }))

let sys_sendfile sys ~fd ~off ~len =
  int_ok (dispatch sys (Syscall.Sendfile { fd; off; len }))

let sys_open_fstat sys ~path ~flags =
  fd_stat_ok (dispatch sys (Syscall.Open_fstat { path; flags }))

(* --- socket wrappers (knet) --------------------------------------------- *)

let sys_socket sys =
  match int_ok (dispatch sys Syscall.Socket) with
  | Ok fd -> fd
  | Error _ -> assert false

let sys_bind sys ~sock ~port = unit_ok (dispatch sys (Syscall.Bind { sock; port }))

let sys_listen sys ~sock ~backlog =
  unit_ok (dispatch sys (Syscall.Listen { sock; backlog }))

let sys_accept sys ~sock = int_ok (dispatch sys (Syscall.Accept { sock }))
let sys_recv sys ~sock ~len = bytes_ok (dispatch sys (Syscall.Recv { sock; len }))
let sys_send sys ~sock ~data = int_ok (dispatch sys (Syscall.Send { sock; data }))

let sys_epoll_create sys =
  match int_ok (dispatch sys Syscall.Epoll_create) with
  | Ok fd -> fd
  | Error _ -> assert false

let sys_epoll_ctl sys ~ep ~sock ~add ~mask ~cookie =
  unit_ok (dispatch sys (Syscall.Epoll_ctl { ep; sock; add; mask; cookie }))

let sys_epoll_wait sys ~ep ~max =
  ready_ok (dispatch sys (Syscall.Epoll_wait { ep; max }))

let sys_accept_recv sys ~sock ~len =
  fd_bytes_ok (dispatch sys (Syscall.Accept_recv { sock; len }))

let sys_recv_send sys ~sock ~len ~data =
  int_bytes_ok (dispatch sys (Syscall.Recv_send { sock; len; data }))

let sys_sendfile_sock sys ~sock ~fd ~off ~len =
  int_ok (dispatch sys (Syscall.Sendfile_sock { sock; fd; off; len }))

let dirents_bytes = Syscall.dirents_bytes
