(* In-kernel service routines.  Precondition: the kernel is in kernel
   mode (Usyscall guarantees this for normal processes; Cosy_exec calls
   these directly from its decode loop).  All fd bookkeeping goes through
   the current process's descriptor table, so compounds and plain
   processes see the same descriptors — "the system call invocation by
   the Cosy kernel module is the same as a normal process and hence all
   the necessary checks are performed" (§2.3). *)

open Kvfs

let fd_err = Error Vtypes.EBADF

let check_kernel_mode sys =
  if Ksim.Kernel.mode (Systable.kernel sys) <> Ksim.Kernel.Kernel_mode then
    raise (Ksim.Kernel.Kernel_mode_violation "service routine in user mode")

let handle_of_fd sys fd =
  let p = Ksim.Kernel.current (Systable.kernel sys) in
  match Ksim.Kproc.lookup_fd p fd with
  | Some h -> Ok h
  | None -> fd_err

let service_open sys ~path ~flags =
  check_kernel_mode sys;
  match Vfs.open_file (Systable.vfs sys) path flags with
  | Error e -> Error e
  | Ok handle ->
      let p = Ksim.Kernel.current (Systable.kernel sys) in
      Ok (Ksim.Kproc.alloc_fd p handle)

let service_close sys ~fd =
  check_kernel_mode sys;
  let p = Ksim.Kernel.current (Systable.kernel sys) in
  match Ksim.Kproc.release_fd p fd with
  | None -> fd_err
  | Some handle ->
      (* fds above [Knet.handle_base] are sockets, not VFS files *)
      if handle >= Knet.handle_base then begin
        Knet.close (Systable.net sys) ~sock:(handle - Knet.handle_base);
        Ok ()
      end
      else Vfs.close (Systable.vfs sys) handle

let service_read sys ~fd ~len =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.read (Systable.vfs sys) h len

let service_write sys ~fd ~data =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.write (Systable.vfs sys) h data

let service_pread sys ~fd ~off ~len =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.pread (Systable.vfs sys) h ~off ~len

let service_pwrite sys ~fd ~off ~data =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.pwrite (Systable.vfs sys) h ~off ~data

let service_lseek sys ~fd ~off ~whence =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.lseek (Systable.vfs sys) h ~off ~whence

let service_fstat sys ~fd =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.fstat (Systable.vfs sys) h

let service_stat sys ~path =
  check_kernel_mode sys;
  Vfs.stat (Systable.vfs sys) path

let service_readdir sys ~path =
  check_kernel_mode sys;
  Vfs.readdir (Systable.vfs sys) path

let service_mkdir sys ~path =
  check_kernel_mode sys;
  Vfs.mkdir (Systable.vfs sys) path

let service_unlink sys ~path =
  check_kernel_mode sys;
  Vfs.unlink (Systable.vfs sys) path

let service_rename sys ~src ~dst =
  check_kernel_mode sys;
  Vfs.rename (Systable.vfs sys) ~src ~dst

let service_fsync sys ~fd =
  check_kernel_mode sys;
  match handle_of_fd sys fd with
  | Error e -> Error e
  | Ok h -> Vfs.fsync (Systable.vfs sys) h

let service_getpid sys =
  check_kernel_mode sys;
  (Ksim.Kernel.current (Systable.kernel sys)).Ksim.Kproc.pid
