(* In-kernel socket service routines.  Same contract as Sys_file: the
   kernel is already in kernel mode, fd bookkeeping goes through the
   current process's descriptor table.  Socket ids from Knet are mapped
   into the table at [Knet.handle_base + id], so close(2) and the VFS
   can tell them apart from file handles. *)

open Kvfs

let net sys = Systable.net sys
let cur sys = Ksim.Kernel.current (Systable.kernel sys)

let sock_of_fd sys fd =
  match Ksim.Kproc.lookup_fd (cur sys) fd with
  | Some h when h >= Knet.handle_base -> Ok (h - Knet.handle_base)
  | Some _ -> Error Vtypes.ENOTSOCK
  | None -> Error Vtypes.EBADF

let alloc_sock_fd sys id = Ksim.Kproc.alloc_fd (cur sys) (Knet.handle_base + id)

let service_socket sys =
  Sys_file.check_kernel_mode sys;
  alloc_sock_fd sys (Knet.socket (net sys))

let service_bind sys ~sock ~port =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> Knet.bind (net sys) ~sock:id ~port

let service_listen sys ~sock ~backlog =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> Knet.listen (net sys) ~sock:id ~backlog

let service_accept sys ~sock =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> (
      match Knet.accept (net sys) ~sock:id with
      | Error e -> Error e
      | Ok conn -> Ok (alloc_sock_fd sys conn))

let service_recv sys ~sock ~len =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> Knet.recv (net sys) ~sock:id ~len

let service_send sys ~sock ~data =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> Knet.send (net sys) ~sock:id ~data

let service_epoll_create sys =
  Sys_file.check_kernel_mode sys;
  alloc_sock_fd sys (Knet.epoll_create (net sys))

let service_epoll_ctl sys ~ep ~sock ~add ~mask ~cookie =
  Sys_file.check_kernel_mode sys;
  match (sock_of_fd sys ep, sock_of_fd sys sock) with
  | Error e, _ | _, Error e -> Error e
  | Ok epid, Ok sockid ->
      let op = if add then `Add (mask, cookie) else `Del in
      Knet.epoll_ctl (net sys) ~ep:epid ~sock:sockid ~op

let service_epoll_wait sys ~ep ~max =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys ep with
  | Error e -> Error e
  | Ok epid -> Knet.epoll_wait (net sys) ~ep:epid ~max

(* accept + first recv in one crossing (§2.2 applied to the server hot
   loop).  The recv may legitimately find nothing yet — the new
   connection is returned with an empty payload. *)
let service_accept_recv sys ~sock ~len =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> (
      match Knet.accept (net sys) ~sock:id with
      | Error e -> Error e
      | Ok conn ->
          let fd = alloc_sock_fd sys conn in
          let data =
            match Knet.recv (net sys) ~sock:conn ~len with
            | Ok b -> b
            | Error _ -> Bytes.empty
          in
          Ok (fd, data))

(* send the previous response + recv the next pipelined request in one
   crossing.  Either half may have nothing to do; the reply carries how
   many bytes were queued and whatever arrived. *)
let service_recv_send sys ~sock ~len ~data =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id ->
      let received =
        match Knet.recv (net sys) ~sock:id ~len with
        | Ok b -> b
        | Error _ -> Bytes.empty
      in
      let sent =
        if Bytes.length data = 0 then 0
        else
          match Knet.send (net sys) ~sock:id ~data with
          | Ok n -> n
          | Error _ -> 0
      in
      Ok (sent, received)

(* sendfile to a socket (§2.3 technique): file pages are read on the
   kernel side and staged through the shared transmit region straight
   into the connection's send queue — the payload never crosses the
   boundary, so the only user-visible bytes are the operands.  Only as
   much as the send queue can take is read; the caller resumes at
   [off + n] when the socket turns writable again. *)
let service_sendfile_sock sys ~sock ~fd ~off ~len =
  Sys_file.check_kernel_mode sys;
  match sock_of_fd sys sock with
  | Error e -> Error e
  | Ok id -> (
      match Knet.send_space (net sys) ~sock:id with
      | Error e -> Error e
      | Ok space ->
          let want = min space len in
          if want <= 0 then Ok 0
          else begin
            match Sys_file.service_pread sys ~fd ~off ~len:want with
            | Error e -> Error e
            | Ok data ->
                if Bytes.length data = 0 then Ok 0
                else begin
                  match Knet.send_kernel (net sys) ~sock:id data with
                  | Error e -> Error e
                  | Ok n ->
                      (* DMA from the page cache to the NIC: device
                         time, as in Consolidated.service_sendfile *)
                      let kernel = Systable.kernel sys in
                      let cost = Ksim.Kernel.cost kernel in
                      Ksim.Kernel.charge_io kernel
                        (n * cost.Ksim.Cost_model.copy_per_byte
                        / (4 * max 1 cost.Ksim.Cost_model.copy_byte_div));
                      Ok n
                end
          end)
