(* Typed syscall descriptors.  [req] and [reply] are the single
   vocabulary every layer speaks: the user wrappers (Usyscall) build a
   [req] and hand it to the generic dispatcher, the trace layer records
   the [Sysno.t], the Cosy decoder lowers its compound ops to [req]s,
   and the kring submission queue carries marshalled [req]s through
   shared memory.

   The wire codec defines how a [req] is laid out when it crosses the
   boundary through a shared ring: a one-byte sysno tag followed by the
   call's operands (ints as 8-byte little-endian fixints, strings and
   payloads length-prefixed).  [req_copy_bytes]/[reply_copy_bytes] give
   the copy volume the classic synchronous path charges — kept
   byte-compatible with the historical per-wrapper accounting so the
   E1/E2 data-volume arithmetic is unchanged. *)

open Kvfs

type req =
  | Open of { path : string; flags : Vfs.open_flag list }
  | Close of { fd : int }
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : Bytes.t }
  | Pread of { fd : int; off : int; len : int }
  | Pwrite of { fd : int; off : int; data : Bytes.t }
  | Lseek of { fd : int; off : int; whence : Vfs.whence }
  | Stat of { path : string }
  | Fstat of { fd : int }
  | Readdir of { path : string }
  | Mkdir of { path : string }
  | Unlink of { path : string }
  | Rename of { src : string; dst : string }
  | Fsync of { fd : int }
  | Getpid
  | Readdirplus of { path : string }
  | Open_read_close of { path : string; maxlen : int }
  | Open_write_close of { path : string; data : Bytes.t; flags : Vfs.open_flag list }
  | Sendfile of { fd : int; off : int; len : int }
  | Open_fstat of { path : string; flags : Vfs.open_flag list }
  (* knet sockets; [sock] and [ep] are fds from the caller's table *)
  | Socket
  | Bind of { sock : int; port : int }
  | Listen of { sock : int; backlog : int }
  | Accept of { sock : int }
  | Recv of { sock : int; len : int }
  | Send of { sock : int; data : Bytes.t }
  | Epoll_create
  | Epoll_ctl of { ep : int; sock : int; add : bool; mask : int; cookie : int }
  | Epoll_wait of { ep : int; max : int }
  | Accept_recv of { sock : int; len : int }
  | Recv_send of { sock : int; len : int; data : Bytes.t }
  | Sendfile_sock of { sock : int; fd : int; off : int; len : int }

type ok_reply =
  | R_unit
  | R_int of int
  | R_bytes of Bytes.t
  | R_stat of Vtypes.stat
  | R_dirents of Vtypes.dirent list
  | R_dirents_stats of (Vtypes.dirent * Vtypes.stat) list
  | R_fd_stat of { fd : int; stat : Vtypes.stat }
  | R_ready of (int * int) list  (** epoll_wait: (cookie, readiness mask) *)
  | R_fd_bytes of { fd : int; data : Bytes.t }  (** accept_recv *)
  | R_int_bytes of { n : int; data : Bytes.t }  (** recv_send: sent, received *)

type reply = (ok_reply, Vtypes.errno) result

let sysno_of_req : req -> Sysno.t = function
  | Open _ -> Sysno.Open
  | Close _ -> Sysno.Close
  | Read _ -> Sysno.Read
  | Write _ -> Sysno.Write
  | Pread _ -> Sysno.Pread
  | Pwrite _ -> Sysno.Pwrite
  | Lseek _ -> Sysno.Lseek
  | Stat _ -> Sysno.Stat
  | Fstat _ -> Sysno.Fstat
  | Readdir _ -> Sysno.Readdir
  | Mkdir _ -> Sysno.Mkdir
  | Unlink _ -> Sysno.Unlink
  | Rename _ -> Sysno.Rename
  | Fsync _ -> Sysno.Fsync
  | Getpid -> Sysno.Getpid
  | Readdirplus _ -> Sysno.Readdirplus
  | Open_read_close _ -> Sysno.Open_read_close
  | Open_write_close _ -> Sysno.Open_write_close
  | Sendfile _ -> Sysno.Sendfile
  | Open_fstat _ -> Sysno.Open_fstat
  | Socket -> Sysno.Socket
  | Bind _ -> Sysno.Bind
  | Listen _ -> Sysno.Listen
  | Accept _ -> Sysno.Accept
  | Recv _ -> Sysno.Recv
  | Send _ -> Sysno.Send
  | Epoll_create -> Sysno.Epoll_create
  | Epoll_ctl _ -> Sysno.Epoll_ctl
  | Epoll_wait _ -> Sysno.Epoll_wait
  | Accept_recv _ -> Sysno.Accept_recv
  | Recv_send _ -> Sysno.Recv_send
  | Sendfile_sock _ -> Sysno.Sendfile_sock

(* Human-readable principal argument, matching the strings the old
   per-call wrappers put in trace records. *)
let arg_of_req = function
  | Open { path; _ } | Stat { path } | Readdir { path } | Mkdir { path }
  | Unlink { path } | Readdirplus { path }
  | Open_read_close { path; _ }
  | Open_write_close { path; _ }
  | Open_fstat { path; _ } ->
      path
  | Close { fd } | Read { fd; _ } | Write { fd; _ } | Pread { fd; _ }
  | Pwrite { fd; _ } | Lseek { fd; _ } | Fstat { fd } | Fsync { fd }
  | Sendfile { fd; _ } ->
      string_of_int fd
  | Rename { src; dst } -> src ^ "->" ^ dst
  | Getpid | Socket | Epoll_create -> ""
  | Bind { sock; _ } | Listen { sock; _ } | Accept { sock }
  | Recv { sock; _ } | Send { sock; _ } | Accept_recv { sock; _ }
  | Recv_send { sock; _ } | Sendfile_sock { sock; _ } ->
      string_of_int sock
  | Epoll_ctl { ep; _ } | Epoll_wait { ep; _ } -> string_of_int ep

(* --- boundary copy-volume accounting ----------------------------------- *)

let path_bytes path = String.length path + 1 (* NUL-terminated *)

let dirents_bytes entries =
  List.fold_left (fun n d -> n + Vtypes.dirent_wire_size d) 0 entries

let dirents_stats_bytes entries =
  List.fold_left
    (fun n (d, _st) -> n + Vtypes.dirent_wire_size d + Vtypes.stat_wire_size)
    0 entries

(* Bytes copied user -> kernel for the synchronous path of one call. *)
let req_copy_bytes = function
  | Open { path; _ } | Stat { path } | Readdir { path } | Mkdir { path }
  | Unlink { path } | Readdirplus { path }
  | Open_read_close { path; _ }
  | Open_fstat { path; _ } ->
      path_bytes path
  | Write { data; _ } | Pwrite { data; _ } -> Bytes.length data
  | Open_write_close { path; data; _ } -> path_bytes path + Bytes.length data
  | Rename { src; dst } -> path_bytes src + path_bytes dst
  | Send { data; _ } | Recv_send { data; _ } -> Bytes.length data
  | Close _ | Read _ | Pread _ | Lseek _ | Fstat _ | Fsync _ | Getpid
  | Sendfile _ | Socket | Bind _ | Listen _ | Accept _ | Recv _
  | Epoll_create | Epoll_ctl _ | Epoll_wait _ | Accept_recv _
  | Sendfile_sock _ ->
      0

(* Bytes copied kernel -> user when the reply lands.  Shape-driven: a
   successful read pays for its payload, a stat for the marshalled
   struct, sendfile for nothing (the point — data never crosses). *)
let reply_copy_bytes = function
  | Error _ -> 0
  | Ok r -> (
      match r with
      | R_unit | R_int _ -> 0
      | R_bytes b -> Bytes.length b
      | R_stat _ -> Vtypes.stat_wire_size
      | R_dirents entries -> dirents_bytes entries
      | R_dirents_stats entries -> dirents_stats_bytes entries
      | R_fd_stat _ -> Vtypes.stat_wire_size
      (* one epoll_event (cookie + mask) is two 8-byte wire ints *)
      | R_ready ready -> 16 * List.length ready
      | R_fd_bytes { data; _ } -> Bytes.length data
      | R_int_bytes { data; _ } -> Bytes.length data)

(* --- the Cosy/kring C-style return-value convention -------------------- *)

(* Collapse a reply to the single int a C caller would see: >= 0 on
   success (fd / byte count / size / entry count), negative errno on
   failure.  The one place the negative-errno convention lives. *)
let reply_to_retval : reply -> int = function
  | Error e -> -Vtypes.errno_code e
  | Ok R_unit -> 0
  | Ok (R_int n) -> n
  | Ok (R_bytes b) -> Bytes.length b
  | Ok (R_stat st) -> st.Vtypes.st_size
  | Ok (R_dirents entries) -> List.length entries
  | Ok (R_dirents_stats entries) -> List.length entries
  | Ok (R_fd_stat { fd; _ }) -> fd
  | Ok (R_ready ready) -> List.length ready
  | Ok (R_fd_bytes { fd; _ }) -> fd
  | Ok (R_int_bytes { n; _ }) -> n

(* Lift a C-style return value back into a (payload-free) reply.  The
   inverse of [reply_to_retval] up to payload erasure: negative values
   decode through the errno table, non-negative become [R_int]. *)
let retval_to_reply rv : reply =
  if rv >= 0 then Ok (R_int rv)
  else
    match Vtypes.errno_of_code (-rv) with
    | Some e -> Error e
    | None -> Error Vtypes.EINVAL

(* --- open-flag / whence bitmask encoding -------------------------------- *)

(* Access mode in the low two bits (O_RDONLY=0, O_WRONLY=1, O_RDWR=2),
   modifier flags above — same shape as the Cosy compound encoding. *)
let flags_to_int flags =
  let acc =
    if List.mem Vfs.O_RDWR flags then 2
    else if List.mem Vfs.O_WRONLY flags then 1
    else 0
  in
  let acc = if List.mem Vfs.O_CREAT flags then acc lor 4 else acc in
  let acc = if List.mem Vfs.O_TRUNC flags then acc lor 8 else acc in
  if List.mem Vfs.O_APPEND flags then acc lor 16 else acc

(* Canonical decode: access mode first, then modifiers in fixed order.
   [flags_of_int (flags_to_int f)] is the canonical form of [f]. *)
let flags_of_int n =
  let mode =
    match n land 3 with 2 -> Vfs.O_RDWR | 1 -> Vfs.O_WRONLY | _ -> Vfs.O_RDONLY
  in
  let fl = [ mode ] in
  let fl = if n land 4 <> 0 then fl @ [ Vfs.O_CREAT ] else fl in
  let fl = if n land 8 <> 0 then fl @ [ Vfs.O_TRUNC ] else fl in
  if n land 16 <> 0 then fl @ [ Vfs.O_APPEND ] else fl

let whence_to_int = function
  | Vfs.SEEK_SET -> 0
  | Vfs.SEEK_CUR -> 1
  | Vfs.SEEK_END -> 2

let whence_of_int = function
  | 1 -> Vfs.SEEK_CUR
  | 2 -> Vfs.SEEK_END
  | _ -> Vfs.SEEK_SET

(* --- wire codec --------------------------------------------------------- *)

(* Layout: [sysno:1][operands...]; ints are 8-byte LE, strings and byte
   payloads are an 8-byte LE length followed by the raw bytes. *)

let int_wire = 8
let str_wire s = int_wire + String.length s
let bytes_wire b = int_wire + Bytes.length b

let req_wire_size = function
  | Open { path; _ } -> 1 + str_wire path + int_wire
  | Close _ -> 1 + int_wire
  | Read _ -> 1 + (2 * int_wire)
  | Write { data; _ } -> 1 + int_wire + bytes_wire data
  | Pread _ -> 1 + (3 * int_wire)
  | Pwrite { data; _ } -> 1 + (2 * int_wire) + bytes_wire data
  | Lseek _ -> 1 + (3 * int_wire)
  | Stat { path } | Readdir { path } | Mkdir { path } | Unlink { path }
  | Readdirplus { path } ->
      1 + str_wire path
  | Fstat _ | Fsync _ -> 1 + int_wire
  | Rename { src; dst } -> 1 + str_wire src + str_wire dst
  | Getpid -> 1
  | Open_read_close { path; _ } -> 1 + str_wire path + int_wire
  | Open_write_close { path; data; _ } ->
      1 + str_wire path + bytes_wire data + int_wire
  | Sendfile _ -> 1 + (3 * int_wire)
  | Open_fstat { path; _ } -> 1 + str_wire path + int_wire
  | Socket | Epoll_create -> 1
  | Bind _ | Listen _ | Recv _ | Accept_recv _ | Epoll_wait _ ->
      1 + (2 * int_wire)
  | Accept _ -> 1 + int_wire
  | Send { data; _ } -> 1 + int_wire + bytes_wire data
  | Epoll_ctl _ -> 1 + (5 * int_wire)
  | Recv_send { data; _ } -> 1 + (2 * int_wire) + bytes_wire data
  | Sendfile_sock _ -> 1 + (4 * int_wire)

(* Little serialization cursor over a Bytes.t. *)
let put_int buf off n =
  Bytes.set_int64_le buf off (Int64.of_int n);
  off + int_wire

let put_str buf off s =
  let off = put_int buf off (String.length s) in
  Bytes.blit_string s 0 buf off (String.length s);
  off + String.length s

let put_bytes buf off b =
  let off = put_int buf off (Bytes.length b) in
  Bytes.blit b 0 buf off (Bytes.length b);
  off + Bytes.length b

let get_int buf off = (Int64.to_int (Bytes.get_int64_le buf off), off + int_wire)

let get_str buf off =
  let len, off = get_int buf off in
  if len < 0 || off + len > Bytes.length buf then
    invalid_arg "Syscall.decode_req: truncated string";
  (Bytes.sub_string buf off len, off + len)

let get_bytes buf off =
  let len, off = get_int buf off in
  if len < 0 || off + len > Bytes.length buf then
    invalid_arg "Syscall.decode_req: truncated payload";
  (Bytes.sub buf off len, off + len)

let encode_req req =
  let buf = Bytes.create (req_wire_size req) in
  Bytes.set buf 0 (Char.chr (Sysno.to_int (sysno_of_req req)));
  let off = 1 in
  let (_ : int) =
    match req with
    | Open { path; flags } ->
        let off = put_str buf off path in
        put_int buf off (flags_to_int flags)
    | Close { fd } -> put_int buf off fd
    | Read { fd; len } -> put_int buf (put_int buf off fd) len
    | Write { fd; data } -> put_bytes buf (put_int buf off fd) data
    | Pread { fd; off = o; len } ->
        put_int buf (put_int buf (put_int buf off fd) o) len
    | Pwrite { fd; off = o; data } ->
        put_bytes buf (put_int buf (put_int buf off fd) o) data
    | Lseek { fd; off = o; whence } ->
        put_int buf (put_int buf (put_int buf off fd) o) (whence_to_int whence)
    | Stat { path } | Readdir { path } | Mkdir { path } | Unlink { path }
    | Readdirplus { path } ->
        put_str buf off path
    | Fstat { fd } | Fsync { fd } -> put_int buf off fd
    | Rename { src; dst } -> put_str buf (put_str buf off src) dst
    | Getpid -> off
    | Open_read_close { path; maxlen } -> put_int buf (put_str buf off path) maxlen
    | Open_write_close { path; data; flags } ->
        put_int buf (put_bytes buf (put_str buf off path) data) (flags_to_int flags)
    | Sendfile { fd; off = o; len } ->
        put_int buf (put_int buf (put_int buf off fd) o) len
    | Open_fstat { path; flags } ->
        put_int buf (put_str buf off path) (flags_to_int flags)
    | Socket | Epoll_create -> off
    | Bind { sock; port } -> put_int buf (put_int buf off sock) port
    | Listen { sock; backlog } -> put_int buf (put_int buf off sock) backlog
    | Accept { sock } -> put_int buf off sock
    | Recv { sock; len } -> put_int buf (put_int buf off sock) len
    | Send { sock; data } -> put_bytes buf (put_int buf off sock) data
    | Epoll_ctl { ep; sock; add; mask; cookie } ->
        let off = put_int buf (put_int buf off ep) sock in
        let off = put_int buf off (if add then 1 else 0) in
        put_int buf (put_int buf off mask) cookie
    | Epoll_wait { ep; max } -> put_int buf (put_int buf off ep) max
    | Accept_recv { sock; len } -> put_int buf (put_int buf off sock) len
    | Recv_send { sock; len; data } ->
        put_bytes buf (put_int buf (put_int buf off sock) len) data
    | Sendfile_sock { sock; fd; off = o; len } ->
        put_int buf (put_int buf (put_int buf (put_int buf off sock) fd) o) len
  in
  buf

(* Decode one request starting at [off]; returns it plus the offset just
   past its encoding, so a submission queue can walk packed requests. *)
let decode_req buf ~off =
  if off >= Bytes.length buf then invalid_arg "Syscall.decode_req: empty";
  let sysno =
    match Sysno.of_int (Char.code (Bytes.get buf off)) with
    | Some s -> s
    | None -> invalid_arg "Syscall.decode_req: bad sysno"
  in
  let off = off + 1 in
  match sysno with
  | Sysno.Open ->
      let path, off = get_str buf off in
      let fl, off = get_int buf off in
      (Open { path; flags = flags_of_int fl }, off)
  | Sysno.Close ->
      let fd, off = get_int buf off in
      (Close { fd }, off)
  | Sysno.Read ->
      let fd, off = get_int buf off in
      let len, off = get_int buf off in
      (Read { fd; len }, off)
  | Sysno.Write ->
      let fd, off = get_int buf off in
      let data, off = get_bytes buf off in
      (Write { fd; data }, off)
  | Sysno.Pread ->
      let fd, off = get_int buf off in
      let o, off = get_int buf off in
      let len, off = get_int buf off in
      (Pread { fd; off = o; len }, off)
  | Sysno.Pwrite ->
      let fd, off = get_int buf off in
      let o, off = get_int buf off in
      let data, off = get_bytes buf off in
      (Pwrite { fd; off = o; data }, off)
  | Sysno.Lseek ->
      let fd, off = get_int buf off in
      let o, off = get_int buf off in
      let w, off = get_int buf off in
      (Lseek { fd; off = o; whence = whence_of_int w }, off)
  | Sysno.Stat ->
      let path, off = get_str buf off in
      (Stat { path }, off)
  | Sysno.Fstat ->
      let fd, off = get_int buf off in
      (Fstat { fd }, off)
  | Sysno.Readdir ->
      let path, off = get_str buf off in
      (Readdir { path }, off)
  | Sysno.Mkdir ->
      let path, off = get_str buf off in
      (Mkdir { path }, off)
  | Sysno.Unlink ->
      let path, off = get_str buf off in
      (Unlink { path }, off)
  | Sysno.Rename ->
      let src, off = get_str buf off in
      let dst, off = get_str buf off in
      (Rename { src; dst }, off)
  | Sysno.Fsync ->
      let fd, off = get_int buf off in
      (Fsync { fd }, off)
  | Sysno.Getpid -> (Getpid, off)
  | Sysno.Readdirplus ->
      let path, off = get_str buf off in
      (Readdirplus { path }, off)
  | Sysno.Open_read_close ->
      let path, off = get_str buf off in
      let maxlen, off = get_int buf off in
      (Open_read_close { path; maxlen }, off)
  | Sysno.Open_write_close ->
      let path, off = get_str buf off in
      let data, off = get_bytes buf off in
      let fl, off = get_int buf off in
      (Open_write_close { path; data; flags = flags_of_int fl }, off)
  | Sysno.Sendfile ->
      let fd, off = get_int buf off in
      let o, off = get_int buf off in
      let len, off = get_int buf off in
      (Sendfile { fd; off = o; len }, off)
  | Sysno.Open_fstat ->
      let path, off = get_str buf off in
      let fl, off = get_int buf off in
      (Open_fstat { path; flags = flags_of_int fl }, off)
  | Sysno.Socket -> (Socket, off)
  | Sysno.Epoll_create -> (Epoll_create, off)
  | Sysno.Bind ->
      let sock, off = get_int buf off in
      let port, off = get_int buf off in
      (Bind { sock; port }, off)
  | Sysno.Listen ->
      let sock, off = get_int buf off in
      let backlog, off = get_int buf off in
      (Listen { sock; backlog }, off)
  | Sysno.Accept ->
      let sock, off = get_int buf off in
      (Accept { sock }, off)
  | Sysno.Recv ->
      let sock, off = get_int buf off in
      let len, off = get_int buf off in
      (Recv { sock; len }, off)
  | Sysno.Send ->
      let sock, off = get_int buf off in
      let data, off = get_bytes buf off in
      (Send { sock; data }, off)
  | Sysno.Epoll_ctl ->
      let ep, off = get_int buf off in
      let sock, off = get_int buf off in
      let add, off = get_int buf off in
      let mask, off = get_int buf off in
      let cookie, off = get_int buf off in
      (Epoll_ctl { ep; sock; add = add <> 0; mask; cookie }, off)
  | Sysno.Epoll_wait ->
      let ep, off = get_int buf off in
      let max, off = get_int buf off in
      (Epoll_wait { ep; max }, off)
  | Sysno.Accept_recv ->
      let sock, off = get_int buf off in
      let len, off = get_int buf off in
      (Accept_recv { sock; len }, off)
  | Sysno.Recv_send ->
      let sock, off = get_int buf off in
      let len, off = get_int buf off in
      let data, off = get_bytes buf off in
      (Recv_send { sock; len; data }, off)
  | Sysno.Sendfile_sock ->
      let sock, off = get_int buf off in
      let fd, off = get_int buf off in
      let o, off = get_int buf off in
      let len, off = get_int buf off in
      (Sendfile_sock { sock; fd; off = o; len }, off)

let pp_req ppf req =
  let a = arg_of_req req in
  if a = "" then Sysno.pp ppf (sysno_of_req req)
  else Fmt.pf ppf "%a(%s)" Sysno.pp (sysno_of_req req) a
