(** The system: a kernel plus a VFS plus syscall bookkeeping.

    User wrappers ({!Usyscall}) cross the boundary and call the in-kernel
    service routines ({!Sys_file}); the Cosy kernel extension calls the
    service routines directly, skipping the crossing — which is the
    entire point of the paper's §2. *)

(** One syscall's trace record, as delivered to an attached tracer. *)
type trace_record = {
  pid : int;
  sysno : Sysno.t;    (** which syscall ({!Sysno.to_string} for display) *)
  arg : string;       (** human-readable principal argument *)
  bytes_in : int;     (** user -> kernel copy volume *)
  bytes_out : int;    (** kernel -> user copy volume *)
  ok : bool;
  timestamp : int;    (** virtual cycles at completion *)
}

type t

val create :
  ?root_fs:Kvfs.Vtypes.ops -> ?dcache_shards:int -> Ksim.Kernel.t -> t

val kernel : t -> Ksim.Kernel.t
val vfs : t -> Kvfs.Vfs.t

(** Boundary fault sites ([syscall.eintr], [syscall.eagain]) consulted
    by [Usyscall.invoke]'s plain dispatch path, plus the retry
    counters its restart logic feeds. *)
val fault : t -> Kfault.t

val eintr_site : t -> Kfault.site
val eagain_site : t -> Kfault.site
val count_eintr_restart : t -> unit
val count_eagain_injected : t -> unit

(** The simulated socket stack booted alongside the VFS. *)
val net : t -> Knet.t

(** Install/remove the (single) tracer. *)
val set_tracer : t -> (trace_record -> unit) -> unit

val clear_tracer : t -> unit

(** What the dispatch-admission gate decided about one syscall.
    [Gate_kill] obliges the dispatcher to terminate the offending
    process exactly like a watchdog expiry. *)
type gate_decision =
  | Gate_allow
  | Gate_deny of Kvfs.Vtypes.errno
  | Gate_kill

type gate = pid:int -> sysno:Sysno.t -> gate_decision

(** Install/remove the (single) dispatch-admission gate ({!Usyscall}
    consults it on every [invoke], whatever the entry path).  Kverify's
    syscall-flow automaton installs itself here; with no gate installed
    the check is one [None] branch and zero cycles. *)
val set_gate : t -> gate -> unit

val clear_gate : t -> unit
val gate : t -> gate option

(** Used by the dispatcher to account and publish one completed syscall. *)
val record :
  t -> sysno:Sysno.t -> arg:string -> bytes_in:int -> bytes_out:int ->
  ok:bool -> unit

(** Record one syscall's boundary-to-boundary latency into the
    per-syscall kstats histogram ([syscall.<name>.latency]). *)
val observe_latency : t -> sysno:Sysno.t -> cycles:int -> unit

(** Invocations of one syscall so far. *)
val count : t -> Sysno.t -> int

val total_syscalls : t -> int

(** All per-syscall counts, most frequent first. *)
val counts : t -> (Sysno.t * int) list
