(* The system: a kernel plus a VFS plus syscall bookkeeping.  User
   wrappers (Usyscall) cross the boundary and call the in-kernel service
   routines (Sys_file); the Cosy kernel extension calls the service
   routines directly, skipping the crossing — which is the entire point
   of the paper's §2. *)

type trace_record = {
  pid : int;
  sysno : Sysno.t;          (* which syscall *)
  arg : string;             (* human-readable principal argument *)
  bytes_in : int;           (* user -> kernel *)
  bytes_out : int;          (* kernel -> user *)
  ok : bool;
  timestamp : int;          (* virtual cycles at completion *)
}

(* What the admission gate (kverify's syscall-flow automaton) decided
   about one dispatch.  [Gate_kill] means the caller must terminate the
   offending process, watchdog-style. *)
type gate_decision =
  | Gate_allow
  | Gate_deny of Kvfs.Vtypes.errno
  | Gate_kill

type gate = pid:int -> sysno:Sysno.t -> gate_decision

type t = {
  kernel : Ksim.Kernel.t;
  vfs : Kvfs.Vfs.t;
  net : Knet.t;
  mutable tracer : (trace_record -> unit) option;
  (* the (single) dispatch-admission hook; [None] costs one branch *)
  mutable gate : gate option;
  counts : (Sysno.t, int) Hashtbl.t;
  mutable total_syscalls : int;
  (* kstats handles, lazily registered per syscall *)
  st_counters : (Sysno.t, Kstats.counter) Hashtbl.t;
  st_hists : (Sysno.t, Kstats.hist) Hashtbl.t;
  st_total : Kstats.counter;
  (* boundary fault sites + the EINTR-restart retry counter *)
  fault : Kfault.t;
  site_eintr : Kfault.site;
  site_eagain : Kfault.site;
  st_eintr_restarts : Kstats.counter;
  st_eagain_injected : Kstats.counter;
}

let create ?root_fs ?dcache_shards kernel =
  let vfs = Kvfs.Vfs.create ?root_fs ?dcache_shards kernel in
  {
    kernel;
    vfs;
    net = Knet.create kernel;
    tracer = None;
    gate = None;
    counts = Hashtbl.create 64;
    total_syscalls = 0;
    st_counters = Hashtbl.create 64;
    st_hists = Hashtbl.create 64;
    st_total = Kstats.counter (Ksim.Kernel.stats kernel) "syscall.total";
    fault = Ksim.Kernel.fault kernel;
    site_eintr = Kfault.register (Ksim.Kernel.fault kernel) "syscall.eintr";
    site_eagain = Kfault.register (Ksim.Kernel.fault kernel) "syscall.eagain";
    st_eintr_restarts =
      Kstats.counter (Ksim.Kernel.stats kernel) "retry.eintr_restarts";
    st_eagain_injected =
      Kstats.counter (Ksim.Kernel.stats kernel) "retry.eagain_injected";
  }

let kernel t = t.kernel
let fault t = t.fault
let eintr_site t = t.site_eintr
let eagain_site t = t.site_eagain

let count_eintr_restart t =
  Kstats.incr (Ksim.Kernel.stats t.kernel) t.st_eintr_restarts

let count_eagain_injected t =
  Kstats.incr (Ksim.Kernel.stats t.kernel) t.st_eagain_injected

let vfs t = t.vfs
let net t = t.net

let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None

let set_gate t g = t.gate <- Some g
let clear_gate t = t.gate <- None
let gate t = t.gate

(* Handle caches keep the hot path at one Hashtbl probe after the
   enabled branch; registration happens on a syscall's first use.  The
   kstats metric names keep the historical [syscall.<name>.*] strings. *)
let st_counter t sysno =
  match Hashtbl.find_opt t.st_counters sysno with
  | Some c -> c
  | None ->
      let c =
        Kstats.counter (Ksim.Kernel.stats t.kernel)
          ("syscall." ^ Sysno.to_string sysno ^ ".count")
      in
      Hashtbl.replace t.st_counters sysno c;
      c

let st_hist t sysno =
  match Hashtbl.find_opt t.st_hists sysno with
  | Some h -> h
  | None ->
      let h =
        Kstats.histogram (Ksim.Kernel.stats t.kernel)
          ("syscall." ^ Sysno.to_string sysno ^ ".latency")
      in
      Hashtbl.replace t.st_hists sysno h;
      h

(* Record one completed syscall's wall latency (cycles from user-stub
   entry to boundary exit) into the per-syscall histogram. *)
let observe_latency t ~sysno ~cycles =
  let stats = Ksim.Kernel.stats t.kernel in
  if Kstats.is_enabled stats then Kstats.observe stats (st_hist t sysno) cycles

let record t ~sysno ~arg ~bytes_in ~bytes_out ~ok =
  t.total_syscalls <- t.total_syscalls + 1;
  Hashtbl.replace t.counts sysno
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts sysno));
  let stats = Ksim.Kernel.stats t.kernel in
  if Kstats.is_enabled stats then begin
    Kstats.incr stats t.st_total;
    Kstats.incr stats (st_counter t sysno)
  end;
  match t.tracer with
  | None -> ()
  | Some f ->
      let p = Ksim.Kernel.current t.kernel in
      f
        {
          pid = p.Ksim.Kproc.pid;
          sysno;
          arg;
          bytes_in;
          bytes_out;
          ok;
          timestamp = Ksim.Kernel.now t.kernel;
        }

let count t sysno = Option.value ~default:0 (Hashtbl.find_opt t.counts sysno)
let total_syscalls t = t.total_syscalls

let counts t =
  Hashtbl.fold (fun sysno n acc -> (sysno, n) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
