(* The systematic resilience sweep.  See resilience.mli for the model.

   The standard workload is deliberately small (a dozen files, a few
   compounds, ten connections) so a full sweep — one fresh boot per
   (site, occurrence) — stays cheap enough to run in CI, while still
   reaching every fault site kfault registers: wrapfs slab allocation
   (kalloc.kmalloc), a direct vmalloc, inode-table block reads
   (the blockdev sites), the syscall boundary (syscall.eintr/eagain),
   the kopt compiled-program cache, the unverified Cosy watchdog, the
   ring's enter loop, and the knet wire sites. *)

type run_result = {
  r_cycles : int;
  r_digest : string;
  r_errs : string list;
  r_killed : int;
  r_escaped : string option;
  r_counts : (string * int * int) list;
  r_stats : string;
}

let errno_name_of_code code =
  match
    List.find_opt
      (fun e -> Kvfs.Vtypes.errno_code e = code)
      Kvfs.Vtypes.all_errnos
  with
  | Some e -> Kvfs.Vtypes.errno_to_string e
  | None -> Printf.sprintf "E?%d" code

(* Deterministic file payload, distinct per file. *)
let payload n =
  Bytes.init n (fun i -> Char.chr (32 + (((i * 7) + n) land 63)))

let nfiles = 12
let fname i = Printf.sprintf "/d/f%02d" i

(* Build the straight-line open/read/close compound the kopt phase
   submits twice (same bytes both times, so the second submit probes
   the compiled-program cache). *)
let build_compound () =
  let c = Cosy.Cosy_lib.create () in
  let buf = Cosy.Cosy_lib.alloc_shared c 1024 in
  let fd =
    Cosy.Cosy_lib.syscall c "open"
      [ Cosy.Cosy_op.Str (fname 0); Cosy.Cosy_op.Const 0 ]
  in
  let n =
    Cosy.Cosy_lib.syscall c "read"
      [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const 1024 ]
  in
  ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
  (Cosy.Cosy_lib.finish c, fd, n)

(* A pure countdown loop: five back-edges, each one a watchdog check on
   the unverified path. *)
let build_loop_compound () =
  let c = Cosy.Cosy_lib.create () in
  let i = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const 6) in
  let top = Cosy.Cosy_lib.next_index c in
  Cosy.Cosy_lib.arith c ~dst:i Cosy.Cosy_op.Asub (Cosy.Cosy_op.Slot i)
    (Cosy.Cosy_op.Const 1);
  Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot i) (Cosy.Cosy_lib.next_index c + 2);
  Cosy.Cosy_lib.jmp c top;
  (Cosy.Cosy_lib.finish c, i)

let net_config =
  {
    Workloads.Webserver.net_default_config with
    docs =
      {
        Workloads.Webserver.default_config with
        documents = 8;
        doc_size = 512;
        doc_size_spread = 256;
        dir = "/www";
      };
    conns = 10;
    requests_per_conn = 2;
    pipeline = 2;
  }

let default_run_config =
  { Core.Config.default with Core.Config.fs = Core.Wrapfs_kmalloc; optimize = true }

(* The crash-sweep system: durable journalfs (WAL + replay-on-mount)
   with oops containment installed. *)
let crash_config =
  {
    Core.Config.default with
    Core.Config.fs = Core.Journalfs;
    optimize = true;
    crash = Some Kcrash.default_config;
  }

(* Marker recorded in [r_escaped] when the armed crash point fires: the
   machine died at a durable-write boundary; remaining phases are
   skipped, exactly as power loss would skip them. *)
let power_loss_marker = "POWER_LOSS"

let run_with ?(plans = []) ?(config = default_run_config) () =
  let t = Core.boot_with config in
  (* kstats registries boot disabled; the report and the retry.*
     counters are part of the run's observable record, so turn them on *)
  Kstats.set_enabled (Core.stats t) true;
  let sys = Core.sys t in
  let kernel = Core.kernel t in
  let fault = Core.fault t in
  (* non-strict: the ring and Cosy sites register mid-run and pick the
     plan up at registration *)
  Kfault.arm ~strict:false fault plans;
  let buf = Buffer.create 4096 in
  let errs = ref [] in
  let killed = ref 0 in
  let escaped = ref None in
  let err phase e =
    errs := (phase ^ ":" ^ Kvfs.Vtypes.errno_to_string e) :: !errs
  in
  let note phase s = errs := (phase ^ ":" ^ s) :: !errs in
  (* Run one phase; clean failures are recorded, a watchdog kill counts
     as clean, anything else escaping is a violation and stops the
     workload (later phases would only report its consequences). *)
  let phase name f =
    match !escaped with
    | Some _ -> ()
    | None -> (
        try f () with
        | Core.Sys_error e -> err name e
        | Cosy.Cosy_safety.Watchdog_expired _ ->
            incr killed;
            note name "KILLED"
        | Ksyscall.Usyscall.Flow_violation _ ->
            incr killed;
            note name "FLOWKILL"
        | Ksim.Kernel.Oops _ ->
            (* contained kernel-mode fault: the offender died, its
               resources were reaped, everyone else is untouched *)
            incr killed;
            note name "OOPS"
        | Kvfs.Block_dev.Power_loss -> escaped := Some power_loss_marker
        | Workloads.Wutil.Workload_error m ->
            (* the workload harness surfaces clean errnos as exceptions;
               the errno text is in the message *)
            note name ("HARNESS[" ^ m ^ "]")
        | e -> escaped := Some (name ^ ": " ^ Printexc.to_string e))
  in
  let add_int n = Buffer.add_string buf (string_of_int n ^ ";") in

  (* Phase 1: build a small tree.  Wrapfs charges a slab allocation per
     file object (kalloc.kmalloc), the inode table costs block reads
     (the blockdev sites), and every crossing passes the EINTR site. *)
  phase "file.create" (fun () ->
      (match Ksyscall.Usyscall.sys_mkdir sys ~path:"/d" with
      | Ok _ -> ()
      | Error e -> err "file.create" e);
      for i = 0 to nfiles - 1 do
        match
          Ksyscall.Usyscall.sys_open sys ~path:(fname i) ~flags:Core.o_create
        with
        | Error e -> err "file.create" e
        | Ok fd ->
            (match
               Ksyscall.Usyscall.sys_write sys ~fd
                 ~data:(payload (700 + (37 * i)))
             with
            | Ok n -> add_int n
            | Error e -> err "file.write" e);
            (match Ksyscall.Usyscall.sys_close sys ~fd with
            | Ok () -> ()
            | Error e -> err "file.close" e)
      done);

  (* Phase 2: read it back; every byte lands in the digest. *)
  phase "file.read" (fun () ->
      for i = 0 to nfiles - 1 do
        match
          Ksyscall.Usyscall.sys_open sys ~path:(fname i) ~flags:Core.o_rdonly
        with
        | Error e -> err "file.read" e
        | Ok fd ->
            (match Ksyscall.Usyscall.sys_read sys ~fd ~len:max_int with
            | Ok b -> Buffer.add_bytes buf b
            | Error e -> err "file.read" e);
            ignore (Ksyscall.Usyscall.sys_close sys ~fd)
      done);

  (* Phase 2b: a wide, shallow tree of tiny files, then a stat pass.
     Inodes pack 32 to a block and only directory inode blocks are ever
     written, so stats of files past the first group read inode-table
     blocks the cache has never seen — the one place this workload
     misses the buffer cache and reaches the blockdev fault sites. *)
  phase "file.meta" (fun () ->
      (match Ksyscall.Usyscall.sys_mkdir sys ~path:"/m" with
      | Ok _ -> ()
      | Error e -> err "file.meta" e);
      for i = 0 to 129 do
        let path = Printf.sprintf "/m/t%03d" i in
        match
          Ksyscall.Usyscall.sys_open_write_close sys ~path
            ~data:(Bytes.make 1 'x')
            ~flags:Core.o_create
        with
        | Ok _ -> ()
        | Error e -> err "file.meta" e
      done;
      for i = 0 to 129 do
        match Ksyscall.Usyscall.sys_stat sys ~path:(Printf.sprintf "/m/t%03d" i) with
        | Ok st -> add_int st.Kvfs.Vtypes.st_size
        | Error e -> err "file.meta" e
      done);

  (* Phase 3: a direct vmalloc (kalloc.vmalloc); the caller handles the
     allocator's exception itself, as in-kernel callers must. *)
  phase "alloc.direct" (fun () ->
      let alloc = Ksim.Kernel.alloc kernel in
      try
        let area = Ksim.Kalloc.vmalloc alloc 16_384 in
        add_int area.Ksim.Kalloc.addr;
        Ksim.Kalloc.vfree alloc area.Ksim.Kalloc.addr
      with Ksim.Kalloc.Out_of_memory _ -> note "alloc.direct" "ENOMEM");

  (* Phase 4: the same compound twice through the optimizer — compile
     on the first submit, cache probe on the second (the
     kopt.cache_invalidate site fires on hits; an invalidated entry
     must recompile and still run). *)
  phase "cosy.opt" (fun () ->
      let exec = Core.cosy t in
      for _ = 1 to 2 do
        let compound, fd, n = build_compound () in
        let slots = Cosy.Cosy_exec.submit exec compound in
        if slots.(fd) < 0 then
          note "cosy.opt" (errno_name_of_code (-slots.(fd)))
        else if slots.(n) < 0 then
          note "cosy.opt" (errno_name_of_code (-slots.(n)))
        else add_int slots.(n)
      done);

  (* Phase 5: a plain, unverified extension running a loop — every
     back-edge is a watchdog check (cosy.watchdog_early). *)
  phase "cosy.plain" (fun () ->
      let plain = Cosy.Cosy_exec.create sys in
      let compound, i = build_loop_compound () in
      let slots = Cosy.Cosy_exec.submit plain compound in
      add_int slots.(i));

  (* Phase 6: a submission ring draining a batch of independent ops
     (ring.partial_enter fires between completions inside [enter]). *)
  phase "ring" (fun () ->
      let ring = Kring.create sys in
      let comps =
        Kring.run_batch ring
          [
            Ksyscall.Syscall.Open_read_close { path = fname 1; maxlen = 4096 };
            Ksyscall.Syscall.Stat { path = fname 2 };
            Ksyscall.Syscall.Open_read_close { path = fname 3; maxlen = 4096 };
            Ksyscall.Syscall.Getpid;
          ]
      in
      List.iter
        (fun (comp : Kring.completion) ->
          match comp.Kring.reply with
          | Ok (Ksyscall.Syscall.R_bytes b) -> Buffer.add_bytes buf b
          | Ok (Ksyscall.Syscall.R_int n) -> add_int n
          | Ok (Ksyscall.Syscall.R_stat st) -> add_int st.Kvfs.Vtypes.st_size
          | Ok _ -> Buffer.add_string buf "ok;"
          | Error e -> err "ring" e)
        comps);

  (* Phase 7: serve the document tree over knet (net.wire_drop,
     net.recv_short, syscall.eagain on the server's recv/accept). *)
  phase "net" (fun () ->
      Workloads.Webserver.net_setup ~config:net_config sys;
      let r = Workloads.Webserver.run_net ~config:net_config sys in
      Buffer.add_string buf r.Workloads.Webserver.n_digest;
      add_int r.Workloads.Webserver.n_served;
      add_int r.Workloads.Webserver.n_completed);

  ( {
      r_cycles = Ksim.Kernel.now kernel;
      r_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
      r_errs = List.rev !errs;
      r_killed = !killed;
      r_escaped = !escaped;
      r_counts = Kfault.counts fault;
      r_stats = Fmt.str "%a" Kstats.pp_report (Core.stats t);
    },
    t )

let run ?plans () = fst (run_with ?plans ())

type outcome = Identical | Degraded | Violation

let outcome_to_string = function
  | Identical -> "identical"
  | Degraded -> "degraded"
  | Violation -> "VIOLATION"

let classify ~baseline r =
  match r.r_escaped with
  | Some m -> (Violation, m)
  | None ->
      if r.r_digest = baseline.r_digest && r.r_errs = [] && r.r_killed = 0
      then (Identical, "")
      else if r.r_errs <> [] || r.r_killed > 0 then (Degraded, "")
      else (Violation, "payload digest changed with no error surfaced")

type sweep_row = {
  sw_site : string;
  sw_occurrence : int;
  sw_outcome : outcome;
  sw_errs : string list;
  sw_detail : string;
}

type sweep_result = {
  baseline : run_result;
  rows : sweep_row list;
  violations : int;
}

let sweep ?max_per_site ?(progress = fun _ _ _ _ -> ()) () =
  let baseline = run () in
  let counts =
    List.map (fun (name, occ, _) -> (name, occ)) baseline.r_counts
  in
  let points = Kfault.sweep_points ?max_per_site counts in
  let total = List.length points in
  let rows =
    List.mapi
      (fun idx (site, k) ->
        progress idx total site k;
        let r = run ~plans:[ { Kfault.site; trigger = Kfault.One_shot k } ] () in
        let outcome, detail = classify ~baseline r in
        {
          sw_site = site;
          sw_occurrence = k;
          sw_outcome = outcome;
          sw_errs = r.r_errs;
          sw_detail = detail;
        })
      points
  in
  let violations =
    List.length (List.filter (fun r -> r.sw_outcome = Violation) rows)
  in
  { baseline; rows; violations }

(* --- The crash-point sweep ------------------------------------------- *)

let crash_site = "blockdev.crash_point"

type crash_class = Consistent | Recovered | Corrupt

let crash_class_to_string = function
  | Consistent -> "consistent"
  | Recovered -> "recovered"
  | Corrupt -> "CORRUPT"

type crash_row = {
  cr_occurrence : int;
  cr_class : crash_class;
  cr_replayed : int;
  cr_torn : int;
  cr_fsck_errs : string list;
  cr_detail : string;
}

type crash_sweep_result = {
  cs_points : int;
  cs_rows : crash_row list;
  cs_corrupt : int;
}

(* One crash point: run the workload on a durable system until the
   armed [blockdev.crash_point] fires (power dies mid-durable-write),
   reboot from the persistent image alone, and judge the survivor:

   - fsck must come back clean (bitmap vs. reachability, link counts,
     no shared blocks);
   - a second replay must be a no-op (idempotence);
   - only then: [Recovered] if the replay discarded a torn tail,
     [Consistent] if the log was whole. *)
let crash_point (_site, k) =
  let r, t =
    run_with ~config:crash_config
      ~plans:[ { Kfault.site = crash_site; trigger = Kfault.One_shot k } ]
      ()
  in
  if r.r_escaped <> Some power_loss_marker then
    {
      cr_occurrence = k;
      cr_class = Corrupt;
      cr_replayed = 0;
      cr_torn = 0;
      cr_fsck_errs = [];
      cr_detail =
        (match r.r_escaped with
        | Some m -> "crash point eclipsed by: " ^ m
        | None -> "crash point never fired");
    }
  else
    let t2 = Core.reboot t in
    match Core.journalfs t2 with
    | None ->
        {
          cr_occurrence = k;
          cr_class = Corrupt;
          cr_replayed = 0;
          cr_torn = 0;
          cr_fsck_errs = [];
          cr_detail = "reboot lost the journalfs";
        }
    | Some j ->
        let info =
          match Kvfs.Journalfs.last_recover j with
          | Some i -> i
          | None ->
              {
                Kvfs.Journalfs.rec_scanned = 0;
                rec_replayed = 0;
                rec_skipped = 0;
                rec_aborted = 0;
                rec_torn = 0;
                rec_errors = [ "no replay ran on mount" ];
              }
        in
        let fsck_errs = Kvfs.Journalfs.fsck j in
        let again = Kvfs.Journalfs.replay j in
        let idempotent =
          again.Kvfs.Journalfs.rec_replayed = 0
          && again.Kvfs.Journalfs.rec_errors = []
        in
        let cls, detail =
          if fsck_errs <> [] then (Corrupt, "fsck failed")
          else if info.Kvfs.Journalfs.rec_errors <> [] then
            (Corrupt, String.concat "; " info.Kvfs.Journalfs.rec_errors)
          else if not idempotent then (Corrupt, "replay not idempotent")
          else if info.Kvfs.Journalfs.rec_torn > 0 then
            (Recovered, "torn tail discarded")
          else (Consistent, "")
        in
        {
          cr_occurrence = k;
          cr_class = cls;
          cr_replayed = info.Kvfs.Journalfs.rec_replayed;
          cr_torn = info.Kvfs.Journalfs.rec_torn;
          cr_fsck_errs = fsck_errs;
          cr_detail = detail;
        }

let crash_sweep ?max_per_site ?(progress = fun _ _ _ -> ()) () =
  (* counting mode: how many durable-write boundaries does the workload
     cross?  Each is one reachable crash point. *)
  let baseline, _ = run_with ~config:crash_config () in
  let occ =
    match
      List.find_opt (fun (name, _, _) -> name = crash_site) baseline.r_counts
    with
    | Some (_, occ, _) -> occ
    | None -> 0
  in
  let points = Kfault.sweep_points ?max_per_site [ (crash_site, occ) ] in
  let total = List.length points in
  let rows =
    List.mapi
      (fun idx (site, k) ->
        progress idx total k;
        crash_point (site, k))
      points
  in
  let corrupt =
    List.length (List.filter (fun r -> r.cr_class = Corrupt) rows)
  in
  { cs_points = occ; cs_rows = rows; cs_corrupt = corrupt }
