(** The systematic resilience sweep (FATE-style).

    One standard workload — file tree, direct vmalloc, optimized and
    plain Cosy compounds, a submission ring, the knet webserver — boots
    a fresh system and reaches every fault site kfault registers.  The
    sweep runs it once in counting mode to learn how often each site is
    reached, then once per (site, occurrence) under a {!Kfault.One_shot}
    plan, classifying each run against the fault-free baseline:

    - {e Identical}: payload digest matches the baseline and no error
      surfaced — the fault was absorbed transparently (a reread block,
      a retransmitted frame, a restarted syscall).
    - {e Degraded}: the run failed {e cleanly} — every surfaced error
      is a typed errno (or a watchdog kill), nothing escaped.
    - {e Violation}: an unexpected exception escaped the workload, or
      the payload silently changed with no error surfaced.

    A correct kernel sweeps with zero violations; [bin/kfault_tool.exe
    sweep] exits nonzero otherwise. *)

(** One run of the standard workload. *)
type run_result = {
  r_cycles : int;  (** simulated clock at the end of the run *)
  r_digest : string;  (** hex digest over every payload byte observed *)
  r_errs : string list;
      (** clean failures, in order, as ["phase:ERRNO"] strings *)
  r_killed : int;  (** watchdog / flow-gate kills (clean by definition) *)
  r_escaped : string option;  (** exception that escaped a phase — a violation *)
  r_counts : (string * int * int) list;
      (** per-site (name, occurrences, fires) from the engine *)
  r_stats : string;  (** rendered kstats report, for identity checks *)
}

(** Run the standard workload on a fresh system under [plans]
    (default: empty = counting mode).  Never raises: anything a phase
    throws beyond clean errnos/kills lands in [r_escaped]. *)
val run : ?plans:Kfault.plan list -> unit -> run_result

(** {!run} with an explicit boot config, returning the booted system
    too (for reboot-from-image probes and containment-overhead
    comparisons).  [config] defaults to the standard sweep system
    (wrapfs-kmalloc, optimizer on). *)
val run_with :
  ?plans:Kfault.plan list ->
  ?config:Core.Config.t ->
  unit ->
  run_result * Core.t

(** The boot config the crash sweep uses: durable journalfs (write-ahead
    logging, replay-on-mount) with kcrash oops containment installed. *)
val crash_config : Core.Config.t

(** Recorded in [r_escaped] when the armed crash point kills the run. *)
val power_loss_marker : string

type outcome = Identical | Degraded | Violation

val outcome_to_string : outcome -> string

(** [classify ~baseline r] applies the sweep invariants. *)
val classify : baseline:run_result -> run_result -> outcome * string

type sweep_row = {
  sw_site : string;
  sw_occurrence : int;
  sw_outcome : outcome;
  sw_errs : string list;
  sw_detail : string;  (** escaped exception / mismatch explanation *)
}

type sweep_result = {
  baseline : run_result;
  rows : sweep_row list;
  violations : int;
}

(** Run the whole sweep: baseline in counting mode, then one run per
    (site, occurrence) point — every occurrence of every reached site,
    or an evenly spaced sample of [max_per_site] per site.  [progress]
    is called before each injection run with (index, total, site,
    occurrence). *)
val sweep :
  ?max_per_site:int ->
  ?progress:(int -> int -> string -> int -> unit) ->
  unit ->
  sweep_result

(** {1 The crash-point sweep (E19)}

    Power loss, systematically: the standard workload runs on the
    {!crash_config} system with the [blockdev.crash_point] kfault site
    armed [One_shot] at every durable-write boundary the workload
    crosses — one run per crash point, as the fault sweep does for
    fault points.  When the point fires, the machine dies mid-write
    ([Power_loss]); the sweep reboots from the persistent device image
    alone and judges the survivor:

    - {e Consistent}: fsck clean, replay idempotent, whole log — every
      committed operation survived, nothing needed discarding.
    - {e Recovered}: fsck clean, replay idempotent, and the replay
      discarded a torn tail (an intent with neither commit nor abort) —
      the crash landed inside an operation, which atomically vanished.
    - {e Corrupt}: fsck errors, replay errors, or a second replay that
      is not a no-op.  A correct journal never produces one. *)

(** The kfault site the sweep arms ([blockdev.crash_point]). *)
val crash_site : string

type crash_class = Consistent | Recovered | Corrupt

val crash_class_to_string : crash_class -> string

type crash_row = {
  cr_occurrence : int;  (** which durable write died *)
  cr_class : crash_class;
  cr_replayed : int;  (** committed intents the recovery applied *)
  cr_torn : int;  (** torn records the recovery discarded *)
  cr_fsck_errs : string list;
  cr_detail : string;
}

type crash_sweep_result = {
  cs_points : int;  (** reachable crash points (counting-mode occurrences) *)
  cs_rows : crash_row list;
  cs_corrupt : int;
}

(** Run the whole crash sweep: one counting run, then one
    crash-and-reboot per (sampled) crash point.  [progress] is called
    before each point with (index, total, occurrence). *)
val crash_sweep :
  ?max_per_site:int ->
  ?progress:(int -> int -> int -> unit) ->
  unit ->
  crash_sweep_result
