(** Frequent-sequence mining over syscall traces: counts every n-gram of
    syscalls within each process's trace and ranks them — the analysis
    that surfaced open-read-close, open-write-close, open-fstat and
    readdir-stat* in the paper (§2.2). *)

type ngram = Ksyscall.Sysno.t list

type t

(** Mine all n-grams with lengths in [[min_len, max_len]] (defaults 2–4). *)
val mine : ?min_len:int -> ?max_len:int -> Recorder.t -> t

val count : t -> ngram -> int

(** The [n] most frequent patterns (longer patterns win ties). *)
val top : t -> n:int -> (ngram * int) list

(** Lengths of every readdir-followed-by-stats run with at least
    [min_stats] stats: the readdirplus opportunities. *)
val readdir_stat_runs : Recorder.t -> min_stats:int -> int list

val pp_ngram : Format.formatter -> ngram -> unit
