(* The weighted directed syscall graph of §2.2 / Cassyopia: vertices are
   syscalls, an edge (v1, v2) has weight equal to the number of times v2
   directly followed v1 in the same process's trace. *)

open Ksyscall

type t = {
  edges : (Sysno.t * Sysno.t, int) Hashtbl.t;
  vertices : (Sysno.t, int) Hashtbl.t;   (* sysno -> total invocations *)
}

let create () = { edges = Hashtbl.create 256; vertices = Hashtbl.create 64 }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add_transition t ~src ~dst = bump t.edges (src, dst)
let add_vertex t sysno = bump t.vertices sysno

(* Build from a recorder: one pass per pid sequence. *)
let of_recorder recorder =
  let t = create () in
  List.iter
    (fun (_pid, sysnos) ->
      List.iter (add_vertex t) sysnos;
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            add_transition t ~src:a ~dst:b;
            pairs rest
        | [ _ ] | [] -> ()
      in
      pairs sysnos)
    (Recorder.sequences recorder);
  t

let weight t ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (src, dst))

let invocations t sysno =
  Option.value ~default:0 (Hashtbl.find_opt t.vertices sysno)

let edges t =
  Hashtbl.fold (fun (s, d) w acc -> (s, d, w) :: acc) t.edges []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let vertices t =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.vertices []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* Heaviest paths of the given length: greedy extension from each heavy
   edge, the heuristic the paper uses to pick consolidation candidates. *)
let heavy_paths t ~length ~top =
  let next_of src =
    Hashtbl.fold
      (fun (s, d) w acc -> if Sysno.equal s src then (d, w) :: acc else acc)
      t.edges []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let extend (path, w) =
    match path with
    | [] -> (path, w)
    | last :: _ -> (
        match next_of last with
        | (d, w') :: _ -> (d :: path, min w w')
        | [] -> (path, w))
  in
  let start_edges = edges t in
  let candidates =
    List.map
      (fun (s, d, w) ->
        let rec grow acc n = if n <= 0 then acc else grow (extend acc) (n - 1) in
        let path, weight = grow ([ d; s ], w) (length - 2) in
        (List.rev path, weight))
      start_edges
  in
  let dedup =
    List.sort_uniq (fun (p1, _) (p2, _) -> compare p1 p2) candidates
  in
  List.sort (fun (_, a) (_, b) -> compare b a) dedup
  |> List.filteri (fun i _ -> i < top)

let pp ppf t =
  List.iter
    (fun (s, d, w) -> Fmt.pf ppf "%a -> %a : %d@\n" Sysno.pp s Sysno.pp d w)
    (edges t)
