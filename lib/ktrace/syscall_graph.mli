(** The weighted directed syscall graph of §2.2 (after Cassyopia):
    vertices are syscalls; edge [(v1, v2)] weighs how many times [v2]
    directly followed [v1] in the same process's trace.  "Paths with
    large weights are likely to be good candidates for consolidation." *)

type t

val create : unit -> t
val add_transition : t -> src:Ksyscall.Sysno.t -> dst:Ksyscall.Sysno.t -> unit
val add_vertex : t -> Ksyscall.Sysno.t -> unit

(** Build the graph from a recorded trace. *)
val of_recorder : Recorder.t -> t

val weight : t -> src:Ksyscall.Sysno.t -> dst:Ksyscall.Sysno.t -> int

(** Total invocations of one syscall. *)
val invocations : t -> Ksyscall.Sysno.t -> int

(** All edges, heaviest first. *)
val edges : t -> (Ksyscall.Sysno.t * Ksyscall.Sysno.t * int) list

(** All vertices with their invocation counts, most invoked first. *)
val vertices : t -> (Ksyscall.Sysno.t * int) list

(** Greedy heaviest paths of [length] vertices: the consolidation
    candidates.  Each path carries its bottleneck weight. *)
val heavy_paths :
  t -> length:int -> top:int -> (Ksyscall.Sysno.t list * int) list

val pp : Format.formatter -> t -> unit
