(* Estimate what a trace would have cost had consolidated syscalls been
   used: the calculation behind E2's "171,975 -> 17,251 calls,
   51,807,520 -> 32,250,041 bytes, ~28.15 s/hour".

   The model: every readdir followed by k stat calls collapses into one
   readdirplus; the k stat calls and their path-name copies disappear,
   and the dirent names need not cross into user space a second time to
   come back as stat arguments.  open-read-close / open-write-close /
   open-fstat runs collapse 3 (resp. 2) crossings into one. *)

type estimate = {
  syscalls_before : int;
  syscalls_after : int;
  bytes_before : int;
  bytes_after : int;
  crossings_saved : int;
  cycles_saved : int;
  seconds_saved_per_hour : float;
}

let pp_estimate ppf e =
  Fmt.pf ppf
    "syscalls %d -> %d; bytes %d -> %d; crossings saved %d; ~%.2f s/hour"
    e.syscalls_before e.syscalls_after e.bytes_before e.bytes_after
    e.crossings_saved e.seconds_saved_per_hour

(* Walk one pid's records, simulating the collapse. *)
let collapse_pid (records : Ksyscall.Systable.trace_record list) =
  let syscalls = ref 0 in
  let bytes = ref 0 in
  let crossings_saved = ref 0 in
  let bytes_saved = ref 0 in
  let count (r : Ksyscall.Systable.trace_record) =
    incr syscalls;
    bytes := !bytes + r.bytes_in + r.bytes_out
  in
  let rec scan (rs : Ksyscall.Systable.trace_record list) =
    match rs with
    | ({ sysno = Ksyscall.Sysno.Readdir; _ } as rd) :: rest ->
        count rd;
        (* a run of stats following a readdir merges into readdirplus *)
        let rec eat n saved = function
          | ({ Ksyscall.Systable.sysno = Ksyscall.Sysno.Stat; _ } as st)
            :: more ->
              count st;
              (* the merged call keeps the stat payload (bytes_out) but
                 drops the path-name copy-in and the crossing *)
              eat (n + 1) (saved + st.Ksyscall.Systable.bytes_in) more
          | tail -> (n, saved, tail)
        in
        let n, saved, tail = eat 0 0 rest in
        if n > 0 then begin
          crossings_saved := !crossings_saved + n;
          bytes_saved := !bytes_saved + saved
        end;
        scan tail
    | ({ sysno = Ksyscall.Sysno.Open; _ } as o)
      :: ({ sysno = Ksyscall.Sysno.Read; _ } as r)
      :: ({ sysno = Ksyscall.Sysno.Close; _ } as c)
      :: rest ->
        count o;
        count r;
        count c;
        crossings_saved := !crossings_saved + 2;
        scan rest
    | ({ sysno = Ksyscall.Sysno.Open; _ } as o)
      :: ({ sysno = Ksyscall.Sysno.Write; _ } as w)
      :: ({ sysno = Ksyscall.Sysno.Close; _ } as c)
      :: rest ->
        count o;
        count w;
        count c;
        crossings_saved := !crossings_saved + 2;
        scan rest
    | ({ sysno = Ksyscall.Sysno.Open; _ } as o)
      :: ({ sysno = Ksyscall.Sysno.Fstat; _ } as f)
      :: rest ->
        count o;
        count f;
        crossings_saved := !crossings_saved + 1;
        scan rest
    | r :: rest ->
        count r;
        scan rest
    | [] -> ()
  in
  scan records;
  (!syscalls, !bytes, !crossings_saved, !bytes_saved)

let estimate ?(cost = Ksim.Cost_model.default) ?(trace_duration_cycles = 0)
    recorder =
  let by_pid = Hashtbl.create 8 in
  (* records are oldest-first; per-pid consing reverses, so flip back *)
  List.iter
    (fun (r : Ksyscall.Systable.trace_record) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_pid r.pid) in
      Hashtbl.replace by_pid r.pid (r :: prev))
    (Recorder.records recorder);
  let totals = Hashtbl.fold (fun _ rs acc -> List.rev rs :: acc) by_pid [] in
  let syscalls, bytes, crossings, bytes_saved =
    List.fold_left
      (fun (s, b, c, bs) rs ->
        let s', b', c', bs' = collapse_pid rs in
        (s + s', b + b', c + c', bs + bs'))
      (0, 0, 0, 0) totals
  in
  let per_crossing =
    cost.Ksim.Cost_model.syscall_entry + cost.Ksim.Cost_model.syscall_exit
  in
  let cycles_saved =
    (crossings * per_crossing) + Ksim.Cost_model.copy_cost cost bytes_saved
  in
  let seconds_saved = Ksim.Sim_clock.cycles_to_seconds cycles_saved in
  let duration_s =
    Ksim.Sim_clock.cycles_to_seconds (max 1 trace_duration_cycles)
  in
  {
    syscalls_before = syscalls;
    syscalls_after = syscalls - crossings;
    bytes_before = bytes;
    bytes_after = bytes - bytes_saved;
    crossings_saved = crossings;
    cycles_saved;
    seconds_saved_per_hour =
      (if trace_duration_cycles = 0 then 0.
       else seconds_saved /. duration_s *. 3600.);
  }
