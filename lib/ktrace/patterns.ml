(* Frequent-sequence mining over syscall traces: counts every n-gram of
   syscalls within each process's trace and ranks them.  This is the
   analysis that surfaced open-read-close, open-write-close, open-fstat
   and readdir-stat* in the paper. *)

open Ksyscall

type ngram = Sysno.t list

type t = { counts : (ngram, int) Hashtbl.t }

let mine ?(min_len = 2) ?(max_len = 4) recorder =
  let t = { counts = Hashtbl.create 1024 } in
  let bump key =
    Hashtbl.replace t.counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key))
  in
  List.iter
    (fun (_pid, sysnos) ->
      let arr = Array.of_list sysnos in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for len = min_len to max_len do
          if i + len <= n then
            bump (Array.to_list (Array.sub arr i len))
        done
      done)
    (Recorder.sequences recorder);
  t

let count t ngram = Option.value ~default:0 (Hashtbl.find_opt t.counts ngram)

let top t ~n =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (k1, a) (k2, b) ->
         match compare b a with
         | 0 -> compare (List.length k2) (List.length k1)
         | c -> c)
  |> List.filteri (fun i _ -> i < n)

(* Collapse runs of [stat] after [readdir] into the readdir-stat* pattern
   count: how many readdir invocations were followed by at least
   [min_stats] stat calls.  These are the readdirplus opportunities. *)
let readdir_stat_runs recorder ~min_stats =
  let runs = ref [] in
  List.iter
    (fun (_pid, sysnos) ->
      let rec scan = function
        | Sysno.Readdir :: rest ->
            let rec count_stats n = function
              | Sysno.Stat :: more -> count_stats (n + 1) more
              | tail -> (n, tail)
            in
            let n, tail = count_stats 0 rest in
            if n >= min_stats then runs := n :: !runs;
            scan tail
        | _ :: rest -> scan rest
        | [] -> ()
      in
      scan sysnos)
    (Recorder.sequences recorder);
  !runs

let pp_ngram ppf ngram = Fmt.(list ~sep:(any "-") Sysno.pp) ppf ngram
