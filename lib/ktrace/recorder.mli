(** strace-style recorder: attaches to a {!Ksyscall.Systable} and
    accumulates every syscall's trace record in order. *)

type t

val create : unit -> t

(** Start receiving this system's syscall records (replaces any tracer
    already installed on it). *)
val attach : t -> Ksyscall.Systable.t -> unit

val detach : t -> unit

(** Records, oldest first. *)
val records : t -> Ksyscall.Systable.trace_record list

val count : t -> int
val clear : t -> unit

(** Per-pid syscall sequences, in invocation order. *)
val sequences : t -> (int * Ksyscall.Sysno.t list) list

(** Total (bytes in, bytes out) across the trace. *)
val total_bytes : t -> int * int
