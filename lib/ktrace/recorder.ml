(* strace-style recorder: attaches to a Systable and accumulates every
   syscall's record, per pid, in order. *)

type t = {
  mutable records : Ksyscall.Systable.trace_record list; (* reversed *)
  mutable count : int;
  mutable attached : Ksyscall.Systable.t option;
}

let create () = { records = []; count = 0; attached = None }

let attach t sys =
  t.attached <- Some sys;
  Ksyscall.Systable.set_tracer sys (fun r ->
      t.records <- r :: t.records;
      t.count <- t.count + 1)

let detach t =
  (match t.attached with
  | Some sys -> Ksyscall.Systable.clear_tracer sys
  | None -> ());
  t.attached <- None

let records t = List.rev t.records
let count t = t.count

let clear t =
  t.records <- [];
  t.count <- 0

(* Per-pid sequences of syscall numbers, in invocation order. *)
let sequences t =
  let by_pid = Hashtbl.create 8 in
  List.iter
    (fun (r : Ksyscall.Systable.trace_record) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_pid r.pid) in
      Hashtbl.replace by_pid r.pid (r.sysno :: prev))
    t.records (* reversed input -> reversed accumulation = in order *)
  |> ignore;
  Hashtbl.fold (fun pid sysnos acc -> (pid, sysnos) :: acc) by_pid []

let total_bytes t =
  List.fold_left
    (fun (bin, bout) (r : Ksyscall.Systable.trace_record) ->
      (bin + r.bytes_in, bout + r.bytes_out))
    (0, 0) t.records
