(* ftrace-style tracing: per-CPU bounded trace rings fed by cheap emit
   hooks, causal spans with parent/child links, and exporters (folded
   stacks for flamegraphs, Chrome trace_event JSON for Perfetto, a
   top-N self-profile).

   Like kstats, the library sits *below* ksim: it never touches the
   simulated clock itself.  The kernel wires three closures at boot —
   [now] (the simulated clock), [cpu] (the scheduler's active CPU) and
   [charge] (the modelled per-event emit cost, [Cost_model.trace_emit]).
   With the tracer disabled every hook is a single branch and [charge]
   is never called, so untraced runs are bit-for-bit identical to a
   kernel without kperf compiled in — the same contract the kstats
   registry keeps.

   Span model.  Synchronous spans ([span_begin]/[span_end]) follow
   stack discipline per CPU: a span begun while another is open becomes
   its child, which is how "request -> batch -> syscalls -> locks ->
   I/O" chains reconstruct.  Asynchronous spans
   ([async_begin]/[async_end]) live outside the CPU stacks — a knet
   request is in flight across many syscalls — and export as Perfetto
   async tracks.  Instants mark points (context switches, dcache
   misses, backlog drops) without duration. *)

type mode = Overwrite | Drop

(* Tracers created while this is [true] start enabled (mirrors
   [Kstats.default_enabled]). *)
let default_enabled = ref false

type ev_kind = Begin | End | Instant | Async_begin | Async_end

type event = {
  ev_kind : ev_kind;
  ev_id : int;        (* span id; 0 for instants *)
  ev_parent : int;    (* enclosing span id; 0 at top level *)
  ev_cat : string;
  ev_name : string;
  ev_ts : int;        (* simulated cycles *)
  ev_cpu : int;
  ev_pid : int;
  ev_arg : int;       (* numeric payload: spin cycles, batch size, port... *)
  ev_seq : int;       (* global emit order, 1-based *)
}

(* One bounded ring per simulated CPU. *)
type ring = {
  slots : event option array;
  mutable next : int;     (* next write position *)
  mutable stored : int;   (* events currently retained (<= capacity) *)
}

type frame = { f_id : int; f_cat : string; f_name : string }

type t = {
  mutable enabled : bool;
  mode : mode;
  cap : int;
  ncpus : int;
  now : unit -> int;
  cpu : unit -> int;
  charge : unit -> unit;
  stats : Kstats.t;
  st_events : Kstats.counter;
  st_spans : Kstats.counter;
  st_drops : Kstats.counter;
  st_overwritten : Kstats.counter;
  rings : ring array;
  mutable stacks : frame list array;  (* per-CPU open sync spans, top first *)
  pending_async : (int, string * string) Hashtbl.t;
  mutable sink : (event -> unit) option;
  mutable next_id : int;
  mutable seq : int;
  mutable drops : int;
  mutable overwritten : int;
}

let create ?(enabled = false) ?(mode = Overwrite) ?(ring_capacity = 65536)
    ?(ncpus = 1) ?(stats = Kstats.create ~enabled:true ())
    ?(now = fun () -> 0) ?(cpu = fun () -> 0) ?(charge = fun () -> ()) () =
  if ring_capacity <= 0 then invalid_arg "Kperf.create: ring_capacity";
  if ncpus < 1 then invalid_arg "Kperf.create: ncpus";
  {
    enabled;
    mode;
    cap = ring_capacity;
    ncpus;
    now;
    cpu;
    charge;
    stats;
    st_events = Kstats.counter stats "kperf.events";
    st_spans = Kstats.counter stats "kperf.spans";
    st_drops = Kstats.counter stats "kperf.ring.drops";
    st_overwritten = Kstats.counter stats "kperf.ring.overwritten";
    rings =
      Array.init ncpus (fun _ ->
          { slots = Array.make ring_capacity None; next = 0; stored = 0 });
    stacks = Array.make ncpus [];
    pending_async = Hashtbl.create 64;
    sink = None;
    next_id = 1;
    seq = 0;
    drops = 0;
    overwritten = 0;
  }

let set_enabled t on = t.enabled <- on
let is_enabled t = t.enabled
let set_sink t f = t.sink <- f
let ncpus t = t.ncpus
let mode t = t.mode
let drops t = t.drops
let overwritten t = t.overwritten
let emitted t = t.seq

let clear t =
  Array.iter
    (fun r ->
      Array.fill r.slots 0 t.cap None;
      r.next <- 0;
      r.stored <- 0)
    t.rings;
  t.stacks <- Array.make t.ncpus [];
  Hashtbl.reset t.pending_async;
  t.next_id <- 1;
  t.seq <- 0;
  t.drops <- 0;
  t.overwritten <- 0

let clamp_cpu t c = if c >= 0 && c < t.ncpus then c else 0

(* Store one event in its CPU's ring, honouring the overflow mode. *)
let store t ev =
  let r = t.rings.(clamp_cpu t ev.ev_cpu) in
  if r.stored < t.cap then begin
    r.slots.(r.next) <- Some ev;
    r.next <- (r.next + 1) mod t.cap;
    r.stored <- r.stored + 1
  end
  else
    match t.mode with
    | Drop ->
        t.drops <- t.drops + 1;
        Kstats.incr t.stats t.st_drops
    | Overwrite ->
        r.slots.(r.next) <- Some ev;
        r.next <- (r.next + 1) mod t.cap;
        t.overwritten <- t.overwritten + 1;
        Kstats.incr t.stats t.st_overwritten

(* Precondition: [t.enabled].  The timestamp is taken before [charge] so
   a span's begin precedes its own emit cost. *)
let emit t ~kind ~id ~parent ~cat ~name ~pid ~arg =
  t.seq <- t.seq + 1;
  let ev =
    {
      ev_kind = kind;
      ev_id = id;
      ev_parent = parent;
      ev_cat = cat;
      ev_name = name;
      ev_ts = t.now ();
      ev_cpu = t.cpu ();
      ev_pid = pid;
      ev_arg = arg;
      ev_seq = t.seq;
    }
  in
  Kstats.incr t.stats t.st_events;
  t.charge ();
  store t ev;
  match t.sink with Some f -> f ev | None -> ()

let top_of t cpu =
  match t.stacks.(cpu) with [] -> 0 | f :: _ -> f.f_id

let current_span t =
  if not t.enabled then 0 else top_of t (clamp_cpu t (t.cpu ()))

let span_begin t ?(pid = 0) ?(arg = 0) ~cat ~name () =
  if not t.enabled then 0
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Kstats.incr t.stats t.st_spans;
    let cpu = clamp_cpu t (t.cpu ()) in
    emit t ~kind:Begin ~id ~parent:(top_of t cpu) ~cat ~name ~pid ~arg;
    t.stacks.(cpu) <- { f_id = id; f_cat = cat; f_name = name } :: t.stacks.(cpu);
    id
  end

(* Find the CPU whose stack holds span [id]: the active CPU in the
   overwhelmingly common case (spans are begun and ended within one
   scheduler slice), falling back to a scan. *)
let stack_cpu_of t id =
  let active = clamp_cpu t (t.cpu ()) in
  if List.exists (fun f -> f.f_id = id) t.stacks.(active) then Some active
  else
    let found = ref None in
    Array.iteri
      (fun c st ->
        if !found = None && List.exists (fun f -> f.f_id = id) st then
          found := Some c)
      t.stacks;
    !found

let span_end t ?(pid = 0) ?(arg = 0) id =
  if t.enabled && id > 0 then
    match stack_cpu_of t id with
    | None -> ()  (* begun while disabled, or cleared since *)
    | Some cpu ->
        let frame = List.find (fun f -> f.f_id = id) t.stacks.(cpu) in
        (* drop mis-nested frames above the one being ended *)
        let rec unwind = function
          | [] -> []
          | f :: rest -> if f.f_id = id then rest else unwind rest
        in
        t.stacks.(cpu) <- unwind t.stacks.(cpu);
        emit t ~kind:End ~id ~parent:(top_of t cpu) ~cat:frame.f_cat
          ~name:frame.f_name ~pid ~arg

let with_span t ?pid ?arg ~cat ~name f =
  if not t.enabled then f ()
  else begin
    let id = span_begin t ?pid ?arg ~cat ~name () in
    match f () with
    | v ->
        span_end t ?pid id;
        v
    | exception e ->
        span_end t ?pid id;
        raise e
  end

let instant t ?(pid = 0) ?(arg = 0) ~cat ~name () =
  if t.enabled then
    let cpu = clamp_cpu t (t.cpu ()) in
    emit t ~kind:Instant ~id:0 ~parent:(top_of t cpu) ~cat ~name ~pid ~arg

let async_begin t ?(pid = 0) ?(arg = 0) ~cat ~name () =
  if not t.enabled then 0
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Kstats.incr t.stats t.st_spans;
    let cpu = clamp_cpu t (t.cpu ()) in
    Hashtbl.replace t.pending_async id (cat, name);
    emit t ~kind:Async_begin ~id ~parent:(top_of t cpu) ~cat ~name ~pid ~arg;
    id
  end

let async_end t ?(pid = 0) ?(arg = 0) id =
  if t.enabled && id > 0 then begin
    let cat, name =
      match Hashtbl.find_opt t.pending_async id with
      | Some cn ->
          Hashtbl.remove t.pending_async id;
          cn
      | None -> ("async", "span")
    in
    let cpu = clamp_cpu t (t.cpu ()) in
    emit t ~kind:Async_end ~id ~parent:(top_of t cpu) ~cat ~name ~pid ~arg
  end

(* All retained events, in emit order.  Each ring's slots are already
   unique by [ev_seq], so a global sort reconstructs the interleaving
   regardless of wrap position. *)
let events t =
  let acc = ref [] in
  Array.iter
    (fun r ->
      Array.iter
        (function Some ev -> acc := ev :: !acc | None -> ())
        r.slots)
    t.rings;
  List.sort (fun a b -> compare a.ev_seq b.ev_seq) !acc

(* --- span replay (shared by the folded and top exporters) ------------- *)

let label cat name = cat ^ ":" ^ name

type replay_frame = {
  rf_id : int;
  rf_label : string;
  rf_start : int;
  mutable rf_child : int;  (* cycles attributed to children *)
}

(* Replay sync Begin/End events, calling [f ~path ~label ~total ~self]
   for every span as it closes.  [path] is the root-first stack of
   labels at the time the span ran.  Orphan Ends (Begin lost to ring
   overflow) are ignored; spans still open when the trace stops are
   closed at the last timestamp seen so their cycles are not lost. *)
let replay events f =
  let events = List.sort (fun a b -> compare a.ev_seq b.ev_seq) events in
  let max_ts = List.fold_left (fun m e -> max m e.ev_ts) 0 events in
  let stacks : (int, replay_frame list ref) Hashtbl.t = Hashtbl.create 8 in
  let cpus = ref [] in
  let stack_of cpu =
    match Hashtbl.find_opt stacks cpu with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add stacks cpu r;
        cpus := cpu :: !cpus;
        r
  in
  let path_of st =
    String.concat ";" (List.rev_map (fun fr -> fr.rf_label) st)
  in
  let close st ts =
    match !st with
    | [] -> ()
    | fr :: rest ->
        let total = max 0 (ts - fr.rf_start) in
        let self = max 0 (total - fr.rf_child) in
        f ~path:(path_of !st) ~label:fr.rf_label ~total ~self;
        (match rest with p :: _ -> p.rf_child <- p.rf_child + total | [] -> ());
        st := rest
  in
  List.iter
    (fun e ->
      match e.ev_kind with
      | Begin ->
          let st = stack_of e.ev_cpu in
          st :=
            {
              rf_id = e.ev_id;
              rf_label = label e.ev_cat e.ev_name;
              rf_start = e.ev_ts;
              rf_child = 0;
            }
            :: !st
      | End ->
          let st = stack_of e.ev_cpu in
          if List.exists (fun fr -> fr.rf_id = e.ev_id) !st then begin
            while
              match !st with fr :: _ -> fr.rf_id <> e.ev_id | [] -> false
            do
              close st e.ev_ts
            done;
            close st e.ev_ts
          end
      | Instant | Async_begin | Async_end -> ())
    events;
  List.iter
    (fun cpu ->
      let st = Hashtbl.find stacks cpu in
      while !st <> [] do
        close st max_ts
      done)
    (List.sort compare !cpus)

(* Folded stacks: "cat:name;cat:name;... self_cycles" lines, one per
   distinct stack, sorted — feed to flamegraph.pl / speedscope. *)
let fold_events events =
  let weights : (string, int) Hashtbl.t = Hashtbl.create 64 in
  replay events (fun ~path ~label:_ ~total:_ ~self ->
      if self > 0 then
        Hashtbl.replace weights path
          (self + Option.value ~default:0 (Hashtbl.find_opt weights path)));
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights [] in
  let b = Buffer.create 4096 in
  List.iter
    (fun (path, w) -> Buffer.add_string b (Printf.sprintf "%s %d\n" path w))
    (List.sort compare lines);
  Buffer.contents b

let folded t = fold_events (events t)

(* --- top-N self profile ------------------------------------------------ *)

type profile_row = {
  p_label : string;
  p_count : int;
  p_total : int;  (* inclusive cycles *)
  p_self : int;   (* exclusive cycles *)
  p_share : float; (* p_self / all self cycles, computed pre-truncation *)
}

let top_of_events ?(n = 10) events =
  let agg : (string, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  replay events (fun ~path:_ ~label ~total ~self ->
      let c, tt, s =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt agg label)
      in
      Hashtbl.replace agg label (c + 1, tt + total, s + self));
  let all_self =
    Hashtbl.fold (fun _ (_, _, s) acc -> acc + s) agg 0 |> max 1
  in
  let rows =
    Hashtbl.fold
      (fun label (c, tt, s) acc ->
        {
          p_label = label;
          p_count = c;
          p_total = tt;
          p_self = s;
          p_share = float_of_int s /. float_of_int all_self;
        }
        :: acc)
      agg []
  in
  let rows =
    List.sort
      (fun a b ->
        match compare b.p_self a.p_self with
        | 0 -> (
            match compare b.p_total a.p_total with
            | 0 -> compare a.p_label b.p_label
            | c -> c)
        | c -> c)
      rows
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take n rows

let top ?n t = top_of_events ?n (events t)

let pp_top ppf rows =
  Fmt.pf ppf "%-32s %10s %14s %14s %6s@." "span" "count" "self(cy)"
    "total(cy)" "self%";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-32s %10d %14d %14d %5.1f%%@." r.p_label r.p_count r.p_self
        r.p_total (100. *. r.p_share))
    rows

(* --- Chrome trace_event JSON (Perfetto) -------------------------------- *)

(* One process (pid 1) with a thread per simulated CPU carries the sync
   spans; async spans get their own id-keyed tracks ("b"/"e" phases).
   Timestamps are raw simulated cycles (Perfetto's "us" axis; only
   ratios matter).  Every record carries its span id, parent, simulated
   pid and arg in [args], so the export parses back losslessly. *)
let chrome_of_events ~ncpus events =
  let esc = Kstats.json_escape in
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"ksim\"}}";
  for c = 0 to ncpus - 1 do
    Buffer.add_string b
      (Printf.sprintf
         ",{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"cpu%d\"}}"
         c c)
  done;
  List.iter
    (fun e ->
      let ph, extra =
        match e.ev_kind with
        | Begin -> ("B", "")
        | End -> ("E", "")
        | Instant -> ("i", ",\"s\":\"t\"")
        | Async_begin -> ("b", Printf.sprintf ",\"id\":%d" e.ev_id)
        | Async_end -> ("e", Printf.sprintf ",\"id\":%d" e.ev_id)
      in
      Buffer.add_string b
        (Printf.sprintf
           ",{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"cat\":\"%s\",\"name\":\"%s\"%s,\"args\":{\"span\":%d,\"parent\":%d,\"kpid\":%d,\"arg\":%d}}"
           ph e.ev_cpu e.ev_ts (esc e.ev_cat) (esc e.ev_name) extra e.ev_id
           e.ev_parent e.ev_pid e.ev_arg))
    (List.sort (fun a b -> compare a.ev_seq b.ev_seq) events);
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let chrome_json t = chrome_of_events ~ncpus:t.ncpus (events t)

(* --- minimal JSON parser ----------------------------------------------- *)

(* Hand-rolled (the toolchain ships no JSON library): enough of RFC 8259
   for our own exports and BENCH_kstats.json — objects, arrays, strings
   with escapes, numbers, booleans, null. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | Some d -> fail "expected '%c' at %d, got '%c'" c !pos d
      | None -> fail "expected '%c' at %d, got end of input" c !pos
    in
    let parse_lit lit v =
      String.iter expect lit;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          if c = '"' then Buffer.contents b
          else if c = '\\' then begin
            (if !pos >= n then fail "unterminated escape"
             else
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'u' ->
                   if !pos + 4 > n then fail "truncated \\u escape"
                   else begin
                     let hex = String.sub s !pos 4 in
                     pos := !pos + 4;
                     let code =
                       try int_of_string ("0x" ^ hex)
                       with _ -> fail "bad \\u escape %s" hex
                     in
                     (* enough for kstats' control-char escapes; other
                        code points degrade to '?' *)
                     if code < 256 then Buffer.add_char b (Char.chr code)
                     else Buffer.add_char b '?'
                   end
               | c -> fail "bad escape '\\%c'" c);
            go ()
          end
          else begin
            Buffer.add_char b c;
            go ()
          end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      match float_of_string_opt lit with
      | Some f -> Num f
      | None -> fail "bad number %S at %d" lit start
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}' at %d" !pos
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']' at %d" !pos
            in
            elems []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> parse_lit "true" (Bool true)
      | Some 'f' -> parse_lit "false" (Bool false)
      | Some 'n' -> parse_lit "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let to_int = function
    | Num f -> int_of_float f
    | _ -> fail "expected number"

  let to_float = function Num f -> f | _ -> fail "expected number"
  let to_string = function Str s -> s | _ -> fail "expected string"
  let to_list = function Arr l -> l | _ -> fail "expected array"
end

(* Parse a Chrome trace back into events (metadata records are skipped).
   [ev_seq] is reassigned from array order, which {!chrome_of_events}
   preserves, so export -> parse -> export is a fixed point. *)
let events_of_chrome json =
  let root = Json.parse json in
  let traces =
    match Json.member "traceEvents" root with
    | Some (Json.Arr l) -> l
    | _ -> Json.fail "no traceEvents array"
  in
  let seq = ref 0 in
  List.filter_map
    (fun j ->
      let str key =
        match Json.member key j with Some (Json.Str s) -> s | _ -> ""
      in
      let num key =
        match Json.member key j with Some v -> Json.to_int v | None -> 0
      in
      let arg key =
        match Json.member "args" j with
        | Some a -> (
            match Json.member key a with Some v -> Json.to_int v | None -> 0)
        | None -> 0
      in
      let kind =
        match str "ph" with
        | "B" -> Some Begin
        | "E" -> Some End
        | "i" -> Some Instant
        | "b" -> Some Async_begin
        | "e" -> Some Async_end
        | _ -> None  (* "M" and anything else *)
      in
      match kind with
      | None -> None
      | Some k ->
          incr seq;
          Some
            {
              ev_kind = k;
              ev_id = arg "span";
              ev_parent = arg "parent";
              ev_cat = str "cat";
              ev_name = str "name";
              ev_ts = num "ts";
              ev_cpu = num "tid";
              ev_pid = arg "kpid";
              ev_arg = arg "arg";
              ev_seq = !seq;
            })
    traces
