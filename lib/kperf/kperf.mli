(** ftrace-style tracing for the simulated kernel: per-CPU bounded trace
    rings, causal spans with parent/child links, and exporters — folded
    stacks for flamegraphs, Chrome [trace_event] JSON loadable in
    Perfetto, and a top-N "where did the cycles go" self-profile.

    The tracer mirrors the kstats contract: disabled by default, every
    hook a single branch when off, and the library itself never touches
    the simulated clock.  The kernel supplies [now]/[cpu]/[charge]
    closures at boot; [charge] models the per-event emit cost
    ([Cost_model.trace_emit]) and only runs while tracing is enabled, so
    untraced runs are bit-for-bit identical to an untraced kernel.

    Synchronous spans follow per-CPU stack discipline (a span begun
    inside another becomes its child); asynchronous spans
    ([async_begin]/[async_end]) outlive any one syscall — a knet request
    in flight — and export as Perfetto async tracks. *)

(** Ring overflow behaviour: [Overwrite] keeps the newest events
    (counting [kperf.ring.overwritten]); [Drop] keeps the oldest
    (counting [kperf.ring.drops]). *)
type mode = Overwrite | Drop

(** Tracers created while [true] start enabled (mirrors
    [Kstats.default_enabled]). *)
val default_enabled : bool ref

type ev_kind = Begin | End | Instant | Async_begin | Async_end

type event = {
  ev_kind : ev_kind;
  ev_id : int;      (** span id; 0 for instants *)
  ev_parent : int;  (** enclosing span id; 0 at top level *)
  ev_cat : string;
  ev_name : string;
  ev_ts : int;      (** simulated cycles *)
  ev_cpu : int;
  ev_pid : int;
  ev_arg : int;     (** numeric payload: spin cycles, batch size, port… *)
  ev_seq : int;     (** global emit order, 1-based *)
}

type t

(** [now]/[cpu]/[charge] default to constants suitable for standalone
    use (tests); the kernel wires its clock, scheduler and cost model.
    [ring_capacity] is per CPU.  Counters register into [stats]. *)
val create :
  ?enabled:bool ->
  ?mode:mode ->
  ?ring_capacity:int ->
  ?ncpus:int ->
  ?stats:Kstats.t ->
  ?now:(unit -> int) ->
  ?cpu:(unit -> int) ->
  ?charge:(unit -> unit) ->
  unit ->
  t

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

(** Mirror hook: called with every emitted event while enabled (the
    Kmonitor bridge installs itself here). *)
val set_sink : t -> (event -> unit) option -> unit

val ncpus : t -> int
val mode : t -> mode

(** Events rejected in [Drop] mode. *)
val drops : t -> int

(** Events displaced in [Overwrite] mode. *)
val overwritten : t -> int

(** Total events emitted (including dropped/overwritten ones). *)
val emitted : t -> int

(** Forget all events and open spans; ids and sequence restart. *)
val clear : t -> unit

(** {1 Emit hooks} — single branch, no-ops returning 0 when disabled. *)

(** Open a span as a child of the active CPU's current span; returns its
    id (0 when disabled — [span_end] ignores 0). *)
val span_begin :
  t -> ?pid:int -> ?arg:int -> cat:string -> name:string -> unit -> int

val span_end : t -> ?pid:int -> ?arg:int -> int -> unit

(** [with_span t ~cat ~name f]: [f] bracketed by a span (closed on
    exception too). *)
val with_span :
  t -> ?pid:int -> ?arg:int -> cat:string -> name:string -> (unit -> 'a) -> 'a

(** A point event, parented to the current span. *)
val instant :
  t -> ?pid:int -> ?arg:int -> cat:string -> name:string -> unit -> unit

(** Open an asynchronous span (not part of any CPU stack). *)
val async_begin :
  t -> ?pid:int -> ?arg:int -> cat:string -> name:string -> unit -> int

val async_end : t -> ?pid:int -> ?arg:int -> int -> unit

(** Innermost open span on the active CPU (0 when none / disabled). *)
val current_span : t -> int

(** {1 Reading} *)

(** All retained events in emit order (ring overflow already applied). *)
val events : t -> event list

(** {1 Exporters} — all deterministic for a fixed event sequence. *)

(** Folded stacks: one ["cat:name;…;cat:name self_cycles"] line per
    distinct stack, sorted; feed to flamegraph.pl or speedscope. *)
val folded : t -> string

val fold_events : event list -> string

type profile_row = {
  p_label : string;
  p_count : int;
  p_total : int;  (** inclusive cycles *)
  p_self : int;   (** exclusive cycles *)
  p_share : float;
      (** [p_self] as a fraction of all self cycles in the trace,
          computed before top-N truncation *)
}

(** Top [n] spans by exclusive (self) cycles. *)
val top : ?n:int -> t -> profile_row list

val top_of_events : ?n:int -> event list -> profile_row list
val pp_top : Format.formatter -> profile_row list -> unit

(** Chrome [trace_event] JSON, loadable in Perfetto / chrome://tracing:
    one thread per simulated CPU for sync spans, id-keyed async tracks,
    timestamps in raw simulated cycles. *)
val chrome_json : t -> string

val chrome_of_events : ncpus:int -> event list -> string

(** Parse {!chrome_json} output back into events (metadata records are
    skipped; [ev_seq] reassigned from array order).
    @raise Json.Parse_error on malformed input. *)
val events_of_chrome : string -> event list

(** Minimal hand-rolled JSON parser (no external JSON dependency is
    available): objects, arrays, strings with escapes, numbers, [true],
    [false], [null].  Also used by [kstats_tool diff] to read
    [BENCH_kstats.json]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse : string -> t
  val member : string -> t -> t option
  val to_int : t -> int
  val to_float : t -> float
  val to_string : t -> string
  val to_list : t -> t list
end
