(** The Cosy kernel extension (§2.3).

    [submit] crosses the boundary once, decodes the compound (charging
    per-op decode cost), and executes the operations in kernel mode.
    Syscall ops dispatch to the same in-kernel service routines ordinary
    syscalls use, so every permission check still runs — only crossings
    and copies disappear.  Loop back-edges hit the scheduler's preemption
    checkpoint and the watchdog; [Call_user] ops run mini-C functions
    under the active {!Cosy_safety} protection mode. *)

exception Exec_error of string

type t

(** [create ?shared_size ?policy ?user_program sys] builds an extension
    bound to [sys].  [user_program] is mini-C source providing the
    functions [Call_user] ops may invoke. *)
val create :
  ?shared_size:int ->
  ?policy:Cosy_safety.policy ->
  ?user_program:string ->
  Ksyscall.Systable.t ->
  t

(** The zero-copy shared buffer (visible to both "sides"). *)
val shared : t -> Shared_buffer.t

val safety : t -> Cosy_safety.t

(** Install/remove the kverify admission checker.  With a verifier set,
    every submitted compound is statically checked inside the kernel
    stay before execution: compounds that verify run on the cheaper
    [cosy_exec_op_verified] cost with the back-edge watchdog elided
    (their loops were proven bounded at admission — the preemption
    checkpoint still runs); compounds that don't verify fall back to
    today's watchdog path bit-for-bit.  [None] (the default) disables
    admission entirely. *)
val set_verifier : t -> (Compound.t -> bool) option -> unit

(** Install/remove the kopt optimizer.  Consulted before the verifier on
    every submit (inside the kernel stay, after the safety watchdog is
    armed): [Some run] means the compound was admitted and compiled (or
    found in the per-process compiled-program cache) — the thunk
    executes the specialized program and returns the final register
    file plus the logical op and back-edge counts it performed, which
    [submit] folds into the extension's counters.  [None] from the
    optimizer falls back to the plain verifier/dynamic path bit-for-bit.
    An installed optimizer subsumes the verifier: admission charges are
    paid inside the optimizer instead. *)
val set_optimizer :
  t -> (Compound.t -> (unit -> int array * int * int) option) option -> unit

(** Compounds admitted on the watchdog-elided path so far. *)
val watchdog_elisions : t -> int

(** {1 Interpreter internals exposed for the kopt plan executor} *)

(** Resolve an integer operand against the register file.
    @raise Exec_error on out-of-range slots or string immediates. *)
val int_arg : int array -> Cosy_op.arg -> int

(** [exec_syscall t slots sysno args] lowers one syscall op to a typed
    request, dispatches it through the same in-kernel service path
    [submit] uses (gate, service routine, kperf span, shared-buffer
    deposit), and returns the C-style return value. *)
val exec_syscall : t -> int array -> int -> Cosy_op.arg list -> int

(** Execute a compound; returns the final register file.
    @raise Exec_error on malformed compounds,
    @raise Cosy_safety.Watchdog_expired when the kernel-time budget is
    exhausted (the offending process is killed first),
    @raise Ksyscall.Usyscall.Flow_violation when the syscall-flow gate
    kills the offender mid-compound (same cleanup as the watchdog),
    @raise Ksim.Fault.Fault when an isolated user function escapes its
    segment.  Kernel mode is always exited before raising. *)
val submit : t -> Compound.t -> int array

type stats = {
  submits : int;
  ops_executed : int;
  backedges : int;
  user_calls : int;
  watchdog_kills : int;
  segment_loads : int;
}

val stats : t -> stats
