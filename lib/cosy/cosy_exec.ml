(* The Cosy kernel extension (§2.3): receives a compound through the
   shared compound buffer, decodes it (charging per-op decode cost), and
   executes the operations in turn in kernel mode.  Syscall operations
   dispatch to the same in-kernel service routines ordinary syscalls use,
   so all permission/validity checks still run — only the boundary
   crossings and data copies disappear. *)

exception Exec_error of string

module Syscall = Ksyscall.Syscall

type t = {
  sys : Ksyscall.Systable.t;
  shared : Shared_buffer.t;
  safety : Cosy_safety.t;
  interp : Minic.Interp.t option;   (* loaded user functions *)
  interp_region : (int * int) option; (* base, len of interp memory *)
  kstats : Kstats.t;
  st_submits : Kstats.counter;
  st_ops : Kstats.counter;
  st_backedges : Kstats.counter;
  st_user_calls : Kstats.counter;
  st_compound_ops : Kstats.hist;
  mutable submits : int;
  mutable ops_executed : int;
  mutable backedges : int;
  mutable user_calls : int;
  (* kverify admission: when set, each submitted compound is statically
     checked before execution; compounds that verify run with the
     watchdog elided on the cheaper per-op cost.  [None] (the default)
     is today's dynamic-only safety, bit-for-bit. *)
  mutable verifier : (Compound.t -> bool) option;
  mutable watchdog_elisions : int;
  (* kopt: when set, each submitted compound is offered to the optimizer
     before the interpreter runs.  [Some run] means the compound was
     admitted and compiled (or found in the compiled-program cache): the
     thunk executes the specialized plan — observably identical results,
     cheaper accounting — and returns (slots, ops executed, back-edges).
     [None] falls back to the dynamic path below. *)
  mutable optimizer :
    (Compound.t -> (unit -> int array * int * int) option) option;
}

let create ?(shared_size = 65536) ?policy ?user_program sys =
  let kernel = Ksyscall.Systable.kernel sys in
  let cost = Ksim.Kernel.cost kernel in
  let clock = Ksim.Kernel.clock kernel in
  let policy =
    match policy with Some p -> p | None -> Cosy_safety.default_policy cost
  in
  let interp, interp_region =
    match user_program with
    | None -> (None, None)
    | Some src ->
        let base_vpn = 0x80000 and pages = 64 in
        let interp =
          Minic.Interp.create
            ~space:(Ksim.Kernel.kspace kernel)
            ~clock ~cost ~base_vpn ~pages
        in
        ignore (Minic.Interp.parse_and_load interp ~file:"cosy_user.c" src);
        let page_size = Ksim.Kernel.page_size kernel in
        (Some interp, Some (base_vpn * page_size, pages * page_size))
  in
  let kstats = Ksim.Kernel.stats kernel in
  {
    sys;
    shared = Shared_buffer.create ~stats:kstats shared_size;
    safety =
      Cosy_safety.create ~fault:(Ksim.Kernel.fault kernel) ~policy ~clock ~cost
        ();
    interp;
    interp_region;
    kstats;
    st_submits = Kstats.counter kstats "cosy.submits";
    st_ops = Kstats.counter kstats "cosy.ops_executed";
    st_backedges = Kstats.counter kstats "cosy.backedges";
    st_user_calls = Kstats.counter kstats "cosy.user_calls";
    st_compound_ops = Kstats.histogram kstats "cosy.compound.ops";
    submits = 0;
    ops_executed = 0;
    backedges = 0;
    user_calls = 0;
    verifier = None;
    watchdog_elisions = 0;
    optimizer = None;
  }

let shared t = t.shared
let safety t = t.safety
let set_verifier t v = t.verifier <- v
let set_optimizer t o = t.optimizer <- o
let watchdog_elisions t = t.watchdog_elisions

(* Read a NUL-terminated string argument: immediate or from the shared
   buffer. *)
let string_arg t slots = function
  | Cosy_op.Str s -> s
  | Cosy_op.Shared off ->
      let rec find i =
        if off + i >= Shared_buffer.size t.shared then i
        else if Bytes.get (Shared_buffer.read t.shared ~off:(off + i) ~len:1) 0
                = '\000'
        then i
        else find (i + 1)
      in
      Shared_buffer.read_string t.shared ~off ~len:(find 0)
  | Cosy_op.Const _ | Cosy_op.Slot _ as a ->
      ignore slots;
      raise (Exec_error (Fmt.str "expected string argument, got %a" Cosy_op.pp_arg a))

let int_arg slots = function
  | Cosy_op.Const v -> v
  | Cosy_op.Slot i ->
      if i < 0 || i >= Array.length slots then
        raise (Exec_error (Printf.sprintf "slot %d out of range" i));
      slots.(i)
  | Cosy_op.Shared off -> off
  | Cosy_op.Str _ -> raise (Exec_error "expected integer argument, got string")

let open_flags_of_int v =
  (* bit 0: write, bit 1: create, bit 2: trunc, bit 3: append *)
  let flags = if v land 1 <> 0 then [ Kvfs.Vfs.O_RDWR ] else [ Kvfs.Vfs.O_RDONLY ] in
  let flags = if v land 2 <> 0 then Kvfs.Vfs.O_CREAT :: flags else flags in
  let flags = if v land 4 <> 0 then Kvfs.Vfs.O_TRUNC :: flags else flags in
  if v land 8 <> 0 then Kvfs.Vfs.O_APPEND :: flags else flags

(* Execute one syscall op: lower the decoded compound operands to a
   typed [Syscall.req], run it through the same in-kernel service
   dispatch the synchronous wrappers and the kring use, and collapse the
   typed reply to the compound's C-style return value.  Input payloads
   (write/pwrite) are pulled from the shared buffer while building the
   request; output payloads (read/pread/readdir) are pushed back into it
   once the reply is in hand. *)
let do_syscall t slots sysno args =
  let name =
    match Cosy_op.name_of_sysno sysno with
    | Some n -> n
    | None -> raise (Exec_error (Printf.sprintf "bad syscall number %d" sysno))
  in
  (* Where an output payload goes: into the shared buffer, or dropped. *)
  let out_sink what = function
    | Cosy_op.Shared off -> Some off
    | Cosy_op.Const 0 -> None (* discard *)
    | _ -> raise (Exec_error (what ^ ": buffer must be shared or null"))
  in
  let in_data what len = function
    | Cosy_op.Shared off -> Shared_buffer.read t.shared ~off ~len
    | Cosy_op.Str s -> Bytes.of_string s
    | _ -> raise (Exec_error (what ^ ": buffer must be shared or immediate"))
  in
  let nop_post (_ : Syscall.reply) = () in
  let req, post =
    match (name, args) with
    | "open", [ path; flags ] ->
        ( Syscall.Open
            {
              path = string_arg t slots path;
              flags = open_flags_of_int (int_arg slots flags);
            },
          nop_post )
    | "close", [ fd ] -> (Syscall.Close { fd = int_arg slots fd }, nop_post)
    | "read", [ fd; buf; len ] ->
        let sink = out_sink "read" buf in
        ( Syscall.Read { fd = int_arg slots fd; len = int_arg slots len },
          function
          | Ok (Syscall.R_bytes data) ->
              Option.iter (fun off -> Shared_buffer.write t.shared ~off data) sink
          | _ -> () )
    | "write", [ fd; buf; len ] ->
        ( Syscall.Write
            {
              fd = int_arg slots fd;
              data = in_data "write" (int_arg slots len) buf;
            },
          nop_post )
    | "pread", [ fd; buf; len; off ] ->
        let sink = out_sink "pread" buf in
        ( Syscall.Pread
            {
              fd = int_arg slots fd;
              off = int_arg slots off;
              len = int_arg slots len;
            },
          function
          | Ok (Syscall.R_bytes data) ->
              Option.iter (fun boff -> Shared_buffer.write t.shared ~off:boff data) sink
          | _ -> () )
    | "pwrite", [ fd; buf; len; off ] ->
        ( Syscall.Pwrite
            {
              fd = int_arg slots fd;
              off = int_arg slots off;
              data = in_data "pwrite" (int_arg slots len) buf;
            },
          nop_post )
    | "lseek", [ fd; off; whence ] ->
        ( Syscall.Lseek
            {
              fd = int_arg slots fd;
              off = int_arg slots off;
              whence = Syscall.whence_of_int (int_arg slots whence);
            },
          nop_post )
    | "stat", [ path ] ->
        (Syscall.Stat { path = string_arg t slots path }, nop_post)
    | "fstat", [ fd ] -> (Syscall.Fstat { fd = int_arg slots fd }, nop_post)
    | "readdir", [ path; buf ] ->
        let sink = out_sink "readdir" buf in
        ( Syscall.Readdir { path = string_arg t slots path },
          function
          | Ok (Syscall.R_dirents entries) ->
              Option.iter
                (fun off ->
                  let names =
                    String.concat "\000"
                      (List.map (fun d -> d.Kvfs.Vtypes.d_name) entries)
                    ^ "\000"
                  in
                  Shared_buffer.write_string t.shared ~off names)
                sink
          | _ -> () )
    | "mkdir", [ path ] ->
        (Syscall.Mkdir { path = string_arg t slots path }, nop_post)
    | "unlink", [ path ] ->
        (Syscall.Unlink { path = string_arg t slots path }, nop_post)
    | "rename", [ src; dst ] ->
        ( Syscall.Rename
            { src = string_arg t slots src; dst = string_arg t slots dst },
          nop_post )
    | "fsync", [ fd ] -> (Syscall.Fsync { fd = int_arg slots fd }, nop_post)
    | "getpid", [] -> (Syscall.Getpid, nop_post)
    | _ ->
        raise
          (Exec_error (Printf.sprintf "%s: bad argument count (%d)" name
                         (List.length args)))
  in
  let perf = Ksim.Kernel.perf (Ksyscall.Systable.kernel t.sys) in
  let span = Kperf.span_begin perf ~cat:"cosy" ~name:("sys." ^ name) () in
  let reply =
    match Ksyscall.Usyscall.invoke ~origin:Ksyscall.Usyscall.Compound t.sys req with
    | r ->
        Kperf.span_end perf span;
        r
    | exception e ->
        Kperf.span_end perf span;
        raise e
  in
  post reply;
  Syscall.reply_to_retval reply

(* Execute a user-supplied function inside the kernel under the active
   protection mode. *)
let do_call_user t slots fname args =
  match (t.interp, t.interp_region) with
  | None, _ | _, None ->
      raise (Exec_error "no user program loaded into the Cosy extension")
  | Some interp, Some (base, len) ->
      t.user_calls <- t.user_calls + 1;
      Kstats.incr t.kstats t.st_user_calls;
      let mode = Cosy_safety.effective_mode t.safety fname in
      Cosy_safety.charge_call_overhead t.safety mode;
      let space = Minic.Interp.space interp in
      let saved_segment = Ksim.Address_space.segment space in
      (match Cosy_safety.segment_for ~base ~len mode with
      | Some seg -> Ksim.Address_space.set_segment space seg
      | None -> ());
      Minic.Interp.set_on_backedge interp (fun () ->
          Cosy_safety.watchdog_check t.safety);
      let restore () = Ksim.Address_space.set_segment space saved_segment in
      let result =
        try Minic.Interp.run interp ~args:(List.map (int_arg slots) args) fname
        with e ->
          restore ();
          raise e
      in
      restore ();
      Cosy_safety.record_safe_run t.safety fname;
      result

(* Submit a compound for execution: the single boundary crossing that
   replaces the whole marked code segment's worth of syscalls. *)
let submit t compound =
  let kernel = Ksyscall.Systable.kernel t.sys in
  let cost = Ksim.Kernel.cost kernel in
  let clock = Ksim.Kernel.clock kernel in
  let perf = Ksim.Kernel.perf kernel in
  let pid = (Ksim.Kernel.current kernel).Ksim.Kproc.pid in
  t.submits <- t.submits + 1;
  Kstats.incr t.kstats t.st_submits;
  let ops_before = t.ops_executed in
  (* one span per compound; the per-op "cosy:sys.*" spans nest under it *)
  let span = Kperf.span_begin perf ~pid ~cat:"cosy" ~name:"submit" () in
  Ksim.Kernel.enter_kernel kernel;
  Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.cosy_submit;
  Cosy_safety.arm t.safety;
  (* kopt: an installed optimizer subsumes plain admission — it consults
     kverify itself (charging identical admission costs), compiles the
     admitted compound into a specialized program (or pulls it from the
     per-process cache), and hands back an execution thunk.  [None]
     (rejected, or analysis produced nothing usable) falls back to the
     dynamic path below exactly as a rejected compound would. *)
  let optimized =
    match t.optimizer with None -> None | Some o -> o compound
  in
  (* kverify admission: statically check the compound before running a
     single op.  A verified compound executes on the cheaper per-op cost
     with the watchdog elided; anything else (including every compound
     when no verifier is installed) takes today's dynamic path. *)
  let verified =
    match (optimized, t.verifier) with
    | Some _, _ | None, None -> false
    | None, Some v ->
        let ok = v compound in
        if ok then t.watchdog_elisions <- t.watchdog_elisions + 1;
        ok
  in
  let per_op_cost =
    if verified then cost.Ksim.Cost_model.cosy_exec_op_verified
    else cost.Ksim.Cost_model.cosy_exec_op
  in
  let finish_exn e =
    Ksim.Kernel.exit_kernel kernel;
    Kperf.span_end perf ~pid span;
    raise e
  in
  let result =
    try
      match optimized with
      | Some run ->
          (* the compiled program was admitted: like the verified path,
             its loops are proven bounded, so the watchdog is elided *)
          t.watchdog_elisions <- t.watchdog_elisions + 1;
          let slots, ops_run, backedges = run () in
          t.ops_executed <- t.ops_executed + ops_run;
          Kstats.add t.kstats t.st_ops ops_run;
          t.backedges <- t.backedges + backedges;
          Kstats.add t.kstats t.st_backedges backedges;
          slots
      | None ->
      let ops, slot_count =
        Compound.decode ~clock ~per_op:cost.Ksim.Cost_model.cosy_decode_op
          compound
      in
      let slots = Array.make slot_count 0 in
      let pc = ref 0 in
      let running = ref true in
      while !running && !pc < Array.length ops do
        let cur = !pc in
        t.ops_executed <- t.ops_executed + 1;
        Kstats.incr t.kstats t.st_ops;
        Ksim.Sim_clock.advance clock per_op_cost;
        (match ops.(cur) with
        | Cosy_op.Set { dst; src } ->
            slots.(dst) <- int_arg slots src;
            incr pc
        | Cosy_op.Arith { dst; op; a; b } ->
            let va = int_arg slots a and vb = int_arg slots b in
            let v =
              match op with
              | Cosy_op.Aadd -> va + vb
              | Cosy_op.Asub -> va - vb
              | Cosy_op.Amul -> va * vb
              | Cosy_op.Adiv ->
                  if vb = 0 then raise (Exec_error "division by zero")
                  else va / vb
              | Cosy_op.Amod ->
                  if vb = 0 then raise (Exec_error "modulo by zero")
                  else va mod vb
              | Cosy_op.Aeq -> if va = vb then 1 else 0
              | Cosy_op.Ane -> if va <> vb then 1 else 0
              | Cosy_op.Alt -> if va < vb then 1 else 0
              | Cosy_op.Ale -> if va <= vb then 1 else 0
              | Cosy_op.Agt -> if va > vb then 1 else 0
              | Cosy_op.Age -> if va >= vb then 1 else 0
            in
            slots.(dst) <- v;
            incr pc
        | Cosy_op.Syscall { dst; sysno; args } ->
            slots.(dst) <- do_syscall t slots sysno args;
            incr pc
        | Cosy_op.Jmp target ->
            if target <= cur then begin
              t.backedges <- t.backedges + 1;
              Kstats.incr t.kstats t.st_backedges;
              Ksim.Scheduler.checkpoint (Ksim.Kernel.sched kernel);
              (* verified compounds proved their loops bounded at
                 admission; the preemption checkpoint above still runs *)
              if not verified then Cosy_safety.watchdog_check t.safety
            end;
            pc := target
        | Cosy_op.Jz { cond; target } ->
            if int_arg slots cond = 0 then begin
              if target <= cur then begin
                t.backedges <- t.backedges + 1;
                Kstats.incr t.kstats t.st_backedges;
                Ksim.Scheduler.checkpoint (Ksim.Kernel.sched kernel);
                if not verified then Cosy_safety.watchdog_check t.safety
              end;
              pc := target
            end
            else incr pc
        | Cosy_op.Call_user { dst; fname; args } ->
            slots.(dst) <- do_call_user t slots fname args;
            incr pc
        | Cosy_op.Halt -> running := false)
      done;
      slots
    with
    | (Cosy_safety.Watchdog_expired _ | Ksyscall.Usyscall.Flow_violation _)
      as e ->
        (* the watchdog — or the syscall-flow gate under the Kill policy
           — terminates the offending process (§2.3); account the
           boundary exit first, then kill *)
        let offender = Ksim.Kernel.current kernel in
        Ksim.Kernel.exit_kernel kernel;
        Ksim.Kernel.reap kernel offender
          ~reason:
            (match e with
            | Cosy_safety.Watchdog_expired _ -> "cosy-watchdog"
            | _ -> "flow-gate");
        Kperf.span_end perf ~pid span;
        raise e
    | e -> finish_exn e
  in
  Ksim.Kernel.exit_kernel kernel;
  Kstats.observe t.kstats t.st_compound_ops (t.ops_executed - ops_before);
  Kperf.span_end perf ~pid ~arg:(t.ops_executed - ops_before) span;
  result

(* Exported for the kopt plan executor, which replays the same lowering
   (typed request, service dispatch, reply deposit, kperf span) for the
   syscall ops it does not rewrite. *)
let exec_syscall = do_syscall

type stats = {
  submits : int;
  ops_executed : int;
  backedges : int;
  user_calls : int;
  watchdog_kills : int;
  segment_loads : int;
}

let stats (t : t) =
  {
    submits = t.submits;
    ops_executed = t.ops_executed;
    backedges = t.backedges;
    user_calls = t.user_calls;
    watchdog_kills = Cosy_safety.watchdog_kills t.safety;
    segment_loads = Cosy_safety.segment_loads t.safety;
  }
