(* Safety mechanisms for running user code in the kernel (§2.3):

   - a watchdog built on the preemptive kernel: every time the compound's
     execution reaches a loop back-edge, the scheduler checkpoint runs
     and the time spent in the kernel is compared to the budget; a
     compound that exceeds it is terminated;

   - segment-based memory protection for user-supplied functions, in the
     paper's two flavours: whole-function isolation in its own segment
     (maximum security, a segment reload on every entry/exit) or
     data-only isolation (no per-call overhead, but no protection
     against self-modifying or hand-crafted code);

   - the §2.4 future-work authentication heuristic: after a function has
     run safely [trust_after] times, its checks are dropped. *)

type protection_mode =
  | Isolated_segment    (* code+data in an isolated segment *)
  | Data_segment        (* only data isolated; no call overhead *)
  | Trusted             (* no segmentation (post-authentication) *)

let pp_mode ppf m =
  Fmt.string ppf
    (match m with
    | Isolated_segment -> "isolated-segment"
    | Data_segment -> "data-segment"
    | Trusted -> "trusted")

type policy = {
  mode : protection_mode;
  watchdog_budget : int;          (* max continuous kernel cycles *)
  trust_after : int option;       (* authenticate after N safe runs *)
}

let default_policy cost =
  {
    mode = Data_segment;
    watchdog_budget = cost.Ksim.Cost_model.max_kernel_cycles;
    trust_after = None;
  }

exception Watchdog_expired of { used : int; budget : int }

type t = {
  policy : policy;
  clock : Ksim.Sim_clock.t;
  cost : Ksim.Cost_model.t;
  mutable entry_cycles : int;       (* kernel-entry timestamp *)
  safe_runs : (string, int) Hashtbl.t;  (* user fn -> clean completions *)
  mutable watchdog_kills : int;
  mutable segment_loads : int;
  fault : (Kfault.t * Kfault.site) option;  (* cosy.watchdog_early *)
}

let create ?fault ~policy ~clock ~cost () =
  {
    policy;
    clock;
    cost;
    entry_cycles = 0;
    safe_runs = Hashtbl.create 8;
    watchdog_kills = 0;
    segment_loads = 0;
    fault =
      Option.map (fun kf -> (kf, Kfault.register kf "cosy.watchdog_early")) fault;
  }

let arm t = t.entry_cycles <- Ksim.Sim_clock.now t.clock

(* Called from every loop back-edge of the compound (and of user
   functions), i.e. whenever the preemptive kernel would get a chance to
   schedule: §2.3 "a preemptive kernel that checks the running time of a
   Cosy process inside the kernel every time it is scheduled out". *)
let watchdog_check t =
  let used = Ksim.Sim_clock.now t.clock - t.entry_cycles in
  (* injected early expiry: the timer interrupt fired spuriously while
     the compound was still under budget — same kill path, same
     cleanup, which is exactly what the sweep needs to exercise *)
  let early =
    match t.fault with
    | Some (kf, site) -> Kfault.fire kf site
    | None -> false
  in
  if used > t.policy.watchdog_budget || early then begin
    t.watchdog_kills <- t.watchdog_kills + 1;
    raise (Watchdog_expired { used; budget = t.policy.watchdog_budget })
  end

(* The effective protection mode for a user function, taking the
   authentication heuristic into account. *)
let effective_mode t fname =
  match t.policy.trust_after with
  | Some n when Option.value ~default:0 (Hashtbl.find_opt t.safe_runs fname) >= n
    ->
      Trusted
  | Some _ | None -> t.policy.mode

let record_safe_run t fname =
  Hashtbl.replace t.safe_runs fname
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.safe_runs fname))

let safe_runs t fname =
  Option.value ~default:0 (Hashtbl.find_opt t.safe_runs fname)

(* Charge the segment-register reloads for entering/leaving an isolated
   user function.  Only the fully-isolated mode pays this; data-only
   isolation "involves no additional runtime overhead while calling such
   a function" (§2.3). *)
let charge_call_overhead t = function
  | Isolated_segment ->
      t.segment_loads <- t.segment_loads + 2;
      Ksim.Sim_clock.advance t.clock (2 * t.cost.Ksim.Cost_model.segment_load)
  | Data_segment | Trusted -> ()

(* Build the segment a user function executes under, given the interp
   region [base, base+len). *)
let segment_for ~base ~len = function
  | Isolated_segment ->
      Some
        (Ksim.Segment.make ~name:"cosy-isolated" ~base ~limit:len
           ~executable:true ())
  | Data_segment ->
      (* code stays in the kernel segment; data references are confined *)
      Some (Ksim.Segment.make ~name:"cosy-data" ~base ~limit:len ())
  | Trusted -> None

let watchdog_kills t = t.watchdog_kills
let segment_loads t = t.segment_loads
