(** Safety mechanisms for running user code in the kernel (§2.3–2.4):
    the preemption-based watchdog, segment-based memory protection in the
    paper's two flavours, and the authentication heuristic that drops
    checks after enough safe runs. *)

type protection_mode =
  | Isolated_segment  (** code+data in an isolated segment: maximum
                          security, a segment reload on every call *)
  | Data_segment      (** only data isolated: "no additional runtime
                          overhead while calling such a function" *)
  | Trusted           (** no segmentation (post-authentication) *)

val pp_mode : Format.formatter -> protection_mode -> unit

type policy = {
  mode : protection_mode;
  watchdog_budget : int;     (** max continuous kernel cycles *)
  trust_after : int option;  (** authenticate after N safe runs *)
}

(** Data-segment mode with the cost model's kernel-time budget. *)
val default_policy : Ksim.Cost_model.t -> policy

exception Watchdog_expired of { used : int; budget : int }

type t

(** [fault] wires the kfault engine and registers the
    [cosy.watchdog_early] site: an armed plan makes {!watchdog_check}
    raise {!Watchdog_expired} while still under budget, exercising the
    kill/cleanup path on demand. *)
val create :
  ?fault:Kfault.t ->
  policy:policy ->
  clock:Ksim.Sim_clock.t ->
  cost:Ksim.Cost_model.t ->
  unit ->
  t

(** Start the watchdog window (at compound submit). *)
val arm : t -> unit

(** Called from every loop back-edge — whenever the preemptive kernel
    would get a chance to schedule.  @raise Watchdog_expired past the
    budget. *)
val watchdog_check : t -> unit

(** The mode a user function actually runs under, after the
    authentication heuristic. *)
val effective_mode : t -> string -> protection_mode

val record_safe_run : t -> string -> unit
val safe_runs : t -> string -> int

(** Charge the segment reloads for entering/leaving an isolated user
    function; free in the other modes. *)
val charge_call_overhead : t -> protection_mode -> unit

(** The segment a user function executes under, given its memory region;
    [None] means run unconfined. *)
val segment_for : base:int -> len:int -> protection_mode -> Ksim.Segment.t option

val watchdog_kills : t -> int
val segment_loads : t -> int
