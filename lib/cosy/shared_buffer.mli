(** The zero-copy shared buffer (§2.3): a region mapped into both the
    user and kernel address spaces, so data produced by one syscall
    inside a compound is consumed by the next without crossing the
    boundary.  Both sides see the same bytes; neither pays a
    [copy_{to,from}_user]. *)

type t

(** [create ?stats size] builds the buffer.  When [stats] is given, the
    buffer registers [cosy.shared.*] traffic counters and a high-water
    gauge in it.
    @raise Invalid_argument on non-positive size. *)
val create : ?stats:Kstats.t -> int -> t

val size : t -> int

(** All accessors raise [Invalid_argument] when the range leaves the
    buffer. *)

val write : t -> off:int -> Bytes.t -> unit
val read : t -> off:int -> len:int -> Bytes.t
val write_string : t -> off:int -> string -> unit
val read_string : t -> off:int -> len:int -> string

(** Highest byte offset ever written (for reporting). *)
val high_water : t -> int
