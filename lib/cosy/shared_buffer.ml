(* The zero-copy shared buffer (§2.3): a region mapped into both the user
   and kernel address spaces, so data produced by one syscall inside a
   compound can be consumed by the next without crossing the boundary.
   Both sides see the same bytes; neither pays a copy_{to,from}_user. *)

type t = {
  data : Bytes.t;
  kstats : Kstats.t;
  st_bytes_read : Kstats.counter;
  st_bytes_written : Kstats.counter;
  st_high_water : Kstats.gauge;
  mutable high_water : int;    (* bytes actually used, for reporting *)
}

let create ?(stats = Kstats.create ()) size =
  if size <= 0 then invalid_arg "Shared_buffer.create";
  {
    data = Bytes.make size '\000';
    kstats = stats;
    st_bytes_read = Kstats.counter stats "cosy.shared.bytes_read";
    st_bytes_written = Kstats.counter stats "cosy.shared.bytes_written";
    st_high_water = Kstats.gauge stats "cosy.shared.high_water";
    high_water = 0;
  }

let size t = Bytes.length t.data

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Shared_buffer: range [%d,+%d) outside buffer of %d" off
         len (Bytes.length t.data))

let write t ~off data =
  let len = Bytes.length data in
  check t ~off ~len;
  Bytes.blit data 0 t.data off len;
  Kstats.add t.kstats t.st_bytes_written len;
  if off + len > t.high_water then begin
    t.high_water <- off + len;
    Kstats.set t.kstats t.st_high_water t.high_water
  end

let read t ~off ~len =
  check t ~off ~len;
  Kstats.add t.kstats t.st_bytes_read len;
  Bytes.sub t.data off len

let write_string t ~off s = write t ~off (Bytes.of_string s)
let read_string t ~off ~len = Bytes.to_string (read t ~off ~len)
let high_water t = t.high_water
