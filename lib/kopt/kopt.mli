(** kopt: optimizing admitted programs.

    An optimization pass that runs after {!Kverify} admits a Cosy
    compound or kring batch, compiling it into a specialized internal
    program:

    - {b fd-resolution caching}: each distinct descriptor value is
      resolved (and charged) once per execution; [close] evicts.
    - {b copy coalescing}: adjacent transfers on contiguous
      shared-buffer ranges become single bulk copies.
    - {b op fusion}: read→write (compound) and recv→send (ring) pairs
      dispatch splice-style under one charge.
    - {b loop-invariant hoisting}: ops inside counted loops the checker
      proved bounded run at the hoisted per-op rate, after a one-time
      per-loop preamble charge.

    Compiled programs land in a per-process cache keyed by a structural
    hash of the compound's wire bytes ([kopt.cache.hits] /
    [kopt.cache.misses] / [kopt.cache.compiles] kstats); repeat
    submissions skip decode, admission, and compilation entirely.

    Invariant: optimized execution is observably identical to the
    interpreter — same results, shared-buffer contents, errno sequences
    and fd-table end state — only cycle/crossing/copy accounting may
    improve.  Anything the checker rejects falls back to the dynamic
    path bit-for-bit. *)

module Plan = Plan

type t

(** [create ?cache_capacity kv sys] builds an optimizer bound to the
    kernel behind [sys], running admission through [kv].
    [cache_capacity] bounds the compiled-program cache (default 64,
    FIFO eviction). *)
val create : ?cache_capacity:int -> Kverify.t -> Ksyscall.Systable.t -> t

(** Install this optimizer on a Cosy extension
    ([Cosy_exec.set_optimizer]).  Subsumes [Kverify.attach_cosy]: the
    optimizer runs admission itself with identical charges. *)
val attach : t -> Cosy.Cosy_exec.t -> unit

(** Install this optimizer on a kring ([Kring.set_optimizer]): admitted
    batches drain with recv→send pairs fused and the completion-region
    copy-out coalesced away. *)
val attach_ring : t -> Kring.t -> unit

(** The ring-batch half of the optimizer, exposed for direct use:
    admission (with charges) plus the batch plan, or [None] if the
    batch did not verify. *)
val ring_plan : t -> Ksyscall.Syscall.req list -> Kring.plan option

(** Probe the cache / admit / compile one compound.  Charges
    [kopt_cache_probe] always, admission + [kopt_compile_op] per op on a
    miss that verifies.  [None] means the compound was rejected — the
    caller should fall back to the dynamic path.  Exposed for tests and
    tools; {!attach} wires it into submit. *)
val try_plan : t -> shared_size:int -> Cosy.Compound.t -> Plan.t option

(** {1 Counters} (cache counters mirrored in kstats) *)

val hits : t -> int

val misses : t -> int

val compiles : t -> int

(** Distinct fd resolutions charged across executions. *)
val fd_resolved : t -> int

(** fd uses answered by the per-execution resolution cache. *)
val fd_reused : t -> int

val cache_size : t -> int
