(* The kopt facade: optimizing admitted programs.

   One [t] per kernel sits between kverify's admission and execution.
   When a Cosy compound is submitted, kopt probes the per-process
   compiled-program cache (keyed by a structural hash of the compound's
   wire bytes); on a miss it runs kverify admission itself — identical
   charges — and, if the compound verifies, compiles it with {!Plan}
   and caches the result.  The returned thunk executes the specialized
   program: fd operands resolve once per distinct descriptor, adjacent
   contiguous transfers run as single bulk copies, read→write pairs
   dispatch splice-style, and ops inside proven counted loops run at the
   hoisted per-op rate.  Results are observably identical to the
   interpreter — same slot values, shared-buffer contents, errno
   sequence, and fd-table end state — only the cycle/copy accounting
   improves.

   For kring batches, {!ring_plan} admits via kverify and plans fused
   recv→send pairs plus completion-region coalescing (the CQ lives in
   the same shared mapping as the SQ, so the batch-end reply copy-out is
   pure accounting and can be elided). *)

module Plan = Plan
module Kernel = Ksim.Kernel
module Systable = Ksyscall.Systable
module Syscall = Ksyscall.Syscall
module Sys_file = Ksyscall.Sys_file
module Op = Cosy.Cosy_op
module Sbuf = Cosy.Shared_buffer
module Cx = Cosy.Cosy_exec

type t = {
  kernel : Kernel.t;
  sys : Systable.t;
  kv : Kverify.t;
  cache_capacity : int;
  cache : (int * string, Plan.t) Hashtbl.t;  (* (pid, digest) -> plan *)
  order : (int * string) Queue.t;            (* FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable compiles : int;
  mutable fd_resolved : int;
  mutable fd_reused : int;
  kstats : Kstats.t;
  s_hits : Kstats.counter;
  s_misses : Kstats.counter;
  s_compiles : Kstats.counter;
  s_invalidations : Kstats.counter;
  fault : Kfault.t;
  site_invalidate : Kfault.site;
}

let create ?(cache_capacity = 64) kv sys =
  if cache_capacity <= 0 then
    invalid_arg "Kopt.create: cache_capacity must be positive";
  let kernel = Systable.kernel sys in
  let kstats = Kernel.stats kernel in
  {
    kernel;
    sys;
    kv;
    cache_capacity;
    cache = Hashtbl.create 16;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    compiles = 0;
    fd_resolved = 0;
    fd_reused = 0;
    kstats;
    s_hits = Kstats.counter kstats "kopt.cache.hits";
    s_misses = Kstats.counter kstats "kopt.cache.misses";
    s_compiles = Kstats.counter kstats "kopt.cache.compiles";
    s_invalidations = Kstats.counter kstats "kopt.cache.invalidations";
    fault = Kernel.fault kernel;
    site_invalidate = Kfault.register (Kernel.fault kernel) "kopt.cache_invalidate";
  }

let hits t = t.hits
let misses t = t.misses
let compiles t = t.compiles
let fd_resolved t = t.fd_resolved
let fd_reused t = t.fd_reused
let cache_size t = Hashtbl.length t.cache

(* --- compile + per-process cache ---------------------------------------- *)

let try_plan t ~shared_size compound =
  let cost = Kernel.cost t.kernel in
  let clock = Kernel.clock t.kernel in
  Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.kopt_cache_probe;
  let pid = (Kernel.current t.kernel).Ksim.Kproc.pid in
  let key = (pid, Digest.string (Bytes.to_string compound.Cosy.Compound.buf)) in
  (* injected cache invalidation: the entry is dropped at the moment of
     the probe (as if the process's cache had been flushed), turning the
     hit into a miss — the compound recompiles, observably identical *)
  let probe = Hashtbl.find_opt t.cache key in
  let probe =
    match probe with
    | Some _ when Kfault.fire t.fault t.site_invalidate ->
        Hashtbl.remove t.cache key;
        Kstats.incr t.kstats t.s_invalidations;
        None
    | p -> p
  in
  match probe with
  | Some plan ->
      t.hits <- t.hits + 1;
      Kstats.incr t.kstats t.s_hits;
      Some plan
  | None -> (
      t.misses <- t.misses + 1;
      Kstats.incr t.kstats t.s_misses;
      (* admission runs here, with exactly the charges the plain
         verifier path would have paid *)
      match Kverify.compound_verdict t.kv ~shared_size compound with
      | Kverify.Checker.Rejected _ -> None
      | Kverify.Checker.Verified { ops = nops; loops } ->
          let perf = Kernel.perf t.kernel in
          let span = Kperf.span_begin perf ~cat:"kopt" ~name:"compile" () in
          Ksim.Sim_clock.advance clock
            (nops * cost.Ksim.Cost_model.kopt_compile_op);
          (* the checker just decoded this compound; re-decoding here is
             covered by the per-op compile charge *)
          let ops, slot_count = Cosy.Compound.decode compound in
          let plan = Plan.compile ~shared_size ~loops ops ~slot_count in
          Kperf.span_end perf span;
          t.compiles <- t.compiles + 1;
          Kstats.incr t.kstats t.s_compiles;
          if Hashtbl.length t.cache >= t.cache_capacity then
            (match Queue.take_opt t.order with
            | Some old -> Hashtbl.remove t.cache old
            | None -> ());
          Hashtbl.replace t.cache key plan;
          Queue.add key t.order;
          Some plan)

(* --- the plan executor -------------------------------------------------- *)

(* Replicates [Usyscall.invoke ~origin:Compound]'s gate consult: the
   installed gate closure charges its own probe cost, so calling it once
   per original op keeps cycle and automaton-state parity with the
   interpreter even for ops we dispatch merged. *)
let gate_decide t sysno =
  match Systable.gate t.sys with
  | None -> Systable.Gate_allow
  | Some g -> g ~pid:(Kernel.current t.kernel).Ksim.Kproc.pid ~sysno

(* Execute one original op of a pair whose group could not dispatch
   merged (a non-allow gate decision), using the decision already taken
   for it — the consult order matches the interpreter's. *)
let dispatch_decided t shared slots ~decision ~req ~sink dst =
  match decision with
  | Systable.Gate_deny e -> slots.(dst) <- Syscall.reply_to_retval (Error e)
  | Systable.Gate_kill ->
      raise
        (Ksyscall.Usyscall.Flow_violation
           {
             pid = (Kernel.current t.kernel).Ksim.Kproc.pid;
             sysno = Syscall.sysno_of_req req;
           })
  | Systable.Gate_allow ->
      let reply : Syscall.reply =
        match req with
        | Syscall.Read { fd; len } ->
            Result.map
              (fun b -> Syscall.R_bytes b)
              (Sys_file.service_read t.sys ~fd ~len)
        | Syscall.Pread { fd; off; len } ->
            Result.map
              (fun b -> Syscall.R_bytes b)
              (Sys_file.service_pread t.sys ~fd ~off ~len)
        | Syscall.Write { fd; data } ->
            Result.map
              (fun v -> Syscall.R_int v)
              (Sys_file.service_write t.sys ~fd ~data)
        | _ -> raise (Cx.Exec_error "kopt: unexpected fallback request")
      in
      (match (reply, sink) with
      | Ok (Syscall.R_bytes data), Some o -> Sbuf.write shared ~off:o data
      | _ -> ());
      slots.(dst) <- Syscall.reply_to_retval reply

(* First operand is a file descriptor: eligible for resolution caching. *)
let fd_first = function
  | "close" | "read" | "write" | "pread" | "pwrite" | "lseek" | "fstat"
  | "fsync" ->
      true
  | _ -> false

let run_plan t cx (plan : Plan.t) =
  let kernel = t.kernel in
  let cost = Kernel.cost kernel in
  let clock = Kernel.clock kernel in
  let perf = Kernel.perf kernel in
  let shared = Cx.shared cx in
  let adv n = Ksim.Sim_clock.advance clock n in
  (* loop-invariant hoisting: the per-iteration decode/bounds checks of
     each proven counted loop run once, up front *)
  if plan.Plan.n_loops > 0 then
    adv (plan.Plan.n_loops * cost.Ksim.Cost_model.kopt_loop_hoist);
  let slots = Array.make plan.Plan.slot_count 0 in
  (* fd-resolution cache: each distinct descriptor value is resolved
     (and charged) once per execution; close evicts, so a reused fd
     number re-resolves *)
  let resolved : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let resolve_fd fdv =
    if Hashtbl.mem resolved fdv then begin
      t.fd_reused <- t.fd_reused + 1
    end
    else begin
      adv cost.Ksim.Cost_model.kopt_fd_resolve;
      t.fd_resolved <- t.fd_resolved + 1;
      Hashtbl.replace resolved fdv ()
    end
  in
  let ops_run = ref 0 in
  let backedges = ref 0 in
  let backedge () =
    incr backedges;
    (* admitted plans elide the watchdog (loops proven bounded), but
       the preemption checkpoint still runs, like the verified path *)
    Ksim.Scheduler.checkpoint (Kernel.sched kernel)
  in
  let pc = ref 0 in
  let running = ref true in
  let n = Array.length plan.Plan.instrs in
  while !running && !pc < n do
    let cur = !pc in
    match plan.Plan.instrs.(cur) with
    | Plan.I_skip -> raise (Cx.Exec_error "kopt: jump into merged pair")
    | Plan.I_op op -> (
        incr ops_run;
        let base =
          if plan.Plan.hoisted.(cur) then
            cost.Ksim.Cost_model.kopt_exec_op_hoisted
          else cost.Ksim.Cost_model.kopt_exec_op
        in
        match op with
        | Op.Set { dst; src } ->
            adv base;
            slots.(dst) <- Cx.int_arg slots src;
            incr pc
        | Op.Arith { dst; op; a; b } ->
            adv base;
            let va = Cx.int_arg slots a and vb = Cx.int_arg slots b in
            let v =
              match op with
              | Op.Aadd -> va + vb
              | Op.Asub -> va - vb
              | Op.Amul -> va * vb
              | Op.Adiv ->
                  if vb = 0 then raise (Cx.Exec_error "division by zero")
                  else va / vb
              | Op.Amod ->
                  if vb = 0 then raise (Cx.Exec_error "modulo by zero")
                  else va mod vb
              | Op.Aeq -> if va = vb then 1 else 0
              | Op.Ane -> if va <> vb then 1 else 0
              | Op.Alt -> if va < vb then 1 else 0
              | Op.Ale -> if va <= vb then 1 else 0
              | Op.Agt -> if va > vb then 1 else 0
              | Op.Age -> if va >= vb then 1 else 0
            in
            slots.(dst) <- v;
            incr pc
        | Op.Syscall { dst; sysno; args } ->
            adv cost.Ksim.Cost_model.kopt_exec_op;
            let name = Option.value ~default:"?" (Op.name_of_sysno sysno) in
            let fdv =
              if fd_first name then
                match args with
                | fd :: _ ->
                    let v = Cx.int_arg slots fd in
                    resolve_fd v;
                    Some v
                | [] -> None
              else None
            in
            slots.(dst) <- Cx.exec_syscall cx slots sysno args;
            (match (name, fdv) with
            | "close", Some v -> Hashtbl.remove resolved v
            | _ -> ());
            incr pc
        | Op.Jmp target ->
            adv base;
            if target <= cur then backedge ();
            pc := target
        | Op.Jz { cond; target } ->
            adv base;
            if Cx.int_arg slots cond = 0 then begin
              if target <= cur then backedge ();
              pc := target
            end
            else incr pc
        | Op.Call_user _ ->
            (* the checker rejects these at admission *)
            raise (Cx.Exec_error "kopt: user call in admitted plan")
        | Op.Halt ->
            adv base;
            running := false)
    | Plan.I_coalesce { kind; dst_a; dst_b; fd; off; len_a; len_b; foff } ->
        ops_run := !ops_run + 2;
        adv cost.Ksim.Cost_model.kopt_exec_op;
        let fdv = Cx.int_arg slots fd in
        resolve_fd fdv;
        let req_a, req_b =
          match kind with
          | Plan.G_read ->
              ( Syscall.Read { fd = fdv; len = len_a },
                Syscall.Read { fd = fdv; len = len_b } )
          | Plan.G_pread ->
              ( Syscall.Pread { fd = fdv; off = foff; len = len_a },
                Syscall.Pread { fd = fdv; off = foff + len_a; len = len_b } )
          | Plan.G_write ->
              let d = Sbuf.read shared ~off ~len:(len_a + len_b) in
              ( Syscall.Write { fd = fdv; data = Bytes.sub d 0 len_a },
                Syscall.Write { fd = fdv; data = Bytes.sub d len_a len_b } )
        in
        (* gate parity: one consult per original op, in original order *)
        let d_a = gate_decide t (Syscall.sysno_of_req req_a) in
        let d_b = gate_decide t (Syscall.sysno_of_req req_b) in
        (match (d_a, d_b) with
        | Systable.Gate_allow, Systable.Gate_allow -> (
            let name =
              match kind with
              | Plan.G_read -> "bulk.read"
              | Plan.G_pread -> "bulk.pread"
              | Plan.G_write -> "bulk.write"
            in
            let span = Kperf.span_begin perf ~cat:"kopt" ~name () in
            let finish () = Kperf.span_end perf span in
            match kind with
            | Plan.G_read | Plan.G_pread -> (
                let res =
                  match kind with
                  | Plan.G_read ->
                      Sys_file.service_read t.sys ~fd:fdv ~len:(len_a + len_b)
                  | _ ->
                      Sys_file.service_pread t.sys ~fd:fdv ~off:foff
                        ~len:(len_a + len_b)
                in
                finish ();
                match res with
                | Ok data ->
                    (* sequential-position semantics make the merged
                       payload land exactly where the pair's two
                       deposits would: contiguously from [off] *)
                    Sbuf.write shared ~off data;
                    let r_a = min len_a (Bytes.length data) in
                    slots.(dst_a) <- r_a;
                    slots.(dst_b) <- Bytes.length data - r_a
                | Error e ->
                    let rv = Syscall.reply_to_retval (Error e) in
                    slots.(dst_a) <- rv;
                    slots.(dst_b) <- rv)
            | Plan.G_write -> (
                let data = Sbuf.read shared ~off ~len:(len_a + len_b) in
                let res = Sys_file.service_write t.sys ~fd:fdv ~data in
                finish ();
                match res with
                | Ok w ->
                    let r_a = min len_a w in
                    slots.(dst_a) <- r_a;
                    slots.(dst_b) <- w - r_a
                | Error e ->
                    let rv = Syscall.reply_to_retval (Error e) in
                    slots.(dst_a) <- rv;
                    slots.(dst_b) <- rv))
        | _ ->
            (* a non-allow decision in the group: execute the original
               ops one by one with the decisions already taken *)
            let sink_a, sink_b =
              match kind with
              | Plan.G_read | Plan.G_pread -> (Some off, Some (off + len_a))
              | Plan.G_write -> (None, None)
            in
            dispatch_decided t shared slots ~decision:d_a ~req:req_a
              ~sink:sink_a dst_a;
            dispatch_decided t shared slots ~decision:d_b ~req:req_b
              ~sink:sink_b dst_b);
        pc := cur + 2
    | Plan.I_fuse { dst_r; dst_w; fd_r; fd_w; off; len } ->
        ops_run := !ops_run + 2;
        adv cost.Ksim.Cost_model.kopt_fused_op;
        let span = Kperf.span_begin perf ~cat:"kopt" ~name:"splice.rw" () in
        (try
           let fdrv = Cx.int_arg slots fd_r in
           resolve_fd fdrv;
           let req_r = Syscall.Read { fd = fdrv; len } in
           dispatch_decided t shared slots
             ~decision:(gate_decide t (Syscall.sysno_of_req req_r))
             ~req:req_r ~sink:(Some off) dst_r;
           let fdwv = Cx.int_arg slots fd_w in
           resolve_fd fdwv;
           (* the write sources the shared region after the read's
              deposit — including any stale suffix on a short read,
              exactly like the sequential pair *)
           let req_w =
             Syscall.Write { fd = fdwv; data = Sbuf.read shared ~off ~len }
           in
           dispatch_decided t shared slots
             ~decision:(gate_decide t (Syscall.sysno_of_req req_w))
             ~req:req_w ~sink:None dst_w
         with e ->
           Kperf.span_end perf span;
           raise e);
        Kperf.span_end perf span;
        pc := cur + 2
  done;
  (slots, !ops_run, !backedges)

(* --- attach points ------------------------------------------------------- *)

let attach t cx =
  let shared_size = Sbuf.size (Cx.shared cx) in
  Cx.set_optimizer cx
    (Some
       (fun compound ->
         match try_plan t ~shared_size compound with
         | None -> None
         | Some plan -> Some (fun () -> run_plan t cx plan)))

let ring_plan t reqs =
  if Kverify.ring_verifier t.kv reqs then begin
    let arr = Array.of_list reqs in
    let n = Array.length arr in
    let fuse = Array.make n false in
    let i = ref 0 in
    while !i < n - 1 do
      match (arr.(!i), arr.(!i + 1)) with
      | Syscall.Recv { sock = s1; _ }, Syscall.Send { sock = s2; _ }
        when s1 = s2 ->
          fuse.(!i) <- true;
          i := !i + 2
      | _ -> incr i
    done;
    Some { Kring.fuse_next = fuse; coalesce_cq = true }
  end
  else None

let attach_ring t ring =
  Kring.set_optimizer ring (Some (fun reqs -> ring_plan t reqs))
