(* Compiling an admitted compound into a specialized program.

   The compiler runs after kverify's checker has proven the compound
   well-shaped and its loops bounded; it is a purely syntactic pass over
   the decoded ops that rewrites what it can prove equivalent and leaves
   everything else as-is:

   - {b copy coalescing}: two adjacent reads (or preads, or writes) on
     the same fd over contiguous shared-buffer ranges become one bulk
     transfer.  Sound because sequential-position semantics make the
     merged transfer touch exactly the bytes the pair would, and the
     split return values reconstruct the pair's results for any short
     read/EOF outcome.
   - {b op fusion}: a read immediately followed by a write of the same
     shared region with the same length becomes one splice-style
     dispatch (the data never conceptually leaves the kernel).
   - {b loop-invariant hoisting}: inside spans the checker proved to be
     counted loops, the per-iteration decode/bounds checks are hoisted
     to a one-time preamble, so body ops run at the cheaper hoisted
     rate.

   Rewrites are refused whenever equivalence is not syntactically
   evident: non-contiguous or overlapping ranges, fd operands that
   differ or depend on the first op's result, non-constant lengths, or
   a jump landing between the two halves of a pair.  Execution lives in
   {!Kopt}; instructions stay indexed by original op position so the
   compound's jumps need no relocation. *)

module Op = Cosy.Cosy_op

type group_kind = G_read | G_pread | G_write

type instr =
  | I_op of Op.op  (* unchanged: executes exactly like the interpreter *)
  | I_coalesce of {
      kind : group_kind;
      dst_a : int;
      dst_b : int;
      fd : Op.arg;  (* syntactically identical in both halves *)
      off : int;    (* shared offset of the merged range *)
      len_a : int;
      len_b : int;
      foff : int;   (* pread only: file offset of the merged range *)
    }
  | I_fuse of {
      dst_r : int;
      dst_w : int;
      fd_r : Op.arg;
      fd_w : Op.arg;
      off : int;
      len : int;
    }
  | I_skip  (* second half of a pair; unreachable by construction *)

type t = {
  instrs : instr array;
  hoisted : bool array;  (* op index lies inside a proven counted loop *)
  n_loops : int;
  slot_count : int;
  op_count : int;
  coalesced_pairs : int;
  coalesced_bytes : int;
  fused_pairs : int;
  hoisted_ops : int;
}

let name_of sysno = Option.value ~default:"?" (Op.name_of_sysno sysno)

(* Does [arg] read the given slot?  Used to refuse pairing when the
   second op depends on the first one's result. *)
let arg_uses_slot s = function Op.Slot k -> k = s | _ -> false

(* Jump targets: an op index some Jmp/Jz lands on must stay addressable,
   so it can never be the buried second half of a pair. *)
let jump_targets ops =
  let tgts = Hashtbl.create 8 in
  Array.iter
    (function
      | Op.Jmp target -> Hashtbl.replace tgts target ()
      | Op.Jz { target; _ } -> Hashtbl.replace tgts target ()
      | _ -> ())
    ops;
  tgts

(* Try to pair ops[i] and ops[i+1].  All conditions are syntactic; any
   doubt means no rewrite. *)
let pair_rewrite ~shared_size ops i =
  match (ops.(i), ops.(i + 1)) with
  | ( Op.Syscall { dst = dst_a; sysno = s1; args = args_a },
      Op.Syscall { dst = dst_b; sysno = s2; args = args_b } ) -> (
      let indep fd = not (arg_uses_slot dst_a fd) in
      match (name_of s1, args_a, name_of s2, args_b) with
      (* read fd, shared+o1, n1 ; read fd, shared+o1+n1, n2 *)
      | ( "read",
          [ fd1; Op.Shared o1; Op.Const n1 ],
          "read",
          [ fd2; Op.Shared o2; Op.Const n2 ] )
        when fd1 = fd2 && indep fd2 && n1 >= 0 && n2 >= 0 && o1 >= 0
             && o2 = o1 + n1
             && o1 + n1 + n2 <= shared_size ->
          Some
            (I_coalesce
               {
                 kind = G_read;
                 dst_a;
                 dst_b;
                 fd = fd1;
                 off = o1;
                 len_a = n1;
                 len_b = n2;
                 foff = 0;
               })
      (* pread: ranges must be contiguous in the shared buffer AND in
         the file *)
      | ( "pread",
          [ fd1; Op.Shared o1; Op.Const n1; Op.Const f1 ],
          "pread",
          [ fd2; Op.Shared o2; Op.Const n2; Op.Const f2 ] )
        when fd1 = fd2 && indep fd2 && n1 >= 0 && n2 >= 0 && o1 >= 0
             && f1 >= 0
             && o2 = o1 + n1
             && f2 = f1 + n1
             && o1 + n1 + n2 <= shared_size ->
          Some
            (I_coalesce
               {
                 kind = G_pread;
                 dst_a;
                 dst_b;
                 fd = fd1;
                 off = o1;
                 len_a = n1;
                 len_b = n2;
                 foff = f1;
               })
      | ( "write",
          [ fd1; Op.Shared o1; Op.Const n1 ],
          "write",
          [ fd2; Op.Shared o2; Op.Const n2 ] )
        when fd1 = fd2 && indep fd2 && n1 >= 0 && n2 >= 0 && o1 >= 0
             && o2 = o1 + n1
             && o1 + n1 + n2 <= shared_size ->
          Some
            (I_coalesce
               {
                 kind = G_write;
                 dst_a;
                 dst_b;
                 fd = fd1;
                 off = o1;
                 len_a = n1;
                 len_b = n2;
                 foff = 0;
               })
      (* read fd_r, shared+o, n ; write fd_w, shared+o, n — splice *)
      | ( "read",
          [ fd_r; Op.Shared o1; Op.Const n1 ],
          "write",
          [ fd_w; Op.Shared o2; Op.Const n2 ] )
        when o1 = o2 && n1 = n2 && n1 >= 0 && o1 >= 0 && indep fd_w
             && o1 + n1 <= shared_size ->
          Some (I_fuse { dst_r = dst_a; dst_w = dst_b; fd_r; fd_w; off = o1; len = n1 })
      | _ -> None)
  | _ -> None

let compile ~shared_size ~(loops : Kverify.Checker.loop list) ops ~slot_count =
  let n = Array.length ops in
  let instrs = Array.make n I_skip in
  let hoisted = Array.make n false in
  List.iter
    (fun { Kverify.Checker.l_head; l_back; _ } ->
      for i = l_head to min l_back (n - 1) do
        hoisted.(i) <- true
      done)
    loops;
  let tgts = jump_targets ops in
  let coalesced_pairs = ref 0 in
  let coalesced_bytes = ref 0 in
  let fused_pairs = ref 0 in
  let i = ref 0 in
  while !i < n do
    let cur = !i in
    let paired =
      if cur + 1 < n && not (Hashtbl.mem tgts (cur + 1)) then
        pair_rewrite ~shared_size ops cur
      else None
    in
    (match paired with
    | Some (I_coalesce c as ins) ->
        instrs.(cur) <- ins;
        instrs.(cur + 1) <- I_skip;
        incr coalesced_pairs;
        coalesced_bytes := !coalesced_bytes + c.len_a + c.len_b;
        i := cur + 2
    | Some (I_fuse _ as ins) ->
        instrs.(cur) <- ins;
        instrs.(cur + 1) <- I_skip;
        incr fused_pairs;
        i := cur + 2
    | Some (I_op _ | I_skip) | None ->
        instrs.(cur) <- I_op ops.(cur);
        i := cur + 1)
  done;
  let hoisted_ops = Array.fold_left (fun a h -> if h then a + 1 else a) 0 hoisted in
  {
    instrs;
    hoisted;
    n_loops = List.length loops;
    slot_count;
    op_count = n;
    coalesced_pairs = !coalesced_pairs;
    coalesced_bytes = !coalesced_bytes;
    fused_pairs = !fused_pairs;
    hoisted_ops;
  }

(* --- pretty-printing (kverify_tool opt) --------------------------------- *)

let pp_kind ppf = function
  | G_read -> Fmt.string ppf "read"
  | G_pread -> Fmt.string ppf "pread"
  | G_write -> Fmt.string ppf "write"

let pp_instr ppf = function
  | I_op op -> Op.pp_op ppf op
  | I_coalesce { kind; dst_a; dst_b; fd; off; len_a; len_b; foff } ->
      Fmt.pf ppf "r%d,r%d := bulk_%a(%a, shared+%d, %d+%d%t)" dst_a dst_b
        pp_kind kind Op.pp_arg fd off len_a len_b (fun ppf ->
          if kind = G_pread then Fmt.pf ppf ", @%d" foff)
  | I_fuse { dst_r; dst_w; fd_r; fd_w; off; len } ->
      Fmt.pf ppf "r%d,r%d := splice(%a -> %a, shared+%d, %d)" dst_r dst_w
        Op.pp_arg fd_r Op.pp_arg fd_w off len
  | I_skip -> Fmt.string ppf "(merged into previous)"

let pp ppf t =
  Fmt.pf ppf "ops: %d -> %d instructions@." t.op_count
    (t.op_count - t.coalesced_pairs - t.fused_pairs);
  Fmt.pf ppf
    "coalesced pairs: %d (%d bytes), fused pairs: %d, counted loops: %d \
     (%d ops hoisted)@."
    t.coalesced_pairs t.coalesced_bytes t.fused_pairs t.n_loops t.hoisted_ops;
  Array.iteri
    (fun i ins ->
      Fmt.pf ppf "  %3d%s %a@." i
        (if t.hoisted.(i) then "*" else " ")
        pp_instr ins)
    t.instrs
