(** The kopt compiler: rewrite an admitted compound into a specialized
    program.

    Purely syntactic — runs over the decoded ops of a compound the
    {!Kverify.Checker} already admitted, pairing adjacent syscall ops it
    can prove equivalent to a single bulk transfer (coalescing), a
    splice-style dispatch (fusion), and marking the spans of proven
    counted loops for invariant hoisting.  Instructions stay indexed by
    original op position, so the compound's jumps need no relocation:
    the second half of a pair becomes an unreachable {!I_skip} (pairing
    is refused when a jump targets it).

    Refusal is the default: non-contiguous or overlapping ranges,
    differing fd operands, an fd that depends on the first op's result,
    or non-constant lengths all leave the ops untouched. *)

type group_kind = G_read | G_pread | G_write

type instr =
  | I_op of Cosy.Cosy_op.op
      (** unchanged: executes exactly like the interpreter *)
  | I_coalesce of {
      kind : group_kind;
      dst_a : int;
      dst_b : int;
      fd : Cosy.Cosy_op.arg;  (** syntactically identical in both halves *)
      off : int;              (** shared offset of the merged range *)
      len_a : int;
      len_b : int;
      foff : int;             (** pread only: file offset of the range *)
    }  (** two adjacent transfers on contiguous ranges, one bulk copy *)
  | I_fuse of {
      dst_r : int;
      dst_w : int;
      fd_r : Cosy.Cosy_op.arg;
      fd_w : Cosy.Cosy_op.arg;
      off : int;
      len : int;
    }  (** read→write of the same region, one splice dispatch *)
  | I_skip  (** second half of a pair; unreachable by construction *)

type t = {
  instrs : instr array;
  hoisted : bool array;
      (** op index lies inside a proven counted loop: per-iteration
          checks hoisted, body runs at [kopt_exec_op_hoisted] *)
  n_loops : int;
  slot_count : int;
  op_count : int;          (** original op count *)
  coalesced_pairs : int;
  coalesced_bytes : int;   (** bytes moved by merged transfers *)
  fused_pairs : int;
  hoisted_ops : int;
}

(** [compile ~shared_size ~loops ops ~slot_count] builds the plan for an
    admitted compound; [loops] are the checker's proven counted loops
    from its [Verified] verdict. *)
val compile :
  shared_size:int ->
  loops:Kverify.Checker.loop list ->
  Cosy.Cosy_op.op array ->
  slot_count:int ->
  t

val pp_instr : Format.formatter -> instr -> unit

(** Render the whole plan: rewrite summary plus one line per original
    op index ([*] marks hoisted spans). *)
val pp : Format.formatter -> t -> unit
