(* Deterministic fault injection.  See kfault.mli for the model.

   Determinism requirements shape the whole file: no Random, no
   wall-clock — the probability trigger runs a private splitmix-style
   stream seeded from (plan seed, site id), and every trigger is a
   function of the per-site occurrence counter and the simulated
   clock only.  [fire] never charges cycles; recovery costs belong to
   the subsystem that reacts to the fault. *)

let default_enabled = ref true

type trigger =
  | Every_nth of int
  | Prob of { seed : int; ppm : int }
  | Cycle_window of { lo : int; hi : int }
  | One_shot of int

type plan = { site : string; trigger : trigger }

type armed = { a_trigger : trigger; mutable a_state : int }

type site = {
  s_name : string;
  s_id : int;
  mutable s_occ : int;  (* occurrences while armed *)
  mutable s_fires : int;
  mutable s_armed : armed option;
  mutable s_counter : Kstats.counter option;  (* kfault.site.<name> *)
}

type t = {
  mutable enabled : bool;
  mutable armed : bool;
  mutable live : bool;  (* enabled && armed: the one hot-path load *)
  stats : Kstats.t option;
  now : unit -> int;
  mutable perf : Kperf.t option;
  by_name : (string, site) Hashtbl.t;
  mutable sites_rev : site list;
  mutable plans : plan list;  (* the armed plan set, for late registration *)
  mutable sink : (name:string -> occurrence:int -> unit) option;
  mutable st_fires : Kstats.counter option;  (* kfault.fires *)
}

let create ?(enabled = !default_enabled) ?stats ?(now = fun () -> 0) () =
  {
    enabled;
    armed = false;
    live = false;
    stats;
    now;
    perf = None;
    by_name = Hashtbl.create 16;
    sites_rev = [];
    plans = [];
    sink = None;
    st_fires = None;
  }

let relive t = t.live <- t.enabled && t.armed
let set_enabled t v = t.enabled <- v; relive t
let is_enabled t = t.enabled
let is_armed t = t.armed
let set_perf t p = t.perf <- p
let set_sink t s = t.sink <- s

(* splitmix64-style scramble on OCaml's native ints: good enough to
   decorrelate per-site streams and stable across runs. *)
let scramble z =
  let z = z + 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let seed_for ~seed s = scramble (scramble seed lxor (s.s_id + 1))

let arm_site s (p : plan) =
  let state =
    match p.trigger with Prob { seed; _ } -> seed_for ~seed s | _ -> 0
  in
  s.s_armed <- Some { a_trigger = p.trigger; a_state = state }

let register t name =
  match Hashtbl.find_opt t.by_name name with
  | Some s -> s
  | None ->
      let s =
        { s_name = name; s_id = Hashtbl.length t.by_name; s_occ = 0;
          s_fires = 0; s_armed = None; s_counter = None }
      in
      Hashtbl.replace t.by_name name s;
      t.sites_rev <- s :: t.sites_rev;
      (* subsystems created mid-run (a ring, a Cosy extension) register
         their sites after [arm]; the plan binds here so the sweep can
         reach them *)
      if t.armed then
        (match List.find_opt (fun (p : plan) -> p.site = name) t.plans with
        | Some p -> arm_site s p
        | None -> ());
      s

let site_name s = s.s_name
let sites t = List.rev t.sites_rev
let site_names t = List.map (fun s -> s.s_name) (sites t)
let find_site t name = Hashtbl.find_opt t.by_name name

let arm ?(strict = true) t plans =
  if strict then
    List.iter
      (fun (p : plan) ->
        if not (Hashtbl.mem t.by_name p.site) then
          failwith ("Kfault.arm: unknown site " ^ p.site))
      plans;
  List.iter
    (fun s ->
      s.s_occ <- 0;
      s.s_fires <- 0;
      s.s_armed <- None)
    (sites t);
  List.iter
    (fun (p : plan) ->
      match Hashtbl.find_opt t.by_name p.site with
      | None -> ()
      | Some s -> arm_site s p)
    plans;
  t.plans <- plans;
  t.armed <- true;
  relive t

let disarm t = t.armed <- false; relive t

let fired t s =
  s.s_fires <- s.s_fires + 1;
  (match t.stats with
  | None -> ()
  | Some st ->
      (match t.st_fires with
      | Some c -> Kstats.incr st c
      | None ->
          let c = Kstats.counter st "kfault.fires" in
          t.st_fires <- Some c;
          Kstats.incr st c);
      (match s.s_counter with
      | Some c -> Kstats.incr st c
      | None ->
          let c = Kstats.counter st ("kfault." ^ s.s_name) in
          s.s_counter <- Some c;
          Kstats.incr st c));
  (match t.perf with
  | None -> ()
  | Some p -> Kperf.instant p ~arg:s.s_occ ~cat:"kfault" ~name:s.s_name ());
  match t.sink with
  | None -> ()
  | Some f -> f ~name:s.s_name ~occurrence:s.s_occ

let fire t s =
  if not t.live then false
  else begin
    s.s_occ <- s.s_occ + 1;
    match s.s_armed with
    | None -> false
    | Some a ->
        let hit =
          match a.a_trigger with
          | Every_nth n -> n > 0 && s.s_occ mod n = 0
          | One_shot k -> s.s_occ = k
          | Cycle_window { lo; hi } ->
              let c = t.now () in
              c >= lo && c < hi
          | Prob { ppm; _ } ->
              a.a_state <- scramble a.a_state;
              (a.a_state land max_int) mod 1_000_000 < ppm
        in
        if hit then fired t s;
        hit
  end

let occurrences _t s = s.s_occ
let fires _t s = s.s_fires
let counts t = List.map (fun s -> (s.s_name, s.s_occ, s.s_fires)) (sites t)

(* Plan specs: SITE=nth:N | prob:PPM:SEED | window:LO:HI | once:K | at:C *)

let trigger_of_string str =
  let bad () = Error (Printf.sprintf "bad trigger %S" str) in
  let int s = int_of_string_opt s in
  match String.split_on_char ':' str with
  | [ "nth"; n ] -> (
      match int n with Some n when n > 0 -> Ok (Every_nth n) | _ -> bad ())
  | [ "once"; k ] -> (
      match int k with Some k when k > 0 -> Ok (One_shot k) | _ -> bad ())
  | [ "prob"; ppm; seed ] -> (
      match (int ppm, int seed) with
      | Some ppm, Some seed when ppm >= 0 && ppm <= 1_000_000 ->
          Ok (Prob { seed; ppm })
      | _ -> bad ())
  | [ "window"; lo; hi ] -> (
      match (int lo, int hi) with
      | Some lo, Some hi when lo >= 0 && hi > lo ->
          Ok (Cycle_window { lo; hi })
      | _ -> bad ())
  (* crash_at: fire at the first probe at or after cycle C — an
     open-ended window, so a power-loss cannot be dodged by a probe
     landing a cycle late *)
  | [ "at"; c ] -> (
      match int c with
      | Some c when c >= 0 -> Ok (Cycle_window { lo = c; hi = max_int })
      | _ -> bad ())
  | _ -> bad ()

let plan_of_spec spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "bad plan %S (want SITE=TRIGGER)" spec)
  | Some i ->
      let site = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      if site = "" then Error (Printf.sprintf "bad plan %S (empty site)" spec)
      else
        Result.map (fun trigger -> { site; trigger }) (trigger_of_string rest)

let pp_trigger ppf = function
  | Every_nth n -> Fmt.pf ppf "nth:%d" n
  | One_shot k -> Fmt.pf ppf "once:%d" k
  | Prob { ppm; seed } -> Fmt.pf ppf "prob:%d:%d" ppm seed
  | Cycle_window { lo; hi } when hi = max_int -> Fmt.pf ppf "at:%d" lo
  | Cycle_window { lo; hi } -> Fmt.pf ppf "window:%d:%d" lo hi

let pp_plan ppf p = Fmt.pf ppf "%s=%a" p.site pp_trigger p.trigger

let sweep_points ?max_per_site counts =
  List.concat_map
    (fun (name, occ) ->
      if occ <= 0 then []
      else
        let picks =
          match max_per_site with
          | Some m when m = 1 -> [ 1 ]
          | Some m when m > 0 && occ > m ->
              (* evenly spaced sample including the first and last *)
              List.init m (fun i -> 1 + (i * (occ - 1) / (m - 1)))
              |> List.sort_uniq compare
          | _ -> List.init occ (fun i -> i + 1)
        in
        List.map (fun k -> (name, k)) picks)
    counts
