(** Deterministic fault injection: a registry of named fault sites
    threaded through the hot paths of every subsystem, armed with
    seeded, reproducible {e plans}.

    The engine sits below ksim (its only dependencies are kstats and
    kperf, like the tracer): subsystems register sites at creation time
    and consult {!fire} at the exact point where the real kernel could
    fail — an exhausted slab, a bad sector, a dropped frame, a signal
    landing mid-syscall.  Disarmed (the default), every such probe is a
    single branch that touches neither the simulated clock nor the
    metrics registry, so a disarmed kernel is bit-for-bit identical to
    one built without kfault at all.

    Armed, the engine is just as deterministic: triggers are pure
    functions of the per-site occurrence counter, a user seed and the
    simulated clock, so two twin systems running the same workload
    under the same plan inject the same faults at the same occurrences
    and finish with identical cycle counts, kstats and digests.
    {!fire} itself never advances the clock; the {e consequences}
    (a retried block transfer, a retransmitted frame, a restarted
    syscall) are charged by the subsystem that recovers, which is what
    makes the engine cycle-accounted rather than cycle-invisible.

    The sweep helpers support FATE-style systematic exploration: run
    once in counting mode ({!arm} with an empty plan) to learn how
    often each site is reached, then run the workload again once per
    (site, occurrence) with a {!One_shot} plan and assert the
    invariants (no uncaught exception, clean errno propagation,
    digests byte-identical or cleanly failed).  [Resilience] in the
    core facade builds that harness; [bin/kfault_tool.exe] drives it. *)

(** Engines created while this is [true] boot enabled (mirrors
    [Kstats.default_enabled] / [Kperf.default_enabled]).  A disabled
    engine never fires, counts nothing, and registers only site
    handles. *)
val default_enabled : bool ref

type t
type site

(** How an armed site decides to fire, as a pure function of the
    per-site occurrence counter (1-based, counted only while armed),
    the plan seed and the simulated clock. *)
type trigger =
  | Every_nth of int  (** fire on occurrences n, 2n, 3n, ... *)
  | Prob of { seed : int; ppm : int }
      (** fire with probability [ppm] parts-per-million, from a
          deterministic per-site stream seeded by [seed] *)
  | Cycle_window of { lo : int; hi : int }
      (** fire on every occurrence with [lo <= now < hi] *)
  | One_shot of int  (** fire exactly once, at occurrence k (1-based) *)

type plan = { site : string; trigger : trigger }

(** [now] is the simulated clock (defaults to a constant, suitable for
    standalone tests); the kernel wires [Sim_clock.now].  Per-site and
    aggregate fire counters register into [stats].  The engine emits a
    kperf instant (cat ["kfault"]) per fire once {!set_perf} has wired
    the tracer. *)
val create :
  ?enabled:bool -> ?stats:Kstats.t -> ?now:(unit -> int) -> unit -> t

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

(** Wire the kperf tracer (the kernel calls this once the tracer
    exists; sites may already be registered). *)
val set_perf : t -> Kperf.t option -> unit

(** Mirror hook: called with (site name, occurrence) on every fire
    while armed (the Kmonitor fault feed installs itself here). *)
val set_sink : t -> (name:string -> occurrence:int -> unit) option -> unit

(** {1 Sites} *)

(** Registering the same name twice returns the same handle (kernels
    may stack several filesystems over one engine). *)
val register : t -> string -> site

val site_name : site -> string

(** Registered site names, in registration order. *)
val site_names : t -> string list

val find_site : t -> string -> site option

(** {1 Arming} *)

(** Install a plan and reset all occurrence/fire counters.  An empty
    plan list is {e counting mode}: every probe counts an occurrence
    but nothing fires — used by the sweep to learn site reach.  A plan
    may name a site that has not been registered yet: the site picks
    the plan up when its subsystem registers it (rings and Cosy
    extensions are created mid-run, after arming).  With [strict]
    (default), a plan whose site is unknown {e at arm time} raises
    [Failure]; [~strict:false] defers or skips it (the form harnesses
    use when arming before the workload builds its subsystems).
    @raise Failure on unknown site names when [strict]. *)
val arm : ?strict:bool -> t -> plan list -> unit

(** Back to zero-impact: probes stop counting; counters keep their
    values for reading. *)
val disarm : t -> unit

val is_armed : t -> bool

(** {1 The hot-path probe} *)

(** [fire t s] is consulted at the fault site: [false] when disarmed
    (one branch, nothing touched), otherwise counts an occurrence and
    evaluates the site's trigger.  On fire it bumps [kfault.fires] and
    the per-site counter, emits the kperf instant and calls the sink.
    Never advances the simulated clock. *)
val fire : t -> site -> bool

(** {1 Reading} *)

val occurrences : t -> site -> int
val fires : t -> site -> int

(** (name, occurrences, fires) per registered site, registration
    order. *)
val counts : t -> (string * int * int) list

(** {1 Plan specs}

    The textual form used by [kfault_tool] and the bench driver:
    [SITE=nth:N], [SITE=prob:PPM:SEED], [SITE=window:LO:HI],
    [SITE=once:K], and [SITE=at:C] (fire at the first probe at or after
    cycle [C] — the crash_at trigger, an open-ended window). *)

val trigger_of_string : string -> (trigger, string) result
val plan_of_spec : string -> (plan, string) result
val pp_trigger : Format.formatter -> trigger -> unit
val pp_plan : Format.formatter -> plan -> unit

(** {1 Sweep helpers} *)

(** [sweep_points ?max_per_site counts] turns counting-mode results
    (name, occurrences) into the (site, occurrence) list to explore:
    every occurrence of every reached site, or — capped — an evenly
    spaced sample of [max_per_site] occurrences per site. *)
val sweep_points :
  ?max_per_site:int -> (string * int) list -> (string * int) list
