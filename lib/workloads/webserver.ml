(* A static-file web server loop: per request, resolve + open + read the
   document and "send" it (modelled as a copy back across the boundary,
   exactly the data movement sendfile/Cosy eliminate).  The Cosy variant
   runs open-read-close inside one compound per request with the document
   staged through the shared buffer. *)

type config = {
  documents : int;
  doc_size : int;
  doc_size_spread : int;
      (* when nonzero, document sizes are drawn (deterministically from
         [seed]) from [doc_size - spread, doc_size + spread] instead of
         being uniform.  Real document trees are heterogeneous; uniform
         sizes make every request cost identical, which lets concurrent
         server instances phase-lock around a contended dcache lock and
         understates contention in the SMP experiment (E13). *)
  requests : int;
  seed : int;
  dir : string;
}

let default_config =
  {
    documents = 50;
    doc_size = 16_384;
    doc_size_spread = 0;
    requests = 500;
    seed = 3;
    dir = "/www";
  }

type stats = {
  served : int;
  bytes_served : int;
  times : Ksim.Kernel.times;
}

let doc_name cfg i = Printf.sprintf "%s/doc%04d.html" cfg.dir i

let setup ?(config = default_config) sys =
  let cfg = config in
  let sizes = Wutil.rng cfg.seed in
  let doc_len _i =
    if cfg.doc_size_spread = 0 then cfg.doc_size
    else
      max 1
        (cfg.doc_size - cfg.doc_size_spread
        + Wutil.rand_int sizes ((2 * cfg.doc_size_spread) + 1))
  in
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:cfg.dir);
  for i = 0 to cfg.documents - 1 do
    ignore
      (Wutil.ok
         (Ksyscall.Usyscall.sys_open_write_close sys ~path:(doc_name cfg i)
            ~data:(Wutil.payload (doc_len i))
            ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done

(* Stepper over the plain-serving loop, one request per [step], so the
   SMP driver can interleave several server instances across CPUs. *)
type t = {
  sys : Ksyscall.Systable.t;
  cfg : config;
  rng : Wutil.rng;
  mutable remaining : int;
  mutable served : int;
  mutable bytes : int;
}

let make_plain ?(config = default_config) sys =
  {
    sys;
    cfg = config;
    rng = Wutil.rng config.seed;
    remaining = config.requests;
    served = 0;
    bytes = 0;
  }

let step_plain t =
  if t.remaining = 0 then false
  else begin
    let cfg = t.cfg in
    let kernel = Ksyscall.Systable.kernel t.sys in
    let path = doc_name cfg (Wutil.rand_int t.rng cfg.documents) in
    let fd = Wutil.ok (Ksyscall.Usyscall.sys_open t.sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
    let data = Wutil.ok (Ksyscall.Usyscall.sys_read t.sys ~fd ~len:max_int) in
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_close t.sys ~fd));
    (* "send": the payload crosses back into the kernel for the NIC *)
    Ksim.Kernel.enter_kernel kernel;
    Ksim.Kernel.charge_copy_from_user kernel (Bytes.length data);
    Ksim.Kernel.exit_kernel kernel;
    t.served <- t.served + 1;
    t.bytes <- t.bytes + Bytes.length data;
    t.remaining <- t.remaining - 1;
    true
  end

let run_plain ?(config = default_config) sys =
  let kernel = Ksyscall.Systable.kernel sys in
  let t = make_plain ~config sys in
  let (), times =
    Ksim.Kernel.timed kernel (fun () -> while step_plain t do () done)
  in
  { served = t.served; bytes_served = t.bytes; times }

(* the sendfile syscall itself: open + sendfile + close per request. *)
let run_sendfile ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let rng = Wutil.rng cfg.seed in
  let served = ref 0 and bytes = ref 0 in
  let body () =
    for _ = 1 to cfg.requests do
      let path = doc_name cfg (Wutil.rand_int rng cfg.documents) in
      let fd = Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
      let n =
        Wutil.ok (Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:0 ~len:max_int)
      in
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
      served := !served + 1;
      bytes := !bytes + n
    done
  in
  let (), times = Ksim.Kernel.timed kernel body in
  { served = !served; bytes_served = !bytes; times }

(* Cosy: one compound per request; the document never visits user
   space. *)
let run_cosy ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let exec = Cosy.Cosy_exec.create ~shared_size:(cfg.doc_size * 2) sys in
  let rng = Wutil.rng cfg.seed in
  let served = ref 0 and bytes = ref 0 in
  let body () =
    for _ = 1 to cfg.requests do
      let path = doc_name cfg (Wutil.rand_int rng cfg.documents) in
      let c = Cosy.Cosy_lib.create ~shared_size:(cfg.doc_size * 2) () in
      let buf = Cosy.Cosy_lib.alloc_shared c cfg.doc_size in
      let fd = Cosy.Cosy_lib.syscall c "open" [ Cosy.Cosy_op.Str path; Cosy.Cosy_op.Const 0 ] in
      let n =
        Cosy.Cosy_lib.syscall c "read"
          [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const cfg.doc_size ]
      in
      ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
      let compound = Cosy.Cosy_lib.finish c in
      let slots = Cosy.Cosy_exec.submit exec compound in
      served := !served + 1;
      bytes := !bytes + slots.(n)
    done
  in
  let (), times = Ksim.Kernel.timed kernel body in
  ({ served = !served; bytes_served = !bytes; times }, Cosy.Cosy_exec.stats exec)

(* ---------- serving over knet sockets (E14) ----------------------------- *)

(* The same static documents, served to simulated clients over the knet
   socket stack behind a level-triggered epoll loop.  Four variants of
   the per-request data path, ordered by how much of the paper's §2.2
   (consolidation) and §2.3 (shared buffers / zero-copy) they apply:

   - [Net_naive]        open + read + close + send: every body crosses the
                        boundary twice (kernel->user on read, user->kernel
                        on send), four-plus crossings per request.
   - [Net_consolidated] open_read_close collapses the file side into one
                        crossing; recv_send overlaps reading the next
                        pipelined request with sending the previous
                        response; accept_recv picks up a connection and
                        its first bytes together.
   - [Net_sendfile]     headers are sent normally but bodies go through
                        sendfile(2)-to-socket: file pages staged through
                        the kernel transmit region, zero user copies.
   - [Net_ring]         sendfile bodies, with the per-socket syscalls
                        batched through the kring submission ring: one
                        crossing drains a whole round of recvs or sends.

   All four produce byte-identical response streams (asserted by the
   client-side digest), so crossing and copy-byte deltas are attributable
   to the data path alone. *)

type net_variant = Net_naive | Net_consolidated | Net_sendfile | Net_ring

let net_variant_name = function
  | Net_naive -> "naive"
  | Net_consolidated -> "consolidated"
  | Net_sendfile -> "sendfile"
  | Net_ring -> "ring"

type net_config = {
  variant : net_variant;
  docs : config;             (* document tree: count, sizes, seed, dir *)
  conns : int;               (* client connections over the whole run *)
  requests_per_conn : int;
  pipeline : int;            (* client requests in flight per connection *)
  port : int;
  backlog : int;             (* listen(2) backlog *)
  epoll_batch : int;         (* max events per epoll_wait *)
  spacing : int;             (* client inter-arrival gap, cycles *)
  think : int;               (* client think time between requests *)
  start : int;               (* cycles before the first connection *)
  make_ring : (Ksyscall.Systable.t -> Kring.t) option;
      (* Net_ring only: how to build the submission ring.  Harnesses
         that want admission/optimization attached (Core.ring wiring)
         pass their own factory; [None] keeps the plain default. *)
  shed : bool;
      (* graceful load shedding: when the accept backlog overflows (a
         drop burst, e.g. under injected wire faults the retransmit
         storm keeps connections alive longer), serve the next few
         requests as header-only empty-body responses instead of the
         document — cheap enough to drain the backlog before more
         arrivals are refused.  Off by default: with [shed = false] the
         response stream is byte-identical to a server without the
         feature. *)
}

let net_default_config =
  {
    variant = Net_naive;
    docs =
      { default_config with
        documents = 24; doc_size = 2048; doc_size_spread = 1024 };
    conns = 100;
    requests_per_conn = 2;
    pipeline = 2;
    port = 80;
    backlog = 64;
    epoll_batch = 64;
    spacing = 2_000;
    think = 1_000;
    start = 1_000;
    make_ring = None;
    shed = false;
  }

let net_setup ?(config = net_default_config) sys = setup ~config:config.docs sys

(* Which document connection [conn]'s [req]-th request asks for; shared
   (via Traffic.req_of) between the generator and nothing else — the
   server learns it by parsing the request line. *)
let net_doc_index cfg ~conn ~req =
  let h =
    (cfg.docs.seed * 0x9E3779B1)
    lxor (conn * 2654435761)
    lxor (req * 40503)
  in
  (h land max_int) mod cfg.docs.documents

(* Responses are framed as an 8-byte little-endian body length followed
   by the body; the traffic generator parses the same frame. *)
let net_header len =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int len);
  b

let net_chunk = 4096  (* recv size per readiness event *)

type pending =
  | Pbytes of Bytes.t
  | Pfile of { pf_fd : int; mutable pf_off : int; mutable pf_left : int }

type nconn = {
  nc_fd : int;
  nc_inbuf : Buffer.t;            (* bytes received, not yet a full line *)
  mutable nc_pending : pending list;  (* response data not yet queued *)
  mutable nc_out : bool;          (* EP_OUT interest currently registered *)
  mutable nc_eof : bool;          (* peer FIN seen and receive side drained *)
}

type net_t = {
  nsys : Ksyscall.Systable.t;
  ncfg : net_config;
  mutable nlisten : int;          (* listener fd; -1 before lazy init *)
  mutable nep : int;              (* epoll fd *)
  mutable nring : Kring.t option; (* Net_ring only *)
  mutable ndocs : (int * int) array;  (* doc -> (cached fd, size) *)
  nconns : (int, nconn) Hashtbl.t;    (* conn fd -> state *)
  mutable ninit : bool;
  mutable nserved : int;          (* responses generated *)
  mutable nsent : int;            (* bytes queued into socket send buffers *)
  mutable nshed : int;            (* header-only responses served *)
  mutable ndrops_seen : int;      (* backlog drops already accounted *)
  mutable nshed_budget : int;     (* responses left to shed this burst *)
  mutable nshed_counter : Kstats.counter option;  (* web.shed_responses *)
}

type net_stats = {
  n_served : int;
  n_sent : int;
  n_completed : int;   (* connections fully served, client's view *)
  n_drops : int;       (* accept-backlog overflows *)
  n_shed : int;        (* header-only responses under load shedding *)
  n_digest : string;   (* client-side digest of every response stream *)
  n_times : Ksim.Kernel.times;
}

let net_make ?(config = net_default_config) sys =
  {
    nsys = sys;
    ncfg = config;
    nlisten = -1;
    nep = -1;
    nring = None;
    ndocs = [||];
    nconns = Hashtbl.create 64;
    ninit = false;
    nserved = 0;
    nsent = 0;
    nshed = 0;
    ndrops_seen = 0;
    nshed_budget = 0;
    nshed_counter = None;
  }

(* Lazy init on the first [net_step] so the fds land in the stepping
   process's descriptor table (matters under the SMP driver, where each
   instance runs in its own process). *)
let net_init t =
  let sys = t.nsys and cfg = t.ncfg in
  let s = Ksyscall.Usyscall.sys_socket sys in
  Wutil.ok (Ksyscall.Usyscall.sys_bind sys ~sock:s ~port:cfg.port);
  Wutil.ok (Ksyscall.Usyscall.sys_listen sys ~sock:s ~backlog:cfg.backlog);
  t.nlisten <- s;
  t.nep <- Ksyscall.Usyscall.sys_epoll_create sys;
  Wutil.ok
    (Ksyscall.Usyscall.sys_epoll_ctl sys ~ep:t.nep ~sock:s ~add:true
       ~mask:Knet.ep_in ~cookie:s);
  (match cfg.variant with
  | Net_sendfile | Net_ring ->
      (* the frame header needs the size before the body is sent, and
         sendfile reuses one long-lived fd per document *)
      t.ndocs <-
        Array.init cfg.docs.documents (fun i ->
            let fd, st =
              Wutil.ok
                (Ksyscall.Usyscall.sys_open_fstat sys
                   ~path:(doc_name cfg.docs i) ~flags:[ Kvfs.Vfs.O_RDONLY ])
            in
            (fd, st.Kvfs.Vtypes.st_size))
  | Net_naive | Net_consolidated -> ());
  (match cfg.variant with
  | Net_ring ->
      t.nring <-
        Some
          (match cfg.make_ring with
          | Some make -> make sys
          | None -> Kring.create sys)
  | Net_naive | Net_consolidated | Net_sendfile -> ());
  Knet.Traffic.install
    (Ksyscall.Systable.net sys)
    {
      Knet.Traffic.port = cfg.port;
      conns = cfg.conns;
      requests_per_conn = cfg.requests_per_conn;
      pipeline = cfg.pipeline;
      start = cfg.start;
      spacing = cfg.spacing;
      think = cfg.think;
      req_of =
        (fun ~conn ~req ->
          Printf.sprintf "GET %d\n" (net_doc_index cfg ~conn ~req));
    };
  if cfg.shed then
    t.nshed_counter <-
      Some
        (Kstats.counter
           (Ksim.Kernel.stats (Ksyscall.Systable.kernel sys))
           "web.shed_responses");
  t.ninit <- true

let net_fail e =
  raise (Wutil.Workload_error
           ("webserver/net: unexpected errno " ^ Kvfs.Vtypes.errno_to_string e))

(* Pull complete request lines out of the connection's input buffer,
   keeping any trailing partial line. *)
let net_take_lines cs =
  let s = Buffer.contents cs.nc_inbuf in
  Buffer.clear cs.nc_inbuf;
  let lines = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.add_substring cs.nc_inbuf s !start (String.length s - !start);
  List.rev !lines

let net_parse_doc line =
  match String.index_opt line ' ' with
  | Some sp ->
      int_of_string (String.sub line (sp + 1) (String.length line - sp - 1))
  | None ->
      raise (Wutil.Workload_error ("webserver/net: bad request " ^ line))

(* Load shedding: each accept-backlog drop beyond what we have already
   accounted buys a small budget of header-only responses.  Shedding a
   request skips the whole file side (no open/read/sendfile) and sends
   an 8-byte empty-body frame, so the event loop gets back to accepting
   before the backlog refills. *)
let net_check_shed t =
  if t.ncfg.shed then begin
    let net = Ksyscall.Systable.net t.nsys in
    (* both congestion signals the NIC exposes: connections refused at
       the backlog, and wire frames lost and retransmitted *)
    let drops =
      Knet.Traffic.drops net ~port:t.ncfg.port
      + Knet.Traffic.retransmits net ~port:t.ncfg.port
    in
    if drops > t.ndrops_seen then begin
      t.nshed_budget <- t.nshed_budget + (4 * (drops - t.ndrops_seen));
      t.ndrops_seen <- drops
    end
  end;
  t.nshed_budget > 0

(* Produce one response's pending items.  This is where the variants
   differ on the file side of the request. *)
let net_queue_response t cs idx =
  let sys = t.nsys in
  if net_check_shed t then begin
    t.nshed_budget <- t.nshed_budget - 1;
    t.nshed <- t.nshed + 1;
    (match t.nshed_counter with
    | Some c -> Kstats.incr (Ksim.Kernel.stats (Ksyscall.Systable.kernel sys)) c
    | None -> ());
    cs.nc_pending <- cs.nc_pending @ [ Pbytes (net_header 0) ];
    t.nserved <- t.nserved + 1
  end
  else begin
  (match t.ncfg.variant with
  | Net_naive ->
      let path = doc_name t.ncfg.docs idx in
      let fd =
        Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ])
      in
      let body = Wutil.ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:max_int) in
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
      cs.nc_pending <-
        cs.nc_pending
        @ [ Pbytes (Bytes.cat (net_header (Bytes.length body)) body) ]
  | Net_consolidated ->
      let path = doc_name t.ncfg.docs idx in
      let body =
        Wutil.ok (Ksyscall.Usyscall.sys_open_read_close sys ~path ~maxlen:max_int)
      in
      cs.nc_pending <-
        cs.nc_pending
        @ [ Pbytes (Bytes.cat (net_header (Bytes.length body)) body) ]
  | Net_sendfile | Net_ring ->
      let fd, size = t.ndocs.(idx) in
      cs.nc_pending <-
        cs.nc_pending
        @ [ Pbytes (net_header size);
            Pfile { pf_fd = fd; pf_off = 0; pf_left = size } ]);
    t.nserved <- t.nserved + 1
  end

(* Feed received bytes to the request parser; empty bytes from a plain
   recv mean end-of-stream. *)
let net_feed t cs data =
  if Bytes.length data = 0 then cs.nc_eof <- true
  else begin
    Buffer.add_bytes cs.nc_inbuf data;
    List.iter
      (fun line -> net_queue_response t cs (net_parse_doc line))
      (net_take_lines cs)
  end

(* EP_OUT interest is registered only while there is pending output —
   otherwise a level-triggered loop would spin on always-writable
   sockets.  Re-adding replaces the mask, epoll_ctl(MOD) style. *)
let net_set_out t cs want =
  if want <> cs.nc_out then begin
    let mask = if want then Knet.ep_in lor Knet.ep_out else Knet.ep_in in
    Wutil.ok
      (Ksyscall.Usyscall.sys_epoll_ctl t.nsys ~ep:t.nep ~sock:cs.nc_fd
         ~add:true ~mask ~cookie:cs.nc_fd);
    cs.nc_out <- want
  end

let net_close_conn t cs =
  ignore
    (Ksyscall.Usyscall.sys_epoll_ctl t.nsys ~ep:t.nep ~sock:cs.nc_fd ~add:false
       ~mask:0 ~cookie:0);
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_close t.nsys ~fd:cs.nc_fd));
  Hashtbl.remove t.nconns cs.nc_fd

(* Push pending output into the socket until it would block; on
   backpressure register EP_OUT and resume when the socket drains. *)
let rec net_flush t cs =
  match cs.nc_pending with
  | [] -> if cs.nc_eof then net_close_conn t cs else net_set_out t cs false
  | Pbytes b :: rest -> (
      match Ksyscall.Usyscall.sys_send t.nsys ~sock:cs.nc_fd ~data:b with
      | Ok n when n = Bytes.length b ->
          t.nsent <- t.nsent + n;
          cs.nc_pending <- rest;
          net_flush t cs
      | Ok n ->
          t.nsent <- t.nsent + n;
          cs.nc_pending <- Pbytes (Bytes.sub b n (Bytes.length b - n)) :: rest;
          net_set_out t cs true
      | Error Kvfs.Vtypes.ENOBUFS -> net_set_out t cs true
      | Error e -> net_fail e)
  | Pfile pf :: rest -> (
      match
        Ksyscall.Usyscall.sys_sendfile_sock t.nsys ~sock:cs.nc_fd ~fd:pf.pf_fd
          ~off:pf.pf_off ~len:pf.pf_left
      with
      | Ok 0 -> net_set_out t cs true
      | Ok n ->
          t.nsent <- t.nsent + n;
          pf.pf_off <- pf.pf_off + n;
          pf.pf_left <- pf.pf_left - n;
          if pf.pf_left = 0 then cs.nc_pending <- rest;
          net_flush t cs
      | Error Kvfs.Vtypes.ENOBUFS -> net_set_out t cs true
      | Error e -> net_fail e)

let net_add_conn t fd =
  let cs =
    { nc_fd = fd; nc_inbuf = Buffer.create 64; nc_pending = [];
      nc_out = false; nc_eof = false }
  in
  Hashtbl.replace t.nconns fd cs;
  Wutil.ok
    (Ksyscall.Usyscall.sys_epoll_ctl t.nsys ~ep:t.nep ~sock:fd ~add:true
       ~mask:Knet.ep_in ~cookie:fd);
  cs

(* Drain the accept backlog.  The consolidated variant picks up the
   connection and its first request bytes in one crossing. *)
let net_accept_all t =
  let continue = ref true in
  while !continue do
    match t.ncfg.variant with
    | Net_consolidated -> (
        match
          Ksyscall.Usyscall.sys_accept_recv t.nsys ~sock:t.nlisten
            ~len:net_chunk
        with
        | Ok (fd, data) ->
            let cs = net_add_conn t fd in
            (* empty here means "no bytes yet", not EOF: a client FIN
               can only follow its final response *)
            if Bytes.length data > 0 then net_feed t cs data;
            net_flush t cs
        | Error Kvfs.Vtypes.EAGAIN -> continue := false
        | Error e -> net_fail e)
    | Net_naive | Net_sendfile | Net_ring -> (
        match Ksyscall.Usyscall.sys_accept t.nsys ~sock:t.nlisten with
        | Ok fd -> ignore (net_add_conn t fd)
        | Error Kvfs.Vtypes.EAGAIN -> continue := false
        | Error e -> net_fail e)
  done

(* One readable connection, synchronous variants.  Consolidated overlaps
   the recv with sending the head of the pending queue when there is
   one (recv_send folds an empty recv into Ok, so EOF is confirmed with
   a plain recv when the event carries HUP). *)
let net_handle_readable t cs mask =
  (match (t.ncfg.variant, cs.nc_pending) with
  | Net_consolidated, Pbytes b :: rest ->
      let sent, data =
        Wutil.ok
          (Ksyscall.Usyscall.sys_recv_send t.nsys ~sock:cs.nc_fd ~len:net_chunk
             ~data:b)
      in
      t.nsent <- t.nsent + sent;
      if sent = Bytes.length b then cs.nc_pending <- rest
      else if sent > 0 then
        cs.nc_pending <- Pbytes (Bytes.sub b sent (Bytes.length b - sent)) :: rest;
      if Bytes.length data > 0 then net_feed t cs data
      else if mask land Knet.ep_hup <> 0 then begin
        match Ksyscall.Usyscall.sys_recv t.nsys ~sock:cs.nc_fd ~len:net_chunk with
        | Ok b -> net_feed t cs b
        | Error Kvfs.Vtypes.EAGAIN -> ()
        | Error e -> net_fail e
      end
  | _ -> (
      match Ksyscall.Usyscall.sys_recv t.nsys ~sock:cs.nc_fd ~len:net_chunk with
      | Ok data -> net_feed t cs data
      | Error Kvfs.Vtypes.EAGAIN -> ()
      | Error e -> net_fail e));
  net_flush t cs

(* Ring variant: batch this round's recvs through one ring crossing,
   then repeatedly batch one head-of-queue send (or sendfile) per
   connection — never two in-flight items from the same connection, so
   per-connection byte order is preserved even under partial sends. *)
let net_step_ring t ring events =
  let readable =
    List.filter_map
      (fun (cookie, mask) ->
        if cookie = t.nlisten || mask land (Knet.ep_in lor Knet.ep_hup) = 0
        then None
        else
          Option.map (fun cs -> cs) (Hashtbl.find_opt t.nconns cookie))
      events
  in
  let comps =
    Kring.run_batch ring
      (List.map
         (fun cs -> Ksyscall.Syscall.Recv { sock = cs.nc_fd; len = net_chunk })
         readable)
  in
  List.iter2
    (fun cs (comp : Kring.completion) ->
      match comp.Kring.reply with
      | Ok (Ksyscall.Syscall.R_bytes data) -> net_feed t cs data
      | Error Kvfs.Vtypes.EAGAIN -> ()
      | Error e -> net_fail e
      | Ok _ -> assert false)
    readable comps;
  (* a drained connection with nothing left to send never enters the
     send batches below, so close it here or its HUP stays ready *)
  List.iter
    (fun cs ->
      if cs.nc_eof && cs.nc_pending = [] && Hashtbl.mem t.nconns cs.nc_fd then
        net_close_conn t cs)
    readable;
  (* flush requests raised by EP_OUT events through the same batcher *)
  let writable =
    List.filter_map
      (fun (cookie, mask) ->
        if cookie = t.nlisten || mask land Knet.ep_out = 0 then None
        else Hashtbl.find_opt t.nconns cookie)
      events
  in
  let active =
    ref
      (List.sort_uniq
         (fun a b -> compare a.nc_fd b.nc_fd)
         (List.filter (fun cs -> cs.nc_pending <> []) (readable @ writable)))
  in
  while !active <> [] do
    let batch =
      List.map
        (fun cs ->
          match cs.nc_pending with
          | Pbytes b :: _ -> Ksyscall.Syscall.Send { sock = cs.nc_fd; data = b }
          | Pfile pf :: _ ->
              Ksyscall.Syscall.Sendfile_sock
                { sock = cs.nc_fd; fd = pf.pf_fd; off = pf.pf_off;
                  len = pf.pf_left }
          | [] -> assert false)
        !active
    in
    let comps = Kring.run_batch ring batch in
    let next = ref [] in
    List.iter2
      (fun cs (comp : Kring.completion) ->
        let blocked =
          match (cs.nc_pending, comp.Kring.reply) with
          | Pbytes b :: rest, Ok (Ksyscall.Syscall.R_int n) ->
              t.nsent <- t.nsent + n;
              if n = Bytes.length b then begin
                cs.nc_pending <- rest;
                false
              end
              else begin
                if n > 0 then
                  cs.nc_pending <-
                    Pbytes (Bytes.sub b n (Bytes.length b - n)) :: rest;
                true
              end
          | Pfile pf :: rest, Ok (Ksyscall.Syscall.R_int n) ->
              t.nsent <- t.nsent + n;
              pf.pf_off <- pf.pf_off + n;
              pf.pf_left <- pf.pf_left - n;
              if pf.pf_left = 0 then begin
                cs.nc_pending <- rest;
                false
              end
              else n = 0
          | _, Error Kvfs.Vtypes.ENOBUFS -> true
          | _, Error e -> net_fail e
          | _, Ok _ -> assert false
        in
        if blocked then net_set_out t cs true
        else if cs.nc_pending <> [] then next := cs :: !next
        else if cs.nc_eof then net_close_conn t cs
        else net_set_out t cs false)
      !active comps;
    active := List.rev !next
  done

let net_done t =
  t.ninit
  && Knet.Traffic.completed (Ksyscall.Systable.net t.nsys) ~port:t.ncfg.port
     = t.ncfg.conns
  && Hashtbl.length t.nconns = 0

(* One epoll round.  [false] when every connection has been served and
   closed (checked before blocking, so the loop terminates instead of
   sleeping on an exhausted event heap). *)
let net_step t =
  if not t.ninit then begin
    net_init t;
    true
  end
  else if net_done t then false
  else begin
    let events =
      Wutil.ok
        (Ksyscall.Usyscall.sys_epoll_wait t.nsys ~ep:t.nep
           ~max:t.ncfg.epoll_batch)
    in
    if events = [] then false (* traffic exhausted; nothing left to serve *)
    else begin
      if
        List.exists
          (fun (c, m) -> c = t.nlisten && m land Knet.ep_in <> 0)
          events
      then net_accept_all t;
      (match t.nring with
      | Some ring -> net_step_ring t ring events
      | None ->
          List.iter
            (fun (cookie, mask) ->
              if cookie <> t.nlisten then
                match Hashtbl.find_opt t.nconns cookie with
                | None -> ()
                | Some cs ->
                    if mask land (Knet.ep_in lor Knet.ep_hup) <> 0 then
                      net_handle_readable t cs mask
                    else if mask land Knet.ep_out <> 0 then net_flush t cs)
            events);
      true
    end
  end

let run_net ?(config = net_default_config) sys =
  let kernel = Ksyscall.Systable.kernel sys in
  let t = net_make ~config sys in
  let (), times =
    Ksim.Kernel.timed kernel (fun () -> while net_step t do () done)
  in
  (* release the listener, epoll instance and cached document fds so a
     rerun on the same system can rebind the port *)
  ignore (Ksyscall.Usyscall.sys_close sys ~fd:t.nlisten);
  ignore (Ksyscall.Usyscall.sys_close sys ~fd:t.nep);
  Array.iter (fun (fd, _) -> ignore (Ksyscall.Usyscall.sys_close sys ~fd)) t.ndocs;
  let knet = Ksyscall.Systable.net sys in
  {
    n_served = t.nserved;
    n_sent = t.nsent;
    n_completed = Knet.Traffic.completed knet ~port:config.port;
    n_drops = Knet.Traffic.drops knet ~port:config.port;
    n_shed = t.nshed;
    n_digest = Knet.Traffic.digest knet ~port:config.port;
    n_times = times;
  }
