(* A static-file web server loop: per request, resolve + open + read the
   document and "send" it (modelled as a copy back across the boundary,
   exactly the data movement sendfile/Cosy eliminate).  The Cosy variant
   runs open-read-close inside one compound per request with the document
   staged through the shared buffer. *)

type config = {
  documents : int;
  doc_size : int;
  doc_size_spread : int;
      (* when nonzero, document sizes are drawn (deterministically from
         [seed]) from [doc_size - spread, doc_size + spread] instead of
         being uniform.  Real document trees are heterogeneous; uniform
         sizes make every request cost identical, which lets concurrent
         server instances phase-lock around a contended dcache lock and
         understates contention in the SMP experiment (E13). *)
  requests : int;
  seed : int;
  dir : string;
}

let default_config =
  {
    documents = 50;
    doc_size = 16_384;
    doc_size_spread = 0;
    requests = 500;
    seed = 3;
    dir = "/www";
  }

type stats = {
  served : int;
  bytes_served : int;
  times : Ksim.Kernel.times;
}

let doc_name cfg i = Printf.sprintf "%s/doc%04d.html" cfg.dir i

let setup ?(config = default_config) sys =
  let cfg = config in
  let sizes = Wutil.rng cfg.seed in
  let doc_len _i =
    if cfg.doc_size_spread = 0 then cfg.doc_size
    else
      max 1
        (cfg.doc_size - cfg.doc_size_spread
        + Wutil.rand_int sizes ((2 * cfg.doc_size_spread) + 1))
  in
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:cfg.dir);
  for i = 0 to cfg.documents - 1 do
    ignore
      (Wutil.ok
         (Ksyscall.Usyscall.sys_open_write_close sys ~path:(doc_name cfg i)
            ~data:(Wutil.payload (doc_len i))
            ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done

(* Stepper over the plain-serving loop, one request per [step], so the
   SMP driver can interleave several server instances across CPUs. *)
type t = {
  sys : Ksyscall.Systable.t;
  cfg : config;
  rng : Wutil.rng;
  mutable remaining : int;
  mutable served : int;
  mutable bytes : int;
}

let make_plain ?(config = default_config) sys =
  {
    sys;
    cfg = config;
    rng = Wutil.rng config.seed;
    remaining = config.requests;
    served = 0;
    bytes = 0;
  }

let step_plain t =
  if t.remaining = 0 then false
  else begin
    let cfg = t.cfg in
    let kernel = Ksyscall.Systable.kernel t.sys in
    let path = doc_name cfg (Wutil.rand_int t.rng cfg.documents) in
    let fd = Wutil.ok (Ksyscall.Usyscall.sys_open t.sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
    let data = Wutil.ok (Ksyscall.Usyscall.sys_read t.sys ~fd ~len:max_int) in
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_close t.sys ~fd));
    (* "send": the payload crosses back into the kernel for the NIC *)
    Ksim.Kernel.enter_kernel kernel;
    Ksim.Kernel.charge_copy_from_user kernel (Bytes.length data);
    Ksim.Kernel.exit_kernel kernel;
    t.served <- t.served + 1;
    t.bytes <- t.bytes + Bytes.length data;
    t.remaining <- t.remaining - 1;
    true
  end

let run_plain ?(config = default_config) sys =
  let kernel = Ksyscall.Systable.kernel sys in
  let t = make_plain ~config sys in
  let (), times =
    Ksim.Kernel.timed kernel (fun () -> while step_plain t do () done)
  in
  { served = t.served; bytes_served = t.bytes; times }

(* the sendfile syscall itself: open + sendfile + close per request. *)
let run_sendfile ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let rng = Wutil.rng cfg.seed in
  let served = ref 0 and bytes = ref 0 in
  let body () =
    for _ = 1 to cfg.requests do
      let path = doc_name cfg (Wutil.rand_int rng cfg.documents) in
      let fd = Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
      let n =
        Wutil.ok (Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:0 ~len:max_int)
      in
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
      served := !served + 1;
      bytes := !bytes + n
    done
  in
  let (), times = Ksim.Kernel.timed kernel body in
  { served = !served; bytes_served = !bytes; times }

(* Cosy: one compound per request; the document never visits user
   space. *)
let run_cosy ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let exec = Cosy.Cosy_exec.create ~shared_size:(cfg.doc_size * 2) sys in
  let rng = Wutil.rng cfg.seed in
  let served = ref 0 and bytes = ref 0 in
  let body () =
    for _ = 1 to cfg.requests do
      let path = doc_name cfg (Wutil.rand_int rng cfg.documents) in
      let c = Cosy.Cosy_lib.create ~shared_size:(cfg.doc_size * 2) () in
      let buf = Cosy.Cosy_lib.alloc_shared c cfg.doc_size in
      let fd = Cosy.Cosy_lib.syscall c "open" [ Cosy.Cosy_op.Str path; Cosy.Cosy_op.Const 0 ] in
      let n =
        Cosy.Cosy_lib.syscall c "read"
          [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const cfg.doc_size ]
      in
      ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
      let compound = Cosy.Cosy_lib.finish c in
      let slots = Cosy.Cosy_exec.submit exec compound in
      served := !served + 1;
      bytes := !bytes + slots.(n)
    done
  in
  let (), times = Ksim.Kernel.timed kernel body in
  ({ served = !served; bytes_served = !bytes; times }, Cosy.Cosy_exec.stats exec)
