(* Multi-process SMP driver: interleave K workload instances across the
   kernel's simulated CPUs, one operation at a time.

   Each instance gets its own process, placed round-robin across CPUs.
   The driver repeatedly activates an instance's process and runs one
   step of its workload under [Scheduler.run_on], so the step's cycles
   are credited to that CPU's local clock and any dcache locks it takes
   are attributed to the right pid and CPU.  Instances on different CPUs
   therefore overlap in parallel time, and a lock held by one is seen as
   contended by the others — the setting experiment E13 measures. *)

type instance = {
  name : string;
  step : unit -> bool;  (* one unit of work; false when the instance is done *)
}

type result = {
  ncpus : int;
  instances : int;
  steps : int;                (* total units of work completed *)
  makespan : int;             (* elapsed cycles of the parallel run *)
  cpu_cycles : int array;     (* per-CPU busy cycles *)
  lock_acquisitions : int;    (* dcache lock acquisitions during the run *)
  contended : int;            (* ... of which found the lock held remotely *)
  spin_cycles : int;          (* cycles burned spinning on the dcache lock *)
}

let postmark_instance ?(config = Postmark.default_config) sys i =
  let config =
    { config with dir = Printf.sprintf "%s%d" config.dir i;
                  seed = config.seed + i }
  in
  let t = Postmark.make ~config sys in
  { name = Printf.sprintf "postmark%d" i; step = (fun () -> Postmark.step t) }

let webserver_instance ?(config = Webserver.default_config) sys i =
  let config =
    { config with dir = Printf.sprintf "%s%d" config.dir i;
                  seed = config.seed + i }
  in
  Webserver.setup ~config sys;
  let t = Webserver.make_plain ~config sys in
  { name = Printf.sprintf "webserver%d" i;
    step = (fun () -> Webserver.step_plain t) }

let postmark_instances ?config sys k =
  List.init k (postmark_instance ?config sys)

let webserver_instances ?config sys k =
  List.init k (webserver_instance ?config sys)

(* knet serving (E14): each instance is its own listener on its own
   port with its own document tree and client population, but all share
   the one socket stack and event heap — so their epoll waits and wire
   activity interleave across CPUs. *)
let webserver_net_instance ?(config = Webserver.net_default_config) sys i =
  let config =
    {
      config with
      Webserver.port = config.Webserver.port + i;
      docs =
        {
          config.Webserver.docs with
          Webserver.dir = Printf.sprintf "%s%d" config.Webserver.docs.Webserver.dir i;
          seed = config.Webserver.docs.Webserver.seed + i;
        };
    }
  in
  Webserver.net_setup ~config sys;
  let t = Webserver.net_make ~config sys in
  { name = Printf.sprintf "webnet%d" i; step = (fun () -> Webserver.net_step t) }

let webserver_net_instances ?config sys k =
  List.init k (webserver_net_instance ?config sys)

let run sys instances =
  let kernel = Ksyscall.Systable.kernel sys in
  let sched = Ksim.Kernel.sched kernel in
  let dcache = Kvfs.Vfs.dcache (Ksyscall.Systable.vfs sys) in
  let ncpus = Ksim.Scheduler.ncpus sched in
  let insts = Array.of_list instances in
  let n = Array.length insts in
  if n = 0 then invalid_arg "Smp.run: no instances";
  let procs =
    Array.mapi
      (fun i inst -> Ksim.Scheduler.spawn ~cpu:(i mod ncpus) sched ~name:inst.name)
      insts
  in
  let cpu0 = Array.init ncpus (Ksim.Scheduler.cpu_time sched) in
  let acq0 = Kvfs.Dcache.acquisitions dcache in
  let cont0 = Kvfs.Dcache.contended dcache in
  let spin0 = Kvfs.Dcache.spin_cycles dcache in
  let alive = Array.make n true in
  let remaining = ref n in
  let steps = ref 0 in
  (* discrete-event order: always advance a live instance on the CPU
     whose local clock is furthest behind.  The CPUs stay in near
     lockstep in parallel time — exactly what a real SMP machine does —
     so lock hold windows on different CPUs genuinely overlap, instead
     of drifting apart by whole I/O waits as naive round-robin would. *)
  while !remaining > 0 do
    let next = ref (-1) in
    for i = n - 1 downto 0 do
      if
        alive.(i)
        && (!next < 0
           || Ksim.Scheduler.cpu_time sched procs.(i).Ksim.Kproc.cpu
              <= Ksim.Scheduler.cpu_time sched procs.(!next).Ksim.Kproc.cpu)
      then next := i
    done;
    let i = !next in
    let p = procs.(i) in
    Ksim.Scheduler.activate sched p;
    let more = Ksim.Scheduler.run_on sched ~cpu:p.Ksim.Kproc.cpu insts.(i).step in
    if more then incr steps
    else begin
      alive.(i) <- false;
      decr remaining
    end
  done;
  Array.iter (fun p -> Ksim.Scheduler.kill sched p) procs;
  let cpu_cycles =
    Array.init ncpus (fun c -> Ksim.Scheduler.cpu_time sched c - cpu0.(c))
  in
  {
    ncpus;
    instances = n;
    steps = !steps;
    makespan = Array.fold_left max 0 cpu_cycles;
    cpu_cycles;
    lock_acquisitions = Kvfs.Dcache.acquisitions dcache - acq0;
    contended = Kvfs.Dcache.contended dcache - cont0;
    spin_cycles = Kvfs.Dcache.spin_cycles dcache - spin0;
  }
