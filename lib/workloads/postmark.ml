(* PostMark (Katcher, TR3022): the small-file/metadata benchmark used by
   the paper for E6 and E7.  Create an initial pool of files with sizes
   uniform in [min_size, max_size]; run [transactions] transactions, each
   pairing a create-or-delete with a read-or-append; then delete the
   remaining pool.

   The benchmark is factored as a stepper ([make] / [step]) so the SMP
   driver can interleave several instances one operation at a time across
   simulated CPUs; [run] drives a single instance to completion and is
   operation-for-operation identical to the original monolithic loop. *)

type config = {
  files : int;
  transactions : int;
  min_size : int;
  max_size : int;
  seed : int;
  dir : string;
  (* called between transactions; E6 hangs the user-space logger here *)
  pump : unit -> unit;
}

let default_config =
  {
    files = 500;
    transactions = 2_000;
    min_size = 512;
    max_size = 10_240;
    seed = 42;
    dir = "/postmark";
    pump = (fun () -> ());
  }

type stats = {
  created : int;
  deleted : int;
  read : int;
  appended : int;
  data_read : int;
  data_written : int;
  times : Ksim.Kernel.times;
}

type phase =
  | Pool of int          (* initial creates remaining *)
  | Trans of int         (* transactions remaining *)
  | Cleanup of int list  (* ids left to delete, sorted *)
  | Finished

type t = {
  sys : Ksyscall.Systable.t;
  cfg : config;
  rng : Wutil.rng;
  live : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable phase : phase;
  mutable created : int;
  mutable deleted : int;
  mutable read : int;
  mutable appended : int;
  mutable data_read : int;
  mutable data_written : int;
}

let file_name cfg i = Printf.sprintf "%s/pm%06d" cfg.dir i

let create_file sys cfg rng i =
  let path = file_name cfg i in
  let size = Wutil.rand_range rng cfg.min_size cfg.max_size in
  let fd =
    Wutil.ok
      (Ksyscall.Usyscall.sys_open sys ~path
         ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ])
  in
  let written = Wutil.ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Wutil.payload size)) in
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
  written

(* Creates the working directory (untimed, as before the refactor). *)
let make ?(config = default_config) sys =
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:config.dir);
  {
    sys;
    cfg = config;
    rng = Wutil.rng config.seed;
    live = Hashtbl.create config.files;
    next_id = 0;
    phase = (if config.files > 0 then Pool config.files
             else Trans config.transactions);
    created = 0;
    deleted = 0;
    read = 0;
    appended = 0;
    data_read = 0;
    data_written = 0;
  }

let pick_live t =
  (* deterministic pick: nth of the current live set *)
  let n = Hashtbl.length t.live in
  if n = 0 then None
  else begin
    let k = Wutil.rand_int t.rng n in
    let i = ref 0 in
    let found = ref None in
    Hashtbl.iter
      (fun id () ->
        if !i = k && !found = None then found := Some id;
        incr i)
      t.live;
    !found
  end

let create_one t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.data_written <- t.data_written + create_file t.sys t.cfg t.rng id;
  Hashtbl.replace t.live id ();
  t.created <- t.created + 1

let delete_one t id =
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_unlink t.sys ~path:(file_name t.cfg id)));
  Hashtbl.remove t.live id;
  t.deleted <- t.deleted + 1

let read_one t id =
  let path = file_name t.cfg id in
  let fd = Wutil.ok (Ksyscall.Usyscall.sys_open t.sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  let st = Wutil.ok (Ksyscall.Usyscall.sys_fstat t.sys ~fd) in
  let data =
    Wutil.ok (Ksyscall.Usyscall.sys_read t.sys ~fd ~len:st.Kvfs.Vtypes.st_size)
  in
  t.data_read <- t.data_read + Bytes.length data;
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_close t.sys ~fd));
  t.read <- t.read + 1

let append_one t id =
  let path = file_name t.cfg id in
  let fd =
    Wutil.ok (Ksyscall.Usyscall.sys_open t.sys ~path ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_APPEND ])
  in
  let cfg = t.cfg in
  let n = Wutil.rand_range t.rng cfg.min_size (max cfg.min_size (cfg.max_size / 4)) in
  t.data_written <-
    t.data_written + Wutil.ok (Ksyscall.Usyscall.sys_write t.sys ~fd ~data:(Wutil.payload n));
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_close t.sys ~fd));
  t.appended <- t.appended + 1

let enter_cleanup t =
  let remaining = Hashtbl.fold (fun id () acc -> id :: acc) t.live [] in
  match List.sort compare remaining with
  | [] -> Finished
  | ids -> Cleanup ids

(* One operation of the benchmark: an initial-pool create, a full
   transaction, or one cleanup delete.  Returns false once finished. *)
let step t =
  match t.phase with
  | Finished -> false
  | Pool k ->
      create_one t;
      t.phase <-
        (if k > 1 then Pool (k - 1)
         else if t.cfg.transactions > 0 then Trans t.cfg.transactions
         else enter_cleanup t);
      true
  | Trans k ->
      (if Wutil.rand_bool t.rng then create_one t
       else match pick_live t with Some id -> delete_one t id | None -> create_one t);
      (match pick_live t with
      | Some id -> if Wutil.rand_bool t.rng then read_one t id else append_one t id
      | None -> ());
      t.cfg.pump ();
      t.phase <- (if k > 1 then Trans (k - 1) else enter_cleanup t);
      true
  | Cleanup [] ->
      t.phase <- Finished;
      false
  | Cleanup (id :: rest) ->
      delete_one t id;
      t.phase <- (if rest = [] then Finished else Cleanup rest);
      true

let finished t = t.phase = Finished

let stats_of t times =
  {
    created = t.created;
    deleted = t.deleted;
    read = t.read;
    appended = t.appended;
    data_read = t.data_read;
    data_written = t.data_written;
    times;
  }

let run ?(config = default_config) sys =
  let kernel = Ksyscall.Systable.kernel sys in
  let t = make ~config sys in
  let (), times =
    Ksim.Kernel.timed kernel (fun () -> while step t do () done)
  in
  stats_of t times
