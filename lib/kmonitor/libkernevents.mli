(** libkernevents: the user-space side (§3.3) — "copy log entries in bulk
    from the kernel and then read them one by one".

    Two consumption strategies: [Polling] reads the character device
    continuously until it runs dry (the prototype behaviour behind E6's
    +61%); [Blocking] only reads once the kernel holds at least
    [low_water] events (the fix the paper says it intends). *)

type strategy = Polling | Blocking of { low_water : int }

type sink = Ksim.Instrument.event -> unit

type t

val create : ?strategy:strategy -> ?batch:int -> Chardev.t -> t

(** Register a per-event consumer (e.g. a logger). *)
val add_sink : t -> name:string -> sink -> unit

(** Pump once from user context: read the device per the strategy and
    deliver queued events to every sink. *)
val pump : t -> unit

(** Read until the kernel side is empty. *)
val drain : t -> unit

val consumed : t -> int

(** Kernel-side ring drops observed so far through device reads — events
    this consumer will never see. *)
val dropped : t -> int

type stats = {
  consumed : int;     (** events delivered to sinks *)
  dropped : int;      (** kernel-side drops observed through reads *)
  reads : int;        (** device reads issued *)
  empty_polls : int;  (** reads that found nothing *)
}

val stats : t -> stats
