(* The character-device interface between the kernel ring buffer and user
   space.  A read copies a batch of log entries across the boundary
   (charged per event); a poll that finds nothing still costs a boundary
   round trip, which is why the paper's polling prototype was so much
   slower than it needed to be. *)

type t = {
  kernel : Ksim.Kernel.t;
  ring : Ksim.Instrument.event Ring.t;
  mutable reads : int;
  mutable empty_polls : int;
  mutable events_delivered : int;
  mutable drops_reported : int;      (* ring drops already surfaced *)
  mutable last_read_drops : int;     (* drops reported by the last read *)
}

let create kernel dispatcher =
  { kernel; ring = Dispatcher.ring dispatcher; reads = 0; empty_polls = 0;
    events_delivered = 0; drops_reported = 0; last_read_drops = 0 }

(* One read(2) on the device: returns up to [max] events.  The crossing
   and per-event copy are charged; an empty read additionally counts as a
   wasted poll. *)
let read t ~max =
  let cost = Ksim.Kernel.cost t.kernel in
  let clock = Ksim.Kernel.clock t.kernel in
  t.reads <- t.reads + 1;
  (* boundary round trip *)
  Ksim.Sim_clock.advance clock
    (cost.Ksim.Cost_model.syscall_entry + cost.Ksim.Cost_model.syscall_exit);
  (* like real drivers, each read also reports how many events the ring
     dropped since the previous read, so the consumer knows its log has
     holes *)
  let total_drops = Ring.dropped t.ring in
  t.last_read_drops <- total_drops - t.drops_reported;
  t.drops_reported <- total_drops;
  let batch = Ring.pop_batch t.ring ~max in
  (match batch with
  | [] ->
      t.empty_polls <- t.empty_polls + 1;
      Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.chardev_poll
  | _ :: _ ->
      t.events_delivered <- t.events_delivered + List.length batch;
      Ksim.Sim_clock.advance clock
        (List.length batch * cost.Ksim.Cost_model.chardev_copy_per_event));
  batch

let pending t = Ring.length t.ring
let reads t = t.reads
let empty_polls t = t.empty_polls
let events_delivered t = t.events_delivered
let dropped t = Ring.dropped t.ring
let last_read_drops t = t.last_read_drops
