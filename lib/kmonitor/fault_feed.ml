(* Feed injected faults into the Figure-1 monitoring pipeline: every
   kfault fire is mirrored as an Instrument.Custom event, so a
   user-space monitor polling the character device sees the injections
   interleaved with the lock/irq/syscall events whose anomalies they
   cause.  Like the perf bridge, the mirroring runs through the
   engine's sink hook — kfault sits below ksim in the library graph
   and cannot see kmonitor.

   The event's [file] carries the site name, [value] the occurrence
   index at which the site fired. *)

let fault_kind = 14
let () = Ksim.Instrument.register_custom_name fault_kind "kfault-inject"

type t = {
  fault : Kfault.t;
  kernel : Ksim.Kernel.t;
  kstats : Kstats.t;
  st_mirrored : Kstats.counter;
  mutable mirrored : int;
  mutable attached : bool;
}

let create kernel =
  let kstats = Ksim.Kernel.stats kernel in
  {
    fault = Ksim.Kernel.fault kernel;
    kernel;
    kstats;
    st_mirrored = Kstats.counter kstats "kmonitor.fault_feed.mirrored";
    mirrored = 0;
    attached = false;
  }

let mirror t ~name ~occurrence =
  t.mirrored <- t.mirrored + 1;
  Kstats.incr t.kstats t.st_mirrored;
  Ksim.Instrument.emit
    ~pid:(Ksim.Kernel.current t.kernel).Ksim.Kproc.pid
    ~obj:0 ~value:occurrence
    ~kind:(Ksim.Instrument.Custom fault_kind)
    ~file:("kfault:" ^ name) ~line:0 ()

let attach t =
  Kfault.set_sink t.fault (Some (mirror t));
  t.attached <- true

let detach t =
  if t.attached then begin
    Kfault.set_sink t.fault None;
    t.attached <- false
  end

let mirrored t = t.mirrored
