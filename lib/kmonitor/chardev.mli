(** The character-device interface between the kernel ring buffer and
    user space (§3.3).

    A read copies a batch of log entries across the boundary (charged
    per event); a poll that finds nothing still costs a boundary round
    trip plus wasted spin time — which is why the paper's polling
    prototype was so much slower than it needed to be (E6's +61%). *)

type t

val create : Ksim.Kernel.t -> Dispatcher.t -> t

(** One read(2): up to [max] events.  Charges the boundary trip and the
    per-event copy, or the empty-poll cost when nothing is pending. *)
val read : t -> max:int -> Ksim.Instrument.event list

(** Events currently buffered kernel-side. *)
val pending : t -> int

val reads : t -> int
val empty_polls : t -> int
val events_delivered : t -> int

(** Events the ring buffer has dropped on overflow so far. *)
val dropped : t -> int

(** Drops newly reported by the most recent {!read} (i.e. drops that
    happened since the read before it) — how real drivers tell the
    consumer its log has holes. *)
val last_read_drops : t -> int
