(** Bridge from the kperf tracer into the kmonitor event pipeline.

    While attached, every kperf span begin/end (synchronous and async)
    is mirrored as an {!Ksim.Instrument.Custom} event — kind 11
    ("kperf-span-begin") or 12 ("kperf-span-end") — carrying the span id
    as [obj], the span's numeric argument as [value], ["cat:name"] as
    [file] and the emitting CPU as [line].  A user-space monitor polling
    the character device therefore sees trace activity interleaved with
    the lock/irq events it already consumes.  Instants are not mirrored
    (they would double every context switch in the event stream).

    Mirrored events are counted in [kmonitor.perf_bridge.mirrored] and
    pay the normal dispatch costs. *)

type t

val span_begin_kind : int
val span_end_kind : int

(** Uses the kernel's own tracer and kstats registry. *)
val create : Ksim.Kernel.t -> t

(** Install the bridge as the tracer's sink (replacing any other). *)
val attach : t -> unit

(** Remove the sink; idempotent. *)
val detach : t -> unit

(** Events mirrored so far. *)
val mirrored : t -> int
