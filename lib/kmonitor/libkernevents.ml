(* libkernevents: the user-space side.  "User-space applications can link
   with libkernevents to copy log entries in bulk from the kernel and
   then read them one by one" (§3.3).

   Two consumption strategies:
   - [Polling]: the current prototype's behaviour — read the character
     device continuously, paying for every empty poll.  This is the 61%
     overhead configuration of E6.
   - [Blocking]: reads only when the kernel signals data (modelled as a
     read issued once the ring holds at least [low_water] events), the
     fix the paper says it intends. *)

type strategy = Polling | Blocking of { low_water : int }

type sink = Ksim.Instrument.event -> unit

type t = {
  chardev : Chardev.t;
  strategy : strategy;
  mutable queue : Ksim.Instrument.event list;  (* local, oldest first *)
  mutable consumed : int;
  mutable dropped : int;   (* kernel-side drops observed through reads *)
  sinks : (string, sink) Hashtbl.t;
  batch : int;
}

let create ?(strategy = Polling) ?(batch = 64) chardev =
  { chardev; strategy; queue = []; consumed = 0; dropped = 0;
    sinks = Hashtbl.create 4; batch }

(* Every device read may report kernel-side drops; fold them in. *)
let do_read t ~max =
  let batch = Chardev.read t.chardev ~max in
  t.dropped <- t.dropped + Chardev.last_read_drops t.chardev;
  batch

let add_sink t ~name sink = Hashtbl.replace t.sinks name sink

(* Pump the library once from user context: possibly read the device,
   then deliver queued events to sinks one by one. *)
let pump t =
  let should_read =
    match t.strategy with
    | Polling -> true
    | Blocking { low_water } -> Chardev.pending t.chardev >= low_water
  in
  if should_read then begin
    match t.strategy with
    | Polling ->
        (* the prototype "polls the character device continuously rather
           than using blocking reads": drain until an empty read *)
        let rec spin () =
          let batch = do_read t ~max:t.batch in
          if batch <> [] then begin
            t.queue <- t.queue @ batch;
            spin ()
          end
        in
        spin ()
    | Blocking _ ->
        let batch = do_read t ~max:t.batch in
        t.queue <- t.queue @ batch
  end;
  let deliver ev = Hashtbl.iter (fun _ sink -> sink ev) t.sinks in
  List.iter
    (fun ev ->
      t.consumed <- t.consumed + 1;
      deliver ev)
    t.queue;
  t.queue <- []

(* Drain everything still buffered kernel-side. *)
let drain t =
  let rec go () =
    let batch = do_read t ~max:t.batch in
    if batch <> [] then begin
      List.iter
        (fun ev ->
          t.consumed <- t.consumed + 1;
          Hashtbl.iter (fun _ sink -> sink ev) t.sinks)
        batch;
      go ()
    end
  in
  go ()

let consumed t = t.consumed
let dropped t = t.dropped

type stats = {
  consumed : int;
  dropped : int;
  reads : int;
  empty_polls : int;
}

let stats (t : t) =
  {
    consumed = t.consumed;
    dropped = t.dropped;
    reads = Chardev.reads t.chardev;
    empty_polls = Chardev.empty_polls t.chardev;
  }
