(** Mirror kcrash events into the monitoring pipeline.

    Every contained oops, power loss, and journal recovery is mirrored
    as an {!Ksim.Instrument.Custom} event — kinds 15 ("kcrash-oops"),
    16 ("kcrash-power-loss") and 17 ("kcrash-recovery") — so a
    user-space monitor polling the character device sees crashes
    interleaved with the events they truncate.  Same shape as
    {!Fault_feed}: mirroring runs through kcrash's sink hook, since
    kcrash sits below kmonitor in the library graph.

    Oops events carry the dying pid and the total objects reaped in
    [value]; power-loss events the torn-record count; recovery events
    the replayed-record count.  The event [file] carries a
    ["kcrash:<reason>"] tag.  Mirrors are counted in
    [kmonitor.crash_feed.mirrored]. *)

type t

val oops_kind : int
val power_loss_kind : int
val recovery_kind : int

val create : Ksim.Kernel.t -> Kcrash.t -> t

(** Install the mirror as kcrash's event sink. *)
val attach : t -> unit

(** Disconnect (idempotent). *)
val detach : t -> unit

(** Events mirrored so far. *)
val mirrored : t -> int
