(* The event dispatcher of Figure 1: log_event -> dispatcher -> a set of
   callbacks.  In-kernel on-line monitors register synchronous callbacks;
   the ring-buffer feed for user space is itself one such callback,
   installed by [enable_ring]. *)

type callback = Ksim.Instrument.event -> unit

type t = {
  kernel : Ksim.Kernel.t;
  mutable callbacks : (string * callback) list;
  ring : Ksim.Instrument.event Ring.t;
  kstats : Kstats.t;
  st_events : Kstats.counter;
  st_ring_pushed : Kstats.counter;
  st_ring_dropped : Kstats.counter;
  mutable ring_enabled : bool;
  mutable events : int;
  mutable installed : bool;
}

let create ?(ring_capacity = 8192) kernel =
  let kstats = Ksim.Kernel.stats kernel in
  {
    kernel;
    callbacks = [];
    ring = Ring.create ~name:"dispatcher" ~stats:kstats ring_capacity;
    kstats;
    st_events = Kstats.counter kstats "kmonitor.events";
    st_ring_pushed = Kstats.counter kstats "kmonitor.ring_pushed";
    st_ring_dropped = Kstats.counter kstats "kmonitor.ring_dropped";
    ring_enabled = false;
    events = 0;
    installed = false;
  }

let ring t = t.ring

(* The log_event entry point. *)
let log_event t (ev : Ksim.Instrument.event) =
  let cost = Ksim.Kernel.cost t.kernel in
  Ksim.Sim_clock.advance (Ksim.Kernel.clock t.kernel)
    cost.Ksim.Cost_model.event_dispatch;
  t.events <- t.events + 1;
  Kstats.incr t.kstats t.st_events;
  List.iter (fun (_, cb) -> cb ev) t.callbacks;
  if t.ring_enabled then begin
    Ksim.Sim_clock.advance (Ksim.Kernel.clock t.kernel)
      cost.Ksim.Cost_model.ring_push;
    if Ring.push t.ring ev then Kstats.incr t.kstats t.st_ring_pushed
    else Kstats.incr t.kstats t.st_ring_dropped
  end

(* Wire the dispatcher into the kernel's instrumentation point. *)
let install t =
  Ksim.Instrument.log := log_event t;
  Ksim.Instrument.enabled := true;
  t.installed <- true

let uninstall t =
  if t.installed then begin
    Ksim.Instrument.enabled := false;
    Ksim.Instrument.log := (fun _ -> ());
    t.installed <- false
  end

let register t ~name cb = t.callbacks <- t.callbacks @ [ (name, cb) ]

let unregister t ~name =
  t.callbacks <- List.filter (fun (n, _) -> n <> name) t.callbacks

let enable_ring t = t.ring_enabled <- true
let disable_ring t = t.ring_enabled <- false

let events t = t.events
let callback_count t = List.length t.callbacks
