(* Lock-free single-producer/single-consumer ring buffer (§3.3):
   "user-space event monitors receive events through a character device
   interface to a lock-free ring buffer.  Because the ring buffer is
   lock-free, we can instrument code that is invoked during interrupt
   handlers without fear that the interrupt handler will block."

   The implementation is a genuine lock-free SPSC queue over OCaml 5
   atomics: the producer only writes [tail], the consumer only writes
   [head], and each reads the other's index with acquire semantics via
   Atomic.get.  It is safe to run producer and consumer on different
   domains (the property tests do). *)

type 'a t = {
  slots : 'a option array;
  capacity : int;
  head : int Atomic.t;          (* next slot to consume *)
  tail : int Atomic.t;          (* next slot to fill *)
  dropped : int Atomic.t;       (* producer-side overflow count *)
  st_dropped : (Kstats.t * Kstats.counter) option;
}

let create ?name ?stats capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  (* a named ring surfaces its drops as kmonitor.ring.<name>.dropped, so
     a registry dump attributes overflow to the ring that overflowed
     rather than one anonymous global total *)
  let st_dropped =
    match (name, stats) with
    | Some n, Some s ->
        Some (s, Kstats.counter s (Printf.sprintf "kmonitor.ring.%s.dropped" n))
    | _ -> None
  in
  {
    slots = Array.make capacity None;
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    dropped = Atomic.make 0;
    st_dropped;
  }

let capacity t = t.capacity

let length t =
  let tl = Atomic.get t.tail and hd = Atomic.get t.head in
  tl - hd

let is_empty t = length t = 0
let is_full t = length t >= t.capacity

(* Producer side.  On overflow the event is dropped (an interrupt
   handler can never block), and the drop is counted. *)
let push t v =
  let tl = Atomic.get t.tail in
  let hd = Atomic.get t.head in
  if tl - hd >= t.capacity then begin
    Atomic.incr t.dropped;
    (match t.st_dropped with
    | Some (stats, c) -> Kstats.incr stats c
    | None -> ());
    false
  end
  else begin
    t.slots.(tl mod t.capacity) <- Some v;
    Atomic.set t.tail (tl + 1);
    true
  end

(* Consumer side. *)
let pop t =
  let hd = Atomic.get t.head in
  let tl = Atomic.get t.tail in
  if tl = hd then None
  else begin
    let v = t.slots.(hd mod t.capacity) in
    t.slots.(hd mod t.capacity) <- None;
    Atomic.set t.head (hd + 1);
    v
  end

(* Bulk consume up to [max] entries — the libkernevents "copy log entries
   in bulk" path. *)
let pop_batch t ~max =
  let rec go acc n =
    if n >= max then List.rev acc
    else
      match pop t with
      | None -> List.rev acc
      | Some v -> go (v :: acc) (n + 1)
  in
  go [] 0

let dropped t = Atomic.get t.dropped
