(** Feed injected faults into the kmonitor event pipeline.

    While attached, every kfault fire is mirrored as an
    {!Ksim.Instrument.Custom} event — kind 14 ("kfault-inject") —
    carrying ["kfault:<site>"] as [file], the occurrence index at which
    the site fired as [value], and the current pid.  A user-space
    monitor polling the character device therefore sees the injections
    interleaved with the anomalies they cause (backlog drops, watchdog
    kills, latency spikes).

    Mirrored events are counted in [kmonitor.fault_feed.mirrored] and
    pay the normal dispatch costs. *)

type t

val fault_kind : int

(** Uses the kernel's own fault engine and kstats registry. *)
val create : Ksim.Kernel.t -> t

(** Install the feed as the engine's sink (replacing any other). *)
val attach : t -> unit

(** Remove the sink; idempotent. *)
val detach : t -> unit

(** Fires mirrored so far. *)
val mirrored : t -> int
