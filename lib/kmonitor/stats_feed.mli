(** Periodic kstats snapshots pushed into the event stream.

    Each snapshot emits one [Instrument.Custom] event per registered
    metric (kind {!snapshot_kind}, printed as ["kstats-snapshot"]), so
    the whole registry flows through the same
    log_event -> dispatcher -> ring path as lock and refcount events and
    user space can reconstruct metric time series from the ring alone.

    Events only flow while a {!Dispatcher} is installed (instrumentation
    enabled), exactly like every other event source. *)

type t

(** The kind code used for snapshot events, in the [Custom] space. *)
val snapshot_kind : int

(** [create ?interval kernel] — [interval] is the minimum number of
    cycles between {!tick}-driven snapshots (default 1M). *)
val create : ?interval:int -> Ksim.Kernel.t -> t

(** Emit one snapshot of every registered metric right now. *)
val emit : t -> unit

(** Emit a snapshot only if [interval] cycles have passed since the last
    one; call from a timer tick or any polling loop. *)
val tick : t -> unit

(** Snapshots emitted so far. *)
val snapshots : t -> int

(** [decode ev] returns [(metric_name, scalar_value)] when [ev] is a
    snapshot event, [None] otherwise. *)
val decode : Ksim.Instrument.event -> (string * int) option
