(* Feed kcrash events into the Figure-1 monitoring pipeline: every
   contained oops, power loss, and journal recovery is mirrored as an
   Instrument.Custom event, so a user-space monitor polling the
   character device sees crashes interleaved with the lock/irq/syscall
   events they truncate.  Same shape as Fault_feed: the mirroring runs
   through kcrash's sink hook — kcrash cannot see kmonitor.

   Oops events carry the dying pid and the reap total in [value];
   power-loss events carry the torn-record count; recovery events the
   replayed-record count.  [file] carries a "kcrash:<reason>" tag. *)

let oops_kind = 15
let power_loss_kind = 16
let recovery_kind = 17

let () =
  Ksim.Instrument.register_custom_name oops_kind "kcrash-oops";
  Ksim.Instrument.register_custom_name power_loss_kind "kcrash-power-loss";
  Ksim.Instrument.register_custom_name recovery_kind "kcrash-recovery"

type t = {
  crash : Kcrash.t;
  kstats : Kstats.t;
  st_mirrored : Kstats.counter;
  mutable mirrored : int;
  mutable attached : bool;
}

let create kernel crash =
  let kstats = Ksim.Kernel.stats kernel in
  {
    crash;
    kstats;
    st_mirrored = Kstats.counter kstats "kmonitor.crash_feed.mirrored";
    mirrored = 0;
    attached = false;
  }

let mirror t (ev : Kcrash.event) =
  t.mirrored <- t.mirrored + 1;
  Kstats.incr t.kstats t.st_mirrored;
  let pid, kind, value, tag =
    match ev with
    | Kcrash.E_oops r ->
        ( r.Kcrash.o_pid,
          oops_kind,
          r.Kcrash.o_fds + r.Kcrash.o_kmallocs + r.Kcrash.o_vmallocs
          + r.Kcrash.o_locks + r.Kcrash.o_ring,
          "kcrash:" ^ r.Kcrash.o_reason )
    | Kcrash.E_power_loss { torn; _ } ->
        (0, power_loss_kind, torn, "kcrash:power-loss")
    | Kcrash.E_recovery { replayed; _ } ->
        (0, recovery_kind, replayed, "kcrash:recovery")
  in
  Ksim.Instrument.emit ~pid ~obj:0 ~value
    ~kind:(Ksim.Instrument.Custom kind) ~file:tag ~line:0 ()

let attach t =
  Kcrash.set_sink t.crash (Some (mirror t));
  t.attached <- true

let detach t =
  if t.attached then begin
    Kcrash.set_sink t.crash None;
    t.attached <- false
  end

let mirrored t = t.mirrored
