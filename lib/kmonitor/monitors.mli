(** In-kernel on-line monitors (§3.3/§3.5): verify higher-level kernel
    invariants from the event stream — "spinlocks that are locked are
    later unlocked, reference counters are incremented and decremented
    symmetrically, interrupts that are disabled are later re-enabled". *)

type violation = {
  what : string;
  obj : int;
  file : string;
  line : int;
  time_seen : int;  (** event ordinal when flagged *)
}

val pp_violation : Format.formatter -> violation -> unit

(** {2 Reference counters} *)

type refcount_monitor = {
  rc_state : (int, int) Hashtbl.t;  (** obj -> last observed count *)
  mutable rc_events : int;
  mutable rc_violations : violation list;
}

val refcount_monitor : unit -> refcount_monitor
val refcount_callback : refcount_monitor -> Ksim.Instrument.event -> unit

(** Objects whose count never returned to [resting]: leak candidates. *)
val refcount_leaks : refcount_monitor -> resting:int -> (int * int) list

(** {2 Spinlocks} *)

type spinlock_monitor = {
  sl_held : (int, string * int) Hashtbl.t;  (** obj -> acquire site *)
  mutable sl_events : int;
  mutable sl_acquisitions : int;
  mutable sl_violations : violation list;
}

val spinlock_monitor : unit -> spinlock_monitor
val spinlock_callback : spinlock_monitor -> Ksim.Instrument.event -> unit
val spinlocks_still_held : spinlock_monitor -> (int * (string * int)) list

(** {2 Lock contention}

    Not an invariant check but the paper's performance-monitoring use of
    the same event stream: count [Contended] events (whose value carries
    the spin cycles charged) per lock to find the hot ones. *)

type contention_monitor = {
  cn_state : (int, int * int) Hashtbl.t;
      (** obj -> (contended acquisitions, spin cycles) *)
  mutable cn_events : int;
  mutable cn_spin_cycles : int;
}

val contention_monitor : unit -> contention_monitor
val contention_callback : contention_monitor -> Ksim.Instrument.event -> unit

(** Locks by contended-acquisition count, hottest first:
    [(obj, contended, spin cycles)]. *)
val hottest_locks : contention_monitor -> (int * int * int) list

(** {2 Network backpressure}

    Watches knet's backlog-overflow events ([Custom] kind
    [net_backlog_drop_kind], registered as ["net-backlog-drop"]): the
    event's obj is the listening port, its value the listener's running
    drop count. *)

val net_backlog_drop_kind : int

type net_monitor = {
  nm_state : (int, int) Hashtbl.t;  (** port -> drops observed *)
  mutable nm_events : int;
}

val net_monitor : unit -> net_monitor
val net_callback : net_monitor -> Ksim.Instrument.event -> unit

(** Listening ports by observed drop count, hottest first. *)
val hottest_listeners : net_monitor -> (int * int) list

(** {2 Interrupt balance} *)

type irq_monitor = {
  mutable irq_depth : int;
  mutable irq_events : int;
  mutable irq_violations : violation list;
}

val irq_monitor : unit -> irq_monitor
val irq_callback : irq_monitor -> Ksim.Instrument.event -> unit

(** {2 Bundles} *)

type standard = {
  refcounts : refcount_monitor;
  spinlocks : spinlock_monitor;
  irqs : irq_monitor;
  contention : contention_monitor;
  net : net_monitor;
}

(** Register the standard monitors on a dispatcher. *)
val register_standard : Dispatcher.t -> standard

val all_violations : standard -> violation list
