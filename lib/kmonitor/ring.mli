(** Lock-free single-producer/single-consumer ring buffer (§3.3).

    "Because the ring buffer is lock-free, we can instrument code that is
    invoked during interrupt handlers without fear that the interrupt
    handler will block."  The producer only writes the tail index, the
    consumer only the head, both through OCaml 5 atomics, so producer and
    consumer may live on different domains (the test suite runs them so).

    On overflow the event is dropped and counted — an interrupt handler
    can never block. *)

type 'a t

(** [create ?name ?stats capacity] builds an empty ring.  When both
    [name] and [stats] are given the ring registers a
    [kmonitor.ring.<name>.dropped] counter and counts its overflow there
    too, so drops are attributable per ring in a registry dump.
    @raise Invalid_argument if capacity is not positive. *)
val create : ?name:string -> ?stats:Kstats.t -> int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** Producer side.  Returns [false] (and counts a drop) when full. *)
val push : 'a t -> 'a -> bool

(** Consumer side. *)
val pop : 'a t -> 'a option

(** Consume up to [max] entries — libkernevents' bulk-copy path. *)
val pop_batch : 'a t -> max:int -> 'a list

(** Producer-side overflow count. *)
val dropped : 'a t -> int
