(* Periodic kstats snapshots pushed into the event stream.  Each snapshot
   emits one [Instrument.Custom] event per registered metric, so the
   whole registry flows through the same log_event -> dispatcher -> ring
   path as lock and refcount events, and user space can reconstruct
   metric time series from the ring alone.

   Event encoding: [obj] is the metric's registration index, [value] is
   its scalar reading (counter value, gauge value, or histogram count),
   [file] carries the metric name, and [line] the snapshot sequence
   number — the fields a real kernel feed would pack into its record. *)

(* The kind code for snapshot events, in the Custom space. *)
let snapshot_kind = 9

type t = {
  kernel : Ksim.Kernel.t;
  interval : int;             (* cycles between periodic snapshots *)
  mutable last : int;         (* cycle time of the last snapshot *)
  mutable snapshots : int;
}

let create ?(interval = 1_000_000) kernel =
  Ksim.Instrument.register_custom_name snapshot_kind "kstats-snapshot";
  { kernel; interval; last = Ksim.Kernel.now kernel; snapshots = 0 }

let snapshots t = t.snapshots

let scalar_of_view = function
  | Kstats.Counter_v v -> v
  | Kstats.Gauge_v { value; _ } -> value
  | Kstats.Hist_v h -> h.Kstats.v_count

(* Emit one snapshot now, unconditionally. *)
let emit t =
  let stats = Ksim.Kernel.stats t.kernel in
  t.snapshots <- t.snapshots + 1;
  t.last <- Ksim.Kernel.now t.kernel;
  List.iteri
    (fun i name ->
      match Kstats.find stats name with
      | None -> ()
      | Some view ->
          Ksim.Instrument.emit ~obj:i ~value:(scalar_of_view view)
            ~kind:(Ksim.Instrument.Custom snapshot_kind)
            ~file:name ~line:t.snapshots ())
    (Kstats.names stats)

(* Called from wherever is convenient (timer tick, syscall exit, bench
   loop): emits only when at least [interval] cycles have passed. *)
let tick t =
  if Ksim.Kernel.now t.kernel - t.last >= t.interval then emit t

(* Is this event one of ours? Returns (metric name, scalar value). *)
let decode (ev : Ksim.Instrument.event) =
  match ev.Ksim.Instrument.kind with
  | Ksim.Instrument.Custom n when n = snapshot_kind ->
      Some (ev.Ksim.Instrument.file, ev.Ksim.Instrument.value)
  | _ -> None
