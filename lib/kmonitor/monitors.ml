(* In-kernel on-line monitors (§3.3/§3.5): verify higher-level kernel
   invariants from the event stream — "spinlocks that are locked are
   later unlocked, reference counters are incremented and decremented
   symmetrically, interrupts that are disabled are later re-enabled". *)

type violation = {
  what : string;
  obj : int;
  file : string;
  line : int;
  time_seen : int;   (* event count when flagged *)
}

let pp_violation ppf v =
  Fmt.pf ppf "%s (obj=%d at %s:%d)" v.what v.obj v.file v.line

(* --- reference counter monitor ----------------------------------------- *)

type refcount_monitor = {
  rc_state : (int, int) Hashtbl.t;   (* obj -> last observed count *)
  mutable rc_events : int;
  mutable rc_violations : violation list;
}

let refcount_monitor () =
  { rc_state = Hashtbl.create 128; rc_events = 0; rc_violations = [] }

let refcount_callback m (ev : Ksim.Instrument.event) =
  match ev.Ksim.Instrument.kind with
  | Ksim.Instrument.Ref_inc | Ksim.Instrument.Ref_dec ->
      m.rc_events <- m.rc_events + 1;
      if ev.Ksim.Instrument.value < 0 then
        m.rc_violations <-
          {
            what = "reference count went negative";
            obj = ev.Ksim.Instrument.obj;
            file = ev.Ksim.Instrument.file;
            line = ev.Ksim.Instrument.line;
            time_seen = m.rc_events;
          }
          :: m.rc_violations;
      Hashtbl.replace m.rc_state ev.Ksim.Instrument.obj ev.Ksim.Instrument.value
  | _ -> ()

(* Objects whose counts never returned to their resting value: leak
   candidates, reported at teardown. *)
let refcount_leaks m ~resting =
  Hashtbl.fold
    (fun obj count acc -> if count > resting then (obj, count) :: acc else acc)
    m.rc_state []

(* --- spinlock monitor --------------------------------------------------- *)

type spinlock_monitor = {
  sl_held : (int, string * int) Hashtbl.t; (* obj -> acquire site *)
  mutable sl_events : int;
  mutable sl_acquisitions : int;
  mutable sl_violations : violation list;
}

let spinlock_monitor () =
  { sl_held = Hashtbl.create 32; sl_events = 0; sl_acquisitions = 0;
    sl_violations = [] }

let spinlock_callback m (ev : Ksim.Instrument.event) =
  match ev.Ksim.Instrument.kind with
  | Ksim.Instrument.Lock ->
      m.sl_events <- m.sl_events + 1;
      m.sl_acquisitions <- m.sl_acquisitions + 1;
      if Hashtbl.mem m.sl_held ev.Ksim.Instrument.obj then
        m.sl_violations <-
          {
            what = "lock acquired while already held";
            obj = ev.Ksim.Instrument.obj;
            file = ev.Ksim.Instrument.file;
            line = ev.Ksim.Instrument.line;
            time_seen = m.sl_events;
          }
          :: m.sl_violations;
      Hashtbl.replace m.sl_held ev.Ksim.Instrument.obj
        (ev.Ksim.Instrument.file, ev.Ksim.Instrument.line)
  | Ksim.Instrument.Unlock ->
      m.sl_events <- m.sl_events + 1;
      if not (Hashtbl.mem m.sl_held ev.Ksim.Instrument.obj) then
        m.sl_violations <-
          {
            what = "unlock of lock not held";
            obj = ev.Ksim.Instrument.obj;
            file = ev.Ksim.Instrument.file;
            line = ev.Ksim.Instrument.line;
            time_seen = m.sl_events;
          }
          :: m.sl_violations
      else Hashtbl.remove m.sl_held ev.Ksim.Instrument.obj
  | _ -> ()

let spinlocks_still_held m =
  Hashtbl.fold (fun obj site acc -> (obj, site) :: acc) m.sl_held []

(* --- lock contention monitor -------------------------------------------- *)

(* Watches [Contended] events (emitted when an acquirer found the lock
   held on another CPU).  This is not an invariant check but the paper's
   performance-monitoring use of the same stream: find the hot locks.
   The event's value carries the spin cycles charged. *)

type contention_monitor = {
  cn_state : (int, int * int) Hashtbl.t;  (* obj -> (contended, spin cycles) *)
  mutable cn_events : int;
  mutable cn_spin_cycles : int;
}

let contention_monitor () =
  { cn_state = Hashtbl.create 32; cn_events = 0; cn_spin_cycles = 0 }

let contention_callback m (ev : Ksim.Instrument.event) =
  match ev.Ksim.Instrument.kind with
  | Ksim.Instrument.Contended ->
      m.cn_events <- m.cn_events + 1;
      m.cn_spin_cycles <- m.cn_spin_cycles + ev.Ksim.Instrument.value;
      let hits, spin =
        match Hashtbl.find_opt m.cn_state ev.Ksim.Instrument.obj with
        | Some (h, s) -> (h, s)
        | None -> (0, 0)
      in
      Hashtbl.replace m.cn_state ev.Ksim.Instrument.obj
        (hits + 1, spin + ev.Ksim.Instrument.value)
  | _ -> ()

(* Locks by contended-acquisition count, hottest first. *)
let hottest_locks m =
  Hashtbl.fold (fun obj (h, s) acc -> (obj, h, s) :: acc) m.cn_state []
  |> List.sort (fun (_, h1, _) (_, h2, _) -> compare h2 h1)

(* --- network backpressure monitor --------------------------------------- *)

(* Watches knet's backlog-overflow events (Custom kind 10, registered as
   "net-backlog-drop"; the numeric value is a cross-library convention
   like Stats_feed's snapshot kind 9).  The event's obj is the listening
   port, its value the listener's running drop count — so the monitor can
   name the hottest listening socket without a kernel-side scan. *)

let net_backlog_drop_kind = 10

type net_monitor = {
  nm_state : (int, int) Hashtbl.t;   (* port -> drops observed *)
  mutable nm_events : int;
}

let net_monitor () = { nm_state = Hashtbl.create 8; nm_events = 0 }

let net_callback m (ev : Ksim.Instrument.event) =
  match ev.Ksim.Instrument.kind with
  | Ksim.Instrument.Custom k when k = net_backlog_drop_kind ->
      m.nm_events <- m.nm_events + 1;
      Hashtbl.replace m.nm_state ev.Ksim.Instrument.obj ev.Ksim.Instrument.value
  | _ -> ()

(* Listening ports by drop count, hottest first. *)
let hottest_listeners m =
  Hashtbl.fold (fun port drops acc -> (port, drops) :: acc) m.nm_state []
  |> List.sort (fun (p1, d1) (p2, d2) ->
         if d1 <> d2 then compare d2 d1 else compare p1 p2)

(* --- interrupt balance monitor ------------------------------------------ *)

type irq_monitor = {
  mutable irq_depth : int;
  mutable irq_events : int;
  mutable irq_violations : violation list;
}

let irq_monitor () = { irq_depth = 0; irq_events = 0; irq_violations = [] }

let irq_callback m (ev : Ksim.Instrument.event) =
  match ev.Ksim.Instrument.kind with
  | Ksim.Instrument.Irq_disable ->
      m.irq_events <- m.irq_events + 1;
      m.irq_depth <- m.irq_depth + 1
  | Ksim.Instrument.Irq_enable ->
      m.irq_events <- m.irq_events + 1;
      if m.irq_depth = 0 then
        m.irq_violations <-
          {
            what = "interrupts enabled while not disabled";
            obj = ev.Ksim.Instrument.obj;
            file = ev.Ksim.Instrument.file;
            line = ev.Ksim.Instrument.line;
            time_seen = m.irq_events;
          }
          :: m.irq_violations
      else m.irq_depth <- m.irq_depth - 1
  | _ -> ()

(* Convenience: register the standard monitors on a dispatcher. *)
type standard = {
  refcounts : refcount_monitor;
  spinlocks : spinlock_monitor;
  irqs : irq_monitor;
  contention : contention_monitor;
  net : net_monitor;
}

let register_standard dispatcher =
  let refcounts = refcount_monitor () in
  let spinlocks = spinlock_monitor () in
  let irqs = irq_monitor () in
  let contention = contention_monitor () in
  let net = net_monitor () in
  Dispatcher.register dispatcher ~name:"refcounts" (refcount_callback refcounts);
  Dispatcher.register dispatcher ~name:"spinlocks" (spinlock_callback spinlocks);
  Dispatcher.register dispatcher ~name:"irqs" (irq_callback irqs);
  Dispatcher.register dispatcher ~name:"contention"
    (contention_callback contention);
  Dispatcher.register dispatcher ~name:"net" (net_callback net);
  { refcounts; spinlocks; irqs; contention; net }

let all_violations s =
  s.refcounts.rc_violations @ s.spinlocks.sl_violations @ s.irqs.irq_violations
