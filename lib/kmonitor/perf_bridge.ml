(* Bridge from the kperf tracer into the Figure-1 monitoring pipeline:
   span begin/end events are mirrored as Instrument.Custom events, so a
   user-space monitor polling the character device sees trace activity
   interleaved with the lock/irq/syscall events it already consumes —
   without the tracer itself depending on kmonitor (kperf sits below
   ksim in the library graph; the mirroring runs through kperf's sink
   hook instead).

   Instants are deliberately not mirrored: they exist for flamegraph
   annotation and would double every context switch in the event
   stream.  Each mirrored event also dispatches through log_event, so
   the usual event_dispatch/ring_push costs apply — the bridge is for
   watching the tracer, not for free. *)

let span_begin_kind = 11
let span_end_kind = 12

let () =
  Ksim.Instrument.register_custom_name span_begin_kind "kperf-span-begin";
  Ksim.Instrument.register_custom_name span_end_kind "kperf-span-end"

type t = {
  perf : Kperf.t;
  kstats : Kstats.t;
  st_mirrored : Kstats.counter;
  mutable mirrored : int;
  mutable attached : bool;
}

let create kernel =
  let kstats = Ksim.Kernel.stats kernel in
  {
    perf = Ksim.Kernel.perf kernel;
    kstats;
    st_mirrored = Kstats.counter kstats "kmonitor.perf_bridge.mirrored";
    mirrored = 0;
    attached = false;
  }

let mirror t (ev : Kperf.event) =
  let kind =
    match ev.Kperf.ev_kind with
    | Kperf.Begin | Kperf.Async_begin -> Some span_begin_kind
    | Kperf.End | Kperf.Async_end -> Some span_end_kind
    | Kperf.Instant -> None
  in
  match kind with
  | None -> ()
  | Some k ->
      t.mirrored <- t.mirrored + 1;
      Kstats.incr t.kstats t.st_mirrored;
      Ksim.Instrument.emit ~pid:ev.Kperf.ev_pid ~obj:ev.Kperf.ev_id
        ~value:ev.Kperf.ev_arg ~kind:(Ksim.Instrument.Custom k)
        ~file:(ev.Kperf.ev_cat ^ ":" ^ ev.Kperf.ev_name)
        ~line:ev.Kperf.ev_cpu ()

let attach t =
  Kperf.set_sink t.perf (Some (mirror t));
  t.attached <- true

let detach t =
  if t.attached then begin
    Kperf.set_sink t.perf None;
    t.attached <- false
  end

let mirrored t = t.mirrored
