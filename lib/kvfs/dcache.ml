(* Dentry cache: (parent inode, name) -> inode.

   In the compatibility configuration (shards = 1, the default) every
   operation takes the one global dcache_lock — path resolution hits it
   once per component and namespace operations hit it too, which is how
   E6 reproduces the paper's ~8,805 dcache_lock acquisitions per second
   under PostMark.

   With shards > 1 the table is split into per-shard buckets, each with
   its own lock, and lookups take a lockless fast path: a per-shard
   seqcount is made odd while a writer is inside, so a reader that sees
   the same even value before and after its probe knows the probe was
   consistent and never touches the lock.  Writers still take the shard
   lock.  This is the fix E13 measures against the global-lock mode. *)

type shard = {
  lock : Ksim.Spinlock.t;
  entries : (int * string, int) Hashtbl.t;
  mutable seq : int;  (* seqcount: odd while a writer is inside *)
}

type t = {
  shards : shard array;
  kstats : Kstats.t;
  perf : Kperf.t option;
  st_hits : Kstats.counter;
  st_misses : Kstats.counter;
  st_invalidations : Kstats.counter;
}

let create ?(stats = Kstats.create ~enabled:true ()) ?ctx ?perf ?(shards = 1)
    () =
  if shards < 1 then invalid_arg "Dcache.create: shards";
  let mk_shard _ =
    {
      (* all shard locks share the name, so their lock.dcache_lock.*
         kstats aggregate into the same counters *)
      lock = Ksim.Spinlock.create ?ctx ?perf "dcache_lock";
      entries = Hashtbl.create (max 64 (4096 / shards));
      seq = 0;
    }
  in
  {
    shards = Array.init shards mk_shard;
    kstats = stats;
    perf;
    st_hits = Kstats.counter stats "dcache.hits";
    st_misses = Kstats.counter stats "dcache.misses";
    st_invalidations = Kstats.counter stats "dcache.invalidations";
  }

let nshards t = Array.length t.shards

let lock t = t.shards.(0).lock

let shard_of t ~dir ~name =
  let n = Array.length t.shards in
  if n = 1 then t.shards.(0)
  else t.shards.(Hashtbl.hash (dir, name) mod n)

let record_result t found =
  if found then Kstats.incr t.kstats t.st_hits
  else begin
    Kstats.incr t.kstats t.st_misses;
    (* misses are the interesting rarity in a flamegraph: each one means
       a directory scan follows *)
    match t.perf with
    | Some perf -> Kperf.instant perf ~cat:"vfs" ~name:"dcache.miss" ()
    | None -> ()
  end

let locked_lookup ?pid t s ~dir ~name =
  Ksim.Spinlock.with_lock ~file:__FILE__ ~line:__LINE__ ?pid s.lock (fun () ->
      let r = Hashtbl.find_opt s.entries (dir, name) in
      record_result t (r <> None);
      r)

let lookup ?pid t ~dir ~name =
  let s = shard_of t ~dir ~name in
  if Array.length t.shards = 1 then locked_lookup ?pid t s ~dir ~name
  else begin
    (* seqcount fast path: a consistent probe needs the same even seq
       before and after.  Retry once on interference, then fall back to
       the lock (the slow path of a real seqlock reader). *)
    let rec fast attempts =
      if attempts = 0 then locked_lookup ?pid t s ~dir ~name
      else
        let s1 = s.seq in
        if s1 land 1 = 1 then fast (attempts - 1)
        else
          let r = Hashtbl.find_opt s.entries (dir, name) in
          if s.seq = s1 then begin
            record_result t (r <> None);
            r
          end
          else fast (attempts - 1)
    in
    fast 2
  end

let write_shard ?pid s f =
  Ksim.Spinlock.with_lock ~file:__FILE__ ~line:__LINE__ ?pid s.lock (fun () ->
      s.seq <- s.seq + 1;
      Fun.protect f ~finally:(fun () -> s.seq <- s.seq + 1))

let insert ?pid t ~dir ~name ~ino =
  let s = shard_of t ~dir ~name in
  write_shard ?pid s (fun () -> Hashtbl.replace s.entries (dir, name) ino)

let invalidate ?pid t ~dir ~name =
  let s = shard_of t ~dir ~name in
  write_shard ?pid s (fun () ->
      Kstats.incr t.kstats t.st_invalidations;
      Hashtbl.remove s.entries (dir, name))

let clear ?pid t =
  Array.iter
    (fun s -> write_shard ?pid s (fun () -> Hashtbl.reset s.entries))
    t.shards

let acquisitions t =
  Array.fold_left (fun acc s -> acc + Ksim.Spinlock.acquisitions s.lock) 0
    t.shards

let contended t =
  Array.fold_left (fun acc s -> acc + Ksim.Spinlock.contended s.lock) 0
    t.shards

let spin_cycles t =
  Array.fold_left (fun acc s -> acc + Ksim.Spinlock.spin_cycles s.lock) 0
    t.shards

type stats = { hits : int; misses : int; invalidations : int; lock_acquisitions : int }

(* Derived entirely from the kstats counters (plus the locks), so the
   two reporting paths can never disagree. *)
let stats (t : t) =
  {
    hits = Kstats.counter_value t.st_hits;
    misses = Kstats.counter_value t.st_misses;
    invalidations = Kstats.counter_value t.st_invalidations;
    lock_acquisitions = acquisitions t;
  }
