(* Dentry cache: (parent inode, name) -> inode, guarded by the global
   dcache_lock.  Path resolution hits this lock once per component and
   namespace operations (create/unlink/rename) hit it too, which is how
   E6 reproduces the paper's ~8,805 dcache_lock acquisitions per second
   under PostMark. *)

type t = {
  lock : Ksim.Spinlock.t;
  entries : (int * string, int) Hashtbl.t;
  kstats : Kstats.t;
  st_hits : Kstats.counter;
  st_misses : Kstats.counter;
  st_invalidations : Kstats.counter;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ?(stats = Kstats.create ()) () =
  {
    lock = Ksim.Spinlock.create "dcache_lock";
    entries = Hashtbl.create 4096;
    kstats = stats;
    st_hits = Kstats.counter stats "dcache.hits";
    st_misses = Kstats.counter stats "dcache.misses";
    st_invalidations = Kstats.counter stats "dcache.invalidations";
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let lock t = t.lock

let lookup t ~dir ~name =
  Ksim.Spinlock.with_lock ~file:"dcache.ml" ~line:28 t.lock (fun () ->
      match Hashtbl.find_opt t.entries (dir, name) with
      | Some ino ->
          t.hits <- t.hits + 1;
          Kstats.incr t.kstats t.st_hits;
          Some ino
      | None ->
          t.misses <- t.misses + 1;
          Kstats.incr t.kstats t.st_misses;
          None)

let insert t ~dir ~name ~ino =
  Ksim.Spinlock.with_lock ~file:"dcache.ml" ~line:38 t.lock (fun () ->
      Hashtbl.replace t.entries (dir, name) ino)

let invalidate t ~dir ~name =
  Ksim.Spinlock.with_lock ~file:"dcache.ml" ~line:42 t.lock (fun () ->
      t.invalidations <- t.invalidations + 1;
      Kstats.incr t.kstats t.st_invalidations;
      Hashtbl.remove t.entries (dir, name))

let clear t =
  Ksim.Spinlock.with_lock ~file:"dcache.ml" ~line:47 t.lock (fun () ->
      Hashtbl.reset t.entries)

let acquisitions t = Ksim.Spinlock.acquisitions t.lock

type stats = { hits : int; misses : int; invalidations : int; lock_acquisitions : int }

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    lock_acquisitions = acquisitions t;
  }
