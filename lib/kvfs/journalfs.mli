(** Journalfs: the Reiserfs stand-in for experiment E7.

    A journaling filesystem layered on the memfs engine whose CPU-bound
    hot paths — journal-header checksumming, directory-entry scanning and
    block-bitmap search — are mini-C routines run through an embedded
    interpreter.  "Compiling the module with KGCC" means passing that
    mini-C source through the KGCC instrumentation pass; the instrumented
    code executes more work per byte, reproducing the paper's system-time
    blow-up under metadata-heavy workloads. *)

(** The module's mini-C source (exported for the E8 compile-statistics
    corpus). *)
val source : string

type t

(** Outcome of a replay-on-mount pass over the write-ahead log. *)
type recover_info = {
  rec_scanned : int;      (** WAL records read from the image *)
  rec_replayed : int;     (** committed intents applied *)
  rec_skipped : int;      (** intents already applied (idempotent re-replay) *)
  rec_aborted : int;      (** intents whose operation failed (abort record) *)
  rec_torn : int;         (** trailing intents with neither verdict: discarded *)
  rec_errors : string list; (** malformed records / replay failures *)
}

(** [create ?transform ?attach ?data_journal kernel]:
    [transform] is the "compiler" — identity models GCC, the KGCC pass
    models KGCC; [attach] runs on the embedded interpreter before the
    module loads (KGCC hooks its runtime there so it sees every
    allocation); [data_journal] additionally checksums data heads
    (most journaling filesystems do metadata-only, the default).

    With [durable], every mutating operation is bracketed by
    write-ahead records in the device image (intent, then commit on
    [Ok] / abort on [Error]) through {!Block_dev.write_block_data} — the
    only writes that survive {!Block_dev.Power_loss}, and the writes
    the [blockdev.crash_point] sweep probes.  A durable mount with an
    [image] replays the WAL before serving anything (see {!replay}).
    Without [durable] the journal is the legacy headers-only model:
    byte-for-byte the behavior of previous revisions. *)
val create :
  ?transform:(Minic.Ast.program -> Minic.Ast.program) ->
  ?attach:(Minic.Interp.t -> unit) ->
  ?data_journal:bool ->
  ?durable:bool ->
  ?image:Block_dev.image ->
  ?interp_base_vpn:int ->
  ?interp_pages:int ->
  Ksim.Kernel.t ->
  t

(** The embedded interpreter running the module's hot paths. *)
val interp : t -> Minic.Interp.t

(** The operations vector (pass to {!Vfs.create}). *)
val ops : t -> Vtypes.ops

type stats = {
  journal_records : int;
  hot_calls : int;       (** mini-C hot-path invocations *)
  interp_steps : int;
  checksum_acc : int;    (** running checksum (keeps the work honest) *)
}

val stats : t -> stats

(** The memfs engine underneath (direct access for recovery checks). *)
val inner : t -> Memfs.t

(** The block device underneath (its {!Block_dev.image} is what a
    reboot starts from). *)
val dev : t -> Block_dev.t

val durable : t -> bool

(** Replay the write-ahead log against the inner filesystem: applies
    committed intents in order, skips aborted ones, discards a torn
    tail.  Idempotent — intents already applied (tracked by sequence
    number) are skipped, so replaying twice equals replaying once.
    Runs automatically on a durable mount. *)
val replay : t -> recover_info

(** The outcome of the most recent {!replay}, if any ran. *)
val last_recover : t -> recover_info option

(** {!Memfs.fsck} on the inner filesystem. *)
val fsck : t -> string list
