(* Journalfs: the Reiserfs stand-in for experiment E7.

   A journaling filesystem layered on the memfs engine.  Its CPU-bound
   hot paths — journal checksumming, directory-entry scanning, and block
   bitmap search — are implemented in mini-C and executed through the
   embedded interpreter.  Compiling the module "with KGCC" means passing
   the module's mini-C source through the KGCC instrumentation pass
   (supplied as [transform]); the instrumented code executes more
   operations per byte, reproducing the paper's system-time blow-up under
   metadata-heavy workloads. *)

(* The module's mini-C source.  These routines deliberately have the
   pointer-chasing, byte-loop style of real filesystem code: every loop
   iteration dereferences through a pointer, which is exactly what BCC/
   KGCC instruments. *)
let source =
  {|
int jfs_checksum(char *buf, int len) {
  int sum = 0;
  int i;
  for (i = 0; i < len; i++) {
    sum = sum * 31 + buf[i];
    sum = sum & 16777215;
  }
  return sum;
}

int jfs_scan_dir(char *entries, int nentries, int entry_size, char *target) {
  int i;
  for (i = 0; i < nentries; i++) {
    char *e = entries + i * entry_size;
    int j = 0;
    while (e[j] != 0 && target[j] != 0 && e[j] == target[j]) j++;
    if (e[j] == 0 && target[j] == 0) return i;
  }
  return -1;
}

int jfs_bitmap_find(char *bitmap, int nbytes) {
  int i;
  for (i = 0; i < nbytes; i++) {
    if (bitmap[i] != 255) {
      int b = 0;
      int v = bitmap[i];
      while (b < 8) {
        if ((v & (1 << b)) == 0) {
          bitmap[i] = v | (1 << b);
          return i * 8 + b;
        }
        b++;
      }
    }
  }
  return -1;
}
|}

(* Outcome of a replay-on-mount pass over the write-ahead log. *)
type recover_info = {
  rec_scanned : int;      (* WAL records read from the image *)
  rec_replayed : int;     (* committed intents applied *)
  rec_skipped : int;      (* intents already applied (idempotent re-replay) *)
  rec_aborted : int;      (* intents whose operation failed (abort record) *)
  rec_torn : int;         (* trailing intents with neither verdict: discarded *)
  rec_errors : string list; (* malformed records / replay failures *)
}

type t = {
  kernel : Ksim.Kernel.t;
  inner : Memfs.t;
  interp : Minic.Interp.t;
  work_buf : int;                (* interp heap buffer for data blocks *)
  work_buf_size : int;
  name_buf : int;                (* interp heap buffer for names *)
  bitmap_buf : int;
  bitmap_bytes : int;
  data_journal : bool;           (* checksum data heads too (non-default) *)
  durable : bool;                (* write-ahead log in the device image *)
  mutable journal_seq : int;
  mutable checksum_acc : int;    (* running, so the work can't be elided *)
  mutable hot_calls : int;
  mutable op_seq : int;          (* write-ahead intent numbering *)
  mutable j_cursor : int;        (* next free WAL slot (relative to base) *)
  mutable applied_seq : int;     (* highest intent applied to the inner fs *)
  mutable last_recover : recover_info option;
}

(* --- Write-ahead log (durable mode) ------------------------------------ *)

(* WAL records live in the device image from this slot up, one record
   per slot (spilling into following slots when the payload outgrows a
   block).  Each mutating operation writes an intent record carrying
   enough to redo it, applies the operation, then writes a commit (Ok)
   or abort (Error) verdict.  Replay applies committed intents only, in
   order; a trailing intent with no verdict is the torn tail a power
   loss legitimately produces, and is discarded. *)
let journal_base = 1_000_000

type jop =
  | J_create of { dir : int; name : string; kind : Vtypes.kind }
  | J_unlink of { dir : int; name : string }
  | J_write of { ino : int; off : int; len : int; data : string option }
  | J_truncate of { ino : int; size : int }
  | J_rename of { src_dir : int; src : string; dst_dir : int; dst : string }

(* Length-prefixed field encoding, so names and data may contain any
   byte.  Ints are decimal followed by ':'. *)
let encode_op op =
  let b = Buffer.create 64 in
  let int n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ':'
  in
  let str s =
    int (String.length s);
    Buffer.add_string b s
  in
  (match op with
  | J_create { dir; name; kind } ->
      Buffer.add_char b 'C';
      int dir;
      int (match kind with Vtypes.Regular -> 0 | Vtypes.Directory -> 1);
      str name
  | J_unlink { dir; name } ->
      Buffer.add_char b 'U';
      int dir;
      str name
  | J_write { ino; off; len; data } ->
      Buffer.add_char b 'W';
      int ino;
      int off;
      int len;
      (match data with
      | None -> int 0
      | Some d ->
          int 1;
          str d)
  | J_truncate { ino; size } ->
      Buffer.add_char b 'T';
      int ino;
      int size
  | J_rename { src_dir; src; dst_dir; dst } ->
      Buffer.add_char b 'R';
      int src_dir;
      str src;
      int dst_dir;
      str dst);
  Buffer.contents b

exception Bad_record of string

let decode_op s =
  let pos = ref 1 in
  let int () =
    match String.index_from_opt s !pos ':' with
    | None -> raise (Bad_record s)
    | Some j ->
        let v =
          try int_of_string (String.sub s !pos (j - !pos))
          with _ -> raise (Bad_record s)
        in
        pos := j + 1;
        v
  in
  let str () =
    let n = int () in
    if n < 0 || !pos + n > String.length s then raise (Bad_record s);
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  if String.length s < 2 then raise (Bad_record s);
  match s.[0] with
  | 'C' ->
      let dir = int () in
      let kind = if int () = 1 then Vtypes.Directory else Vtypes.Regular in
      J_create { dir; name = str (); kind }
  | 'U' ->
      let dir = int () in
      J_unlink { dir; name = str () }
  | 'W' ->
      let ino = int () in
      let off = int () in
      let len = int () in
      let data = if int () = 1 then Some (str ()) else None in
      J_write { ino; off; len; data }
  | 'T' ->
      let ino = int () in
      J_truncate { ino; size = int () }
  | 'R' ->
      let src_dir = int () in
      let src = str () in
      let dst_dir = int () in
      J_rename { src_dir; src; dst_dir; dst = str () }
  | _ -> raise (Bad_record s)

(* Redo one committed intent against the inner filesystem.  A
   metadata-only journal replays writes as zeros of the right length:
   extents and sizes are recovered, contents are not — the observable
   difference [data_journal] exists to close. *)
let apply_op t op =
  match op with
  | J_create { dir; name; kind } ->
      Result.map
        (fun (_ : int) -> ())
        (Memfs.create_node t.inner ~dir ~name kind)
  | J_unlink { dir; name } -> Memfs.unlink t.inner ~dir ~name
  | J_write { ino; off; len; data } ->
      let data =
        match data with
        | Some d -> Bytes.of_string d
        | None -> Bytes.make len '\000'
      in
      Result.map (fun (_ : int) -> ()) (Memfs.write t.inner ~ino ~off ~data)
  | J_truncate { ino; size } -> Memfs.truncate t.inner ~ino ~size
  | J_rename { src_dir; src; dst_dir; dst } ->
      Memfs.rename t.inner ~src_dir ~src ~dst_dir ~dst

(* Replay the WAL against the inner filesystem.  Idempotent: intents at
   or below [applied_seq] are skipped, so replaying twice equals
   replaying once.  Tolerant of a torn tail: an intent with no commit or
   abort record is counted and discarded, never applied. *)
let replay t =
  let dev = Memfs.dev t.inner in
  let bs = Memfs.block_size t.inner in
  let rec scan slot acc =
    match Block_dev.read_block_data dev (journal_base + slot) with
    | None -> (slot, List.rev acc)
    | Some s -> scan (slot + 1 + ((max 1 (String.length s) - 1) / bs)) (s :: acc)
  in
  let cursor, raw = scan 0 [] in
  t.j_cursor <- max t.j_cursor cursor;
  t.journal_seq <- max t.journal_seq (List.length raw);
  let errors = ref [] in
  let parse s =
    if String.length s < 2 || s.[1] <> ':' then None
    else
      let rest = String.sub s 2 (String.length s - 2) in
      match s.[0] with
      | 'I' -> (
          match String.index_opt rest ':' with
          | None -> None
          | Some j -> (
              match int_of_string_opt (String.sub rest 0 j) with
              | None -> None
              | Some seq ->
                  Some
                    (`Intent
                       ( seq,
                         String.sub rest (j + 1) (String.length rest - j - 1) ))))
      | 'K' -> Option.map (fun s -> `Commit s) (int_of_string_opt rest)
      | 'A' -> Option.map (fun s -> `Abort s) (int_of_string_opt rest)
      | _ -> None
  in
  let intents = ref [] in
  let committed = Hashtbl.create 64 in
  let aborted = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match parse s with
      | Some (`Intent (seq, body)) -> intents := (seq, body) :: !intents
      | Some (`Commit seq) -> Hashtbl.replace committed seq ()
      | Some (`Abort seq) -> Hashtbl.replace aborted seq ()
      | None -> errors := Printf.sprintf "malformed record %S" s :: !errors)
    raw;
  let intents = List.rev !intents in
  t.op_seq <- List.fold_left (fun m (s, _) -> max m s) t.op_seq intents;
  let replayed = ref 0 and skipped = ref 0 and torn = ref 0 and ab = ref 0 in
  List.iter
    (fun (seq, body) ->
      if Hashtbl.mem aborted seq then incr ab
      else if not (Hashtbl.mem committed seq) then incr torn
      else if seq <= t.applied_seq then incr skipped
      else begin
        (match decode_op body with
        | exception Bad_record r ->
            errors :=
              Printf.sprintf "intent %d undecodable: %S" seq r :: !errors
        | op -> (
            match apply_op t op with
            | Ok () -> incr replayed
            | Error e ->
                errors :=
                  Printf.sprintf "intent %d replay failed: %s" seq
                    (Vtypes.errno_to_string e)
                  :: !errors));
        t.applied_seq <- max t.applied_seq seq
      end)
    intents;
  let info =
    {
      rec_scanned = List.length raw;
      rec_replayed = !replayed;
      rec_skipped = !skipped;
      rec_aborted = !ab;
      rec_torn = !torn;
      rec_errors = List.rev !errors;
    }
  in
  t.last_recover <- Some info;
  info

(* [transform] is the "compiler": identity models GCC, the KGCC
   instrumentation pass models KGCC.  [interp_pages] bounds the module's
   working memory. *)
(* [attach] runs right after the interpreter is created and before the
   module's code is loaded or any buffer allocated — KGCC hooks its
   runtime (object-map observer + check externs) here so that it sees
   every allocation. *)
let create ?(transform = fun (p : Minic.Ast.program) -> p)
    ?(attach = fun (_ : Minic.Interp.t) -> ())
    ?(data_journal = false) ?(durable = false) ?image
    ?(interp_base_vpn = 0x60000) ?(interp_pages = 256) kernel =
  let inner = Memfs.create ?image kernel in
  let interp =
    Minic.Interp.create
      ~space:(Ksim.Kernel.kspace kernel)
      ~clock:(Ksim.Kernel.clock kernel)
      ~cost:(Ksim.Kernel.cost kernel)
      ~base_vpn:interp_base_vpn ~pages:interp_pages
  in
  attach interp;
  let program = Minic.Parser.parse_program ~file:"journalfs.c" source in
  ignore (Minic.Interp.load_program interp (transform program));
  let work_buf_size = 4096 in
  let work_buf = Minic.Interp.alloc_buffer interp ~name:"jfs_work" work_buf_size in
  let name_buf = Minic.Interp.alloc_buffer interp ~name:"jfs_name" 256 in
  let bitmap_bytes = 64 in
  let bitmap_buf = Minic.Interp.alloc_buffer interp ~name:"jfs_bitmap" bitmap_bytes in
  {
    kernel;
    inner;
    interp;
    work_buf;
    work_buf_size;
    name_buf;
    bitmap_buf;
    bitmap_bytes;
    data_journal;
    durable;
    journal_seq = 0;
    checksum_acc = 0;
    hot_calls = 0;
    op_seq = 0;
    j_cursor = 0;
    applied_seq = 0;
    last_recover = None;
  }
  |> fun t ->
  (* replay-on-mount: a durable journalfs rebuilds the inner filesystem
     from whatever WAL the image holds before serving anything *)
  if durable then ignore (replay t);
  t

let interp t = t.interp

(* Run one of the module's mini-C hot paths. *)
let hot t name args =
  t.hot_calls <- t.hot_calls + 1;
  Minic.Interp.run t.interp ~args name

let space t = Minic.Interp.space t.interp

let stage_bytes t ~addr data =
  Ksim.Address_space.write_bytes ~pc:"journalfs.ml:stage" (space t) ~addr data

let stage_string t ~addr s =
  let s = if String.length s > 255 then String.sub s 0 255 else s in
  stage_bytes t ~addr (Bytes.of_string (s ^ "\000"))

(* Journal a metadata record: stage it into the work buffer, checksum it
   in mini-C, then push the journal block to disk. *)
let journal_record t ~kind ~payload =
  t.journal_seq <- t.journal_seq + 1;
  let record =
    Printf.sprintf "J%06d:%s:%s" t.journal_seq kind payload
  in
  (* the journal header carries a 16-byte checksummed header; the body is
     DMA'd without CPU involvement *)
  let len = min (min (String.length record) 16) t.work_buf_size in
  stage_bytes t ~addr:t.work_buf (Bytes.of_string (String.sub record 0 len));
  let sum = hot t "jfs_checksum" [ t.work_buf; len ] in
  t.checksum_acc <- (t.checksum_acc + sum) land 0xffffff;
  Block_dev.write_block (Memfs.dev t.inner) (1000000 + (t.journal_seq mod 128))

(* Checksum the head of file data flowing through write: journalfs, like
   most journaling filesystems, journals metadata plus a short data
   header rather than full data blocks. *)
let journal_data t data =
  let len = min (Bytes.length data) 128 in
  if len > 0 then begin
    stage_bytes t ~addr:t.work_buf (Bytes.sub data 0 len);
    let sum = hot t "jfs_checksum" [ t.work_buf; len ] in
    t.checksum_acc <- (t.checksum_acc + sum) land 0xffffff
  end

(* Durable-mode journal write: same mini-C head checksum as the legacy
   path, but the record lands in the device image via the durable write
   path — the only writes that survive a power loss, and the writes the
   [blockdev.crash_point] sweep probes. *)
let write_wal t s =
  t.journal_seq <- t.journal_seq + 1;
  let len = min (min (String.length s) 16) t.work_buf_size in
  stage_bytes t ~addr:t.work_buf (Bytes.of_string (String.sub s 0 len));
  let sum = hot t "jfs_checksum" [ t.work_buf; len ] in
  t.checksum_acc <- (t.checksum_acc + sum) land 0xffffff;
  let bs = Memfs.block_size t.inner in
  let slot = t.j_cursor in
  t.j_cursor <- t.j_cursor + 1 + ((max 1 (String.length s) - 1) / bs);
  Block_dev.write_block_data (Memfs.dev t.inner) (journal_base + slot) s

(* Write-ahead wrapper: intent, operation, verdict. *)
let journaled : type a.
    t -> jop -> (unit -> (a, Vtypes.errno) result) -> (a, Vtypes.errno) result
    =
 fun t op thunk ->
  t.op_seq <- t.op_seq + 1;
  let seq = t.op_seq in
  write_wal t (Printf.sprintf "I:%d:%s" seq (encode_op op));
  let r = thunk () in
  (match r with
  | Ok _ ->
      write_wal t (Printf.sprintf "K:%d" seq);
      t.applied_seq <- max t.applied_seq seq
  | Error _ -> write_wal t (Printf.sprintf "A:%d" seq));
  r

(* Directory lookup via the mini-C entry scanner: stage the names of the
   directory into the work buffer as fixed-size records. *)
let scan_lookup t ~dir name =
  match Memfs.readdir t.inner ~dir with
  | Error _ -> ()
  | Ok entries ->
      let entry_size = 32 in
      let max_entries = t.work_buf_size / entry_size in
      let entries =
        if List.length entries > max_entries then
          List.filteri (fun i _ -> i < max_entries) entries
        else entries
      in
      List.iteri
        (fun i d ->
          let n = d.Vtypes.d_name in
          let n =
            if String.length n >= entry_size then String.sub n 0 (entry_size - 1)
            else n
          in
          stage_string t ~addr:(t.work_buf + (i * entry_size)) n)
        entries;
      stage_string t ~addr:t.name_buf name;
      ignore
        (hot t "jfs_scan_dir"
           [ t.work_buf; List.length entries; entry_size; t.name_buf ])

let alloc_block t =
  let bit = hot t "jfs_bitmap_find" [ t.bitmap_buf; t.bitmap_bytes ] in
  if bit < 0 then begin
    (* block group full: move to a fresh group (zeroed bitmap) *)
    stage_bytes t ~addr:t.bitmap_buf (Bytes.make t.bitmap_bytes '\000');
    ignore (hot t "jfs_bitmap_find" [ t.bitmap_buf; t.bitmap_bytes ])
  end

let ops t =
  let inner = t.inner in
  {
    Vtypes.fs_name = "journalfs";
    root = Memfs.root_ino;
    lookup =
      (fun ~dir name ->
        scan_lookup t ~dir name;
        Memfs.lookup inner ~dir name);
    create =
      (fun ~dir ~name kind ->
        scan_lookup t ~dir name;
        alloc_block t;
        if t.durable then
          journaled t
            (J_create { dir; name; kind })
            (fun () -> Memfs.create_node inner ~dir ~name kind)
        else begin
          journal_record t ~kind:"create" ~payload:name;
          Memfs.create_node inner ~dir ~name kind
        end);
    unlink =
      (fun ~dir ~name ->
        scan_lookup t ~dir name;
        if t.durable then
          journaled t
            (J_unlink { dir; name })
            (fun () -> Memfs.unlink inner ~dir ~name)
        else begin
          journal_record t ~kind:"unlink" ~payload:name;
          Memfs.unlink inner ~dir ~name
        end);
    readdir = (fun ~dir -> Memfs.readdir inner ~dir);
    getattr = (fun ~ino -> Memfs.getattr inner ~ino);
    read = (fun ~ino ~off ~len -> Memfs.read inner ~ino ~off ~len);
    write =
      (fun ~ino ~off ~data ->
        if t.data_journal then journal_data t data;
        (if Bytes.length data > 0 then alloc_block t);
        if t.durable then
          journaled t
            (J_write
               {
                 ino;
                 off;
                 len = Bytes.length data;
                 data =
                   (if t.data_journal then Some (Bytes.to_string data)
                    else None);
               })
            (fun () -> Memfs.write inner ~ino ~off ~data)
        else begin
          journal_record t ~kind:"write"
            ~payload:(Printf.sprintf "%d+%d" off (Bytes.length data));
          Memfs.write inner ~ino ~off ~data
        end);
    truncate =
      (fun ~ino ~size ->
        if t.durable then
          journaled t
            (J_truncate { ino; size })
            (fun () -> Memfs.truncate inner ~ino ~size)
        else begin
          journal_record t ~kind:"truncate" ~payload:(string_of_int size);
          Memfs.truncate inner ~ino ~size
        end);
    rename =
      (fun ~src_dir ~src ~dst_dir ~dst ->
        scan_lookup t ~dir:src_dir src;
        if t.durable then
          journaled t
            (J_rename { src_dir; src; dst_dir; dst })
            (fun () -> Memfs.rename inner ~src_dir ~src ~dst_dir ~dst)
        else begin
          journal_record t ~kind:"rename" ~payload:(src ^ "->" ^ dst);
          Memfs.rename inner ~src_dir ~src ~dst_dir ~dst
        end);
    fsync = (fun ~ino -> Memfs.fsync inner ~ino);
    destroy_private = (fun () -> ());
  }

type stats = {
  journal_records : int;
  hot_calls : int;
  interp_steps : int;
  checksum_acc : int;
}

let stats t =
  {
    journal_records = t.journal_seq;
    hot_calls = t.hot_calls;
    interp_steps = Minic.Interp.steps t.interp;
    checksum_acc = t.checksum_acc;
  }

let inner t = t.inner
let dev t = Memfs.dev t.inner
let durable t = t.durable
let last_recover t = t.last_recover
let fsck t = Memfs.fsck t.inner
