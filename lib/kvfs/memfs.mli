(** The base in-memory filesystem (the Ext2/Ext3 stand-in).

    File data lives in growable byte buffers; every data and metadata
    access charges the block device (inodes pack 32 to a metadata block,
    as in Ext2).  Directories are hash tables with insertion-order
    readdir, so 100,000-entry directories behave. *)

type t

val root_ino : int

(** [image] seeds the block device's persistent store (see
    {!Block_dev.image}); relevant when journalfs mounts with replay. *)
val create : ?image:Block_dev.image -> Ksim.Kernel.t -> t
val block_size : t -> int
val dev : t -> Block_dev.t

(** The operations vector (pass to {!Vfs.create} or stack wrapfs over). *)
val ops : t -> Vtypes.ops

(** Direct (non-VFS) access, used by journalfs and tests. *)

val lookup : t -> dir:int -> string -> (int, Vtypes.errno) result
val create_node : t -> dir:int -> name:string -> Vtypes.kind -> (int, Vtypes.errno) result
val unlink : t -> dir:int -> name:string -> (unit, Vtypes.errno) result
val readdir : t -> dir:int -> (Vtypes.dirent list, Vtypes.errno) result
val getattr : t -> ino:int -> (Vtypes.stat, Vtypes.errno) result
val read : t -> ino:int -> off:int -> len:int -> (Bytes.t, Vtypes.errno) result
val write : t -> ino:int -> off:int -> data:Bytes.t -> (int, Vtypes.errno) result
val truncate : t -> ino:int -> size:int -> (unit, Vtypes.errno) result

val rename :
  t -> src_dir:int -> src:string -> dst_dir:int -> dst:string ->
  (unit, Vtypes.errno) result

val fsync : t -> ino:int -> (unit, Vtypes.errno) result
val inode_count : t -> int

(** Full-filesystem invariant check, e2fsck-style: every inode reachable
    from the root, no dangling dentries, directory and file link counts
    correct, no disk block mapped twice, block bitmap in exact agreement
    with the block map, and no blocks owned by dead inodes.  Returns
    human-readable complaints; [[]] means clean.  Charges a metadata
    read per directory, like a real fsck pass over the inode table. *)
val fsck : t -> string list
