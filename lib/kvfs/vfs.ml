(* The VFS layer: a mount table, path resolution through the dentry
   cache, and per-process open-file handles.  The syscall layer calls
   only into this module. *)

type file = {
  handle : int;
  ino : int;
  fs : Vtypes.ops;
  mutable pos : int;
  mutable closed : bool;
}

type mount = { prefix : string; fs : Vtypes.ops }

type t = {
  kernel : Ksim.Kernel.t;
  dcache : Dcache.t;
  mutable mounts : mount list;    (* longest prefix first *)
  files : (int, file) Hashtbl.t;  (* handle -> open file *)
  mutable next_handle : int;
  mutable opens : int;
  mutable path_components_resolved : int;
}

let create ?(root_fs : Vtypes.ops option) ?(dcache_shards = 1) kernel =
  let root_fs =
    match root_fs with
    | Some fs -> fs
    | None -> Memfs.ops (Memfs.create kernel)
  in
  (* every mounted fs gets the exception-to-errno boundary, so injected
     kernel failures (kfault ENOMEM/EIO) surface as clean errnos *)
  let root_fs = Fs_guard.ops root_fs in
  {
    kernel;
    dcache =
      Dcache.create ~stats:(Ksim.Kernel.stats kernel)
        ~ctx:(Ksim.Kernel.lock_ctx kernel) ~perf:(Ksim.Kernel.perf kernel)
        ~shards:dcache_shards ();
    mounts = [ { prefix = "/"; fs = root_fs } ];
    files = Hashtbl.create 256;
    next_handle = 1;
    opens = 0;
    path_components_resolved = 0;
  }

let dcache t = t.dcache

(* Attribute dcache lock events to the process driving the operation. *)
let cur_pid t = (Ksim.Kernel.current t.kernel).Ksim.Kproc.pid

let mount t ~prefix ~fs =
  if prefix = "" || prefix.[0] <> '/' then invalid_arg "Vfs.mount: prefix";
  t.mounts <- { prefix; fs = Fs_guard.ops fs } :: t.mounts;
  (* keep longest prefixes first so resolution picks the innermost mount *)
  t.mounts <-
    List.sort
      (fun a b -> compare (String.length b.prefix) (String.length a.prefix))
      t.mounts;
  Dcache.clear ~pid:(cur_pid t) t.dcache

let umount t ~prefix =
  match List.find_opt (fun m -> m.prefix = prefix) t.mounts with
  | None -> Error Vtypes.ENOENT
  | Some m ->
      m.fs.Vtypes.destroy_private ();
      t.mounts <- List.filter (fun m' -> m' != m) t.mounts;
      Dcache.clear ~pid:(cur_pid t) t.dcache;
      Ok ()

let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

(* Find the mount governing [path] and the path relative to it. *)
let resolve_mount t path =
  let matches m =
    let p = m.prefix in
    p = "/"
    || String.length path >= String.length p
       && String.sub path 0 (String.length p) = p
       && (String.length path = String.length p
          || path.[String.length p] = '/')
  in
  match List.find_opt matches t.mounts with
  | None -> Error Vtypes.ENOENT
  | Some m ->
      let rel =
        if m.prefix = "/" then path
        else String.sub path (String.length m.prefix)
               (String.length path - String.length m.prefix)
      in
      Ok (m.fs, rel)

(* Walk [rel] from the filesystem root, one dcache-guarded component at a
   time.  Returns the inode of the final component. *)
let walk t (fs : Vtypes.ops) rel =
  let rec go dir = function
    | [] -> Ok dir
    | name :: rest -> (
        t.path_components_resolved <- t.path_components_resolved + 1;
        match Dcache.lookup ~pid:(cur_pid t) t.dcache ~dir ~name with
        | Some ino -> go ino rest
        | None -> (
            match fs.Vtypes.lookup ~dir name with
            | Error e -> Error e
            | Ok ino ->
                Dcache.insert ~pid:(cur_pid t) t.dcache ~dir ~name ~ino;
                go ino rest))
  in
  go fs.Vtypes.root (split_path rel)

let resolve t path =
  match resolve_mount t path with
  | Error e -> Error e
  | Ok (fs, rel) -> (
      match walk t fs rel with
      | Error e -> Error e
      | Ok ino -> Ok (fs, ino))

(* Resolve the parent directory of [path]; returns (fs, dir ino, name). *)
let resolve_parent t path =
  match resolve_mount t path with
  | Error e -> Error e
  | Ok (fs, rel) -> (
      match List.rev (split_path rel) with
      | [] -> Error Vtypes.EINVAL
      | name :: rev_parents -> (
          let parent_components = List.rev rev_parents in
          let rec go dir = function
            | [] -> Ok dir
            | c :: rest -> (
                match Dcache.lookup ~pid:(cur_pid t) t.dcache ~dir ~name:c with
                | Some ino -> go ino rest
                | None -> (
                    match fs.Vtypes.lookup ~dir c with
                    | Error e -> Error e
                    | Ok ino ->
                        Dcache.insert ~pid:(cur_pid t) t.dcache ~dir ~name:c ~ino;
                        go ino rest))
          in
          match go fs.Vtypes.root parent_components with
          | Error e -> Error e
          | Ok dir -> Ok (fs, dir, name)))

(* --- file-handle operations ------------------------------------------- *)

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

let open_file t path flags =
  t.opens <- t.opens + 1;
  let creating = List.mem O_CREAT flags in
  let get_ino () =
    match resolve t path with
    | Ok (fs, ino) -> Ok (fs, ino)
    | Error Vtypes.ENOENT when creating -> (
        match resolve_parent t path with
        | Error e -> Error e
        | Ok (fs, dir, name) -> (
            match fs.Vtypes.create ~dir ~name Vtypes.Regular with
            | Error e -> Error e
            | Ok ino ->
                Dcache.insert ~pid:(cur_pid t) t.dcache ~dir ~name ~ino;
                Ok (fs, ino)))
    | Error e -> Error e
  in
  match get_ino () with
  | Error e -> Error e
  | Ok (fs, ino) -> (
      match fs.Vtypes.getattr ~ino with
      | Error e -> Error e
      | Ok st ->
          if st.Vtypes.st_kind = Vtypes.Directory
             && List.exists (fun f -> f = O_WRONLY || f = O_RDWR) flags
          then Error Vtypes.EISDIR
          else begin
            if List.mem O_TRUNC flags then
              ignore (fs.Vtypes.truncate ~ino ~size:0);
            let handle = t.next_handle in
            t.next_handle <- t.next_handle + 1;
            let pos =
              if List.mem O_APPEND flags then st.Vtypes.st_size else 0
            in
            Hashtbl.replace t.files handle
              { handle; ino; fs; pos; closed = false };
            Ok handle
          end)

let file t handle =
  match Hashtbl.find_opt t.files handle with
  | Some f when not f.closed -> Ok f
  | Some _ | None -> Error Vtypes.EBADF

let close t handle =
  match file t handle with
  | Error e -> Error e
  | Ok f ->
      f.closed <- true;
      Hashtbl.remove t.files handle;
      Ok ()

let read t handle len =
  match file t handle with
  | Error e -> Error e
  | Ok f -> (
      match f.fs.Vtypes.read ~ino:f.ino ~off:f.pos ~len with
      | Error e -> Error e
      | Ok data ->
          f.pos <- f.pos + Bytes.length data;
          Ok data)

let write t handle data =
  match file t handle with
  | Error e -> Error e
  | Ok f -> (
      match f.fs.Vtypes.write ~ino:f.ino ~off:f.pos ~data with
      | Error e -> Error e
      | Ok n ->
          f.pos <- f.pos + n;
          Ok n)

let pread t handle ~off ~len =
  match file t handle with
  | Error e -> Error e
  | Ok f -> f.fs.Vtypes.read ~ino:f.ino ~off ~len

let pwrite t handle ~off ~data =
  match file t handle with
  | Error e -> Error e
  | Ok f -> f.fs.Vtypes.write ~ino:f.ino ~off ~data

type whence = SEEK_SET | SEEK_CUR | SEEK_END

let lseek t handle ~off ~whence =
  match file t handle with
  | Error e -> Error e
  | Ok f -> (
      let base =
        match whence with
        | SEEK_SET -> Ok 0
        | SEEK_CUR -> Ok f.pos
        | SEEK_END -> (
            match f.fs.Vtypes.getattr ~ino:f.ino with
            | Error e -> Error e
            | Ok st -> Ok st.Vtypes.st_size)
      in
      match base with
      | Error e -> Error e
      | Ok b ->
          let pos = b + off in
          if pos < 0 then Error Vtypes.EINVAL
          else begin
            f.pos <- pos;
            Ok pos
          end)

let fstat t handle =
  match file t handle with
  | Error e -> Error e
  | Ok f -> f.fs.Vtypes.getattr ~ino:f.ino

let stat t path =
  match resolve t path with
  | Error e -> Error e
  | Ok (fs, ino) -> fs.Vtypes.getattr ~ino

let readdir t path =
  match resolve t path with
  | Error e -> Error e
  | Ok (fs, ino) -> fs.Vtypes.readdir ~dir:ino

let mkdir t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (fs, dir, name) -> (
      match fs.Vtypes.create ~dir ~name Vtypes.Directory with
      | Error e -> Error e
      | Ok ino ->
          Dcache.insert ~pid:(cur_pid t) t.dcache ~dir ~name ~ino;
          Ok ino)

let unlink t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (fs, dir, name) -> (
      match fs.Vtypes.unlink ~dir ~name with
      | Error e -> Error e
      | Ok () ->
          Dcache.invalidate ~pid:(cur_pid t) t.dcache ~dir ~name;
          Ok ())

let rename t ~src ~dst =
  match (resolve_parent t src, resolve_parent t dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (fs1, sdir, sname), Ok (fs2, ddir, dname) ->
      if fs1 != fs2 then Error Vtypes.EINVAL
      else begin
        match fs1.Vtypes.rename ~src_dir:sdir ~src:sname ~dst_dir:ddir ~dst:dname with
        | Error e -> Error e
        | Ok () ->
            Dcache.invalidate ~pid:(cur_pid t) t.dcache ~dir:sdir ~name:sname;
            Dcache.invalidate ~pid:(cur_pid t) t.dcache ~dir:ddir ~name:dname;
            Ok ()
      end

let fsync t handle =
  match file t handle with
  | Error e -> Error e
  | Ok f -> f.fs.Vtypes.fsync ~ino:f.ino

let open_file_count t = Hashtbl.length t.files
let path_components_resolved t = t.path_components_resolved
