(* Shared VFS types: errno codes, file kinds, stat, directory entries,
   and the operations record every filesystem implements (memfs natively,
   wrapfs by delegation, journalfs by journaling over memfs). *)

type errno =
  | EPERM         (* rejected by an admission policy (kverify SFI deny) *)
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EBADF
  | EINVAL
  | ENOTEMPTY
  | ENOSPC
  | EFAULT
  | ENAMETOOLONG
  | EROFS
  | EINTR         (* syscall interrupted before any work (kfault EINTR) *)
  | EIO           (* block device read failure (kfault blockdev.read_eio) *)
  | ENOMEM        (* kernel allocation failure (kfault kalloc sites) *)
  | EAGAIN        (* operation would block (empty recvq, empty backlog) *)
  | ENOTSOCK      (* socket operation on a non-socket descriptor *)
  | EADDRINUSE    (* bind to a port another listener owns *)
  | ENOBUFS       (* send queue completely full (distinct from EAGAIN) *)
  | ETIMEDOUT     (* connect SYN dropped by a full accept backlog *)
  | ECONNREFUSED  (* connect to a port with no listener *)

let errno_to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENOSPC -> "ENOSPC"
  | EFAULT -> "EFAULT"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EROFS -> "EROFS"
  | EINTR -> "EINTR"
  | EIO -> "EIO"
  | ENOMEM -> "ENOMEM"
  | EAGAIN -> "EAGAIN"
  | ENOTSOCK -> "ENOTSOCK"
  | EADDRINUSE -> "EADDRINUSE"
  | ENOBUFS -> "ENOBUFS"
  | ETIMEDOUT -> "ETIMEDOUT"
  | ECONNREFUSED -> "ECONNREFUSED"

let pp_errno ppf e = Fmt.string ppf (errno_to_string e)

(* Linux-compatible numeric errno codes, used by the Cosy kernel
   extension's C-style return convention (negative errno on failure). *)
let errno_code = function
  | EPERM -> 1
  | ENOENT -> 2
  | EEXIST -> 17
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EBADF -> 9
  | EINVAL -> 22
  | ENOTEMPTY -> 39
  | ENOSPC -> 28
  | EFAULT -> 14
  | ENAMETOOLONG -> 36
  | EROFS -> 30
  | EINTR -> 4
  | EIO -> 5
  | ENOMEM -> 12
  | EAGAIN -> 11
  | ENOTSOCK -> 88
  | EADDRINUSE -> 98
  | ENOBUFS -> 105
  | ETIMEDOUT -> 110
  | ECONNREFUSED -> 111

let all_errnos =
  [
    EPERM; ENOENT; EEXIST; ENOTDIR; EISDIR; EBADF; EINVAL; ENOTEMPTY; ENOSPC;
    EFAULT; ENAMETOOLONG; EROFS; EINTR; EIO; ENOMEM; EAGAIN; ENOTSOCK;
    EADDRINUSE; ENOBUFS; ETIMEDOUT; ECONNREFUSED;
  ]

(* Every rejection path maps to its own documented errno — a failed
   lookup on a genuinely unknown code is the caller's bug, not a shared
   catch-all:
     EPERM         kverify admission denial (SFI policy [Deny])
     EINTR         kfault-injected interrupt that exhausted the kernel's
                   transparent restart budget (see Usyscall)
     EIO           injected block-device read failure (kfault)
     ENOMEM        injected kalloc exhaustion surfacing to user land
     EAGAIN        would-block only: empty recvq / empty accept backlog
     ENOBUFS       send queue completely full
     ETIMEDOUT     connect SYN dropped by a full accept backlog
     ECONNREFUSED  connect to a port nobody listens on *)
let errno_of_code n = List.find_opt (fun e -> errno_code e = n) all_errnos

type kind = Regular | Directory

let pp_kind ppf = function
  | Regular -> Fmt.string ppf "file"
  | Directory -> Fmt.string ppf "dir"

type stat = {
  st_ino : int;
  st_kind : kind;
  st_size : int;
  st_nlink : int;
  st_blocks : int;
  st_mtime : int;    (* simulated cycles at last modification *)
}

(* Size of a marshalled stat when it crosses the user/kernel boundary;
   matches sizeof(struct stat) on 32-bit Linux 2.6 closely enough for
   the data-volume arithmetic in E1/E2. *)
let stat_wire_size = 88

let pp_stat ppf s =
  Fmt.pf ppf "ino=%d %a size=%d nlink=%d blocks=%d" s.st_ino pp_kind s.st_kind
    s.st_size s.st_nlink s.st_blocks

type dirent = { d_ino : int; d_name : string; d_kind : kind }

(* Wire size of one readdir entry (struct dirent is 268 bytes on Linux;
   the kernel packs them, we use name length + fixed header). *)
let dirent_wire_size d = 12 + String.length d.d_name

let name_max = 255

(* Operations every filesystem provides.  Inode numbers are local to the
   filesystem instance. *)
type ops = {
  fs_name : string;
  root : int;
  lookup : dir:int -> string -> (int, errno) result;
  create : dir:int -> name:string -> kind -> (int, errno) result;
  unlink : dir:int -> name:string -> (unit, errno) result;
  readdir : dir:int -> (dirent list, errno) result;
  getattr : ino:int -> (stat, errno) result;
  read : ino:int -> off:int -> len:int -> (bytes, errno) result;
  write : ino:int -> off:int -> data:bytes -> (int, errno) result;
  truncate : ino:int -> size:int -> (unit, errno) result;
  rename :
    src_dir:int -> src:string -> dst_dir:int -> dst:string ->
    (unit, errno) result;
  fsync : ino:int -> (unit, errno) result;
  destroy_private : unit -> unit;
      (* release per-mount private state (wrapfs buffers etc.) *)
}

let valid_name name =
  String.length name > 0
  && String.length name <= name_max
  && (not (String.contains name '/'))
  && name <> "." && name <> ".."
