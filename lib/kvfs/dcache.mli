(** Dentry cache: [(parent inode, name) -> inode], guarded by the global
    [dcache_lock].

    Path resolution hits the lock once per component and namespace
    operations hit it on insert/invalidate, which is how experiment E6
    reproduces the paper's dcache_lock acquisition counts under
    PostMark. *)

type t

(** [create ?stats ()] builds an empty cache.  When [stats] is given, the
    cache registers [dcache.hits]/[dcache.misses]/[dcache.invalidations]
    counters in it. *)
val create : ?stats:Kstats.t -> unit -> t

(** The global dcache_lock itself (its instrumentation events carry this
    lock's object id). *)
val lock : t -> Ksim.Spinlock.t

val lookup : t -> dir:int -> name:string -> int option
val insert : t -> dir:int -> name:string -> ino:int -> unit
val invalidate : t -> dir:int -> name:string -> unit
val clear : t -> unit

(** Acquisitions of the dcache_lock so far. *)
val acquisitions : t -> int

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  lock_acquisitions : int;
}

val stats : t -> stats
