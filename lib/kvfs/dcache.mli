(** Dentry cache: [(parent inode, name) -> inode].

    In the compatibility configuration (one shard, the default) every
    operation takes the global [dcache_lock]; path resolution hits it
    once per component and namespace operations hit it on
    insert/invalidate, which is how experiment E6 reproduces the paper's
    dcache_lock acquisition counts under PostMark.

    With [shards > 1] the table splits into per-shard buckets with
    per-shard locks, and lookups use a lockless seqcount fast path
    (validate-and-retry); only writers lock.  Experiment E13 measures
    this against the global-lock mode under SMP PostMark. *)

type t

(** [create ?stats ?ctx ?shards ()] builds an empty cache.  The cache
    registers [dcache.hits]/[dcache.misses]/[dcache.invalidations]
    counters in [stats] (default: a fresh enabled registry).  [ctx]
    makes the shard locks contention-aware (see {!Ksim.Spinlock.ctx});
    [perf] additionally traces each miss as a kperf instant and each
    contended shard-lock wait as a span.  [shards] defaults to 1, the
    global-lock mode. *)
val create :
  ?stats:Kstats.t -> ?ctx:Ksim.Spinlock.ctx -> ?perf:Kperf.t -> ?shards:int ->
  unit -> t

val nshards : t -> int

(** The dcache_lock of shard 0 — in the default configuration, the one
    global lock (its instrumentation events carry this lock's object
    id). *)
val lock : t -> Ksim.Spinlock.t

(** [pid] attributes the lock events of each operation to the acting
    process (0 = unattributed). *)
val lookup : ?pid:int -> t -> dir:int -> name:string -> int option

val insert : ?pid:int -> t -> dir:int -> name:string -> ino:int -> unit
val invalidate : ?pid:int -> t -> dir:int -> name:string -> unit
val clear : ?pid:int -> t -> unit

(** Lock acquisitions so far, summed over shards. *)
val acquisitions : t -> int

(** Contended acquisitions so far, summed over shards. *)
val contended : t -> int

(** Cycles spent spinning on shard locks, summed over shards. *)
val spin_cycles : t -> int

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  lock_acquisitions : int;
}

(** Derived from the kstats counters, so the two reporting paths can
    never disagree. *)
val stats : t -> stats
