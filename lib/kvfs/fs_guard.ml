(* Exception-to-errno boundary for filesystem operations.

   Kernel-internal failures surface as OCaml exceptions (an exhausted —
   or kfault-injected — allocator raises [Kalloc.Out_of_memory], a bad
   sector raises [Block_dev.Io_error]).  Real kernels translate these
   to errnos at the VFS boundary rather than letting them unwind into
   user land; [ops] does the same for an entire [Vtypes.ops] record, so
   the VFS can wrap every mounted filesystem once and injected faults
   always reach the syscall layer as clean [Error ENOMEM] / [Error EIO]
   results. *)

let errno_of_exn = function
  | Ksim.Kalloc.Out_of_memory _ -> Some Vtypes.ENOMEM
  | Block_dev.Io_error _ -> Some Vtypes.EIO
  | _ -> None

let guard f =
  try f () with
  | e -> (
      match errno_of_exn e with Some errno -> Error errno | None -> raise e)

let ops (o : Vtypes.ops) =
  {
    o with
    Vtypes.lookup = (fun ~dir name -> guard (fun () -> o.Vtypes.lookup ~dir name));
    create = (fun ~dir ~name kind -> guard (fun () -> o.Vtypes.create ~dir ~name kind));
    unlink = (fun ~dir ~name -> guard (fun () -> o.Vtypes.unlink ~dir ~name));
    readdir = (fun ~dir -> guard (fun () -> o.Vtypes.readdir ~dir));
    getattr = (fun ~ino -> guard (fun () -> o.Vtypes.getattr ~ino));
    read = (fun ~ino ~off ~len -> guard (fun () -> o.Vtypes.read ~ino ~off ~len));
    write = (fun ~ino ~off ~data -> guard (fun () -> o.Vtypes.write ~ino ~off ~data));
    truncate = (fun ~ino ~size -> guard (fun () -> o.Vtypes.truncate ~ino ~size));
    rename =
      (fun ~src_dir ~src ~dst_dir ~dst ->
        guard (fun () -> o.Vtypes.rename ~src_dir ~src ~dst_dir ~dst));
    fsync = (fun ~ino -> guard (fun () -> o.Vtypes.fsync ~ino));
  }
