(* The base in-memory filesystem (the Ext2/Ext3 stand-in).  File data
   lives in growable byte buffers; every data access charges the block
   device so the workloads see realistic I/O costs. *)

type inode = {
  ino : int;
  mutable kind : Vtypes.kind;
  mutable data : Bytes.t;          (* regular files *)
  mutable size : int;
  (* directory entries: name -> (ino, arrival sequence); the sequence
     preserves insertion order for readdir without making create O(n) *)
  children : (string, int * int) Hashtbl.t;
  mutable child_seq : int;
  mutable nlink : int;
  mutable mtime : int;
  refcount : Ksim.Refcount.t;
}

let dir_entries d =
  Hashtbl.fold (fun name (ino, seq) acc -> (seq, name, ino) :: acc) d.children []
  |> List.sort compare
  |> List.map (fun (_, name, ino) -> (name, ino))

let dir_add d name ino =
  Hashtbl.replace d.children name (ino, d.child_seq);
  d.child_seq <- d.child_seq + 1

let dir_find d name = Option.map fst (Hashtbl.find_opt d.children name)
let dir_remove d name = Hashtbl.remove d.children name
let dir_count d = Hashtbl.length d.children

type t = {
  kernel : Ksim.Kernel.t;
  dev : Block_dev.t;
  inodes : (int, inode) Hashtbl.t;
  mutable next_ino : int;
  mutable next_block : int;        (* naive block placement cursor *)
  block_of_ino : (int * int, int) Hashtbl.t; (* (ino, file block) -> disk block *)
  (* allocation accounting, checked by fsck: which disk blocks are in
     use, and which data blocks each live inode owns (file blocks only;
     metadata blocks are keyed by pseudo-ino and never freed) *)
  bitmap : (int, unit) Hashtbl.t;
  blocks_of : (int, (int * int) list ref) Hashtbl.t; (* ino -> (fblock, blk) *)
}

let root_ino = 1

let create ?image kernel =
  let dev = Block_dev.create ?image kernel in
  let t =
    {
      kernel;
      dev;
      inodes = Hashtbl.create 1024;
      next_ino = root_ino + 1;
      next_block = 64;
      block_of_ino = Hashtbl.create 4096;
      bitmap = Hashtbl.create 4096;
      blocks_of = Hashtbl.create 1024;
    }
  in
  Hashtbl.replace t.inodes root_ino
    {
      ino = root_ino;
      kind = Vtypes.Directory;
      data = Bytes.create 0;
      size = 0;
      children = Hashtbl.create 8;
      child_seq = 0;
      nlink = 2;
      mtime = 0;
      refcount = Ksim.Refcount.create "memfs-root";
    };
  t

let block_size t = Block_dev.block_size t.dev
let dev t = t.dev

let find t ino = Hashtbl.find_opt t.inodes ino

(* Map a file-relative block to a stable disk block, allocating lazily;
   sequential files thus get (mostly) sequential blocks. *)
let disk_block t ino fblock =
  match Hashtbl.find_opt t.block_of_ino (ino, fblock) with
  | Some b -> b
  | None ->
      let b = t.next_block in
      t.next_block <- t.next_block + 1;
      Hashtbl.replace t.block_of_ino (ino, fblock) b;
      Hashtbl.replace t.bitmap b ();
      if fblock >= 0 then begin
        match Hashtbl.find_opt t.blocks_of ino with
        | Some l -> l := (fblock, b) :: !l
        | None -> Hashtbl.replace t.blocks_of ino (ref [ (fblock, b) ])
      end;
      b

let charge_data_io t ~ino ~off ~len ~write =
  let bs = block_size t in
  let first = off / bs and last = (off + max 0 (len - 1)) / bs in
  for fb = first to last do
    let blk = disk_block t ino fb in
    if write then Block_dev.write_block t.dev blk
    else Block_dev.read_block t.dev blk
  done

(* Metadata reads charge the block holding the inode; inodes pack 32 to
   a block as in Ext2/3, so hot inode tables stay cache-resident even
   for very large directories. *)
let charge_meta_io t ~ino =
  Block_dev.read_block t.dev (disk_block t (ino lsr 5) (-1))

let blocks_of_size t size = (size + block_size t - 1) / block_size t

(* In-kernel CPU for a metadata operation: hash lookups, permission
   checks, inode locking. *)
let charge_cpu ?(scale = 1) t =
  let cost = Ksim.Kernel.cost t.kernel in
  Ksim.Sim_clock.advance
    (Ksim.Kernel.clock t.kernel)
    (scale * cost.Ksim.Cost_model.vfs_op)

let stat_of t inode =
  {
    Vtypes.st_ino = inode.ino;
    st_kind = inode.kind;
    st_size = inode.size;
    st_nlink = inode.nlink;
    st_blocks = blocks_of_size t inode.size;
    st_mtime = inode.mtime;
  }

let new_inode t kind =
  let ino = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  let inode =
    {
      ino;
      kind;
      data = Bytes.create 0;
      size = 0;
      children = Hashtbl.create 8;
      child_seq = 0;
      nlink = (match kind with Vtypes.Directory -> 2 | Vtypes.Regular -> 1);
      mtime = Ksim.Kernel.now t.kernel;
      refcount = Ksim.Refcount.create (Printf.sprintf "memfs-ino-%d" ino);
    }
  in
  Hashtbl.replace t.inodes ino inode;
  inode

(* Return a dead inode's data blocks to the allocator's books.  The
   metadata block (pseudo-ino, fblock -1) is shared by 32 inodes and
   stays allocated. *)
let free_inode_blocks t ino =
  match Hashtbl.find_opt t.blocks_of ino with
  | None -> ()
  | Some l ->
      List.iter
        (fun (fblock, b) ->
          Hashtbl.remove t.block_of_ino (ino, fblock);
          Hashtbl.remove t.bitmap b)
        !l;
      Hashtbl.remove t.blocks_of ino

let as_dir t ino =
  match find t ino with
  | None -> Error Vtypes.ENOENT
  | Some i when i.kind <> Vtypes.Directory -> Error Vtypes.ENOTDIR
  | Some i -> Ok i

(* --- Vtypes.ops implementation ---------------------------------------- *)

let lookup t ~dir name =
  match as_dir t dir with
  | Error e -> Error e
  | Ok d -> (
      charge_cpu t;
      charge_meta_io t ~ino:dir;
      match dir_find d name with
      | Some ino -> Ok ino
      | None -> Error Vtypes.ENOENT)

let create_node t ~dir ~name kind =
  if not (Vtypes.valid_name name) then Error Vtypes.EINVAL
  else
    match as_dir t dir with
    | Error e -> Error e
    | Ok d ->
        if dir_find d name <> None then Error Vtypes.EEXIST
        else begin
          charge_cpu t ~scale:2;
          let inode = new_inode t kind in
          dir_add d name inode.ino;
          d.mtime <- Ksim.Kernel.now t.kernel;
          if kind = Vtypes.Directory then d.nlink <- d.nlink + 1;
          Block_dev.write_block t.dev (disk_block t (dir lsr 5) (-1));
          Ok inode.ino
        end

let unlink t ~dir ~name =
  match as_dir t dir with
  | Error e -> Error e
  | Ok d -> (
      match dir_find d name with
      | None -> Error Vtypes.ENOENT
      | Some ino -> (
          match find t ino with
          | None -> Error Vtypes.ENOENT
          | Some inode ->
              if inode.kind = Vtypes.Directory && dir_count inode > 0 then
                Error Vtypes.ENOTEMPTY
              else begin
                charge_cpu t ~scale:2;
                dir_remove d name;
                d.mtime <- Ksim.Kernel.now t.kernel;
                inode.nlink <- inode.nlink - 1;
                if inode.kind = Vtypes.Directory then d.nlink <- d.nlink - 1;
                if inode.nlink <= (match inode.kind with
                                   | Vtypes.Directory -> 1
                                   | Vtypes.Regular -> 0)
                then begin
                  Hashtbl.remove t.inodes ino;
                  free_inode_blocks t ino
                end;
                Block_dev.write_block t.dev (disk_block t (dir lsr 5) (-1));
                Ok ()
              end))

let readdir t ~dir =
  match as_dir t dir with
  | Error e -> Error e
  | Ok d ->
      charge_cpu t ~scale:(1 + (dir_count d / 16));
      charge_meta_io t ~ino:dir;
      let entry (name, ino) =
        let kind =
          match find t ino with
          | Some i -> i.kind
          | None -> Vtypes.Regular
        in
        { Vtypes.d_ino = ino; d_name = name; d_kind = kind }
      in
      Ok (List.map entry (dir_entries d))

let getattr t ~ino =
  match find t ino with
  | None -> Error Vtypes.ENOENT
  | Some inode ->
      charge_cpu t;
      charge_meta_io t ~ino;
      Ok (stat_of t inode)

let read t ~ino ~off ~len =
  match find t ino with
  | None -> Error Vtypes.ENOENT
  | Some inode ->
      if inode.kind = Vtypes.Directory then Error Vtypes.EISDIR
      else if off < 0 || len < 0 then Error Vtypes.EINVAL
      else begin
        let avail = max 0 (inode.size - off) in
        let n = min len avail in
        if n > 0 then charge_data_io t ~ino ~off ~len:n ~write:false;
        Ok (Bytes.sub inode.data off n)
      end

let ensure_capacity inode size =
  if Bytes.length inode.data < size then begin
    let grown = Bytes.make (max size (2 * Bytes.length inode.data)) '\000' in
    Bytes.blit inode.data 0 grown 0 inode.size;
    inode.data <- grown
  end

let write t ~ino ~off ~data =
  match find t ino with
  | None -> Error Vtypes.ENOENT
  | Some inode ->
      if inode.kind = Vtypes.Directory then Error Vtypes.EISDIR
      else if off < 0 then Error Vtypes.EINVAL
      else begin
        let len = Bytes.length data in
        ensure_capacity inode (off + len);
        Bytes.blit data 0 inode.data off len;
        if off + len > inode.size then inode.size <- off + len;
        inode.mtime <- Ksim.Kernel.now t.kernel;
        if len > 0 then charge_data_io t ~ino ~off ~len ~write:true;
        Ok len
      end

let truncate t ~ino ~size =
  match find t ino with
  | None -> Error Vtypes.ENOENT
  | Some inode ->
      if inode.kind = Vtypes.Directory then Error Vtypes.EISDIR
      else if size < 0 then Error Vtypes.EINVAL
      else begin
        ensure_capacity inode size;
        if size < inode.size then
          Bytes.fill inode.data size (inode.size - size) '\000';
        inode.size <- size;
        inode.mtime <- Ksim.Kernel.now t.kernel;
        Ok ()
      end

let rename t ~src_dir ~src ~dst_dir ~dst =
  if not (Vtypes.valid_name dst) then Error Vtypes.EINVAL
  else
    match (as_dir t src_dir, as_dir t dst_dir) with
    | Error e, _ | _, Error e -> Error e
    | Ok sd, Ok dd -> (
        match dir_find sd src with
        | None -> Error Vtypes.ENOENT
        | Some ino ->
            if dir_find dd dst <> None then Error Vtypes.EEXIST
            else begin
              dir_remove sd src;
              dir_add dd dst ino;
              (* a directory moving between parents carries its ".."
                 link with it *)
              (if src_dir <> dst_dir then
                 match find t ino with
                 | Some i when i.kind = Vtypes.Directory ->
                     sd.nlink <- sd.nlink - 1;
                     dd.nlink <- dd.nlink + 1
                 | _ -> ());
              sd.mtime <- Ksim.Kernel.now t.kernel;
              dd.mtime <- sd.mtime;
              Block_dev.write_block t.dev (disk_block t (src_dir lsr 5) (-1));
              Block_dev.write_block t.dev (disk_block t (dst_dir lsr 5) (-1));
              Ok ()
            end)

let fsync t ~ino =
  match find t ino with
  | None -> Error Vtypes.ENOENT
  | Some inode ->
      (* flush: charge full write cost for each dirty block *)
      let cost = Ksim.Kernel.cost t.kernel in
      let blocks = blocks_of_size t inode.size in
      Ksim.Kernel.charge_io t.kernel
        (blocks * cost.Ksim.Cost_model.disk_write_block / 20);
      Ok ()

let ops t =
  {
    Vtypes.fs_name = "memfs";
    root = root_ino;
    lookup = (fun ~dir name -> lookup t ~dir name);
    create = (fun ~dir ~name kind -> create_node t ~dir ~name kind);
    unlink = (fun ~dir ~name -> unlink t ~dir ~name);
    readdir = (fun ~dir -> readdir t ~dir);
    getattr = (fun ~ino -> getattr t ~ino);
    read = (fun ~ino ~off ~len -> read t ~ino ~off ~len);
    write = (fun ~ino ~off ~data -> write t ~ino ~off ~data);
    truncate = (fun ~ino ~size -> truncate t ~ino ~size);
    rename =
      (fun ~src_dir ~src ~dst_dir ~dst -> rename t ~src_dir ~src ~dst_dir ~dst);
    fsync = (fun ~ino -> fsync t ~ino);
    destroy_private = (fun () -> ());
  }

let inode_count t = Hashtbl.length t.inodes

(* --- fsck -------------------------------------------------------------- *)

(* Full-filesystem invariant check, e2fsck-style: tree reachability,
   dentry integrity, link counts, block-map injectivity, and bitmap
   agreement.  Returns human-readable complaints; [] means clean.
   Charges a metadata read per directory walked, like a real fsck pass
   over the inode table. *)
let fsck t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let seen = Hashtbl.create 64 in (* reachable inos *)
  let refs = Hashtbl.create 64 in (* ino -> incoming dentry count *)
  let bump ino =
    Hashtbl.replace refs ino
      (1 + Option.value ~default:0 (Hashtbl.find_opt refs ino))
  in
  let rec walk dir_ino =
    if Hashtbl.mem seen dir_ino then
      err "cycle: directory %d reached twice" dir_ino
    else begin
      Hashtbl.replace seen dir_ino ();
      match find t dir_ino with
      | None -> err "walk: directory inode %d missing" dir_ino
      | Some d ->
          charge_cpu t;
          charge_meta_io t ~ino:dir_ino;
          let subdirs = ref 0 in
          List.iter
            (fun (name, ino) ->
              bump ino;
              match find t ino with
              | None -> err "dangling dentry %d/%s -> %d" dir_ino name ino
              | Some i ->
                  if i.kind = Vtypes.Directory then begin
                    incr subdirs;
                    walk ino
                  end
                  else Hashtbl.replace seen ino ())
            (dir_entries d);
          if d.nlink <> 2 + !subdirs then
            err "dir %d: nlink %d, expected %d" dir_ino d.nlink (2 + !subdirs)
    end
  in
  walk root_ino;
  let inos =
    Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes [] |> List.sort compare
  in
  List.iter
    (fun ino ->
      let i = Hashtbl.find t.inodes ino in
      if not (Hashtbl.mem seen ino) then err "orphan inode %d (unreachable)" ino;
      if i.kind = Vtypes.Regular then begin
        let r = Option.value ~default:0 (Hashtbl.find_opt refs ino) in
        if i.nlink <> r then err "file %d: nlink %d but %d dentries" ino i.nlink r
      end;
      if i.size > Bytes.length i.data then
        err "file %d: size %d exceeds buffer %d" ino i.size (Bytes.length i.data))
    inos;
  (* block accounting: no block mapped twice, every mapped block marked
     allocated, every allocated block mapped, no block owned by a dead
     inode (metadata pseudo-inos, fblock -1, are exempt) *)
  let owner = Hashtbl.create 64 in
  let mappings =
    Hashtbl.fold (fun k b acc -> (k, b) :: acc) t.block_of_ino []
    |> List.sort compare
  in
  List.iter
    (fun ((ino, fblock), b) ->
      (match Hashtbl.find_opt owner b with
      | Some (ino', fblock') ->
          err "block %d shared by (%d,%d) and (%d,%d)" b ino' fblock' ino fblock
      | None -> Hashtbl.replace owner b (ino, fblock));
      if not (Hashtbl.mem t.bitmap b) then
        err "block %d mapped by (%d,%d) but free in bitmap" b ino fblock;
      if fblock >= 0 && not (Hashtbl.mem t.inodes ino) then
        err "leaked block %d: owning inode %d is gone" b ino)
    mappings;
  let marked =
    Hashtbl.fold (fun b () acc -> b :: acc) t.bitmap [] |> List.sort compare
  in
  List.iter
    (fun b ->
      if not (Hashtbl.mem owner b) then
        err "bitmap marks block %d but nothing maps it" b)
    marked;
  List.rev !errs
