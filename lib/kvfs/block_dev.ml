(* Simulated block device with a buffer cache.  Filesystems charge disk
   costs through here; the cache means repeated access to hot metadata is
   cheap, which is what makes PostMark metadata-rate-bound rather than
   seek-bound in E6/E7. *)

type t = {
  kernel : Ksim.Kernel.t;
  block_size : int;
  cache_blocks : int;
  cache : (int, unit) Hashtbl.t;   (* resident block numbers *)
  arrival : int Queue.t;           (* FIFO eviction order *)
  kstats : Kstats.t;
  st_reads : Kstats.counter;
  st_writes : Kstats.counter;
  st_cache_hits : Kstats.counter;
  st_cache_misses : Kstats.counter;
  mutable reads : int;
  mutable writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable last_block : int;        (* for seek-distance modelling *)
}

let create ?(block_size = 4096) ?(cache_blocks = 150_000) kernel =
  let kstats = Ksim.Kernel.stats kernel in
  {
    kernel;
    block_size;
    cache_blocks;
    cache = Hashtbl.create (2 * cache_blocks);
    arrival = Queue.create ();
    kstats;
    st_reads = Kstats.counter kstats "blockdev.reads";
    st_writes = Kstats.counter kstats "blockdev.writes";
    st_cache_hits = Kstats.counter kstats "blockdev.cache_hits";
    st_cache_misses = Kstats.counter kstats "blockdev.cache_misses";
    reads = 0;
    writes = 0;
    cache_hits = 0;
    cache_misses = 0;
    last_block = 0;
  }

let block_size t = t.block_size

(* Disk transfers are I/O wait: they advance elapsed time but do not
   count as system (CPU) time, like a process blocked in the elevator. *)
let charge t cycles = Ksim.Kernel.charge_io t.kernel cycles

let seek_cost t blk =
  let cost = Ksim.Kernel.cost t.kernel in
  let distance = abs (blk - t.last_block) in
  t.last_block <- blk;
  if distance = 0 then 0
  else if distance <= 8 then cost.Ksim.Cost_model.disk_seek / 100
  else cost.Ksim.Cost_model.disk_seek

let touch t blk =
  if not (Hashtbl.mem t.cache blk) then begin
    Hashtbl.replace t.cache blk ();
    Queue.push blk t.arrival;
    (* FIFO eviction: O(1), close enough to the page cache's clock *)
    if Hashtbl.length t.cache > t.cache_blocks then
      match Queue.take_opt t.arrival with
      | Some victim -> Hashtbl.remove t.cache victim
      | None -> ()
  end

(* Read one block: free on cache hit, seek+transfer on miss. *)
let read_block t blk =
  t.reads <- t.reads + 1;
  Kstats.incr t.kstats t.st_reads;
  if Hashtbl.mem t.cache blk then begin
    t.cache_hits <- t.cache_hits + 1;
    Kstats.incr t.kstats t.st_cache_hits
  end
  else begin
    t.cache_misses <- t.cache_misses + 1;
    Kstats.incr t.kstats t.st_cache_misses;
    let cost = Ksim.Kernel.cost t.kernel in
    charge t (seek_cost t blk + cost.Ksim.Cost_model.disk_read_block);
    touch t blk
  end

(* Write one block: write-back model — the block enters the cache and a
   fraction of the transfer cost is charged to model the flusher. *)
let write_block t blk =
  t.writes <- t.writes + 1;
  Kstats.incr t.kstats t.st_writes;
  let cost = Ksim.Kernel.cost t.kernel in
  charge t (cost.Ksim.Cost_model.disk_write_block / 10);
  touch t blk

type stats = { reads : int; writes : int; hits : int; misses : int }

let stats (t : t) =
  { reads = t.reads; writes = t.writes; hits = t.cache_hits; misses = t.cache_misses }
