(* Simulated block device with a buffer cache.  Filesystems charge disk
   costs through here; the cache means repeated access to hot metadata is
   cheap, which is what makes PostMark metadata-rate-bound rather than
   seek-bound in E6/E7.

   Eviction is second-chance (clock): each resident block carries a
   reference bit, set on every hit.  The evictor walks the arrival queue;
   a block with its bit set is spared (bit cleared, re-queued) and the
   first block with a clear bit is evicted.  Hot blocks therefore survive
   a scan that would flush a plain FIFO. *)

type policy = Fifo | Second_chance

(* The persistent face of the device: block number -> payload bytes.
   Everything else in the simulator is volatile; after a power loss this
   table is the only state a reboot may consult. *)
type image = (int, Bytes.t) Hashtbl.t

type t = {
  kernel : Ksim.Kernel.t;
  block_size : int;
  cache_blocks : int;
  policy : policy;
  cache : (int, bool ref) Hashtbl.t;  (* resident -> reference bit *)
  arrival : int Queue.t;              (* clock hand order *)
  kstats : Kstats.t;
  st_reads : Kstats.counter;
  st_writes : Kstats.counter;
  st_cache_hits : Kstats.counter;
  st_cache_misses : Kstats.counter;
  st_evictions : Kstats.counter;
  st_rereads : Kstats.counter;        (* short transfers retried *)
  fault : Kfault.t;
  site_eio : Kfault.site;
  site_short : Kfault.site;
  site_crash : Kfault.site;
  image : image;                      (* durable payloads (journalfs WAL) *)
  mutable last_block : int;           (* for seek-distance modelling *)
}

(* An uncorrectable read error on the given block: the driver gave up
   after its own retries.  Filesystems translate this to EIO at the ops
   boundary (see Fs_guard) so user land sees a clean errno. *)
exception Io_error of int

(* Power failed at a durable-write boundary: the write in flight — and
   every volatile structure in the machine — is lost.  Nothing catches
   this below the run harness; recovery happens on the next boot, from
   the image alone. *)
exception Power_loss

let create ?(block_size = 4096) ?(cache_blocks = 150_000)
    ?(policy = Second_chance) ?image kernel =
  let kstats = Ksim.Kernel.stats kernel in
  {
    kernel;
    block_size;
    cache_blocks;
    policy;
    cache = Hashtbl.create (2 * cache_blocks);
    arrival = Queue.create ();
    kstats;
    st_reads = Kstats.counter kstats "blockdev.reads";
    st_writes = Kstats.counter kstats "blockdev.writes";
    st_cache_hits = Kstats.counter kstats "blockdev.cache_hits";
    st_cache_misses = Kstats.counter kstats "blockdev.cache_misses";
    st_evictions = Kstats.counter kstats "blockdev.evictions";
    st_rereads = Kstats.counter kstats "retry.blockdev_rereads";
    fault = Ksim.Kernel.fault kernel;
    site_eio = Kfault.register (Ksim.Kernel.fault kernel) "blockdev.read_eio";
    site_short =
      Kfault.register (Ksim.Kernel.fault kernel) "blockdev.read_short";
    site_crash =
      Kfault.register (Ksim.Kernel.fault kernel) "blockdev.crash_point";
    image = (match image with Some i -> i | None -> Hashtbl.create 256);
    last_block = 0;
  }

let block_size t = t.block_size

(* Disk transfers are I/O wait: they advance elapsed time but do not
   count as system (CPU) time, like a process blocked in the elevator. *)
let charge t cycles = Ksim.Kernel.charge_io t.kernel cycles

let seek_cost t blk =
  let cost = Ksim.Kernel.cost t.kernel in
  let distance = abs (blk - t.last_block) in
  t.last_block <- blk;
  if distance = 0 then 0
  else if distance <= 8 then cost.Ksim.Cost_model.disk_seek / 100
  else cost.Ksim.Cost_model.disk_seek

let evict_one t =
  let rec hand () =
    match Queue.take_opt t.arrival with
    | None -> ()
    | Some candidate -> (
        match Hashtbl.find_opt t.cache candidate with
        | None -> hand ()  (* stale queue entry *)
        | Some refbit ->
            if t.policy = Second_chance && !refbit then begin
              refbit := false;
              Queue.push candidate t.arrival;
              hand ()
            end
            else begin
              Hashtbl.remove t.cache candidate;
              Kstats.incr t.kstats t.st_evictions
            end)
  in
  hand ()

let touch t blk =
  match Hashtbl.find_opt t.cache blk with
  | Some refbit -> refbit := true
  | None ->
      Hashtbl.replace t.cache blk (ref false);
      Queue.push blk t.arrival;
      if Hashtbl.length t.cache > t.cache_blocks then evict_one t

(* Read one block: free on cache hit, seek+transfer on miss. *)
let read_block t blk =
  Kstats.incr t.kstats t.st_reads;
  match Hashtbl.find_opt t.cache blk with
  | Some refbit ->
      refbit := true;
      Kstats.incr t.kstats t.st_cache_hits
  | None ->
      Kstats.incr t.kstats t.st_cache_misses;
      let cost = Ksim.Kernel.cost t.kernel in
      let perf = Ksim.Kernel.perf t.kernel in
      let span =
        Kperf.span_begin perf ~arg:blk ~cat:"io" ~name:"blockdev.read" ()
      in
      charge t (seek_cost t blk);
      (* injected short transfer: the driver re-issues the read, so the
         block costs an extra partial transfer but no error escapes *)
      if Kfault.fire t.fault t.site_short then begin
        charge t (cost.Ksim.Cost_model.disk_read_block / 2);
        Kstats.incr t.kstats t.st_rereads;
        Kperf.instant perf ~arg:blk ~cat:"retry" ~name:"blockdev.reread" ()
      end;
      (* injected hard failure: the driver's retries are exhausted *)
      if Kfault.fire t.fault t.site_eio then begin
        charge t cost.Ksim.Cost_model.disk_read_block;
        Kperf.span_end perf ~arg:blk span;
        raise (Io_error blk)
      end;
      charge t cost.Ksim.Cost_model.disk_read_block;
      Kperf.span_end perf ~arg:blk span;
      touch t blk

(* Write one block: write-back model — the block enters the cache and a
   fraction of the transfer cost is charged to model the flusher. *)
let write_block t blk =
  Kstats.incr t.kstats t.st_writes;
  let cost = Ksim.Kernel.cost t.kernel in
  let perf = Ksim.Kernel.perf t.kernel in
  let span =
    Kperf.span_begin perf ~arg:blk ~cat:"io" ~name:"blockdev.write" ()
  in
  charge t (cost.Ksim.Cost_model.disk_write_block / 10);
  Kperf.span_end perf ~arg:blk span;
  touch t blk

(* Durable writes carry their payload into the image; this is the only
   path whose effect survives a Power_loss.  The crash point is probed
   *before* the payload lands, so a fire models power failing with the
   write still in the drive's volatile write cache — the lost-write
   window journaling must tolerate. *)
let write_block_data t blk data =
  if Kfault.fire t.fault t.site_crash then raise Power_loss;
  write_block t blk;
  (* a payload longer than one block occupies the following slots too *)
  for i = 1 to (max 1 (String.length data) - 1) / t.block_size do
    write_block t (blk + i)
  done;
  Hashtbl.replace t.image blk (Bytes.of_string data)

let read_block_data t blk =
  match Hashtbl.find_opt t.image blk with
  | None -> None
  | Some data ->
      read_block t blk;
      for i = 1 to (max 1 (Bytes.length data) - 1) / t.block_size do
        read_block t (blk + i)
      done;
      Some (Bytes.to_string data)

(* Deep-copy snapshot: what a reboot is allowed to start from. *)
let image t : image =
  let copy = Hashtbl.create (max 16 (Hashtbl.length t.image)) in
  Hashtbl.iter (fun blk data -> Hashtbl.replace copy blk (Bytes.copy data)) t.image;
  copy

type stats = {
  reads : int;
  writes : int;
  hits : int;
  misses : int;
  evictions : int;
}

(* Derived entirely from the kstats counters, so the two reporting paths
   can never disagree. *)
let stats (t : t) =
  {
    reads = Kstats.counter_value t.st_reads;
    writes = Kstats.counter_value t.st_writes;
    hits = Kstats.counter_value t.st_cache_hits;
    misses = Kstats.counter_value t.st_cache_misses;
    evictions = Kstats.counter_value t.st_evictions;
  }
