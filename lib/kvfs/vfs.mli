(** The VFS layer: a mount table, path resolution through the dentry
    cache (one [dcache_lock]-guarded lookup per component), and open-file
    handles.  The syscall layer calls only into this module. *)

type t

(** [create ?root_fs ?dcache_shards kernel]; the root filesystem
    defaults to a fresh memfs.  [dcache_shards] selects the dentry-cache
    locking mode: 1 (default) is the global [dcache_lock]; more shards
    enable per-shard locks with lockless reads (see {!Dcache}). *)
val create : ?root_fs:Vtypes.ops -> ?dcache_shards:int -> Ksim.Kernel.t -> t

val dcache : t -> Dcache.t

(** Mount a filesystem at a path prefix; the innermost (longest) prefix
    wins during resolution.  @raise Invalid_argument on relative
    prefixes. *)
val mount : t -> prefix:string -> fs:Vtypes.ops -> unit

(** Unmount; releases the filesystem's private state. *)
val umount : t -> prefix:string -> (unit, Vtypes.errno) result

(** Resolve a path to its filesystem and inode. *)
val resolve : t -> string -> (Vtypes.ops * int, Vtypes.errno) result

(** Resolve the parent directory: [(fs, dir inode, final component)]. *)
val resolve_parent :
  t -> string -> (Vtypes.ops * int * string, Vtypes.errno) result

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

(** Open (optionally creating/truncating); returns an open-file handle.
    Opening a directory for writing fails with [EISDIR]. *)
val open_file : t -> string -> open_flag list -> (int, Vtypes.errno) result

val close : t -> int -> (unit, Vtypes.errno) result

(** Sequential read/write at the handle's position. *)
val read : t -> int -> int -> (Bytes.t, Vtypes.errno) result

val write : t -> int -> Bytes.t -> (int, Vtypes.errno) result

(** Positioned read/write; the handle's position is untouched. *)
val pread : t -> int -> off:int -> len:int -> (Bytes.t, Vtypes.errno) result

val pwrite : t -> int -> off:int -> data:Bytes.t -> (int, Vtypes.errno) result

type whence = SEEK_SET | SEEK_CUR | SEEK_END

val lseek : t -> int -> off:int -> whence:whence -> (int, Vtypes.errno) result
val fstat : t -> int -> (Vtypes.stat, Vtypes.errno) result
val stat : t -> string -> (Vtypes.stat, Vtypes.errno) result
val readdir : t -> string -> (Vtypes.dirent list, Vtypes.errno) result
val mkdir : t -> string -> (int, Vtypes.errno) result
val unlink : t -> string -> (unit, Vtypes.errno) result
val rename : t -> src:string -> dst:string -> (unit, Vtypes.errno) result
val fsync : t -> int -> (unit, Vtypes.errno) result

val open_file_count : t -> int
val path_components_resolved : t -> int
