(** Simulated block device with a buffer cache.

    Filesystems charge disk costs through here; cache hits are free, so
    repeated access to hot metadata costs nothing — which is what makes
    PostMark metadata-rate-bound rather than seek-bound in E6/E7.  Reads
    miss with a seek (full cost for far seeks, discounted for
    sequential); writes are write-back with an amortized flusher charge.
    All disk time is charged as I/O wait: it counts toward elapsed time
    but not system time.

    Eviction is second-chance (clock) by default: a reference bit set on
    every hit spares hot blocks one trip of the hand, so a sequential
    scan no longer flushes the working set the way plain FIFO does.
    [Fifo] remains available for comparison (experiment E7 reports the
    hit-rate delta). *)

type t

type policy = Fifo | Second_chance

(** An uncorrectable read error on the given block, raised when the
    kfault site [blockdev.read_eio] fires: the simulated driver's own
    retries are exhausted.  [Fs_guard] translates it to [EIO] at the
    VFS boundary.  The sibling site [blockdev.read_short] is
    self-recovering — the transfer is re-issued at the cost of an extra
    partial read (counted in [retry.blockdev_rereads]) and no error
    escapes. *)
exception Io_error of int

(** Power failed at a durable-write boundary (the kfault site
    [blockdev.crash_point] fired): the write in flight and all volatile
    state are lost.  Nothing below the run harness catches this;
    recovery happens on the next boot from the {!image} alone. *)
exception Power_loss

(** The persistent face of the device: block number -> payload, the only
    state that survives {!Power_loss}.  Obtain one with {!image}, hand it
    to [create ?image] to boot from it. *)
type image

(** [cache_blocks] defaults to ~150k blocks (≈600 MB, the page cache of
    the paper's 884 MB testbed); [policy] defaults to [Second_chance].
    [image] seeds the persistent payload store (reboot-from-disk). *)
val create :
  ?block_size:int -> ?cache_blocks:int -> ?policy:policy -> ?image:image ->
  Ksim.Kernel.t -> t

val block_size : t -> int
val read_block : t -> int -> unit
val write_block : t -> int -> unit

(** [write_block_data t blk data] is {!write_block} (once per spanned
    block) plus durability: the payload enters the image.  Probes the
    [blockdev.crash_point] fault site {e before} persisting, so a fired
    point raises {!Power_loss} with the payload still lost — the
    lost-write window write-ahead journaling must tolerate. *)
val write_block_data : t -> int -> string -> unit

(** Read a durable payload back ({!read_block} charges per spanned
    block); [None] if the image holds nothing at [blk]. *)
val read_block_data : t -> int -> string option

(** Deep-copy snapshot of the persistent image — what a reboot may
    start from. *)
val image : t -> image

type stats = {
  reads : int;
  writes : int;
  hits : int;
  misses : int;
  evictions : int;
}

(** Derived from the [blockdev.*] kstats counters, so the two reporting
    paths can never disagree. *)
val stats : t -> stats
