(** Simulated block device with a buffer cache.

    Filesystems charge disk costs through here; cache hits are free, so
    repeated access to hot metadata costs nothing — which is what makes
    PostMark metadata-rate-bound rather than seek-bound in E6/E7.  Reads
    miss with a seek (full cost for far seeks, discounted for
    sequential); writes are write-back with an amortized flusher charge.
    All disk time is charged as I/O wait: it counts toward elapsed time
    but not system time.

    Eviction is second-chance (clock) by default: a reference bit set on
    every hit spares hot blocks one trip of the hand, so a sequential
    scan no longer flushes the working set the way plain FIFO does.
    [Fifo] remains available for comparison (experiment E7 reports the
    hit-rate delta). *)

type t

type policy = Fifo | Second_chance

(** An uncorrectable read error on the given block, raised when the
    kfault site [blockdev.read_eio] fires: the simulated driver's own
    retries are exhausted.  [Fs_guard] translates it to [EIO] at the
    VFS boundary.  The sibling site [blockdev.read_short] is
    self-recovering — the transfer is re-issued at the cost of an extra
    partial read (counted in [retry.blockdev_rereads]) and no error
    escapes. *)
exception Io_error of int

(** [cache_blocks] defaults to ~150k blocks (≈600 MB, the page cache of
    the paper's 884 MB testbed); [policy] defaults to [Second_chance]. *)
val create :
  ?block_size:int -> ?cache_blocks:int -> ?policy:policy -> Ksim.Kernel.t -> t

val block_size : t -> int
val read_block : t -> int -> unit
val write_block : t -> int -> unit

type stats = {
  reads : int;
  writes : int;
  hits : int;
  misses : int;
  evictions : int;
}

(** Derived from the [blockdev.*] kstats counters, so the two reporting
    paths can never disagree. *)
val stats : t -> stats
