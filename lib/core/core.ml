(* Public facade: boot a simulated kernel with a chosen filesystem stack
   and the paper's subsystems attached.  Examples and downstream users
   start here; the individual libraries (Ksim, Kvfs, Ksyscall, Ktrace,
   Minic, Cosy, Kefence, Kgcc, Kmonitor) remain usable directly for
   anything this facade does not cover.

   Typical use:

     let t = Core.boot_with Core.Config.default in
     let fd = Core.ok (Core.Syscall.sys_open (Core.sys t) ~path:"/x"
                         ~flags:Core.o_create) in
     ...
*)

(* Re-exported aliases so downstream code can reach every subsystem
   through one module. *)
module Kernel = Ksim.Kernel
module Cost_model = Ksim.Cost_model
module Vfs = Kvfs.Vfs
module Vtypes = Kvfs.Vtypes
module Syscall = Ksyscall.Usyscall
module Systable = Ksyscall.Systable
module Sysno = Ksyscall.Sysno
module Req = Ksyscall.Syscall
module Ring = Kring
module Stats = Kstats
module Net = Knet
module Perf = Kperf
module Verify = Kverify
module Opt = Kopt
module Fault = Kfault
module Crash = Kcrash

type fs_choice =
  | Memfs                          (* plain in-memory Ext2 stand-in *)
  | Wrapfs_kmalloc                 (* stackable wrapfs, slab allocations *)
  | Wrapfs_kefence of Kefence.mode (* wrapfs with guarded vmalloc (E5) *)
  | Journalfs                      (* journaling Reiserfs stand-in *)
  | Journalfs_kgcc                 (* ... compiled with KGCC (E7) *)

(* One record holding everything [boot] can vary, replacing the pile of
   optional labels the facade accreted.  [Config.default] is a bootable
   baseline; callers override fields with record-update syntax:

     Core.boot_with { Core.Config.default with fs = Journalfs; ncpus = Some 4 }
*)
module Config = struct
  type t = {
    kernel : Ksim.Kernel.config;   (* simulated-hardware shape *)
    ncpus : int option;            (* overrides [kernel.ncpus] when set *)
    dcache_shards : int option;    (* dentry-cache locking mode *)
    trace : bool option;           (* force kperf on/off for this system *)
    fs : fs_choice;
    verify : Kverify.policy option;
        (* [Some p] boots with a kverify instance installed as the
           dispatch gate under policy [p]; [None] (default) keeps
           kverify entirely off the path — zero cost, bit-for-bit
           identical execution *)
    optimize : bool;
        (* [true] boots with a kopt optimizer that {!cosy} and {!ring}
           attach instead of the plain kverify admission: admitted
           programs compile into cached specialized plans.  Implies a
           kverify instance (created with policy [Log] and no gate
           installed when [verify] is [None] — armed-empty admission is
           cycle-identical to plain admission).  [false] (default)
           keeps kopt entirely off the path. *)
    crash : Kcrash.config option;
        (* [Some c] boots with a kcrash instance: [c.contain] installs
           the oops reaper at the kill sites, [c.durable] puts
           journalfs (when [fs] is a Journalfs flavor) in write-ahead
           mode with replay-on-mount.  [None] (default) keeps kcrash
           entirely absent — the kill sites fall back to plain
           [Scheduler.kill] and the journal stays headers-only,
           bit-for-bit the previous behavior. *)
  }

  let default =
    {
      kernel = Ksim.Kernel.default_config;
      ncpus = None;
      dcache_shards = None;
      trace = None;
      fs = Memfs;
      verify = None;
      optimize = false;
      crash = None;
    }
end

type t = {
  cfg : Config.t;
  kernel : Ksim.Kernel.t;
  sys : Ksyscall.Systable.t;
  kefence : Kefence.t option;
  wrapfs : Kvfs.Wrapfs.t option;
  journalfs : Kvfs.Journalfs.t option;
  kgcc_runtime : Kgcc.Kgcc_runtime.t option;
  kverify : Kverify.t option;
  kopt : Kopt.t option;
  kcrash : Kcrash.t option;
  mutable dispatcher : Kmonitor.Dispatcher.t option;
}

let kernel t = t.kernel
let sys t = t.sys
let stats t = Ksim.Kernel.stats t.kernel
let perf t = Ksim.Kernel.perf t.kernel
let fault t = Ksim.Kernel.fault t.kernel
let net t = Ksyscall.Systable.net t.sys
let kefence t = t.kefence
let wrapfs t = t.wrapfs
let journalfs t = t.journalfs
let kgcc_runtime t = t.kgcc_runtime
let kverify t = t.kverify
let kopt t = t.kopt
let kcrash t = t.kcrash
let dispatcher t = t.dispatcher
let config t = t.cfg

(* Common flag sets *)
let o_rdonly = [ Kvfs.Vfs.O_RDONLY ]
let o_create = [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ]
let o_rdwr = [ Kvfs.Vfs.O_RDWR ]
let o_append = [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_APPEND ]

exception Sys_error of Kvfs.Vtypes.errno

let ok = function Ok v -> v | Error e -> raise (Sys_error e)

(* Observed by harnesses (e.g. the bench driver) that need a handle on
   every system booted during a run to aggregate their kstats. *)
let on_boot : (t -> unit) ref = ref (fun _ -> ())

let boot_with ?image (cfg : Config.t) =
  let config =
    match cfg.ncpus with
    | None -> cfg.kernel
    | Some n -> { cfg.kernel with Ksim.Kernel.ncpus = n }
  in
  let kernel = Ksim.Kernel.create ~config () in
  (* ?trace overrides the boot-time default for this system only *)
  (match cfg.trace with
  | Some on -> Kperf.set_enabled (Ksim.Kernel.perf kernel) on
  | None -> ());
  let kefence_ref = ref None in
  let wrapfs_ref = ref None in
  let journalfs_ref = ref None in
  let kgcc_ref = ref None in
  (* durable journalling is kcrash's call: without a crash config the
     journal stays headers-only, byte-identical to previous revisions *)
  let durable =
    match cfg.crash with Some c -> c.Kcrash.durable | None -> false
  in
  let root_fs =
    match cfg.fs with
    | Memfs -> Kvfs.Memfs.ops (Kvfs.Memfs.create kernel)
    | Wrapfs_kmalloc ->
        let lower = Kvfs.Memfs.ops (Kvfs.Memfs.create kernel) in
        let w =
          Kvfs.Wrapfs.create ~allocator:(Kvfs.Wrapfs.kmalloc_allocator kernel)
            lower
        in
        wrapfs_ref := Some w;
        Kvfs.Wrapfs.ops w
    | Wrapfs_kefence mode ->
        let kf = Kefence.create ~mode kernel in
        kefence_ref := Some kf;
        let allocator =
          {
            Kvfs.Wrapfs.alloc_name = "kefence-vmalloc";
            space = Ksim.Kernel.kspace kernel;
            alloc = (fun size -> Kefence.alloc kf size);
            free = (fun addr -> Kefence.free kf addr);
          }
        in
        let lower = Kvfs.Memfs.ops (Kvfs.Memfs.create kernel) in
        let w = Kvfs.Wrapfs.create ~allocator lower in
        wrapfs_ref := Some w;
        Kvfs.Wrapfs.ops w
    | Journalfs ->
        let j = Kvfs.Journalfs.create ~durable ?image kernel in
        journalfs_ref := Some j;
        Kvfs.Journalfs.ops j
    | Journalfs_kgcc ->
        (* the KGCC runtime tracks the module's objects and serves its
           check calls; it must attach before the module loads so it sees
           every allocation from the first one *)
        let runtime =
          Kgcc.Kgcc_runtime.create
            ~clock:(Ksim.Kernel.clock kernel)
            ~cost:(Ksim.Kernel.cost kernel)
            ()
        in
        kgcc_ref := Some runtime;
        let j =
          Kvfs.Journalfs.create ~transform:Kgcc.Compile.transform
            ~attach:(Kgcc.Kgcc_runtime.attach runtime)
            ~durable ?image kernel
        in
        journalfs_ref := Some j;
        Kvfs.Journalfs.ops j
  in
  let sys =
    Ksyscall.Systable.create ~root_fs ?dcache_shards:cfg.dcache_shards kernel
  in
  (* kverify gate last, so it sees dispatches from the first user op; an
     automaton still has to be set ([Kverify.set_automaton]) before the
     gate enforces anything *)
  let kv =
    match cfg.verify with
    | None -> None
    | Some policy ->
        let kv = Kverify.create ~policy kernel in
        Kverify.install kv sys;
        Some kv
  in
  (* kopt needs a kverify instance to run admission through; when the
     config asks for optimization without verification, create one under
     the observe-only policy and leave the gate uninstalled — admission
     charges are identical either way *)
  let kopt =
    if not cfg.optimize then None
    else
      let kv =
        match kv with
        | Some kv -> kv
        | None -> Kverify.create ~policy:Kverify.Log kernel
      in
      Some (Kopt.create kv sys)
  in
  (* kcrash: oops containment at the kill sites, plus Kefence
     bookkeeping teardown so no guardian PTE outlives its owner *)
  let kc =
    match cfg.crash with
    | None -> None
    | Some c ->
        let kc = Kcrash.create kernel sys in
        if c.Kcrash.contain then begin
          Kcrash.install kc;
          match !kefence_ref with
          | Some kf -> Kcrash.attach_kefence kc kf
          | None -> ()
        end;
        Some kc
  in
  let t =
    {
      cfg;
      kernel;
      sys;
      kefence = !kefence_ref;
      wrapfs = !wrapfs_ref;
      journalfs = !journalfs_ref;
      kgcc_runtime = !kgcc_ref;
      kverify = kv;
      kopt;
      kcrash = kc;
      dispatcher = None;
    }
  in
  (* account the replay a durable mount just ran — but only when
     rebuilding from a survivor image: a fresh mount's empty replay is
     not a recovery *)
  (match (image, kc, !journalfs_ref) with
  | Some _, Some kc, Some j -> (
      match Kvfs.Journalfs.last_recover j with
      | Some info -> Kcrash.note_recovery kc info
      | None -> ())
  | _ -> ());
  !on_boot t;
  t

(* The persistent payload store behind this system's journalfs — what a
   power-loss survivor gets to rebuild from.  [None] unless the system
   booted a Journalfs flavor. *)
let image t =
  Option.map
    (fun j -> Kvfs.Block_dev.image (Kvfs.Journalfs.dev j))
    t.journalfs

(* Crash-consistent reboot: boot a fresh system from this one's config
   and persistent image alone.  Everything volatile (processes, page
   cache, heap, in-flight state) is gone, exactly as after power loss;
   a durable journalfs replays its WAL on mount and the new system's
   kcrash accounts for the recovery. *)
let reboot t = boot_with ?image:(image t) t.cfg

(* Attach the event-monitoring stack (dispatcher installed into the
   kernel's log_event indirection). *)
let enable_monitoring ?(ring = true) t =
  let d = Kmonitor.Dispatcher.create t.kernel in
  if ring then Kmonitor.Dispatcher.enable_ring d;
  Kmonitor.Dispatcher.install d;
  t.dispatcher <- Some d;
  d

let disable_monitoring t =
  match t.dispatcher with
  | Some d ->
      Kmonitor.Dispatcher.uninstall d;
      t.dispatcher <- None
  | None -> ()

(* A Cosy kernel extension bound to this system.  On a verifying system
   the kverify admission checker attaches automatically, so verified
   compounds run watchdog-elided. *)
let cosy ?shared_size ?policy ?user_program t =
  let cx = Cosy.Cosy_exec.create ?shared_size ?policy ?user_program t.sys in
  (* the optimizer subsumes plain admission (it runs kverify itself);
     attaching both would charge admission twice per compound *)
  (match (t.kopt, t.kverify) with
  | Some ko, _ -> Kopt.attach ko cx
  | None, Some kv -> Kverify.attach_cosy kv cx
  | None, None -> ());
  cx

(* A batched submission/completion ring bound to this system; same
   automatic admission wiring as {!cosy}. *)
let ring ?sq_entries ?cq_entries ?shared_size ?policy t =
  let r = Kring.create ?sq_entries ?cq_entries ?shared_size ?policy t.sys in
  (match (t.kopt, t.kverify) with
  | Some ko, _ -> Kopt.attach_ring ko r
  | None, Some kv -> Kring.set_verifier r (Some (Kverify.ring_verifier kv))
  | None, None -> ());
  (* a contained oops discards the dying process's in-flight batches *)
  (match t.kcrash with
  | Some kc -> Kcrash.add_reaper kc (fun ~pid:_ -> Kring.discard_pending r)
  | None -> ());
  r

(* Attach an strace-style recorder. *)
let trace t =
  let r = Ktrace.Recorder.create () in
  Ktrace.Recorder.attach r t.sys;
  r

(* A periodic kstats snapshot feed into the monitoring event stream. *)
let stats_feed ?interval t = Kmonitor.Stats_feed.create ?interval t.kernel

(* Mirror kperf span begin/end into the monitoring event stream. *)
let perf_feed t =
  let b = Kmonitor.Perf_bridge.create t.kernel in
  Kmonitor.Perf_bridge.attach b;
  b

(* Mirror kfault fires into the monitoring event stream. *)
let fault_feed t =
  let f = Kmonitor.Fault_feed.create t.kernel in
  Kmonitor.Fault_feed.attach f;
  f

(* Mirror kcrash events (oops/power-loss/recovery) into the monitoring
   event stream; [None] when the system booted without a crash config. *)
let crash_feed t =
  Option.map
    (fun kc ->
      let f = Kmonitor.Crash_feed.create t.kernel kc in
      Kmonitor.Crash_feed.attach f;
      f)
    t.kcrash

(* The /proc-style metrics report for this system. *)
let pp_stats ppf t = Kstats.pp_report ppf (stats t)

(* Human-readable time report matching what time(1) prints. *)
let pp_times ppf (times : Ksim.Kernel.times) =
  Fmt.pf ppf "elapsed %.4fs user %.4fs system %.4fs"
    (Ksim.Sim_clock.cycles_to_seconds times.Ksim.Kernel.elapsed)
    (Ksim.Sim_clock.cycles_to_seconds times.Ksim.Kernel.utime)
    (Ksim.Sim_clock.cycles_to_seconds times.Ksim.Kernel.stime)
