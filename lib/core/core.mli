(** Public facade: boot a simulated kernel with a chosen filesystem
    stack and the paper's subsystems attached.

    Examples and downstream users start here; the individual libraries
    ([Ksim], [Kvfs], [Ksyscall], [Ktrace], [Minic], [Cosy], [Kefence],
    [Kgcc], [Kmonitor]) remain usable directly for anything the facade
    does not cover.

    {[
      let t = Core.boot_with Core.Config.default in
      let fd = Core.ok (Core.Syscall.sys_open (Core.sys t) ~path:"/x"
                          ~flags:Core.o_create) in
      ...
    ]} *)

module Kernel = Ksim.Kernel
module Cost_model = Ksim.Cost_model
module Vfs = Kvfs.Vfs
module Vtypes = Kvfs.Vtypes
module Syscall = Ksyscall.Usyscall
module Systable = Ksyscall.Systable
module Sysno = Ksyscall.Sysno
module Req = Ksyscall.Syscall
module Ring = Kring
module Stats = Kstats
module Net = Knet
module Perf = Kperf
module Verify = Kverify
module Opt = Kopt
module Fault = Kfault
module Crash = Kcrash

(** The filesystem stack to boot with. *)
type fs_choice =
  | Memfs                           (** plain in-memory Ext2 stand-in *)
  | Wrapfs_kmalloc                  (** stackable wrapfs, slab allocations *)
  | Wrapfs_kefence of Kefence.mode  (** wrapfs over guarded vmalloc (E5) *)
  | Journalfs                       (** journaling Reiserfs stand-in *)
  | Journalfs_kgcc                  (** ... compiled with KGCC (E7) *)

(** Everything {!boot_with} can vary, as one record.  Override fields of
    {!Config.default} with record-update syntax:

    {[
      Core.boot_with
        { Core.Config.default with fs = Journalfs; ncpus = Some 4 }
    ]} *)
module Config : sig
  type t = {
    kernel : Ksim.Kernel.config;  (** simulated-hardware shape *)
    ncpus : int option;  (** overrides [kernel.ncpus] when set *)
    dcache_shards : int option;
        (** dentry-cache locking: 1 = global [dcache_lock], more =
            per-shard locks with lockless reads (see {!Kvfs.Dcache}) *)
    trace : bool option;
        (** force the kperf tracer on/off for this system, overriding
            [!Kperf.default_enabled] *)
    fs : fs_choice;
    verify : Kverify.policy option;
        (** [Some p]: boot with a {!Kverify.t} installed as the dispatch
            gate under policy [p] (set an automaton to start enforcing)
            and auto-attach admission checkers to {!cosy} and {!ring}
            instances.  [None] (default): kverify entirely absent —
            zero cost, bit-for-bit identical execution. *)
    optimize : bool;
        (** [true]: boot with a {!Kopt.t} that {!cosy} and {!ring}
            attach instead of plain kverify admission — admitted
            programs compile into cached specialized plans (observably
            identical execution, cheaper accounting).  Implies a
            kverify instance: when [verify] is [None] one is created
            under the [Log] policy with no dispatch gate installed,
            which is cycle-identical to plain admission.  [false]
            (default): kopt entirely absent. *)
    crash : Kcrash.config option;
        (** [Some c]: boot with a {!Kcrash.t}.  [c.contain] installs the
            oops reaper at the kill sites (the kverify [Kill] policy,
            the Cosy and kring watchdogs, kernel-mode memory faults), so
            a crashing process is destroyed with everything it held —
            fds, heap, locks, in-flight ring state — reaped, and every
            other process untouched.  [c.durable] puts journalfs (when
            [fs] is a Journalfs flavor) in write-ahead mode: mutating
            ops log intent/commit records to the persistent device
            image, and a mount from a survivor image replays them (see
            {!reboot}).  [None] (default): kcrash entirely absent — the
            kill sites fall back to plain [Scheduler.kill] and the
            journal stays headers-only, bit-for-bit the previous
            behavior, kstats included. *)
  }

  val default : t
end

type t

val kernel : t -> Ksim.Kernel.t
val sys : t -> Ksyscall.Systable.t

(** The kernel-wide metrics registry (counters, gauges, latency
    histograms).  Enabled at boot when [!Kstats.default_enabled];
    toggle later with [Kstats.set_enabled]. *)
val stats : t -> Kstats.t

(** The kperf tracer: per-CPU trace rings and causal spans.  Enabled at
    boot when [!Kperf.default_enabled] (or via [Config.trace]);
    toggle later with [Kperf.set_enabled].  Disabled, every tracepoint
    is a single branch and the simulated clock is untouched. *)
val perf : t -> Kperf.t

(** The kernel's fault-injection engine (see {!Kfault}).  Disarmed by
    default: every instrumented site is a single branch and execution
    is bit-for-bit identical to a kernel without kfault.  Arm sites
    with [Kfault.arm (Core.fault t) plans]. *)
val fault : t -> Kfault.t

(** The simulated socket stack booted alongside the VFS (see {!Knet}). *)
val net : t -> Knet.t

(** The optional subsystems the chosen stack instantiated. *)
val kefence : t -> Kefence.t option

val wrapfs : t -> Kvfs.Wrapfs.t option
val journalfs : t -> Kvfs.Journalfs.t option
val kgcc_runtime : t -> Kgcc.Kgcc_runtime.t option

(** The kverify instance, when booted with [verify = Some _] (or
    implied by [optimize = true]). *)
val kverify : t -> Kverify.t option

(** The kopt optimizer, when booted with [optimize = true]. *)
val kopt : t -> Kopt.t option

(** The kcrash instance, when booted with [crash = Some _]. *)
val kcrash : t -> Kcrash.t option

val dispatcher : t -> Kmonitor.Dispatcher.t option

(** The config this system was booted from (what {!reboot} reuses). *)
val config : t -> Config.t

(** Common open-flag sets. *)
val o_rdonly : Kvfs.Vfs.open_flag list

val o_create : Kvfs.Vfs.open_flag list
val o_rdwr : Kvfs.Vfs.open_flag list
val o_append : Kvfs.Vfs.open_flag list

exception Sys_error of Kvfs.Vtypes.errno

(** Unwrap a syscall result.  @raise Sys_error on errno. *)
val ok : ('a, Kvfs.Vtypes.errno) result -> 'a

(** Boot a system from a {!Config.t}.  This is the single entry point:
    build a config with record-update syntax over {!Config.default} and
    pass it here.  Everything a boot can vary is a {!Config.t} field.

    [?image] seeds the block device with a persistent payload store
    from a previous system (see {!image}); a durable journalfs then
    replays its write-ahead log before serving anything, and the new
    system's kcrash (if any) accounts for the recovery. *)
val boot_with : ?image:Kvfs.Block_dev.image -> Config.t -> t

(** The persistent payload store behind this system's journalfs — what
    a power-loss survivor gets to rebuild from.  A deep copy: later
    writes to the running system do not retroactively change it.
    [None] unless the system booted a Journalfs flavor. *)
val image : t -> Kvfs.Block_dev.image option

(** Crash-consistent reboot: boot a fresh system from this one's config
    and persistent {!image} alone.  Everything volatile — processes,
    page cache, heap, locks, in-flight ring state — is gone, exactly as
    after a power loss; a durable journalfs replays its WAL on mount. *)
val reboot : t -> t

(** Called with every system {!boot_with} constructs, before it is returned.
    Harnesses (e.g. the bench driver) hook this to aggregate kstats
    across the many systems a run boots.  Defaults to a no-op. *)
val on_boot : (t -> unit) ref

(** Attach the event-monitoring stack (installs a dispatcher into the
    kernel's log_event indirection; [ring] enables the user-space feed). *)
val enable_monitoring : ?ring:bool -> t -> Kmonitor.Dispatcher.t

val disable_monitoring : t -> unit

(** A Cosy kernel extension bound to this system. *)
val cosy :
  ?shared_size:int ->
  ?policy:Cosy.Cosy_safety.policy ->
  ?user_program:string ->
  t ->
  Cosy.Cosy_exec.t

(** A batched submission/completion ring bound to this system (costs
    the one-time setup crossing). *)
val ring :
  ?sq_entries:int ->
  ?cq_entries:int ->
  ?shared_size:int ->
  ?policy:Cosy.Cosy_safety.policy ->
  t ->
  Kring.t

(** Attach an strace-style recorder. *)
val trace : t -> Ktrace.Recorder.t

(** A periodic kstats snapshot feed into the monitoring event stream
    (requires {!enable_monitoring} for the events to flow). *)
val stats_feed : ?interval:int -> t -> Kmonitor.Stats_feed.t

(** Mirror kperf span begin/end events into the monitoring event stream
    as Custom instrument events (requires {!enable_monitoring} for them
    to reach the ring; see {!Kmonitor.Perf_bridge}). *)
val perf_feed : t -> Kmonitor.Perf_bridge.t

(** Mirror kfault fires into the monitoring event stream as Custom
    instrument events (requires {!enable_monitoring} for them to reach
    the ring; see {!Kmonitor.Fault_feed}). *)
val fault_feed : t -> Kmonitor.Fault_feed.t

(** Mirror kcrash events (contained oops, power loss, recovery) into
    the monitoring event stream (see {!Kmonitor.Crash_feed}).  [None]
    when the system booted without a crash config. *)
val crash_feed : t -> Kmonitor.Crash_feed.t option

(** Render the /proc-style metrics report for this system. *)
val pp_stats : Format.formatter -> t -> unit

(** Render elapsed/user/system like time(1). *)
val pp_times : Format.formatter -> Ksim.Kernel.times -> unit
