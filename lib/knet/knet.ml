(* knet: deterministic, cycle-accounted sockets for the simulated kernel.

   The server half (listeners, backlogs, bounded per-connection buffers,
   level-triggered epoll) is real data structures; the client half is a
   discrete-event traffic generator on a global min-heap keyed by
   (due-cycle, insertion-seq), so a run is a deterministic function of
   the installed traffic specs and the cost model.  Blocking epoll_wait
   advances the simulated clock as I/O wait — the process is asleep on a
   wait queue until the "NIC" delivers something interesting. *)

module Kernel = Ksim.Kernel
module Kproc = Ksim.Kproc
module Instrument = Ksim.Instrument
module V = Kvfs.Vtypes

let handle_base = 0x4000_0000
let ep_in = 1
let ep_out = 2
let ep_hup = 4

(* Custom instrument kind for backlog overflow (kstats snapshots use 9). *)
let backlog_drop_kind = 10
let () = Instrument.register_custom_name backlog_drop_kind "net-backlog-drop"

(* A byte FIFO over Buffer: append at the tail, consume a prefix. *)
module Bq = struct
  type t = { buf : Buffer.t; mutable off : int }

  let create () = { buf = Buffer.create 64; off = 0 }
  let length q = Buffer.length q.buf - q.off

  let push_sub q s pos len = Buffer.add_substring q.buf s pos len
  let push_bytes_sub q b pos len = Buffer.add_subbytes q.buf b pos len

  let take q n =
    let n = min n (length q) in
    let b = Bytes.of_string (Buffer.sub q.buf q.off n) in
    q.off <- q.off + n;
    if q.off = Buffer.length q.buf then (Buffer.clear q.buf; q.off <- 0);
    b
end

module Heap = struct
  (* Binary min-heap on (due, seq): FIFO among events due the same cycle. *)
  type 'a t = { mutable arr : (int * int * 'a) option array; mutable len : int }

  let create () = { arr = Array.make 64 None; len = 0 }
  let is_empty h = h.len = 0
  let get h i = match h.arr.(i) with Some e -> e | None -> assert false

  let less (d1, s1, _) (d2, s2, _) = d1 < d2 || (d1 = d2 && s1 < s2)

  let push h due seq ev =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) None in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- Some (due, seq, ev);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      if less (get h !i) (get h p) then begin
        let tmp = h.arr.(!i) in
        h.arr.(!i) <- h.arr.(p);
        h.arr.(p) <- tmp;
        i := p;
        true
      end
      else false
    do
      ()
    done

  let peek h = if h.len = 0 then None else Some (get h 0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = get h 0 in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- None;
      let i = ref 0 in
      let continue = ref (h.len > 1) in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less (get h l) (get h !smallest) then smallest := l;
        if r < h.len && less (get h r) (get h !smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!i) in
          h.arr.(!i) <- h.arr.(!smallest);
          h.arr.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

(* One simulated client driving one connection. *)
type client = {
  cl_seq : int;                      (* arrival index within its port *)
  cl_port : int;
  cl_total : int;                    (* requests it will issue *)
  cl_pipeline : int;
  cl_think : int;
  cl_req_of : int -> string;
  mutable cl_conn : int;             (* conn sock id; -1 before connect *)
  mutable cl_sent : int;
  mutable cl_done : int;
  cl_hdr : Bytes.t;                  (* 8-byte response length accumulator *)
  mutable cl_hdr_got : int;
  mutable cl_body_left : int;
  cl_sent_at : int Queue.t;          (* client-side send instants, FIFO *)
  cl_span : int Queue.t;             (* kperf async span ids, same FIFO *)
  cl_resp : Buffer.t;                (* raw response stream until digest *)
  mutable cl_finished : bool;
  mutable cl_fails : int;            (* consecutive failures, drives backoff *)
  mutable cl_txq : string list;      (* unacked tx data, strict FIFO: a
                                        retransmitted frame keeps its place
                                        at the head, so later pipelined
                                        frames cannot overtake it *)
}

type conn = {
  cn_id : int;
  cn_port : int;
  cn_recv : Bq.t;                    (* client -> server *)
  cn_send : Bq.t;                    (* server -> client, awaiting drain *)
  mutable cn_peer_closed : bool;
  mutable cn_closed : bool;
  mutable cn_accepted : bool;
  mutable cn_drain_scheduled : bool;
  mutable cn_client : client option;
}

type listener = {
  l_id : int;
  l_port : int;
  mutable l_backlog : int;
  l_queue : int Queue.t;             (* conn ids awaiting accept *)
  mutable l_drops : int;
}

type sock =
  | S_new of { mutable sn_port : int }
  | S_listen of listener
  | S_conn of conn

type ep = { ep_interest : (int, int * int) Hashtbl.t (* sock -> mask, cookie *) }

type ev =
  | Ev_connect of client
  | Ev_deliver of client
      (* a delivery tick: the payload lives in [cl_txq], not the event,
         so per-connection byte order survives retransmit delays *)
  | Ev_drain of int

type port_state = {
  ps_conns : int;
  mutable ps_completed : int;
  mutable ps_responses : int;
  mutable ps_drops : int;
  mutable ps_retrans : int;          (* wire frames lost and re-sent *)
  ps_digests : string array;         (* per-connection, arrival order *)
}

type t = {
  kn : Kernel.t;
  rcvbuf : int;
  sndbuf : int;
  socks : (int, sock) Hashtbl.t;
  eps : (int, ep) Hashtbl.t;
  ports : (int, int) Hashtbl.t;      (* port -> listener sock id *)
  heap : ev Heap.t;
  mutable seq : int;                 (* heap insertion tiebreaker *)
  mutable next_id : int;
  traffic : (int, port_state) Hashtbl.t;
  mutable stage : Bytes.t;           (* shared transmit staging region *)
  (* kstats handles *)
  stats : Kstats.t;
  st_conns : Kstats.counter;
  st_accepts : Kstats.counter;
  st_drops : Kstats.counter;
  st_sendq_full : Kstats.counter;
  st_rcvq_full : Kstats.counter;
  st_bytes_in : Kstats.counter;
  st_bytes_out : Kstats.counter;
  st_epoll_waits : Kstats.counter;
  st_epoll_wakeups : Kstats.counter;
  st_sendfile_bytes : Kstats.counter;
  st_stage_hw : Kstats.gauge;
  st_latency : Kstats.hist;
  st_redials : Kstats.counter;
  st_retransmits : Kstats.counter;
  st_backoff_cycles : Kstats.counter;
  fault : Kfault.t;
  site_wire_drop : Kfault.site;
  site_recv_short : Kfault.site;
}

let create ?(rcvbuf = 16 * 1024) ?(sndbuf = 32 * 1024) kn =
  let stats = Kernel.stats kn in
  {
    kn;
    rcvbuf;
    sndbuf;
    socks = Hashtbl.create 64;
    eps = Hashtbl.create 4;
    ports = Hashtbl.create 4;
    heap = Heap.create ();
    seq = 0;
    next_id = 1;
    traffic = Hashtbl.create 4;
    stage = Bytes.create 0;
    stats;
    st_conns = Kstats.counter stats "net.conns";
    st_accepts = Kstats.counter stats "net.accepts";
    st_drops = Kstats.counter stats "net.backlog_drops";
    st_sendq_full = Kstats.counter stats "net.sendq_full";
    st_rcvq_full = Kstats.counter stats "net.rcvq_full";
    st_bytes_in = Kstats.counter stats "net.bytes_in";
    st_bytes_out = Kstats.counter stats "net.bytes_out";
    st_epoll_waits = Kstats.counter stats "net.epoll.waits";
    st_epoll_wakeups = Kstats.counter stats "net.epoll.wakeups";
    st_sendfile_bytes = Kstats.counter stats "net.sendfile.bytes";
    st_stage_hw = Kstats.gauge stats "net.sendfile.stage_high_water";
    st_latency = Kstats.histogram stats "net.request.latency";
    st_redials = Kstats.counter stats "retry.net_redials";
    st_retransmits = Kstats.counter stats "retry.net_retransmits";
    st_backoff_cycles = Kstats.counter stats "retry.net_backoff_cycles";
    fault = Kernel.fault kn;
    site_wire_drop = Kfault.register (Kernel.fault kn) "net.wire_drop";
    site_recv_short = Kfault.register (Kernel.fault kn) "net.recv_short";
  }

let kernel t = t.kn
let now t = Kernel.now t.kn
let charge t = Kernel.charge_kernel t.kn (Kernel.cost t.kn).net_op
let wire t = (Kernel.cost t.kn).wire_latency

let push_ev t due ev =
  t.seq <- t.seq + 1;
  Heap.push t.heap (max due (now t)) t.seq ev

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let pending_events t = t.heap.Heap.len

(* ---------- client side (runs at event-processing time) ---------- *)

let port_state t port = Hashtbl.find_opt t.traffic port

let schedule_request t cl ~req ~send_at =
  Queue.push send_at cl.cl_sent_at;
  (* a request outlives any single syscall — send, kernel-side service,
     drain, client rx can each happen in different kernel stays — so it
     is an *async* span, keyed by id on its own Perfetto track *)
  Queue.push
    (Kperf.async_begin (Kernel.perf t.kn) ~arg:cl.cl_port ~cat:"net"
       ~name:"request" ())
    cl.cl_span;
  cl.cl_txq <- cl.cl_txq @ [ cl.cl_req_of req ];
  push_ev t (send_at + wire t) (Ev_deliver cl)

let response_done t cl =
  cl.cl_done <- cl.cl_done + 1;
  (match Queue.take_opt cl.cl_sent_at with
  | Some sent -> Kstats.observe t.stats t.st_latency (now t - sent)
  | None -> ());
  (match Queue.take_opt cl.cl_span with
  | Some span -> Kperf.async_end (Kernel.perf t.kn) ~arg:cl.cl_port span
  | None -> ());
  (match port_state t cl.cl_port with
  | Some ps -> ps.ps_responses <- ps.ps_responses + 1
  | None -> ());
  if cl.cl_done >= cl.cl_total then begin
    cl.cl_finished <- true;
    (match port_state t cl.cl_port with
    | Some ps ->
        ps.ps_digests.(cl.cl_seq) <-
          Digest.to_hex (Digest.string (Buffer.contents cl.cl_resp));
        ps.ps_completed <- ps.ps_completed + 1
    | None -> ());
    Buffer.clear cl.cl_resp;
    (* FIN rides the final ack: the server sees EOF once it drains. *)
    match Hashtbl.find_opt t.socks cl.cl_conn with
    | Some (S_conn c) -> c.cn_peer_closed <- true
    | _ -> ()
  end
  else if cl.cl_sent < cl.cl_total then begin
    let send_at = now t + cl.cl_think in
    schedule_request t cl ~req:cl.cl_sent ~send_at;
    cl.cl_sent <- cl.cl_sent + 1
  end

(* Parse drained bytes against the 8-byte-length + body framing. *)
let client_rx t cl (b : Bytes.t) =
  Buffer.add_bytes cl.cl_resp b;
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len && not cl.cl_finished do
    if cl.cl_body_left > 0 then begin
      let n = min cl.cl_body_left (len - !pos) in
      cl.cl_body_left <- cl.cl_body_left - n;
      pos := !pos + n;
      if cl.cl_body_left = 0 then response_done t cl
    end
    else begin
      let n = min (8 - cl.cl_hdr_got) (len - !pos) in
      Bytes.blit b !pos cl.cl_hdr cl.cl_hdr_got n;
      cl.cl_hdr_got <- cl.cl_hdr_got + n;
      pos := !pos + n;
      if cl.cl_hdr_got = 8 then begin
        cl.cl_body_left <- Int64.to_int (Bytes.get_int64_le cl.cl_hdr 0);
        cl.cl_hdr_got <- 0;
        if cl.cl_body_left = 0 then response_done t cl
      end
    end
  done

(* ---------- NIC-side injection ---------- *)

type connect_result = C_ok of int * int | C_drop of int | C_refused

let connect_attempt t ~port ~client =
  match Hashtbl.find_opt t.ports port with
  | None -> C_refused
  | Some lid -> (
      match Hashtbl.find_opt t.socks lid with
      | Some (S_listen l) when l.l_backlog > 0 ->
          if Queue.length l.l_queue >= l.l_backlog then begin
            l.l_drops <- l.l_drops + 1;
            Kstats.incr t.stats t.st_drops;
            (match port_state t port with
            | Some ps -> ps.ps_drops <- ps.ps_drops + 1
            | None -> ());
            Instrument.emit ~obj:port ~value:l.l_drops
              ~kind:(Instrument.Custom backlog_drop_kind) ~file:"knet.ml"
              ~line:0 ();
            Kperf.instant (Kernel.perf t.kn) ~arg:port ~cat:"net"
              ~name:"backlog_drop" ();
            C_drop lid
          end
          else begin
            let id = fresh_id t in
            let c =
              {
                cn_id = id;
                cn_port = port;
                cn_recv = Bq.create ();
                cn_send = Bq.create ();
                cn_peer_closed = false;
                cn_closed = false;
                cn_accepted = false;
                cn_drain_scheduled = false;
                cn_client = client;
              }
            in
            Hashtbl.replace t.socks id (S_conn c);
            Queue.push id l.l_queue;
            Kstats.incr t.stats t.st_conns;
            C_ok (lid, id)
          end
      | _ -> C_refused)

let inject_connect t ~port =
  match connect_attempt t ~port ~client:None with
  | C_ok (_, id) -> Some id
  | C_drop _ | C_refused -> None

(* Errno-carrying variant: the two rejection paths are distinct — a SYN
   dropped by a full backlog looks like a timeout to the client, while a
   port nobody listens on is actively refused. *)
let inject_connect_result t ~port =
  match connect_attempt t ~port ~client:None with
  | C_ok (_, id) -> Ok id
  | C_drop _ -> Error V.ETIMEDOUT
  | C_refused -> Error V.ECONNREFUSED

let deliver_bytes t c s pos len =
  let space = t.rcvbuf - Bq.length c.cn_recv in
  let n = min space len in
  if n < len then Kstats.incr t.stats t.st_rcvq_full;
  if n > 0 then begin
    Bq.push_sub c.cn_recv s pos n;
    Kstats.add t.stats t.st_bytes_in n
  end;
  n

let inject_bytes t ~sock s =
  match Hashtbl.find_opt t.socks sock with
  | Some (S_conn c) when not c.cn_closed ->
      deliver_bytes t c s 0 (String.length s)
  | _ -> 0

let inject_fin t ~sock =
  match Hashtbl.find_opt t.socks sock with
  | Some (S_conn c) -> c.cn_peer_closed <- true
  | _ -> ()

(* ---------- event processing ---------- *)

(* Exponential backoff for a client's consecutive failures: the first
   retry keeps the historical 4*wire delay, each further consecutive
   failure doubles it (capped at 32*wire), and any success resets the
   streak.  The extra wait is pure simulated elapsed time — the client
   is asleep, not burning CPU — counted in retry.net_backoff_cycles. *)
let backoff_delay t cl =
  let base = 4 * wire t in
  let d = base * (1 lsl min cl.cl_fails 3) in
  if d > base then Kstats.add t.stats t.st_backoff_cycles (d - base);
  cl.cl_fails <- cl.cl_fails + 1;
  d

(* Returns the sock ids whose readiness the event may have changed. *)
let process_event t = function
  | Ev_connect cl -> (
      match connect_attempt t ~port:cl.cl_port ~client:(Some cl) with
      | C_ok (lid, id) ->
          cl.cl_fails <- 0;
          cl.cl_conn <- id;
          let burst = min cl.cl_pipeline cl.cl_total in
          for k = 0 to burst - 1 do
            (* tiny per-request skew keeps deliveries ordered *)
            schedule_request t cl ~req:k ~send_at:(now t + (k * 16))
          done;
          cl.cl_sent <- burst;
          [ lid; id ]
      | C_drop lid ->
          (* client backs off and redials *)
          Kstats.incr t.stats t.st_redials;
          push_ev t (now t + backoff_delay t cl) (Ev_connect cl);
          [ lid ]
      | C_refused ->
          Kstats.incr t.stats t.st_redials;
          push_ev t (now t + backoff_delay t cl) (Ev_connect cl);
          [])
  | Ev_deliver cl -> (
      match (Hashtbl.find_opt t.socks cl.cl_conn, cl.cl_txq) with
      | Some (S_conn c), data :: rest when not c.cn_closed ->
          if Kfault.fire t.fault t.site_wire_drop then begin
            (* the frame vanishes on the wire; the client's retransmit
               timer re-sends the whole payload after a backoff.  The
               data stays at the head of the tx queue, so pipelined
               frames behind it wait their turn, as TCP's sequence
               numbers would make them *)
            Kstats.incr t.stats t.st_retransmits;
            (match port_state t cl.cl_port with
            | Some ps -> ps.ps_retrans <- ps.ps_retrans + 1
            | None -> ());
            Kperf.instant (Kernel.perf t.kn) ~arg:cl.cl_port ~cat:"retry"
              ~name:"net.retransmit" ();
            push_ev t (now t + backoff_delay t cl) (Ev_deliver cl);
            [ c.cn_id ]
          end
          else begin
            cl.cl_fails <- 0;
            let len = String.length data in
            let n = deliver_bytes t c data 0 len in
            if n < len then begin
              cl.cl_txq <- String.sub data n (len - n) :: rest;
              push_ev t (now t + (max 1 (wire t / 4))) (Ev_deliver cl)
            end
            else cl.cl_txq <- rest;
            [ c.cn_id ]
          end
      | _ -> [])
  | Ev_drain id -> (
      match Hashtbl.find_opt t.socks id with
      | Some (S_conn c) ->
          c.cn_drain_scheduled <- false;
          let n = Bq.length c.cn_send in
          if n > 0 then begin
            let b = Bq.take c.cn_send n in
            Kstats.add t.stats t.st_bytes_out n;
            match c.cn_client with
            | Some cl when not cl.cl_finished -> client_rx t cl b
            | _ -> ()
          end;
          [ id ]
      | None | Some (S_new _) | Some (S_listen _) -> [])

let pump t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | Some (due, _, _) when due <= now t ->
        (match Heap.pop t.heap with
        | Some (_, _, ev) -> ignore (process_event t ev)
        | None -> ())
    | _ -> continue := false
  done

(* Advance the clock (I/O wait) to the next event and process it. *)
let advance_and_process t =
  match Heap.pop t.heap with
  | None -> []
  | Some (due, _, ev) ->
      if due > now t then Kernel.charge_io t.kn (due - now t);
      process_event t ev

let step t =
  if Heap.is_empty t.heap then false
  else begin
    ignore (advance_and_process t);
    true
  end

(* ---------- socket operations ---------- *)

let socket t =
  charge t;
  let id = fresh_id t in
  Hashtbl.replace t.socks id (S_new { sn_port = 0 });
  id

let bind t ~sock ~port =
  charge t;
  match Hashtbl.find_opt t.socks sock with
  | Some (S_new s) ->
      if port <= 0 then Error V.EINVAL
      else if Hashtbl.mem t.ports port then Error V.EADDRINUSE
      else begin
        s.sn_port <- port;
        Hashtbl.replace t.ports port sock;
        Ok ()
      end
  | Some (S_listen _) | Some (S_conn _) -> Error V.EINVAL
  | None -> Error V.EBADF

let listen t ~sock ~backlog =
  charge t;
  match Hashtbl.find_opt t.socks sock with
  | Some (S_new s) ->
      if s.sn_port = 0 then Error V.EINVAL
      else if backlog <= 0 then Error V.EINVAL
      else begin
        Hashtbl.replace t.socks sock
          (S_listen
             {
               l_id = sock;
               l_port = s.sn_port;
               l_backlog = backlog;
               l_queue = Queue.create ();
               l_drops = 0;
             });
        Ok ()
      end
  | Some (S_listen l) ->
      l.l_backlog <- backlog;
      Ok ()
  | Some (S_conn _) -> Error V.EINVAL
  | None -> Error V.EBADF

let accept t ~sock =
  charge t;
  match Hashtbl.find_opt t.socks sock with
  | Some (S_listen l) -> (
      match Queue.take_opt l.l_queue with
      | Some id ->
          (match Hashtbl.find_opt t.socks id with
          | Some (S_conn c) -> c.cn_accepted <- true
          | _ -> ());
          Kstats.incr t.stats t.st_accepts;
          Kperf.instant (Kernel.perf t.kn) ~arg:id ~cat:"net" ~name:"accept"
            ();
          Ok id
      | None -> Error V.EAGAIN)
  | Some (S_new _) | Some (S_conn _) -> Error V.EINVAL
  | None -> Error V.EBADF

let conn_of t sock =
  match Hashtbl.find_opt t.socks sock with
  | Some (S_conn c) -> Ok c
  | Some (S_new _) | Some (S_listen _) -> Error V.ENOTSOCK
  | None -> Error V.EBADF

let recv t ~sock ~len =
  charge t;
  match conn_of t sock with
  | Error _ as e -> e |> Result.map (fun _ -> Bytes.empty)
  | Ok c ->
      let avail = Bq.length c.cn_recv in
      if avail = 0 then
        if c.cn_peer_closed then Ok Bytes.empty else Error V.EAGAIN
      else begin
        let want = min (max 0 len) avail in
        (* injected short read: the NIC handed over only part of the
           queued bytes; callers loop on recv, so streams stay intact *)
        let want =
          if want > 1 && Kfault.fire t.fault t.site_recv_short then
            (want + 1) / 2
          else want
        in
        Ok (Bq.take c.cn_recv want)
      end

let schedule_drain t c =
  if (not c.cn_drain_scheduled) && Bq.length c.cn_send > 0 then begin
    c.cn_drain_scheduled <- true;
    push_ev t (now t + wire t) (Ev_drain c.cn_id)
  end

let send_space t ~sock =
  match conn_of t sock with
  | Error _ as e -> e |> Result.map (fun _ -> 0)
  | Ok c -> Ok (t.sndbuf - Bq.length c.cn_send)

let append_out t c data =
  let len = Bytes.length data in
  let space = t.sndbuf - Bq.length c.cn_send in
  let n = min space len in
  if n = 0 && len > 0 then begin
    Kstats.incr t.stats t.st_sendq_full;
    (* a completely full send queue is its own condition (ENOBUFS),
       distinct from the would-block EAGAIN of an empty recv queue *)
    Error V.ENOBUFS
  end
  else begin
    if n < len then Kstats.incr t.stats t.st_sendq_full;
    Bq.push_bytes_sub c.cn_send data 0 n;
    schedule_drain t c;
    Ok n
  end

let send t ~sock ~data =
  charge t;
  match conn_of t sock with
  | Error _ as e -> e |> Result.map (fun _ -> 0)
  | Ok c -> append_out t c data

(* Zero-copy transmit: the payload reaches the send queue through the
   kernel-owned staging region instead of a user buffer, so no
   copy_{from,to}_user bytes are charged (the DMA cost is the caller's,
   mirroring Consolidated.service_sendfile). *)
let send_kernel t ~sock data =
  charge t;
  match conn_of t sock with
  | Error _ as e -> e |> Result.map (fun _ -> 0)
  | Ok c ->
      let len = Bytes.length data in
      if Bytes.length t.stage < len then begin
        let cap = max 4096 len in
        t.stage <- Bytes.create cap
      end;
      Bytes.blit data 0 t.stage 0 len;
      Kstats.set t.stats t.st_stage_hw len;
      let r = append_out t c (Bytes.sub t.stage 0 len) in
      (match r with
      | Ok n -> Kstats.add t.stats t.st_sendfile_bytes n
      | Error _ -> ());
      r

let close t ~sock =
  charge t;
  Hashtbl.iter (fun _ e -> Hashtbl.remove e.ep_interest sock) t.eps;
  if Hashtbl.mem t.eps sock then Hashtbl.remove t.eps sock
  else
    match Hashtbl.find_opt t.socks sock with
    | None -> ()
    | Some (S_new s) ->
        if s.sn_port <> 0 && Hashtbl.find_opt t.ports s.sn_port = Some sock
        then Hashtbl.remove t.ports s.sn_port;
        Hashtbl.remove t.socks sock
    | Some (S_listen l) ->
        if Hashtbl.find_opt t.ports l.l_port = Some sock then
          Hashtbl.remove t.ports l.l_port;
        Queue.iter
          (fun id ->
            match Hashtbl.find_opt t.socks id with
            | Some (S_conn c) ->
                c.cn_closed <- true;
                Hashtbl.remove t.socks id
            | _ -> ())
          l.l_queue;
        Hashtbl.remove t.socks sock
    | Some (S_conn c) ->
        c.cn_closed <- true;
        Hashtbl.remove t.socks sock

(* ---------- epoll ---------- *)

let epoll_create t =
  charge t;
  let id = fresh_id t in
  Hashtbl.replace t.eps id { ep_interest = Hashtbl.create 16 };
  id

let epoll_ctl t ~ep ~sock ~op =
  charge t;
  match Hashtbl.find_opt t.eps ep with
  | None -> Error V.EBADF
  | Some e -> (
      match op with
      | `Add (mask, cookie) ->
          if not (Hashtbl.mem t.socks sock) then Error V.EBADF
          else begin
            Hashtbl.replace e.ep_interest sock (mask, cookie);
            Ok ()
          end
      | `Del ->
          Hashtbl.remove e.ep_interest sock;
          Ok ())

let ready_mask t id =
  match Hashtbl.find_opt t.socks id with
  | Some (S_listen l) -> if Queue.length l.l_queue > 0 then ep_in else 0
  | Some (S_conn c) ->
      let m = ref 0 in
      if Bq.length c.cn_recv > 0 || c.cn_peer_closed then m := !m lor ep_in;
      if c.cn_peer_closed then m := !m lor ep_hup;
      if t.sndbuf - Bq.length c.cn_send > 0 then m := !m lor ep_out;
      !m
  | Some (S_new _) | None -> 0

(* HUP is delivered whether requested or not, as in epoll(7). *)
let effective_ready t id mask = ready_mask t id land (mask lor ep_hup)

let scan t e max =
  let entries =
    Hashtbl.fold
      (fun id (mask, cookie) acc -> (id, mask, cookie) :: acc)
      e.ep_interest []
  in
  let entries =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) entries
  in
  let rec collect n acc = function
    | [] -> List.rev acc
    | _ when n >= max -> List.rev acc
    | (id, mask, cookie) :: rest ->
        let r = effective_ready t id mask in
        if r <> 0 then collect (n + 1) ((cookie, r) :: acc) rest
        else collect n acc rest
  in
  collect 0 [] entries

let epoll_wait t ~ep ~max =
  charge t;
  Kstats.incr t.stats t.st_epoll_waits;
  match Hashtbl.find_opt t.eps ep with
  | None -> Error V.EBADF
  | Some e ->
      pump t;
      let r = scan t e max in
      if r <> [] || Heap.is_empty t.heap then Ok r
      else begin
        (* Nothing ready: sleep on the wait queue until the traffic
           generator wakes us.  Only sockets an event touched are
           re-checked, so a 10k-interest set is not rescanned per
           event. *)
        let p = Kernel.current t.kn in
        let saved = p.Kproc.state in
        p.Kproc.state <- Kproc.Blocked;
        let woken = ref false in
        while (not !woken) && not (Heap.is_empty t.heap) do
          let touched = advance_and_process t in
          if
            List.exists
              (fun id ->
                match Hashtbl.find_opt e.ep_interest id with
                | Some (mask, _) -> effective_ready t id mask <> 0
                | None -> false)
              touched
          then woken := true
        done;
        p.Kproc.state <- saved;
        Kstats.incr t.stats t.st_epoll_wakeups;
        Ok (scan t e max)
      end

(* ---------- traffic generation ---------- *)

module Traffic = struct
  type spec = {
    port : int;
    conns : int;
    requests_per_conn : int;
    pipeline : int;
    start : int;
    spacing : int;
    think : int;
    req_of : conn:int -> req:int -> string;
  }

  let default =
    {
      port = 80;
      conns = 100;
      requests_per_conn = 2;
      pipeline = 2;
      start = 1_000;
      spacing = 2_000;
      think = 0;
      req_of = (fun ~conn ~req -> Printf.sprintf "GET %d:%d\n" conn req);
    }

  let install t spec =
    if spec.conns <= 0 || spec.requests_per_conn <= 0 then
      invalid_arg "Knet.Traffic.install";
    let ps =
      {
        ps_conns = spec.conns;
        ps_completed = 0;
        ps_responses = 0;
        ps_drops = 0;
        ps_retrans = 0;
        ps_digests = Array.make spec.conns "";
      }
    in
    Hashtbl.replace t.traffic spec.port ps;
    for i = 0 to spec.conns - 1 do
      let cl =
        {
          cl_seq = i;
          cl_port = spec.port;
          cl_total = spec.requests_per_conn;
          cl_pipeline = max 1 spec.pipeline;
          cl_think = spec.think;
          cl_req_of = (fun req -> spec.req_of ~conn:i ~req);
          cl_conn = -1;
          cl_sent = 0;
          cl_done = 0;
          cl_hdr = Bytes.create 8;
          cl_hdr_got = 0;
          cl_body_left = 0;
          cl_sent_at = Queue.create ();
          cl_span = Queue.create ();
          cl_txq = [];
          cl_resp = Buffer.create 256;
          cl_finished = false;
          cl_fails = 0;
        }
      in
      push_ev t (now t + spec.start + (i * spec.spacing)) (Ev_connect cl)
    done

  let completed t ~port =
    match port_state t port with Some ps -> ps.ps_completed | None -> 0

  let responses t ~port =
    match port_state t port with Some ps -> ps.ps_responses | None -> 0

  let drops t ~port =
    match port_state t port with Some ps -> ps.ps_drops | None -> 0

  let retransmits t ~port =
    match port_state t port with Some ps -> ps.ps_retrans | None -> 0

  let digest t ~port =
    match port_state t port with
    | Some ps ->
        Digest.to_hex
          (Digest.string (String.concat "," (Array.to_list ps.ps_digests)))
    | None -> Digest.to_hex (Digest.string "")
end
