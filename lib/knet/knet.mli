(** knet: a deterministic, cycle-accounted socket layer on top of ksim.

    The stack simulates the server-visible half of TCP well enough for
    the paper's accounting: listening sockets with bounded accept
    backlogs, per-connection bounded send/receive buffers, and a
    level-triggered epoll-style readiness multiplexer.  The client side
    is a discrete-event traffic generator: connection attempts, request
    bytes and NIC drains are events on a global heap ordered by due
    cycle, processed in deterministic order interleaved with the
    scheduler — an [epoll_wait] with nothing ready blocks by advancing
    the clock (as I/O wait, like a process asleep on a wait queue) to
    the next network event.

    Socket ids live in their own namespace; the syscall layer maps them
    into per-process fd tables at [handle_base + id] so a close(2) can
    tell a socket from a VFS file handle. *)

type t

(** [create kernel] builds an empty stack and registers its [net.*]
    kstats on the kernel's registry.  [rcvbuf]/[sndbuf] bound each
    connection's receive and send queues in bytes. *)
val create : ?rcvbuf:int -> ?sndbuf:int -> Ksim.Kernel.t -> t

val kernel : t -> Ksim.Kernel.t

(** Offset distinguishing socket ids from VFS handles in fd tables. *)
val handle_base : int

(** {1 Readiness mask bits} *)

(** readable: queued bytes, queued accepts, or EOF *)
val ep_in : int

(** writable: room in the send buffer *)
val ep_out : int

(** peer closed its end *)
val ep_hup : int

(** {1 Socket operations}

    Each charges [net_op] kernel cycles.  These are the kernel halves of
    the syscalls; [Sys_net] wraps them behind the boundary. *)

val socket : t -> int

val bind : t -> sock:int -> port:int -> (unit, Kvfs.Vtypes.errno) result
val listen : t -> sock:int -> backlog:int -> (unit, Kvfs.Vtypes.errno) result

(** Pop one queued connection; [EAGAIN] when the backlog is empty. *)
val accept : t -> sock:int -> (int, Kvfs.Vtypes.errno) result

(** Up to [len] bytes from the receive queue.  [Ok] of empty bytes means
    end-of-stream (peer closed and queue drained); [EAGAIN] means no
    bytes yet. *)
val recv : t -> sock:int -> len:int -> (Bytes.t, Kvfs.Vtypes.errno) result

(** Queue bytes toward the peer; returns how many fit ([ENOBUFS] if the
    send buffer is completely full — counted in [net.sendq_full].
    Distinct from the would-block [EAGAIN] of {!recv}/{!accept}). *)
val send : t -> sock:int -> data:Bytes.t -> (int, Kvfs.Vtypes.errno) result

(** Free bytes in the send buffer (0 for a full queue). *)
val send_space : t -> sock:int -> (int, Kvfs.Vtypes.errno) result

(** Kernel-internal send used by the socket sendfile path: the payload
    was staged from the page cache through the shared transmit region,
    so no user-copy bytes are charged; counted in [net.sendfile.bytes]. *)
val send_kernel : t -> sock:int -> Bytes.t -> (int, Kvfs.Vtypes.errno) result

(** Close a socket, epoll instance or listener (idempotent).  Closing a
    listener releases its port and drops the queued connections. *)
val close : t -> sock:int -> unit

(** {1 Epoll} *)

val epoll_create : t -> int

val epoll_ctl :
  t ->
  ep:int ->
  sock:int ->
  op:[ `Add of int * int  (** interest mask, user cookie *) | `Del ] ->
  (unit, Kvfs.Vtypes.errno) result

(** Level-triggered wait: returns up to [max] ready [(cookie, mask)]
    pairs in socket-creation order.  When nothing is ready but network
    events are pending, blocks the current process (clock advances as
    I/O wait) until an event makes a registered socket ready; returns
    [[]] only when the traffic heap is exhausted and nothing is ready. *)
val epoll_wait :
  t -> ep:int -> max:int -> ((int * int) list, Kvfs.Vtypes.errno) result

(** {1 NIC-side injection}

    The raw interface the traffic generator drives; exposed so unit
    tests can hand-craft wire activity.  [inject_connect] returns the
    new connection's socket id, or [None] when the backlog was full
    (counted in [net.backlog_drops] and reported as an
    [Instrument.Custom backlog_drop_kind] event naming the port). *)

val inject_connect : t -> port:int -> int option

(** Like {!inject_connect} but with the rejection reason: [ETIMEDOUT]
    when the backlog dropped the SYN (the client times out), and
    [ECONNREFUSED] when no listener owns the port. *)
val inject_connect_result : t -> port:int -> (int, Kvfs.Vtypes.errno) result

(** Returns how many bytes fit in the receive buffer. *)
val inject_bytes : t -> sock:int -> string -> int

val inject_fin : t -> sock:int -> unit

(** Kind number of the backlog-overflow instrument event (in the
    [Instrument.Custom] space; registered as ["net-backlog-drop"]). *)
val backlog_drop_kind : int

(** {1 Traffic generation} *)

module Traffic : sig
  type spec = {
    port : int;                (** listener the clients dial *)
    conns : int;               (** concurrent client connections *)
    requests_per_conn : int;
    pipeline : int;            (** requests in flight per connection *)
    start : int;               (** cycles until the first connection *)
    spacing : int;             (** inter-arrival gap between connections *)
    think : int;               (** client delay before the next request *)
    req_of : conn:int -> req:int -> string;
        (** request bytes for connection [conn]'s [req]-th request;
            must be deterministic *)
  }

  val default : spec

  (** Schedule [spec.conns] connection attempts on the event heap.
      Clients expect responses framed as an 8-byte little-endian body
      length followed by the body; each completed response feeds the
      [net.request.latency] histogram and a per-connection stream
      digest, and the final response triggers the client's FIN. *)
  val install : t -> spec -> unit

  (** Connections fully served (client got every response, sent FIN). *)
  val completed : t -> port:int -> int

  (** Responses completed across all of the port's connections. *)
  val responses : t -> port:int -> int

  val drops : t -> port:int -> int

  (** Wire frames lost to injected faults and re-sent after backoff —
      the congestion signal a server's load-shedding can watch. *)
  val retransmits : t -> port:int -> int

  (** Digest over every connection's full response byte stream, in
      connection-arrival order — equal iff two runs served byte-identical
      streams. *)
  val digest : t -> port:int -> string
end

(** Network events not yet delivered. *)
val pending_events : t -> int

(** Process every event due at or before the current clock. *)
val pump : t -> unit

(** Advance the clock (as I/O wait) to the next pending event and
    process it; [false] when the heap is empty. *)
val step : t -> bool
