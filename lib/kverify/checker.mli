(** Static admission checker for compounds and ring batches.

    Verifies, before execution, that a program cannot misbehave on
    shape: opcodes decode, syscall arguments match their {!Ksyscall.Sysno}
    descriptors, shared-buffer references stay in bounds, and every loop
    back-edge follows the provably-bounded counted-loop idiom Cosy-GCC
    emits.  A [Verified] program runs with the dynamic watchdog elided;
    a [Rejected] one falls back bit-for-bit to the dynamic path. *)

(** One proven counted loop (op indices inclusive; the body is
    [ops.(l_head) .. ops.(l_back)]).  These are the analysis facts the
    kopt optimizer consumes to hoist per-iteration bounds/shape checks
    out of the body, which the back-edge proof makes sound. *)
type loop = {
  l_head : int;     (** loop head: target of the back-edge *)
  l_guard : int;    (** the guard [Jz] with the forward exit *)
  l_back : int;     (** the back-edge jump itself *)
  l_counter : int;  (** the monotone counter slot *)
}

type verdict =
  | Verified of { ops : int; loops : loop list }
      (** statically checked ops/requests + proven counted loops *)
  | Rejected of string         (** why the analysis could not prove it *)

val is_verified : verdict -> bool

(** Verify an encoded Cosy compound against the shared buffer it will
    run over ([shared_size] bytes). *)
val verify_compound : shared_size:int -> Cosy.Compound.t -> verdict

(** Verify a decoded kring batch.  Batches are straight-line, so this is
    per-request descriptor shape checking. *)
val verify_reqs : Ksyscall.Syscall.req list -> verdict
