(** kverify: admission before execution.

    Two complementary static protections behind one subsystem handle:

    - {b Syscall-flow integrity} (after SFIP): a {!Sfi} automaton
      compiled from a recorded {!Ktrace.Syscall_graph} is installed as
      the {!Ksyscall.Systable} gate, so every dispatch — plain, ring,
      compound, or consolidated — pays one table probe to prove the
      transition was seen during recording.  Violations hit the
      configured {!policy}.
    - {b Static admission} ({!Checker}): compounds and ring batches that
      verify before execution run on the watchdog-elided fast path;
      anything unprovable falls back bit-for-bit.

    Observability: [kverify.checked] / [kverify.violations] /
    [kverify.watchdog_elided] kstats, a kperf instant per violation, and
    [Instrument.Custom] kind {!sfi_violation_kind} on the kmonitor
    stream. *)

module Sfi = Sfi
module Checker = Checker

(** Alias of {!Ksyscall.Usyscall.Flow_violation}: raised out of the
    dispatch paths when the gate kills the offender. *)
exception Flow_violation of { pid : int; sysno : Ksyscall.Sysno.t }

(** What happens to a syscall whose flow transition was never
    recorded. *)
type policy =
  | Kill  (** terminate the offending process (default) *)
  | Deny  (** fail the syscall with [EPERM]; the process survives *)
  | Log   (** count + emit the violation, let the syscall through *)

(** [Instrument.Custom] kind carrying SFI violations ([obj] = attempted
    sysno, [value] = previous sysno or -1). *)
val sfi_violation_kind : int

type t

val create : ?policy:policy -> Ksim.Kernel.t -> t
val policy : t -> policy

(** The automaton to enforce; [None] (the default) allows everything. *)
val set_automaton : t -> Sfi.t option -> unit

val automaton : t -> Sfi.t option

(** Compile an automaton from a recorded trace. *)
val learn : Ktrace.Recorder.t -> Sfi.t

(** Install/remove this instance as the dispatch gate.  With no
    automaton set the gate allows everything but still sits on the
    path; prefer not installing at all for a true zero-cost off
    state. *)
val install : t -> Ksyscall.Systable.t -> unit

val uninstall : t -> Ksyscall.Systable.t -> unit

(** {1 Static admission} — both verifiers charge
    [Cost_model.verify_admit_op] per op/request and bump
    [kverify.watchdog_elided] on success. *)

(** Attach the compound checker to a Cosy extension
    ([Cosy_exec.set_verifier]). *)
val attach_cosy : t -> Cosy.Cosy_exec.t -> unit

(** Batch verifier for [Kring.set_verifier]. *)
val ring_verifier : t -> Ksyscall.Syscall.req list -> bool

(** Compound verifier with an explicit shared-buffer bound (what
    {!attach_cosy} installs). *)
val compound_verifier : t -> shared_size:int -> Cosy.Compound.t -> bool

(** Like {!compound_verifier} (same admission charges and counters) but
    returning the full {!Checker.verdict}, whose [Verified] payload
    carries the analysis facts (proven counted loops) the kopt
    optimizer compiles against. *)
val compound_verdict :
  t -> shared_size:int -> Cosy.Compound.t -> Checker.verdict

(** {1 Counters} (mirrored in kstats when the registry is enabled) *)

val checked : t -> int

val violations : t -> int

val watchdog_elided : t -> int
