(** Syscall-flow integrity automaton (after SFIP, Canella et al. 2022).

    A recorded {!Ktrace.Syscall_graph} compiles into a per-process
    transition automaton over syscall numbers: state = the last syscall
    the process made, and [permits] answers in one array probe and one
    bit test whether the next syscall is a transition the recorded
    program ever takes.  {!Kverify} installs it as the dispatch gate. *)

type t

(** Compile a recorded syscall digraph (vertices become valid start
    states, edges become transitions). *)
val of_graph : Ktrace.Syscall_graph.t -> t

(** Build from explicit transitions.  [vertices] adds extra valid start
    states beyond the edges' endpoints. *)
val of_edges :
  ?vertices:Ksyscall.Sysno.t list ->
  (Ksyscall.Sysno.t * Ksyscall.Sysno.t) list ->
  t

(** [permits t ~prev sysno]: is [sysno] allowed after [prev]?  [None]
    (the process's first syscall) permits any syscall the program uses
    at all. *)
val permits : t -> prev:Ksyscall.Sysno.t option -> Ksyscall.Sysno.t -> bool

(** All transitions, source-ordered. *)
val transitions : t -> (Ksyscall.Sysno.t * Ksyscall.Sysno.t) list

(** All syscalls the automaton considers part of the program. *)
val members : t -> Ksyscall.Sysno.t list

(** Textual persistence for [kverify_tool learn]/[check]. *)
val to_string : t -> string

exception Parse_error of string

(** @raise Parse_error on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
