(* Syscall-flow integrity (after SFIP, Canella et al. 2022): a recorded
   syscall digraph compiled into a transition automaton over Sysno
   integers.  A state is "the last syscall this process made"; the
   automaton answers, in one array probe and one bit test, whether the
   next syscall is a transition the recorded program ever takes.

   Sysno integers are < 63, so each state's successor set is one OCaml
   int used as a bitmask — the whole automaton is an int array, which is
   what makes the per-dispatch check cheap enough to charge at
   [Cost_model.sfi_check] (a table probe plus a bit test). *)

module Sysno = Ksyscall.Sysno

let n_states = List.length Sysno.all

let () = assert (n_states <= 62)

type t = {
  allowed : int array;   (* successor bitmask, indexed by Sysno.to_int *)
  members : int;         (* bitmask: sysnos the program uses at all *)
}

let bit sysno = 1 lsl Sysno.to_int sysno
let test mask sysno = mask land bit sysno <> 0

let of_edges ?(vertices = []) edges =
  let allowed = Array.make n_states 0 in
  let members = ref 0 in
  List.iter (fun v -> members := !members lor bit v) vertices;
  List.iter
    (fun (src, dst) ->
      allowed.(Sysno.to_int src) <- allowed.(Sysno.to_int src) lor bit dst;
      members := !members lor bit src lor bit dst)
    edges;
  { allowed; members = !members }

let of_graph g =
  of_edges
    ~vertices:(List.map fst (Ktrace.Syscall_graph.vertices g))
    (List.map (fun (s, d, _) -> (s, d)) (Ktrace.Syscall_graph.edges g))

(* A process's first syscall has no predecessor: any syscall the program
   uses at all is a valid start state.  After that, only recorded
   transitions pass. *)
let permits t ~prev sysno =
  match prev with
  | None -> test t.members sysno
  | Some p -> test t.allowed.(Sysno.to_int p) sysno

let transitions t =
  let acc = ref [] in
  for s = n_states - 1 downto 0 do
    match Sysno.of_int s with
    | None -> ()
    | Some src ->
        List.iter
          (fun dst ->
            if test t.allowed.(s) dst then acc := (src, dst) :: !acc)
          Sysno.all
  done;
  !acc

let members t = List.filter (test t.members) Sysno.all

(* Textual persistence, for [kverify_tool learn]/[check]: one "v <name>"
   line per member, one "e <src> <dst>" line per transition. *)
let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b "# kverify sfi v1\n";
  List.iter
    (fun v -> Buffer.add_string b ("v " ^ Sysno.to_string v ^ "\n"))
    (members t);
  List.iter
    (fun (s, d) ->
      Buffer.add_string b
        ("e " ^ Sysno.to_string s ^ " " ^ Sysno.to_string d ^ "\n"))
    (transitions t);
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let vertices = ref [] and edges = ref [] in
  let sysno name =
    match Sysno.of_string name with
    | Some v -> v
    | None -> raise (Parse_error ("unknown syscall " ^ name))
  in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | [ "v"; v ] -> vertices := sysno v :: !vertices
           | [ "e"; src; dst ] -> edges := (sysno src, sysno dst) :: !edges
           | _ ->
               raise (Parse_error (Printf.sprintf "line %d: %S" (i + 1) line)));
  of_edges ~vertices:!vertices !edges

let pp ppf t =
  List.iter
    (fun (s, d) -> Fmt.pf ppf "%a -> %a@\n" Sysno.pp s Sysno.pp d)
    (transitions t)
