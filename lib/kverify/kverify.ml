(* The kverify facade: admission before execution.

   One [t] per kernel bundles the two halves of the subsystem — the
   syscall-flow-integrity gate (a {!Sfi} automaton consulted at the
   [Usyscall.invoke] choke point) and the static {!Checker} that admits
   compounds and ring batches onto the watchdog-elided fast path.  All
   observability flows through the kernel's existing rails: kstats
   counters, kperf instants, and an [Instrument.Custom] event kind for
   the kmonitor stream. *)

module Sysno = Ksyscall.Sysno
module Systable = Ksyscall.Systable
module Kernel = Ksim.Kernel

module Sfi = Sfi
module Checker = Checker

(* Re-exported so callers can catch the gate's kill without naming
   ksyscall internals. *)
exception Flow_violation = Ksyscall.Usyscall.Flow_violation

type policy =
  | Kill  (** terminate the offending process (default) *)
  | Deny  (** fail the syscall with [EPERM], process survives *)
  | Log   (** record the violation and let the syscall through *)

let sfi_violation_kind = 13
let () = Ksim.Instrument.register_custom_name sfi_violation_kind "sfi-violation"

type t = {
  kernel : Kernel.t;
  policy : policy;
  mutable automaton : Sfi.t option;
  last : (int, Sysno.t) Hashtbl.t;  (* pid -> last admitted sysno *)
  (* kstats handles (no-ops when the registry is disabled)... *)
  s_checked : Kstats.counter;
  s_violations : Kstats.counter;
  s_elided : Kstats.counter;
  (* ...and unconditional counts, so accessors work either way *)
  mutable n_checked : int;
  mutable n_violations : int;
  mutable n_elided : int;
}

let create ?(policy = Kill) kernel =
  let stats = Kernel.stats kernel in
  {
    kernel;
    policy;
    automaton = None;
    last = Hashtbl.create 64;
    s_checked = Kstats.counter stats "kverify.checked";
    s_violations = Kstats.counter stats "kverify.violations";
    s_elided = Kstats.counter stats "kverify.watchdog_elided";
    n_checked = 0;
    n_violations = 0;
    n_elided = 0;
  }

let policy t = t.policy
let automaton t = t.automaton
let set_automaton t a = t.automaton <- a
let checked t = t.n_checked
let violations t = t.n_violations
let watchdog_elided t = t.n_elided

(* --- the SFI gate ------------------------------------------------------- *)

let violation t ~pid ~prev sysno =
  t.n_violations <- t.n_violations + 1;
  Kstats.incr (Kernel.stats t.kernel) t.s_violations;
  Kperf.instant (Kernel.perf t.kernel) ~pid ~arg:(Sysno.to_int sysno)
    ~cat:"kverify" ~name:"sfi-violation" ();
  Ksim.Instrument.emit ~pid ~obj:(Sysno.to_int sysno)
    ~value:(match prev with Some p -> Sysno.to_int p | None -> -1)
    ~kind:(Ksim.Instrument.Custom sfi_violation_kind)
    ~file:__FILE__ ~line:__LINE__ ();
  match t.policy with
  | Kill ->
      (* the process dies; drop its flow state so a reused pid starts
         fresh *)
      Hashtbl.remove t.last pid;
      Systable.Gate_kill
  | Deny ->
      (* the denied syscall never happened: flow state unchanged *)
      Systable.Gate_deny Kvfs.Vtypes.EPERM
  | Log ->
      (* observe-only: advance state so one stray transition doesn't
         cascade into flagging every subsequent (legitimate) pair *)
      Hashtbl.replace t.last pid sysno;
      Systable.Gate_allow

let gate t : Systable.gate =
 fun ~pid ~sysno ->
  match t.automaton with
  | None -> Systable.Gate_allow
  | Some a ->
      Ksim.Sim_clock.advance (Kernel.clock t.kernel)
        (Kernel.cost t.kernel).Ksim.Cost_model.sfi_check;
      t.n_checked <- t.n_checked + 1;
      Kstats.incr (Kernel.stats t.kernel) t.s_checked;
      let prev = Hashtbl.find_opt t.last pid in
      if Sfi.permits a ~prev sysno then begin
        Hashtbl.replace t.last pid sysno;
        Systable.Gate_allow
      end
      else violation t ~pid ~prev sysno

let install t sys = Systable.set_gate sys (gate t)
let uninstall _t sys = Systable.clear_gate sys

(* --- static admission verifiers ----------------------------------------- *)

let admitted t ~ops =
  Ksim.Sim_clock.advance (Kernel.clock t.kernel)
    (ops * (Kernel.cost t.kernel).Ksim.Cost_model.verify_admit_op);
  t.n_elided <- t.n_elided + 1;
  Kstats.incr (Kernel.stats t.kernel) t.s_elided

(* One admission pass costs [verify_admit_op] per op — charged whether or
   not the program verifies (the checker read every op either way).  The
   verdict form returns the checker's analysis facts, which kopt needs
   to compile the admitted program; the bool form is what plain
   (non-optimizing) admission installs. *)
let compound_verdict t ~shared_size compound =
  match Checker.verify_compound ~shared_size compound with
  | Checker.Verified { ops; _ } as v ->
      admitted t ~ops;
      v
  | Checker.Rejected _ as v ->
      Ksim.Sim_clock.advance (Kernel.clock t.kernel)
        (compound.Cosy.Compound.op_count
        * (Kernel.cost t.kernel).Ksim.Cost_model.verify_admit_op);
      v

let compound_verifier t ~shared_size compound =
  Checker.is_verified (compound_verdict t ~shared_size compound)

let ring_verifier t reqs =
  match Checker.verify_reqs reqs with
  | Checker.Verified { ops; _ } ->
      admitted t ~ops;
      true
  | Checker.Rejected _ ->
      Ksim.Sim_clock.advance (Kernel.clock t.kernel)
        (List.length reqs
        * (Kernel.cost t.kernel).Ksim.Cost_model.verify_admit_op);
      false

let attach_cosy t cx =
  let shared_size = Cosy.Shared_buffer.size (Cosy.Cosy_exec.shared cx) in
  Cosy.Cosy_exec.set_verifier cx (Some (compound_verifier t ~shared_size))

(* --- learning ----------------------------------------------------------- *)

let learn recorder = Sfi.of_graph (Ktrace.Syscall_graph.of_recorder recorder)
