(* Static compound verification (after the eBPF verifier's
   admission-before-execution discipline): prove, before a single op
   runs, that a Cosy compound or a kring batch is well-formed — every
   opcode decodes, every syscall matches its [Sysno] descriptor's
   argument shape, every shared-buffer reference is in bounds, and every
   loop back-edge is provably bounded.  Programs that pass run with the
   dynamic watchdog elided; anything the analysis cannot prove falls
   back to the dynamic path, so the checker only ever *subtracts* work.

   The analysis is deliberately conservative.  Boundedness in particular
   recognises exactly the counted-loop idiom Cosy-GCC emits —

       l_cond:  c := i < N          (comparison into a fixed slot)
                jz c -> l_end       (forward exit past the back-edge)
                ...body...
                t := i + k          (k > 0)
                i := t              (the only write to i in the loop)
                jmp l_cond

   — and rejects everything else (Call_user, arbitrary jumps, loops
   whose counter is written elsewhere).  That is enough to admit every
   compound the repo's own generators produce while refusing any
   hand-crafted unbounded one. *)

module Sysno = Ksyscall.Sysno
module Syscall = Ksyscall.Syscall
module Cosy_op = Cosy.Cosy_op
module Compound = Cosy.Compound

(* One proven counted loop: the analysis facts the kopt optimizer needs
   to hoist the per-iteration bounds/shape checks out of the body.  Op
   indices are inclusive; the loop body is ops[head..back]. *)
type loop = {
  l_head : int;     (* loop head: target of the back-edge *)
  l_guard : int;    (* the guard Jz with the forward exit *)
  l_back : int;     (* the back-edge jump itself *)
  l_counter : int;  (* the monotone counter slot *)
}

type verdict =
  | Verified of { ops : int; loops : loop list }
      (* ops statically checked at admission, plus every back-edge's
         proven counted loop *)
  | Rejected of string

let is_verified = function Verified _ -> true | Rejected _ -> false

(* --- argument-shape descriptors ---------------------------------------- *)

(* The shape of one compound syscall argument, derived from the typed
   [Syscall.req] constructor the op lowers to. *)
type shape =
  | A_int      (* Const / Slot / Shared-as-offset *)
  | A_str      (* path: immediate string or NUL-terminated shared bytes *)
  | A_out      (* output buffer: shared or null (discard) *)
  | A_in       (* input payload: shared or immediate *)

(* Per-syscall argument shapes, keyed by [Sysno]; mirrors the lowering
   in [Cosy_exec.do_syscall] one for one. *)
let compound_shapes : (Sysno.t * shape list) list =
  [
    (Sysno.Open, [ A_str; A_int ]);
    (Sysno.Close, [ A_int ]);
    (Sysno.Read, [ A_int; A_out; A_int ]);
    (Sysno.Write, [ A_int; A_in; A_int ]);
    (Sysno.Pread, [ A_int; A_out; A_int; A_int ]);
    (Sysno.Pwrite, [ A_int; A_in; A_int; A_int ]);
    (Sysno.Lseek, [ A_int; A_int; A_int ]);
    (Sysno.Stat, [ A_str ]);
    (Sysno.Fstat, [ A_int ]);
    (Sysno.Readdir, [ A_str; A_out ]);
    (Sysno.Mkdir, [ A_str ]);
    (Sysno.Unlink, [ A_str ]);
    (Sysno.Rename, [ A_str; A_str ]);
    (Sysno.Fsync, [ A_int ]);
    (Sysno.Getpid, []);
  ]

let reject fmt = Fmt.kstr (fun m -> Error m) fmt

let check_arg ~shared_size ~slot_count what shape (arg : Cosy_op.arg) =
  let shared_ok off = off >= 0 && off < shared_size in
  match (shape, arg) with
  | A_int, Cosy_op.Const _ -> Ok ()
  | A_int, Cosy_op.Slot i ->
      if i >= 0 && i < slot_count then Ok ()
      else reject "%s: slot %d out of range" what i
  | A_int, Cosy_op.Shared off ->
      if shared_ok off then Ok ()
      else reject "%s: shared offset %d out of bounds" what off
  | A_int, Cosy_op.Str _ -> reject "%s: string where an int is expected" what
  | A_str, Cosy_op.Str _ -> Ok ()
  | A_str, Cosy_op.Shared off ->
      if shared_ok off then Ok ()
      else reject "%s: shared string offset %d out of bounds" what off
  | A_str, (Cosy_op.Const _ | Cosy_op.Slot _) ->
      reject "%s: path must be immediate or shared" what
  | A_out, Cosy_op.Shared off ->
      if shared_ok off then Ok ()
      else reject "%s: output buffer offset %d out of bounds" what off
  | A_out, Cosy_op.Const 0 -> Ok ()   (* discard *)
  | A_out, _ -> reject "%s: output buffer must be shared or null" what
  | A_in, Cosy_op.Shared off ->
      if shared_ok off then Ok ()
      else reject "%s: input buffer offset %d out of bounds" what off
  | A_in, Cosy_op.Str _ -> Ok ()
  | A_in, _ -> reject "%s: input buffer must be shared or immediate" what

(* --- bounded back-edges ------------------------------------------------- *)

(* The slot an op writes, if any. *)
let written_slot = function
  | Cosy_op.Set { dst; _ }
  | Cosy_op.Arith { dst; _ }
  | Cosy_op.Syscall { dst; _ }
  | Cosy_op.Call_user { dst; _ } ->
      Some dst
  | Cosy_op.Jmp _ | Cosy_op.Jz _ | Cosy_op.Halt -> None

(* Is [slot] written anywhere in ops[lo..hi], other than at the indices
   in [except]? *)
let written_in ops ~lo ~hi ~except slot =
  let hit = ref false in
  for i = lo to hi do
    if (not (List.mem i except)) && written_slot ops.(i) = Some slot then
      hit := true
  done;
  !hit

(* One recognised loop-counter update ending at index [j]: either the
   single-op form [i := i + k] or Cosy-GCC's two-op form
   [t := i +/- k; i := t].  Returns the op indices involved and the
   signed step. *)
let counter_update ops ~lo ~hi i =
  let step_of op =
    match op with
    | Cosy_op.Arith { dst; op = Cosy_op.Aadd; a; b } -> (
        match (a, b) with
        | Cosy_op.Slot s, Cosy_op.Const k when s = i -> Some (dst, k)
        | Cosy_op.Const k, Cosy_op.Slot s when s = i -> Some (dst, k)
        | _ -> None)
    | Cosy_op.Arith { dst; op = Cosy_op.Asub; a = Cosy_op.Slot s; b = Cosy_op.Const k }
      when s = i ->
        Some (dst, -k)
    | _ -> None
  in
  let found = ref None in
  for j = lo to hi do
    match step_of ops.(j) with
    | Some (dst, k) when dst = i ->
        (* direct form: i := i + k *)
        found := Some ([ j ], k)
    | Some (tmp, k) ->
        (* two-op form: find the i := t that consumes it *)
        for j' = j + 1 to hi do
          match ops.(j') with
          | Cosy_op.Set { dst; src = Cosy_op.Slot s }
            when dst = i && s = tmp
                 && not (written_in ops ~lo:(j + 1) ~hi:(j' - 1) ~except:[] tmp)
            ->
              found := Some ([ j; j' ], k)
          | _ -> ()
        done
    | None -> ()
  done;
  !found

(* Prove the back-edge at index [j] (jumping to [tpos <= j]) bounded:
   find the guard comparison + forward exit at the loop head, the
   counter's monotone update in the body, and no other write to the
   counter (or to a slot-held bound) inside the loop. *)
let backedge_bounded ops ~tpos ~j =
  (* the guard: first Jz whose target exits forward past the back-edge *)
  let guard = ref None in
  (try
     for g = tpos to j - 1 do
       match ops.(g) with
       | Cosy_op.Jz { cond = Cosy_op.Slot c; target } when target > j ->
           guard := Some (g, c);
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  match !guard with
  | None -> reject "back-edge at op %d: no forward exit guard" j
  | Some (g, c) -> (
      (* the comparison defining the guard slot, between tpos and g *)
      let cmp = ref None in
      for d = tpos to g - 1 do
        match ops.(d) with
        | Cosy_op.Arith { dst; op; a; b } when dst = c -> cmp := Some (d, op, a, b)
        | _ -> ()
      done;
      match !cmp with
      | None -> reject "back-edge at op %d: guard slot r%d has no comparison" j c
      | Some (d, op, a, b) -> (
          (* identify counter slot and bound operand *)
          let counted =
            match (op, a, b) with
            | (Cosy_op.Alt | Cosy_op.Ale), Cosy_op.Slot i, bound ->
                Some (i, bound, `Up)     (* continue while i < / <= bound *)
            | (Cosy_op.Agt | Cosy_op.Age), Cosy_op.Slot i, bound ->
                Some (i, bound, `Down)   (* continue while i > / >= bound *)
            | (Cosy_op.Agt | Cosy_op.Age), bound, Cosy_op.Slot i ->
                Some (i, bound, `Up)     (* bound > i === i < bound *)
            | (Cosy_op.Alt | Cosy_op.Ale), bound, Cosy_op.Slot i ->
                Some (i, bound, `Down)
            | _ -> None
          in
          match counted with
          | None ->
              reject "back-edge at op %d: guard is not a counted comparison" j
          | Some (i, bound, dir) -> (
              (* a slot-held bound must itself be loop-invariant *)
              (match bound with
              | Cosy_op.Const _ -> Ok ()
              | Cosy_op.Slot bs ->
                  if written_in ops ~lo:tpos ~hi:j ~except:[] bs then
                    reject "back-edge at op %d: bound r%d written in loop" j bs
                  else Ok ()
              | _ -> reject "back-edge at op %d: non-scalar bound" j)
              |> function
              | Error _ as e -> e
              | Ok () -> (
                  match counter_update ops ~lo:(g + 1) ~hi:(j - 1) i with
                  | None ->
                      reject "back-edge at op %d: counter r%d never advances" j i
                  | Some (update_idxs, k) ->
                      let progresses =
                        match dir with `Up -> k > 0 | `Down -> k < 0
                      in
                      if not progresses then
                        reject
                          "back-edge at op %d: counter r%d steps the wrong way"
                          j i
                      else if
                        (* the comparison op [d] itself writes slot c, and
                           the update ops write i: both are accounted for *)
                        written_in ops ~lo:tpos ~hi:j ~except:update_idxs i
                      then
                        reject
                          "back-edge at op %d: counter r%d written outside its \
                           update" j i
                      else begin
                        ignore d;
                        Ok { l_head = tpos; l_guard = g; l_back = j; l_counter = i }
                      end))))

(* --- compound verification --------------------------------------------- *)

let verify_ops ~shared_size ~slot_count (ops : Cosy_op.op array) =
  let n = Array.length ops in
  let result = ref (Ok ()) in
  let loops = ref [] in
  let fail m = if Result.is_ok !result then result := Error m in
  let check = function Ok () -> () | Error m -> fail m in
  let check_backedge = function
    | Ok loop -> loops := loop :: !loops
    | Error m -> fail m
  in
  Array.iteri
    (fun idx op ->
      let target_ok t = t >= 0 && t <= n in
      match op with
      | Cosy_op.Set { dst; src } ->
          if dst < 0 || dst >= slot_count then
            fail (Printf.sprintf "op %d: set to slot %d out of range" idx dst)
          else
            check
              (check_arg ~shared_size ~slot_count
                 (Printf.sprintf "op %d (set)" idx)
                 A_int src)
      | Cosy_op.Arith { dst; a; b; _ } ->
          if dst < 0 || dst >= slot_count then
            fail (Printf.sprintf "op %d: arith to slot %d out of range" idx dst)
          else begin
            check
              (check_arg ~shared_size ~slot_count
                 (Printf.sprintf "op %d (arith)" idx)
                 A_int a);
            check
              (check_arg ~shared_size ~slot_count
                 (Printf.sprintf "op %d (arith)" idx)
                 A_int b)
          end
      | Cosy_op.Syscall { dst; sysno; args } -> (
          if dst < 0 || dst >= slot_count then
            fail
              (Printf.sprintf "op %d: syscall result slot %d out of range" idx
                 dst)
          else
            match
              Option.bind (Cosy_op.name_of_sysno sysno) Sysno.of_string
            with
            | None -> fail (Printf.sprintf "op %d: bad opcode sys_%d" idx sysno)
            | Some sys -> (
                match List.assoc_opt sys compound_shapes with
                | None ->
                    fail
                      (Printf.sprintf "op %d: %s not callable from a compound"
                         idx (Sysno.to_string sys))
                | Some shapes ->
                    if List.length shapes <> List.length args then
                      fail
                        (Printf.sprintf "op %d: %s takes %d args, got %d" idx
                           (Sysno.to_string sys) (List.length shapes)
                           (List.length args))
                    else
                      List.iter2
                        (fun shape arg ->
                          check
                            (check_arg ~shared_size ~slot_count
                               (Printf.sprintf "op %d (%s)" idx
                                  (Sysno.to_string sys))
                               shape arg))
                        shapes args))
      | Cosy_op.Jmp target ->
          if not (target_ok target) then
            fail (Printf.sprintf "op %d: jump to %d out of range" idx target)
          else if target <= idx then
            check_backedge (backedge_bounded ops ~tpos:target ~j:idx)
      | Cosy_op.Jz { cond; target } ->
          check
            (check_arg ~shared_size ~slot_count
               (Printf.sprintf "op %d (jz)" idx)
               A_int cond);
          if not (target_ok target) then
            fail (Printf.sprintf "op %d: jump to %d out of range" idx target)
          else if target <= idx then
            check_backedge (backedge_bounded ops ~tpos:target ~j:idx)
      | Cosy_op.Call_user { fname; _ } ->
          (* arbitrary user code: not statically verifiable, keep the
             watchdog *)
          fail (Printf.sprintf "op %d: user call %s is not verifiable" idx fname)
      | Cosy_op.Halt -> ())
    ops;
  match !result with
  | Ok () -> Verified { ops = n; loops = List.rev !loops }
  | Error m -> Rejected m

let verify_compound ~shared_size compound =
  match Compound.decode compound with
  | exception Compound.Decode_error m -> Rejected ("decode: " ^ m)
  | ops, slot_count -> verify_ops ~shared_size ~slot_count ops

(* --- kring batch verification ------------------------------------------ *)

(* Shape-check one typed request against its descriptor: every scalar in
   range, every path plausible.  Descriptor validity (does the fd exist,
   is the path present) stays dynamic — admission only proves the
   request cannot make the service routine misbehave on shape. *)
let path_max = 4096

let path_ok p =
  String.length p > 0
  && String.length p < path_max
  && not (String.contains p '\000')

let req_shape_ok (req : Syscall.req) =
  let name = Sysno.to_string (Syscall.sysno_of_req req) in
  let fd_ok fd = fd >= 0 in
  let ok b what = if b then Ok () else reject "%s: %s" name what in
  match req with
  | Syscall.Open { path; _ }
  | Syscall.Stat { path }
  | Syscall.Readdir { path }
  | Syscall.Mkdir { path }
  | Syscall.Unlink { path }
  | Syscall.Readdirplus { path }
  | Syscall.Open_fstat { path; _ } ->
      ok (path_ok path) "malformed path"
  | Syscall.Rename { src; dst } -> ok (path_ok src && path_ok dst) "malformed path"
  | Syscall.Open_read_close { path; maxlen } ->
      if not (path_ok path) then reject "%s: malformed path" name
      else ok (maxlen >= 0) "negative length"
  | Syscall.Open_write_close { path; _ } -> ok (path_ok path) "malformed path"
  | Syscall.Close { fd } | Syscall.Fstat { fd } | Syscall.Fsync { fd } ->
      ok (fd_ok fd) "negative fd"
  | Syscall.Read { fd; len } -> ok (fd_ok fd && len >= 0) "bad fd/length"
  | Syscall.Write { fd; _ } -> ok (fd_ok fd) "negative fd"
  | Syscall.Pread { fd; off; len } ->
      ok (fd_ok fd && off >= 0 && len >= 0) "bad fd/offset/length"
  | Syscall.Pwrite { fd; off; _ } -> ok (fd_ok fd && off >= 0) "bad fd/offset"
  | Syscall.Lseek { fd; _ } -> ok (fd_ok fd) "negative fd"
  | Syscall.Getpid -> Ok ()
  | Syscall.Sendfile { fd; off; len } ->
      ok (fd_ok fd && off >= 0 && len >= 0) "bad fd/offset/length"
  | Syscall.Socket | Syscall.Epoll_create -> Ok ()
  | Syscall.Bind { sock; port } ->
      ok (fd_ok sock && port > 0 && port < 65536) "bad sock/port"
  | Syscall.Listen { sock; backlog } ->
      ok (fd_ok sock && backlog >= 0) "bad sock/backlog"
  | Syscall.Accept { sock } -> ok (fd_ok sock) "negative sock"
  | Syscall.Recv { sock; len } | Syscall.Accept_recv { sock; len } ->
      ok (fd_ok sock && len >= 0) "bad sock/length"
  | Syscall.Send { sock; _ } -> ok (fd_ok sock) "negative sock"
  | Syscall.Recv_send { sock; len; _ } ->
      ok (fd_ok sock && len >= 0) "bad sock/length"
  | Syscall.Sendfile_sock { sock; fd; off; len } ->
      ok (fd_ok sock && fd_ok fd && off >= 0 && len >= 0)
        "bad sock/fd/offset/length"
  | Syscall.Epoll_ctl { ep; sock; _ } ->
      ok (fd_ok ep && fd_ok sock) "negative fd"
  | Syscall.Epoll_wait { ep; max } -> ok (fd_ok ep && max > 0) "bad ep/max"

(* A ring batch is straight-line by construction, so boundedness is
   free; admission is per-request shape checking. *)
let verify_reqs reqs =
  let n = List.length reqs in
  let rec go = function
    | [] -> Verified { ops = n; loops = [] }
    | r :: rest -> (
        match req_shape_ok r with
        | Ok () -> go rest
        | Error m -> Rejected m)
  in
  go reqs
