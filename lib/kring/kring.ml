(* io_uring-style batched syscall submission (after AnyCall, and the
   modern endpoint of the paper's §2 amortization argument).

   User code marshals typed [Syscall.req]s into a submission queue
   backed by the Cosy shared buffer (no crossing), then one
   [sys_ring_enter]-style trap drains the whole queue in kernel mode
   through the same service routines ordinary syscalls use — under the
   Cosy preemption watchdog, since arbitrary batch lengths keep the CPU
   in the kernel just like a compound.  Replies accumulate in the
   completion queue and are reaped from user mode without a crossing.

   Cost shape per batch of N: 1 crossing (plus the one-time ring setup),
   one copy-in of the packed requests, one copy-out of the packed
   replies — versus N crossings and N copy round-trips synchronously. *)

module Syscall = Ksyscall.Syscall
module Sysno = Ksyscall.Sysno

type completion = {
  seq : int;                  (* submission order, ring-wide *)
  sysno : Sysno.t;
  reply : Syscall.reply;
}

(* What the kopt optimizer decides about an admitted batch.
   [fuse_next.(i)] marks batch position [i] as the first half of a
   splice-style pair (recv→send on one socket): both entries drain
   under a single [kopt_fused_op] dispatch charge instead of two
   [ring_verified_op]s.  [coalesce_cq] treats the completion region as
   shared-mapped (it lives in the same zero-copy buffer as the SQ), so
   the batch-end reply copy-out is elided; the saved bytes land in
   [ring.opt.cq_bytes_saved] instead of the copy counters. *)
type plan = {
  fuse_next : bool array;
  coalesce_cq : bool;
}

type t = {
  sys : Ksyscall.Systable.t;
  shared : Cosy.Shared_buffer.t;      (* SQ backing store *)
  safety : Cosy.Cosy_safety.t;
  sq_entries : int;
  cq_entries : int;
  sq : (int * int * int) Queue.t;     (* seq, shared offset, wire len *)
  cq : completion Queue.t;
  mutable sq_bytes : int;             (* bump pointer into [shared] *)
  mutable next_seq : int;
  (* kverify admission: when set, each batch's decoded requests are
     statically checked before execution; batches that verify drain on
     the cheap parse-in-place path (no per-entry copy_from_user, no
     watchdog).  [None] (the default) is today's path, bit-for-bit. *)
  mutable verifier : (Syscall.req list -> bool) option;
  mutable watchdog_elisions : int;
  (* kopt: when set, takes precedence over [verifier] — the optimizer
     runs admission itself (charging identically) and returns the batch
     plan, or [None] to fall back to the dynamic path. *)
  mutable optimizer : (Syscall.req list -> plan option) option;
  mutable opt_fused : int;
  mutable opt_cq_saved : int;
  kstats : Kstats.t;
  st_submits : Kstats.counter;
  st_enters : Kstats.counter;
  st_completions : Kstats.counter;
  st_sq_full : Kstats.counter;
  st_crossings_saved : Kstats.counter;
  st_opt_fused : Kstats.counter;
  st_opt_cq_saved : Kstats.counter;
  st_partial : Kstats.counter;
  st_batch : Kstats.hist;
  fault : Kfault.t;
  site_partial : Kfault.site;
}

let create ?(sq_entries = 64) ?cq_entries ?(shared_size = 65536) ?policy sys =
  if sq_entries <= 0 then invalid_arg "Kring.create: sq_entries must be positive";
  let kernel = Ksyscall.Systable.kernel sys in
  let cost = Ksim.Kernel.cost kernel in
  let policy =
    match policy with
    | Some p -> p
    | None -> Cosy.Cosy_safety.default_policy cost
  in
  let kstats = Ksim.Kernel.stats kernel in
  let t =
    {
      sys;
      shared = Cosy.Shared_buffer.create ~stats:kstats shared_size;
      safety =
        Cosy.Cosy_safety.create ~fault:(Ksim.Kernel.fault kernel) ~policy
          ~clock:(Ksim.Kernel.clock kernel) ~cost ();
      sq_entries;
      cq_entries = (match cq_entries with Some n -> n | None -> 2 * sq_entries);
      sq = Queue.create ();
      cq = Queue.create ();
      sq_bytes = 0;
      next_seq = 0;
      verifier = None;
      watchdog_elisions = 0;
      optimizer = None;
      opt_fused = 0;
      opt_cq_saved = 0;
      kstats;
      st_submits = Kstats.counter kstats "ring.submits";
      st_enters = Kstats.counter kstats "ring.enters";
      st_completions = Kstats.counter kstats "ring.completions";
      st_sq_full = Kstats.counter kstats "ring.sq_full";
      st_crossings_saved = Kstats.counter kstats "ring.crossings_saved";
      st_opt_fused = Kstats.counter kstats "ring.opt.fused_pairs";
      st_opt_cq_saved = Kstats.counter kstats "ring.opt.cq_bytes_saved";
      st_partial = Kstats.counter kstats "ring.partial";
      st_batch = Kstats.histogram kstats "ring.batch.size";
      fault = Ksim.Kernel.fault kernel;
      site_partial = Kfault.register (Ksim.Kernel.fault kernel) "ring.partial_enter";
    }
  in
  (* sys_ring_setup: mapping the rings is one ordinary syscall, the
     last per-call crossing this ring's user will pay. *)
  Ksim.Kernel.charge_user kernel cost.Ksim.Cost_model.user_stub;
  Ksim.Kernel.enter_kernel kernel;
  Ksim.Kernel.charge_kernel kernel cost.Ksim.Cost_model.cosy_submit;
  Ksim.Kernel.exit_kernel kernel;
  t

let sq_depth t = Queue.length t.sq
let cq_depth t = Queue.length t.cq

(* Crash containment: drop everything still queued in the submission and
   completion rings — a dying process's in-flight batch state.  Returns
   how many entries were discarded.  Host-level bookkeeping only: no
   cycles, no kstats. *)
let discard_pending t =
  let n = Queue.length t.sq + Queue.length t.cq in
  Queue.clear t.sq;
  Queue.clear t.cq;
  t.sq_bytes <- 0;
  n
let sq_entries t = t.sq_entries
let cq_entries t = t.cq_entries
let shared t = t.shared
let set_verifier t v = t.verifier <- v
let set_optimizer t o = t.optimizer <- o
let watchdog_elisions t = t.watchdog_elisions
let fused_pairs t = t.opt_fused
let cq_bytes_saved t = t.opt_cq_saved

(* Queue one request (user mode, no crossing): marshal it into the
   shared region and append an SQ entry.  Backpressure when either the
   entry cap or the backing store is exhausted — the caller should
   [enter] (and [reap]) and retry. *)
let push t req =
  if Queue.length t.sq >= t.sq_entries then begin
    Kstats.incr t.kstats t.st_sq_full;
    Error `Sq_full
  end
  else
    let wire = Syscall.encode_req req in
    let len = Bytes.length wire in
    if t.sq_bytes + len > Cosy.Shared_buffer.size t.shared then begin
      Kstats.incr t.kstats t.st_sq_full;
      Error `Sq_full
    end
    else begin
      Cosy.Shared_buffer.write t.shared ~off:t.sq_bytes wire;
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Queue.add (seq, t.sq_bytes, len) t.sq;
      t.sq_bytes <- t.sq_bytes + len;
      Kstats.incr t.kstats t.st_submits;
      Ok seq
    end

(* sys_ring_enter: the single crossing that drains the submission
   queue.  Each entry is decoded (charged like a compound op), its
   request bytes charged as the batch's one copy-in, and dispatched
   through the in-kernel service path — so every op still counts,
   traces, and lands in the latency histograms.  Replies are packed
   into the CQ; their payload bytes are charged as one copy-out at the
   end.  The Cosy watchdog guards the whole stay: on expiry the
   offender is killed exactly like a runaway compound, though already
   completed CQ entries survive for reaping.  Returns the number of
   completions produced. *)
let enter t =
  if Queue.is_empty t.sq then 0
  else begin
    let kernel = Ksyscall.Systable.kernel t.sys in
    let cost = Ksim.Kernel.cost kernel in
    let clock = Ksim.Kernel.clock kernel in
    let perf = Ksim.Kernel.perf kernel in
    let pid = (Ksim.Kernel.current kernel).Ksim.Kproc.pid in
    (* one span for the whole kernel stay; the per-request syscall spans
       dispatched below nest under it, which is what makes a kring batch
       legible in a flamegraph: one wide "ring:enter" frame fanning out
       into its drained syscalls *)
    let span =
      Kperf.span_begin perf ~pid ~arg:(Queue.length t.sq) ~cat:"ring"
        ~name:"enter" ()
    in
    Ksim.Kernel.charge_user kernel cost.Ksim.Cost_model.user_stub;
    Ksim.Kernel.enter_kernel kernel;
    Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.cosy_submit;
    Cosy.Cosy_safety.arm t.safety;
    (* kverify admission: statically check the queued requests before
       the first one executes.  The verifier charges its own per-entry
       admission cost; a batch that verifies drains parse-in-place from
       the sealed SQ region — no per-entry copy_from_user, the cheap
       [ring_verified_op] instead of a decode, and the watchdog elided
       (a straight-line batch of validated requests cannot run away).
       Any batch the verifier rejects — or that fails to decode at
       admission — falls back to today's watchdog path bit-for-bit. *)
    let decoded =
      if t.verifier = None && t.optimizer = None then None
      else
        match
          Queue.fold
            (fun acc (_, off, len) ->
              let wire = Cosy.Shared_buffer.read t.shared ~off ~len in
              let req, (_ : int) = Syscall.decode_req wire ~off:0 in
              req :: acc)
            [] t.sq
        with
        | reqs -> Some (List.rev reqs)
        | exception _ -> None
    in
    (* kopt: the optimizer subsumes plain admission (it consults kverify
       itself, with identical charges) and additionally plans fused
       recv→send pairs and completion-region coalescing. *)
    let batch_plan =
      match (t.optimizer, decoded) with
      | Some o, Some reqs -> o reqs
      | _ -> None
    in
    let verified =
      match batch_plan with
      | Some _ ->
          t.watchdog_elisions <- t.watchdog_elisions + 1;
          true
      | None -> (
          match (t.verifier, decoded) with
          | Some v, Some reqs ->
              let ok = v reqs in
              if ok then t.watchdog_elisions <- t.watchdog_elisions + 1;
              ok
          | _ -> false)
    in
    Kstats.incr t.kstats t.st_enters;
    let completed = ref 0 in
    let out_bytes = ref 0 in
    let pos = ref 0 in
    (* decode + dispatch + complete one SQ entry, sans per-entry cost
       charges (the caller picked plain vs fused pricing) *)
    let dispatch_one () =
      let seq, off, len = Queue.peek t.sq in
      let wire = Cosy.Shared_buffer.read t.shared ~off ~len in
      let req, (_ : int) = Syscall.decode_req wire ~off:0 in
      let reply =
        Ksyscall.Usyscall.invoke ~origin:Ksyscall.Usyscall.Ring t.sys req
      in
      ignore (Queue.pop t.sq);
      Queue.add { seq; sysno = Syscall.sysno_of_req req; reply } t.cq;
      out_bytes := !out_bytes + Syscall.reply_copy_bytes reply;
      incr completed;
      incr pos;
      Kstats.incr t.kstats t.st_completions;
      (* between ops the preemptive kernel gets its chance, exactly
         like a compound's back-edge *)
      Ksim.Scheduler.checkpoint (Ksim.Kernel.sched kernel)
    in
    (* Any way a batch stops before draining its SQ — watchdog kill,
       flow-violation kill, or an injected partial completion — counts
       in ring.partial and leaves a kperf instant whose arg names the
       index of the first op that did not complete. *)
    let note_partial () =
      Kstats.incr t.kstats t.st_partial;
      Kperf.instant perf ~pid ~arg:!pos ~cat:"ring" ~name:"partial" ()
    in
    let stop_partial = ref false in
    (try
       while
         (not !stop_partial)
         && (not (Queue.is_empty t.sq))
         && Queue.length t.cq < t.cq_entries
       do
         (* injected partial enter: the kernel stay is cut short after
            at least one completion (a zero-progress cut would make the
            caller's drain loop spin); the epilogue below runs normally
            and the SQ remainder survives for the next enter *)
         if !completed > 0 && Kfault.fire t.fault t.site_partial then begin
           note_partial ();
           stop_partial := true
         end
         else begin
         let fused =
           match batch_plan with
           | Some p ->
               !pos < Array.length p.fuse_next
               && p.fuse_next.(!pos)
               && Queue.length t.sq >= 2
               && t.cq_entries - Queue.length t.cq >= 2
           | None -> false
         in
         if fused then begin
           (* splice-style pair: one dispatch charge covers both halves *)
           Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.kopt_fused_op;
           t.opt_fused <- t.opt_fused + 1;
           Kstats.incr t.kstats t.st_opt_fused;
           dispatch_one ();
           dispatch_one ()
         end
         else begin
           let _, _, len = Queue.peek t.sq in
           if verified then
             Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.ring_verified_op
           else begin
             Ksim.Sim_clock.advance clock cost.Ksim.Cost_model.cosy_decode_op;
             (* the batch's copy-in, charged per entry as the kernel pulls
                it; the verified path reads the pre-validated shared region
                in place instead *)
             Ksim.Kernel.charge_copy_from_user kernel len
           end;
           dispatch_one ();
           if not verified then Cosy.Cosy_safety.watchdog_check t.safety
         end
         end
       done;
       if Queue.is_empty t.sq then t.sq_bytes <- 0;
       (match batch_plan with
       | Some p when p.coalesce_cq ->
           (* completions stay in the shared-mapped region: no copy-out,
              only accounting of what the unoptimized path would have
              copied *)
           if !out_bytes > 0 then begin
             t.opt_cq_saved <- t.opt_cq_saved + !out_bytes;
             Kstats.add t.kstats t.st_opt_cq_saved !out_bytes
           end
       | _ ->
           if !out_bytes > 0 then
             Ksim.Kernel.charge_copy_to_user kernel !out_bytes);
       Ksim.Kernel.exit_kernel kernel
     with
    | (Cosy.Cosy_safety.Watchdog_expired _
      | Ksyscall.Usyscall.Flow_violation _) as e ->
        (* same fate as a runaway compound (§2.3): the offender dies —
           whether the watchdog fired or the syscall-flow gate killed *)
        note_partial ();
        let offender = Ksim.Kernel.current kernel in
        Ksim.Kernel.exit_kernel kernel;
        Ksim.Kernel.reap kernel offender
          ~reason:
            (match e with
            | Cosy.Cosy_safety.Watchdog_expired _ -> "ring-watchdog"
            | _ -> "flow-gate");
        Kperf.span_end perf ~pid ~arg:!completed span;
        raise e
    | e ->
        Ksim.Kernel.exit_kernel kernel;
        Kperf.span_end perf ~pid ~arg:!completed span;
        raise e);
    Kstats.observe t.kstats t.st_batch !completed;
    Kstats.add t.kstats t.st_crossings_saved (max 0 (!completed - 1));
    Kperf.span_end perf ~pid ~arg:!completed span;
    !completed
  end

let reap t = Queue.take_opt t.cq

let reap_all t =
  let rec go acc =
    match Queue.take_opt t.cq with
    | None -> List.rev acc
    | Some c -> go (c :: acc)
  in
  go []

(* Convenience: push everything (entering whenever the SQ fills), then
   drain and reap — the batched equivalent of running [reqs] through
   the synchronous dispatcher one by one.  Completions are returned in
   submission order. *)
let run_batch t reqs =
  let acc = ref [] in
  (* loop until the SQ is drained: a partial enter (CQ filled up, or an
     injected kfault cut) leaves a remainder that the next enter picks
     up, so one logical drain may take several kernel stays *)
  let drain () =
    while sq_depth t > 0 do
      ignore (enter t);
      acc := List.rev_append (reap_all t) !acc
    done;
    acc := List.rev_append (reap_all t) !acc
  in
  List.iter
    (fun req ->
      let rec retry budget =
        match push t req with
        | Ok _ -> ()
        | Error `Sq_full when budget > 0 ->
            drain ();
            retry (budget - 1)
        | Error `Sq_full -> invalid_arg "Kring.run_batch: request never fits"
      in
      retry 2)
    reqs;
  drain ();
  List.sort (fun a b -> compare a.seq b.seq) (List.rev !acc)
