(** io_uring-style batched syscall submission (after AnyCall): typed
    {!Ksyscall.Syscall.req}s are marshalled into a submission queue
    backed by the Cosy shared buffer, one [sys_ring_enter] crossing
    drains the queue in kernel mode through the ordinary service
    routines under the Cosy preemption watchdog, and replies are reaped
    from the completion queue without a crossing.

    A batch of N costs the one-time setup crossing plus one crossing
    per [enter], one copy-in of the packed requests and one copy-out of
    the packed replies — versus N crossings and N copy round-trips for
    the synchronous dispatcher. *)

(** One completed operation. *)
type completion = {
  seq : int;    (** submission order, ring-wide *)
  sysno : Ksyscall.Sysno.t;
  reply : Ksyscall.Syscall.reply;
}

type t

(** [create sys] maps the rings: one boundary crossing (the
    [sys_ring_setup] analogue), after which submission and reaping are
    crossing-free.  [sq_entries] bounds the submission queue (default
    64), [cq_entries] the completion queue (default [2 * sq_entries]),
    [shared_size] the SQ backing store, [policy] the watchdog applied
    while draining (defaults to the Cosy default policy). *)
val create :
  ?sq_entries:int ->
  ?cq_entries:int ->
  ?shared_size:int ->
  ?policy:Cosy.Cosy_safety.policy ->
  Ksyscall.Systable.t ->
  t

(** Queue one request without crossing; [Error `Sq_full] is the
    backpressure signal (entry cap or backing store exhausted) — drain
    with {!enter} and retry.  Returns the completion sequence number. *)
val push : t -> Ksyscall.Syscall.req -> (int, [ `Sq_full ]) result

(** Drain the submission queue in one crossing; returns the number of
    completions produced (0 if the SQ was empty — no crossing then).
    Stops early if the CQ fills.  @raise Cosy.Cosy_safety.Watchdog_expired
    when a pathological batch exceeds the kernel-time budget; the
    offending process is killed, completions already produced survive. *)
val enter : t -> int

(** Reap the oldest completion (user mode, no crossing). *)
val reap : t -> completion option

(** Reap everything currently in the CQ, oldest first. *)
val reap_all : t -> completion list

(** Push all requests (draining whenever the SQ fills), [enter], and
    reap: completions for every request, in submission order. *)
val run_batch : t -> Ksyscall.Syscall.req list -> completion list

(** Install/remove the kverify admission checker.  With a verifier set,
    {!enter} statically checks the queued requests before executing any
    of them: a batch that verifies drains on the cheap parse-in-place
    path (no per-entry copy_from_user, [ring_verified_op] instead of a
    decode, watchdog elided — preemption checkpoints still run); a batch
    that doesn't falls back to today's watchdog path bit-for-bit.
    [None] (the default) disables admission entirely. *)
val set_verifier : t -> (Ksyscall.Syscall.req list -> bool) option -> unit

(** The kopt optimizer's decision about an admitted batch. *)
type plan = {
  fuse_next : bool array;
      (** [fuse_next.(i)]: batch position [i] starts a splice-style pair
          (recv→send on one socket) — both entries drain under a single
          [kopt_fused_op] dispatch charge instead of two
          [ring_verified_op]s.  Replies, completions, and per-request
          trace records are unchanged. *)
  coalesce_cq : bool;
      (** treat the completion region as shared-mapped: elide the
          batch-end reply copy-out; saved bytes land in
          [ring.opt.cq_bytes_saved] instead of the copy counters. *)
}

(** Install/remove the kopt batch optimizer.  Takes precedence over the
    verifier: the optimizer runs admission itself (with identical
    charges) and returns the batch {!plan}, or [None] to fall back to
    the plain (verifier/dynamic) path bit-for-bit. *)
val set_optimizer :
  t -> (Ksyscall.Syscall.req list -> plan option) option -> unit

(** Batches admitted on the watchdog-elided path so far. *)
val watchdog_elisions : t -> int

(** Fused recv→send pairs drained so far. *)
val fused_pairs : t -> int

(** Reply bytes whose copy-out was elided by CQ coalescing. *)
val cq_bytes_saved : t -> int

val sq_depth : t -> int
val cq_depth : t -> int

(** Crash containment: drop everything still queued in both rings (a
    dying process's in-flight batch state); returns the number of
    entries discarded.  Host-level bookkeeping only — no cycles. *)
val discard_pending : t -> int
val sq_entries : t -> int
val cq_entries : t -> int
val shared : t -> Cosy.Shared_buffer.t
