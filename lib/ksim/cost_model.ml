(* Central table of virtual-cycle costs.  The paper's performance numbers
   are ratios of boundary-crossing and copy costs saved; reproducing the
   shape of its results requires only that these relative magnitudes are
   plausible for a ~2005 P4-class machine.  Values are calibrated from
   published measurements: a Linux 2.6 syscall round trip costs on the
   order of 1,000 cycles on a P4; copies cost roughly one cycle per byte
   plus setup; a page fault costs a few thousand cycles. *)

type t = {
  (* user/kernel boundary *)
  syscall_entry : int;       (* trap into the kernel *)
  syscall_exit : int;        (* return to user mode *)
  context_switch : int;      (* full process switch *)
  copy_base : int;           (* fixed cost of copy_{to,from}_user *)
  copy_per_byte : int;       (* numerator of a per-byte cost ... *)
  copy_byte_div : int;       (* ... divided by this (allows <1 cycle/B) *)
  user_stub : int;           (* user-mode libc stub + marshalling per call *)
  vfs_op : int;              (* in-kernel CPU per VFS metadata operation *)
  (* memory system *)
  page_fault : int;
  tlb_miss : int;
  mem_access : int;          (* charged per simulated load/store batch *)
  segment_load : int;        (* far call / segment-register reload *)
  (* allocators *)
  kmalloc_cost : int;
  kfree_cost : int;
  vmalloc_cost : int;        (* vmalloc is considerably slower: PTE setup *)
  vfree_cost : int;
  vfree_lookup_cost : int;   (* per-probe cost of finding the area *)
  (* interpreter / compiler runtimes *)
  cpu_op : int;              (* one mini-C operation *)
  cosy_decode_op : int;      (* decoding one compound operation *)
  cosy_exec_op : int;        (* interpreting one decoded operation *)
  cosy_submit : int;         (* submitting a compound (one boundary trip) *)
  cosy_exec_op_verified : int; (* interpreting one op of a *verified*
                                  compound: no per-op watchdog overhead *)
  bounds_check : int;        (* one KGCC bounds check (splay hit) *)
  (* kverify static admission (ISSUE 7) *)
  sfi_check : int;           (* one syscall-flow automaton transition *)
  verify_admit_op : int;     (* statically checking one op/entry at
                                admission, before execution starts *)
  ring_verified_op : int;    (* consuming one pre-verified ring entry:
                                parse-in-place of the sealed SQ region,
                                no per-entry copy_from_user or watchdog *)
  (* kopt: compiling and running admitted programs (ISSUE 8) *)
  kopt_compile_op : int;     (* specializing one admitted op into the
                                compiled plan (includes its decode) *)
  kopt_cache_probe : int;    (* one structural-hash probe of the
                                per-process compiled-program cache *)
  kopt_exec_op : int;        (* dispatching one compiled op: operands
                                were pre-decoded and shape-checked at
                                compile time *)
  kopt_exec_op_hoisted : int;(* one compiled op inside a proven counted
                                loop: bounds/shape checks hoisted out *)
  kopt_fd_resolve : int;     (* first resolution of an fd operand per
                                execution; later uses hit the handle
                                cache for free *)
  kopt_fused_op : int;       (* dispatching one fused op pair (read->
                                write / recv->send) as a single splice *)
  kopt_loop_hoist : int;     (* per-loop pre-execution hoist check *)
  splay_rotate : int;        (* extra cost per splay rotation *)
  (* event monitoring *)
  event_dispatch : int;
  ring_push : int;
  trace_emit : int;          (* storing one kperf trace record *)
  chardev_poll : int;        (* one empty poll of the character device *)
  chardev_copy_per_event : int;
  (* storage *)
  disk_seek : int;
  disk_read_block : int;
  disk_write_block : int;
  log_write_per_event : int; (* writing one event record to the log disk *)
  (* networking (knet) *)
  net_op : int;              (* in-kernel CPU per socket-table operation *)
  wire_latency : int;        (* one-way client<->server propagation delay *)
  (* SMP / lock contention *)
  spin_cap : int;            (* max cycles spent spinning before blocking *)
  cacheline_bounce : int;    (* pulling a contended lock's line cross-CPU *)
  lock_hold : int;           (* nominal critical-section length under a
                                kernel spinlock; charged while the lock is
                                held on SMP so hold windows have width *)
  (* scheduling *)
  timeslice : int;           (* preemption quantum *)
  max_kernel_cycles : int;   (* Cosy watchdog budget *)
}

let default =
  {
    syscall_entry = 700;
    syscall_exit = 400;
    context_switch = 3_000;
    copy_base = 120;
    copy_per_byte = 1;
    copy_byte_div = 1;
    user_stub = 320;
    vfs_op = 830;
    page_fault = 2_500;
    tlb_miss = 60;
    mem_access = 2;
    segment_load = 180;
    kmalloc_cost = 90;
    kfree_cost = 70;
    vmalloc_cost = 3_900;
    vfree_cost = 2_200;
    vfree_lookup_cost = 25;
    cpu_op = 4;
    cosy_decode_op = 40;
    cosy_exec_op = 60;
    cosy_submit = 1_100;
    cosy_exec_op_verified = 25;
    bounds_check = 820;
    sfi_check = 20;             (* table probe + one bitmask test *)
    verify_admit_op = 30;
    ring_verified_op = 12;
    kopt_compile_op = 70;       (* decode + specialize, amortized by cache *)
    kopt_cache_probe = 45;      (* hash of the compound bytes + table probe *)
    kopt_exec_op = 12;
    kopt_exec_op_hoisted = 6;
    kopt_fd_resolve = 10;
    kopt_fused_op = 15;
    kopt_loop_hoist = 60;
    splay_rotate = 16;
    event_dispatch = 940;
    ring_push = 300;
    trace_emit = 2;             (* a compiled-in tracepoint: a few stores *)
    chardev_poll = 235_000;
    chardev_copy_per_event = 30;
    disk_seek = 14_000_000;     (* ~8 ms on a 7200rpm IDE disk *)
    disk_read_block = 200_000;
    disk_write_block = 220_000;
    log_write_per_event = 15_000;
    net_op = 600;               (* socket-table walk + queue bookkeeping *)
    wire_latency = 80_000;      (* ~30 us one-way on a 2005 LAN at 2.8 GHz *)
    spin_cap = 20_000;          (* ~a couple of syscall round trips *)
    cacheline_bounce = 240;     (* cross-CPU MESI transfer of a hot line *)
    lock_hold = 5_000;          (* hash walk + bucket update under the lock *)
    timeslice = 1_000_000;
    max_kernel_cycles = 500_000_000;
  }

(* A free cost model: every action costs zero cycles.  Used by unit tests
   that check functional behaviour rather than performance. *)
let zero =
  {
    syscall_entry = 0;
    syscall_exit = 0;
    context_switch = 0;
    copy_base = 0;
    copy_per_byte = 0;
    copy_byte_div = 1;
    user_stub = 0;
    vfs_op = 0;
    page_fault = 0;
    tlb_miss = 0;
    mem_access = 0;
    segment_load = 0;
    kmalloc_cost = 0;
    kfree_cost = 0;
    vmalloc_cost = 0;
    vfree_cost = 0;
    vfree_lookup_cost = 0;
    cpu_op = 0;
    cosy_decode_op = 0;
    cosy_exec_op = 0;
    cosy_submit = 0;
    cosy_exec_op_verified = 0;
    bounds_check = 0;
    sfi_check = 0;
    verify_admit_op = 0;
    ring_verified_op = 0;
    kopt_compile_op = 0;
    kopt_cache_probe = 0;
    kopt_exec_op = 0;
    kopt_exec_op_hoisted = 0;
    kopt_fd_resolve = 0;
    kopt_fused_op = 0;
    kopt_loop_hoist = 0;
    splay_rotate = 0;
    event_dispatch = 0;
    ring_push = 0;
    trace_emit = 0;
    chardev_poll = 0;
    chardev_copy_per_event = 0;
    disk_seek = 0;
    disk_read_block = 0;
    disk_write_block = 0;
    log_write_per_event = 0;
    net_op = 0;
    wire_latency = 0;
    spin_cap = 0;
    cacheline_bounce = 0;
    lock_hold = 0;
    timeslice = max_int;
    max_kernel_cycles = max_int;
  }

let copy_cost t nbytes =
  if nbytes <= 0 then 0
  else t.copy_base + (nbytes * t.copy_per_byte) / t.copy_byte_div
