(* Spinlock with instrumentation hooks and an SMP contention model.

   Execution is serialized, so a lock is never literally held when a
   different process reaches [lock] — recursive acquisition still
   indicates a locking bug and raises.  Contention is instead *derived*
   from the scheduler's per-CPU local clocks (parallel wall time).

   The lock remembers a ring of recent *hold windows* [w_from, w_to) in
   parallel time, each the span of one critical section ([lock_hold]
   cycles, charged to the holder).  An acquirer whose local time lands
   inside another CPU's window arrived while the lock was genuinely held
   in wall time: it waits for that hold's release — and if the release
   lands inside yet another window it keeps waiting behind the chain,
   which is how convoys form.  The wait is charged as spin cycles up to
   [spin_cap]; beyond that the process blocks (a context switch plus the
   remaining wait).  An arrival covered by no window found the lock free
   — in particular, a CPU whose clock lags far behind (say, fresh out of
   a long disk wait) arrived before the recorded holds existed in wall
   time and owes nothing.  A cacheline bounce is charged whenever
   ownership migrates across CPUs.

   Under load the arithmetic makes the lock a genuine serialization
   point: holds on different CPUs cannot overlap in parallel time, so
   once the offered hold time per unit of parallel time approaches 1
   the convoy chains never drain and throughput is capped by the lock's
   service rate — the effect E13 measures, and exactly what the paper's
   ~8,805/s dcache_lock monitoring was pointing at.

   At ncpus=1 the model is inert (no hold charge, no contention), so
   single-CPU runs are preserved bit-for-bit.  Every acquire/release
   emits an Instrument event, which is how the dcache_lock experiment
   (E6) counts acquisitions; contended acquisitions additionally emit a
   [Contended] event carrying the spin cycles as its value. *)

type counters = {
  st_acquisitions : Kstats.counter;
  st_contended : Kstats.counter;
  st_spin : Kstats.counter;
}

type window = {
  mutable w_cpu : int;  (* -1 = empty slot *)
  mutable w_from : int;
  mutable w_to : int;
}

type ctx = {
  sched : Scheduler.t;
  clock : Sim_clock.t;
  cost : Cost_model.t;
  stats : Kstats.t;
  registry : registry;
}

(* Every lock created under a ctx enrols here, so crash containment can
   find the locks a dying process still holds. *)
and registry = { mutable regd : t list }

and t = {
  id : int;
  name : string;
  ctx : ctx option;
  perf : Kperf.t option;         (* contention-wait spans, if wired *)
  counters : (Kstats.t * counters) option;
  mutable locked : bool;
  mutable holder : int;          (* pid, or -1 *)
  mutable holder_cpu : int;      (* CPU of the current holder, or -1 *)
  mutable last_cpu : int;        (* CPU of the last release, or -1 *)
  mutable poisoned : bool;       (* force-released after an oops *)
  windows : window array;        (* ring of recent hold windows *)
  mutable w_next : int;
  mutable acquisitions : int;
  mutable contended : int;
  mutable spin_cycles : int;
}

let next_id = ref 0
let new_registry () = { regd = [] }
let registered r = List.rev r.regd

let ring_slots = function
  | None -> 1
  | Some c -> max 8 (2 * Scheduler.ncpus c.sched)

let create ?ctx ?perf name =
  incr next_id;
  let counters =
    match ctx with
    | None -> None
    | Some c ->
        let counter suffix =
          Kstats.counter c.stats (Printf.sprintf "lock.%s.%s" name suffix)
        in
        Some
          ( c.stats,
            {
              st_acquisitions = counter "acquisitions";
              st_contended = counter "contended";
              st_spin = counter "spin_cycles";
            } )
  in
  let t =
    {
      id = !next_id;
      name;
      ctx;
      perf;
      counters;
      locked = false;
      holder = -1;
      holder_cpu = -1;
      last_cpu = -1;
      poisoned = false;
      windows =
        Array.init (ring_slots ctx) (fun _ ->
            { w_cpu = -1; w_from = 0; w_to = 0 });
      w_next = 0;
      acquisitions = 0;
      contended = 0;
      spin_cycles = 0;
    }
  in
  (match ctx with
  | Some c -> c.registry.regd <- t :: c.registry.regd
  | None -> ());
  t

exception Deadlock of string

(* release time of the hold on another CPU whose window covers [now]
   (the latest such, if several overlap), or [now] when none does *)
let blocking_release t ~cpu ~now =
  Array.fold_left
    (fun acc w ->
      if w.w_cpu >= 0 && w.w_cpu <> cpu && now >= w.w_from && now < w.w_to
      then max acc w.w_to
      else acc)
    now t.windows

let lock ?(file = "<unknown>") ?(line = 0) ?(pid = 0) t =
  if t.locked && t.holder = pid then
    raise (Deadlock (Printf.sprintf "%s: recursive lock by pid %d" t.name pid));
  (* serialized simulation: the lock is always free here; SMP contention
     is derived from overlap with the busy interval in parallel time *)
  (match t.ctx with
  | None -> ()
  | Some c ->
      let cpu = Scheduler.active_cpu c.sched in
      let ncpus = Scheduler.ncpus c.sched in
      if ncpus > 1 then begin
        let arrival = Scheduler.local_now c.sched in
        (* follow the convoy: waiting out one hold can land us inside
           the next hold chained behind it.  The ring holds at most
           2*ncpus windows, which bounds the walk. *)
        let release = ref (blocking_release t ~cpu ~now:arrival) in
        let guard = ref (Array.length t.windows) in
        while
          !guard > 0
          &&
          let next = blocking_release t ~cpu ~now:!release in
          if next > !release then begin
            release := next;
            true
          end
          else false
        do
          decr guard
        done;
        if !release > arrival then begin
          let needed = !release - arrival in
          let spin = min needed c.cost.Cost_model.spin_cap in
          (* the wait is a traced span: its duration is the convoy's
             cost, its parent whatever operation hit the lock *)
          let span =
            match t.perf with
            | Some perf ->
                Kperf.span_begin perf ~pid ~arg:spin ~cat:"lock" ~name:t.name
                  ()
            | None -> 0
          in
          Sim_clock.advance c.clock spin;
          t.contended <- t.contended + 1;
          t.spin_cycles <- t.spin_cycles + spin;
          (match t.counters with
          | Some (stats, k) ->
              Kstats.incr stats k.st_contended;
              Kstats.add stats k.st_spin spin
          | None -> ());
          Instrument.emit ~pid ~obj:t.id ~value:spin
            ~kind:Instrument.Contended ~file ~line ();
          if needed > spin then begin
            Scheduler.context_switch c.sched;
            Sim_clock.advance c.clock (needed - spin)
          end;
          match t.perf with
          | Some perf -> Kperf.span_end perf ~pid ~arg:needed span
          | None -> ()
        end;
        (* ownership migrates cross-CPU: pull the lock's cacheline *)
        if t.last_cpu >= 0 && t.last_cpu <> cpu then
          Sim_clock.advance c.clock c.cost.Cost_model.cacheline_bounce;
        (* charge the critical section and record its window in the
           ring.  Uniprocessor runs skip all of this: the cost is
           folded into the surrounding operation's calibration, and
           there is nobody to contend with. *)
        let from = Scheduler.local_now c.sched in
        Sim_clock.advance c.clock c.cost.Cost_model.lock_hold;
        let w = t.windows.(t.w_next) in
        w.w_cpu <- cpu;
        w.w_from <- from;
        w.w_to <- Scheduler.local_now c.sched;
        t.w_next <- (t.w_next + 1) mod Array.length t.windows
      end;
      t.holder_cpu <- cpu);
  t.locked <- true;
  t.holder <- pid;
  t.acquisitions <- t.acquisitions + 1;
  (match t.counters with
  | Some (stats, k) -> Kstats.incr stats k.st_acquisitions
  | None -> ());
  Instrument.emit ~pid ~obj:t.id ~value:1 ~kind:Instrument.Lock ~file ~line ()

let unlock ?(file = "<unknown>") ?(line = 0) t =
  if not t.locked then
    raise (Deadlock (Printf.sprintf "%s: unlock of free lock" t.name));
  let pid = t.holder in
  t.locked <- false;
  t.holder <- -1;
  (match t.ctx with
  | None -> ()
  | Some c ->
      t.last_cpu <- Scheduler.active_cpu c.sched;
      t.holder_cpu <- -1);
  Instrument.emit ~pid ~obj:t.id ~value:0 ~kind:Instrument.Unlock ~file ~line ()

let with_lock ?file ?line ?pid t f =
  lock ?file ?line ?pid t;
  match f () with
  | v ->
      unlock ?file ?line t;
      v
  | exception e ->
      unlock ?file ?line t;
      raise e

(* Crash containment: a dying process cannot unlock what it holds, so
   the oops path rips the lock away.  The lock is marked poisoned (the
   critical section it protected may be half-done) and a Contended-style
   event with value -1 marks the forced release in the instrument
   stream, followed by the normal Unlock so event counts stay paired. *)
let force_release ?(file = "<unknown>") ?(line = 0) t =
  if not t.locked then false
  else begin
    let pid = t.holder in
    t.poisoned <- true;
    t.locked <- false;
    t.holder <- -1;
    t.holder_cpu <- -1;
    (match t.counters with
    | Some (stats, k) -> Kstats.incr stats k.st_contended
    | None -> ());
    Instrument.emit ~pid ~obj:t.id ~value:(-1) ~kind:Instrument.Contended
      ~file ~line ();
    Instrument.emit ~pid ~obj:t.id ~value:0 ~kind:Instrument.Unlock ~file
      ~line ();
    true
  end

let is_locked t = t.locked
let holder t = t.holder
let poisoned t = t.poisoned
let acquisitions t = t.acquisitions
let contended t = t.contended
let spin_cycles t = t.spin_cycles
let id t = t.id
let name t = t.name
