(** The assembled machine: clock, physical memory, kernel and user
    address spaces, allocators, scheduler.  Every higher-level library
    takes a [Kernel.t] and builds on it.

    The kernel tracks the user/kernel mode bit, boundary crossings, and
    bytes copied each way — the quantities the paper's §2 techniques
    exist to reduce — and produces [time(1)]-style elapsed/user/system
    accounting in which disk waits count toward elapsed time but not
    system time. *)

type config = {
  page_size : int;
  cost : Cost_model.t;
  phys_frames_hint : int;
  ncpus : int;  (** simulated CPUs; 1 in [default_config] *)
}

val default_config : config

type mode = User | Kernel_mode

type t

val create : ?config:config -> unit -> t

val clock : t -> Sim_clock.t
val cost : t -> Cost_model.t
val page_size : t -> int

(** Kernel virtual address space (where kmalloc/vmalloc memory lives). *)
val kspace : t -> Address_space.t

(** (Shared) user virtual address space. *)
val uspace : t -> Address_space.t

val alloc : t -> Kalloc.t
val sched : t -> Scheduler.t

(** The kernel-wide metrics registry.  Created enabled when
    [Kstats.default_enabled] was set at boot; cycle-neutral either
    way. *)
val stats : t -> Kstats.t

(** The kperf tracer: per-CPU trace rings and causal spans.  Created
    enabled when [Kperf.default_enabled] was set at boot; while disabled
    every emit is a single branch and the simulated clock is never
    touched, so untraced runs are bit-for-bit identical to pre-kperf
    runs.  While enabled each stored record charges
    [Cost_model.trace_emit] cycles. *)
val perf : t -> Kperf.t

(** The deterministic fault-injection engine.  Every kernel carries
    one; until a harness arms a plan ([Kfault.arm]) each registered
    fault site costs a single branch and the run is bit-for-bit
    identical to a kernel built without kfault. *)
val fault : t -> Kfault.t

(** Current virtual time, in cycles. *)
val now : t -> int

(** The running process. *)
val current : t -> Kproc.t

val mode : t -> mode

(** Scheduler/clock/cost wiring that makes a {!Spinlock} created from it
    contention-aware and feeds its [lock.*] kstats.  One shared ctx per
    kernel: every lock created through it enrols in the same registry,
    which {!locks} (and crash containment) scans. *)
val lock_ctx : t -> Spinlock.ctx

(** Every contention-aware lock created via {!lock_ctx}, in creation
    order. *)
val locks : t -> Spinlock.t list

(** A kernel fault that was contained: only [pid] died.  The syscall
    layer raises this to its caller in place of the fault itself when a
    reaper is installed, so harnesses can count a clean kill rather than
    an escaped crash. *)
exception Oops of { pid : int; reason : string }

(** Install the crash-containment hook (kcrash's oops path).  When set,
    {!reap} routes through it; when [None] (the default) {!reap} is
    exactly [Scheduler.kill] — same code path as before kcrash
    existed. *)
val set_reaper : t -> (Kproc.t -> reason:string -> unit) option -> unit

val has_reaper : t -> bool

(** Kill a process at a kernel kill site (flow-gate, watchdog, contained
    fault), reaping what it held if a reaper is installed. *)
val reap : t -> Kproc.t -> reason:string -> unit

(** Crash unwinding: if in kernel mode, return to user mode without
    charging the exit path — the stay belongs to a process being
    destroyed, not returning.  No-op in user mode. *)
val force_user_mode : t -> unit

exception Kernel_mode_violation of string

(** Trap into the kernel: charges entry cost (as system time), counts a
    crossing.  @raise Kernel_mode_violation if already in kernel mode. *)
val enter_kernel : t -> unit

(** Return to user mode: charges exit cost and accumulates the system
    time of the stay (minus any I/O wait).
    @raise Kernel_mode_violation if not in kernel mode. *)
val exit_kernel : t -> unit

(** Charge user-mode CPU to the current process. *)
val charge_user : t -> int -> unit

(** Advance the clock for kernel-mode CPU work. *)
val charge_kernel : t -> int -> unit

(** Charge disk-wait time: advances the wall clock but is excluded from
    the current process's system time, like a process blocked on I/O. *)
val charge_io : t -> int -> unit

(** Copy [len] bytes out of simulated user memory at [uaddr]; charges the
    per-byte cost and counts the bytes.
    @raise Kernel_mode_violation in user mode. *)
val copy_from_user : t -> uaddr:int -> len:int -> Bytes.t

(** Copy into simulated user memory; charged and counted symmetrically. *)
val copy_to_user : t -> uaddr:int -> Bytes.t -> unit

(** Charge-only variants for data paths that carry host bytes: same cost
    and byte accounting, no simulated-memory traffic. *)
val charge_copy_from_user : t -> int -> unit

val charge_copy_to_user : t -> int -> unit

(** Total user/kernel boundary crossings. *)
val crossings : t -> int

val bytes_from_user : t -> int
val bytes_to_user : t -> int

exception Irq_unbalanced

(** Interrupt disable/enable with balance tracking; both emit
    instrumentation events.  @raise Irq_unbalanced on enable at depth 0. *)
val irq_disable : ?file:string -> ?line:int -> t -> unit

val irq_enable : ?file:string -> ?line:int -> t -> unit
val irq_depth : t -> int

(** Allocate user-space memory for workload buffers. *)
val user_alloc : t -> int -> int

(** What [time(1)] would print, in cycles. *)
type times = { elapsed : int; utime : int; stime : int }

(** Run [f] as the current process and report the elapsed/user/system
    cycles attributable to it. *)
val timed : t -> (unit -> 'a) -> 'a * times
