(* Kernel allocators.

   [kmalloc] models the slab allocator: fast, byte-granular carving from
   slab pages, no per-allocation page-table work, and therefore no way to
   guard an individual allocation.

   [vmalloc] models Linux's vmalloc: every allocation gets its own
   page-aligned virtually-mapped area, which is slower but gives each
   buffer its own PTEs — the property Kefence builds on.  As in the paper,
   a hash table maps addresses to areas so vfree does not scan a list. *)

type area = {
  addr : int;                 (* user-visible start address *)
  size : int;                 (* requested size in bytes *)
  npages : int;               (* data pages (excluding any guardian) *)
  guardian_vpn : int option;  (* Kefence guardian page, if any *)
  align_end : bool;           (* data flush against the end of last page *)
}

type t = {
  space : Address_space.t;
  clock : Sim_clock.t;
  cost : Cost_model.t;
  stats : Kstats.t;
  st_kmallocs : Kstats.counter;
  st_kfrees : Kstats.counter;
  st_vmallocs : Kstats.counter;
  st_vfrees : Kstats.counter;
  st_alloc_bytes : Kstats.counter;
  st_pages_live : Kstats.gauge;
  page_size : int;
  (* kmalloc state: a simple bump region refilled page by page. *)
  mutable slab_addr : int;        (* next free byte in the current slab *)
  mutable slab_left : int;        (* bytes left in the current slab *)
  mutable slab_next_vpn : int;    (* next vpn in the kmalloc region *)
  slab_end_vpn : int;
  kmalloc_live : (int, int) Hashtbl.t; (* addr -> size *)
  km_owner : (int, int) Hashtbl.t;     (* addr -> owning pid (containment) *)
  (* vmalloc state *)
  mutable vm_next_vpn : int;
  vm_end_vpn : int;
  vm_areas : (int, area) Hashtbl.t;    (* the paper's vfree hash table *)
  vm_owner : (int, int) Hashtbl.t;     (* addr -> owning pid (containment) *)
  (* who owns fresh allocations; the kernel wires this to the scheduler's
     current pid after boot *)
  mutable pid_source : (unit -> int) option;
  mutable vm_pages_live : int;
  mutable vm_pages_high_water : int;
  mutable vm_bytes_requested : int;
  mutable vm_allocs : int;
  (* fault injection: the kernel wires the engine right after boot (the
     engine needs the kstats registry that Kernel.create also owns) *)
  mutable fault : (Kfault.t * Kfault.site * Kfault.site) option;
}

(* Virtual layout of the simulated kernel address space, in pages. *)
let kmalloc_base_vpn = 0x1000
let kmalloc_limit_pages = 0x8000
let vmalloc_base_vpn = 0x10000
let vmalloc_limit_pages = 0x40000

let create ?(stats = Kstats.create ()) ~space ~clock ~cost () =
  let page_size = Address_space.page_size space in
  {
    space;
    clock;
    cost;
    stats;
    st_kmallocs = Kstats.counter stats "kalloc.kmallocs";
    st_kfrees = Kstats.counter stats "kalloc.kfrees";
    st_vmallocs = Kstats.counter stats "kalloc.vmallocs";
    st_vfrees = Kstats.counter stats "kalloc.vfrees";
    st_alloc_bytes = Kstats.counter stats "kalloc.bytes_requested";
    st_pages_live = Kstats.gauge stats "kalloc.vm_pages_live";
    page_size;
    slab_addr = 0;
    slab_left = 0;
    slab_next_vpn = kmalloc_base_vpn;
    slab_end_vpn = kmalloc_base_vpn + kmalloc_limit_pages;
    kmalloc_live = Hashtbl.create 512;
    km_owner = Hashtbl.create 512;
    vm_next_vpn = vmalloc_base_vpn;
    vm_end_vpn = vmalloc_base_vpn + vmalloc_limit_pages;
    vm_areas = Hashtbl.create 512;
    vm_owner = Hashtbl.create 512;
    pid_source = None;
    vm_pages_live = 0;
    vm_pages_high_water = 0;
    vm_bytes_requested = 0;
    vm_allocs = 0;
    fault = None;
  }

let set_fault t kf =
  t.fault <-
    Some (kf, Kfault.register kf "kalloc.kmalloc", Kfault.register kf "kalloc.vmalloc")

let set_pid_source t f = t.pid_source <- f

let note_owner t owners addr =
  match t.pid_source with
  | Some f -> Hashtbl.replace owners addr (f ())
  | None -> ()

exception Out_of_memory of string

let pages_for t size = (size + t.page_size - 1) / t.page_size

(* --- kmalloc ---------------------------------------------------------- *)

let kmalloc t size =
  if size <= 0 then invalid_arg "kmalloc: size";
  Sim_clock.advance t.clock t.cost.Cost_model.kmalloc_cost;
  Kstats.incr t.stats t.st_kmallocs;
  Kstats.add t.stats t.st_alloc_bytes size;
  (match t.fault with
  | Some (kf, km, _) when Kfault.fire kf km ->
      raise (Out_of_memory "kmalloc: injected failure (kfault)")
  | _ -> ());
  (* align to 8 bytes like the slab allocator's minimum object size *)
  let size = (size + 7) land lnot 7 in
  if size > t.slab_left then begin
    let need = pages_for t size in
    if t.slab_next_vpn + need > t.slab_end_vpn then
      raise (Out_of_memory "kmalloc region exhausted");
    Address_space.map_fresh t.space ~vpn:t.slab_next_vpn ~npages:need
      ~writable:true;
    t.slab_addr <- t.slab_next_vpn * t.page_size;
    t.slab_left <- need * t.page_size;
    t.slab_next_vpn <- t.slab_next_vpn + need
  end;
  let addr = t.slab_addr in
  t.slab_addr <- t.slab_addr + size;
  t.slab_left <- t.slab_left - size;
  Hashtbl.replace t.kmalloc_live addr size;
  note_owner t t.km_owner addr;
  addr

let kfree t addr =
  Sim_clock.advance t.clock t.cost.Cost_model.kfree_cost;
  Kstats.incr t.stats t.st_kfrees;
  match Hashtbl.find_opt t.kmalloc_live addr with
  | None -> invalid_arg "kfree: not a live kmalloc address"
  | Some _ ->
      Hashtbl.remove t.kmalloc_live addr;
      Hashtbl.remove t.km_owner addr

(* --- vmalloc ---------------------------------------------------------- *)

(* [guard]: add a no-access guardian PTE after (or before, when
   [align_end] is false) the buffer.  [align_end] places the buffer flush
   against the guardian so the very first out-of-bounds byte traps; this
   is Kefence's overflow-detecting configuration. *)
let vmalloc ?(guard = false) ?(align_end = true) t size =
  if size <= 0 then invalid_arg "vmalloc: size";
  Sim_clock.advance t.clock t.cost.Cost_model.vmalloc_cost;
  (match t.fault with
  | Some (kf, _, vm) when Kfault.fire kf vm ->
      raise (Out_of_memory "vmalloc: injected failure (kfault)")
  | _ -> ());
  let npages = pages_for t size in
  let total = npages + (if guard then 1 else 0) in
  if t.vm_next_vpn + total + 1 > t.vm_end_vpn then
    raise (Out_of_memory "vmalloc region exhausted");
  let base_vpn = t.vm_next_vpn in
  (* leave an unmapped hole page between areas, like vmalloc does *)
  t.vm_next_vpn <- t.vm_next_vpn + total + 1;
  let data_vpn, guardian_vpn =
    if guard && not align_end then (base_vpn + 1, Some base_vpn)
    else (base_vpn, if guard then Some (base_vpn + npages) else None)
  in
  Address_space.map_fresh t.space ~vpn:data_vpn ~npages ~writable:true;
  (match guardian_vpn with
  | Some g -> Address_space.map_guardian t.space ~vpn:g
  | None -> ());
  let addr =
    if align_end then (data_vpn * t.page_size) + (npages * t.page_size) - size
    else data_vpn * t.page_size
  in
  let area = { addr; size; npages; guardian_vpn; align_end } in
  Hashtbl.replace t.vm_areas addr area;
  note_owner t t.vm_owner addr;
  t.vm_pages_live <- t.vm_pages_live + npages;
  if t.vm_pages_live > t.vm_pages_high_water then
    t.vm_pages_high_water <- t.vm_pages_live;
  t.vm_bytes_requested <- t.vm_bytes_requested + size;
  t.vm_allocs <- t.vm_allocs + 1;
  Kstats.incr t.stats t.st_vmallocs;
  Kstats.add t.stats t.st_alloc_bytes size;
  Kstats.set t.stats t.st_pages_live t.vm_pages_live;
  area

let find_area t addr =
  Sim_clock.advance t.clock t.cost.Cost_model.vfree_lookup_cost;
  Hashtbl.find_opt t.vm_areas addr

let vfree t addr =
  Sim_clock.advance t.clock t.cost.Cost_model.vfree_cost;
  match find_area t addr with
  | None -> invalid_arg "vfree: not a live vmalloc address"
  | Some area ->
      let data_vpn =
        if area.align_end then Address_space.(vpn_of t.space area.addr)
        else area.addr / t.page_size
      in
      let data_vpn =
        (* when aligned to the end, addr may sit mid-page; the area starts
           at the page containing addr *)
        min data_vpn (area.addr / t.page_size)
      in
      Address_space.unmap t.space ~vpn:data_vpn ~npages:area.npages;
      (match area.guardian_vpn with
      | Some g ->
          Page_table.unmap (Address_space.page_table t.space) ~vpn:g;
          Tlb.invalidate (Address_space.tlb t.space) ~vpn:g
      | None -> ());
      Hashtbl.remove t.vm_areas addr;
      Hashtbl.remove t.vm_owner addr;
      t.vm_pages_live <- t.vm_pages_live - area.npages;
      Kstats.incr t.stats t.st_vfrees;
      Kstats.set t.stats t.st_pages_live t.vm_pages_live

(* --- crash containment ------------------------------------------------- *)

type reap = {
  reaped_kmallocs : int;
  reaped_vmallocs : int;
  reaped_vm_addrs : int list;  (* freed vmalloc addresses, ascending *)
}

(* Free everything a dying process still owns, through the normal kfree/
   vfree paths (normal charges, PTE unmaps and TLB shootdowns included).
   Addresses are processed in ascending order for determinism. *)
let reap_pid t pid =
  let owned owners live =
    Hashtbl.fold
      (fun addr owner acc ->
        if owner = pid && Hashtbl.mem live addr then addr :: acc else acc)
      owners []
    |> List.sort compare
  in
  let kms = owned t.km_owner t.kmalloc_live in
  List.iter (fun addr -> kfree t addr) kms;
  let vms = owned t.vm_owner t.vm_areas in
  List.iter (fun addr -> vfree t addr) vms;
  {
    reaped_kmallocs = List.length kms;
    reaped_vmallocs = List.length vms;
    reaped_vm_addrs = vms;
  }

(* --- statistics (E5 reports these like the paper does) ----------------- *)

type stats = {
  live_areas : int;
  pages_live : int;
  pages_high_water : int;
  allocs : int;
  mean_alloc_bytes : float;
}

let stats t =
  {
    live_areas = Hashtbl.length t.vm_areas;
    pages_live = t.vm_pages_live;
    pages_high_water = t.vm_pages_high_water;
    allocs = t.vm_allocs;
    mean_alloc_bytes =
      (if t.vm_allocs = 0 then 0.
       else float_of_int t.vm_bytes_requested /. float_of_int t.vm_allocs);
  }

let kmalloc_live_count t = Hashtbl.length t.kmalloc_live
