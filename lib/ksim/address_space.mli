(** A virtual address space: page table + TLB + fault handling over
    physical memory.  Both kernel space and the simulated user space are
    instances.

    Fault handlers form a stack: Kefence pushes its handler above the
    default one, exactly like hooking the page-fault handler in the
    paper (§3.2).  A handler may repair the mapping and ask for a retry,
    emulate the access away, or decline — an undeclined fault becomes a
    {!Fault.Fault} exception, the simulated machine's oops. *)

(** What a fault handler did about a fault. *)
type resolution =
  | Retry     (** mapping repaired; re-execute the access *)
  | Emulated  (** access satisfied/suppressed by the handler; skip it *)
  | Kill      (** unresolvable here; try the next handler or oops *)

type handler = Fault.t -> resolution

type t

(** [stats] receives per-space TLB hit/miss and fault counters (named
    [tlb.<name>.*] / [fault.<name>.count]); defaults to a disabled
    registry. *)
val create :
  ?stats:Kstats.t ->
  name:string ->
  mem:Phys_mem.t ->
  clock:Sim_clock.t ->
  cost:Cost_model.t ->
  unit ->
  t

val name : t -> string
val page_size : t -> int
val page_table : t -> Page_table.t
val phys_mem : t -> Phys_mem.t
val tlb : t -> Tlb.t

(** Total faults dispatched (including resolved ones). *)
val fault_count : t -> int

val vpn_of : t -> int -> int
val offset_of : t -> int -> int

(** Push a handler on top of the fault-handler stack. *)
val push_handler : t -> handler -> unit

(** Pop the most recently pushed handler.
    @raise Invalid_argument if the stack is empty. *)
val pop_handler : t -> unit

(** Set the active segment; every subsequent access is checked against
    it.  Defaults to {!Segment.flat}. *)
val set_segment : t -> Segment.t -> unit

val segment : t -> Segment.t

(** Map [npages] fresh zero-filled frames starting at [vpn]. *)
val map_fresh : t -> vpn:int -> npages:int -> writable:bool -> unit

(** Map a no-access guardian PTE at [vpn] (Kefence). *)
val map_guardian : t -> vpn:int -> unit

(** Unmap pages, freeing their frames and invalidating TLB entries. *)
val unmap : t -> vpn:int -> npages:int -> unit

(** Checked memory accessors.  Each charges TLB/memory costs, enforces
    the active segment, and runs the fault pipeline.  [pc] is the source
    location reported in fault diagnostics.
    @raise Fault.Fault on unresolved faults. *)

val read_bytes : ?pc:string -> t -> addr:int -> len:int -> Bytes.t
val write_bytes : ?pc:string -> t -> addr:int -> Bytes.t -> unit
val read_string : ?pc:string -> t -> addr:int -> len:int -> string
val write_string : ?pc:string -> t -> addr:int -> string -> unit
val read_u8 : ?pc:string -> t -> addr:int -> int
val write_u8 : ?pc:string -> t -> addr:int -> int -> unit

(** 64-bit little-endian machine words (mini-C [int]s and pointers). *)
val read_int : ?pc:string -> t -> addr:int -> int

val write_int : ?pc:string -> t -> addr:int -> int -> unit
