(* A virtual address space: page table + TLB + fault handling over
   physical memory.  Both kernel space and each simulated process's user
   space are instances of this module. *)

type resolution =
  | Retry        (* handler repaired the mapping; re-execute the access *)
  | Emulated     (* handler satisfied the access itself; skip it *)
  | Kill         (* unresolvable: raise Fault.Fault *)

type handler = Fault.t -> resolution

type t = {
  name : string;
  page_size : int;
  mem : Phys_mem.t;
  pt : Page_table.t;
  tlb : Tlb.t;
  clock : Sim_clock.t;
  cost : Cost_model.t;
  stats : Kstats.t;
  st_tlb_hits : Kstats.counter;
  st_tlb_misses : Kstats.counter;
  st_faults : Kstats.counter;
  mutable handlers : handler list;   (* consulted innermost-first *)
  mutable segment : Segment.t;       (* active segment for checked access *)
  mutable faults : int;
}

let create ?(stats = Kstats.create ()) ~name ~mem ~clock ~cost () =
  {
    name;
    page_size = Phys_mem.page_size mem;
    mem;
    pt = Page_table.create ();
    tlb = Tlb.create ();
    clock;
    cost;
    stats;
    st_tlb_hits = Kstats.counter stats (Printf.sprintf "tlb.%s.hits" name);
    st_tlb_misses = Kstats.counter stats (Printf.sprintf "tlb.%s.misses" name);
    st_faults = Kstats.counter stats (Printf.sprintf "fault.%s.count" name);
    handlers = [];
    segment = Segment.flat;
    faults = 0;
  }

let name t = t.name
let page_size t = t.page_size
let page_table t = t.pt
let phys_mem t = t.mem
let tlb t = t.tlb
let fault_count t = t.faults

let vpn_of t addr = addr / t.page_size
let offset_of t addr = addr mod t.page_size

(* Fault-handler stack: Kefence pushes its handler on top of the default
   one, exactly like hooking the page-fault handler in the paper. *)
let push_handler t h = t.handlers <- h :: t.handlers
let pop_handler t =
  match t.handlers with
  | [] -> invalid_arg "Address_space.pop_handler: empty"
  | _ :: rest -> t.handlers <- rest

let set_segment t seg = t.segment <- seg
let segment t = t.segment

(* Map [npages] fresh frames starting at virtual page [vpn]. *)
let map_fresh t ~vpn ~npages ~writable =
  for i = 0 to npages - 1 do
    let frame = Phys_mem.alloc_frame t.mem in
    Page_table.map t.pt ~vpn:(vpn + i) (Pte.normal ~frame ~writable)
  done

let map_guardian t ~vpn = Page_table.map t.pt ~vpn (Pte.guardian ())

let unmap t ~vpn ~npages =
  for i = 0 to npages - 1 do
    (match Page_table.lookup t.pt ~vpn:(vpn + i) with
    | Some { Pte.frame = Some f; _ } -> Phys_mem.free_frame t.mem f
    | Some _ | None -> ());
    Page_table.unmap t.pt ~vpn:(vpn + i);
    Tlb.invalidate t.tlb ~vpn:(vpn + i)
  done

let dispatch_fault t fault =
  t.faults <- t.faults + 1;
  Kstats.incr t.stats t.st_faults;
  Sim_clock.advance t.clock t.cost.Cost_model.page_fault;
  let rec try_handlers = function
    | [] -> Kill
    | h :: rest -> (
        match h fault with
        | Kill -> try_handlers rest
        | (Retry | Emulated) as r -> r)
  in
  match try_handlers t.handlers with
  | Kill -> raise (Fault.Fault fault)
  | r -> r

(* Translate one page-aligned access; returns the PTE to use. *)
let rec translate t ~addr ~access ~pc =
  let vpn = vpn_of t addr in
  if Tlb.access t.tlb ~vpn then Kstats.incr t.stats t.st_tlb_hits
  else begin
    Kstats.incr t.stats t.st_tlb_misses;
    Sim_clock.advance t.clock t.cost.Cost_model.tlb_miss
  end;
  match Page_table.lookup t.pt ~vpn with
  | None -> (
      let fault = { Fault.addr; access; reason = Fault.Not_present; pc } in
      match dispatch_fault t fault with
      | Retry -> translate t ~addr ~access ~pc
      | Emulated -> None
      | Kill -> assert false)
  | Some pte ->
      if Pte.permits pte access then Some pte
      else
        let reason =
          if pte.Pte.guardian then Fault.Guardian else Fault.Protection
        in
        let fault = { Fault.addr; access; reason; pc } in
        (match dispatch_fault t fault with
        | Retry -> translate t ~addr ~access ~pc
        | Emulated -> None
        | Kill -> assert false)

(* Iterate an access over page-sized chunks, applying [f frame off len
   src_off] per chunk.  Charges one mem_access per chunk. *)
let chunked t ~addr ~len ~access ~pc f =
  Segment.check t.segment ~addr ~len ~access ~pc;
  let rec go addr remaining src_off =
    if remaining > 0 then begin
      let off = offset_of t addr in
      let chunk = min remaining (t.page_size - off) in
      Sim_clock.advance t.clock t.cost.Cost_model.mem_access;
      (match translate t ~addr ~access ~pc with
      | Some pte -> (
          match pte.Pte.frame with
          | Some frame -> f ~frame ~off ~len:chunk ~src_off
          | None ->
              (* guardian PTE that a handler chose to tolerate: emulate as
                 zero-filled / discarded access *)
              ())
      | None -> ());
      go (addr + chunk) (remaining - chunk) (src_off + chunk)
    end
  in
  if len < 0 then invalid_arg "Address_space: negative length";
  go addr len 0

let read_bytes ?(pc = "<none>") t ~addr ~len =
  let out = Bytes.make len '\000' in
  chunked t ~addr ~len ~access:Fault.Read ~pc (fun ~frame ~off ~len ~src_off ->
      let chunk = Phys_mem.read t.mem ~frame ~off ~len in
      Bytes.blit chunk 0 out src_off len);
  out

let write_bytes ?(pc = "<none>") t ~addr src =
  let len = Bytes.length src in
  chunked t ~addr ~len ~access:Fault.Write ~pc
    (fun ~frame ~off ~len ~src_off ->
      Phys_mem.write t.mem ~frame ~off (Bytes.sub src src_off len))

let read_string ?pc t ~addr ~len =
  Bytes.to_string (read_bytes ?pc t ~addr ~len)

let write_string ?pc t ~addr s = write_bytes ?pc t ~addr (Bytes.of_string s)

let read_u8 ?pc t ~addr =
  Char.code (Bytes.get (read_bytes ?pc t ~addr ~len:1) 0)

let write_u8 ?pc t ~addr v =
  write_bytes ?pc t ~addr (Bytes.make 1 (Char.chr (v land 0xff)))

(* 63-bit little-endian integers; enough for mini-C word values. *)
let read_int ?pc t ~addr =
  let b = read_bytes ?pc t ~addr ~len:8 in
  Int64.to_int (Bytes.get_int64_le b 0)

let write_int ?pc t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  write_bytes ?pc t ~addr b
