(* Reference counter with instrumentation, plus underflow detection —
   the "incremented and decremented symmetrically" invariant the paper's
   monitors check. *)

type t = { id : int; name : string; mutable count : int }

let next_id = ref 10_000

let create ?(initial = 1) name =
  if initial < 0 then invalid_arg "Refcount.create";
  incr next_id;
  { id = !next_id; name; count = initial }

exception Underflow of string

let get ?(file = "<unknown>") ?(line = 0) t =
  t.count <- t.count + 1;
  Instrument.emit ~obj:t.id ~value:t.count ~kind:Instrument.Ref_inc ~file ~line
    ()

let put ?(file = "<unknown>") ?(line = 0) t =
  if t.count <= 0 then
    raise (Underflow (Printf.sprintf "%s: put on zero refcount" t.name));
  t.count <- t.count - 1;
  Instrument.emit ~obj:t.id ~value:t.count ~kind:Instrument.Ref_dec ~file ~line
    ();
  t.count = 0

let count t = t.count
let id t = t.id
let name t = t.name
