(* Counting semaphore.  In the single-threaded simulation a down on an
   empty semaphore cannot be satisfied by another runner, so it raises
   [Would_block]; the monitors treat that as the deadlock signal. *)

type t = { id : int; name : string; mutable count : int; mutable waiters : int }

let next_id = ref 20_000

let create ?(initial = 1) name =
  if initial < 0 then invalid_arg "Semaphore.create";
  incr next_id;
  { id = !next_id; name; count = initial; waiters = 0 }

exception Would_block of string

let down ?(file = "<unknown>") ?(line = 0) t =
  Instrument.emit ~obj:t.id ~value:t.count ~kind:Instrument.Sem_down ~file ~line
    ();
  if t.count = 0 then begin
    t.waiters <- t.waiters + 1;
    raise (Would_block t.name)
  end;
  t.count <- t.count - 1

let up ?(file = "<unknown>") ?(line = 0) t =
  t.count <- t.count + 1;
  Instrument.emit ~obj:t.id ~value:t.count ~kind:Instrument.Sem_up ~file ~line
    ()

let try_down t =
  if t.count = 0 then false
  else begin
    t.count <- t.count - 1;
    true
  end

let count t = t.count
let id t = t.id
