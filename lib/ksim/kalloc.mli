(** Kernel allocators.

    [kmalloc] models the slab allocator: fast, byte-granular carving from
    slab pages, no per-allocation page-table work — and therefore no way
    to guard an individual allocation.

    [vmalloc] models Linux's vmalloc: every allocation gets its own
    page-aligned virtually-mapped area, slower but with private PTEs —
    the property Kefence builds on (§3.2).  As in the paper, a hash table
    maps addresses to areas so vfree does not scan a list. *)

(** One vmalloc'd area. *)
type area = {
  addr : int;                (** user-visible start address *)
  size : int;                (** requested size in bytes *)
  npages : int;              (** data pages (excluding any guardian) *)
  guardian_vpn : int option; (** Kefence guardian page, if requested *)
  align_end : bool;          (** data flush against the end of last page *)
}

type t

(** [stats] receives allocation counters and the live-page gauge;
    defaults to a disabled registry. *)
val create :
  ?stats:Kstats.t ->
  space:Address_space.t ->
  clock:Sim_clock.t ->
  cost:Cost_model.t ->
  unit ->
  t

exception Out_of_memory of string

(** Wire the fault-injection engine: registers the [kalloc.kmalloc] and
    [kalloc.vmalloc] sites (an armed plan makes the corresponding
    allocator raise {!Out_of_memory} as if the region were exhausted).
    The kernel calls this once at boot. *)
val set_fault : t -> Kfault.t -> unit

(** Wire the owner of fresh allocations (the scheduler's current pid);
    crash containment uses it to find what a dying process holds.  The
    kernel calls this once at boot; [None] disables ownership tracking. *)
val set_pid_source : t -> (unit -> int) option -> unit

(** Slab allocation; 8-byte aligned.  @raise Invalid_argument on
    non-positive size, {!Out_of_memory} when the region is exhausted
    (or a kfault plan fires). *)
val kmalloc : t -> int -> int

(** @raise Invalid_argument if the address is not a live kmalloc. *)
val kfree : t -> int -> unit

(** Page-granular allocation.  With [guard] a no-access guardian PTE is
    mapped adjacent to the data; with [align_end] (default) the buffer
    ends exactly at the guardian so the first out-of-bounds byte traps,
    otherwise it starts right after it (underflow detection). *)
val vmalloc : ?guard:bool -> ?align_end:bool -> t -> int -> area

(** O(1) area lookup via the vfree hash table; charges the probe cost. *)
val find_area : t -> int -> area option

(** @raise Invalid_argument if the address is not a live vmalloc. *)
val vfree : t -> int -> unit

type stats = {
  live_areas : int;
  pages_live : int;
  pages_high_water : int;    (** the paper's "outstanding pages" metric *)
  allocs : int;
  mean_alloc_bytes : float;  (** the paper's "average allocation size" *)
}

val stats : t -> stats
val kmalloc_live_count : t -> int

(** What {!reap_pid} freed. *)
type reap = {
  reaped_kmallocs : int;
  reaped_vmallocs : int;
  reaped_vm_addrs : int list;  (** freed vmalloc addresses, ascending *)
}

(** Crash containment: free every live kmalloc and vmalloc owned by
    [pid] (per {!set_pid_source} attribution), through the normal
    kfree/vfree paths — normal charges, guardian-PTE unmaps and TLB
    shootdowns included.  Ascending address order, for determinism. *)
val reap_pid : t -> int -> reap
