(* The assembled machine: clock, physical memory, kernel and user address
   spaces, allocators, scheduler.  Every higher-level library takes a
   [Kernel.t] and builds on it. *)

type config = {
  page_size : int;
  cost : Cost_model.t;
  phys_frames_hint : int;
  ncpus : int;
}

let default_config =
  { page_size = 4096; cost = Cost_model.default; phys_frames_hint = 1024;
    ncpus = 1 }

type mode = User | Kernel_mode

type t = {
  config : config;
  clock : Sim_clock.t;
  mem : Phys_mem.t;
  kspace : Address_space.t;    (* kernel virtual address space *)
  uspace : Address_space.t;    (* (shared) user virtual address space *)
  alloc : Kalloc.t;            (* kernel allocators over kspace *)
  sched : Scheduler.t;
  kstats : Kstats.t;           (* kernel-wide metrics registry *)
  perf : Kperf.t;              (* trace rings + causal spans *)
  fault : Kfault.t;            (* deterministic fault injection *)
  st_crossings : Kstats.counter;
  st_bytes_in : Kstats.counter;
  st_bytes_out : Kstats.counter;
  lockctx : Spinlock.ctx;      (* shared, so all locks enrol in one registry *)
  (* crash containment hook: when installed (kcrash), kill sites reap the
     offender's resources instead of just marking it dead *)
  mutable reaper : (Kproc.t -> reason:string -> unit) option;
  mutable mode : mode;
  mutable user_kernel_crossings : int;
  mutable bytes_copied_user_to_kernel : int;
  mutable bytes_copied_kernel_to_user : int;
  mutable irq_depth : int;
  (* user-space heap: a bump allocator over uspace for workload buffers *)
  mutable user_brk_vpn : int;
}

let user_heap_base_vpn = 0x400

let create ?(config = default_config) () =
  let clock = Sim_clock.create () in
  let kstats = Kstats.create ~enabled:!Kstats.default_enabled () in
  let mem = Phys_mem.create ~page_size:config.page_size in
  let kspace =
    Address_space.create ~stats:kstats ~name:"kernel" ~mem ~clock
      ~cost:config.cost ()
  in
  let uspace =
    Address_space.create ~stats:kstats ~name:"user" ~mem ~clock
      ~cost:config.cost ()
  in
  let alloc =
    Kalloc.create ~stats:kstats ~space:kspace ~clock ~cost:config.cost ()
  in
  let sched =
    Scheduler.create ~stats:kstats ~ncpus:config.ncpus ~clock ~cost:config.cost
      ()
  in
  (* The tracer sits below ksim in the library graph, so the kernel wires
     it up with closures: timestamps off the simulated clock, the active
     CPU off the scheduler, and a per-event charge off the cost model.
     Disabled (the default) it never runs any of them, keeping traced and
     untraced runs bit-for-bit identical. *)
  let perf =
    Kperf.create ~enabled:!Kperf.default_enabled ~ncpus:config.ncpus
      ~stats:kstats
      ~now:(fun () -> Sim_clock.now clock)
      ~cpu:(fun () -> Scheduler.active_cpu sched)
      ~charge:(fun () ->
        Sim_clock.advance clock config.cost.Cost_model.trace_emit)
      ()
  in
  Scheduler.set_perf sched perf;
  (* Like the tracer, the fault engine sits below ksim and gets the
     clock as a closure.  Disarmed (always, until a harness arms a
     plan) every site probe is one branch and nothing else runs. *)
  let fault =
    Kfault.create ~enabled:!Kfault.default_enabled ~stats:kstats
      ~now:(fun () -> Sim_clock.now clock)
      ()
  in
  Kfault.set_perf fault (Some perf);
  Kalloc.set_fault alloc fault;
  let k =
    {
      config;
      clock;
      mem;
      kspace;
      uspace;
      alloc;
      sched;
      kstats;
      perf;
      fault;
      st_crossings = Kstats.counter kstats "kernel.crossings";
      st_bytes_in = Kstats.counter kstats "kernel.bytes_from_user";
      st_bytes_out = Kstats.counter kstats "kernel.bytes_to_user";
      lockctx =
        {
          Spinlock.sched;
          clock;
          cost = config.cost;
          stats = kstats;
          registry = Spinlock.new_registry ();
        };
      reaper = None;
      mode = User;
      user_kernel_crossings = 0;
      bytes_copied_user_to_kernel = 0;
      bytes_copied_kernel_to_user = 0;
      irq_depth = 0;
      user_brk_vpn = user_heap_base_vpn;
    }
  in
  ignore (Scheduler.spawn sched ~name:"init");
  Kalloc.set_pid_source alloc
    (Some (fun () -> (Scheduler.current sched).Kproc.pid));
  k

let clock t = t.clock
let cost t = t.config.cost
let page_size t = t.config.page_size
let kspace t = t.kspace
let uspace t = t.uspace
let alloc t = t.alloc
let sched t = t.sched
let stats t = t.kstats
let perf t = t.perf
let fault t = t.fault
let now t = Sim_clock.now t.clock
let current t = Scheduler.current t.sched
let mode t = t.mode

(* Wiring for contention-aware spinlocks (see Spinlock.ctx).  One shared
   ctx, so every lock created through it enrols in the same registry and
   crash containment can find them all. *)
let lock_ctx t = t.lockctx

(* Every contention-aware lock in the machine, in creation order. *)
let locks t = Spinlock.registered t.lockctx.Spinlock.registry

(* --- oops containment -------------------------------------------------- *)

(* A kernel fault that was contained: only [pid] died.  Raised to the
   caller of the syscall in place of the fault itself, so harnesses can
   count it as a clean kill rather than an escape. *)
exception Oops of { pid : int; reason : string }

let set_reaper t f = t.reaper <- f
let has_reaper t = t.reaper <> None

(* Kill [p], reaping what it held if a reaper (kcrash) is installed;
   without one this is exactly the legacy [Scheduler.kill]. *)
let reap t p ~reason =
  match t.reaper with
  | Some f -> f p ~reason
  | None -> Scheduler.kill t.sched p

(* Crash unwinding: drop straight back to user mode without charging the
   normal exit path — the kernel stay this closes belongs to a process
   that is being destroyed, not returning. *)
let force_user_mode t =
  if t.mode = Kernel_mode then begin
    t.mode <- User;
    (current t).Kproc.kernel_entry <- None
  end

(* --- user/kernel boundary -------------------------------------------- *)

exception Kernel_mode_violation of string

let enter_kernel t =
  if t.mode = Kernel_mode then
    raise (Kernel_mode_violation "enter_kernel: already in kernel mode");
  t.user_kernel_crossings <- t.user_kernel_crossings + 1;
  Kstats.incr t.kstats t.st_crossings;
  t.mode <- Kernel_mode;
  let p = current t in
  (* the trap itself is system time: record entry before charging it *)
  p.Kproc.kernel_entry <- Some (Sim_clock.now t.clock);
  p.Kproc.io_wait_at_entry <- p.Kproc.io_wait;
  Sim_clock.advance t.clock t.config.cost.Cost_model.syscall_entry

let exit_kernel t =
  if t.mode = User then
    raise (Kernel_mode_violation "exit_kernel: not in kernel mode");
  Sim_clock.advance t.clock t.config.cost.Cost_model.syscall_exit;
  t.mode <- User;
  let p = current t in
  (match p.Kproc.kernel_entry with
  | Some entry ->
      (* system time is kernel CPU time: blocking on the disk counts
         toward elapsed but not stime, like time(1) reports *)
      let io = p.Kproc.io_wait - p.Kproc.io_wait_at_entry in
      p.Kproc.stime <- p.Kproc.stime + (Sim_clock.now t.clock - entry) - io;
      p.Kproc.kernel_entry <- None
  | None -> ())

(* Charge disk-wait time: advances the wall clock, counted out of stime. *)
let charge_io t cycles =
  Sim_clock.advance t.clock cycles;
  let p = current t in
  p.Kproc.io_wait <- p.Kproc.io_wait + cycles

(* Charge user-mode CPU work to the current process. *)
let charge_user t cycles =
  Sim_clock.advance t.clock cycles;
  let p = current t in
  p.Kproc.utime <- p.Kproc.utime + cycles

(* Charge kernel-mode CPU work (stime is accumulated at exit_kernel from
   the wall clock, so this only advances the clock). *)
let charge_kernel t cycles = Sim_clock.advance t.clock cycles

let copy_from_user t ~uaddr ~len =
  if t.mode <> Kernel_mode then
    raise (Kernel_mode_violation "copy_from_user in user mode");
  Sim_clock.advance t.clock (Cost_model.copy_cost t.config.cost len);
  t.bytes_copied_user_to_kernel <- t.bytes_copied_user_to_kernel + len;
  Kstats.add t.kstats t.st_bytes_in len;
  Address_space.read_bytes t.uspace ~addr:uaddr ~len

let copy_to_user t ~uaddr src =
  if t.mode <> Kernel_mode then
    raise (Kernel_mode_violation "copy_to_user in user mode");
  let len = Bytes.length src in
  Sim_clock.advance t.clock (Cost_model.copy_cost t.config.cost len);
  t.bytes_copied_kernel_to_user <- t.bytes_copied_kernel_to_user + len;
  Kstats.add t.kstats t.st_bytes_out len;
  Address_space.write_bytes t.uspace ~addr:uaddr src

(* Charge-only copy accounting: used by the syscall layer, whose data
   path carries host bytes.  The cycle cost and byte counters are the
   same as for the address-based copies above. *)
let charge_copy_from_user t len =
  if t.mode <> Kernel_mode then
    raise (Kernel_mode_violation "copy_from_user in user mode");
  Sim_clock.advance t.clock (Cost_model.copy_cost t.config.cost len);
  t.bytes_copied_user_to_kernel <- t.bytes_copied_user_to_kernel + len

let charge_copy_to_user t len =
  if t.mode <> Kernel_mode then
    raise (Kernel_mode_violation "copy_to_user in user mode");
  Sim_clock.advance t.clock (Cost_model.copy_cost t.config.cost len);
  t.bytes_copied_kernel_to_user <- t.bytes_copied_kernel_to_user + len

let crossings t = t.user_kernel_crossings
let bytes_from_user t = t.bytes_copied_user_to_kernel
let bytes_to_user t = t.bytes_copied_kernel_to_user

(* --- interrupts ------------------------------------------------------- *)

let irq_disable ?(file = "<unknown>") ?(line = 0) t =
  t.irq_depth <- t.irq_depth + 1;
  Instrument.emit ~obj:0 ~value:t.irq_depth ~kind:Instrument.Irq_disable ~file
    ~line ()

exception Irq_unbalanced

let irq_enable ?(file = "<unknown>") ?(line = 0) t =
  if t.irq_depth = 0 then raise Irq_unbalanced;
  t.irq_depth <- t.irq_depth - 1;
  Instrument.emit ~obj:0 ~value:t.irq_depth ~kind:Instrument.Irq_enable ~file
    ~line ()

let irq_depth t = t.irq_depth

(* --- user heap -------------------------------------------------------- *)

(* Allocate user-space memory for workload buffers; user pages, like the
   kernel's, live in the shared physical pool. *)
let user_alloc t size =
  if size <= 0 then invalid_arg "user_alloc";
  let npages = (size + t.config.page_size - 1) / t.config.page_size in
  let vpn = t.user_brk_vpn in
  t.user_brk_vpn <- t.user_brk_vpn + npages + 1;
  Address_space.map_fresh t.uspace ~vpn ~npages ~writable:true;
  vpn * t.config.page_size

(* --- process statistics ----------------------------------------------- *)

type times = { elapsed : int; utime : int; stime : int }

(* Run [f] as the current process and report elapsed/user/system cycles
   attributable to it, like time(1) does for the paper's benchmarks. *)
let timed t f =
  let p = current t in
  let t0 = Sim_clock.now t.clock in
  let u0 = p.Kproc.utime and s0 = p.Kproc.stime in
  let v = f () in
  let times =
    {
      elapsed = Sim_clock.now t.clock - t0;
      utime = p.Kproc.utime - u0;
      stime = p.Kproc.stime - s0;
    }
  in
  (v, times)
