(** Round-robin preemptive scheduler over N simulated CPUs.

    The simulation executes workloads as OCaml code, so preemption is
    realized at explicit checkpoints: long-running kernel paths (notably
    the Cosy interpreter's loop back-edges) call {!checkpoint}.  When the
    current process has run past its timeslice, a context switch is
    charged and the runqueue rotates — this is what gives Cosy's watchdog
    its teeth (paper §2.3).

    SMP model: execution stays serialized, but each CPU carries a local
    clock of the wall time it has notionally consumed in parallel.  A
    driver runs slices of work under {!run_on}; the global clock delta of
    each slice is credited to that CPU's local clock, and {!makespan}
    (the busiest CPU) is the elapsed time of the parallel run.
    {!Spinlock} compares local clocks across CPUs to decide whether a
    lock was still held when another CPU reached it. *)

type t

(** [stats] receives context-switch / preemption / spawn counters;
    defaults to a disabled registry.  [ncpus] defaults to 1 (the
    pre-SMP behaviour, bit-for-bit). *)
val create :
  ?stats:Kstats.t -> ?ncpus:int -> clock:Sim_clock.t -> cost:Cost_model.t ->
  unit -> t

val ncpus : t -> int

(** CPU whose work the serialized simulation is currently executing
    (0 outside any {!run_on}). *)
val active_cpu : t -> int

(** Wire the kperf tracer so context switches emit trace instants
    (called by [Kernel.create]; emission is a no-op while the tracer is
    disabled). *)
val set_perf : t -> Kperf.t -> unit

(** Create a process and append it to a runqueue; the first process on a
    CPU becomes that CPU's current.  Without [cpu] the least-loaded CPU
    is chosen. *)
val spawn : ?cpu:int -> t -> name:string -> Kproc.t

exception No_current_process

(** The running process on the active CPU.  @raise No_current_process
    when none exists (never the case for a kernel created through
    {!Kernel.create}). *)
val current : t -> Kproc.t

(** Make [p] the running process on its CPU, demoting the previous
    current to ready.  Used by SMP drivers to interleave workload
    processes. *)
val activate : t -> Kproc.t -> unit

(** Force a context switch on the active CPU: charges the switch cost
    and rotates that CPU's runqueue. *)
val context_switch : t -> unit

(** Preemption point: if the current timeslice on the active CPU is
    exhausted, count a preemption and switch. *)
val checkpoint : t -> unit

(** Terminate a process.  If it was the last one anywhere, a fresh
    [init] is spawned so the machine always runs something. *)
val kill : t -> Kproc.t -> unit

(** [run_on t ~cpu f] runs [f] as a slice of [cpu]'s work: the global
    clock delta it produces is credited to that CPU's local clock.
    Restores the previously active CPU on exit (also on exception). *)
val run_on : t -> cpu:int -> (unit -> 'a) -> 'a

(** Local wall time of the active CPU.  Outside {!run_on} this is just
    the global clock, so single-CPU runs are unaffected. *)
val local_now : t -> int

(** Accumulated local wall time of [cpu] (completed {!run_on} slices). *)
val cpu_time : t -> int -> int

(** Elapsed time of the parallel run: the busiest CPU's local clock. *)
val makespan : t -> int

val context_switches : t -> int
val preemptions : t -> int
val process_count : t -> int
