(** Round-robin preemptive scheduler.

    The simulation executes workloads as OCaml code, so preemption is
    realized at explicit checkpoints: long-running kernel paths (notably
    the Cosy interpreter's loop back-edges) call {!checkpoint}.  When the
    current process has run past its timeslice, a context switch is
    charged and the runqueue rotates — this is what gives Cosy's watchdog
    its teeth (paper §2.3). *)

type t

(** [stats] receives context-switch / preemption / spawn counters;
    defaults to a disabled registry. *)
val create : ?stats:Kstats.t -> clock:Sim_clock.t -> cost:Cost_model.t -> unit -> t

(** Create a process and append it to the runqueue; the first process
    spawned becomes current. *)
val spawn : t -> name:string -> Kproc.t

exception No_current_process

(** The running process.  @raise No_current_process when none exists
    (never the case for a kernel created through {!Kernel.create}). *)
val current : t -> Kproc.t

(** Force a context switch: charges the switch cost and rotates the
    runqueue. *)
val context_switch : t -> unit

(** Preemption point: if the current timeslice is exhausted, count a
    preemption and switch. *)
val checkpoint : t -> unit

(** Terminate a process.  If it was the last one, a fresh [init] is
    spawned so the machine always runs something. *)
val kill : t -> Kproc.t -> unit

val context_switches : t -> int
val preemptions : t -> int
val process_count : t -> int
