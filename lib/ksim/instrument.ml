(* Low-level instrumentation indirection.  Kernel objects (spinlocks,
   reference counters, interrupt state) report events through [log];
   the kmonitor library installs the real dispatcher here.  Keeping only
   the indirection in ksim avoids a dependency cycle while matching the
   paper's design: log_event is a single entry point invoked from
   anywhere in the kernel, including interrupt context. *)

type kind =
  | Lock
  | Unlock
  | Contended
  | Ref_inc
  | Ref_dec
  | Irq_disable
  | Irq_enable
  | Sem_down
  | Sem_up
  | Custom of int

let kind_code = function
  | Lock -> 1
  | Unlock -> 2
  | Ref_inc -> 3
  | Ref_dec -> 4
  | Irq_disable -> 5
  | Irq_enable -> 6
  | Sem_down -> 7
  | Sem_up -> 8
  | Contended -> 9
  | Custom n -> 100 + n

(* Registration table for [Custom] kinds, so subsystem-defined events
   (e.g. kstats snapshots) print under a meaningful name instead of
   "custom-N".  Process-global, like the kind space itself. *)
let custom_names : (int, string) Hashtbl.t = Hashtbl.create 8

let register_custom_name n name = Hashtbl.replace custom_names n name
let custom_name n = Hashtbl.find_opt custom_names n

let pp_kind ppf k =
  let s =
    match k with
    | Lock -> "lock"
    | Unlock -> "unlock"
    | Contended -> "contended"
    | Ref_inc -> "ref-inc"
    | Ref_dec -> "ref-dec"
    | Irq_disable -> "irq-disable"
    | Irq_enable -> "irq-enable"
    | Sem_down -> "sem-down"
    | Sem_up -> "sem-up"
    | Custom n -> (
        match custom_name n with
        | Some name -> name
        | None -> Printf.sprintf "custom-%d" n)
  in
  Fmt.string ppf s

(* Mirrors the paper's per-event record: an object reference, an event
   type, the source file/line that triggered it, and the process on whose
   behalf it fired (0 = interrupt/unattributed context). *)
type event = {
  obj : int;          (* identity of the affected kernel object *)
  value : int;        (* current value, e.g. refcount after the event *)
  kind : kind;
  file : string;
  line : int;
  pid : int;          (* acting process, 0 when unattributed *)
}

let pp_event ppf e =
  Fmt.pf ppf "obj=%d %a value=%d pid=%d (%s:%d)" e.obj pp_kind e.kind e.value
    e.pid e.file e.line

(* Default: instrumentation compiled out — events vanish at the cost of a
   single indirect call, as in an uninstrumented kernel. *)
let log : (event -> unit) ref = ref (fun _ -> ())

let enabled = ref false

let emit ?(pid = 0) ~obj ~value ~kind ~file ~line () =
  if !enabled then !log { obj; value; kind; file; line; pid }
