(* Process control block for the simulated kernel. *)

type state = Ready | Running | Blocked | Dead

let pp_state ppf s =
  Fmt.string ppf
    (match s with
    | Ready -> "ready"
    | Running -> "running"
    | Blocked -> "blocked"
    | Dead -> "dead")

type t = {
  pid : int;
  name : string;
  mutable cpu : int;                (* simulated CPU this process runs on *)
  mutable state : state;
  mutable utime : int;              (* cycles spent in user mode *)
  mutable stime : int;              (* cycles spent in kernel mode *)
  mutable syscalls : int;           (* syscall count *)
  mutable kernel_entry : int option;(* clock value at last kernel entry *)
  mutable io_wait : int;            (* cycles spent waiting on disk I/O *)
  mutable io_wait_at_entry : int;   (* io_wait snapshot at kernel entry *)
  mutable kernel_budget_used : int; (* continuous kernel cycles (Cosy watchdog) *)
  mutable fd_table : (int, int) Hashtbl.t; (* fd -> vfs file handle *)
  mutable next_fd : int;
  mutable cwd : string;
}

let create ?(cpu = 0) ~pid ~name () =
  {
    pid;
    name;
    cpu;
    state = Ready;
    utime = 0;
    stime = 0;
    syscalls = 0;
    kernel_entry = None;
    io_wait = 0;
    io_wait_at_entry = 0;
    kernel_budget_used = 0;
    fd_table = Hashtbl.create 16;
    next_fd = 3;  (* 0,1,2 reserved as in Unix *)
    cwd = "/";
  }

let alloc_fd t handle =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fd_table fd handle;
  fd

let lookup_fd t fd = Hashtbl.find_opt t.fd_table fd

let release_fd t fd =
  match Hashtbl.find_opt t.fd_table fd with
  | None -> None
  | Some h ->
      Hashtbl.remove t.fd_table fd;
      Some h

let open_fd_count t = Hashtbl.length t.fd_table

let pp ppf t =
  Fmt.pf ppf "pid=%d %s %a utime=%d stime=%d syscalls=%d" t.pid t.name
    pp_state t.state t.utime t.stime t.syscalls
