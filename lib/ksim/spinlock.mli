(** Spinlock with instrumentation hooks and an SMP contention model.

    Execution is serialized, so a recursive acquisition or unlocking a
    free lock still indicates a locking bug and raises {!Deadlock}.
    When a lock is created with a {!ctx}, contention is derived from the
    scheduler's per-CPU local clocks: each critical section charges
    [Cost_model.lock_hold] cycles and records its hold window in
    parallel time; an acquirer on a different CPU whose local time lands
    inside another CPU's window waits for that hold's release (chaining
    through convoys), charged as spin cycles up to [Cost_model.spin_cap]
    and as a blocking context switch beyond, plus a cacheline bounce for
    the cross-CPU ownership migration.  At ncpus=1 no contention cost is
    ever charged, preserving single-CPU runs bit-for-bit.

    Every acquire/release emits an {!Ksim.Instrument.event}, which is
    how experiment E6 counts [dcache_lock] acquisitions; contended
    acquisitions additionally emit a [Contended] event whose value is
    the spin cycles charged. *)

(** Enrolment of every lock created under a {!ctx}; crash containment
    scans it for locks a dying process still holds.  Create with
    {!new_registry}. *)
type registry

(** Scheduler/clock/cost wiring that makes a lock contention-aware and
    feeds its [lock.<name>.*] kstats (acquisitions, contended,
    spin_cycles).  Obtain one via [Kernel.lock_ctx]. *)
type ctx = {
  sched : Scheduler.t;
  clock : Sim_clock.t;
  cost : Cost_model.t;
  stats : Kstats.t;
  registry : registry;
}

type t

val new_registry : unit -> registry

(** Every lock enrolled in the registry, in creation order. *)
val registered : registry -> t list

(** Without [ctx] the lock is purely functional bookkeeping (no
    contention model, no kstats) — the pre-SMP behaviour.  With [perf]
    each contended wait additionally emits a kperf span (cat ["lock"],
    name the lock's name, arg the spin cycles) so convoys appear in
    flamegraphs and Perfetto traces. *)
val create : ?ctx:ctx -> ?perf:Kperf.t -> string -> t

exception Deadlock of string

(** Acquire.  [file]/[line] flow into the instrumentation event; [pid]
    identifies the holder for recursion detection and event attribution.
    @raise Deadlock on recursive acquisition by the same [pid]. *)
val lock : ?file:string -> ?line:int -> ?pid:int -> t -> unit

(** Release.  @raise Deadlock if the lock is not held. *)
val unlock : ?file:string -> ?line:int -> t -> unit

(** [with_lock t f] runs [f] under the lock, releasing on exception. *)
val with_lock : ?file:string -> ?line:int -> ?pid:int -> t -> (unit -> 'a) -> 'a

(** Crash containment: rip the lock out of a dying holder's hands.  If
    held, marks the lock {!poisoned} (its critical section may be
    half-done), resets it to free, emits a [Contended] event with value
    [-1] followed by the normal [Unlock], bumps [lock.<name>.contended],
    and returns [true]; returns [false] if the lock was free. *)
val force_release : ?file:string -> ?line:int -> t -> bool

val is_locked : t -> bool

(** The pid currently holding the lock, or -1. *)
val holder : t -> int

(** True once the lock has been {!force_release}d. *)
val poisoned : t -> bool

(** Total acquisitions over the lock's lifetime. *)
val acquisitions : t -> int

(** Acquisitions that found the lock held on another CPU. *)
val contended : t -> int

(** Total cycles spent spinning on this lock. *)
val spin_cycles : t -> int

(** Instrumentation identity of this lock (the [obj] field of its events). *)
val id : t -> int

val name : t -> string
