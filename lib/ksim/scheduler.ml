(* Round-robin preemptive scheduler.

   The simulation executes workloads as OCaml code, so preemption is
   realized at explicit checkpoints: long-running kernel paths (notably
   the Cosy interpreter's loop back-edges) call [checkpoint].  When the
   current process has run past its timeslice, a context switch is
   charged and the next runnable process notionally runs — this is what
   gives Cosy's watchdog its teeth: a compound stuck in an infinite loop
   keeps hitting checkpoints, keeps being charged, and is killed once it
   exhausts its kernel-time budget (paper §2.3). *)

type t = {
  clock : Sim_clock.t;
  cost : Cost_model.t;
  stats : Kstats.t;
  st_switches : Kstats.counter;
  st_preemptions : Kstats.counter;
  st_spawns : Kstats.counter;
  mutable procs : Kproc.t list;
  mutable current : Kproc.t option;
  mutable next_pid : int;
  mutable slice_start : int;          (* clock value at slice start *)
  mutable context_switches : int;
  mutable preemptions : int;
}

let create ?(stats = Kstats.create ()) ~clock ~cost () =
  {
    clock;
    cost;
    stats;
    st_switches = Kstats.counter stats "sched.context_switches";
    st_preemptions = Kstats.counter stats "sched.preemptions";
    st_spawns = Kstats.counter stats "sched.spawns";
    procs = [];
    current = None;
    next_pid = 1;
    slice_start = 0;
    context_switches = 0;
    preemptions = 0;
  }

let spawn t ~name =
  let p = Kproc.create ~pid:t.next_pid ~name in
  Kstats.incr t.stats t.st_spawns;
  t.next_pid <- t.next_pid + 1;
  t.procs <- t.procs @ [ p ];
  if t.current = None then begin
    p.Kproc.state <- Kproc.Running;
    t.current <- Some p;
    t.slice_start <- Sim_clock.now t.clock
  end;
  p

exception No_current_process

let current t =
  match t.current with Some p -> p | None -> raise No_current_process

let context_switch t =
  Sim_clock.advance t.clock t.cost.Cost_model.context_switch;
  t.context_switches <- t.context_switches + 1;
  Kstats.incr t.stats t.st_switches;
  t.slice_start <- Sim_clock.now t.clock;
  (* rotate the runqueue *)
  match t.procs with
  | [] | [ _ ] -> ()
  | p :: rest ->
      t.procs <- rest @ [ p ];
      (match t.current with
      | Some c when c.Kproc.state = Kproc.Running ->
          c.Kproc.state <- Kproc.Ready
      | Some _ | None -> ());
      let next =
        List.find_opt (fun q -> q.Kproc.state = Kproc.Ready) t.procs
      in
      (match next with
      | Some n ->
          n.Kproc.state <- Kproc.Running;
          t.current <- Some n
      | None -> ())

(* Exceeded-timeslice check; long kernel paths call this at back-edges. *)
let checkpoint t =
  let elapsed = Sim_clock.now t.clock - t.slice_start in
  if elapsed >= t.cost.Cost_model.timeslice then begin
    t.preemptions <- t.preemptions + 1;
    Kstats.incr t.stats t.st_preemptions;
    (match t.current with
    | Some p -> p.Kproc.kernel_budget_used <- p.Kproc.kernel_budget_used + elapsed
    | None -> ());
    context_switch t
  end

let kill t p =
  p.Kproc.state <- Kproc.Dead;
  t.procs <- List.filter (fun q -> q != p) t.procs;
  (match t.current with
  | Some c when c == p ->
      t.current <-
        List.find_opt (fun q -> q.Kproc.state <> Kproc.Dead) t.procs
  | Some _ | None -> ());
  (* the machine always runs something; killing the last process hands
     the CPU to a fresh idle/init task *)
  if t.current = None then ignore (spawn t ~name:"init")

let context_switches t = t.context_switches
let preemptions t = t.preemptions
let process_count t = List.length t.procs
