(* Round-robin preemptive scheduler over N simulated CPUs.

   The simulation executes workloads as OCaml code, so preemption is
   realized at explicit checkpoints: long-running kernel paths (notably
   the Cosy interpreter's loop back-edges) call [checkpoint].  When the
   current process has run past its timeslice, a context switch is
   charged and the next runnable process notionally runs — this is what
   gives Cosy's watchdog its teeth: a compound stuck in an infinite loop
   keeps hitting checkpoints, keeps being charged, and is killed once it
   exhausts its kernel-time budget (paper §2.3).

   SMP model.  Execution remains serialized (one OCaml thread), but each
   CPU carries a *local clock*: the wall time that CPU has notionally
   consumed running its processes in parallel with the others.  A driver
   runs a slice of some process's work inside [run_on ~cpu f]; the global
   Sim_clock delta of the slice is credited to that CPU's local clock.
   Local clocks share an origin, so comparing them across CPUs is
   comparing parallel wall time — which is exactly what the
   contention-aware [Spinlock] does to decide whether a lock held on
   another CPU was still held when this CPU reached it.  The makespan
   (max over local clocks) is the elapsed time of the parallel run. *)

type t = {
  clock : Sim_clock.t;
  cost : Cost_model.t;
  stats : Kstats.t;
  st_switches : Kstats.counter;
  st_preemptions : Kstats.counter;
  st_spawns : Kstats.counter;
  ncpus : int;
  queues : Kproc.t list array;        (* per-CPU runqueue, current first *)
  currents : Kproc.t option array;
  cpu_clock : int array;              (* accumulated local wall time *)
  slice_start : int array;            (* global clock value at slice start *)
  mutable active_cpu : int;           (* CPU the serialized sim is executing *)
  mutable chunk_base : int option;    (* global clock at run_on entry *)
  mutable next_pid : int;
  mutable context_switches : int;
  mutable preemptions : int;
  mutable perf : Kperf.t option;      (* tracer, wired by Kernel.create *)
}

let create ?(stats = Kstats.create ()) ?(ncpus = 1) ~clock ~cost () =
  if ncpus < 1 then invalid_arg "Scheduler.create: ncpus";
  {
    clock;
    cost;
    stats;
    st_switches = Kstats.counter stats "sched.context_switches";
    st_preemptions = Kstats.counter stats "sched.preemptions";
    st_spawns = Kstats.counter stats "sched.spawns";
    ncpus;
    queues = Array.make ncpus [];
    currents = Array.make ncpus None;
    cpu_clock = Array.make ncpus 0;
    slice_start = Array.make ncpus 0;
    active_cpu = 0;
    chunk_base = None;
    next_pid = 1;
    context_switches = 0;
    preemptions = 0;
    perf = None;
  }

let ncpus t = t.ncpus
let active_cpu t = t.active_cpu
let set_perf t p = t.perf <- Some p

(* Least-loaded CPU (lowest index on ties), so spawns without an explicit
   placement spread round-robin across an idle machine. *)
let pick_cpu t =
  let best = ref 0 in
  for c = 1 to t.ncpus - 1 do
    if List.length t.queues.(c) < List.length t.queues.(!best) then best := c
  done;
  !best

let spawn ?cpu t ~name =
  let cpu =
    match cpu with
    | Some c ->
        if c < 0 || c >= t.ncpus then invalid_arg "Scheduler.spawn: cpu";
        c
    | None -> pick_cpu t
  in
  let p = Kproc.create ~cpu ~pid:t.next_pid ~name () in
  Kstats.incr t.stats t.st_spawns;
  t.next_pid <- t.next_pid + 1;
  t.queues.(cpu) <- t.queues.(cpu) @ [ p ];
  if t.currents.(cpu) = None then begin
    p.Kproc.state <- Kproc.Running;
    t.currents.(cpu) <- Some p;
    t.slice_start.(cpu) <- Sim_clock.now t.clock
  end;
  p

exception No_current_process

let current t =
  match t.currents.(t.active_cpu) with
  | Some p -> p
  | None -> raise No_current_process

(* Make [p] the running process on its CPU (the SMP driver switches
   between workload processes this way; the demoted process stays on the
   runqueue, ready). *)
let activate t p =
  let cpu = p.Kproc.cpu in
  (match t.currents.(cpu) with
  | Some q when q != p && q.Kproc.state = Kproc.Running ->
      q.Kproc.state <- Kproc.Ready
  | Some _ | None -> ());
  p.Kproc.state <- Kproc.Running;
  t.currents.(cpu) <- Some p;
  t.slice_start.(cpu) <- Sim_clock.now t.clock

let context_switch t =
  let cpu = t.active_cpu in
  Sim_clock.advance t.clock t.cost.Cost_model.context_switch;
  t.context_switches <- t.context_switches + 1;
  Kstats.incr t.stats t.st_switches;
  (* trace the switch, attributed to the outgoing process and parented
     to whatever span the CPU was inside (a ring drain, a lock wait) *)
  (match t.perf with
  | Some perf ->
      let pid =
        match t.currents.(cpu) with Some p -> p.Kproc.pid | None -> 0
      in
      Kperf.instant perf ~pid ~arg:cpu ~cat:"sched" ~name:"context_switch" ()
  | None -> ());
  t.slice_start.(cpu) <- Sim_clock.now t.clock;
  (* rotate this CPU's runqueue *)
  match t.queues.(cpu) with
  | [] | [ _ ] -> ()
  | p :: rest ->
      t.queues.(cpu) <- rest @ [ p ];
      (match t.currents.(cpu) with
      | Some c when c.Kproc.state = Kproc.Running ->
          c.Kproc.state <- Kproc.Ready
      | Some _ | None -> ());
      let next =
        List.find_opt (fun q -> q.Kproc.state = Kproc.Ready) t.queues.(cpu)
      in
      (match next with
      | Some n ->
          n.Kproc.state <- Kproc.Running;
          t.currents.(cpu) <- Some n
      | None -> ())

(* Exceeded-timeslice check; long kernel paths call this at back-edges. *)
let checkpoint t =
  let cpu = t.active_cpu in
  let elapsed = Sim_clock.now t.clock - t.slice_start.(cpu) in
  if elapsed >= t.cost.Cost_model.timeslice then begin
    t.preemptions <- t.preemptions + 1;
    Kstats.incr t.stats t.st_preemptions;
    (match t.currents.(cpu) with
    | Some p -> p.Kproc.kernel_budget_used <- p.Kproc.kernel_budget_used + elapsed
    | None -> ());
    context_switch t
  end

let process_count t =
  Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues

let kill t p =
  let cpu = p.Kproc.cpu in
  p.Kproc.state <- Kproc.Dead;
  t.queues.(cpu) <- List.filter (fun q -> q != p) t.queues.(cpu);
  (match t.currents.(cpu) with
  | Some c when c == p ->
      t.currents.(cpu) <-
        List.find_opt (fun q -> q.Kproc.state <> Kproc.Dead) t.queues.(cpu)
  | Some _ | None -> ());
  (* the machine always runs something; killing the last process hands
     the CPU to a fresh idle/init task *)
  if process_count t = 0 then ignore (spawn ~cpu t ~name:"init")

(* --- SMP time accounting ---------------------------------------------- *)

(* Run [f] as a slice of CPU [cpu]'s work: the global-clock delta it
   produces is wall time consumed by that CPU, credited to its local
   clock.  Nests; the inner slice's time is credited to the inner CPU
   (and, deliberately, also elapses on the outer one, like a remote
   helper executing synchronously). *)
let run_on t ~cpu f =
  if cpu < 0 || cpu >= t.ncpus then invalid_arg "Scheduler.run_on: cpu";
  let prev_cpu = t.active_cpu and prev_base = t.chunk_base in
  t.active_cpu <- cpu;
  t.chunk_base <- Some (Sim_clock.now t.clock);
  Fun.protect f ~finally:(fun () ->
      (match t.chunk_base with
      | Some base ->
          t.cpu_clock.(cpu) <-
            t.cpu_clock.(cpu) + (Sim_clock.now t.clock - base)
      | None -> ());
      t.active_cpu <- prev_cpu;
      t.chunk_base <- prev_base)

(* Local wall time of the active CPU.  Outside [run_on] (the single-CPU
   fast path) local time is just global time. *)
let local_now t =
  match t.chunk_base with
  | None -> Sim_clock.now t.clock
  | Some base ->
      t.cpu_clock.(t.active_cpu) + (Sim_clock.now t.clock - base)

let cpu_time t cpu =
  if cpu < 0 || cpu >= t.ncpus then invalid_arg "Scheduler.cpu_time: cpu";
  t.cpu_clock.(cpu)

(* Elapsed time of a parallel run: the busiest CPU's local clock. *)
let makespan t = Array.fold_left max 0 t.cpu_clock

let context_switches t = t.context_switches
let preemptions t = t.preemptions
