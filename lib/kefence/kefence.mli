(** Kefence (§3.2): hardware-assisted detection of kernel buffer
    overflows.

    Allocations are page-aligned vmalloc areas with an adjacent guardian
    PTE whose permissions are disabled; the buffer is placed flush
    against the guardian so the first out-of-bounds byte faults.  A
    handler pushed onto the kernel address space's fault stack reports
    each overflow (with the faulting source location, like the paper's
    syslog lines) and then reacts according to the configured mode. *)

(** Reaction to a detected overflow. *)
type mode =
  | Crash        (** kill the module at the overflow (security-critical) *)
  | Log_only     (** suppress the access and continue *)
  | Auto_map_ro  (** auto-map a read-only page: oob reads proceed,
                     writes still kill (debugging reads) *)
  | Auto_map_rw  (** auto-map a writable page: run to completion with
                     everything logged (debugging writes) *)

val pp_mode : Format.formatter -> mode -> unit

(** One syslog-style overflow report. *)
type report = {
  fault_addr : int;
  access : Ksim.Fault.access;
  pc : string;               (** source file:line of the overflowing code *)
  buffer : int option;       (** base address of the overflowed buffer *)
  buffer_size : int option;
  time : int;                (** virtual cycles at detection *)
}

val pp_report : Format.formatter -> report -> unit

(** Which end of the buffer is guarded; page-multiple allocations are
    effectively protected on both ends with [Overflow]. *)
type protect = Overflow | Underflow

(** Dynamic protection decision (§3.5 future work, implemented): after
    [trust_site_after] clean allocations, an allocation site falls back
    to plain kmalloc, reclaiming the page and vmalloc costs.  A site
    blamed for an overflow via {!distrust_site} is guarded forever. *)
type dynamic_policy = { trust_site_after : int }

type t

(** Install Kefence on a kernel: pushes the overflow handler onto the
    kernel address space's fault stack. *)
val create :
  ?mode:mode -> ?protect:protect -> ?dynamic:dynamic_policy -> Ksim.Kernel.t -> t

val set_mode : t -> mode -> unit
val mode : t -> mode

(** Allocate a guarded buffer; [site] identifies the allocation site for
    the dynamic policy (no site = always guarded). *)
val alloc : ?site:string -> t -> int -> int

(** Free a buffer allocated by {!alloc} (guarded or not).
    @raise Invalid_argument on unknown addresses. *)
val free : t -> int -> unit

(** Drop the bookkeeping for a buffer whose memory was already freed by
    someone else — kcrash reaps a dying module's vmalloc areas (guardian
    PTEs included) through [Kalloc.reap_pid] and then calls this.
    Returns whether the address was a kefence buffer. *)
val forget : t -> int -> bool

(** Mark an allocation site as overflow-prone: guarded again from now on. *)
val distrust_site : t -> string -> unit

(** Allocations that skipped the guard under the dynamic policy. *)
val unguarded_allocs : t -> int

(** Reports, oldest first. *)
val reports : t -> report list

val overflows_detected : t -> int
val live_buffers : t -> int

(** Rendered reports, oldest first. *)
val syslog : t -> string list
