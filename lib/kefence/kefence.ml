(* Kefence (§3.2): hardware-assisted detection of kernel buffer overflows.

   Allocations are page-aligned vmalloc areas with an adjacent *guardian
   PTE* whose read and write permissions are disabled; the buffer is
   placed flush against the guardian so the first out-of-bounds byte
   faults.  The page-fault handler is extended: when the faulting address
   falls on a guardian PTE it reports a buffer overflow with the faulting
   source location, then reacts according to the configured mode:

   - [Crash]: the module is terminated (the fault propagates), preventing
     further malicious operations — the security-critical configuration;
   - [Log_only]: the access is suppressed and execution continues;
   - [Auto_map_ro]: a page is auto-mapped read-only, so out-of-bounds
     reads proceed (for debugging) but writes still kill the module;
   - [Auto_map_rw]: a writable page is auto-mapped and the overflowing
     code runs to completion while everything is logged.

   A hash table maps buffer addresses to areas so vfree stays O(1)
   (the paper's "hash table to store the information about virtual
   memory buffers"). *)

type mode = Crash | Log_only | Auto_map_ro | Auto_map_rw

let pp_mode ppf m =
  Fmt.string ppf
    (match m with
    | Crash -> "crash"
    | Log_only -> "log-only"
    | Auto_map_ro -> "auto-map-ro"
    | Auto_map_rw -> "auto-map-rw")

type report = {
  fault_addr : int;
  access : Ksim.Fault.access;
  pc : string;                (* source file:line of the overflowing code *)
  buffer : int option;        (* base address of the overflowed buffer *)
  buffer_size : int option;
  time : int;                 (* virtual cycles *)
}

let pp_report ppf r =
  Fmt.pf ppf "kefence: %a overflow at 0x%x (%s) buffer=%a size=%a t=%d"
    Ksim.Fault.pp_access r.access r.fault_addr r.pc
    Fmt.(option ~none:(any "?") (fmt "0x%x"))
    r.buffer
    Fmt.(option ~none:(any "?") int)
    r.buffer_size r.time

type protect = Overflow | Underflow

(* Dynamic protection decision (§3.5: "we are investigating methods to
   dynamically decide which memory should be protected at runtime").
   Guarding costs a page plus slower vmalloc, so once an allocation
   *site* has produced [trust_site_after] allocations none of which
   overflowed, further allocations from that site fall back to plain
   kmalloc — the same confidence heuristic as KGCC's deinstrumentation.
   A site that ever overflows is guarded forever again. *)
type dynamic_policy = { trust_site_after : int }

type site_state = {
  mutable allocs : int;
  mutable overflowed : bool;
}

type t = {
  kernel : Ksim.Kernel.t;
  kstats : Kstats.t;
  st_overflows : Kstats.counter;
  st_guarded : Kstats.counter;
  st_unguarded : Kstats.counter;
  mutable mode : mode;
  protect : protect;
  dynamic : dynamic_policy option;
  sites : (string, site_state) Hashtbl.t;
  unguarded : (int, unit) Hashtbl.t;  (* addresses we fell back on *)
  mutable unguarded_allocs : int;
  (* guardian vpn -> owning buffer (addr, size) *)
  guardians : (int, int * int) Hashtbl.t;
  (* buffer addr -> guardian vpn: the fast-vfree hash table *)
  buffers : (int, int) Hashtbl.t;
  mutable reports : report list;  (* newest first *)
  mutable overflows_detected : int;
  mutable installed : bool;
}

(* The modified page-fault handler. *)
let handler t (fault : Ksim.Fault.t) : Ksim.Address_space.resolution =
  if fault.Ksim.Fault.reason <> Ksim.Fault.Guardian then
    Ksim.Address_space.Kill
  else begin
    let space = Ksim.Kernel.kspace t.kernel in
    let page_size = Ksim.Kernel.page_size t.kernel in
    let vpn = fault.Ksim.Fault.addr / page_size in
    match Hashtbl.find_opt t.guardians vpn with
    | None -> Ksim.Address_space.Kill (* not one of ours *)
    | Some (buf_addr, buf_size) ->
        t.overflows_detected <- t.overflows_detected + 1;
        Kstats.incr t.kstats t.st_overflows;
        t.reports <-
          {
            fault_addr = fault.Ksim.Fault.addr;
            access = fault.Ksim.Fault.access;
            pc = fault.Ksim.Fault.pc;
            buffer = Some buf_addr;
            buffer_size = Some buf_size;
            time = Ksim.Kernel.now t.kernel;
          }
          :: t.reports;
        (match t.mode with
        | Crash -> Ksim.Address_space.Kill
        | Log_only -> Ksim.Address_space.Emulated
        | Auto_map_ro ->
            if fault.Ksim.Fault.access = Ksim.Fault.Write then
              Ksim.Address_space.Kill
            else begin
              (* auto-map a read-only page over the guardian *)
              let mem = Ksim.Address_space.phys_mem space in
              let frame = Ksim.Phys_mem.alloc_frame mem in
              let pte =
                { (Ksim.Pte.normal ~frame ~writable:false) with
                  Ksim.Pte.guardian = false }
              in
              Ksim.Page_table.remap (Ksim.Address_space.page_table space) ~vpn
                pte;
              Ksim.Address_space.Retry
            end
        | Auto_map_rw ->
            let mem = Ksim.Address_space.phys_mem space in
            let frame = Ksim.Phys_mem.alloc_frame mem in
            Ksim.Page_table.remap (Ksim.Address_space.page_table space) ~vpn
              (Ksim.Pte.normal ~frame ~writable:true);
            Ksim.Address_space.Retry)
  end

let create ?(mode = Crash) ?(protect = Overflow) ?dynamic kernel =
  let kstats = Ksim.Kernel.stats kernel in
  let t =
    {
      kernel;
      kstats;
      st_overflows = Kstats.counter kstats "kefence.overflows";
      st_guarded = Kstats.counter kstats "kefence.guarded_allocs";
      st_unguarded = Kstats.counter kstats "kefence.unguarded_allocs";
      mode;
      protect;
      dynamic;
      sites = Hashtbl.create 64;
      unguarded = Hashtbl.create 256;
      unguarded_allocs = 0;
      guardians = Hashtbl.create 256;
      buffers = Hashtbl.create 256;
      reports = [];
      overflows_detected = 0;
      installed = false;
    }
  in
  Ksim.Address_space.push_handler (Ksim.Kernel.kspace kernel) (handler t);
  t.installed <- true;
  t

let set_mode t mode = t.mode <- mode
let mode t = t.mode

(* Should an allocation from [site] still be guarded?  Counts the
   allocation either way. *)
let site_guarded t site =
  match (t.dynamic, site) with
  | None, _ | _, None -> true
  | Some { trust_site_after }, Some site ->
      let st =
        match Hashtbl.find_opt t.sites site with
        | Some st -> st
        | None ->
            let st = { allocs = 0; overflowed = false } in
            Hashtbl.replace t.sites site st;
            st
      in
      st.allocs <- st.allocs + 1;
      st.overflowed || st.allocs <= trust_site_after

(* Allocate a guarded buffer.  The data sits flush against the guardian
   page (at the end for overflow protection, at the start for underflow
   protection) — §3.2: "the alignment of buffers to page boundaries can
   be done either at the beginning or at the end".  With a dynamic
   policy, a sufficiently trusted call site gets a plain (cheap,
   unguarded) kmalloc buffer instead. *)
let alloc ?site t size =
  if not (site_guarded t site) then begin
    t.unguarded_allocs <- t.unguarded_allocs + 1;
    Kstats.incr t.kstats t.st_unguarded;
    let addr = Ksim.Kalloc.kmalloc (Ksim.Kernel.alloc t.kernel) size in
    Hashtbl.replace t.unguarded addr ();
    addr
  end
  else begin
    Kstats.incr t.kstats t.st_guarded;
    let align_end = t.protect = Overflow in
    let area =
      Ksim.Kalloc.vmalloc (Ksim.Kernel.alloc t.kernel) ~guard:true ~align_end
        size
    in
    (match area.Ksim.Kalloc.guardian_vpn with
    | Some g ->
        Hashtbl.replace t.guardians g (area.Ksim.Kalloc.addr, size);
        Hashtbl.replace t.buffers area.Ksim.Kalloc.addr g
    | None -> assert false);
    area.Ksim.Kalloc.addr
  end

let free t addr =
  if Hashtbl.mem t.unguarded addr then begin
    Hashtbl.remove t.unguarded addr;
    Ksim.Kalloc.kfree (Ksim.Kernel.alloc t.kernel) addr
  end
  else
    match Hashtbl.find_opt t.buffers addr with
    | None -> invalid_arg "Kefence.free: not a kefence buffer"
    | Some g ->
        Hashtbl.remove t.guardians g;
        Hashtbl.remove t.buffers addr;
        Ksim.Kalloc.vfree (Ksim.Kernel.alloc t.kernel) addr

(* Drop the bookkeeping for a buffer whose memory someone else already
   freed — the kcrash oops path reaps a dying module's vmalloc areas
   (guardian PTEs included) through Kalloc.reap_pid, then calls this so
   the guardian/buffer tables don't point at unmapped pages.  Returns
   whether the address was ours. *)
let forget t addr =
  if Hashtbl.mem t.unguarded addr then begin
    Hashtbl.remove t.unguarded addr;
    true
  end
  else
    match Hashtbl.find_opt t.buffers addr with
    | None -> false
    | Some g ->
        Hashtbl.remove t.guardians g;
        Hashtbl.remove t.buffers addr;
        true

(* Re-arm a call site after an overflow was attributed to it: its
   allocations are guarded again from now on. *)
let distrust_site t site =
  match Hashtbl.find_opt t.sites site with
  | Some st -> st.overflowed <- true
  | None ->
      Hashtbl.replace t.sites site { allocs = 0; overflowed = true }

let unguarded_allocs t = t.unguarded_allocs

let reports t = List.rev t.reports
let overflows_detected t = t.overflows_detected
let live_buffers t = Hashtbl.length t.buffers

(* Format the newest reports like the syslog lines the paper describes. *)
let syslog t =
  List.rev_map (fun r -> Fmt.str "%a" pp_report r) t.reports
