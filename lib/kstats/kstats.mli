(** Kernel-wide metrics: a registry of named counters, gauges and
    log₂-bucketed histograms.

    Subsystems obtain handles once ([counter], [gauge], [histogram]) and
    update them from hot paths; every update is a single branch when the
    registry is disabled, and recording never advances the simulated
    clock, so kstats is cycle-neutral in either state.

    Three export paths sit on top: {!pp_report} renders a /proc-style
    text table, {!to_json} serializes for the bench artifact, and
    [Kmonitor.Stats_feed] turns snapshots into [Instrument.Custom]
    events for user-space consumers. *)

(** Kernels created while this is [true] boot with their registry
    enabled (mirrors [Instrument.enabled]'s role for events). *)
val default_enabled : bool ref

type t

type counter
type gauge
type hist

val create : ?enabled:bool -> unit -> t
val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

(** Registering the same name twice returns the same handle.
    @raise Type_clash if the name is already a different metric type. *)
exception Type_clash of string

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> hist

(** {1 Hot-path updates} — no-ops (one branch) when disabled. *)

val incr : t -> counter -> unit
val add : t -> counter -> int -> unit

(** [set] stores a level and tracks its peak. *)
val set : t -> gauge -> int -> unit

val gauge_add : t -> gauge -> int -> unit

(** Record one sample (negative samples clamp to 0). *)
val observe : t -> hist -> int -> unit

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val gauge_max : gauge -> int
val hist_count : hist -> int
val hist_sum : hist -> int
val hist_mean : hist -> float

(** Upper bound of the log₂ bucket containing the given percentile
    rank, clamped to the observed min/max; 0 on an empty histogram. *)
val percentile : hist -> float -> int

(** Bucket index for a sample: 0 for values <= 1, else ⌊log₂ v⌋. *)
val bucket_of_value : int -> int

(** Inclusive [lo, hi] range of bucket [i]. *)
val bucket_bounds : int -> int * int

(** Bucket-wise merge; inputs unchanged. *)
val merge_hist : hist -> hist -> hist

(** {1 Snapshots} *)

type hist_view = {
  v_count : int;
  v_sum : int;
  v_min : int;
  v_max : int;
  v_mean : float;
  v_p50 : int;
  v_p90 : int;
  v_p99 : int;
  v_buckets : (int * int * int) list;  (** (lo, hi, n), nonzero only *)
}

type view =
  | Counter_v of int
  | Gauge_v of { value : int; max : int }
  | Hist_v of hist_view

(** Metric names in registration order. *)
val names : t -> string list

val dump : t -> (string * view) list
val find : t -> string -> view option

(** Aggregate [src] into [into]: counters add, gauges keep peaks,
    histograms merge. *)
val merge_into : into:t -> t -> unit

(** {1 Export} *)

val pp_report : Format.formatter -> t -> unit

(** The registry as one JSON object keyed by metric name. *)
val to_json : t -> string

(** Append {!to_json} output to a buffer (for composing documents). *)
val buffer_json : Buffer.t -> t -> unit

val json_escape : string -> string
