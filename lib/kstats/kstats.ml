(* Kernel-wide metrics registry (ROADMAP "observability").

   The paper's §3.3 argument is that optimisation work is only as good
   as its measurements: log_event makes events *visible*, and this
   module makes them *countable*.  A registry holds named counters,
   gauges and log₂-bucketed histograms; subsystems obtain handles once
   at creation time and update them from their hot paths.

   Recording mirrors [Instrument.enabled]: every mutation is a single
   branch on [t.enabled] and otherwise touches nothing, so a disabled
   registry is free and — crucially for the simulator — recording never
   advances the simulated clock, making kstats cycle-neutral whether on
   or off (test_kstats asserts this).

   This library sits below ksim (it depends only on Fmt) so every layer
   of the kernel can use it; timestamps are plain integers supplied by
   the caller (Sim_clock cycles in practice). *)

(* When set, kernels created afterwards boot with their registry
   enabled.  The bench harness flips this to collect per-experiment
   metrics without touching each experiment. *)
let default_enabled = ref false

type counter = { mutable c : int }

type gauge = { mutable g : int; mutable g_max : int }

(* log₂ buckets: bucket 0 holds values <= 1, bucket i holds
   [2^i, 2^(i+1) - 1].  62 buckets cover every positive OCaml int. *)
let n_buckets = 62

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type metric = Counter of counter | Gauge of gauge | Hist of hist

type t = {
  mutable enabled : bool;
  by_name : (string, metric) Hashtbl.t;
  mutable names : string list; (* reverse registration order *)
}

let create ?(enabled = false) () =
  { enabled; by_name = Hashtbl.create 64; names = [] }

let set_enabled t on = t.enabled <- on
let is_enabled t = t.enabled

(* --- registration ------------------------------------------------------ *)

exception Type_clash of string

let register t name make =
  match Hashtbl.find_opt t.by_name name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace t.by_name name m;
      t.names <- name :: t.names;
      m

let counter t name =
  match register t name (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | Gauge _ | Hist _ -> raise (Type_clash name)

let gauge t name =
  match register t name (fun () -> Gauge { g = 0; g_max = 0 }) with
  | Gauge g -> g
  | Counter _ | Hist _ -> raise (Type_clash name)

let fresh_hist () =
  {
    buckets = Array.make n_buckets 0;
    h_count = 0;
    h_sum = 0;
    h_min = max_int;
    h_max = 0;
  }

let histogram t name =
  match register t name (fun () -> Hist (fresh_hist ())) with
  | Hist h -> h
  | Counter _ | Gauge _ -> raise (Type_clash name)

(* --- hot-path updates (one branch when disabled) ----------------------- *)

let incr t c = if t.enabled then c.c <- c.c + 1
let add t c n = if t.enabled then c.c <- c.c + n

let set t g v =
  if t.enabled then begin
    g.g <- v;
    if v > g.g_max then g.g_max <- v
  end

let gauge_add t g n =
  if t.enabled then begin
    g.g <- g.g + n;
    if g.g > g.g_max then g.g_max <- g.g
  end

let bucket_of_value v =
  if v <= 1 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      i := !i + 1
    done;
    min !i (n_buckets - 1)
  end

let bucket_bounds i =
  if i <= 0 then (0, 1) else (1 lsl i, (1 lsl (i + 1)) - 1)

let record_hist h v =
  let v = max 0 v in
  h.buckets.(bucket_of_value v) <- h.buckets.(bucket_of_value v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let observe t h v = if t.enabled then record_hist h v

(* --- reading ----------------------------------------------------------- *)

let counter_value (c : counter) = c.c
let gauge_value (g : gauge) = g.g
let gauge_max (g : gauge) = g.g_max
let hist_count h = h.h_count
let hist_sum h = h.h_sum

let hist_mean h =
  if h.h_count = 0 then 0. else float_of_int h.h_sum /. float_of_int h.h_count

(* Percentile estimate from the buckets: the value returned is the upper
   bound of the bucket containing the rank, clamped to the observed
   [min, max] so p0 ~ min and p100 = max exactly. *)
let percentile h p =
  if h.h_count = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.h_count)))
    in
    let rec go i cum =
      if i >= n_buckets then h.h_max
      else begin
        let cum = cum + h.buckets.(i) in
        if cum >= rank then snd (bucket_bounds i) else go (i + 1) cum
      end
    in
    let v = go 0 0 in
    min h.h_max (max h.h_min v)
  end

(* Pure bucket-wise merge; the sources are unchanged. *)
let merge_hist a b =
  let m = fresh_hist () in
  Array.blit a.buckets 0 m.buckets 0 n_buckets;
  Array.iteri (fun i n -> m.buckets.(i) <- m.buckets.(i) + n) b.buckets;
  m.h_count <- a.h_count + b.h_count;
  m.h_sum <- a.h_sum + b.h_sum;
  m.h_min <- min a.h_min b.h_min;
  m.h_max <- max a.h_max b.h_max;
  m

(* --- snapshots --------------------------------------------------------- *)

type hist_view = {
  v_count : int;
  v_sum : int;
  v_min : int;
  v_max : int;
  v_mean : float;
  v_p50 : int;
  v_p90 : int;
  v_p99 : int;
  v_buckets : (int * int * int) list; (* lo, hi, n — nonzero buckets only *)
}

type view =
  | Counter_v of int
  | Gauge_v of { value : int; max : int }
  | Hist_v of hist_view

let view_hist h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      buckets := (lo, hi, h.buckets.(i)) :: !buckets
    end
  done;
  {
    v_count = h.h_count;
    v_sum = h.h_sum;
    v_min = (if h.h_count = 0 then 0 else h.h_min);
    v_max = h.h_max;
    v_mean = hist_mean h;
    v_p50 = percentile h 50.;
    v_p90 = percentile h 90.;
    v_p99 = percentile h 99.;
    v_buckets = !buckets;
  }

let view = function
  | Counter c -> Counter_v c.c
  | Gauge g -> Gauge_v { value = g.g; max = g.g_max }
  | Hist h -> Hist_v (view_hist h)

(* Metrics in registration order. *)
let names t = List.rev t.names

let dump t =
  List.map (fun n -> (n, view (Hashtbl.find t.by_name n))) (names t)

let find t name = Option.map view (Hashtbl.find_opt t.by_name name)

(* Fold metrics into [into]: counters add, gauges keep the peak,
   histograms merge bucket-wise.  Used by the bench harness to aggregate
   the registries of every kernel booted during one experiment. *)
let merge_into ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.by_name name with
      | None -> ()
      | Some (Counter c) ->
          let d = counter into name in
          d.c <- d.c + c.c
      | Some (Gauge g) ->
          let d = gauge into name in
          d.g <- max d.g g.g;
          d.g_max <- max d.g_max g.g_max
      | Some (Hist h) ->
          let d = histogram into name in
          let m = merge_hist d h in
          Array.blit m.buckets 0 d.buckets 0 n_buckets;
          d.h_count <- m.h_count;
          d.h_sum <- m.h_sum;
          d.h_min <- m.h_min;
          d.h_max <- m.h_max)
    (names src)

(* --- /proc-style report ------------------------------------------------ *)

let pp_report ppf t =
  let metrics = dump t in
  Fmt.pf ppf "kstats: %d metrics (%s)@."
    (List.length metrics)
    (if t.enabled then "enabled" else "disabled");
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Fmt.pf ppf "%-40s %12d@." name n
      | Gauge_v { value; max } ->
          Fmt.pf ppf "%-40s %12d  (peak %d)@." name value max
      | Hist_v h ->
          Fmt.pf ppf
            "%-40s %12d  mean %.1f  p50 %d  p90 %d  p99 %d  max %d@." name
            h.v_count h.v_mean h.v_p50 h.v_p90 h.v_p99 h.v_max)
    metrics

(* --- JSON -------------------------------------------------------------- *)

(* Hand-rolled serializer: the toolchain has no JSON library and the
   container forbids adding one.  Metric names are ASCII identifiers but
   strings are escaped anyway. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_view b = function
  | Counter_v n ->
      Buffer.add_string b (Printf.sprintf {|{"type":"counter","value":%d}|} n)
  | Gauge_v { value; max } ->
      Buffer.add_string b
        (Printf.sprintf {|{"type":"gauge","value":%d,"max":%d}|} value max)
  | Hist_v h ->
      Buffer.add_string b
        (Printf.sprintf
           {|{"type":"histogram","count":%d,"sum":%d,"min":%d,"max":%d,"mean":%.3f,"p50":%d,"p90":%d,"p99":%d,"buckets":[|}
           h.v_count h.v_sum h.v_min h.v_max h.v_mean h.v_p50 h.v_p90 h.v_p99);
      List.iteri
        (fun i (lo, hi, n) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf {|{"lo":%d,"hi":%d,"n":%d}|} lo hi n))
        h.v_buckets;
      Buffer.add_string b "]}"

let buffer_json b t =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf {|"%s":|} (json_escape name));
      json_of_view b v)
    (dump t);
  Buffer.add_char b '}'

let to_json t =
  let b = Buffer.create 1024 in
  buffer_json b t;
  Buffer.contents b
