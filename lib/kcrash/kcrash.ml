(* Kcrash: dying well.

   Two fronts, one subsystem.

   Front 1 — oops containment.  The substrate's kill sites (the
   syscall-flow gate, the Cosy/kring watchdogs, an escaped kernel-mode
   memory fault) historically just marked the offender dead, leaking
   whatever it held.  With kcrash installed, [Kernel.reap] routes here
   and the oops path reaps everything the dying process owned: fd-table
   entries (closed through the normal VFS/socket paths), kmalloc/vmalloc
   heap objects (freed through the normal allocator paths, guardian PTEs
   and TLB shootdowns included), held spinlocks (poisoned, then
   force-released with a Contended-style instrument event), and
   registered in-flight subsystem state (ring queues).  Other processes
   keep running bit-for-bit unaffected.

   Front 2 — power-loss recovery.  The [blockdev.crash_point] kfault
   site models power failing at a durable-write boundary; everything
   volatile dies with the run, and [note_recovery] records what the next
   boot's journal replay salvaged from the persistent image.

   Every counter here is created lazily on the first oops/recovery —
   exactly the kfault idiom — so an installed-but-quiet kcrash leaves
   the kstats dump byte-identical to a kernel without it. *)

type config = {
  contain : bool;  (* install the oops reaper at kill sites *)
  durable : bool;  (* journalfs write-ahead logging + replay-on-mount *)
}

let default_config = { contain = true; durable = true }

(* Re-exports, so harnesses can match without reaching into ksim/kvfs. *)
exception Oops = Ksim.Kernel.Oops
exception Power_loss = Kvfs.Block_dev.Power_loss

type oops_report = {
  o_pid : int;
  o_reason : string;
  o_time : int;        (* cycles at containment *)
  o_fds : int;         (* fd-table entries closed *)
  o_kmallocs : int;    (* slab objects freed *)
  o_vmallocs : int;    (* vmalloc areas freed (guardian PTEs included) *)
  o_locks : int;       (* spinlocks force-released *)
  o_ring : int;        (* in-flight ring/cosy entries discarded *)
}

type event =
  | E_oops of oops_report
  | E_power_loss of { torn : int; aborted : int }
  | E_recovery of { replayed : int; errors : int }

type counters = {
  st_oops : Kstats.counter;
  st_reaped_fds : Kstats.counter;
  st_reaped_heap : Kstats.counter;
  st_reaped_locks : Kstats.counter;
  st_reaped_ring : Kstats.counter;
  st_recoveries : Kstats.counter;
  st_torn : Kstats.counter;
  st_replayed : Kstats.counter;
}

type t = {
  kernel : Ksim.Kernel.t;
  sys : Ksyscall.Systable.t;
  kstats : Kstats.t;
  mutable counters : counters option;    (* lazy: first event registers *)
  mutable reapers : (pid:int -> int) list; (* subsystem state, e.g. rings *)
  mutable vm_observers : (int -> unit) list; (* freed vmalloc addresses *)
  mutable sink : (event -> unit) option; (* Kmonitor.Crash_feed *)
  mutable reports : oops_report list;    (* newest first *)
}

let create kernel sys =
  {
    kernel;
    sys;
    kstats = Ksim.Kernel.stats kernel;
    counters = None;
    reapers = [];
    vm_observers = [];
    sink = None;
    reports = [];
  }

let counters t =
  match t.counters with
  | Some c -> c
  | None ->
      let counter name = Kstats.counter t.kstats ("kcrash." ^ name) in
      let c =
        {
          st_oops = counter "oops";
          st_reaped_fds = counter "reaped_fds";
          st_reaped_heap = counter "reaped_heap";
          st_reaped_locks = counter "reaped_locks";
          st_reaped_ring = counter "reaped_ring";
          st_recoveries = counter "recoveries";
          st_torn = counter "torn_discarded";
          st_replayed = counter "replayed_records";
        }
      in
      t.counters <- Some c;
      c

let set_sink t f = t.sink <- f
let emit t ev = match t.sink with None -> () | Some f -> f ev

(* Subsystems with per-kernel in-flight state (kring) register a reaper
   returning how many entries it discarded. *)
let add_reaper t f = t.reapers <- t.reapers @ [ f ]

(* Kefence tracks vmalloc'd buffers by address; when the oops path frees
   one underneath it, the observer drops the stale guardian/buffer
   bookkeeping. *)
let attach_kefence t kf =
  t.vm_observers <-
    t.vm_observers @ [ (fun addr -> ignore (Kefence.forget kf addr)) ]

(* --- Front 1: the oops path ------------------------------------------- *)

(* Close every fd the process still holds, through the same dispatch
   service_close uses: sockets above [Knet.handle_base], VFS files
   below.  Ascending fd order, for determinism. *)
let reap_fds t (p : Ksim.Kproc.t) =
  let fds =
    Hashtbl.fold (fun fd handle acc -> (fd, handle) :: acc) p.Ksim.Kproc.fd_table []
    |> List.sort compare
  in
  List.iter
    (fun (fd, handle) ->
      ignore (Ksim.Kproc.release_fd p fd);
      if handle >= Knet.handle_base then
        Knet.close (Ksyscall.Systable.net t.sys)
          ~sock:(handle - Knet.handle_base)
      else ignore (Kvfs.Vfs.close (Ksyscall.Systable.vfs t.sys) handle))
    fds;
  List.length fds

(* Force-release every lock the process still holds.  Poisoning emits
   the Contended-style event; see Spinlock.force_release. *)
let reap_locks t pid =
  List.fold_left
    (fun n l ->
      if Ksim.Spinlock.is_locked l && Ksim.Spinlock.holder l = pid then begin
        ignore (Ksim.Spinlock.force_release ~file:"kcrash.ml" l);
        n + 1
      end
      else n)
    0 (Ksim.Kernel.locks t.kernel)

(* The kernel panic path that does not panic: kill [p] and reap
   everything it held, leaving every other process untouched.  Installed
   as the [Kernel.reap] hook by {!install}. *)
let oops t (p : Ksim.Kproc.t) ~reason =
  (* if the fault struck mid-syscall the mode bit may still say kernel;
     the stay belongs to a process being destroyed, not returning *)
  Ksim.Kernel.force_user_mode t.kernel;
  let pid = p.Ksim.Kproc.pid in
  let c = counters t in
  let fds = reap_fds t p in
  let heap = Ksim.Kalloc.reap_pid (Ksim.Kernel.alloc t.kernel) pid in
  List.iter
    (fun addr -> List.iter (fun f -> f addr) t.vm_observers)
    heap.Ksim.Kalloc.reaped_vm_addrs;
  let locks = reap_locks t pid in
  let ring = List.fold_left (fun n f -> n + f ~pid) 0 t.reapers in
  Ksim.Scheduler.kill (Ksim.Kernel.sched t.kernel) p;
  Kstats.incr t.kstats c.st_oops;
  Kstats.add t.kstats c.st_reaped_fds fds;
  Kstats.add t.kstats c.st_reaped_heap
    (heap.Ksim.Kalloc.reaped_kmallocs + heap.Ksim.Kalloc.reaped_vmallocs);
  Kstats.add t.kstats c.st_reaped_locks locks;
  Kstats.add t.kstats c.st_reaped_ring ring;
  let report =
    {
      o_pid = pid;
      o_reason = reason;
      o_time = Ksim.Kernel.now t.kernel;
      o_fds = fds;
      o_kmallocs = heap.Ksim.Kalloc.reaped_kmallocs;
      o_vmallocs = heap.Ksim.Kalloc.reaped_vmallocs;
      o_locks = locks;
      o_ring = ring;
    }
  in
  t.reports <- report :: t.reports;
  emit t (E_oops report)

let install t =
  Ksim.Kernel.set_reaper t.kernel (Some (fun p ~reason -> oops t p ~reason))

let uninstall t = Ksim.Kernel.set_reaper t.kernel None

let reports t = List.rev t.reports
let oops_count t = List.length t.reports

(* --- Front 2: recovery accounting ------------------------------------- *)

(* Called by the reboot path after journalfs replay, with what the
   replay salvaged.  Bumps the recovery counters and mirrors the
   power-loss + recovery pair into the sink. *)
let note_recovery t (info : Kvfs.Journalfs.recover_info) =
  let c = counters t in
  Kstats.incr t.kstats c.st_recoveries;
  Kstats.add t.kstats c.st_torn info.Kvfs.Journalfs.rec_torn;
  Kstats.add t.kstats c.st_replayed info.Kvfs.Journalfs.rec_replayed;
  emit t
    (E_power_loss
       {
         torn = info.Kvfs.Journalfs.rec_torn;
         aborted = info.Kvfs.Journalfs.rec_aborted;
       });
  emit t
    (E_recovery
       {
         replayed = info.Kvfs.Journalfs.rec_replayed;
         errors = List.length info.Kvfs.Journalfs.rec_errors;
       })

let pp_oops_report ppf r =
  Fmt.pf ppf
    "oops pid=%d (%s) at cycle %d: reaped %d fds, %d kmallocs, %d vmallocs, \
     %d locks, %d ring entries"
    r.o_pid r.o_reason r.o_time r.o_fds r.o_kmallocs r.o_vmallocs r.o_locks
    r.o_ring
