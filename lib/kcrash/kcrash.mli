(** Kcrash: oops containment and crash-consistent recovery.

    Front 1 — {b oops containment}.  The substrate's kill sites (the
    kverify syscall-flow gate, the Cosy and kring watchdogs, an escaped
    kernel-mode memory fault) historically marked the offender dead and
    leaked whatever it held.  With kcrash {!install}ed,
    [Ksim.Kernel.reap] routes here and the oops path reaps everything
    the dying process owned — fd-table entries, kmalloc/vmalloc heap
    objects (guardian PTEs included), held spinlocks (poisoned then
    force-released with a [Contended]-style instrument event), and
    registered in-flight subsystem state such as ring queues — leaving
    every other process bit-for-bit unaffected.

    Front 2 — {b power-loss recovery}.  The [blockdev.crash_point]
    kfault site (trigger [crash_at:CYCLE], i.e. [at:CYCLE]) models power
    failing at a durable-write boundary: [Power_loss] escapes, the
    volatile kernel dies, and the next boot rebuilds from the persistent
    {!Kvfs.Block_dev.image} alone via journalfs replay-on-mount.
    {!note_recovery} accounts for what the replay salvaged.

    All counters ([kcrash.oops], [kcrash.reaped_*], [kcrash.recoveries],
    [kcrash.torn_discarded], [kcrash.replayed_records]) are created
    lazily on the first event, so an installed-but-quiet kcrash leaves
    the kstats dump byte-identical to a kernel without it. *)

type config = {
  contain : bool;  (** install the oops reaper at the kill sites *)
  durable : bool;
      (** journalfs write-ahead logging + replay-on-mount (only
          meaningful with [Config.fs = Journalfs]) *)
}

(** [{ contain = true; durable = true }]. *)
val default_config : config

(** Re-export of {!Ksim.Kernel.Oops}: raised by the syscall dispatcher
    after a contained kernel-mode memory fault. *)
exception Oops of { pid : int; reason : string }

(** Re-export of {!Kvfs.Block_dev.Power_loss}: raised when the armed
    [blockdev.crash_point] fault site fires at a durable write. *)
exception Power_loss

(** What one contained oops reaped. *)
type oops_report = {
  o_pid : int;
  o_reason : string;
  o_time : int;  (** cycles at containment *)
  o_fds : int;  (** fd-table entries closed *)
  o_kmallocs : int;  (** slab objects freed *)
  o_vmallocs : int;  (** vmalloc areas freed, guardian PTEs torn down *)
  o_locks : int;  (** spinlocks poisoned and force-released *)
  o_ring : int;  (** in-flight ring entries discarded *)
}

(** Mirrored into the sink (Kmonitor's [Crash_feed]). *)
type event =
  | E_oops of oops_report
  | E_power_loss of { torn : int; aborted : int }
  | E_recovery of { replayed : int; errors : int }

type t

val create : Ksim.Kernel.t -> Ksyscall.Systable.t -> t

(** Route [Ksim.Kernel.reap] (the kverify [Kill] policy, the Cosy and
    kring watchdogs, the dispatcher's fault containment) through
    {!oops}. *)
val install : t -> unit

val uninstall : t -> unit

(** The oops path itself: kill [p] and reap everything it held.  Calls
    [force_user_mode] first — a process dying mid-syscall never returns
    to the dispatcher's exit path. *)
val oops : t -> Ksim.Kproc.t -> reason:string -> unit

(** Register a subsystem reaper (e.g. kring's [discard_pending]); it
    receives the dying pid and returns how many entries it discarded. *)
val add_reaper : t -> (pid:int -> int) -> unit

(** Have the oops path drop Kefence bookkeeping (buffer and guardian
    maps) for every vmalloc area it frees, so no guardian PTE outlives
    its owner. *)
val attach_kefence : t -> Kefence.t -> unit

(** Account a journalfs replay-on-mount: bumps [kcrash.recoveries],
    [kcrash.torn_discarded] and [kcrash.replayed_records], and mirrors
    an [E_power_loss]/[E_recovery] pair into the sink. *)
val note_recovery : t -> Kvfs.Journalfs.recover_info -> unit

(** Event mirror for Kmonitor's [Crash_feed]; [None] disconnects. *)
val set_sink : t -> (event -> unit) option -> unit

(** Contained-oops reports, oldest first. *)
val reports : t -> oops_report list

val oops_count : t -> int
val pp_oops_report : Format.formatter -> oops_report -> unit
