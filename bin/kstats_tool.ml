(* kstats_tool: boot a system with metrics enabled, run a named workload,
   and print the kernel-wide metrics registry — the simulator's
   /proc/kstats.

   Usage: dune exec bin/kstats_tool.exe -- run --workload postmark
          dune exec bin/kstats_tool.exe -- run --workload postmark --json
          dune exec bin/kstats_tool.exe -- diff old.json new.json

   [diff] compares two BENCH_kstats.json snapshots (as written by the
   bench driver) and prints per-counter deltas for each experiment
   present in both — the quick way to see what a change did to every
   metric at once. *)

open Cmdliner

let workloads = [ "interactive"; "postmark"; "amutils"; "lsdir"; "webserver" ]

let fs_of_string = function
  | "memfs" -> Core.Memfs
  | "wrapfs" -> Core.Wrapfs_kmalloc
  | "journalfs" -> Core.Journalfs
  | other -> Fmt.failwith "unknown fs %s (expected memfs, wrapfs, journalfs)" other

let run_workload name sys =
  match name with
  | "interactive" ->
      Workloads.Interactive.setup sys;
      ignore
        (Workloads.Interactive.run
           ~config:
             { Workloads.Interactive.default_config with duration_events = 500 }
           sys)
  | "postmark" ->
      let cfg =
        { Workloads.Postmark.default_config with files = 100; transactions = 400 }
      in
      ignore (Workloads.Postmark.run ~config:cfg sys)
  | "amutils" ->
      let cfg = { Workloads.Amutils.default_config with source_files = 60 } in
      Workloads.Amutils.setup ~config:cfg sys;
      ignore (Workloads.Amutils.run ~config:cfg sys)
  | "lsdir" ->
      Workloads.Lsdir.setup sys ~dir:"/d" ~n:200;
      ignore (Workloads.Lsdir.run_plain sys ~dir:"/d")
  | "webserver" ->
      Workloads.Webserver.setup sys;
      ignore (Workloads.Webserver.run_plain sys)
  | other ->
      Fmt.failwith "unknown workload %s (expected one of %s)" other
        (String.concat ", " workloads)

let main workload fs json =
  (* flip the boot-time default so every subsystem registers into an
     enabled registry from the first cycle *)
  Core.Stats.default_enabled := true;
  let t = Core.boot_with { Core.Config.default with fs = fs_of_string fs } in
  run_workload workload (Core.sys t);
  let stats = Core.stats t in
  if json then print_string (Core.Stats.to_json stats)
  else Fmt.pr "%a@." Core.Stats.pp_report stats

let workload_arg =
  let doc = "Workload to run: " ^ String.concat ", " workloads in
  Arg.(value & opt string "postmark" & info [ "w"; "workload" ] ~doc)

let fs_arg =
  Arg.(
    value & opt string "memfs"
    & info [ "f"; "fs" ] ~doc:"Filesystem stack: memfs, wrapfs, journalfs")

let json_arg =
  Arg.(value & flag & info [ "j"; "json" ] ~doc:"Emit JSON instead of the text report")

let run_term = Term.(const main $ workload_arg $ fs_arg $ json_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload and print the metrics registry")
    run_term

(* --- diff: per-counter deltas between two BENCH_kstats.json ----------- *)

module Json = Kperf.Json

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_bench path =
  match Json.parse (read_file path) with
  | exception Json.Parse_error msg ->
      Fmt.failwith "%s: parse error: %s" path msg
  | j -> (
      match Json.member "experiments" j with
      | Some (Json.Arr exps) ->
          List.filter_map
            (fun e ->
              match Json.member "id" e with
              | Some (Json.Str id) -> Some (id, e)
              | _ -> None)
            exps
      | _ -> Fmt.failwith "%s: no \"experiments\" array" path)

(* Numeric leaves worth diffing per experiment: the top-level cycle
   totals plus every counter/gauge in "metrics" (histograms are summed
   distributions; their count is what diffs meaningfully). *)
let numeric_leaves e =
  let top =
    List.filter_map
      (fun k ->
        match Json.member k e with
        | Some (Json.Num v) -> Some (k, Int64.of_float v)
        | _ -> None)
      [ "boots"; "elapsed_cycles"; "utime_cycles"; "stime_cycles"; "crossings" ]
  in
  let metrics =
    match Json.member "metrics" e with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (name, v) ->
            match Json.member "type" v with
            | Some (Json.Str "counter") | Some (Json.Str "gauge") -> (
                match Json.member "value" v with
                | Some (Json.Num n) -> Some (name, Int64.of_float n)
                | _ -> None)
            | Some (Json.Str "histogram") -> (
                match Json.member "count" v with
                | Some (Json.Num n) -> Some (name ^ ".count", Int64.of_float n)
                | _ -> None)
            | _ -> None)
          fields
    | _ -> []
  in
  top @ metrics

let diff_exp id old_e new_e =
  let old_leaves = numeric_leaves old_e and new_leaves = numeric_leaves new_e in
  let changes =
    List.filter_map
      (fun (name, nv) ->
        let ov =
          match List.assoc_opt name old_leaves with
          | Some v -> v
          | None -> 0L
        in
        if nv <> ov then Some (name, ov, nv) else None)
      new_leaves
    @ List.filter_map
        (fun (name, ov) ->
          if List.mem_assoc name new_leaves then None
          else Some (name, ov, 0L))
        old_leaves
  in
  if changes <> [] then begin
    Fmt.pr "%s:@." id;
    List.iter
      (fun (name, ov, nv) ->
        let d = Int64.sub nv ov in
        let pct =
          if ov = 0L then ""
          else
            Fmt.str " (%+.2f%%)"
              (100. *. Int64.to_float d /. Int64.to_float ov)
        in
        Fmt.pr "  %-46s %14Ld -> %-14Ld %+Ld%s@." name ov nv d pct)
      changes
  end;
  List.length changes

let diff_main old_path new_path =
  let olds = parse_bench old_path and news = parse_bench new_path in
  let total = ref 0 in
  List.iter
    (fun (id, new_e) ->
      match List.assoc_opt id olds with
      | Some old_e -> total := !total + diff_exp id old_e new_e
      | None -> Fmt.pr "%s: only in %s@." id new_path)
    news;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id news) then
        Fmt.pr "%s: only in %s@." id old_path)
    olds;
  if !total = 0 then Fmt.pr "no per-counter differences@."

let old_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json")

let new_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Per-counter deltas between two BENCH_kstats.json snapshots")
    Term.(const diff_main $ old_arg $ new_arg)

let cmd =
  Cmd.group ~default:run_term
    (Cmd.info "kstats_tool"
       ~doc:"Run a workload and print the kernel metrics registry")
    [ run_cmd; diff_cmd ]

let () = exit (Cmd.eval cmd)
