(* kstats_tool: boot a system with metrics enabled, run a named workload,
   and print the kernel-wide metrics registry — the simulator's
   /proc/kstats.

   Usage: dune exec bin/kstats_tool.exe -- --workload postmark
          dune exec bin/kstats_tool.exe -- --workload postmark --json *)

open Cmdliner

let workloads = [ "interactive"; "postmark"; "amutils"; "lsdir"; "webserver" ]

let fs_of_string = function
  | "memfs" -> Core.Memfs
  | "wrapfs" -> Core.Wrapfs_kmalloc
  | "journalfs" -> Core.Journalfs
  | other -> Fmt.failwith "unknown fs %s (expected memfs, wrapfs, journalfs)" other

let run_workload name sys =
  match name with
  | "interactive" ->
      Workloads.Interactive.setup sys;
      ignore
        (Workloads.Interactive.run
           ~config:
             { Workloads.Interactive.default_config with duration_events = 500 }
           sys)
  | "postmark" ->
      let cfg =
        { Workloads.Postmark.default_config with files = 100; transactions = 400 }
      in
      ignore (Workloads.Postmark.run ~config:cfg sys)
  | "amutils" ->
      let cfg = { Workloads.Amutils.default_config with source_files = 60 } in
      Workloads.Amutils.setup ~config:cfg sys;
      ignore (Workloads.Amutils.run ~config:cfg sys)
  | "lsdir" ->
      Workloads.Lsdir.setup sys ~dir:"/d" ~n:200;
      ignore (Workloads.Lsdir.run_plain sys ~dir:"/d")
  | "webserver" ->
      Workloads.Webserver.setup sys;
      ignore (Workloads.Webserver.run_plain sys)
  | other ->
      Fmt.failwith "unknown workload %s (expected one of %s)" other
        (String.concat ", " workloads)

let main workload fs json =
  (* flip the boot-time default so every subsystem registers into an
     enabled registry from the first cycle *)
  Core.Stats.default_enabled := true;
  let t = Core.boot ~fs:(fs_of_string fs) () in
  run_workload workload (Core.sys t);
  let stats = Core.stats t in
  if json then print_string (Core.Stats.to_json stats)
  else Fmt.pr "%a@." Core.Stats.pp_report stats

let workload_arg =
  let doc = "Workload to run: " ^ String.concat ", " workloads in
  Arg.(value & opt string "postmark" & info [ "w"; "workload" ] ~doc)

let fs_arg =
  Arg.(
    value & opt string "memfs"
    & info [ "f"; "fs" ] ~doc:"Filesystem stack: memfs, wrapfs, journalfs")

let json_arg =
  Arg.(value & flag & info [ "j"; "json" ] ~doc:"Emit JSON instead of the text report")

let cmd =
  Cmd.v
    (Cmd.info "kstats_tool"
       ~doc:"Run a workload and print the kernel metrics registry")
    Term.(const main $ workload_arg $ fs_arg $ json_arg)

let () = exit (Cmd.eval cmd)
