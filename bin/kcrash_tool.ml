(* kcrash_tool: drive the crash-point sweep and single crash/reboot
   probes over the durable resilience workload.

   Usage:
     dune exec bin/kcrash_tool.exe -- sweep
     dune exec bin/kcrash_tool.exe -- sweep --max-per-site 8 -v
     dune exec bin/kcrash_tool.exe -- sweep --json BENCH_crash.json
     dune exec bin/kcrash_tool.exe -- crash-at 42

   [sweep] is the systematic power-loss exploration: the standard
   workload runs on a durable journalfs system once in counting mode to
   learn how many durable-write boundaries it crosses, then once per
   (sampled) boundary with the blockdev.crash_point site armed One_shot
   — power dies mid-write, the tool reboots from the persistent image
   alone and classifies the survivor Consistent / Recovered / Corrupt.
   Exits 1 on any Corrupt point, so it scripts like a test.

   [crash-at N] runs a single crash at the Nth durable write and prints
   the full recovery record (replayed/skipped/torn counts, fsck
   verdict) plus any contained-oops reports from the dying run. *)

open Cmdliner

let write_metrics_json path ~id metrics =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"experiments\":[{\"id\":";
  Buffer.add_string b (Printf.sprintf "%S" id);
  Buffer.add_string b ",\"metrics\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "%S:{\"type\":\"counter\",\"value\":%d}" name v))
    metrics;
  Buffer.add_string b "}}]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let sweep max_per_site verbose json =
  let max_per_site = if max_per_site <= 0 then None else Some max_per_site in
  let progress =
    if verbose then fun idx total k ->
      Fmt.pr "[%3d/%3d] crash at durable write %d@." (idx + 1) total k
    else fun _ _ _ -> ()
  in
  let s = Resilience.crash_sweep ?max_per_site ~progress () in
  let consistent, recovered =
    List.fold_left
      (fun (c, r) (row : Resilience.crash_row) ->
        match row.Resilience.cr_class with
        | Resilience.Consistent -> (c + 1, r)
        | Resilience.Recovered -> (c, r + 1)
        | Resilience.Corrupt -> (c, r))
      (0, 0) s.Resilience.cs_rows
  in
  List.iter
    (fun (row : Resilience.crash_row) ->
      if verbose || row.Resilience.cr_class = Resilience.Corrupt then begin
        Fmt.pr "write %5d  %-10s replayed %4d torn %d%s@."
          row.Resilience.cr_occurrence
          (Resilience.crash_class_to_string row.Resilience.cr_class)
          row.Resilience.cr_replayed row.Resilience.cr_torn
          (if row.Resilience.cr_detail = "" then ""
           else " [" ^ row.Resilience.cr_detail ^ "]");
        List.iter
          (fun e -> Fmt.pr "    fsck: %s@." e)
          row.Resilience.cr_fsck_errs
      end)
    s.Resilience.cs_rows;
  Fmt.pr
    "crash sweep: %d points over %d durable writes — %d consistent, %d \
     recovered, %d corrupt@."
    (List.length s.Resilience.cs_rows)
    s.Resilience.cs_points consistent recovered s.Resilience.cs_corrupt;
  (match json with
  | None -> ()
  | Some path ->
      write_metrics_json path ~id:"kcrash_sweep"
        [
          ("reachable_points", s.Resilience.cs_points);
          ("points", List.length s.Resilience.cs_rows);
          ("consistent", consistent);
          ("recovered", recovered);
          ("corrupt", s.Resilience.cs_corrupt);
        ];
      Fmt.pr "wrote %s@." path);
  if s.Resilience.cs_corrupt > 0 then 1 else 0

let crash_at k =
  if k <= 0 then begin
    Fmt.epr "crash-at: CYCLE must be >= 1@.";
    2
  end
  else begin
    let r, t =
      Resilience.run_with ~config:Resilience.crash_config
        ~plans:
          [
            {
              Kfault.site = Resilience.crash_site;
              trigger = Kfault.One_shot k;
            };
          ]
        ()
    in
    Fmt.pr "run: %d cycles, %d clean errors, %d kills@." r.Resilience.r_cycles
      (List.length r.Resilience.r_errs)
      r.Resilience.r_killed;
    (match Core.kcrash t with
    | Some kc ->
        List.iter
          (fun rep -> Fmt.pr "  %a@." Kcrash.pp_oops_report rep)
          (Kcrash.reports kc)
    | None -> ());
    match r.Resilience.r_escaped with
    | Some m when m = Resilience.power_loss_marker ->
        Fmt.pr "power lost at durable write %d; rebooting from image@." k;
        let t2 = Core.reboot t in
        (match Core.journalfs t2 with
        | Some j ->
            (match Kvfs.Journalfs.last_recover j with
            | Some info ->
                Fmt.pr
                  "recovery: scanned %d, replayed %d, skipped %d, aborted \
                   %d, torn %d@."
                  info.Kvfs.Journalfs.rec_scanned
                  info.Kvfs.Journalfs.rec_replayed
                  info.Kvfs.Journalfs.rec_skipped
                  info.Kvfs.Journalfs.rec_aborted
                  info.Kvfs.Journalfs.rec_torn;
                List.iter
                  (fun e -> Fmt.pr "  replay error: %s@." e)
                  info.Kvfs.Journalfs.rec_errors
            | None -> Fmt.pr "recovery: no replay ran@.");
            let errs = Kvfs.Journalfs.fsck j in
            if errs = [] then begin
              Fmt.pr "fsck: clean@.";
              0
            end
            else begin
              List.iter (fun e -> Fmt.pr "fsck: %s@." e) errs;
              1
            end
        | None ->
            Fmt.epr "reboot lost the journalfs@.";
            1)
    | Some m ->
        Fmt.epr "workload escaped before the crash point: %s@." m;
        1
    | None ->
        Fmt.epr
          "crash point %d never fired (only %d durable writes reached)@." k
          (match
             List.find_opt
               (fun (n, _, _) -> n = Resilience.crash_site)
               r.Resilience.r_counts
           with
          | Some (_, occ, _) -> occ
          | None -> 0);
        1
  end

let max_arg =
  Arg.(
    value & opt int 0
    & info [ "max-per-site" ]
        ~doc:
          "Cap the sweep to N evenly spaced durable writes (0 = every one)")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every sweep row")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the sweep tallies to $(docv) in the BENCH_kstats.json \
           shape, diffable with kstats_tool diff")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Systematic crash-point sweep: one power loss + reboot per \
          durable write")
    Term.(const sweep $ max_arg $ verbose_arg $ json_arg)

let occ_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"N")

let crash_at_cmd =
  Cmd.v
    (Cmd.info "crash-at"
       ~doc:
         "Crash at the Nth durable write, reboot from the image, print \
          the recovery record")
    Term.(const crash_at $ occ_arg)

let cmd =
  Cmd.group
    (Cmd.info "kcrash_tool"
       ~doc:"Oops containment and crash-consistent recovery probes")
    [ sweep_cmd; crash_at_cmd ]

let () = exit (Cmd.eval' cmd)
