(* ktrace_tool: run a named workload under the syscall tracer, then print
   the weighted syscall graph, the hottest n-gram patterns, and the
   consolidation savings estimate (§2.2).

   Usage: dune exec bin/ktrace_tool.exe -- --workload interactive --top 10 *)

open Cmdliner

let workloads = [ "interactive"; "postmark"; "amutils"; "lsdir"; "webserver" ]

let run_workload name sys t =
  match name with
  | "interactive" ->
      Workloads.Interactive.setup sys;
      let s =
        Workloads.Interactive.run
          ~config:{ Workloads.Interactive.default_config with duration_events = 500 }
          sys
      in
      s.Workloads.Interactive.duration_cycles
  | "postmark" ->
      let cfg = { Workloads.Postmark.default_config with files = 100; transactions = 400 } in
      (Workloads.Postmark.run ~config:cfg sys).Workloads.Postmark.times.Ksim.Kernel.elapsed
  | "amutils" ->
      let cfg = { Workloads.Amutils.default_config with source_files = 60 } in
      Workloads.Amutils.setup ~config:cfg sys;
      (Workloads.Amutils.run ~config:cfg sys).Workloads.Amutils.times.Ksim.Kernel.elapsed
  | "lsdir" ->
      Workloads.Lsdir.setup sys ~dir:"/d" ~n:200;
      (Workloads.Lsdir.run_plain sys ~dir:"/d").Workloads.Lsdir.times.Ksim.Kernel.elapsed
  | "webserver" ->
      Workloads.Webserver.setup sys;
      (Workloads.Webserver.run_plain sys).Workloads.Webserver.times.Ksim.Kernel.elapsed
  | other ->
      ignore t;
      Fmt.failwith "unknown workload %s (expected one of %s)" other
        (String.concat ", " workloads)

let main workload top =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  let recorder = Core.trace t in
  let duration = run_workload workload sys t in
  Printf.printf "traced %d syscalls over %.3f simulated seconds\n"
    (Ktrace.Recorder.count recorder)
    (Ksim.Sim_clock.cycles_to_seconds duration);

  Printf.printf "\n-- weighted syscall graph (top %d edges) --\n" top;
  let g = Ktrace.Syscall_graph.of_recorder recorder in
  List.iteri
    (fun i (s, d, w) ->
      if i < top then
        Printf.printf "  %-12s -> %-12s %8d\n"
          (Ksyscall.Sysno.to_string s) (Ksyscall.Sysno.to_string d) w)
    (Ktrace.Syscall_graph.edges g);

  Printf.printf "\n-- hottest call sequences --\n";
  let mined = Ktrace.Patterns.mine recorder in
  List.iter
    (fun (p, n) ->
      Printf.printf "  %-40s x%d\n" (Fmt.str "%a" Ktrace.Patterns.pp_ngram p) n)
    (Ktrace.Patterns.top mined ~n:top);

  Printf.printf "\n-- consolidation estimate --\n  %s\n"
    (Fmt.str "%a"
       Ktrace.Savings.pp_estimate
       (Ktrace.Savings.estimate ~trace_duration_cycles:duration recorder))

let workload_arg =
  let doc = "Workload to trace: " ^ String.concat ", " workloads in
  Arg.(value & opt string "interactive" & info [ "w"; "workload" ] ~doc)

let top_arg =
  Arg.(value & opt int 10 & info [ "t"; "top" ] ~doc:"How many entries to print")

let cmd =
  Cmd.v
    (Cmd.info "ktrace_tool" ~doc:"Mine syscall traces for consolidation candidates")
    Term.(const main $ workload_arg $ top_arg)

let () = exit (Cmd.eval cmd)
