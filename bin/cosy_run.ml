(* cosy_run: take a mini-C file containing a COSY_START/COSY_END region,
   run the function both as plain user-space code (every syscall crossing
   the boundary) and as a Cosy compound, and compare.

   Usage: dune exec bin/cosy_run.exe -- --file prog.c --function main
   With no --file, a built-in demo program is used. *)

open Cmdliner

let demo =
  {|
int pump(void) {
  int total = 0;
  COSY_START;
  int fd = open("/demo/data", 0);
  char buf[256];
  int i = 0;
  while (i < 100) {
    int n = read(fd, buf, 256);
    total = total + n;
    i = i + 1;
  }
  close(fd);
  COSY_END;
  return total;
}
|}

(* user-space run: interpret the whole function with syscall externs that
   go through the boundary-crossing wrappers *)
let register_usyscalls interp sys =
  let str_of interp addr =
    Minic.Interp.read_c_string interp ~loc:Minic.Ast.no_loc ~addr
  in
  let reg name f = Minic.Interp.register_extern interp name f in
  reg "open" (fun i args ->
      match args with
      | [ path; flags ] ->
          let flags =
            (if flags land 1 <> 0 then [ Kvfs.Vfs.O_RDWR ] else [ Kvfs.Vfs.O_RDONLY ])
            @ (if flags land 2 <> 0 then [ Kvfs.Vfs.O_CREAT ] else [])
            @ (if flags land 4 <> 0 then [ Kvfs.Vfs.O_TRUNC ] else [])
          in
          (match Ksyscall.Usyscall.sys_open sys ~path:(str_of i path) ~flags with
          | Ok fd -> fd
          | Error e -> -Kvfs.Vtypes.errno_code e)
      | _ -> -1);
  reg "close" (fun _ args ->
      match args with
      | [ fd ] -> (
          match Ksyscall.Usyscall.sys_close sys ~fd with
          | Ok () -> 0
          | Error e -> -Kvfs.Vtypes.errno_code e)
      | _ -> -1);
  reg "read" (fun i args ->
      match args with
      | [ fd; buf; len ] -> (
          match Ksyscall.Usyscall.sys_read sys ~fd ~len with
          | Ok data ->
              Ksim.Address_space.write_bytes (Minic.Interp.space i) ~addr:buf data;
              Bytes.length data
          | Error e -> -Kvfs.Vtypes.errno_code e)
      | _ -> -1);
  reg "write" (fun i args ->
      match args with
      | [ fd; buf; len ] -> (
          let data =
            Ksim.Address_space.read_bytes (Minic.Interp.space i) ~addr:buf ~len
          in
          match Ksyscall.Usyscall.sys_write sys ~fd ~data with
          | Ok n -> n
          | Error e -> -Kvfs.Vtypes.errno_code e)
      | _ -> -1);
  reg "getpid" (fun _ _ -> Ksyscall.Usyscall.sys_getpid sys);
  reg "lseek" (fun _ args ->
      match args with
      | [ fd; off; whence ] -> (
          let whence =
            match whence with
            | 0 -> Kvfs.Vfs.SEEK_SET
            | 1 -> Kvfs.Vfs.SEEK_CUR
            | _ -> Kvfs.Vfs.SEEK_END
          in
          match Ksyscall.Usyscall.sys_lseek sys ~fd ~off ~whence with
          | Ok p -> p
          | Error e -> -Kvfs.Vtypes.errno_code e)
      | _ -> -1)

let main file fname =
  let src =
    match file with
    | None -> demo
    | Some f -> In_channel.with_open_text f In_channel.input_all
  in
  let program =
    Minic.Parser.parse_program ~file:(Option.value ~default:"<demo>" file) src
  in
  (* setup shared by both runs *)
  let prepare () =
    let t = Core.boot_with Core.Config.default in
    ignore (Core.Syscall.sys_mkdir (Core.sys t) ~path:"/demo");
    ignore
      (Core.Syscall.sys_open_write_close (Core.sys t) ~path:"/demo/data"
         ~data:(Bytes.make 25600 'd') ~flags:Core.o_create);
    t
  in
  (* 1. plain user-space interpretation *)
  let t1 = prepare () in
  let interp =
    Minic.Interp.create
      ~space:(Ksim.Kernel.uspace (Core.kernel t1))
      ~clock:(Ksim.Kernel.clock (Core.kernel t1))
      ~cost:(Ksim.Kernel.cost (Core.kernel t1))
      ~base_vpn:0x2000 ~pages:64
  in
  register_usyscalls interp (Core.sys t1);
  ignore (Minic.Interp.load_program interp program);
  let r1, times1 =
    Ksim.Kernel.timed (Core.kernel t1) (fun () -> Minic.Interp.run interp fname)
  in
  Printf.printf "user-space run : result=%d  crossings=%d  %s\n" r1
    (Ksim.Kernel.crossings (Core.kernel t1))
    (Fmt.str "%a" Core.pp_times times1);

  (* 2. Cosy-GCC + kernel extension *)
  let t2 = prepare () in
  let compiled = Cosy.Cosy_gcc.compile program ~fname in
  Printf.printf "cosy-gcc       : %d compound ops, %d B encoded, buffers: %s\n"
    compiled.Cosy.Cosy_gcc.op_count
    (Cosy.Compound.size compiled.Cosy.Cosy_gcc.compound)
    (String.concat "," (List.map fst compiled.Cosy.Cosy_gcc.shared_of_bufs));
  let exec = Core.cosy t2 in
  let c0 = Ksim.Kernel.crossings (Core.kernel t2) in
  let slots, times2 =
    Ksim.Kernel.timed (Core.kernel t2) (fun () ->
        Cosy.Cosy_exec.submit exec compiled.Cosy.Cosy_gcc.compound)
  in
  let result_slot =
    match compiled.Cosy.Cosy_gcc.slots_of_vars with
    | (_, s) :: _ as all ->
        (* prefer a variable named like a result; else the first *)
        (try List.assoc "total" all with Not_found -> s)
    | [] -> 0
  in
  Printf.printf "cosy run       : result=%d  crossings=%d  %s\n"
    slots.(result_slot)
    (Ksim.Kernel.crossings (Core.kernel t2) - c0)
    (Fmt.str "%a" Core.pp_times times2);
  Printf.printf "speedup        : %.1f%%\n"
    (100.
    *. (1.
        -. float_of_int times2.Ksim.Kernel.elapsed
           /. float_of_int (max 1 times1.Ksim.Kernel.elapsed)))

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~doc:"mini-C source file")

let fn_arg =
  Arg.(value & opt string "pump" & info [ "function" ] ~doc:"function with the Cosy region")

let cmd =
  Cmd.v
    (Cmd.info "cosy_run" ~doc:"Run a marked mini-C region as a Cosy compound")
    Term.(const main $ file_arg $ fn_arg)

let () = exit (Cmd.eval cmd)
