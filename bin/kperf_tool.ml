(* kperf_tool: record a trace of a named workload and export it.

   Usage:
     dune exec bin/kperf_tool.exe -- record -w postmark -o trace.json
     dune exec bin/kperf_tool.exe -- record -w webserver --format folded
     dune exec bin/kperf_tool.exe -- fold trace.json
     dune exec bin/kperf_tool.exe -- top trace.json -n 10

   [record] boots a system with the kperf tracer enabled, runs the
   workload, and writes the trace: Chrome trace_event JSON (loadable in
   Perfetto / chrome://tracing), folded stacks (flamegraph.pl /
   speedscope), or the top-N self-cycles table.  [fold] and [top]
   re-derive those views from a previously recorded JSON file. *)

open Cmdliner

let workloads = [ "interactive"; "postmark"; "amutils"; "lsdir"; "webserver" ]

let fs_of_string = function
  | "memfs" -> Core.Memfs
  | "wrapfs" -> Core.Wrapfs_kmalloc
  | "journalfs" -> Core.Journalfs
  | other -> Fmt.failwith "unknown fs %s (expected memfs, wrapfs, journalfs)" other

let run_workload name sys =
  match name with
  | "interactive" ->
      Workloads.Interactive.setup sys;
      ignore
        (Workloads.Interactive.run
           ~config:
             { Workloads.Interactive.default_config with duration_events = 500 }
           sys)
  | "postmark" ->
      let cfg =
        { Workloads.Postmark.default_config with files = 100; transactions = 400 }
      in
      ignore (Workloads.Postmark.run ~config:cfg sys)
  | "amutils" ->
      let cfg = { Workloads.Amutils.default_config with source_files = 60 } in
      Workloads.Amutils.setup ~config:cfg sys;
      ignore (Workloads.Amutils.run ~config:cfg sys)
  | "lsdir" ->
      Workloads.Lsdir.setup sys ~dir:"/d" ~n:200;
      ignore (Workloads.Lsdir.run_plain sys ~dir:"/d")
  | "webserver" ->
      Workloads.Webserver.setup sys;
      ignore (Workloads.Webserver.run_plain sys)
  | other ->
      Fmt.failwith "unknown workload %s (expected one of %s)" other
        (String.concat ", " workloads)

let write_out out data =
  match out with
  | None -> print_string data
  | Some path ->
      let oc = open_out path in
      output_string oc data;
      close_out oc;
      Fmt.epr "wrote %s (%d bytes)@." path (String.length data)

(* --- record ----------------------------------------------------------- *)

let record workload fs ncpus format out n =
  let t = Core.boot_with { Core.Config.default with ncpus = Some ncpus; trace = Some true; fs = fs_of_string fs } in
  run_workload workload (Core.sys t);
  let perf = Core.perf t in
  (match format with
  | "chrome" -> write_out out (Core.Perf.chrome_json perf)
  | "folded" -> write_out out (Core.Perf.folded perf)
  | "top" ->
      write_out out
        (Fmt.str "%a" Core.Perf.pp_top (Core.Perf.top ~n perf))
  | other ->
      Fmt.failwith "unknown format %s (expected chrome, folded, top)" other);
  if Core.Perf.drops perf + Core.Perf.overwritten perf > 0 then
    Fmt.epr "note: ring pressure — %d dropped, %d overwritten@."
      (Core.Perf.drops perf)
      (Core.Perf.overwritten perf)

(* --- fold / top from a recorded file ---------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let events_of_file path =
  try Core.Perf.events_of_chrome (read_file path)
  with Core.Perf.Json.Parse_error msg ->
    Fmt.failwith "%s: not a kperf chrome trace: %s" path msg

let fold_cmd_run path out = write_out out (Core.Perf.fold_events (events_of_file path))

let top_cmd_run path n =
  Fmt.pr "%a@." Core.Perf.pp_top (Core.Perf.top_of_events ~n (events_of_file path))

(* --- cmdliner wiring --------------------------------------------------- *)

let workload_arg =
  let doc = "Workload to trace: " ^ String.concat ", " workloads in
  Arg.(value & opt string "postmark" & info [ "w"; "workload" ] ~doc)

let fs_arg =
  Arg.(
    value & opt string "memfs"
    & info [ "f"; "fs" ] ~doc:"Filesystem stack: memfs, wrapfs, journalfs")

let ncpus_arg =
  Arg.(value & opt int 1 & info [ "ncpus" ] ~doc:"Simulated CPUs")

let format_arg =
  Arg.(
    value & opt string "chrome"
    & info [ "format" ] ~doc:"Export format: chrome, folded, top")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~doc:"Output file (default: stdout)")

let n_arg =
  Arg.(value & opt int 10 & info [ "n" ] ~doc:"Rows in the top table")

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.json")

let record_cmd =
  Cmd.v
    (Cmd.info "record" ~doc:"Trace a workload and export the result")
    Term.(
      const record $ workload_arg $ fs_arg $ ncpus_arg $ format_arg $ out_arg
      $ n_arg)

let fold_cmd =
  Cmd.v
    (Cmd.info "fold" ~doc:"Folded flamegraph stacks from a recorded trace")
    Term.(const fold_cmd_run $ file_arg $ out_arg)

let top_cmd =
  Cmd.v
    (Cmd.info "top" ~doc:"Top spans by self cycles from a recorded trace")
    Term.(const top_cmd_run $ file_arg $ n_arg)

let cmd =
  Cmd.group
    (Cmd.info "kperf_tool"
       ~doc:"Record and export kperf traces of simulated-kernel workloads")
    [ record_cmd; fold_cmd; top_cmd ]

let () = exit (Cmd.eval cmd)
