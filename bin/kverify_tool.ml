(* kverify_tool: learn a workload's syscall-flow automaton, check runs
   against it, and inspect what the kopt optimizer makes of a compound.

   Usage:
     dune exec bin/kverify_tool.exe -- learn -w postmark -o postmark.sfi
     dune exec bin/kverify_tool.exe -- check postmark.sfi -w postmark
     dune exec bin/kverify_tool.exe -- check postmark.sfi -w lsdir --policy deny
     dune exec bin/kverify_tool.exe -- opt compound.cosy
     dune exec bin/kverify_tool.exe -- opt --demo coalesce -o compound.cosy

   [learn] boots a system with an strace-style recorder attached, runs
   the named workload, compiles the recorded syscall digraph into an SFI
   automaton, and writes its textual form.  [check] loads an automaton,
   installs it as the dispatch gate under the chosen policy, re-runs a
   workload, and reports dispatches checked vs violations — exit status
   1 when any violation fired, so it scripts like a test.  [opt] reads
   an encoded compound (or generates a --demo one), runs kverify's
   checker on it, and prints the original ops next to the kopt plan:
   coalesced bulk copies, fused splice pairs, hoisted loop spans — exit
   status 1 when the compound is rejected. *)

open Cmdliner

let workloads = [ "interactive"; "postmark"; "amutils"; "lsdir"; "webserver" ]

let run_workload name sys =
  match name with
  | "interactive" ->
      Workloads.Interactive.setup sys;
      ignore
        (Workloads.Interactive.run
           ~config:
             { Workloads.Interactive.default_config with duration_events = 500 }
           sys)
  | "postmark" ->
      let cfg =
        { Workloads.Postmark.default_config with files = 100; transactions = 400 }
      in
      ignore (Workloads.Postmark.run ~config:cfg sys)
  | "amutils" ->
      let cfg = { Workloads.Amutils.default_config with source_files = 60 } in
      Workloads.Amutils.setup ~config:cfg sys;
      ignore (Workloads.Amutils.run ~config:cfg sys)
  | "lsdir" ->
      Workloads.Lsdir.setup sys ~dir:"/d" ~n:200;
      ignore (Workloads.Lsdir.run_plain sys ~dir:"/d")
  | "webserver" ->
      Workloads.Webserver.setup sys;
      ignore (Workloads.Webserver.run_plain sys)
  | other ->
      Fmt.failwith "unknown workload %s (expected one of %s)" other
        (String.concat ", " workloads)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* --- learn ------------------------------------------------------------- *)

let learn workload out =
  let t = Core.boot_with Core.Config.default in
  let rec_ = Core.trace t in
  run_workload workload (Core.sys t);
  let a = Core.Verify.learn rec_ in
  let text = Core.Verify.Sfi.to_string a in
  (match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Fmt.epr "wrote %s@." path);
  Fmt.epr "learned %d syscalls, %d transitions from %s@."
    (List.length (Core.Verify.Sfi.members a))
    (List.length (Core.Verify.Sfi.transitions a))
    workload

(* --- check ------------------------------------------------------------- *)

let policy_of_string = function
  | "kill" -> Core.Verify.Kill
  | "deny" -> Core.Verify.Deny
  | "log" -> Core.Verify.Log
  | other -> Fmt.failwith "unknown policy %s (expected kill, deny, log)" other

let check file workload policy =
  let a =
    try Core.Verify.Sfi.of_string (read_file file)
    with Core.Verify.Sfi.Parse_error msg ->
      Fmt.failwith "%s: not an sfi automaton: %s" file msg
  in
  let t =
    Core.boot_with
      { Core.Config.default with verify = Some (policy_of_string policy) }
  in
  let kv = Option.get (Core.kverify t) in
  Core.Verify.set_automaton kv (Some a);
  (try run_workload workload (Core.sys t)
   with Core.Verify.Flow_violation { pid; sysno } ->
     Fmt.pr "flow violation: pid %d killed attempting %s@." pid
       (Core.Sysno.to_string sysno));
  Fmt.pr "%s against %s: %d dispatches checked, %d violations@." workload file
    (Core.Verify.checked kv) (Core.Verify.violations kv);
  if Core.Verify.violations kv > 0 then exit 1

(* --- opt --------------------------------------------------------------- *)

module Op = Cosy.Cosy_op

let sysno name = Option.get (Op.sysno_of_name name)

(* Small generated compounds, one per rewrite family, for demos and the
   kopt smoke target. *)
let demo_ops = function
  | "loop" ->
      (* r0=i, r1=cond, r2=ret, r3=tmp: the counted getpid loop the
         checker proves bounded — every body op lands in a hoisted span *)
      let iters = 5 in
      ( 4,
        [
          Op.Set { dst = 0; src = Op.Const 0 };
          Op.Arith { dst = 1; op = Op.Alt; a = Op.Slot 0; b = Op.Const iters };
          Op.Jz { cond = Op.Slot 1; target = 7 };
          Op.Syscall { dst = 2; sysno = sysno "getpid"; args = [] };
          Op.Arith { dst = 3; op = Op.Aadd; a = Op.Slot 0; b = Op.Const 1 };
          Op.Set { dst = 0; src = Op.Slot 3 };
          Op.Jmp 1;
          Op.Halt;
        ] )
  | "coalesce" ->
      (* two contiguous reads on one fd: merges into a bulk read *)
      ( 4,
        [
          Op.Syscall
            { dst = 0; sysno = sysno "open"; args = [ Op.Str "/demo"; Op.Const 0 ] };
          Op.Syscall
            {
              dst = 1;
              sysno = sysno "read";
              args = [ Op.Slot 0; Op.Shared 0; Op.Const 512 ];
            };
          Op.Syscall
            {
              dst = 2;
              sysno = sysno "read";
              args = [ Op.Slot 0; Op.Shared 512; Op.Const 512 ];
            };
          Op.Syscall { dst = 3; sysno = sysno "close"; args = [ Op.Slot 0 ] };
          Op.Halt;
        ] )
  | "fuse" ->
      (* read one fd, write the same shared region to another: splice *)
      ( 6,
        [
          Op.Syscall
            { dst = 0; sysno = sysno "open"; args = [ Op.Str "/src"; Op.Const 0 ] };
          Op.Syscall
            { dst = 1; sysno = sysno "open"; args = [ Op.Str "/dst"; Op.Const 3 ] };
          Op.Syscall
            {
              dst = 2;
              sysno = sysno "read";
              args = [ Op.Slot 0; Op.Shared 0; Op.Const 1024 ];
            };
          Op.Syscall
            {
              dst = 3;
              sysno = sysno "write";
              args = [ Op.Slot 1; Op.Shared 0; Op.Const 1024 ];
            };
          Op.Syscall { dst = 4; sysno = sysno "close"; args = [ Op.Slot 0 ] };
          Op.Syscall { dst = 5; sysno = sysno "close"; args = [ Op.Slot 1 ] };
          Op.Halt;
        ] )
  | other ->
      Fmt.failwith "unknown demo %s (expected loop, coalesce, fuse)" other

(* Reconstruct a compound from its wire bytes (the header carries the
   op and slot counts). *)
let read_compound path =
  let buf = Bytes.of_string (read_file path) in
  if Bytes.length buf < 12 || Bytes.sub_string buf 0 4 <> "COSY" then
    Fmt.failwith "%s: not an encoded compound (missing COSY magic)" path;
  {
    Cosy.Compound.buf;
    op_count = Int32.to_int (Bytes.get_int32_le buf 4);
    slot_count = Int32.to_int (Bytes.get_int32_le buf 8);
  }

let opt file demo out shared_size =
  let compound =
    match (demo, file) with
    | Some kind, _ ->
        let slot_count, ops = demo_ops kind in
        let c = Cosy.Compound.encode ~slot_count ops in
        (match out with
        | Some path ->
            let oc = open_out_bin path in
            output_bytes oc c.Cosy.Compound.buf;
            close_out oc;
            Fmt.epr "wrote %s (%d ops, %d bytes)@." path
              c.Cosy.Compound.op_count (Cosy.Compound.size c)
        | None -> ());
        c
    | None, Some path -> read_compound path
    | None, None ->
        Fmt.failwith "opt: need a COMPOUND file or --demo loop|coalesce|fuse"
  in
  let ops, slot_count = Cosy.Compound.decode compound in
  Fmt.pr "original (%d ops, %d slots):@." (Array.length ops) slot_count;
  Array.iteri (fun i op -> Fmt.pr "  %3d  %a@." i Op.pp_op op) ops;
  match Core.Verify.Checker.verify_compound ~shared_size compound with
  | Core.Verify.Checker.Rejected why ->
      Fmt.pr "verdict: rejected (%s) — runs on the dynamic path unoptimized@."
        why;
      exit 1
  | Core.Verify.Checker.Verified { ops = n; loops } ->
      Fmt.pr "verdict: verified (%d ops, %d counted loops)@." n
        (List.length loops);
      let plan = Core.Opt.Plan.compile ~shared_size ~loops ops ~slot_count in
      Fmt.pr "optimized:@.%a" Core.Opt.Plan.pp plan

(* --- cmdliner wiring --------------------------------------------------- *)

let workload_arg =
  let doc = "Workload to run: " ^ String.concat ", " workloads in
  Arg.(value & opt string "postmark" & info [ "w"; "workload" ] ~doc)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~doc:"Output file (default: stdout)")

let policy_arg =
  Arg.(
    value & opt string "log"
    & info [ "policy" ] ~doc:"Violation policy: kill, deny, log")

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"AUTOMATON.sfi")

let learn_cmd =
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Record a workload and emit its syscall-flow automaton")
    Term.(const learn $ workload_arg $ out_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Enforce a learned automaton over a workload run")
    Term.(const check $ file_arg $ workload_arg $ policy_arg)

let compound_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"COMPOUND.cosy")

let demo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "demo" ] ~doc:"Generate a sample compound: loop, coalesce, fuse")

let shared_size_arg =
  Arg.(
    value & opt int 65536
    & info [ "shared-size" ] ~doc:"Shared-buffer bound for verification")

let opt_cmd =
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Print the kopt optimized program next to the original compound")
    Term.(const opt $ compound_arg $ demo_arg $ out_arg $ shared_size_arg)

let cmd =
  Cmd.group
    (Cmd.info "kverify_tool"
       ~doc:"Learn and enforce syscall-flow automatons for simulated workloads")
    [ learn_cmd; check_cmd; opt_cmd ]

let () = exit (Cmd.eval cmd)
