(* kverify_tool: learn a workload's syscall-flow automaton and check
   runs against it.

   Usage:
     dune exec bin/kverify_tool.exe -- learn -w postmark -o postmark.sfi
     dune exec bin/kverify_tool.exe -- check postmark.sfi -w postmark
     dune exec bin/kverify_tool.exe -- check postmark.sfi -w lsdir --policy deny

   [learn] boots a system with an strace-style recorder attached, runs
   the named workload, compiles the recorded syscall digraph into an SFI
   automaton, and writes its textual form.  [check] loads an automaton,
   installs it as the dispatch gate under the chosen policy, re-runs a
   workload, and reports dispatches checked vs violations — exit status
   1 when any violation fired, so it scripts like a test. *)

open Cmdliner

let workloads = [ "interactive"; "postmark"; "amutils"; "lsdir"; "webserver" ]

let run_workload name sys =
  match name with
  | "interactive" ->
      Workloads.Interactive.setup sys;
      ignore
        (Workloads.Interactive.run
           ~config:
             { Workloads.Interactive.default_config with duration_events = 500 }
           sys)
  | "postmark" ->
      let cfg =
        { Workloads.Postmark.default_config with files = 100; transactions = 400 }
      in
      ignore (Workloads.Postmark.run ~config:cfg sys)
  | "amutils" ->
      let cfg = { Workloads.Amutils.default_config with source_files = 60 } in
      Workloads.Amutils.setup ~config:cfg sys;
      ignore (Workloads.Amutils.run ~config:cfg sys)
  | "lsdir" ->
      Workloads.Lsdir.setup sys ~dir:"/d" ~n:200;
      ignore (Workloads.Lsdir.run_plain sys ~dir:"/d")
  | "webserver" ->
      Workloads.Webserver.setup sys;
      ignore (Workloads.Webserver.run_plain sys)
  | other ->
      Fmt.failwith "unknown workload %s (expected one of %s)" other
        (String.concat ", " workloads)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* --- learn ------------------------------------------------------------- *)

let learn workload out =
  let t = Core.boot_with Core.Config.default in
  let rec_ = Core.trace t in
  run_workload workload (Core.sys t);
  let a = Core.Verify.learn rec_ in
  let text = Core.Verify.Sfi.to_string a in
  (match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Fmt.epr "wrote %s@." path);
  Fmt.epr "learned %d syscalls, %d transitions from %s@."
    (List.length (Core.Verify.Sfi.members a))
    (List.length (Core.Verify.Sfi.transitions a))
    workload

(* --- check ------------------------------------------------------------- *)

let policy_of_string = function
  | "kill" -> Core.Verify.Kill
  | "deny" -> Core.Verify.Deny
  | "log" -> Core.Verify.Log
  | other -> Fmt.failwith "unknown policy %s (expected kill, deny, log)" other

let check file workload policy =
  let a =
    try Core.Verify.Sfi.of_string (read_file file)
    with Core.Verify.Sfi.Parse_error msg ->
      Fmt.failwith "%s: not an sfi automaton: %s" file msg
  in
  let t =
    Core.boot_with
      { Core.Config.default with verify = Some (policy_of_string policy) }
  in
  let kv = Option.get (Core.kverify t) in
  Core.Verify.set_automaton kv (Some a);
  (try run_workload workload (Core.sys t)
   with Core.Verify.Flow_violation { pid; sysno } ->
     Fmt.pr "flow violation: pid %d killed attempting %s@." pid
       (Core.Sysno.to_string sysno));
  Fmt.pr "%s against %s: %d dispatches checked, %d violations@." workload file
    (Core.Verify.checked kv) (Core.Verify.violations kv);
  if Core.Verify.violations kv > 0 then exit 1

(* --- cmdliner wiring --------------------------------------------------- *)

let workload_arg =
  let doc = "Workload to run: " ^ String.concat ", " workloads in
  Arg.(value & opt string "postmark" & info [ "w"; "workload" ] ~doc)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~doc:"Output file (default: stdout)")

let policy_arg =
  Arg.(
    value & opt string "log"
    & info [ "policy" ] ~doc:"Violation policy: kill, deny, log")

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"AUTOMATON.sfi")

let learn_cmd =
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Record a workload and emit its syscall-flow automaton")
    Term.(const learn $ workload_arg $ out_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Enforce a learned automaton over a workload run")
    Term.(const check $ file_arg $ workload_arg $ policy_arg)

let cmd =
  Cmd.group
    (Cmd.info "kverify_tool"
       ~doc:"Learn and enforce syscall-flow automatons for simulated workloads")
    [ learn_cmd; check_cmd ]

let () = exit (Cmd.eval cmd)
