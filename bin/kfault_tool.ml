(* kfault_tool: drive the deterministic fault-injection engine over the
   standard resilience workload.

   Usage:
     dune exec bin/kfault_tool.exe -- list-sites
     dune exec bin/kfault_tool.exe -- run-plan 'kalloc.kmalloc=once:3'
     dune exec bin/kfault_tool.exe -- run-plan 'net.wire_drop=nth:16' \
                                               'syscall.eintr=prob:5000:42'
     dune exec bin/kfault_tool.exe -- sweep
     dune exec bin/kfault_tool.exe -- sweep --max-per-site 8 -v

   [list-sites] runs the workload once in counting mode and prints every
   registered site with how often it was reached.  [run-plan] arms the
   given plans (SITE=nth:N | once:K | prob:PPM:SEED | window:LO:HI) and
   reports the run: payload digest, simulated cycles, clean failures,
   per-site occurrence/fire counts.  [sweep] is the systematic FATE-style
   exploration — one fresh boot per reachable (site, occurrence) —
   classifying every run against the fault-free baseline.  run-plan and
   sweep exit 1 when any invariant is violated, so they script like
   tests. *)

open Cmdliner

let pp_counts counts =
  Fmt.pr "%-28s %12s %8s@." "site" "occurrences" "fires";
  List.iter
    (fun (name, occ, fires) -> Fmt.pr "%-28s %12d %8d@." name occ fires)
    counts

let pp_run (r : Resilience.run_result) =
  Fmt.pr "cycles  %d@." r.r_cycles;
  Fmt.pr "digest  %s@." r.r_digest;
  Fmt.pr "killed  %d@." r.r_killed;
  (match r.r_errs with
  | [] -> Fmt.pr "errors  (none)@."
  | errs -> Fmt.pr "errors  %s@." (String.concat " " errs));
  match r.r_escaped with
  | None -> ()
  | Some m -> Fmt.pr "ESCAPED %s@." m

let list_sites () =
  let r = Resilience.run () in
  pp_counts r.Resilience.r_counts;
  (match r.Resilience.r_escaped with
  | None -> 0
  | Some m ->
      Fmt.epr "workload escaped fault-free: %s@." m;
      1)

let run_plan specs =
  match
    List.fold_left
      (fun acc spec ->
        match (acc, Kfault.plan_of_spec spec) with
        | Error e, _ -> Error e
        | Ok plans, Ok p -> Ok (p :: plans)
        | Ok _, Error e -> Error e)
      (Ok []) specs
  with
  | Error e ->
      Fmt.epr "%s@." e;
      2
  | Ok plans ->
      let plans = List.rev plans in
      let r = Resilience.run ~plans () in
      pp_run r;
      Fmt.pr "@.";
      pp_counts r.Resilience.r_counts;
      (* a plan that never even reached its site is almost always a
         typo'd name; surface it *)
      List.iter
        (fun (p : Kfault.plan) ->
          match
            List.find_opt (fun (n, _, _) -> n = p.site) r.Resilience.r_counts
          with
          | Some (_, occ, _) when occ > 0 -> ()
          | _ -> Fmt.epr "warning: site %s was never reached@." p.site)
        plans;
      (match r.Resilience.r_escaped with None -> 0 | Some _ -> 1)

(* Emit sweep tallies in the BENCH_kstats.json shape ("experiments" →
   "metrics" → typed values), so two sweeps diff with
   [kstats_tool diff old.json new.json]. *)
let write_metrics_json path ~id metrics =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"experiments\":[{\"id\":";
  Buffer.add_string b (Printf.sprintf "%S" id);
  Buffer.add_string b ",\"metrics\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "%S:{\"type\":\"counter\",\"value\":%d}" name v))
    metrics;
  Buffer.add_string b "}}]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let sweep max_per_site verbose json =
  let max_per_site = if max_per_site <= 0 then None else Some max_per_site in
  let progress =
    if verbose then fun idx total site k ->
      Fmt.pr "[%3d/%3d] %s occurrence %d@." (idx + 1) total site k
    else fun _ _ _ _ -> ()
  in
  let s = Resilience.sweep ?max_per_site ~progress () in
  (match s.Resilience.baseline.Resilience.r_escaped with
  | Some m -> Fmt.epr "baseline escaped fault-free: %s@." m
  | None -> ());
  let identical, degraded =
    List.fold_left
      (fun (i, d) (row : Resilience.sweep_row) ->
        match row.Resilience.sw_outcome with
        | Resilience.Identical -> (i + 1, d)
        | Resilience.Degraded -> (i, d + 1)
        | Resilience.Violation -> (i, d))
      (0, 0) s.Resilience.rows
  in
  List.iter
    (fun (row : Resilience.sweep_row) ->
      if verbose || row.Resilience.sw_outcome = Resilience.Violation then
        Fmt.pr "%-28s occ %4d  %-10s %s%s@." row.Resilience.sw_site
          row.Resilience.sw_occurrence
          (Resilience.outcome_to_string row.Resilience.sw_outcome)
          (String.concat " " row.Resilience.sw_errs)
          (if row.Resilience.sw_detail = "" then ""
           else " [" ^ row.Resilience.sw_detail ^ "]"))
    s.Resilience.rows;
  Fmt.pr "sweep: %d points over %d reached sites — %d identical, %d degraded, %d violations@."
    (List.length s.Resilience.rows)
    (List.length
       (List.filter (fun (_, occ, _) -> occ > 0)
          s.Resilience.baseline.Resilience.r_counts))
    identical degraded s.Resilience.violations;
  (match json with
  | None -> ()
  | Some path ->
      (* global tallies first, then per-site outcome counters *)
      let per_site = Hashtbl.create 16 in
      List.iter
        (fun (row : Resilience.sweep_row) ->
          let site = row.Resilience.sw_site in
          let i, d, v =
            try Hashtbl.find per_site site with Not_found -> (0, 0, 0)
          in
          Hashtbl.replace per_site site
            (match row.Resilience.sw_outcome with
            | Resilience.Identical -> (i + 1, d, v)
            | Resilience.Degraded -> (i, d + 1, v)
            | Resilience.Violation -> (i, d, v + 1)))
        s.Resilience.rows;
      let site_metrics =
        Hashtbl.fold
          (fun site (i, d, v) acc ->
            (site ^ ".identical", i)
            :: (site ^ ".degraded", d)
            :: (site ^ ".violations", v)
            :: acc)
          per_site []
        |> List.sort compare
      in
      write_metrics_json path ~id:"kfault_sweep"
        ([
           ("points", List.length s.Resilience.rows);
           ("identical", identical);
           ("degraded", degraded);
           ("violations", s.Resilience.violations);
         ]
        @ site_metrics);
      Fmt.pr "wrote %s@." path);
  if s.Resilience.violations > 0
     || s.Resilience.baseline.Resilience.r_escaped <> None
  then 1
  else 0

let list_cmd =
  Cmd.v
    (Cmd.info "list-sites"
       ~doc:"Run the workload in counting mode and print site reach")
    Term.(const list_sites $ const ())

let specs_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"SITE=TRIGGER")

let run_cmd =
  Cmd.v
    (Cmd.info "run-plan"
       ~doc:"Run the workload under the given fault plans")
    Term.(const run_plan $ specs_arg)

let max_arg =
  Arg.(
    value & opt int 0
    & info [ "max-per-site" ]
        ~doc:"Cap the sweep to N evenly spaced occurrences per site (0 = all)")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every sweep row")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the sweep tallies to $(docv) in the BENCH_kstats.json \
           shape, diffable with kstats_tool diff")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Systematic sweep: one run per reachable (site, occurrence)")
    Term.(const sweep $ max_arg $ verbose_arg $ json_arg)

let cmd =
  Cmd.group
    (Cmd.info "kfault_tool"
       ~doc:"Deterministic fault injection over the resilience workload")
    [ list_cmd; run_cmd; sweep_cmd ]

let () = exit (Cmd.eval' cmd)
