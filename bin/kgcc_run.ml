(* kgcc_run: compile a mini-C module with GCC (no checks) and with KGCC
   (bounds checks + check-CSE), run both, and report results, cost, and
   any bounds violation.

   Usage: dune exec bin/kgcc_run.exe -- --file module.c --function main
   With no --file, a built-in demo module (with a latent overflow) runs. *)

open Cmdliner

let demo =
  {|
int sum_records(char *buf, int nrec, int reclen) {
  int total = 0;
  int i;
  for (i = 0; i < nrec; i++) {
    char *rec = buf + i * reclen;
    int j;
    for (j = 0; j < reclen; j++) total = total + rec[j];
  }
  return total;
}

int main(void) {
  char *buf = malloc(16 * 32);
  memset(buf, 1, 16 * 32);
  int ok = sum_records(buf, 16, 32);
  /* the bug: one record too many */
  int bad = sum_records(buf, 17, 32);
  free(buf);
  return ok + bad;
}
|}

let mk_interp () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space =
    Ksim.Address_space.create ~name:"kgcc_run" ~mem ~clock
      ~cost:Ksim.Cost_model.default ()
  in
  ( clock,
    Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.default
      ~base_vpn:32 ~pages:128 )

let main file fname no_opt deinstrument =
  let src =
    match file with
    | None -> demo
    | Some f -> In_channel.with_open_text f In_channel.input_all
  in
  let srcname = Option.value ~default:"<demo>" file in
  let program () = Minic.Parser.parse_program ~file:srcname src in

  (* GCC: no instrumentation *)
  let clock, plain = mk_interp () in
  ignore (Minic.Interp.load_program plain (program ()));
  let t0 = Ksim.Sim_clock.now clock in
  (match Minic.Interp.run plain fname with
  | v ->
      Printf.printf "gcc  : result=%d  cycles=%d  (no checking: bugs run silently)\n"
        v (Ksim.Sim_clock.now clock - t0)
  | exception Ksim.Fault.Fault f ->
      Printf.printf "gcc  : HARDWARE FAULT %s\n" (Fmt.str "%a" Ksim.Fault.pp f));

  (* KGCC *)
  let clock, checked = mk_interp () in
  let rt =
    Kgcc.Kgcc_runtime.create
      ?deinstrument_after:(if deinstrument > 0 then Some deinstrument else None)
      ~clock ~cost:Ksim.Cost_model.default ()
  in
  Kgcc.Kgcc_runtime.attach rt checked;
  let compiled = Kgcc.Compile.compile ~optimize:(not no_opt) (program ()) in
  Printf.printf "kgcc : %s\n" (Fmt.str "%a" Kgcc.Compile.pp_result compiled);
  ignore (Minic.Interp.load_program checked compiled.Kgcc.Compile.program);
  let t0 = Ksim.Sim_clock.now clock in
  (match Minic.Interp.run checked fname with
  | v -> Printf.printf "kgcc : result=%d  cycles=%d\n" v (Ksim.Sim_clock.now clock - t0)
  | exception Kgcc.Kgcc_runtime.Bounds_violation { addr; line; detail } ->
      Printf.printf "kgcc : BOUNDS VIOLATION at %s:%d (0x%x)\n       %s\n" srcname
        line addr detail);
  let stats = Kgcc.Kgcc_runtime.stats rt in
  Printf.printf
    "kgcc : %d checks executed, %d skipped, %d violations, %d splay lookups (%d rotations)\n"
    stats.Kgcc.Kgcc_runtime.checks_executed stats.Kgcc.Kgcc_runtime.checks_skipped
    stats.Kgcc.Kgcc_runtime.violations stats.Kgcc.Kgcc_runtime.splay_lookups
    stats.Kgcc.Kgcc_runtime.splay_rotations

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~doc:"mini-C source file")

let fn_arg = Arg.(value & opt string "main" & info [ "function" ] ~doc:"entry function")

let no_opt_arg =
  Arg.(value & flag & info [ "no-cse" ] ~doc:"disable check-CSE optimization")

let deinstrument_arg =
  Arg.(value & opt int 0
       & info [ "deinstrument-after" ]
           ~doc:"disable each check site after N clean executions (0 = never)")

let cmd =
  Cmd.v
    (Cmd.info "kgcc_run" ~doc:"Compile and run mini-C under KGCC bounds checking")
    Term.(const main $ file_arg $ fn_arg $ no_opt_arg $ deinstrument_arg)

let () = exit (Cmd.eval cmd)
