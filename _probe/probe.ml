module Op = Cosy.Cosy_op

(* loop: 0: c(slot2) := i(slot0) < 5
         1: jz c -> 7      (exit guard)
         2: jmp 5          (forward jump SKIPPING the counter update)
         3: t(slot1) := i + 1
         4: i := t
         5: jmp 0          (back-edge)
         6: halt  (dead)
         7: halt *)
let ops =
  [
    Op.Arith { dst = 2; op = Op.Alt; a = Op.Slot 0; b = Op.Const 5 };
    Op.Jz { cond = Op.Slot 2; target = 7 };
    Op.Jmp 5;
    Op.Arith { dst = 1; op = Op.Aadd; a = Op.Slot 0; b = Op.Const 1 };
    Op.Set { dst = 0; src = Op.Slot 1 };
    Op.Jmp 0;
    Op.Halt;
    Op.Halt;
  ]

let () =
  let c = Cosy.Compound.encode ~slot_count:4 ops in
  match Kverify.Checker.verify_compound ~shared_size:4096 c with
  | Kverify.Checker.Verified { ops } ->
      Printf.printf "VERIFIED (%d ops) -- unsound: loop never terminates at runtime\n" ops
  | Kverify.Checker.Rejected m -> Printf.printf "REJECTED: %s\n" m
