examples/kgcc_boundscheck.ml: Fmt Kgcc Ksim Minic Printf
