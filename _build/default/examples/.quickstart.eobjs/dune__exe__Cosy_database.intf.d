examples/cosy_database.mli:
