examples/cosy_database.ml: Array Bytes Core Cosy Fmt Ksim List Minic Printf String
