examples/readdirplus_ls.ml: Array Core Fmt Ksim Ktrace List Printf Sys Workloads
