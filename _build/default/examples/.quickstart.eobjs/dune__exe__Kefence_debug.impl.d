examples/kefence_debug.ml: Core Fmt Kefence Ksim Kvfs List Printf Workloads
