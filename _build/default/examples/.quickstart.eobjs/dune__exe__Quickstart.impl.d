examples/quickstart.ml: Array Bytes Core Cosy Ksim Printf
