examples/kgcc_boundscheck.mli:
