examples/monitor_refcounts.mli:
