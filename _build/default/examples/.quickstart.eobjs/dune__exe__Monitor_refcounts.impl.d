examples/monitor_refcounts.ml: Core Fmt Kmonitor Ksim List Printf
