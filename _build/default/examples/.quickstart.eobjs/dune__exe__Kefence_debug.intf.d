examples/kefence_debug.mli:
