examples/quickstart.mli:
