examples/readdirplus_ls.mli:
