(* Tests for the syscall layer: boundary accounting, service routines,
   consolidated calls. *)

let mk_sys () =
  let kernel = Ksim.Kernel.create () in
  (kernel, Ksyscall.Systable.create kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected %a" Kvfs.Vtypes.pp_errno e

let test_open_read_write_close () =
  let _, sys = mk_sys () in
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/f"
                 ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  Alcotest.(check bool) "fd >= 3" true (fd >= 3);
  let n = ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Bytes.of_string "payload")) in
  Alcotest.(check int) "wrote" 7 n;
  ignore (ok (Ksyscall.Usyscall.sys_lseek sys ~fd ~off:0 ~whence:Kvfs.Vfs.SEEK_SET));
  Alcotest.(check string) "read back" "payload"
    (Bytes.to_string (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:100)));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd));
  match Ksyscall.Usyscall.sys_read sys ~fd ~len:1 with
  | Error Kvfs.Vtypes.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF"

let test_boundary_accounting () =
  let kernel, sys = mk_sys () in
  let c0 = Ksim.Kernel.crossings kernel in
  let b0 = Ksim.Kernel.bytes_from_user kernel in
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/file"
                 ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Bytes.make 1000 'x')));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd));
  Alcotest.(check int) "three crossings" 3 (Ksim.Kernel.crossings kernel - c0);
  (* path copied for open, data for write *)
  Alcotest.(check int) "bytes in" (6 + 1000)
    (Ksim.Kernel.bytes_from_user kernel - b0);
  (* reads copy out *)
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/file" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  let o0 = Ksim.Kernel.bytes_to_user kernel in
  ignore (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:400));
  Alcotest.(check int) "bytes out" 400 (Ksim.Kernel.bytes_to_user kernel - o0)

let test_mode_restored_on_error () =
  let kernel, sys = mk_sys () in
  (match Ksyscall.Usyscall.sys_open sys ~path:"/missing" ~flags:[ Kvfs.Vfs.O_RDONLY ] with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT");
  Alcotest.(check bool) "back in user mode" true
    (Ksim.Kernel.mode kernel = Ksim.Kernel.User)

let test_service_requires_kernel_mode () =
  let _, sys = mk_sys () in
  try
    ignore (Ksyscall.Sys_file.service_getpid sys);
    Alcotest.fail "expected mode violation"
  with Ksim.Kernel.Kernel_mode_violation _ -> ()

let test_getpid_and_counts () =
  let kernel, sys = mk_sys () in
  let pid = Ksyscall.Usyscall.sys_getpid sys in
  Alcotest.(check int) "init pid" 1 pid;
  let p = Ksim.Kernel.current kernel in
  Alcotest.(check bool) "syscall counted" true (p.Ksim.Kproc.syscalls >= 1);
  Alcotest.(check int) "table count" 1 (Ksyscall.Systable.count sys "getpid")

let test_readdirplus_equivalence () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/d"));
  for i = 0 to 4 do
    let path = Printf.sprintf "/d/f%d" i in
    ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path
                  ~data:(Bytes.make (10 * (i + 1)) 'a')
                  ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done;
  (* plain sequence *)
  let entries = ok (Ksyscall.Usyscall.sys_readdir sys ~path:"/d") in
  let plain =
    List.map
      (fun d ->
        let st = ok (Ksyscall.Usyscall.sys_stat sys ~path:("/d/" ^ d.Kvfs.Vtypes.d_name)) in
        (d.Kvfs.Vtypes.d_name, st.Kvfs.Vtypes.st_size))
      entries
  in
  (* consolidated *)
  let merged =
    List.map
      (fun (d, st) -> (d.Kvfs.Vtypes.d_name, st.Kvfs.Vtypes.st_size))
      (ok (Ksyscall.Usyscall.sys_readdirplus sys ~path:"/d"))
  in
  Alcotest.(check (list (pair string int))) "identical results" plain merged

let test_readdirplus_fewer_crossings () =
  let kernel, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/d"));
  for i = 0 to 9 do
    ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys
                  ~path:(Printf.sprintf "/d/f%d" i)
                  ~data:(Bytes.make 1 'x')
                  ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done;
  let c0 = Ksim.Kernel.crossings kernel in
  let entries = ok (Ksyscall.Usyscall.sys_readdir sys ~path:"/d") in
  List.iter
    (fun d -> ignore (ok (Ksyscall.Usyscall.sys_stat sys ~path:("/d/" ^ d.Kvfs.Vtypes.d_name))))
    entries;
  let plain_crossings = Ksim.Kernel.crossings kernel - c0 in
  let c1 = Ksim.Kernel.crossings kernel in
  ignore (ok (Ksyscall.Usyscall.sys_readdirplus sys ~path:"/d"));
  let merged_crossings = Ksim.Kernel.crossings kernel - c1 in
  Alcotest.(check int) "plain" 11 plain_crossings;
  Alcotest.(check int) "merged" 1 merged_crossings

let test_open_read_close () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/x"
                ~data:(Bytes.of_string "contents")
                ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  Alcotest.(check string) "read whole file" "contents"
    (Bytes.to_string (ok (Ksyscall.Usyscall.sys_open_read_close sys ~path:"/x" ~maxlen:1000)));
  (* no descriptor leaks *)
  let kernel = Ksyscall.Systable.kernel sys in
  Alcotest.(check int) "no fds leaked" 0
    (Ksim.Kproc.open_fd_count (Ksim.Kernel.current kernel));
  match Ksyscall.Usyscall.sys_open_read_close sys ~path:"/none" ~maxlen:10 with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let test_open_fstat () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/y"
                ~data:(Bytes.make 123 'b')
                ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  let fd, st = ok (Ksyscall.Usyscall.sys_open_fstat sys ~path:"/y" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  Alcotest.(check int) "size" 123 st.Kvfs.Vtypes.st_size;
  (* the fd stays open and usable *)
  Alcotest.(check int) "readable" 123
    (Bytes.length (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:1000)));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd))

let test_pread_pwrite () =
  let _, sys = mk_sys () in
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/p"
                 ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Bytes.of_string "0123456789")));
  ignore (ok (Ksyscall.Usyscall.sys_pwrite sys ~fd ~off:4 ~data:(Bytes.of_string "XY")));
  Alcotest.(check string) "pread" "3XY6"
    (Bytes.to_string (ok (Ksyscall.Usyscall.sys_pread sys ~fd ~off:3 ~len:4)));
  (* position unaffected by pread/pwrite *)
  Alcotest.(check int) "pos at end" 10
    (ok (Ksyscall.Usyscall.sys_lseek sys ~fd ~off:0 ~whence:Kvfs.Vfs.SEEK_CUR))

let test_rename_fsync () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/old"
                ~data:(Bytes.of_string "v") ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  ignore (ok (Ksyscall.Usyscall.sys_rename sys ~src:"/old" ~dst:"/new"));
  (match Ksyscall.Usyscall.sys_stat sys ~path:"/old" with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | _ -> Alcotest.fail "old still there");
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/new" ~flags:[ Kvfs.Vfs.O_RDWR ]) in
  ignore (ok (Ksyscall.Usyscall.sys_fsync sys ~fd));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd))

let test_sendfile () =
  let kernel, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/doc"
                ~data:(Bytes.make 10_000 'w')
                ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/doc" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  let out0 = Ksim.Kernel.bytes_to_user kernel in
  let n = ok (Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:0 ~len:max_int) in
  Alcotest.(check int) "whole file sent" 10_000 n;
  (* the entire point: no data crossed into user space *)
  Alcotest.(check int) "zero copies out" 0 (Ksim.Kernel.bytes_to_user kernel - out0);
  (* partial range *)
  let n = ok (Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:9_000 ~len:5_000) in
  Alcotest.(check int) "tail clamped" 1_000 n;
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd));
  match Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:0 ~len:1 with
  | Error Kvfs.Vtypes.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF"

let test_tracer () =
  let _, sys = mk_sys () in
  let seen = ref [] in
  Ksyscall.Systable.set_tracer sys (fun r -> seen := r :: !seen);
  ignore (Ksyscall.Usyscall.sys_getpid sys);
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/t"));
  Ksyscall.Systable.clear_tracer sys;
  ignore (ok (Ksyscall.Usyscall.sys_stat sys ~path:"/t"));
  let names = List.rev_map (fun r -> r.Ksyscall.Systable.name) !seen in
  Alcotest.(check (list string)) "traced while attached" [ "getpid"; "mkdir" ] names

let () =
  Alcotest.run "ksyscall"
    [
      ( "basic",
        [
          Alcotest.test_case "open/read/write/close" `Quick test_open_read_write_close;
          Alcotest.test_case "boundary accounting" `Quick test_boundary_accounting;
          Alcotest.test_case "mode restored on error" `Quick test_mode_restored_on_error;
          Alcotest.test_case "service mode check" `Quick test_service_requires_kernel_mode;
          Alcotest.test_case "getpid/counts" `Quick test_getpid_and_counts;
          Alcotest.test_case "pread/pwrite" `Quick test_pread_pwrite;
          Alcotest.test_case "rename/fsync" `Quick test_rename_fsync;
          Alcotest.test_case "tracer" `Quick test_tracer;
        ] );
      ( "consolidated",
        [
          Alcotest.test_case "readdirplus equivalence" `Quick test_readdirplus_equivalence;
          Alcotest.test_case "readdirplus crossings" `Quick test_readdirplus_fewer_crossings;
          Alcotest.test_case "open_read_close" `Quick test_open_read_close;
          Alcotest.test_case "open_fstat" `Quick test_open_fstat;
          Alcotest.test_case "sendfile" `Quick test_sendfile;
        ] );
    ]
