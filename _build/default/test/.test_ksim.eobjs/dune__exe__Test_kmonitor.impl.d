test/test_kmonitor.ml: Alcotest Domain Fun Kmonitor Ksim List QCheck QCheck_alcotest Queue
