test/test_cosy.mli:
