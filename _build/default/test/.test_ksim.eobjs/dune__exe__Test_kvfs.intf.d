test/test_kvfs.mli:
