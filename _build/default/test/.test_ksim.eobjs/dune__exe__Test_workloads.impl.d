test/test_workloads.ml: Alcotest Core Cosy Kefence Kmonitor Ksim Ktrace List Workloads
