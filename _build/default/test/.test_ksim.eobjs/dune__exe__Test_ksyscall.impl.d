test/test_ksyscall.ml: Alcotest Bytes Ksim Ksyscall Kvfs List Printf
