test/test_ktrace.mli:
