test/test_kefence.mli:
