test/test_kvfs.ml: Alcotest Bytes Kgcc Ksim Kvfs List Printf
