test/test_cosy.ml: Alcotest Array Bytes Compound Cosy Cosy_exec Cosy_gcc Cosy_lib Cosy_op Cosy_profile Cosy_safety Hashtbl Ksim Ksyscall Kvfs List Minic QCheck QCheck_alcotest Shared_buffer
