test/test_core.ml: Alcotest Array Bytes Core Cosy Kefence Kmonitor Ksim Ktrace Kvfs List String
