test/test_kgcc.ml: Alcotest Int Kgcc Ksim List Map Minic QCheck QCheck_alcotest
