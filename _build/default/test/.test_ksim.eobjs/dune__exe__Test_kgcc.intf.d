test/test_kgcc.mli:
