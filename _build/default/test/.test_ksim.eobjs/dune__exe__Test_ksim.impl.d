test/test_ksim.ml: Alcotest Bytes Gen Ksim List QCheck QCheck_alcotest String
