test/test_kmonitor.mli:
