test/test_ktrace.ml: Alcotest Bytes Ksim Ksyscall Ktrace Kvfs List Printf
