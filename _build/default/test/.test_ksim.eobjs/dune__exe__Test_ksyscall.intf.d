test/test_ksyscall.mli:
