test/test_minic.ml: Alcotest Ksim List Minic Printf QCheck QCheck_alcotest
