test/test_kefence.ml: Alcotest Core Kefence Ksim Kvfs List QCheck QCheck_alcotest String Workloads
