bin/ktrace_tool.mli:
