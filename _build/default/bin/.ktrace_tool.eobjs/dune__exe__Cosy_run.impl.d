bin/cosy_run.ml: Arg Array Bytes Cmd Cmdliner Core Cosy Fmt In_channel Ksim Ksyscall Kvfs List Minic Option Printf String Term
