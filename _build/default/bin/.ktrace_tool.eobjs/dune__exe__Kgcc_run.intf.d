bin/kgcc_run.mli:
