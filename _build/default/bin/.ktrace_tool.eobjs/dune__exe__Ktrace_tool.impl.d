bin/ktrace_tool.ml: Arg Cmd Cmdliner Core Fmt Ksim Ktrace List Printf String Term Workloads
