bin/kgcc_run.ml: Arg Cmd Cmdliner Fmt In_channel Kgcc Ksim Minic Option Printf Term
