bin/cosy_run.mli:
