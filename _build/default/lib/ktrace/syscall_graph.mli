(** The weighted directed syscall graph of §2.2 (after Cassyopia):
    vertices are syscall names; edge [(v1, v2)] weighs how many times
    [v2] directly followed [v1] in the same process's trace.  "Paths with
    large weights are likely to be good candidates for consolidation." *)

type t

val create : unit -> t
val add_transition : t -> src:string -> dst:string -> unit
val add_vertex : t -> string -> unit

(** Build the graph from a recorded trace. *)
val of_recorder : Recorder.t -> t

val weight : t -> src:string -> dst:string -> int

(** Total invocations of one syscall. *)
val invocations : t -> string -> int

(** All edges, heaviest first. *)
val edges : t -> (string * string * int) list

(** Greedy heaviest paths of [length] vertices: the consolidation
    candidates.  Each path carries its bottleneck weight. *)
val heavy_paths : t -> length:int -> top:int -> (string list * int) list

val pp : Format.formatter -> t -> unit
