lib/ktrace/patterns.mli: Format Recorder
