lib/ktrace/patterns.ml: Array Fmt Hashtbl List Option Recorder
