lib/ktrace/savings.ml: Fmt Hashtbl Ksim Ksyscall List Option Recorder
