lib/ktrace/syscall_graph.mli: Format Recorder
