lib/ktrace/recorder.ml: Hashtbl Ksyscall List Option
