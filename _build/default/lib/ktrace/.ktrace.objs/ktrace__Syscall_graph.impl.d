lib/ktrace/syscall_graph.ml: Fmt Hashtbl List Option Recorder
