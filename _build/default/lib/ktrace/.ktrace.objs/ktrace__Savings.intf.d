lib/ktrace/savings.mli: Format Ksim Recorder
