lib/ktrace/recorder.mli: Ksyscall
