(** Estimate what a trace would have cost with consolidated syscalls —
    the calculation behind E2's "171,975 -> 17,251 calls ... ~28.15
    s/hour".

    The model: every readdir followed by k stats collapses into one
    readdirplus (the k crossings and their path-name copy-ins vanish);
    open-read-close / open-write-close / open-fstat runs collapse into
    single calls. *)

type estimate = {
  syscalls_before : int;
  syscalls_after : int;
  bytes_before : int;
  bytes_after : int;
  crossings_saved : int;
  cycles_saved : int;
  seconds_saved_per_hour : float;
      (** 0 when no [trace_duration_cycles] was supplied *)
}

val pp_estimate : Format.formatter -> estimate -> unit

val estimate :
  ?cost:Ksim.Cost_model.t -> ?trace_duration_cycles:int -> Recorder.t -> estimate
