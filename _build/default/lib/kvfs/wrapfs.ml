(* Wrapfs: a stackable filesystem that redirects every operation to a
   lower filesystem, as in FiST.  Like the paper's Wrapfs, each object it
   touches gets dynamically allocated private data, temporary page
   buffers for data copies, and temporary name buffers — all through a
   pluggable allocator.  With the default kmalloc allocator this is
   "vanilla Wrapfs"; with Kefence's guarded vmalloc allocator it is the
   instrumented version of E5.

   The private buffers are real simulated memory and are written through
   the address space, so an injected off-by-one actually lands on a
   guardian page and faults. *)

type allocator = {
  alloc_name : string;
  space : Ksim.Address_space.t;
  alloc : int -> int;       (* size in bytes -> virtual address *)
  free : int -> unit;
}

let kmalloc_allocator kernel =
  let ka = Ksim.Kernel.alloc kernel in
  {
    alloc_name = "kmalloc";
    space = Ksim.Kernel.kspace kernel;
    alloc = (fun size -> Ksim.Kalloc.kmalloc ka size);
    free = (fun addr -> Ksim.Kalloc.kfree ka addr);
  }

type t = {
  lower : Vtypes.ops;
  allocator : allocator;
  (* per-inode private data, as in the paper: "each Wrapfs object
     contains a private data field which gets dynamically allocated" *)
  private_data : (int, int) Hashtbl.t;  (* lower ino -> buffer addr *)
  private_size : int;
  mutable name_copies : int;
  mutable page_copies : int;
  (* one reusable staging page, as the kernel's page cache provides;
     allocated lazily so the allocator (possibly kefence) sees it *)
  mutable page_pool : int option;
  (* fault injection for tests: write this many bytes past the end of
     every temporary name buffer *)
  mutable overflow_bytes : int;
}

let create ?(private_size = 80) ~allocator lower =
  {
    lower;
    allocator;
    private_data = Hashtbl.create 1024;
    private_size;
    name_copies = 0;
    page_copies = 0;
    page_pool = None;
    overflow_bytes = 0;
  }

let inject_overflow t n = t.overflow_bytes <- n

(* Attach private data to a lower inode on first sight; the 80-byte
   default matches the paper's measured mean allocation size. *)
let ensure_private t ino =
  if not (Hashtbl.mem t.private_data ino) then begin
    let addr = t.allocator.alloc t.private_size in
    (* initialize the private area: a real write through the MMU *)
    Ksim.Address_space.write_bytes ~pc:"wrapfs.ml:ensure_private"
      t.allocator.space ~addr
      (Bytes.make t.private_size '\000');
    Hashtbl.replace t.private_data ino addr
  end

let drop_private t ino =
  match Hashtbl.find_opt t.private_data ino with
  | Some addr ->
      t.allocator.free addr;
      Hashtbl.remove t.private_data ino
  | None -> ()

(* Copy [name] into a freshly allocated temporary buffer, touch it, and
   free it — the "strings containing file names are allocated
   dynamically" behaviour of the paper's Wrapfs. *)
let with_name_copy t name f =
  t.name_copies <- t.name_copies + 1;
  let len = String.length name + 1 in
  let addr = t.allocator.alloc len in
  let payload = Bytes.make (len + t.overflow_bytes) 'x' in
  Bytes.blit_string name 0 payload 0 (String.length name);
  Bytes.set payload (String.length name) '\000';
  (* an injected overflow writes past the end of the allocation *)
  Ksim.Address_space.write_bytes ~pc:"wrapfs.ml:with_name_copy"
    t.allocator.space ~addr payload;
  let finally () = t.allocator.free addr in
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

(* Stage data page by page through the reusable staging buffer, as
   Wrapfs copies pages between layers. *)
let page_size = 4096

let pool_page t =
  match t.page_pool with
  | Some addr -> addr
  | None ->
      let addr = t.allocator.alloc page_size in
      t.page_pool <- Some addr;
      addr

let with_page_copy t data f =
  t.page_copies <- t.page_copies + 1;
  let addr = pool_page t in
  let len = Bytes.length data in
  let staged = Bytes.create len in
  let rec chunks off =
    if off < len then begin
      let n = min page_size (len - off) in
      Ksim.Address_space.write_bytes ~pc:"wrapfs.ml:with_page_copy"
        t.allocator.space ~addr (Bytes.sub data off n);
      Bytes.blit
        (Ksim.Address_space.read_bytes ~pc:"wrapfs.ml:with_page_copy"
           t.allocator.space ~addr ~len:n)
        0 staged off n;
      chunks (off + n)
    end
  in
  chunks 0;
  f staged

let ops t =
  let lower = t.lower in
  {
    Vtypes.fs_name = "wrapfs(" ^ lower.Vtypes.fs_name ^ ")";
    root = lower.Vtypes.root;
    lookup =
      (fun ~dir name ->
        ensure_private t dir;
        with_name_copy t name (fun () ->
            match lower.Vtypes.lookup ~dir name with
            | Ok ino ->
                ensure_private t ino;
                Ok ino
            | Error _ as e -> e));
    create =
      (fun ~dir ~name kind ->
        ensure_private t dir;
        with_name_copy t name (fun () ->
            match lower.Vtypes.create ~dir ~name kind with
            | Ok ino ->
                ensure_private t ino;
                Ok ino
            | Error _ as e -> e));
    unlink =
      (fun ~dir ~name ->
        with_name_copy t name (fun () ->
            match lower.Vtypes.lookup ~dir name with
            | Error e -> Error e
            | Ok ino -> (
                match lower.Vtypes.unlink ~dir ~name with
                | Ok () ->
                    drop_private t ino;
                    Ok ()
                | Error _ as e -> e)));
    readdir =
      (fun ~dir ->
        ensure_private t dir;
        lower.Vtypes.readdir ~dir);
    getattr =
      (fun ~ino ->
        ensure_private t ino;
        lower.Vtypes.getattr ~ino);
    read =
      (fun ~ino ~off ~len ->
        ensure_private t ino;
        match lower.Vtypes.read ~ino ~off ~len with
        | Error _ as e -> e
        | Ok data ->
            if Bytes.length data = 0 then Ok data
            else with_page_copy t data (fun staged -> Ok staged));
    write =
      (fun ~ino ~off ~data ->
        ensure_private t ino;
        if Bytes.length data = 0 then lower.Vtypes.write ~ino ~off ~data
        else
          with_page_copy t data (fun staged ->
              lower.Vtypes.write ~ino ~off ~data:staged));
    truncate = (fun ~ino ~size -> lower.Vtypes.truncate ~ino ~size);
    rename =
      (fun ~src_dir ~src ~dst_dir ~dst ->
        with_name_copy t src (fun () ->
            with_name_copy t dst (fun () ->
                lower.Vtypes.rename ~src_dir ~src ~dst_dir ~dst)));
    fsync = (fun ~ino -> lower.Vtypes.fsync ~ino);
    destroy_private =
      (fun () ->
        Hashtbl.iter (fun _ addr -> t.allocator.free addr) t.private_data;
        Hashtbl.reset t.private_data;
        (match t.page_pool with
        | Some addr ->
            t.allocator.free addr;
            t.page_pool <- None
        | None -> ()));
  }

type stats = { live_private : int; name_copies : int; page_copies : int }

let stats t =
  {
    live_private = Hashtbl.length t.private_data;
    name_copies = t.name_copies;
    page_copies = t.page_copies;
  }
