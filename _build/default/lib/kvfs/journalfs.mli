(** Journalfs: the Reiserfs stand-in for experiment E7.

    A journaling filesystem layered on the memfs engine whose CPU-bound
    hot paths — journal-header checksumming, directory-entry scanning and
    block-bitmap search — are mini-C routines run through an embedded
    interpreter.  "Compiling the module with KGCC" means passing that
    mini-C source through the KGCC instrumentation pass; the instrumented
    code executes more work per byte, reproducing the paper's system-time
    blow-up under metadata-heavy workloads. *)

(** The module's mini-C source (exported for the E8 compile-statistics
    corpus). *)
val source : string

type t

(** [create ?transform ?attach ?data_journal kernel]:
    [transform] is the "compiler" — identity models GCC, the KGCC pass
    models KGCC; [attach] runs on the embedded interpreter before the
    module loads (KGCC hooks its runtime there so it sees every
    allocation); [data_journal] additionally checksums data heads
    (most journaling filesystems do metadata-only, the default). *)
val create :
  ?transform:(Minic.Ast.program -> Minic.Ast.program) ->
  ?attach:(Minic.Interp.t -> unit) ->
  ?data_journal:bool ->
  ?interp_base_vpn:int ->
  ?interp_pages:int ->
  Ksim.Kernel.t ->
  t

(** The embedded interpreter running the module's hot paths. *)
val interp : t -> Minic.Interp.t

(** The operations vector (pass to {!Vfs.create}). *)
val ops : t -> Vtypes.ops

type stats = {
  journal_records : int;
  hot_calls : int;       (** mini-C hot-path invocations *)
  interp_steps : int;
  checksum_acc : int;    (** running checksum (keeps the work honest) *)
}

val stats : t -> stats
