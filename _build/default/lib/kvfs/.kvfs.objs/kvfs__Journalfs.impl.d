lib/kvfs/journalfs.ml: Block_dev Bytes Ksim List Memfs Minic Printf String Vtypes
