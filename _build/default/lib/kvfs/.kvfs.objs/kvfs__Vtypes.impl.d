lib/kvfs/vtypes.ml: Fmt String
