lib/kvfs/wrapfs.ml: Bytes Hashtbl Ksim String Vtypes
