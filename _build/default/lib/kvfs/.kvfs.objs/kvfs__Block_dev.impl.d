lib/kvfs/block_dev.ml: Hashtbl Ksim Queue
