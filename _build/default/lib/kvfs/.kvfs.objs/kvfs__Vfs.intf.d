lib/kvfs/vfs.mli: Bytes Dcache Ksim Vtypes
