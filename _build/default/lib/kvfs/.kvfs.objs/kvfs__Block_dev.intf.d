lib/kvfs/block_dev.mli: Ksim
