lib/kvfs/journalfs.mli: Ksim Minic Vtypes
