lib/kvfs/vfs.ml: Bytes Dcache Hashtbl Ksim List Memfs String Vtypes
