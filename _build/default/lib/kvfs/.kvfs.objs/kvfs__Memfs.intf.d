lib/kvfs/memfs.mli: Block_dev Bytes Ksim Vtypes
