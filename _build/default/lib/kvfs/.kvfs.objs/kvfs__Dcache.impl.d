lib/kvfs/dcache.ml: Hashtbl Ksim
