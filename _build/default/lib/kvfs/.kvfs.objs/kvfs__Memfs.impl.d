lib/kvfs/memfs.ml: Block_dev Bytes Hashtbl Ksim List Option Printf Vtypes
