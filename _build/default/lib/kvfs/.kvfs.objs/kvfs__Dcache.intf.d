lib/kvfs/dcache.mli: Ksim
