lib/kvfs/wrapfs.mli: Ksim Vtypes
