(* Journalfs: the Reiserfs stand-in for experiment E7.

   A journaling filesystem layered on the memfs engine.  Its CPU-bound
   hot paths — journal checksumming, directory-entry scanning, and block
   bitmap search — are implemented in mini-C and executed through the
   embedded interpreter.  Compiling the module "with KGCC" means passing
   the module's mini-C source through the KGCC instrumentation pass
   (supplied as [transform]); the instrumented code executes more
   operations per byte, reproducing the paper's system-time blow-up under
   metadata-heavy workloads. *)

(* The module's mini-C source.  These routines deliberately have the
   pointer-chasing, byte-loop style of real filesystem code: every loop
   iteration dereferences through a pointer, which is exactly what BCC/
   KGCC instruments. *)
let source =
  {|
int jfs_checksum(char *buf, int len) {
  int sum = 0;
  int i;
  for (i = 0; i < len; i++) {
    sum = sum * 31 + buf[i];
    sum = sum & 16777215;
  }
  return sum;
}

int jfs_scan_dir(char *entries, int nentries, int entry_size, char *target) {
  int i;
  for (i = 0; i < nentries; i++) {
    char *e = entries + i * entry_size;
    int j = 0;
    while (e[j] != 0 && target[j] != 0 && e[j] == target[j]) j++;
    if (e[j] == 0 && target[j] == 0) return i;
  }
  return -1;
}

int jfs_bitmap_find(char *bitmap, int nbytes) {
  int i;
  for (i = 0; i < nbytes; i++) {
    if (bitmap[i] != 255) {
      int b = 0;
      int v = bitmap[i];
      while (b < 8) {
        if ((v & (1 << b)) == 0) {
          bitmap[i] = v | (1 << b);
          return i * 8 + b;
        }
        b++;
      }
    }
  }
  return -1;
}
|}

type t = {
  kernel : Ksim.Kernel.t;
  inner : Memfs.t;
  interp : Minic.Interp.t;
  work_buf : int;                (* interp heap buffer for data blocks *)
  work_buf_size : int;
  name_buf : int;                (* interp heap buffer for names *)
  bitmap_buf : int;
  bitmap_bytes : int;
  data_journal : bool;           (* checksum data heads too (non-default) *)
  mutable journal_seq : int;
  mutable checksum_acc : int;    (* running, so the work can't be elided *)
  mutable hot_calls : int;
}

(* [transform] is the "compiler": identity models GCC, the KGCC
   instrumentation pass models KGCC.  [interp_pages] bounds the module's
   working memory. *)
(* [attach] runs right after the interpreter is created and before the
   module's code is loaded or any buffer allocated — KGCC hooks its
   runtime (object-map observer + check externs) here so that it sees
   every allocation. *)
let create ?(transform = fun (p : Minic.Ast.program) -> p)
    ?(attach = fun (_ : Minic.Interp.t) -> ())
    ?(data_journal = false)
    ?(interp_base_vpn = 0x60000) ?(interp_pages = 256) kernel =
  let inner = Memfs.create kernel in
  let interp =
    Minic.Interp.create
      ~space:(Ksim.Kernel.kspace kernel)
      ~clock:(Ksim.Kernel.clock kernel)
      ~cost:(Ksim.Kernel.cost kernel)
      ~base_vpn:interp_base_vpn ~pages:interp_pages
  in
  attach interp;
  let program = Minic.Parser.parse_program ~file:"journalfs.c" source in
  ignore (Minic.Interp.load_program interp (transform program));
  let work_buf_size = 4096 in
  let work_buf = Minic.Interp.alloc_buffer interp ~name:"jfs_work" work_buf_size in
  let name_buf = Minic.Interp.alloc_buffer interp ~name:"jfs_name" 256 in
  let bitmap_bytes = 64 in
  let bitmap_buf = Minic.Interp.alloc_buffer interp ~name:"jfs_bitmap" bitmap_bytes in
  {
    kernel;
    inner;
    interp;
    work_buf;
    work_buf_size;
    name_buf;
    bitmap_buf;
    bitmap_bytes;
    data_journal;
    journal_seq = 0;
    checksum_acc = 0;
    hot_calls = 0;
  }

let interp t = t.interp

(* Run one of the module's mini-C hot paths. *)
let hot t name args =
  t.hot_calls <- t.hot_calls + 1;
  Minic.Interp.run t.interp ~args name

let space t = Minic.Interp.space t.interp

let stage_bytes t ~addr data =
  Ksim.Address_space.write_bytes ~pc:"journalfs.ml:stage" (space t) ~addr data

let stage_string t ~addr s =
  let s = if String.length s > 255 then String.sub s 0 255 else s in
  stage_bytes t ~addr (Bytes.of_string (s ^ "\000"))

(* Journal a metadata record: stage it into the work buffer, checksum it
   in mini-C, then push the journal block to disk. *)
let journal_record t ~kind ~payload =
  t.journal_seq <- t.journal_seq + 1;
  let record =
    Printf.sprintf "J%06d:%s:%s" t.journal_seq kind payload
  in
  (* the journal header carries a 16-byte checksummed header; the body is
     DMA'd without CPU involvement *)
  let len = min (min (String.length record) 16) t.work_buf_size in
  stage_bytes t ~addr:t.work_buf (Bytes.of_string (String.sub record 0 len));
  let sum = hot t "jfs_checksum" [ t.work_buf; len ] in
  t.checksum_acc <- (t.checksum_acc + sum) land 0xffffff;
  Block_dev.write_block (Memfs.dev t.inner) (1000000 + (t.journal_seq mod 128))

(* Checksum the head of file data flowing through write: journalfs, like
   most journaling filesystems, journals metadata plus a short data
   header rather than full data blocks. *)
let journal_data t data =
  let len = min (Bytes.length data) 128 in
  if len > 0 then begin
    stage_bytes t ~addr:t.work_buf (Bytes.sub data 0 len);
    let sum = hot t "jfs_checksum" [ t.work_buf; len ] in
    t.checksum_acc <- (t.checksum_acc + sum) land 0xffffff
  end

(* Directory lookup via the mini-C entry scanner: stage the names of the
   directory into the work buffer as fixed-size records. *)
let scan_lookup t ~dir name =
  match Memfs.readdir t.inner ~dir with
  | Error _ -> ()
  | Ok entries ->
      let entry_size = 32 in
      let max_entries = t.work_buf_size / entry_size in
      let entries =
        if List.length entries > max_entries then
          List.filteri (fun i _ -> i < max_entries) entries
        else entries
      in
      List.iteri
        (fun i d ->
          let n = d.Vtypes.d_name in
          let n =
            if String.length n >= entry_size then String.sub n 0 (entry_size - 1)
            else n
          in
          stage_string t ~addr:(t.work_buf + (i * entry_size)) n)
        entries;
      stage_string t ~addr:t.name_buf name;
      ignore
        (hot t "jfs_scan_dir"
           [ t.work_buf; List.length entries; entry_size; t.name_buf ])

let alloc_block t =
  let bit = hot t "jfs_bitmap_find" [ t.bitmap_buf; t.bitmap_bytes ] in
  if bit < 0 then begin
    (* block group full: move to a fresh group (zeroed bitmap) *)
    stage_bytes t ~addr:t.bitmap_buf (Bytes.make t.bitmap_bytes '\000');
    ignore (hot t "jfs_bitmap_find" [ t.bitmap_buf; t.bitmap_bytes ])
  end

let ops t =
  let inner = t.inner in
  {
    Vtypes.fs_name = "journalfs";
    root = Memfs.root_ino;
    lookup =
      (fun ~dir name ->
        scan_lookup t ~dir name;
        Memfs.lookup inner ~dir name);
    create =
      (fun ~dir ~name kind ->
        scan_lookup t ~dir name;
        alloc_block t;
        journal_record t ~kind:"create" ~payload:name;
        Memfs.create_node inner ~dir ~name kind);
    unlink =
      (fun ~dir ~name ->
        scan_lookup t ~dir name;
        journal_record t ~kind:"unlink" ~payload:name;
        Memfs.unlink inner ~dir ~name);
    readdir = (fun ~dir -> Memfs.readdir inner ~dir);
    getattr = (fun ~ino -> Memfs.getattr inner ~ino);
    read = (fun ~ino ~off ~len -> Memfs.read inner ~ino ~off ~len);
    write =
      (fun ~ino ~off ~data ->
        if t.data_journal then journal_data t data;
        (if Bytes.length data > 0 then alloc_block t);
        journal_record t ~kind:"write"
          ~payload:(Printf.sprintf "%d+%d" off (Bytes.length data));
        Memfs.write inner ~ino ~off ~data);
    truncate =
      (fun ~ino ~size ->
        journal_record t ~kind:"truncate" ~payload:(string_of_int size);
        Memfs.truncate inner ~ino ~size);
    rename =
      (fun ~src_dir ~src ~dst_dir ~dst ->
        scan_lookup t ~dir:src_dir src;
        journal_record t ~kind:"rename" ~payload:(src ^ "->" ^ dst);
        Memfs.rename inner ~src_dir ~src ~dst_dir ~dst);
    fsync = (fun ~ino -> Memfs.fsync inner ~ino);
    destroy_private = (fun () -> ());
  }

type stats = {
  journal_records : int;
  hot_calls : int;
  interp_steps : int;
  checksum_acc : int;
}

let stats t =
  {
    journal_records = t.journal_seq;
    hot_calls = t.hot_calls;
    interp_steps = Minic.Interp.steps t.interp;
    checksum_acc = t.checksum_acc;
  }
