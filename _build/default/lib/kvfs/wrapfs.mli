(** Wrapfs: a stackable filesystem that redirects every operation to a
    lower filesystem, as in FiST.

    Like the paper's Wrapfs, each object it touches gets dynamically
    allocated private data, names pass through temporary buffers, and
    data pages stage through a (pooled) page buffer — all via a pluggable
    allocator.  With {!kmalloc_allocator} this is "vanilla Wrapfs"; with
    Kefence's guarded allocator it is the instrumented version of
    experiment E5.  Buffers live in real simulated memory, so an injected
    off-by-one actually lands on a guardian page. *)

(** Where wrapfs gets its buffers. *)
type allocator = {
  alloc_name : string;
  space : Ksim.Address_space.t;  (** where the buffers are addressable *)
  alloc : int -> int;            (** size in bytes -> virtual address *)
  free : int -> unit;
}

(** The slab-backed default. *)
val kmalloc_allocator : Ksim.Kernel.t -> allocator

type t

(** [create ?private_size ~allocator lower]; [private_size] defaults to
    the paper's measured 80 bytes per object. *)
val create : ?private_size:int -> allocator:allocator -> Vtypes.ops -> t

(** Fault injection for tests and demos: overrun every temporary name
    buffer by [n] bytes. *)
val inject_overflow : t -> int -> unit

(** The stacked operations vector (pass to {!Vfs.create} or {!Vfs.mount}). *)
val ops : t -> Vtypes.ops

type stats = { live_private : int; name_copies : int; page_copies : int }

val stats : t -> stats
