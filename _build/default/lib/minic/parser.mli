(** Recursive-descent parser for mini-C.

    Documented deviations from C:
    - [x++]/[x--]/[x+=e]/[x-=e] desugar to assignments that evaluate to
      the new value (pre-increment semantics); corpus code uses them in
      statement position where the difference is invisible;
    - declarations are [ty name], [ty name[N]] or [ty *name];
    - no prototypes, structs, typedefs or varargs. *)

exception Parse_error of string * int  (** message, line *)

(** Parse a full translation unit.  @raise Parse_error. *)
val parse_program : ?file:string -> string -> Ast.program
