(* Recursive-descent parser for mini-C.

   Deviations from C, documented for users of the library:
   - [x++]/[x--]/[x+=e]/[x-=e] desugar to assignments that evaluate to the
     *new* value (pre-increment semantics); all corpus code uses them in
     statement position where the difference is invisible.
   - Declarations use the form [ty name] / [ty name[N]] / [ty *name]. *)

exception Parse_error of string * int

type t = {
  toks : (Token.t * int) array;
  file : string;
  mutable pos : int;
}

let create ?(file = "<string>") src =
  { toks = Array.of_list (Lexer.tokens ~file src); file; pos = 0 }

let peek t = fst t.toks.(t.pos)
let peek_line t = snd t.toks.(t.pos)
let peek2 t = if t.pos + 1 < Array.length t.toks then fst t.toks.(t.pos + 1) else Token.EOF

let loc t = { Ast.file = t.file; line = peek_line t }

let advance t = if t.pos < Array.length t.toks - 1 then t.pos <- t.pos + 1

let error t msg =
  raise (Parse_error (Printf.sprintf "%s (got %s)" msg (Token.to_string (peek t)), peek_line t))

let expect t tok =
  if peek t = tok then advance t
  else error t (Printf.sprintf "expected %s" (Token.to_string tok))

let expect_ident t =
  match peek t with
  | Token.IDENT s ->
      advance t;
      s
  | _ -> error t "expected identifier"

let is_type_start = function
  | Token.KW_INT | Token.KW_CHAR | Token.KW_VOID -> true
  | _ -> false

(* base type followed by any number of '*' *)
let parse_type t =
  let base =
    match peek t with
    | Token.KW_INT -> Ast.Tint
    | Token.KW_CHAR -> Ast.Tchar
    | Token.KW_VOID -> Ast.Tvoid
    | _ -> error t "expected type"
  in
  advance t;
  let rec stars ty =
    if peek t = Token.STAR then begin
      advance t;
      stars (Ast.Tptr ty)
    end
    else ty
  in
  stars base

(* --- expressions ------------------------------------------------------ *)

let rec parse_expr t = parse_assign t

and parse_assign t =
  let lhs = parse_cond t in
  match peek t with
  | Token.ASSIGN ->
      advance t;
      let rhs = parse_assign t in
      Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.Assign (lhs, rhs))
  | Token.PLUSEQ | Token.MINUSEQ ->
      let op = if peek t = Token.PLUSEQ then Ast.Add else Ast.Sub in
      advance t;
      let rhs = parse_assign t in
      let sum = Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.Binop (op, lhs, rhs)) in
      Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.Assign (lhs, sum))
  | _ -> lhs

and parse_cond t =
  let c = parse_logor t in
  if peek t = Token.QUESTION then begin
    advance t;
    let a = parse_expr t in
    expect t Token.COLON;
    let b = parse_cond t in
    Ast.mk_expr ~loc:c.Ast.eloc (Ast.Cond (c, a, b))
  end
  else c

and binlevel t next table =
  let lhs = next t in
  let rec go lhs =
    match List.assoc_opt (peek t) table with
    | Some op ->
        advance t;
        let rhs = next t in
        go (Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  go lhs

and parse_logor t = binlevel t parse_logand [ (Token.PIPEPIPE, Ast.Logor) ]
and parse_logand t = binlevel t parse_bitor [ (Token.AMPAMP, Ast.Logand) ]
and parse_bitor t = binlevel t parse_bitxor [ (Token.PIPE, Ast.Bitor) ]
and parse_bitxor t = binlevel t parse_bitand [ (Token.CARET, Ast.Bitxor) ]
and parse_bitand t = binlevel t parse_equality [ (Token.AMP, Ast.Bitand) ]

and parse_equality t =
  binlevel t parse_relational [ (Token.EQ, Ast.Eq); (Token.NE, Ast.Ne) ]

and parse_relational t =
  binlevel t parse_shift
    [ (Token.LT, Ast.Lt); (Token.LE, Ast.Le); (Token.GT, Ast.Gt); (Token.GE, Ast.Ge) ]

and parse_shift t =
  binlevel t parse_additive [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ]

and parse_additive t =
  binlevel t parse_multiplicative [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ]

and parse_multiplicative t =
  binlevel t parse_unary
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Mod) ]

and parse_unary t =
  let l = loc t in
  match peek t with
  | Token.MINUS ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Unop (Ast.Neg, parse_unary t))
  | Token.BANG ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Unop (Ast.Lognot, parse_unary t))
  | Token.TILDE ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Unop (Ast.Bitnot, parse_unary t))
  | Token.STAR ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Deref (parse_unary t))
  | Token.AMP ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Addr_of (parse_unary t))
  | Token.PLUSPLUS | Token.MINUSMINUS ->
      let op = if peek t = Token.PLUSPLUS then Ast.Add else Ast.Sub in
      advance t;
      let e = parse_unary t in
      let one = Ast.mk_expr ~loc:l (Ast.Int_lit 1) in
      Ast.mk_expr ~loc:l (Ast.Assign (e, Ast.mk_expr ~loc:l (Ast.Binop (op, e, one))))
  | Token.KW_SIZEOF ->
      advance t;
      expect t Token.LPAREN;
      let ty = parse_type t in
      expect t Token.RPAREN;
      Ast.mk_expr ~loc:l (Ast.Sizeof_ty ty)
  | Token.LPAREN when is_type_start (peek2 t) ->
      advance t;
      let ty = parse_type t in
      expect t Token.RPAREN;
      Ast.mk_expr ~loc:l (Ast.Cast (ty, parse_unary t))
  | _ -> parse_postfix t

and parse_postfix t =
  let e = parse_primary t in
  let rec go e =
    match peek t with
    | Token.LBRACKET ->
        advance t;
        let idx = parse_expr t in
        expect t Token.RBRACKET;
        go (Ast.mk_expr ~loc:e.Ast.eloc (Ast.Index (e, idx)))
    | Token.PLUSPLUS | Token.MINUSMINUS ->
        let op = if peek t = Token.PLUSPLUS then Ast.Add else Ast.Sub in
        advance t;
        let one = Ast.mk_expr ~loc:e.Ast.eloc (Ast.Int_lit 1) in
        go
          (Ast.mk_expr ~loc:e.Ast.eloc
             (Ast.Assign (e, Ast.mk_expr ~loc:e.Ast.eloc (Ast.Binop (op, e, one)))))
    | _ -> e
  in
  go e

and parse_primary t =
  let l = loc t in
  match peek t with
  | Token.INT n ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Int_lit n)
  | Token.CHAR c ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Char_lit c)
  | Token.STRING s ->
      advance t;
      Ast.mk_expr ~loc:l (Ast.Str_lit s)
  | Token.IDENT name -> (
      advance t;
      match peek t with
      | Token.LPAREN ->
          advance t;
          let args =
            if peek t = Token.RPAREN then []
            else
              let rec go acc =
                let a = parse_expr t in
                if peek t = Token.COMMA then begin
                  advance t;
                  go (a :: acc)
                end
                else List.rev (a :: acc)
              in
              go []
          in
          expect t Token.RPAREN;
          Ast.mk_expr ~loc:l (Ast.Call (name, args))
      | _ -> Ast.mk_expr ~loc:l (Ast.Var name))
  | Token.LPAREN ->
      advance t;
      let e = parse_expr t in
      expect t Token.RPAREN;
      e
  | _ -> error t "expected expression"

(* --- statements ------------------------------------------------------- *)

let rec parse_stmt t : Ast.stmt =
  let l = loc t in
  match peek t with
  | tok when is_type_start tok ->
      let ty = parse_type t in
      let name = expect_ident t in
      let ty =
        if peek t = Token.LBRACKET then begin
          advance t;
          let n =
            match peek t with
            | Token.INT n ->
                advance t;
                n
            | _ -> error t "expected array size"
          in
          expect t Token.RBRACKET;
          Ast.Tarray (ty, n)
        end
        else ty
      in
      let init =
        if peek t = Token.ASSIGN then begin
          advance t;
          Some (parse_expr t)
        end
        else None
      in
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l (Ast.Sdecl (ty, name, init))
  | Token.KW_IF ->
      advance t;
      expect t Token.LPAREN;
      let c = parse_expr t in
      expect t Token.RPAREN;
      let then_ = parse_block_or_stmt t in
      let else_ =
        if peek t = Token.KW_ELSE then begin
          advance t;
          parse_block_or_stmt t
        end
        else []
      in
      Ast.mk_stmt ~loc:l (Ast.Sif (c, then_, else_))
  | Token.KW_WHILE ->
      advance t;
      expect t Token.LPAREN;
      let c = parse_expr t in
      expect t Token.RPAREN;
      let body = parse_block_or_stmt t in
      Ast.mk_stmt ~loc:l (Ast.Swhile (c, body))
  | Token.KW_FOR ->
      (* desugar: for (init; cond; step) body => { init; while (cond) { body; step; } } *)
      advance t;
      expect t Token.LPAREN;
      let init =
        if peek t = Token.SEMI then begin
          advance t;
          []
        end
        else if is_type_start (peek t) then [ parse_stmt t ]
        else begin
          let e = parse_expr t in
          expect t Token.SEMI;
          [ Ast.mk_stmt ~loc:l (Ast.Sexpr e) ]
        end
      in
      let cond =
        if peek t = Token.SEMI then Ast.mk_expr ~loc:l (Ast.Int_lit 1)
        else parse_expr t
      in
      expect t Token.SEMI;
      let step =
        if peek t = Token.RPAREN then []
        else [ Ast.mk_stmt ~loc:l (Ast.Sexpr (parse_expr t)) ]
      in
      expect t Token.RPAREN;
      let body = parse_block_or_stmt t in
      let for_stmt = Ast.mk_stmt ~loc:l (Ast.Sfor (cond, body, step)) in
      if init = [] then for_stmt
      else Ast.mk_stmt ~loc:l (Ast.Sblock (init @ [ for_stmt ]))
  | Token.KW_RETURN ->
      advance t;
      let e = if peek t = Token.SEMI then None else Some (parse_expr t) in
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l (Ast.Sreturn e)
  | Token.KW_BREAK ->
      advance t;
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance t;
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l Ast.Scontinue
  | Token.KW_COSY_START ->
      advance t;
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l Ast.Scosy_start
  | Token.KW_COSY_END ->
      advance t;
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l Ast.Scosy_end
  | Token.LBRACE -> Ast.mk_stmt ~loc:l (Ast.Sblock (parse_block t))
  | _ ->
      let e = parse_expr t in
      expect t Token.SEMI;
      Ast.mk_stmt ~loc:l (Ast.Sexpr e)

and parse_block t =
  expect t Token.LBRACE;
  let rec go acc =
    if peek t = Token.RBRACE then begin
      advance t;
      List.rev acc
    end
    else go (parse_stmt t :: acc)
  in
  go []

and parse_block_or_stmt t =
  if peek t = Token.LBRACE then parse_block t else [ parse_stmt t ]

(* --- top level -------------------------------------------------------- *)

let parse_params t =
  expect t Token.LPAREN;
  if peek t = Token.RPAREN then begin
    advance t;
    []
  end
  else if peek t = Token.KW_VOID && peek2 t = Token.RPAREN then begin
    advance t;
    advance t;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_type t in
      let name = expect_ident t in
      if peek t = Token.COMMA then begin
        advance t;
        go ((ty, name) :: acc)
      end
      else begin
        expect t Token.RPAREN;
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_program ?(file = "<string>") src : Ast.program =
  let t = create ~file src in
  let rec go globals funcs =
    if peek t = Token.EOF then
      { Ast.globals = List.rev globals; funcs = List.rev funcs }
    else begin
      let l = loc t in
      let ty = parse_type t in
      let name = expect_ident t in
      if peek t = Token.LPAREN then begin
        let params = parse_params t in
        let body = parse_block t in
        go globals ({ Ast.fname = name; ret = ty; params; body; floc = l } :: funcs)
      end
      else begin
        let ty =
          if peek t = Token.LBRACKET then begin
            advance t;
            let n =
              match peek t with
              | Token.INT n ->
                  advance t;
                  n
              | _ -> error t "expected array size"
            in
            expect t Token.RBRACKET;
            Ast.Tarray (ty, n)
          end
          else ty
        in
        let init =
          if peek t = Token.ASSIGN then begin
            advance t;
            Some (parse_expr t)
          end
          else None
        in
        expect t Token.SEMI;
        go ((ty, name, init) :: globals) funcs
      end
    end
  in
  go [] []
