(* Mini-C interpreter over simulated memory.

   All addressable data (globals, arrays, address-taken locals, the heap,
   string literals) lives in a region of a [Ksim.Address_space.t], so a
   stray pointer produces a real simulated-hardware fault, KGCC's object
   map can track genuine addresses, and Kefence guardian pages work
   unmodified.  Scalar locals whose address is never taken live in
   registers (OCaml refs) — the same distinction KGCC's stack-object
   heuristic exploits.

   Every evaluated node charges [cpu_op] virtual cycles, so instrumented
   code (which executes more nodes) is slower in simulated time exactly
   as it would be on hardware. *)

exception Runtime_error of string * Ast.loc
exception Step_limit

let rt_err loc fmt = Fmt.kstr (fun m -> raise (Runtime_error (m, loc))) fmt

type obj_kind = Stack | Heap | Global | Literal

let pp_obj_kind ppf k =
  Fmt.string ppf
    (match k with
    | Stack -> "stack"
    | Heap -> "heap"
    | Global -> "global"
    | Literal -> "literal")

type obj_event =
  | Obj_alloc of { base : int; size : int; kind : obj_kind; name : string }
  | Obj_free of { base : int; kind : obj_kind }

type cell = Reg of int ref | Mem of int  (* address *)

type extern_fn = t -> int list -> int

and t = {
  space : Ksim.Address_space.t;
  clock : Ksim.Sim_clock.t;
  cost : Ksim.Cost_model.t;
  base : int;
  limit : int;
  mutable brk : int;                    (* heap grows up from base *)
  mutable sp : int;                     (* stack grows down from limit *)
  literals : (string, int) Hashtbl.t;
  externs : (string, extern_fn) Hashtbl.t;
  mutable program : Ast.program;
  mutable info : Typecheck.info;
  globals : (string, cell * Ast.ty) Hashtbl.t;
  heap_live : (int, int) Hashtbl.t;     (* addr -> size *)
  mutable on_obj : obj_event -> unit;
  mutable on_backedge : unit -> unit;
  output : Buffer.t;
  mutable steps : int;
  mutable max_steps : int;
  mutable depth : int;
}

type frame = {
  fname : string;
  mutable scopes : (string, cell * Ast.ty) Hashtbl.t list;
}

exception Return_exc of int
exception Break_exc
exception Continue_exc

let empty_program = { Ast.globals = []; funcs = [] }

let create ~space ~clock ~cost ~base_vpn ~pages =
  let page_size = Ksim.Address_space.page_size space in
  Ksim.Address_space.map_fresh space ~vpn:base_vpn ~npages:pages ~writable:true;
  let base = base_vpn * page_size in
  let limit = base + (pages * page_size) in
  {
    space;
    clock;
    cost;
    base;
    limit;
    brk = base;
    sp = limit;
    literals = Hashtbl.create 32;
    externs = Hashtbl.create 32;
    program = empty_program;
    info = Typecheck.check empty_program;
    globals = Hashtbl.create 32;
    heap_live = Hashtbl.create 64;
    on_obj = (fun _ -> ());
    on_backedge = (fun () -> ());
    output = Buffer.create 256;
    steps = 0;
    max_steps = max_int;
    depth = 0;
  }

let space t = t.space
let output t = Buffer.contents t.output
let clear_output t = Buffer.clear t.output
let steps t = t.steps
let set_max_steps t n = t.max_steps <- n
let set_on_obj t f = t.on_obj <- f
let set_on_backedge t f = t.on_backedge <- f

let register_extern t name f = Hashtbl.replace t.externs name f
let has_extern t name = Hashtbl.mem t.externs name

let charge t =
  t.steps <- t.steps + 1;
  if t.steps > t.max_steps then raise Step_limit;
  Ksim.Sim_clock.advance t.clock t.cost.Ksim.Cost_model.cpu_op

let align8 n = (n + 7) land lnot 7

exception Out_of_interp_memory

let alloc_heap t size =
  let size = align8 (max 1 size) in
  if t.brk + size > t.sp then raise Out_of_interp_memory;
  let addr = t.brk in
  t.brk <- t.brk + size;
  addr

let alloc_stack t size =
  let size = align8 (max 1 size) in
  if t.sp - size < t.brk then raise Out_of_interp_memory;
  t.sp <- t.sp - size;
  t.sp

(* Allocate a named long-lived buffer on the interpreter heap, visible to
   object-map observers (KGCC) like any malloc'd object.  Host-side
   embedders (e.g. the journalfs module) use this for their work buffers. *)
let alloc_buffer t ~name size =
  let addr = alloc_heap t size in
  Hashtbl.replace t.heap_live addr size;
  t.on_obj (Obj_alloc { base = addr; size; kind = Heap; name });
  addr

(* --- memory accessors (all through the simulated MMU) ----------------- *)

let loc_pc (loc : Ast.loc) = Printf.sprintf "%s:%d" loc.Ast.file loc.Ast.line

let load t ~loc ~addr ~ty =
  let pc = loc_pc loc in
  match ty with
  | Ast.Tchar -> Ksim.Address_space.read_u8 ~pc t.space ~addr
  | Ast.Tarray _ -> addr (* arrays decay to their base address *)
  | Ast.Tvoid | Ast.Tint | Ast.Tptr _ ->
      Ksim.Address_space.read_int ~pc t.space ~addr

let store t ~loc ~addr ~ty v =
  let pc = loc_pc loc in
  match ty with
  | Ast.Tchar -> Ksim.Address_space.write_u8 ~pc t.space ~addr v
  | Ast.Tvoid | Ast.Tint | Ast.Tptr _ | Ast.Tarray _ ->
      Ksim.Address_space.write_int ~pc t.space ~addr v

let read_c_string t ~loc ~addr =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = Ksim.Address_space.read_u8 ~pc:(loc_pc loc) t.space ~addr:a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

let write_c_string t ~loc ~addr s =
  Ksim.Address_space.write_string ~pc:(loc_pc loc) t.space ~addr (s ^ "\000")

let intern_literal t s =
  match Hashtbl.find_opt t.literals s with
  | Some addr -> addr
  | None ->
      let addr = alloc_heap t (String.length s + 1) in
      write_c_string t ~loc:Ast.no_loc ~addr s;
      Hashtbl.replace t.literals s addr;
      t.on_obj
        (Obj_alloc
           { base = addr; size = String.length s + 1; kind = Literal; name = "<literal>" });
      addr

(* --- program loading --------------------------------------------------- *)

let elem_ty loc = function
  | Ast.Tptr ty | Ast.Tarray (ty, _) -> ty
  | ty -> rt_err loc "expected pointer type, got %a" Ast.pp_ty ty

let ety (e : Ast.expr) =
  match e.Ast.ety with Some ty -> ty | None -> Ast.Tint

let load_program t (p : Ast.program) =
  let info = Typecheck.check p in
  t.program <- p;
  t.info <- info;
  Hashtbl.reset t.globals;
  List.iter
    (fun (ty, name, _init) ->
      let size = Ast.sizeof ty in
      let addr = alloc_heap t size in
      t.on_obj (Obj_alloc { base = addr; size; kind = Global; name });
      Hashtbl.replace t.globals name (Mem addr, ty))
    p.Ast.globals;
  p

let parse_and_load t ?(file = "<string>") src =
  load_program t (Parser.parse_program ~file src)

(* --- scopes ------------------------------------------------------------ *)

let lookup t frame name =
  let rec go = function
    | [] -> Hashtbl.find_opt t.globals name
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some c -> Some c
        | None -> go rest)
  in
  go frame.scopes

(* --- evaluation --------------------------------------------------------- *)

type lval = Lreg of int ref * Ast.ty | Lmem of int * Ast.ty

let truthy v = v <> 0
let of_bool b = if b then 1 else 0

let rec eval t frame (e : Ast.expr) : int =
  charge t;
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Int_lit n -> n
  | Ast.Char_lit c -> Char.code c
  | Ast.Str_lit s -> intern_literal t s
  | Ast.Sizeof_ty ty -> Ast.sizeof ty
  | Ast.Var name -> (
      match lookup t frame name with
      | Some (Reg r, _) -> !r
      | Some (Mem addr, ty) -> load t ~loc ~addr ~ty
      | None -> rt_err loc "unbound variable %s" name)
  | Ast.Unop (op, a) -> (
      let v = eval t frame a in
      match op with
      | Ast.Neg -> -v
      | Ast.Lognot -> of_bool (v = 0)
      | Ast.Bitnot -> lnot v)
  | Ast.Deref a ->
      let addr = eval t frame a in
      load t ~loc ~addr ~ty:(elem_ty loc (ety a))
  | Ast.Addr_of a -> (
      match eval_lval t frame a with
      | Lmem (addr, _) -> addr
      | Lreg _ -> rt_err loc "address of register variable")
  | Ast.Index (a, i) ->
      let base = eval t frame a in
      let idx = eval t frame i in
      let ty = elem_ty loc (ety a) in
      load t ~loc ~addr:(base + (idx * Ast.sizeof ty)) ~ty
  | Ast.Binop (op, a, b) -> eval_binop t frame loc op a b
  | Ast.Assign (lhs, rhs) -> (
      let v = eval t frame rhs in
      match eval_lval t frame lhs with
      | Lreg (r, ty) ->
          let v = if ty = Ast.Tchar then v land 0xff else v in
          r := v;
          v
      | Lmem (addr, ty) ->
          store t ~loc ~addr ~ty v;
          v)
  | Ast.Call (name, args) -> eval_call t frame loc name args
  | Ast.Cast (ty, a) ->
      let v = eval t frame a in
      if ty = Ast.Tchar then v land 0xff else v
  | Ast.Cond (c, a, b) ->
      if truthy (eval t frame c) then eval t frame a else eval t frame b

and eval_binop t frame loc op a b =
  match op with
  | Ast.Logand ->
      if truthy (eval t frame a) then of_bool (truthy (eval t frame b)) else 0
  | Ast.Logor ->
      if truthy (eval t frame a) then 1 else of_bool (truthy (eval t frame b))
  | _ -> (
      let va = eval t frame a in
      let vb = eval t frame b in
      let ta = ety a and tb = ety b in
      let scale_of ty = Ast.sizeof (elem_ty loc ty) in
      match op with
      | Ast.Add -> (
          match (ta, tb) with
          | (Ast.Tptr _ | Ast.Tarray _), _ -> va + (vb * scale_of ta)
          | _, (Ast.Tptr _ | Ast.Tarray _) -> (va * scale_of tb) + vb
          | _ -> va + vb)
      | Ast.Sub -> (
          match (ta, tb) with
          | (Ast.Tptr _ | Ast.Tarray _), (Ast.Tptr _ | Ast.Tarray _) ->
              (va - vb) / scale_of ta
          | (Ast.Tptr _ | Ast.Tarray _), _ -> va - (vb * scale_of ta)
          | _ -> va - vb)
      | Ast.Mul -> va * vb
      | Ast.Div ->
          if vb = 0 then rt_err loc "division by zero";
          va / vb
      | Ast.Mod ->
          if vb = 0 then rt_err loc "modulo by zero";
          va mod vb
      | Ast.Eq -> of_bool (va = vb)
      | Ast.Ne -> of_bool (va <> vb)
      | Ast.Lt -> of_bool (va < vb)
      | Ast.Le -> of_bool (va <= vb)
      | Ast.Gt -> of_bool (va > vb)
      | Ast.Ge -> of_bool (va >= vb)
      | Ast.Bitand -> va land vb
      | Ast.Bitor -> va lor vb
      | Ast.Bitxor -> va lxor vb
      | Ast.Shl -> va lsl vb
      | Ast.Shr -> va asr vb
      | Ast.Logand | Ast.Logor -> assert false)

and eval_lval t frame (e : Ast.expr) : lval =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Var name -> (
      match lookup t frame name with
      | Some (Reg r, ty) -> Lreg (r, ty)
      | Some (Mem addr, ty) -> Lmem (addr, ty)
      | None -> rt_err loc "unbound variable %s" name)
  | Ast.Deref a ->
      let addr = eval t frame a in
      Lmem (addr, elem_ty loc (ety a))
  | Ast.Index (a, i) ->
      let base = eval t frame a in
      let idx = eval t frame i in
      let ty = elem_ty loc (ety a) in
      Lmem (base + (idx * Ast.sizeof ty), ty)
  | Ast.Cast (ty, inner) -> (
      match eval_lval t frame inner with
      | Lreg (r, _) -> Lreg (r, ty)
      | Lmem (addr, _) -> Lmem (addr, ty))
  | _ -> rt_err loc "not an lvalue"

(* --- builtins ----------------------------------------------------------- *)

and builtin t _frame loc name args =
  let charge_bytes n =
    Ksim.Sim_clock.advance t.clock (n * t.cost.Ksim.Cost_model.cpu_op / 4)
  in
  match (name, args) with
  | "malloc", [ size ] ->
      let addr = alloc_heap t size in
      Hashtbl.replace t.heap_live addr size;
      t.on_obj (Obj_alloc { base = addr; size; kind = Heap; name = "<malloc>" });
      Some addr
  | "free", [ addr ] ->
      if not (Hashtbl.mem t.heap_live addr) then
        rt_err loc "free of non-heap address 0x%x" addr;
      Hashtbl.remove t.heap_live addr;
      t.on_obj (Obj_free { base = addr; kind = Heap });
      Some 0
  | "strlen", [ addr ] ->
      let s = read_c_string t ~loc ~addr in
      charge_bytes (String.length s);
      Some (String.length s)
  | "strcpy", [ dst; src ] ->
      let s = read_c_string t ~loc ~addr:src in
      charge_bytes (String.length s);
      write_c_string t ~loc ~addr:dst s;
      Some dst
  | "strcmp", [ a; b ] ->
      let sa = read_c_string t ~loc ~addr:a in
      let sb = read_c_string t ~loc ~addr:b in
      charge_bytes (min (String.length sa) (String.length sb));
      Some (compare sa sb)
  | "memcpy", [ dst; src; n ] ->
      if n > 0 then begin
        let data =
          Ksim.Address_space.read_bytes ~pc:(loc_pc loc) t.space ~addr:src
            ~len:n
        in
        Ksim.Address_space.write_bytes ~pc:(loc_pc loc) t.space ~addr:dst data;
        charge_bytes n
      end;
      Some dst
  | "memset", [ dst; c; n ] ->
      if n > 0 then begin
        Ksim.Address_space.write_bytes ~pc:(loc_pc loc) t.space ~addr:dst
          (Bytes.make n (Char.chr (c land 0xff)));
        charge_bytes n
      end;
      Some dst
  | "putchar", [ c ] ->
      Buffer.add_char t.output (Char.chr (c land 0xff));
      Some c
  | "print_int", [ v ] ->
      Buffer.add_string t.output (string_of_int v);
      Some 0
  | "print_str", [ addr ] ->
      Buffer.add_string t.output (read_c_string t ~loc ~addr);
      Some 0
  | ( ( "malloc" | "free" | "strlen" | "strcpy" | "strcmp" | "memcpy"
      | "memset" | "putchar" | "print_int" | "print_str" ),
      _ ) ->
      rt_err loc "bad arity for builtin %s" name
  | _ -> None

and eval_call t frame loc name args =
  let vals = List.map (eval t frame) args in
  match Ast.find_func t.program name with
  | Some f -> call_func t f vals
  | None -> (
      (* builtins may be overridden by registered externs *)
      match Hashtbl.find_opt t.externs name with
      | Some f -> f t vals
      | None -> (
          match builtin t frame loc name vals with
          | Some v -> v
          | None -> rt_err loc "unknown function %s" name))

(* --- statements --------------------------------------------------------- *)

and exec_block t frame stmts =
  let scope = Hashtbl.create 8 in
  frame.scopes <- scope :: frame.scopes;
  let stack_objs = ref [] in
  let cleanup () =
    frame.scopes <- List.tl frame.scopes;
    List.iter
      (fun (addr, size) ->
        t.on_obj (Obj_free { base = addr; kind = Stack });
        (* stack frees are LIFO: restore sp *)
        if addr = t.sp then t.sp <- t.sp + align8 size)
      !stack_objs
  in
  (try List.iter (exec_stmt t frame scope stack_objs) stmts
   with e ->
     cleanup ();
     raise e);
  cleanup ()

and exec_stmt t frame scope stack_objs (s : Ast.stmt) =
  charge t;
  match s.Ast.s with
  | Ast.Sexpr e -> ignore (eval t frame e)
  | Ast.Sdecl (ty, name, init) ->
      let addressable =
        Typecheck.is_addressable t.info ~fname:frame.fname ~var:name
        || (match ty with Ast.Tarray _ -> true | _ -> false)
      in
      let cell =
        if addressable then begin
          let size = Ast.sizeof ty in
          let addr = alloc_stack t size in
          stack_objs := (addr, size) :: !stack_objs;
          t.on_obj (Obj_alloc { base = addr; size; kind = Stack; name });
          Mem addr
        end
        else Reg (ref 0)
      in
      Hashtbl.replace scope name (cell, ty);
      (match init with
      | Some e -> (
          let v = eval t frame e in
          match cell with
          | Reg r -> r := v
          | Mem addr -> store t ~loc:s.Ast.sloc ~addr ~ty v)
      | None -> ())
  | Ast.Sif (c, a, b) ->
      if truthy (eval t frame c) then exec_block t frame a
      else exec_block t frame b
  | Ast.Swhile (c, body) -> (
      try
        while truthy (eval t frame c) do
          (try exec_block t frame body with Continue_exc -> ());
          t.on_backedge ()
        done
      with Break_exc -> ())
  | Ast.Sfor (c, body, step) -> (
      try
        while truthy (eval t frame c) do
          (try exec_block t frame body with Continue_exc -> ());
          exec_block t frame step;
          t.on_backedge ()
        done
      with Break_exc -> ())
  | Ast.Sreturn (Some e) -> raise (Return_exc (eval t frame e))
  | Ast.Sreturn None -> raise (Return_exc 0)
  | Ast.Sbreak -> raise Break_exc
  | Ast.Scontinue -> raise Continue_exc
  | Ast.Sblock body -> exec_block t frame body
  | Ast.Scosy_start | Ast.Scosy_end -> ()

and call_func t (f : Ast.func) (vals : int list) : int =
  if t.depth > 2_000 then
    rt_err f.Ast.floc "call depth limit exceeded in %s" f.Ast.fname;
  if List.length vals <> List.length f.Ast.params then
    rt_err f.Ast.floc "%s: arity mismatch" f.Ast.fname;
  t.depth <- t.depth + 1;
  let scope = Hashtbl.create 8 in
  let frame = { fname = f.Ast.fname; scopes = [ scope ] } in
  let param_objs = ref [] in
  List.iter2
    (fun (ty, name) v ->
      let addressable =
        Typecheck.is_addressable t.info ~fname:f.Ast.fname ~var:name
      in
      let cell =
        if addressable then begin
          let size = Ast.sizeof ty in
          let addr = alloc_stack t size in
          param_objs := (addr, size) :: !param_objs;
          t.on_obj (Obj_alloc { base = addr; size; kind = Stack; name });
          store t ~loc:f.Ast.floc ~addr ~ty v;
          Mem addr
        end
        else Reg (ref v)
      in
      Hashtbl.replace scope name (cell, ty))
    f.Ast.params vals;
  let cleanup () =
    t.depth <- t.depth - 1;
    List.iter
      (fun (addr, size) ->
        t.on_obj (Obj_free { base = addr; kind = Stack });
        if addr = t.sp then t.sp <- t.sp + align8 size)
      !param_objs
  in
  let result =
    try
      exec_block t frame f.Ast.body;
      0
    with
    | Return_exc v -> v
    | e ->
        cleanup ();
        raise e
  in
  cleanup ();
  result

(* Run a named function of the loaded program. *)
let run t ?(args = []) name =
  match Ast.find_func t.program name with
  | Some f -> call_func t f args
  | None -> rt_err Ast.no_loc "no such function %s" name

let heap_live_count t = Hashtbl.length t.heap_live
