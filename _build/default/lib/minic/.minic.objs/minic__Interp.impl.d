lib/minic/interp.ml: Ast Buffer Bytes Char Fmt Hashtbl Ksim List Parser Printf String Typecheck
