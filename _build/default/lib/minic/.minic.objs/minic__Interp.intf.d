lib/minic/interp.mli: Ast Format Ksim
