lib/minic/ast.ml: Fmt List
