lib/minic/typecheck.ml: Ast Fmt Hashtbl List
