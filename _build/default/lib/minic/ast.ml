(* Abstract syntax for mini-C, the C subset that Cosy-GCC marks up and
   KGCC instruments.  Every node carries a source location so faults and
   bounds violations report file:line like the paper's tools do. *)

type loc = { file : string; line : int }

let no_loc = { file = "<builtin>"; line = 0 }
let pp_loc ppf l = Fmt.pf ppf "%s:%d" l.file l.line

type ty =
  | Tvoid
  | Tint
  | Tchar
  | Tptr of ty
  | Tarray of ty * int

let rec pp_ty ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint -> Fmt.string ppf "int"
  | Tchar -> Fmt.string ppf "char"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n

let rec sizeof = function
  | Tvoid -> 1
  | Tint -> 8
  | Tchar -> 1
  | Tptr _ -> 8
  | Tarray (t, n) -> n * sizeof t

let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tint, Tint | Tchar, Tchar -> true
  | Tptr a, Tptr b -> ty_equal a b
  | Tarray (a, n), Tarray (b, m) -> n = m && ty_equal a b
  | (Tvoid | Tint | Tchar | Tptr _ | Tarray _), _ -> false

type unop = Neg | Lognot | Bitnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Logand | Logor
  | Bitand | Bitor | Bitxor | Shl | Shr

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    | Logand -> "&&" | Logor -> "||"
    | Bitand -> "&" | Bitor -> "|" | Bitxor -> "^" | Shl -> "<<" | Shr -> ">>")

type expr = {
  e : expr_node;
  eloc : loc;
  mutable ety : ty option;      (* filled by the typechecker *)
}

and expr_node =
  | Int_lit of int
  | Char_lit of char
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr        (* lhs must be an lvalue *)
  | Deref of expr
  | Addr_of of expr
  | Index of expr * expr         (* a[i] *)
  | Call of string * expr list
  | Cast of ty * expr
  | Sizeof_ty of ty
  | Cond of expr * expr * expr   (* ?: *)

type stmt = { s : stmt_node; sloc : loc }

and stmt_node =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr * stmt list * stmt list
      (* cond, body, step: step runs after the body, also on continue *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Scosy_start                  (* COSY_START; marker *)
  | Scosy_end                    (* COSY_END; marker *)

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
  floc : loc;
}

type program = {
  globals : (ty * string * expr option) list;
  funcs : func list;
}

let mk_expr ?(loc = no_loc) e = { e; eloc = loc; ety = None }
let mk_stmt ?(loc = no_loc) s = { s; sloc = loc }

let find_func program name =
  List.find_opt (fun f -> f.fname = name) program.funcs

(* Structural fold counting expression nodes; used to size programs and
   by the E8 check-count report. *)
let rec expr_size e =
  1
  +
  match e.e with
  | Int_lit _ | Char_lit _ | Str_lit _ | Var _ | Sizeof_ty _ -> 0
  | Unop (_, a) | Deref a | Addr_of a | Cast (_, a) -> expr_size a
  | Binop (_, a, b) | Assign (a, b) | Index (a, b) ->
      expr_size a + expr_size b
  | Cond (a, b, c) -> expr_size a + expr_size b + expr_size c
  | Call (_, args) -> List.fold_left (fun n a -> n + expr_size a) 0 args

let rec stmt_size s =
  1
  +
  match s.s with
  | Sexpr e -> expr_size e
  | Sdecl (_, _, Some e) -> expr_size e
  | Sdecl (_, _, None) | Sbreak | Scontinue | Scosy_start | Scosy_end -> 0
  | Sif (c, a, b) -> expr_size c + stmts_size a + stmts_size b
  | Swhile (c, b) -> expr_size c + stmts_size b
  | Sfor (c, b, st) -> expr_size c + stmts_size b + stmts_size st
  | Sreturn (Some e) -> expr_size e
  | Sreturn None -> 0
  | Sblock b -> stmts_size b

and stmts_size l = List.fold_left (fun n s -> n + stmt_size s) 0 l

let program_size p =
  List.fold_left (fun n f -> n + stmts_size f.body) 0 p.funcs
