(* Pretty-printer for mini-C ASTs; used by the KGCC tooling to show
   instrumented code and by tests to check transformations. *)

let rec pp_expr ppf (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit n -> Fmt.int ppf n
  | Ast.Char_lit c -> Fmt.pf ppf "%C" c
  | Ast.Str_lit s -> Fmt.pf ppf "%S" s
  | Ast.Var name -> Fmt.string ppf name
  | Ast.Unop (op, a) ->
      let s = match op with Ast.Neg -> "-" | Ast.Lognot -> "!" | Ast.Bitnot -> "~" in
      Fmt.pf ppf "%s(%a)" s pp_expr a
  | Ast.Binop (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_expr a Ast.pp_binop op pp_expr b
  | Ast.Assign (l, r) -> Fmt.pf ppf "%a = %a" pp_expr l pp_expr r
  | Ast.Deref a -> Fmt.pf ppf "*(%a)" pp_expr a
  | Ast.Addr_of a -> Fmt.pf ppf "&(%a)" pp_expr a
  | Ast.Index (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i
  | Ast.Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args
  | Ast.Cast (ty, a) -> Fmt.pf ppf "(%a)(%a)" Ast.pp_ty ty pp_expr a
  | Ast.Sizeof_ty ty -> Fmt.pf ppf "sizeof(%a)" Ast.pp_ty ty
  | Ast.Cond (c, a, b) ->
      Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt ?(indent = 0) ppf (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s.Ast.s with
  | Ast.Sexpr e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | Ast.Sdecl (ty, name, init) -> (
      match (ty, init) with
      | Ast.Tarray (elem, n), None ->
          Fmt.pf ppf "%s%a %s[%d];" pad Ast.pp_ty elem name n
      | _, None -> Fmt.pf ppf "%s%a %s;" pad Ast.pp_ty ty name
      | _, Some e -> Fmt.pf ppf "%s%a %s = %a;" pad Ast.pp_ty ty name pp_expr e)
  | Ast.Sif (c, a, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c
        (pp_stmts ~indent:(indent + 2)) a pad
  | Ast.Sif (c, a, b) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        (pp_stmts ~indent:(indent + 2)) a pad
        (pp_stmts ~indent:(indent + 2)) b pad
  | Ast.Swhile (c, body) ->
      Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_expr c
        (pp_stmts ~indent:(indent + 2)) body pad
  | Ast.Sfor (c, body, step) ->
      (* print the canonical source form: body then step inside a while
         is not equivalent under continue, so keep the for shape *)
      let pp_step ppf = function
        | [ { Ast.s = Ast.Sexpr e; _ } ] -> pp_expr ppf e
        | _ -> Fmt.string ppf ""
      in
      Fmt.pf ppf "%sfor (; %a; %a) {@\n%a@\n%s}" pad pp_expr c pp_step step
        (pp_stmts ~indent:(indent + 2)) body pad
  | Ast.Sreturn (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Ast.Sreturn None -> Fmt.pf ppf "%sreturn;" pad
  | Ast.Sbreak -> Fmt.pf ppf "%sbreak;" pad
  | Ast.Scontinue -> Fmt.pf ppf "%scontinue;" pad
  | Ast.Sblock body ->
      Fmt.pf ppf "%s{@\n%a@\n%s}" pad (pp_stmts ~indent:(indent + 2)) body pad
  | Ast.Scosy_start -> Fmt.pf ppf "%sCOSY_START;" pad
  | Ast.Scosy_end -> Fmt.pf ppf "%sCOSY_END;" pad

and pp_stmts ?(indent = 0) ppf stmts =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) stmts

let pp_func ppf (f : Ast.func) =
  let pp_param ppf (ty, name) = Fmt.pf ppf "%a %s" Ast.pp_ty ty name in
  Fmt.pf ppf "%a %s(%a) {@\n%a@\n}" Ast.pp_ty f.Ast.ret f.Ast.fname
    Fmt.(list ~sep:(any ", ") pp_param)
    f.Ast.params
    (pp_stmts ~indent:2)
    f.Ast.body

let pp_program ppf (p : Ast.program) =
  List.iter
    (fun (ty, name, init) ->
      match init with
      | None -> Fmt.pf ppf "%a %s;@\n" Ast.pp_ty ty name
      | Some e -> Fmt.pf ppf "%a %s = %a;@\n" Ast.pp_ty ty name pp_expr e)
    p.Ast.globals;
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n@\n") pp_func) p.Ast.funcs

let program_to_string p = Fmt.str "%a" pp_program p
