(* Hand-written lexer producing (token, line) pairs. *)

exception Lex_error of string * int   (* message, line *)

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
}

let create ?(file = "<string>") src = { src; file; pos = 0; line = 1 }

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let peek2_char t =
  if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None

let advance t =
  (match peek_char t with Some '\n' -> t.line <- t.line + 1 | _ -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws_and_comments t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws_and_comments t
  | Some '/' when peek2_char t = Some '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_ws_and_comments t
  | Some '/' when peek2_char t = Some '*' ->
      advance t;
      advance t;
      let rec close () =
        match (peek_char t, peek2_char t) with
        | Some '*', Some '/' ->
            advance t;
            advance t
        | Some _, _ ->
            advance t;
            close ()
        | None, _ -> raise (Lex_error ("unterminated comment", t.line))
      in
      close ();
      skip_ws_and_comments t
  | Some _ | None -> ()

let lex_number t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_digit c | None -> false) do
    advance t
  done;
  int_of_string (String.sub t.src start (t.pos - start))

let lex_ident t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_alnum c | None -> false) do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let escape t = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> raise (Lex_error (Printf.sprintf "bad escape \\%c" c, t.line))

let lex_string t =
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> raise (Lex_error ("unterminated string", t.line))
    | Some '"' -> advance t
    | Some '\\' ->
        advance t;
        (match peek_char t with
        | None -> raise (Lex_error ("unterminated string", t.line))
        | Some c ->
            Buffer.add_char buf (escape t c);
            advance t);
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance t;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_char t =
  advance t;
  let c =
    match peek_char t with
    | None -> raise (Lex_error ("unterminated char literal", t.line))
    | Some '\\' ->
        advance t;
        (match peek_char t with
        | None -> raise (Lex_error ("unterminated char literal", t.line))
        | Some e ->
            advance t;
            escape t e)
    | Some c ->
        advance t;
        c
  in
  (match peek_char t with
  | Some '\'' -> advance t
  | _ -> raise (Lex_error ("unterminated char literal", t.line)));
  c

let next t : Token.t * int =
  skip_ws_and_comments t;
  let line = t.line in
  let two tok =
    advance t;
    advance t;
    (tok, line)
  in
  let one tok =
    advance t;
    (tok, line)
  in
  match peek_char t with
  | None -> (Token.EOF, line)
  | Some c when is_digit c -> (Token.INT (lex_number t), line)
  | Some c when is_alpha c -> (
      let id = lex_ident t in
      match Token.keyword_of_ident id with
      | Some kw -> (kw, line)
      | None -> (Token.IDENT id, line))
  | Some '"' -> (Token.STRING (lex_string t), line)
  | Some '\'' -> (Token.CHAR (lex_char t), line)
  | Some '=' when peek2_char t = Some '=' -> two Token.EQ
  | Some '=' -> one Token.ASSIGN
  | Some '!' when peek2_char t = Some '=' -> two Token.NE
  | Some '!' -> one Token.BANG
  | Some '<' when peek2_char t = Some '=' -> two Token.LE
  | Some '<' when peek2_char t = Some '<' -> two Token.SHL
  | Some '<' -> one Token.LT
  | Some '>' when peek2_char t = Some '=' -> two Token.GE
  | Some '>' when peek2_char t = Some '>' -> two Token.SHR
  | Some '>' -> one Token.GT
  | Some '&' when peek2_char t = Some '&' -> two Token.AMPAMP
  | Some '&' -> one Token.AMP
  | Some '|' when peek2_char t = Some '|' -> two Token.PIPEPIPE
  | Some '|' -> one Token.PIPE
  | Some '+' when peek2_char t = Some '+' -> two Token.PLUSPLUS
  | Some '+' when peek2_char t = Some '=' -> two Token.PLUSEQ
  | Some '+' -> one Token.PLUS
  | Some '-' when peek2_char t = Some '-' -> two Token.MINUSMINUS
  | Some '-' when peek2_char t = Some '=' -> two Token.MINUSEQ
  | Some '-' -> one Token.MINUS
  | Some '*' -> one Token.STAR
  | Some '/' -> one Token.SLASH
  | Some '%' -> one Token.PERCENT
  | Some '^' -> one Token.CARET
  | Some '~' -> one Token.TILDE
  | Some '(' -> one Token.LPAREN
  | Some ')' -> one Token.RPAREN
  | Some '{' -> one Token.LBRACE
  | Some '}' -> one Token.RBRACE
  | Some '[' -> one Token.LBRACKET
  | Some ']' -> one Token.RBRACKET
  | Some ';' -> one Token.SEMI
  | Some ',' -> one Token.COMMA
  | Some '?' -> one Token.QUESTION
  | Some ':' -> one Token.COLON
  | Some c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, line))

(* Tokenize the whole input. *)
let tokens ?file src =
  let t = create ?file src in
  let rec go acc =
    match next t with
    | (Token.EOF, _) as last -> List.rev (last :: acc)
    | tok -> go (tok :: acc)
  in
  go []
