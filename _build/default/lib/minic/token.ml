(* Token stream for the mini-C lexer. *)

type t =
  | INT of int
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  | KW_COSY_START | KW_COSY_END
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ASSIGN                       (* = *)
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | QUESTION | COLON
  | PLUSPLUS | MINUSMINUS
  | PLUSEQ | MINUSEQ
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | CHAR c -> Printf.sprintf "'%c'" c
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_INT -> "int" | KW_CHAR -> "char" | KW_VOID -> "void"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_SIZEOF -> "sizeof"
  | KW_COSY_START -> "COSY_START" | KW_COSY_END -> "COSY_END"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> ","
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | ASSIGN -> "="
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | AMPAMP -> "&&" | PIPEPIPE -> "||" | BANG -> "!"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | QUESTION -> "?" | COLON -> ":"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | PLUSEQ -> "+=" | MINUSEQ -> "-="
  | EOF -> "<eof>"

let keyword_of_ident = function
  | "int" -> Some KW_INT
  | "char" -> Some KW_CHAR
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "sizeof" -> Some KW_SIZEOF
  | "COSY_START" -> Some KW_COSY_START
  | "COSY_END" -> Some KW_COSY_END
  | _ -> None
