(** Mini-C interpreter over simulated memory.

    All addressable data (globals, arrays, address-taken locals, the
    heap, string literals) lives in a region of a
    {!Ksim.Address_space.t}, so a stray pointer produces a real
    simulated-hardware fault, KGCC's object map tracks genuine addresses,
    and Kefence guardian pages work unmodified.  Scalar locals whose
    address is never taken live in registers — the same distinction
    KGCC's stack-object heuristic exploits.

    Every evaluated node charges [cpu_op] virtual cycles, so instrumented
    code (more nodes) is slower in simulated time exactly as on
    hardware. *)

exception Runtime_error of string * Ast.loc

(** The configurable step budget was exhausted (runaway loop). *)
exception Step_limit

exception Out_of_interp_memory

type obj_kind = Stack | Heap | Global | Literal

val pp_obj_kind : Format.formatter -> obj_kind -> unit

(** Allocation lifecycle events, consumed by KGCC's object map. *)
type obj_event =
  | Obj_alloc of { base : int; size : int; kind : obj_kind; name : string }
  | Obj_free of { base : int; kind : obj_kind }

type t

(** External functions callable from mini-C (e.g. the [__kgcc_*] checks,
    or syscall bridges).  Arguments and result are machine words. *)
type extern_fn = t -> int list -> int

(** [create ~space ~clock ~cost ~base_vpn ~pages] maps a fresh region of
    [pages] pages at [base_vpn] in [space] and lays out literals/heap
    (growing up) and stack (growing down) inside it. *)
val create :
  space:Ksim.Address_space.t ->
  clock:Ksim.Sim_clock.t ->
  cost:Ksim.Cost_model.t ->
  base_vpn:int ->
  pages:int ->
  t

val space : t -> Ksim.Address_space.t

(** Accumulated output of [print_int]/[print_str]/[putchar]. *)
val output : t -> string

val clear_output : t -> unit

(** Evaluation steps executed so far. *)
val steps : t -> int

(** Bound the number of steps; exceeding raises {!Step_limit}. *)
val set_max_steps : t -> int -> unit

(** Observe allocations/frees (KGCC attaches here). *)
val set_on_obj : t -> (obj_event -> unit) -> unit

(** Called on every loop back-edge (watchdogs attach here). *)
val set_on_backedge : t -> (unit -> unit) -> unit

val register_extern : t -> string -> extern_fn -> unit
val has_extern : t -> string -> bool

(** Typecheck and load a program; allocates and registers its globals.
    Returns the program unchanged. *)
val load_program : t -> Ast.program -> Ast.program

(** Parse then load.  @raise Parser.Parse_error, Typecheck.Type_error. *)
val parse_and_load : t -> ?file:string -> string -> Ast.program

(** Allocate a named long-lived buffer on the interpreter heap, visible
    to object-map observers like any malloc'd object (host-side
    embedders use this for work buffers). *)
val alloc_buffer : t -> name:string -> int -> int

(** Raw heap allocation without an object event (internal embedders). *)
val alloc_heap : t -> int -> int

(** Read/write NUL-terminated strings in interpreter memory. *)
val read_c_string : t -> loc:Ast.loc -> addr:int -> string

val write_c_string : t -> loc:Ast.loc -> addr:int -> string -> unit

(** Run a loaded function.  @raise Runtime_error for dynamic errors,
    {!Step_limit}, {!Ksim.Fault.Fault} for wild memory access, and
    whatever registered externs raise. *)
val run : t -> ?args:int list -> string -> int

val heap_live_count : t -> int
