(** Type annotation pass for mini-C.

    Permissive pre-ANSI rules: int/char/pointers interconvert freely and
    unknown functions are assumed to return [int] (so externs registered
    at run time need no prototypes).  The pass fills in [ety] on every
    expression — the interpreter uses it for pointer-arithmetic scaling
    and KGCC's instrumentation uses it to find pointer operations.

    It also computes, per function, which locals need addressable stack
    storage (arrays, and scalars whose address is taken).  KGCC's "don't
    check stack objects whose addresses are never taken" heuristic and
    the interpreter's register/memory split both come from this
    analysis. *)

exception Type_error of string * Ast.loc

type info

(** Typecheck in place (fills [ety]); returns the addressable-locals
    analysis.  @raise Type_error. *)
val check : Ast.program -> info

(** Does [var] of function [fname] need addressable stack storage? *)
val is_addressable : info -> fname:string -> var:string -> bool

(** Is this expression a valid assignment/address-of target? *)
val is_lvalue : Ast.expr -> bool
