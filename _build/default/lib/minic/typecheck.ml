(* Type annotation pass.  Mini-C follows permissive pre-ANSI rules:
   int/char/pointers interconvert freely; unknown functions are assumed
   to return int (so externs registered at run time need no prototypes).
   The pass fills in [ety] on every expression — the interpreter uses it
   for pointer-arithmetic scaling, and KGCC's instrumentation pass uses
   it to find pointer operations.

   It also computes, per function, the set of locals whose address is
   taken.  KGCC's "don't check stack objects whose addresses are never
   taken" heuristic (paper §3.4) falls straight out of this analysis, and
   the interpreter uses the same set to decide which locals need real
   stack memory. *)

exception Type_error of string * Ast.loc

let err loc fmt = Fmt.kstr (fun m -> raise (Type_error (m, loc))) fmt

type env = {
  vars : (string, Ast.ty) Hashtbl.t list;      (* innermost scope first *)
  funcs : (string, Ast.ty * Ast.ty list) Hashtbl.t;
  addr_taken : (string, unit) Hashtbl.t;       (* locals of current fn *)
}

type info = {
  (* fname -> names of locals (incl. params) whose address is taken or
     that are arrays, i.e. need addressable stack storage *)
  addressable : (string, (string, unit) Hashtbl.t) Hashtbl.t;
}

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some ty -> Some ty
        | None -> go rest)
  in
  go env.vars

let scalar = function
  | Ast.Tint | Ast.Tchar -> true
  | Ast.Tvoid | Ast.Tptr _ | Ast.Tarray _ -> false

(* The type a value of type [ty] has when read: arrays decay. *)
let decay = function Ast.Tarray (t, _) -> Ast.Tptr t | t -> t

let rec is_lvalue (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var _ | Ast.Deref _ | Ast.Index _ -> true
  | Ast.Cast (_, inner) -> is_lvalue inner
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Unop _ | Ast.Binop _
  | Ast.Assign _ | Ast.Addr_of _ | Ast.Call _ | Ast.Sizeof_ty _ | Ast.Cond _ ->
      false

let rec check_expr env (e : Ast.expr) : Ast.ty =
  let ty = infer env e in
  e.Ast.ety <- Some ty;
  ty

and infer env (e : Ast.expr) : Ast.ty =
  match e.Ast.e with
  | Ast.Int_lit _ -> Ast.Tint
  | Ast.Char_lit _ -> Ast.Tchar
  | Ast.Str_lit _ -> Ast.Tptr Ast.Tchar
  | Ast.Sizeof_ty _ -> Ast.Tint
  | Ast.Var name -> (
      match lookup_var env name with
      | Some ty -> decay ty
      | None -> err e.Ast.eloc "undeclared variable %s" name)
  | Ast.Unop (_, a) ->
      let ta = check_expr env a in
      if not (scalar ta || (match ta with Ast.Tptr _ -> true | _ -> false))
      then err e.Ast.eloc "unary operator on non-scalar";
      Ast.Tint
  | Ast.Deref a -> (
      match check_expr env a with
      | Ast.Tptr t -> decay t
      | ty -> err e.Ast.eloc "dereference of non-pointer (%a)" Ast.pp_ty ty)
  | Ast.Addr_of a -> (
      if not (is_lvalue a) then err e.Ast.eloc "address-of non-lvalue";
      (match a.Ast.e with
      | Ast.Var name when lookup_var env name <> None ->
          Hashtbl.replace env.addr_taken name ()
      | _ -> ());
      (* note: &a where a is an array yields pointer to element, as the
         interpreter represents arrays by their base address *)
      match check_expr env a with
      | Ast.Tarray (t, _) -> Ast.Tptr t
      | ty -> Ast.Tptr ty)
  | Ast.Index (a, i) -> (
      let ta = check_expr env a in
      let ti = check_expr env i in
      if not (scalar ti) then err e.Ast.eloc "array index must be integral";
      match ta with
      | Ast.Tptr t | Ast.Tarray (t, _) -> decay t
      | ty -> err e.Ast.eloc "indexing non-pointer (%a)" Ast.pp_ty ty)
  | Ast.Binop (op, a, b) -> (
      let ta = check_expr env a in
      let tb = check_expr env b in
      match op with
      | Ast.Add -> (
          match (ta, tb) with
          | Ast.Tptr t, _ when scalar tb -> Ast.Tptr t
          | _, Ast.Tptr t when scalar ta -> Ast.Tptr t
          | _ when scalar ta && scalar tb -> Ast.Tint
          | _ -> err e.Ast.eloc "invalid operands to +")
      | Ast.Sub -> (
          match (ta, tb) with
          | Ast.Tptr t, _ when scalar tb -> Ast.Tptr t
          | Ast.Tptr _, Ast.Tptr _ -> Ast.Tint (* pointer difference *)
          | _ when scalar ta && scalar tb -> Ast.Tint
          | _ -> err e.Ast.eloc "invalid operands to -")
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Logand
      | Ast.Logor ->
          Ast.Tint
      | Ast.Mul | Ast.Div | Ast.Mod | Ast.Bitand | Ast.Bitor | Ast.Bitxor
      | Ast.Shl | Ast.Shr ->
          if not (scalar ta && scalar tb) then
            err e.Ast.eloc "arithmetic on non-scalar";
          Ast.Tint)
  | Ast.Assign (lhs, rhs) ->
      if not (is_lvalue lhs) then err e.Ast.eloc "assignment to non-lvalue";
      let tl = check_expr env lhs in
      let _tr = check_expr env rhs in
      tl
  | Ast.Call (name, args) -> (
      List.iter (fun a -> ignore (check_expr env a)) args;
      match Hashtbl.find_opt env.funcs name with
      | Some (ret, params) ->
          if List.length params <> List.length args then
            err e.Ast.eloc "%s expects %d arguments, got %d" name
              (List.length params) (List.length args);
          decay ret
      | None -> Ast.Tint (* unknown extern: assume int *))
  | Ast.Cast (ty, a) ->
      ignore (check_expr env a);
      decay ty
  | Ast.Cond (c, a, b) ->
      ignore (check_expr env c);
      let ta = check_expr env a in
      ignore (check_expr env b);
      ta

let rec check_stmt env (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Sexpr e -> ignore (check_expr env e)
  | Ast.Sdecl (ty, name, init) ->
      (match env.vars with
      | scope :: _ ->
          if Hashtbl.mem scope name then
            err s.Ast.sloc "redeclaration of %s" name;
          Hashtbl.replace scope name ty
      | [] -> assert false);
      (match ty with
      | Ast.Tarray _ -> Hashtbl.replace env.addr_taken name ()
      | _ -> ());
      (match init with Some e -> ignore (check_expr env e) | None -> ())
  | Ast.Sif (c, a, b) ->
      ignore (check_expr env c);
      check_block env a;
      check_block env b
  | Ast.Swhile (c, body) ->
      ignore (check_expr env c);
      check_block env body
  | Ast.Sfor (c, body, step) ->
      ignore (check_expr env c);
      check_block env body;
      check_block env step
  | Ast.Sreturn (Some e) -> ignore (check_expr env e)
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue | Ast.Scosy_start
  | Ast.Scosy_end ->
      ()
  | Ast.Sblock body -> check_block env body

and check_block env body =
  let env = { env with vars = Hashtbl.create 8 :: env.vars } in
  List.iter (check_stmt env) body

(* Typecheck the whole program in place; returns the addressable-locals
   analysis. *)
let check (p : Ast.program) : info =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace funcs f.Ast.fname (f.Ast.ret, List.map fst f.Ast.params))
    p.Ast.funcs;
  let globals_scope = Hashtbl.create 16 in
  let global_addr_taken = Hashtbl.create 16 in
  List.iter
    (fun (ty, name, init) ->
      Hashtbl.replace globals_scope name ty;
      match init with
      | Some e ->
          let env =
            { vars = [ globals_scope ]; funcs; addr_taken = global_addr_taken }
          in
          ignore (check_expr env e)
      | None -> ())
    p.Ast.globals;
  let info = { addressable = Hashtbl.create 16 } in
  List.iter
    (fun f ->
      let addr_taken = Hashtbl.create 8 in
      let param_scope = Hashtbl.create 8 in
      List.iter (fun (ty, name) -> Hashtbl.replace param_scope name ty)
        f.Ast.params;
      let env =
        { vars = [ param_scope; globals_scope ]; funcs; addr_taken }
      in
      check_block env f.Ast.body;
      Hashtbl.replace info.addressable f.Ast.fname addr_taken)
    p.Ast.funcs;
  info

let is_addressable info ~fname ~var =
  match Hashtbl.find_opt info.addressable fname with
  | Some set -> Hashtbl.mem set var
  | None -> false
