(** Hand-written lexer for mini-C: produces [(token, line)] pairs,
    handling //- and /*-style comments, character/string escapes, and the
    COSY_START/COSY_END marker keywords. *)

exception Lex_error of string * int  (** message, line *)

type t

val create : ?file:string -> string -> t

(** Next token (the stream ends with [EOF] at the final line). *)
val next : t -> Token.t * int

(** Tokenize an entire input.  @raise Lex_error. *)
val tokens : ?file:string -> string -> (Token.t * int) list
