(** Binary encoding of compounds.

    The compound buffer is shared between user and kernel space, so
    encoding it once in user space makes it available to the kernel
    extension without any copy (§2.3).  Compounds encode to real bytes so
    the decode cost the paper worries about ("the overhead to decode a
    compound increases with the complexity of the language") is a genuine
    per-op activity, charged by the kernel extension at decode time. *)

exception Decode_error of string

(** An encoded compound. *)
type t = {
  buf : Bytes.t;       (** the shared compound buffer's contents *)
  op_count : int;
  slot_count : int;    (** size of the register file the ops use *)
}

(** Serialize an op sequence. *)
val encode : slot_count:int -> Cosy_op.op list -> t

(** Encoded size in bytes. *)
val size : t -> int

(** Decode back to ops, charging [per_op] cycles per decoded operation on
    [clock] when given.  @raise Decode_error on malformed buffers. *)
val decode :
  ?clock:Ksim.Sim_clock.t -> ?per_op:int -> t -> Cosy_op.op array * int
