lib/cosy/cosy_lib.mli: Compound Cosy_op
