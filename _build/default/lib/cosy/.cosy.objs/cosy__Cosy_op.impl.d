lib/cosy/cosy_op.ml: Array Fmt Option
