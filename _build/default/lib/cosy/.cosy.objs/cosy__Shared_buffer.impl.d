lib/cosy/shared_buffer.ml: Bytes Printf
