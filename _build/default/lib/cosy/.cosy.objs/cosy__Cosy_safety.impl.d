lib/cosy/cosy_safety.ml: Fmt Hashtbl Ksim Option
