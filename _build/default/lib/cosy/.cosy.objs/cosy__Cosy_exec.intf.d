lib/cosy/cosy_exec.mli: Compound Cosy_safety Ksyscall Shared_buffer
