lib/cosy/cosy_exec.ml: Array Bytes Compound Cosy_op Cosy_safety Fmt Ksim Ksyscall Kvfs List Minic Printf Shared_buffer String
