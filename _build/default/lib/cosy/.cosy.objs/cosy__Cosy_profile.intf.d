lib/cosy/cosy_profile.mli: Format Hashtbl Minic
