lib/cosy/cosy_profile.ml: Cosy_gcc Cosy_op Fmt Hashtbl List Minic Printf
