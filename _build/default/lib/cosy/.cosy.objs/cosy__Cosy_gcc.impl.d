lib/cosy/cosy_gcc.ml: Char Compound Cosy_lib Cosy_op Fmt Hashtbl List Minic Printf
