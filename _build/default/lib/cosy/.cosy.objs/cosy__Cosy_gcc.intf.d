lib/cosy/cosy_gcc.mli: Compound Minic
