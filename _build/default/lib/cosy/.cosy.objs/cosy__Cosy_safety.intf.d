lib/cosy/cosy_safety.mli: Format Ksim
