lib/cosy/cosy_lib.ml: Compound Cosy_op List
