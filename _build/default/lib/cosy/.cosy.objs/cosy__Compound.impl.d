lib/cosy/compound.ml: Array Buffer Bytes Char Cosy_op Int32 Int64 Ksim List Printf String
