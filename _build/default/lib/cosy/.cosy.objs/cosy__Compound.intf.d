lib/cosy/compound.mli: Bytes Cosy_op Ksim
