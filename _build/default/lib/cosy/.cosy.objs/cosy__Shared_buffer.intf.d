lib/cosy/shared_buffer.mli: Bytes
