(* Cosy-GCC (§2.3): "automates the tedious task of extracting Cosy
   operations out of a marked C-code segment and packing them into a
   compound, so the translation of marked C-code to an intermediate
   representation is entirely transparent to the user."

   Given a mini-C function containing COSY_START; ... COSY_END; markers,
   this pass compiles the statements between the markers into a compound:

   - int locals map to compound slots (dependency resolution: an op
     whose input is another op's output simply references its slot);
   - char arrays map to ranges of the zero-copy shared buffer, so a
     read() whose buffer later feeds a write() moves no data across the
     boundary — the automatic zero-copy detection the paper describes;
   - calls whose name is a known syscall become Syscall ops; any other
     call becomes a Call_user op (a user function executed in the kernel
     under the active protection mode);
   - while/if/break lower to conditional jumps over the op sequence.

   Code outside the subset (pointers beyond char arrays, nested
   functions' address-of, etc.) is rejected with [Unsupported] — the
   paper's Cosy likewise limits the language "to a subset of C in the
   kernel ... One of the main reasons is safety." *)

exception Unsupported of string * Minic.Ast.loc

let fail loc fmt = Fmt.kstr (fun m -> raise (Unsupported (m, loc))) fmt

type binding =
  | Islot of int       (* int variable -> register slot *)
  | Ibuf of int * int  (* char array -> (shared offset, size) *)

type ctx = {
  lib : Cosy_lib.t;
  vars : (string, binding) Hashtbl.t;
  mutable breaks : int list;  (* op indices of pending break jumps *)
}

let lookup ctx loc name =
  match Hashtbl.find_opt ctx.vars name with
  | Some b -> b
  | None -> fail loc "variable %s not declared inside the Cosy region" name

let arith_of_binop loc = function
  | Minic.Ast.Add -> Cosy_op.Aadd
  | Minic.Ast.Sub -> Cosy_op.Asub
  | Minic.Ast.Mul -> Cosy_op.Amul
  | Minic.Ast.Div -> Cosy_op.Adiv
  | Minic.Ast.Mod -> Cosy_op.Amod
  | Minic.Ast.Eq -> Cosy_op.Aeq
  | Minic.Ast.Ne -> Cosy_op.Ane
  | Minic.Ast.Lt -> Cosy_op.Alt
  | Minic.Ast.Le -> Cosy_op.Ale
  | Minic.Ast.Gt -> Cosy_op.Agt
  | Minic.Ast.Ge -> Cosy_op.Age
  | (Minic.Ast.Logand | Minic.Ast.Logor | Minic.Ast.Bitand | Minic.Ast.Bitor
    | Minic.Ast.Bitxor | Minic.Ast.Shl | Minic.Ast.Shr) as op ->
      fail loc "operator %a not in the Cosy subset" Minic.Ast.pp_binop op

(* Compile an expression to an argument, emitting ops for subterms. *)
let rec compile_expr ctx (e : Minic.Ast.expr) : Cosy_op.arg =
  let loc = e.Minic.Ast.eloc in
  match e.Minic.Ast.e with
  | Minic.Ast.Int_lit n -> Cosy_op.Const n
  | Minic.Ast.Char_lit c -> Cosy_op.Const (Char.code c)
  | Minic.Ast.Str_lit s -> Cosy_op.Str s
  | Minic.Ast.Var name -> (
      match lookup ctx loc name with
      | Islot s -> Cosy_op.Slot s
      | Ibuf (off, _) -> Cosy_op.Shared off)
  | Minic.Ast.Unop (Minic.Ast.Neg, a) ->
      let va = compile_expr ctx a in
      Cosy_op.Slot (Cosy_lib.arith_fresh ctx.lib Cosy_op.Asub (Cosy_op.Const 0) va)
  | Minic.Ast.Unop (Minic.Ast.Lognot, a) ->
      let va = compile_expr ctx a in
      Cosy_op.Slot (Cosy_lib.arith_fresh ctx.lib Cosy_op.Aeq va (Cosy_op.Const 0))
  | Minic.Ast.Binop (op, a, b) ->
      let va = compile_expr ctx a in
      let vb = compile_expr ctx b in
      Cosy_op.Slot (Cosy_lib.arith_fresh ctx.lib (arith_of_binop loc op) va vb)
  | Minic.Ast.Call (name, args) ->
      let vargs = List.map (compile_expr ctx) args in
      if Cosy_op.sysno_of_name name <> None then
        Cosy_op.Slot (Cosy_lib.syscall ctx.lib name vargs)
      else Cosy_op.Slot (Cosy_lib.call_user ctx.lib name vargs)
  | Minic.Ast.Assign ({ Minic.Ast.e = Minic.Ast.Var name; _ }, rhs) -> (
      let v = compile_expr ctx rhs in
      match lookup ctx loc name with
      | Islot dst ->
          Cosy_lib.set ctx.lib ~dst v;
          Cosy_op.Slot dst
      | Ibuf _ -> fail loc "cannot assign to a buffer variable")
  | Minic.Ast.Assign _ -> fail loc "only simple variables are assignable in a Cosy region"
  | Minic.Ast.Cond (c, a, b) ->
      (* lower ?: by computing both sides: c*a + (1-c)*b on normalized c *)
      let vc = compile_expr ctx c in
      let norm = Cosy_lib.arith_fresh ctx.lib Cosy_op.Ane vc (Cosy_op.Const 0) in
      let va = compile_expr ctx a in
      let vb = compile_expr ctx b in
      let ta = Cosy_lib.arith_fresh ctx.lib Cosy_op.Amul (Cosy_op.Slot norm) va in
      let inv =
        Cosy_lib.arith_fresh ctx.lib Cosy_op.Asub (Cosy_op.Const 1)
          (Cosy_op.Slot norm)
      in
      let tb = Cosy_lib.arith_fresh ctx.lib Cosy_op.Amul (Cosy_op.Slot inv) vb in
      Cosy_op.Slot
        (Cosy_lib.arith_fresh ctx.lib Cosy_op.Aadd (Cosy_op.Slot ta)
           (Cosy_op.Slot tb))
  | Minic.Ast.Unop (Minic.Ast.Bitnot, _) -> fail loc "~ not in the Cosy subset"
  | Minic.Ast.Deref _ | Minic.Ast.Addr_of _ | Minic.Ast.Index _ ->
      fail loc "pointer operations are not in the Cosy subset"
  | Minic.Ast.Cast (_, a) -> compile_expr ctx a
  | Minic.Ast.Sizeof_ty ty -> Cosy_op.Const (Minic.Ast.sizeof ty)

let rec compile_stmt ctx (s : Minic.Ast.stmt) =
  let loc = s.Minic.Ast.sloc in
  match s.Minic.Ast.s with
  | Minic.Ast.Sexpr e -> ignore (compile_expr ctx e)
  | Minic.Ast.Sdecl (ty, name, init) -> (
      match ty with
      | Minic.Ast.Tint | Minic.Ast.Tchar ->
          let slot = Cosy_lib.fresh_slot ctx.lib in
          Hashtbl.replace ctx.vars name (Islot slot);
          let v =
            match init with
            | Some e -> compile_expr ctx e
            | None -> Cosy_op.Const 0
          in
          Cosy_lib.set ctx.lib ~dst:slot v
      | Minic.Ast.Tarray (Minic.Ast.Tchar, n) ->
          (* a char buffer becomes zero-copy shared space *)
          let off = Cosy_lib.alloc_shared ctx.lib n in
          Hashtbl.replace ctx.vars name (Ibuf (off, n))
      | _ ->
          fail loc "only int scalars and char buffers may be declared in a Cosy region")
  | Minic.Ast.Swhile (cond, body) -> compile_loop ctx cond body []
  | Minic.Ast.Sfor (cond, body, step) -> compile_loop ctx cond body step
  | Minic.Ast.Sif (cond, then_, else_) ->
      let c = compile_expr ctx cond in
      let jz_at = Cosy_lib.next_index ctx.lib in
      Cosy_lib.jz ctx.lib c 0;
      List.iter (compile_stmt ctx) then_;
      if else_ = [] then
        Cosy_lib.patch_jump ctx.lib ~at:jz_at
          ~target:(Cosy_lib.next_index ctx.lib)
      else begin
        let jmp_at = Cosy_lib.next_index ctx.lib in
        Cosy_lib.jmp ctx.lib 0;
        Cosy_lib.patch_jump ctx.lib ~at:jz_at
          ~target:(Cosy_lib.next_index ctx.lib);
        List.iter (compile_stmt ctx) else_;
        Cosy_lib.patch_jump ctx.lib ~at:jmp_at
          ~target:(Cosy_lib.next_index ctx.lib)
      end
  | Minic.Ast.Sbreak ->
      let at = Cosy_lib.next_index ctx.lib in
      Cosy_lib.jmp ctx.lib 0;
      ctx.breaks <- at :: ctx.breaks
  | Minic.Ast.Sblock body -> List.iter (compile_stmt ctx) body
  | Minic.Ast.Scontinue -> fail loc "continue not in the Cosy subset"
  | Minic.Ast.Sreturn _ -> fail loc "return inside a Cosy region"
  | Minic.Ast.Scosy_start | Minic.Ast.Scosy_end ->
      fail loc "nested Cosy markers"

and compile_loop ctx cond body step =
  let saved_breaks = ctx.breaks in
  ctx.breaks <- [];
  let l_cond = Cosy_lib.next_index ctx.lib in
  let c = compile_expr ctx cond in
  let jz_at = Cosy_lib.next_index ctx.lib in
  Cosy_lib.jz ctx.lib c 0 (* patched below *);
  List.iter (compile_stmt ctx) body;
  List.iter (compile_stmt ctx) step;
  Cosy_lib.jmp ctx.lib l_cond;
  let l_end = Cosy_lib.next_index ctx.lib in
  Cosy_lib.patch_jump ctx.lib ~at:jz_at ~target:l_end;
  List.iter
    (fun at -> Cosy_lib.patch_jump ctx.lib ~at ~target:l_end)
    ctx.breaks;
  ctx.breaks <- saved_breaks

(* Extract the marked statements of [fname]'s body, plus the int-scalar
   declarations that precede COSY_START: those locals are visible inside
   the region, so Cosy-GCC binds them to slots (their initializers must
   themselves be within the Cosy subset). *)
let marked_region (f : Minic.Ast.func) =
  let rec split before = function
    | { Minic.Ast.s = Minic.Ast.Scosy_start; _ } :: rest ->
        let rec until acc = function
          | { Minic.Ast.s = Minic.Ast.Scosy_end; _ } :: _ -> List.rev acc
          | s :: rest -> until (s :: acc) rest
          | [] ->
              raise
                (Unsupported ("COSY_START without COSY_END", f.Minic.Ast.floc))
        in
        Some (List.rev before, until [] rest)
    | ({ Minic.Ast.s = Minic.Ast.Sdecl ((Minic.Ast.Tint | Minic.Ast.Tchar), _, _); _ } as d)
      :: rest ->
        split (d :: before) rest
    | _ :: rest -> split before rest
    | [] -> None
  in
  split [] f.Minic.Ast.body

type compiled = {
  compound : Compound.t;
  slots_of_vars : (string * int) list;  (* int locals -> result slots *)
  shared_of_bufs : (string * (int * int)) list;
  op_count : int;
}

(* Compile the marked region of function [fname] in [program]. *)
let compile ?(shared_size = 65536) (program : Minic.Ast.program) ~fname =
  match Minic.Ast.find_func program fname with
  | None -> invalid_arg (Printf.sprintf "Cosy_gcc.compile: no function %s" fname)
  | Some f -> (
      match marked_region f with
      | None ->
          raise (Unsupported ("no COSY_START region in " ^ fname, f.Minic.Ast.floc))
      | Some (pre_decls, stmts) ->
          let ctx =
            {
              lib = Cosy_lib.create ~shared_size ();
              vars = Hashtbl.create 16;
              breaks = [];
            }
          in
          List.iter (compile_stmt ctx) pre_decls;
          List.iter (compile_stmt ctx) stmts;
          let op_count = Cosy_lib.op_count ctx.lib in
          let compound = Cosy_lib.finish ctx.lib in
          let slots, bufs =
            Hashtbl.fold
              (fun name b (slots, bufs) ->
                match b with
                | Islot s -> ((name, s) :: slots, bufs)
                | Ibuf (off, size) -> (slots, (name, (off, size)) :: bufs))
              ctx.vars ([], [])
          in
          { compound; slots_of_vars = slots; shared_of_bufs = bufs; op_count })
