(** Cosy-GCC (§2.3): compile the COSY_START/COSY_END region of a mini-C
    function into a compound.

    Translation, transparent to the user:
    - int locals (including those declared before COSY_START) map to
      compound slots, so parameter dependencies between ops resolve by
      slot reference;
    - char arrays map to ranges of the zero-copy shared buffer, so a
      read() whose buffer later feeds a write() moves no data across the
      boundary — the automatic zero-copy detection the paper describes;
    - calls to known syscalls become [Syscall] ops; other calls become
      [Call_user] ops (run in the kernel under the protection mode);
    - while/for/if/break lower to conditional jumps.

    Code outside the subset is rejected with {!Unsupported} — the paper's
    Cosy likewise limits the language "to a subset of C in the kernel". *)

exception Unsupported of string * Minic.Ast.loc

type compiled = {
  compound : Compound.t;
  slots_of_vars : (string * int) list;
      (** int locals -> result slots, for reading outputs after submit *)
  shared_of_bufs : (string * (int * int)) list;
      (** char buffers -> (shared-buffer offset, size) *)
  op_count : int;
}

(** Compile the marked region of [fname].
    @raise Invalid_argument when the function does not exist,
    @raise Unsupported when there is no marked region or it uses
    constructs outside the Cosy subset. *)
val compile : ?shared_size:int -> Minic.Ast.program -> fname:string -> compiled
