(** Profiling-driven region selection — the §2.4 plan, implemented:
    "we would like to modify Cosy to automate the job of deciding which
    code should be moved to the kernel using profiling."

    Per-function scores combine static shape (syscall sites weighted by
    loop depth) with optional dynamic execution counts from a trace;
    {!advise} returns the functions worth marking, the statement span a
    COSY_START/COSY_END pair should bracket, and the crossings a compound
    would save. *)

type call_site = {
  fname : string;
  callee : string;     (** the syscall invoked *)
  line : int;
  loop_depth : int;
}

type suggestion = {
  target : string;              (** function to mark *)
  score : float;
  syscall_sites : call_site list;
  first_line : int;             (** where COSY_START should go *)
  last_line : int;              (** where COSY_END should go *)
  est_crossings_saved : int;    (** per run of the marked region *)
  compilable : bool;            (** does Cosy-GCC accept the region as-is? *)
  reason : string;
}

(** All syscall call sites of one function, with loop depths. *)
val function_sites : Minic.Ast.func -> call_site list

(** Rank the program's functions.  [dynamic_counts] maps
    [(function, line)] to observed execution counts and overrides the
    static trip-count assumption; [threshold] (default 10) drops
    low-value functions. *)
val advise :
  ?threshold:float ->
  ?dynamic_counts:(string * int, int) Hashtbl.t ->
  Minic.Ast.program ->
  suggestion list

val pp_suggestion : Format.formatter -> suggestion -> unit
