(* Binary encoding of compounds.  The compound buffer is shared between
   user and kernel space, so encoding it once in user space makes it
   available to the kernel extension without any copy (§2.3).  We encode
   to real bytes so the decode cost the paper worries about is a genuine
   per-op activity, charged by the kernel extension at decode time. *)

(* wire format:
   header: magic "COSY" | op count (u32) | slot count (u32)
   op:     tag (u8) | fields
   arg:    tag (u8) | i64, or u32 length + bytes for strings        *)

let magic = "COSY"

exception Decode_error of string

module Writer = struct
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    let bs = Bytes.create 4 in
    Bytes.set_int32_le bs 0 (Int32.of_int v);
    Buffer.add_bytes b bs

  let i64 b v =
    let bs = Bytes.create 8 in
    Bytes.set_int64_le bs 0 (Int64.of_int v);
    Buffer.add_bytes b bs

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s
end

module Reader = struct
  type t = { buf : Bytes.t; mutable pos : int }

  let create buf = { buf; pos = 0 }

  let need r n =
    if r.pos + n > Bytes.length r.buf then raise (Decode_error "truncated")

  let u8 r =
    need r 1;
    let v = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    need r 4;
    let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8;
    let v = Int64.to_int (Bytes.get_int64_le r.buf r.pos) in
    r.pos <- r.pos + 8;
    v

  let str r =
    let len = u32 r in
    need r len;
    let s = Bytes.sub_string r.buf r.pos len in
    r.pos <- r.pos + len;
    s
end

let encode_arg b = function
  | Cosy_op.Const v ->
      Writer.u8 b 0;
      Writer.i64 b v
  | Cosy_op.Slot i ->
      Writer.u8 b 1;
      Writer.i64 b i
  | Cosy_op.Shared off ->
      Writer.u8 b 2;
      Writer.i64 b off
  | Cosy_op.Str s ->
      Writer.u8 b 3;
      Writer.str b s

let decode_arg r =
  match Reader.u8 r with
  | 0 -> Cosy_op.Const (Reader.i64 r)
  | 1 -> Cosy_op.Slot (Reader.i64 r)
  | 2 -> Cosy_op.Shared (Reader.i64 r)
  | 3 -> Cosy_op.Str (Reader.str r)
  | n -> raise (Decode_error (Printf.sprintf "bad arg tag %d" n))

let arith_code = function
  | Cosy_op.Aadd -> 0 | Cosy_op.Asub -> 1 | Cosy_op.Amul -> 2
  | Cosy_op.Adiv -> 3 | Cosy_op.Amod -> 4 | Cosy_op.Aeq -> 5
  | Cosy_op.Ane -> 6 | Cosy_op.Alt -> 7 | Cosy_op.Ale -> 8
  | Cosy_op.Agt -> 9 | Cosy_op.Age -> 10

let arith_of_code = function
  | 0 -> Cosy_op.Aadd | 1 -> Cosy_op.Asub | 2 -> Cosy_op.Amul
  | 3 -> Cosy_op.Adiv | 4 -> Cosy_op.Amod | 5 -> Cosy_op.Aeq
  | 6 -> Cosy_op.Ane | 7 -> Cosy_op.Alt | 8 -> Cosy_op.Ale
  | 9 -> Cosy_op.Agt | 10 -> Cosy_op.Age
  | n -> raise (Decode_error (Printf.sprintf "bad arith code %d" n))

let encode_op b = function
  | Cosy_op.Set { dst; src } ->
      Writer.u8 b 1;
      Writer.u32 b dst;
      encode_arg b src
  | Cosy_op.Arith { dst; op; a; b = rhs } ->
      Writer.u8 b 2;
      Writer.u32 b dst;
      Writer.u8 b (arith_code op);
      encode_arg b a;
      encode_arg b rhs
  | Cosy_op.Syscall { dst; sysno; args } ->
      Writer.u8 b 3;
      Writer.u32 b dst;
      Writer.u32 b sysno;
      Writer.u8 b (List.length args);
      List.iter (encode_arg b) args
  | Cosy_op.Jmp target ->
      Writer.u8 b 4;
      Writer.u32 b target
  | Cosy_op.Jz { cond; target } ->
      Writer.u8 b 5;
      Writer.u32 b target;
      encode_arg b cond
  | Cosy_op.Call_user { dst; fname; args } ->
      Writer.u8 b 6;
      Writer.u32 b dst;
      Writer.str b fname;
      Writer.u8 b (List.length args);
      List.iter (encode_arg b) args
  | Cosy_op.Halt -> Writer.u8 b 7

let decode_op r =
  match Reader.u8 r with
  | 1 ->
      let dst = Reader.u32 r in
      let src = decode_arg r in
      Cosy_op.Set { dst; src }
  | 2 ->
      let dst = Reader.u32 r in
      let op = arith_of_code (Reader.u8 r) in
      let a = decode_arg r in
      let b = decode_arg r in
      Cosy_op.Arith { dst; op; a; b }
  | 3 ->
      let dst = Reader.u32 r in
      let sysno = Reader.u32 r in
      let n = Reader.u8 r in
      let args = List.init n (fun _ -> decode_arg r) in
      Cosy_op.Syscall { dst; sysno; args }
  | 4 -> Cosy_op.Jmp (Reader.u32 r)
  | 5 ->
      let target = Reader.u32 r in
      let cond = decode_arg r in
      Cosy_op.Jz { cond; target }
  | 6 ->
      let dst = Reader.u32 r in
      let fname = Reader.str r in
      let n = Reader.u8 r in
      let args = List.init n (fun _ -> decode_arg r) in
      Cosy_op.Call_user { dst; fname; args }
  | 7 -> Cosy_op.Halt
  | n -> raise (Decode_error (Printf.sprintf "bad op tag %d" n))

type t = {
  buf : Bytes.t;          (* the encoded compound buffer *)
  op_count : int;
  slot_count : int;
}

let encode ~slot_count ops =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Writer.u32 b (List.length ops);
  Writer.u32 b slot_count;
  List.iter (encode_op b) ops;
  { buf = Buffer.to_bytes b; op_count = List.length ops; slot_count }

let size t = Bytes.length t.buf

(* Decode, charging [per_op] cycles per decoded operation on [clock] —
   the kernel extension's decode cost. *)
let decode ?(clock : Ksim.Sim_clock.t option) ?(per_op = 0) t =
  let r = Reader.create t.buf in
  let m = Bytes.create 4 in
  Bytes.blit t.buf 0 m 0 4;
  r.Reader.pos <- 4;
  if Bytes.to_string m <> magic then raise (Decode_error "bad magic");
  let op_count = Reader.u32 r in
  let slot_count = Reader.u32 r in
  let charge () =
    match clock with
    | Some c -> Ksim.Sim_clock.advance c per_op
    | None -> ()
  in
  let ops =
    Array.init op_count (fun _ ->
        charge ();
        decode_op r)
  in
  (ops, slot_count)
