(* Profiling-driven region selection — the §2.4 plan, implemented:
   "In the future, we would like to modify Cosy to automate the job of
   deciding which code should be moved to the kernel using profiling."

   Two inputs combine into a per-function score:

   - static shape: how many syscall invocations the function contains and
     how deeply they sit inside loops (a syscall under two loops is worth
     far more than a straight-line one);
   - optional dynamic counts: observed executions per call site from a
     trace (e.g. a Ktrace recorder attached while the application runs a
     representative workload).

   [advise] returns the functions worth marking, each with the statement
   span that a COSY_START/COSY_END pair should bracket and an estimate of
   the boundary crossings a compound would save per invocation. *)

type call_site = {
  fname : string;
  callee : string;
  line : int;
  loop_depth : int;
}

type suggestion = {
  target : string;                (* function to mark *)
  score : float;
  syscall_sites : call_site list;
  first_line : int;               (* where COSY_START should go *)
  last_line : int;                (* where COSY_END should go *)
  est_crossings_saved : int;      (* per run of the marked region *)
  compilable : bool;              (* does Cosy-GCC accept the region? *)
  reason : string;
}

let is_syscall name = Cosy_op.sysno_of_name name <> None

(* Collect every syscall call site in an expression. *)
let rec expr_sites ~fname ~depth (e : Minic.Ast.expr) : call_site list =
  let sub = expr_sites ~fname ~depth in
  match e.Minic.Ast.e with
  | Minic.Ast.Call (callee, args) ->
      let inner = List.concat_map sub args in
      if is_syscall callee then
        { fname; callee; line = e.Minic.Ast.eloc.Minic.Ast.line; loop_depth = depth }
        :: inner
      else inner
  | Minic.Ast.Int_lit _ | Minic.Ast.Char_lit _ | Minic.Ast.Str_lit _
  | Minic.Ast.Var _ | Minic.Ast.Sizeof_ty _ ->
      []
  | Minic.Ast.Unop (_, a) | Minic.Ast.Deref a | Minic.Ast.Addr_of a
  | Minic.Ast.Cast (_, a) ->
      sub a
  | Minic.Ast.Binop (_, a, b) | Minic.Ast.Assign (a, b) | Minic.Ast.Index (a, b)
    ->
      sub a @ sub b
  | Minic.Ast.Cond (a, b, c) -> sub a @ sub b @ sub c

let rec stmt_sites ~fname ~depth (s : Minic.Ast.stmt) : call_site list =
  match s.Minic.Ast.s with
  | Minic.Ast.Sexpr e | Minic.Ast.Sdecl (_, _, Some e) | Minic.Ast.Sreturn (Some e)
    ->
      expr_sites ~fname ~depth e
  | Minic.Ast.Sdecl (_, _, None) | Minic.Ast.Sreturn None | Minic.Ast.Sbreak
  | Minic.Ast.Scontinue | Minic.Ast.Scosy_start | Minic.Ast.Scosy_end ->
      []
  | Minic.Ast.Sif (c, a, b) ->
      expr_sites ~fname ~depth c
      @ List.concat_map (stmt_sites ~fname ~depth) a
      @ List.concat_map (stmt_sites ~fname ~depth) b
  | Minic.Ast.Swhile (c, body) ->
      expr_sites ~fname ~depth:(depth + 1) c
      @ List.concat_map (stmt_sites ~fname ~depth:(depth + 1)) body
  | Minic.Ast.Sfor (c, body, step) ->
      expr_sites ~fname ~depth:(depth + 1) c
      @ List.concat_map (stmt_sites ~fname ~depth:(depth + 1)) body
      @ List.concat_map (stmt_sites ~fname ~depth:(depth + 1)) step
  | Minic.Ast.Sblock body -> List.concat_map (stmt_sites ~fname ~depth) body

let function_sites (f : Minic.Ast.func) =
  List.concat_map (stmt_sites ~fname:f.Minic.Ast.fname ~depth:0) f.Minic.Ast.body

(* Expected loop trip count when nothing better is known; matches the
   order of magnitude of the data-intensive loops the paper targets. *)
let assumed_trip_count = 64

let site_weight ?dynamic_counts (site : call_site) =
  match dynamic_counts with
  | Some counts -> (
      match Hashtbl.find_opt counts (site.fname, site.line) with
      | Some n -> float_of_int n
      | None -> 0.)
  | None -> float_of_int (int_of_float (float_of_int assumed_trip_count ** float_of_int site.loop_depth))

(* Would Cosy-GCC accept this function if we marked its whole body? *)
let region_compilable (f : Minic.Ast.func) =
  let marked =
    {
      f with
      Minic.Ast.body =
        (Minic.Ast.mk_stmt Minic.Ast.Scosy_start
         :: List.filter
              (fun s ->
                match s.Minic.Ast.s with
                | Minic.Ast.Sreturn _ -> false
                | _ -> true)
              f.Minic.Ast.body)
        @ [ Minic.Ast.mk_stmt Minic.Ast.Scosy_end ];
    }
  in
  let probe = { Minic.Ast.globals = []; funcs = [ marked ] } in
  match Cosy_gcc.compile probe ~fname:f.Minic.Ast.fname with
  | (_ : Cosy_gcc.compiled) -> true
  | exception _ -> false

let stmt_line (s : Minic.Ast.stmt) = s.Minic.Ast.sloc.Minic.Ast.line

(* Analyze a program and propose functions to mark. *)
let advise ?(threshold = 10.) ?dynamic_counts (p : Minic.Ast.program) :
    suggestion list =
  List.filter_map
    (fun (f : Minic.Ast.func) ->
      let sites = function_sites f in
      if sites = [] then None
      else begin
        let score =
          List.fold_left (fun acc s -> acc +. site_weight ?dynamic_counts s) 0. sites
        in
        if score < threshold then None
        else begin
          let lines = List.map stmt_line f.Minic.Ast.body in
          let est =
            List.fold_left
              (fun acc s -> acc +. site_weight ?dynamic_counts s)
              0. sites
          in
          Some
            {
              target = f.Minic.Ast.fname;
              score;
              syscall_sites = sites;
              first_line = List.fold_left min max_int lines;
              last_line = List.fold_left max 0 lines;
              est_crossings_saved = int_of_float est - 1;
              compilable = region_compilable f;
              reason =
                Printf.sprintf
                  "%d syscall site(s), max loop depth %d"
                  (List.length sites)
                  (List.fold_left (fun a s -> max a s.loop_depth) 0 sites);
            }
        end
      end)
    p.Minic.Ast.funcs
  |> List.sort (fun a b -> compare b.score a.score)

let pp_suggestion ppf s =
  Fmt.pf ppf
    "%s: score %.0f (%s) — mark lines %d..%d, ~%d crossings saved/run%s"
    s.target s.score s.reason s.first_line s.last_line s.est_crossings_saved
    (if s.compilable then "" else " [region needs manual adaptation]")
