(* The Cosy intermediate language: the operations a compound may contain.
   Deliberately a small subset of C (§2.3: "We limited Cosy to the
   execution of only a subset of C in the kernel ... extending the
   language further ... may not increase performance because the overhead
   to decode a compound increases with the complexity of the language.")

   A compound is a sequence of ops over a register file of integer
   slots.  Slot values flow between ops, which is how Cosy-GCC "resolves
   dependencies among parameters of the Cosy operations". *)

type arg =
  | Const of int
  | Str of string              (* immediate string, e.g. a path *)
  | Slot of int                (* result of an earlier op *)
  | Shared of int              (* offset into the zero-copy shared buffer *)

let pp_arg ppf = function
  | Const n -> Fmt.pf ppf "$%d" n
  | Str s -> Fmt.pf ppf "%S" s
  | Slot i -> Fmt.pf ppf "r%d" i
  | Shared off -> Fmt.pf ppf "shared+%d" off

type arith = Aadd | Asub | Amul | Adiv | Amod | Aeq | Ane | Alt | Ale | Agt | Age

let pp_arith ppf a =
  Fmt.string ppf
    (match a with
    | Aadd -> "+" | Asub -> "-" | Amul -> "*" | Adiv -> "/" | Amod -> "%"
    | Aeq -> "==" | Ane -> "!=" | Alt -> "<" | Ale -> "<=" | Agt -> ">"
    | Age -> ">=")

type op =
  | Set of { dst : int; src : arg }
  | Arith of { dst : int; op : arith; a : arg; b : arg }
  | Syscall of { dst : int; sysno : int; args : arg list }
  | Jmp of int                  (* absolute op index *)
  | Jz of { cond : arg; target : int }
  | Call_user of { dst : int; fname : string; args : arg list }
  | Halt

(* Fixed syscall numbering shared by encoder and kernel extension. *)
let syscall_table =
  [|
    "open"; "close"; "read"; "write"; "pread"; "pwrite"; "lseek"; "stat";
    "fstat"; "readdir"; "mkdir"; "unlink"; "rename"; "fsync"; "getpid";
  |]

let sysno_of_name name =
  let rec go i =
    if i >= Array.length syscall_table then None
    else if syscall_table.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let name_of_sysno n =
  if n >= 0 && n < Array.length syscall_table then Some syscall_table.(n)
  else None

let pp_op ppf = function
  | Set { dst; src } -> Fmt.pf ppf "r%d := %a" dst pp_arg src
  | Arith { dst; op; a; b } ->
      Fmt.pf ppf "r%d := %a %a %a" dst pp_arg a pp_arith op pp_arg b
  | Syscall { dst; sysno; args } ->
      Fmt.pf ppf "r%d := sys_%s(%a)" dst
        (Option.value ~default:"?" (name_of_sysno sysno))
        Fmt.(list ~sep:(any ", ") pp_arg)
        args
  | Jmp target -> Fmt.pf ppf "jmp %d" target
  | Jz { cond; target } -> Fmt.pf ppf "jz %a -> %d" pp_arg cond target
  | Call_user { dst; fname; args } ->
      Fmt.pf ppf "r%d := user %s(%a)" dst fname
        Fmt.(list ~sep:(any ", ") pp_arg)
        args
  | Halt -> Fmt.string ppf "halt"
