(* Cosy-Lib: the utility layer that builds compounds.  Cosy-GCC rewrites
   marked C code into calls to these builders; applications may also use
   them directly.  The builder hands out result slots, which is how
   parameter dependencies between operations are expressed. *)

type t = {
  mutable ops_rev : Cosy_op.op list;
  mutable next_slot : int;
  mutable next_shared : int;    (* bump allocator over the shared buffer *)
  shared_size : int;
}

let create ?(shared_size = 65536) () =
  { ops_rev = []; next_slot = 0; next_shared = 0; shared_size }

let op_count t = List.length t.ops_rev
let next_index t = op_count t

let fresh_slot t =
  let s = t.next_slot in
  t.next_slot <- t.next_slot + 1;
  s

(* Reserve [len] bytes of the shared buffer (zero-copy staging space). *)
let alloc_shared t len =
  let len = (len + 7) land lnot 7 in
  if t.next_shared + len > t.shared_size then
    invalid_arg "Cosy_lib.alloc_shared: shared buffer exhausted";
  let off = t.next_shared in
  t.next_shared <- t.next_shared + len;
  off

let push t op = t.ops_rev <- op :: t.ops_rev

let set t ~dst src = push t (Cosy_op.Set { dst; src })

let set_fresh t src =
  let dst = fresh_slot t in
  set t ~dst src;
  dst

let arith t ~dst op a b = push t (Cosy_op.Arith { dst; op; a; b })

let arith_fresh t op a b =
  let dst = fresh_slot t in
  arith t ~dst op a b;
  dst

exception Unknown_syscall of string

let syscall t name args =
  match Cosy_op.sysno_of_name name with
  | None -> raise (Unknown_syscall name)
  | Some sysno ->
      let dst = fresh_slot t in
      push t (Cosy_op.Syscall { dst; sysno; args });
      dst

let call_user t fname args =
  let dst = fresh_slot t in
  push t (Cosy_op.Call_user { dst; fname; args });
  dst

(* Control flow.  Targets are op indices; [patch_jump] supports the
   emit-then-backpatch style the Cosy-GCC lowering uses. *)
let jmp t target = push t (Cosy_op.Jmp target)
let jz t cond target = push t (Cosy_op.Jz { cond; target })

let patch_jump t ~at ~target =
  let n = op_count t in
  if at < 0 || at >= n then invalid_arg "Cosy_lib.patch_jump";
  t.ops_rev <-
    List.mapi
      (fun i op ->
        if n - 1 - i = at then
          match op with
          | Cosy_op.Jmp _ -> Cosy_op.Jmp target
          | Cosy_op.Jz { cond; _ } -> Cosy_op.Jz { cond; target }
          | _ -> invalid_arg "Cosy_lib.patch_jump: not a jump"
        else op)
      t.ops_rev

let finish t =
  push t Cosy_op.Halt;
  Compound.encode ~slot_count:(max 1 t.next_slot) (List.rev t.ops_rev)

let shared_bytes_used t = t.next_shared
