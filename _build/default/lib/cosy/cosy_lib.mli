(** Cosy-Lib: the utility layer that builds compounds (§2.3).

    Cosy-GCC rewrites marked C code into calls to these builders;
    applications may also use them directly.  The builder hands out
    result slots — an op whose input is another op's output simply
    references its slot, which is how "dependencies among parameters of
    the Cosy operations" are resolved. *)

type t

(** [create ~shared_size ()] starts an empty compound whose zero-copy
    staging space is [shared_size] bytes (default 64 KiB). *)
val create : ?shared_size:int -> unit -> t

(** Ops emitted so far. *)
val op_count : t -> int

(** Index the next emitted op will get (for jump targets). *)
val next_index : t -> int

(** Reserve a fresh result slot. *)
val fresh_slot : t -> int

(** Reserve [len] bytes of the shared buffer; returns the offset.
    @raise Invalid_argument when the buffer is exhausted. *)
val alloc_shared : t -> int -> int

(** Emit [dst := src]. *)
val set : t -> dst:int -> Cosy_op.arg -> unit

(** Emit a set into a fresh slot; returns the slot. *)
val set_fresh : t -> Cosy_op.arg -> int

(** Emit [dst := a op b]. *)
val arith : t -> dst:int -> Cosy_op.arith -> Cosy_op.arg -> Cosy_op.arg -> unit

val arith_fresh : t -> Cosy_op.arith -> Cosy_op.arg -> Cosy_op.arg -> int

exception Unknown_syscall of string

(** Emit a syscall op; returns its result slot.
    @raise Unknown_syscall for names outside {!Cosy_op.syscall_table}. *)
val syscall : t -> string -> Cosy_op.arg list -> int

(** Emit a user-function call (executed in the kernel under the active
    protection mode); returns its result slot. *)
val call_user : t -> string -> Cosy_op.arg list -> int

(** Unconditional jump to an op index. *)
val jmp : t -> int -> unit

(** Jump when the argument is zero. *)
val jz : t -> Cosy_op.arg -> int -> unit

(** Retarget the jump emitted at index [at] (emit-then-backpatch).
    @raise Invalid_argument if [at] is out of range or not a jump. *)
val patch_jump : t -> at:int -> target:int -> unit

(** Append the final [Halt] and encode. *)
val finish : t -> Compound.t

val shared_bytes_used : t -> int
