(** The event dispatcher of the paper's Figure 1: [log_event] invokes a
    set of callbacks.

    In-kernel on-line monitors register synchronous callbacks; the
    ring-buffer feed for user-space consumers is enabled separately.
    {!install} wires the dispatcher into the kernel's instrumentation
    indirection so spinlocks, refcounts and interrupt toggles flow in. *)

type callback = Ksim.Instrument.event -> unit

type t

val create : ?ring_capacity:int -> Ksim.Kernel.t -> t

(** The ring feeding user space (read via {!Chardev}). *)
val ring : t -> Ksim.Instrument.event Ring.t

(** The log_event entry point: charges dispatch cost, runs callbacks,
    pushes to the ring when enabled. *)
val log_event : t -> Ksim.Instrument.event -> unit

(** Point [Ksim.Instrument.log] at this dispatcher. *)
val install : t -> unit

val uninstall : t -> unit

(** Register a synchronous in-kernel callback (invoked on every event). *)
val register : t -> name:string -> callback -> unit

val unregister : t -> name:string -> unit
val enable_ring : t -> unit
val disable_ring : t -> unit

(** Events seen since creation. *)
val events : t -> int

val callback_count : t -> int
