(** A user-space logger writing every event record to a log disk — the
    paper's "+103%" configuration of E6.  With [write_to_disk:false] it
    is the control that "acts like the logger but does not write to
    disk" (+61%). *)

type t

(** Serialized size of one log record (the §3.3 event structure). *)
val record_size : int

val create : ?write_to_disk:bool -> Ksim.Kernel.t -> Libkernevents.t -> t

(** Pump the underlying libkernevents once. *)
val pump : t -> unit

val drain : t -> unit
val records_written : t -> int
val bytes_written : t -> int
