(* A user-space logger built around libkernevents that writes every event
   record to a log disk — the paper's "running a user-space logger built
   around librefcounts in parallel with PostMark increased the overhead
   to 103%" configuration.  The log disk is the dedicated SCSI drive of
   the paper's testbed, modelled as a per-record write cost plus
   amortized batching. *)

type t = {
  kernel : Ksim.Kernel.t;
  lib : Libkernevents.t;
  mutable records_written : int;
  mutable bytes_written : int;
  write_to_disk : bool;       (* false = the "acts like the logger but
                                 does not write to disk" control of E6 *)
}

(* Wire size of one log record: the event structure of §3.3 (object
   pointer, event type, file/line), serialized. *)
let record_size = 48

let create ?(write_to_disk = true) kernel lib =
  let t =
    { kernel; lib; records_written = 0; bytes_written = 0; write_to_disk }
  in
  Libkernevents.add_sink lib ~name:"disk-logger" (fun _ev ->
      t.records_written <- t.records_written + 1;
      t.bytes_written <- t.bytes_written + record_size;
      if t.write_to_disk then
        Ksim.Sim_clock.advance
          (Ksim.Kernel.clock t.kernel)
          (Ksim.Kernel.cost t.kernel).Ksim.Cost_model.log_write_per_event);
  t

let pump t = Libkernevents.pump t.lib
let drain t = Libkernevents.drain t.lib
let records_written t = t.records_written
let bytes_written t = t.bytes_written
