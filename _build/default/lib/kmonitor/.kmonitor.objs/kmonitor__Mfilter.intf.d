lib/kmonitor/mfilter.mli: Dispatcher Format Ksim
