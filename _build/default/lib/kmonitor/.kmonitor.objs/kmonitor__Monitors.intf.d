lib/kmonitor/monitors.mli: Dispatcher Format Hashtbl Ksim
