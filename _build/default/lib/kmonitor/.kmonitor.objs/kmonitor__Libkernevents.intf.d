lib/kmonitor/libkernevents.mli: Chardev Ksim
