lib/kmonitor/disk_logger.mli: Ksim Libkernevents
