lib/kmonitor/disk_logger.ml: Ksim Libkernevents
