lib/kmonitor/dispatcher.mli: Ksim Ring
