lib/kmonitor/chardev.ml: Dispatcher Ksim List Ring
