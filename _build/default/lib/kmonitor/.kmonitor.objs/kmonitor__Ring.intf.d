lib/kmonitor/ring.mli:
