lib/kmonitor/libkernevents.ml: Chardev Hashtbl Ksim List
