lib/kmonitor/chardev.mli: Dispatcher Ksim
