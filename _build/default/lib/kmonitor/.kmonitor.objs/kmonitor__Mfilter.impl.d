lib/kmonitor/mfilter.ml: Dispatcher Fmt Ksim List Printf String
