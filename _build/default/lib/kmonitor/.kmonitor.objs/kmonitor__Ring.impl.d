lib/kmonitor/ring.ml: Array Atomic List
