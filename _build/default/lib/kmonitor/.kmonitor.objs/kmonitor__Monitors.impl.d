lib/kmonitor/monitors.ml: Dispatcher Fmt Hashtbl Ksim
