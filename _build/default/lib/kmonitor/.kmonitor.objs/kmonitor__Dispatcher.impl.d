lib/kmonitor/dispatcher.ml: Ksim List Ring
