(* Rule-driven instrumentation selection — the §3.5 plan, implemented:
   "we plan to develop a language that specifies code patterns that the
   KGCC compiler can then recognize and instrument, in the spirit of
   aspect-oriented programming", e.g. "instrument every operation on an
   inode's reference count".

   A rule is a little pattern over events:

     kinds [@ file-prefix] [obj=N] [value<N | value>N]

   where [kinds] is a comma-separated list of event kinds or [*].
   Examples:

     "ref-inc,ref-dec @ memfs"      every refcount op in memfs code
     "lock,unlock obj=3"            one particular lock
     "* value<0"                    anything whose value went negative
     "irq-disable,irq-enable"       interrupt balance only

   [compile] turns a rule into a predicate; [subscribe] attaches the
   rule to a dispatcher, forwarding only matching events to a sink. *)

type comparison = Lt of int | Gt of int

type t = {
  kinds : Ksim.Instrument.kind list option; (* None = every kind *)
  file_prefix : string option;
  obj : int option;
  value : comparison option;
  source : string;                          (* original rule text *)
}

exception Bad_rule of string

let kind_of_string = function
  | "lock" -> Ksim.Instrument.Lock
  | "unlock" -> Ksim.Instrument.Unlock
  | "ref-inc" -> Ksim.Instrument.Ref_inc
  | "ref-dec" -> Ksim.Instrument.Ref_dec
  | "irq-disable" -> Ksim.Instrument.Irq_disable
  | "irq-enable" -> Ksim.Instrument.Irq_enable
  | "sem-down" -> Ksim.Instrument.Sem_down
  | "sem-up" -> Ksim.Instrument.Sem_up
  | s -> raise (Bad_rule (Printf.sprintf "unknown event kind %S" s))

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Parse the rule language described above. *)
let parse source : t =
  match split_words source with
  | [] -> raise (Bad_rule "empty rule")
  | kinds_word :: rest ->
      let kinds =
        if kinds_word = "*" then None
        else
          Some
            (String.split_on_char ',' kinds_word
            |> List.filter (fun w -> w <> "")
            |> List.map kind_of_string)
      in
      let rule =
        ref { kinds; file_prefix = None; obj = None; value = None; source }
      in
      let expect_int what s =
        match int_of_string_opt s with
        | Some n -> n
        | None -> raise (Bad_rule (Printf.sprintf "%s expects a number, got %S" what s))
      in
      let rec eat = function
        | [] -> ()
        | "@" :: prefix :: rest ->
            rule := { !rule with file_prefix = Some prefix };
            eat rest
        | [ "@" ] -> raise (Bad_rule "@ expects a file prefix")
        | w :: rest when String.length w > 4 && String.sub w 0 4 = "obj=" ->
            rule :=
              { !rule with
                obj = Some (expect_int "obj=" (String.sub w 4 (String.length w - 4))) };
            eat rest
        | w :: rest when String.length w > 6 && String.sub w 0 6 = "value<" ->
            rule :=
              { !rule with
                value = Some (Lt (expect_int "value<" (String.sub w 6 (String.length w - 6)))) };
            eat rest
        | w :: rest when String.length w > 6 && String.sub w 0 6 = "value>" ->
            rule :=
              { !rule with
                value = Some (Gt (expect_int "value>" (String.sub w 6 (String.length w - 6)))) };
            eat rest
        | w :: _ -> raise (Bad_rule (Printf.sprintf "cannot parse %S" w))
      in
      eat rest;
      !rule

let matches t (ev : Ksim.Instrument.event) =
  (match t.kinds with
  | None -> true
  | Some ks -> List.mem ev.Ksim.Instrument.kind ks)
  && (match t.obj with None -> true | Some o -> ev.Ksim.Instrument.obj = o)
  && (match t.value with
     | None -> true
     | Some (Lt n) -> ev.Ksim.Instrument.value < n
     | Some (Gt n) -> ev.Ksim.Instrument.value > n)
  &&
  match t.file_prefix with
  | None -> true
  | Some p ->
      String.length ev.Ksim.Instrument.file >= String.length p
      && String.sub ev.Ksim.Instrument.file 0 (String.length p) = p

(* Compile a rule text into a predicate. *)
let compile source =
  let t = parse source in
  matches t

(* Attach a rule to a dispatcher: matching events reach [sink]. *)
let subscribe dispatcher ~rule ~name sink =
  let t = parse rule in
  Dispatcher.register dispatcher ~name (fun ev ->
      if matches t ev then sink ev)

let pp ppf t = Fmt.string ppf t.source
