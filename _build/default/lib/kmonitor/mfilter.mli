(** Rule-driven instrumentation selection — the §3.5 plan, implemented:
    a little pattern language over events, "in the spirit of
    aspect-oriented programming" ("instrument every operation on an
    inode's reference count").

    Rule syntax:
    {v
      kinds [@ file-prefix] [obj=N] [value<N | value>N]
    v}
    where [kinds] is a comma-separated list of event kinds or [*].
    Examples:
    {v
      ref-inc,ref-dec @ memfs      every refcount op in memfs code
      lock,unlock obj=3            one particular lock
      * value<0                    anything whose value went negative
    v} *)

type t

exception Bad_rule of string

(** Parse a rule.  @raise Bad_rule on syntax errors. *)
val parse : string -> t

val matches : t -> Ksim.Instrument.event -> bool

(** Parse a rule into a predicate.  @raise Bad_rule on syntax errors. *)
val compile : string -> Ksim.Instrument.event -> bool

(** Attach a rule to a dispatcher: only matching events reach [sink]. *)
val subscribe :
  Dispatcher.t ->
  rule:string ->
  name:string ->
  (Ksim.Instrument.event -> unit) ->
  unit

val pp : Format.formatter -> t -> unit
