(* A small direct-mapped TLB.  Kefence's page-per-allocation policy
   increases TLB contention (the paper cites it as one of the two causes
   of its 1.4% overhead); modelling the TLB lets E5 reproduce that. *)

type t = {
  slots : int array;             (* slot i holds a vpn, or -1 *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(slots = 64) () =
  if slots <= 0 then invalid_arg "Tlb.create: slots";
  { slots = Array.make slots (-1); hits = 0; misses = 0 }

let slot_of t vpn = vpn mod Array.length t.slots

(* Returns [true] on hit.  On miss, installs the translation. *)
let access t ~vpn =
  let s = slot_of t vpn in
  if t.slots.(s) = vpn then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.slots.(s) <- vpn;
    false
  end

let invalidate t ~vpn =
  let s = slot_of t vpn in
  if t.slots.(s) = vpn then t.slots.(s) <- -1

let flush t = Array.fill t.slots 0 (Array.length t.slots) (-1)
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
