(** Physical memory: a growable pool of fixed-size frames.

    Frames are allocated and freed by number; freed frames are recycled.
    Both the kernel and user address spaces draw from one pool, as on
    real hardware. *)

type t

(** [create ~page_size] makes an empty pool of [page_size]-byte frames.
    @raise Invalid_argument if [page_size <= 0]. *)
val create : page_size:int -> t

val page_size : t -> int

(** Number of currently allocated frames. *)
val live_frames : t -> int

(** Peak of {!live_frames} over the pool's lifetime. *)
val high_water : t -> int

(** Allocate a zero-filled frame; returns its frame number. *)
val alloc_frame : t -> int

(** Release a frame.  @raise Invalid_argument on double free. *)
val free_frame : t -> int -> unit

(** Direct access to a frame's backing bytes.
    @raise Invalid_argument if the frame is not allocated. *)
val frame : t -> int -> Bytes.t

(** [read t ~frame ~off ~len] copies bytes out of a frame.
    @raise Invalid_argument if the range leaves the frame. *)
val read : t -> frame:int -> off:int -> len:int -> Bytes.t

(** [write t ~frame ~off src] copies [src] into a frame.
    @raise Invalid_argument if the range leaves the frame. *)
val write : t -> frame:int -> off:int -> Bytes.t -> unit
