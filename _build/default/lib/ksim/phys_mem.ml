(* Physical memory: a growable pool of fixed-size frames. *)

type t = {
  page_size : int;
  mutable frames : Bytes.t option array; (* index = frame number *)
  mutable free : int list;               (* free frame numbers *)
  mutable next : int;                    (* next never-used frame *)
  mutable allocated : int;               (* live frame count *)
  mutable high_water : int;              (* peak live frame count *)
}

let create ~page_size =
  if page_size <= 0 then invalid_arg "Phys_mem.create: page_size";
  {
    page_size;
    frames = Array.make 64 None;
    free = [];
    next = 0;
    allocated = 0;
    high_water = 0;
  }

let page_size t = t.page_size
let live_frames t = t.allocated
let high_water t = t.high_water

let ensure_capacity t n =
  let len = Array.length t.frames in
  if n >= len then begin
    let frames = Array.make (max (2 * len) (n + 1)) None in
    Array.blit t.frames 0 frames 0 len;
    t.frames <- frames
  end

let alloc_frame t =
  let fno =
    match t.free with
    | fno :: rest ->
        t.free <- rest;
        fno
    | [] ->
        let fno = t.next in
        t.next <- t.next + 1;
        fno
  in
  ensure_capacity t fno;
  t.frames.(fno) <- Some (Bytes.make t.page_size '\000');
  t.allocated <- t.allocated + 1;
  if t.allocated > t.high_water then t.high_water <- t.allocated;
  fno

let free_frame t fno =
  match t.frames.(fno) with
  | None -> invalid_arg "Phys_mem.free_frame: double free"
  | Some _ ->
      t.frames.(fno) <- None;
      t.free <- fno :: t.free;
      t.allocated <- t.allocated - 1

let frame t fno =
  match t.frames.(fno) with
  | Some b -> b
  | None -> invalid_arg "Phys_mem.frame: not allocated"

let read t ~frame:fno ~off ~len =
  let b = frame t fno in
  if off < 0 || len < 0 || off + len > t.page_size then
    invalid_arg "Phys_mem.read: out of frame";
  Bytes.sub b off len

let write t ~frame:fno ~off src =
  let b = frame t fno in
  let len = Bytes.length src in
  if off < 0 || off + len > t.page_size then
    invalid_arg "Phys_mem.write: out of frame";
  Bytes.blit src 0 b off len
