(* Virtual cycle counter. All simulated costs are charged here so every
   experiment is deterministic and independent of host speed. *)

type t = { mutable cycles : int }

let create () = { cycles = 0 }
let now t = t.cycles

let advance t n =
  if n < 0 then invalid_arg "Sim_clock.advance: negative cost";
  t.cycles <- t.cycles + n

let reset t = t.cycles <- 0

(* Convert cycles to seconds under a nominal clock rate; used only for
   human-readable reports (the paper's testbed was a 1.7GHz P4). *)
let hz = 1_700_000_000.
let to_seconds t = float_of_int t.cycles /. hz
let cycles_to_seconds c = float_of_int c /. hz

let pp ppf t = Fmt.pf ppf "%d cycles (%.6f s)" t.cycles (to_seconds t)
