(* A single-level page table mapping virtual page numbers to PTEs. *)

type t = { entries : (int, Pte.t) Hashtbl.t }

let create () = { entries = Hashtbl.create 256 }

let map t ~vpn pte =
  if Hashtbl.mem t.entries vpn then
    invalid_arg (Printf.sprintf "Page_table.map: vpn %d already mapped" vpn);
  Hashtbl.replace t.entries vpn pte

let remap t ~vpn pte = Hashtbl.replace t.entries vpn pte

let unmap t ~vpn =
  if not (Hashtbl.mem t.entries vpn) then
    invalid_arg (Printf.sprintf "Page_table.unmap: vpn %d not mapped" vpn);
  Hashtbl.remove t.entries vpn

let lookup t ~vpn = Hashtbl.find_opt t.entries vpn
let mapped t = Hashtbl.length t.entries
let iter f t = Hashtbl.iter (fun vpn pte -> f ~vpn pte) t.entries
