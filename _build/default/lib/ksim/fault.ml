(* Hardware-fault model: page faults and segmentation violations. *)

type access = Read | Write | Execute

let pp_access ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Execute -> Fmt.string ppf "execute"

type reason =
  | Not_present          (* no PTE for the address *)
  | Protection           (* PTE present, permission denied *)
  | Guardian             (* access hit a Kefence guardian page *)
  | Segment_violation    (* access outside the active segment *)

let pp_reason ppf = function
  | Not_present -> Fmt.string ppf "not-present"
  | Protection -> Fmt.string ppf "protection"
  | Guardian -> Fmt.string ppf "guardian"
  | Segment_violation -> Fmt.string ppf "segment-violation"

type t = {
  addr : int;            (* faulting virtual address *)
  access : access;
  reason : reason;
  pc : string;           (* source location of the faulting "instruction" *)
}

let pp ppf f =
  Fmt.pf ppf "%a fault: %a at 0x%x (pc=%s)" pp_reason f.reason pp_access
    f.access f.addr f.pc

(* Raised when no fault handler resolves the fault: the simulated machine
   equivalent of an oops. *)
exception Fault of t

let raise_fault ~addr ~access ~reason ~pc =
  raise (Fault { addr; access; reason; pc })
