(* Page-table entry.  The [guardian] bit is what Kefence relies on: a
   guardian PTE is present in the page table but has both read and write
   permission disabled, so any access traps with reason [Guardian]. *)

type t = {
  mutable frame : int option; (* None for guardian PTEs: no backing frame *)
  mutable readable : bool;
  mutable writable : bool;
  mutable guardian : bool;
}

let normal ~frame ~writable = { frame = Some frame; readable = true; writable; guardian = false }

let guardian () = { frame = None; readable = false; writable = false; guardian = true }

let permits t (access : Fault.access) =
  match access with
  | Fault.Read -> t.readable
  | Fault.Write -> t.writable
  | Fault.Execute -> t.readable

let pp ppf t =
  Fmt.pf ppf "{frame=%a r=%b w=%b g=%b}"
    Fmt.(option ~none:(any "-") int)
    t.frame t.readable t.writable t.guardian
