(** Counting semaphore.

    In the single-threaded simulation a [down] on an empty semaphore can
    never be satisfied by another runner, so it raises {!Would_block};
    the monitors treat that as the deadlock signal. *)

type t

(** [create ~initial name] ([initial] defaults to 1).
    @raise Invalid_argument if [initial < 0]. *)
val create : ?initial:int -> string -> t

exception Would_block of string

(** P operation; emits a [Sem_down] event.
    @raise Would_block when the count is zero. *)
val down : ?file:string -> ?line:int -> t -> unit

(** V operation; emits a [Sem_up] event. *)
val up : ?file:string -> ?line:int -> t -> unit

(** Non-raising P: [false] when the count is zero. *)
val try_down : t -> bool

val count : t -> int
val id : t -> int
