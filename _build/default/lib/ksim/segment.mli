(** x86-style segmentation: a descriptor with base, limit and
    permissions.

    Cosy's strong isolation mode places a user-supplied function (or just
    its data) in a segment of its own; any reference outside the segment
    raises a protection fault — the property the paper's §2.3 safety
    argument relies on. *)

type t = {
  name : string;
  base : int;
  limit : int;  (** size in bytes; valid range is [[base, base+limit)] *)
  readable : bool;
  writable : bool;
  executable : bool;
}

(** Build a descriptor.  Permissions default to read/write, no execute.
    @raise Invalid_argument on negative base or limit. *)
val make :
  name:string ->
  base:int ->
  limit:int ->
  ?readable:bool ->
  ?writable:bool ->
  ?executable:bool ->
  unit ->
  t

(** The flat kernel segment: every address, all permissions. *)
val flat : t

(** Is the byte range [[addr, addr+len)] inside the segment? *)
val contains : t -> addr:int -> len:int -> bool

(** Does the segment allow this kind of access at all? *)
val permits : t -> Fault.access -> bool

(** Enforce the segment on an access.
    @raise Fault.Fault with reason [Segment_violation] on escape. *)
val check : t -> addr:int -> len:int -> access:Fault.access -> pc:string -> unit

val pp : Format.formatter -> t -> unit
