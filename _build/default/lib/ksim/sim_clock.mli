(** Virtual cycle counter.

    All simulated costs are charged here, so every experiment is
    deterministic and independent of host speed.  Reports can convert
    cycles to wall-clock seconds under the nominal 1.7 GHz rate of the
    paper's P4 testbed. *)

type t

(** A fresh clock at cycle 0. *)
val create : unit -> t

(** Current cycle count. *)
val now : t -> int

(** Advance by [n] cycles.  @raise Invalid_argument if [n] is negative. *)
val advance : t -> int -> unit

(** Reset to cycle 0. *)
val reset : t -> unit

(** Nominal clock rate used by {!to_seconds}. *)
val hz : float

(** Seconds elapsed on this clock at the nominal rate. *)
val to_seconds : t -> float

(** Convert a cycle count to seconds at the nominal rate. *)
val cycles_to_seconds : int -> float

val pp : Format.formatter -> t -> unit
