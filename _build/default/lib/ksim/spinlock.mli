(** Spinlock with instrumentation hooks.

    The simulation is single-threaded, so a contended lock indicates a
    locking bug rather than a wait: recursive acquisition and unlocking a
    free lock raise {!Deadlock}.  Every acquire/release emits an
    {!Ksim.Instrument.event}, which is how experiment E6 counts
    [dcache_lock] acquisitions. *)

type t

val create : string -> t

exception Deadlock of string

(** Acquire.  [file]/[line] flow into the instrumentation event; [pid]
    identifies the holder for recursion detection.
    @raise Deadlock on recursive acquisition by the same [pid]. *)
val lock : ?file:string -> ?line:int -> ?pid:int -> t -> unit

(** Release.  @raise Deadlock if the lock is not held. *)
val unlock : ?file:string -> ?line:int -> t -> unit

(** [with_lock t f] runs [f] under the lock, releasing on exception. *)
val with_lock : ?file:string -> ?line:int -> ?pid:int -> t -> (unit -> 'a) -> 'a

val is_locked : t -> bool

(** Total acquisitions over the lock's lifetime. *)
val acquisitions : t -> int

(** Instrumentation identity of this lock (the [obj] field of its events). *)
val id : t -> int

val name : t -> string
