(** A small direct-mapped TLB model.

    Kefence's page-per-allocation policy increases TLB contention — the
    paper names it as one of the two causes of its 1.4% overhead — so the
    address spaces charge a miss cost through this model (experiment E5
    reports the miss counts). *)

type t

(** [create ~slots ()] makes a direct-mapped TLB ([slots] defaults to 64).
    @raise Invalid_argument if [slots <= 0]. *)
val create : ?slots:int -> unit -> t

(** [access t ~vpn] returns [true] on hit; on miss the translation is
    installed (possibly evicting a conflicting entry). *)
val access : t -> vpn:int -> bool

(** Drop the entry for [vpn] if present (used on unmap). *)
val invalidate : t -> vpn:int -> unit

(** Drop everything (context switch with address-space change). *)
val flush : t -> unit

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
