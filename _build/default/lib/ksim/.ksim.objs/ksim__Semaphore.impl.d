lib/ksim/semaphore.ml: Instrument
