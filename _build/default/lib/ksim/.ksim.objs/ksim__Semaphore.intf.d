lib/ksim/semaphore.mli:
