lib/ksim/kernel.ml: Address_space Bytes Cost_model Instrument Kalloc Kproc Phys_mem Scheduler Sim_clock
