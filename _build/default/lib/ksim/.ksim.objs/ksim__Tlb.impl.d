lib/ksim/tlb.ml: Array
