lib/ksim/spinlock.mli:
