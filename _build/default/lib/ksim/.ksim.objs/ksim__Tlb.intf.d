lib/ksim/tlb.mli:
