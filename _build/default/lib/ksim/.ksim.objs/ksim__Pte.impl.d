lib/ksim/pte.ml: Fault Fmt
