lib/ksim/kproc.ml: Fmt Hashtbl
