lib/ksim/phys_mem.mli: Bytes
