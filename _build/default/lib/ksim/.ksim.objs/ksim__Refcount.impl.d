lib/ksim/refcount.ml: Instrument Printf
