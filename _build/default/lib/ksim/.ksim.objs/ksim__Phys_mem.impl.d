lib/ksim/phys_mem.ml: Array Bytes
