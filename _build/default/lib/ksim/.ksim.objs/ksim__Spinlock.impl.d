lib/ksim/spinlock.ml: Instrument Printf
