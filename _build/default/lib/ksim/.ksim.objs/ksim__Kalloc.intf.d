lib/ksim/kalloc.mli: Address_space Cost_model Sim_clock
