lib/ksim/page_table.ml: Hashtbl Printf Pte
