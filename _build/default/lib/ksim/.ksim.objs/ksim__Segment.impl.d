lib/ksim/segment.ml: Fault Fmt
