lib/ksim/instrument.ml: Fmt Printf
