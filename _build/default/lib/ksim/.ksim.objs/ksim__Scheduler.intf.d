lib/ksim/scheduler.mli: Cost_model Kproc Sim_clock
