lib/ksim/scheduler.ml: Cost_model Kproc List Sim_clock
