lib/ksim/cost_model.ml:
