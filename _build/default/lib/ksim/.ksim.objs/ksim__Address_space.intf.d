lib/ksim/address_space.mli: Bytes Cost_model Fault Page_table Phys_mem Segment Sim_clock Tlb
