lib/ksim/kernel.mli: Address_space Bytes Cost_model Kalloc Kproc Scheduler Sim_clock
