lib/ksim/kalloc.ml: Address_space Cost_model Hashtbl Page_table Sim_clock Tlb
