lib/ksim/refcount.mli:
