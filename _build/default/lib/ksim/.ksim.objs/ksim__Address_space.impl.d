lib/ksim/address_space.ml: Bytes Char Cost_model Fault Int64 Page_table Phys_mem Pte Segment Sim_clock Tlb
