lib/ksim/segment.mli: Fault Format
