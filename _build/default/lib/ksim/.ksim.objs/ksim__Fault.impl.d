lib/ksim/fault.ml: Fmt
