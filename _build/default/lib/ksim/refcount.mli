(** Reference counter with instrumentation and underflow detection — the
    "incremented and decremented symmetrically" invariant the paper's
    monitors check (§3.3). *)

type t

(** [create ~initial name] ([initial] defaults to 1).
    @raise Invalid_argument if [initial < 0]. *)
val create : ?initial:int -> string -> t

exception Underflow of string

(** Increment; emits a [Ref_inc] instrumentation event. *)
val get : ?file:string -> ?line:int -> t -> unit

(** Decrement; emits a [Ref_dec] event.  Returns [true] when the count
    reached zero (time to free the object).
    @raise Underflow on put of a zero count. *)
val put : ?file:string -> ?line:int -> t -> bool

val count : t -> int

(** Instrumentation identity (the [obj] field of its events). *)
val id : t -> int

val name : t -> string
