(* Spinlock with instrumentation hooks.  The simulation is single-
   threaded, so a contended lock indicates a locking bug rather than a
   wait; recursive acquisition raises.  Every acquire/release emits an
   Instrument event, which is how the paper's dcache_lock experiment
   (E6) counts 8,805 hits per second. *)

type t = {
  id : int;
  name : string;
  mutable locked : bool;
  mutable holder : int;        (* pid, or -1 *)
  mutable acquisitions : int;
}

let next_id = ref 0

let create name =
  incr next_id;
  { id = !next_id; name; locked = false; holder = -1; acquisitions = 0 }

exception Deadlock of string

let lock ?(file = "<unknown>") ?(line = 0) ?(pid = 0) t =
  if t.locked && t.holder = pid then
    raise (Deadlock (Printf.sprintf "%s: recursive lock by pid %d" t.name pid));
  (* single-threaded simulation: the lock is always free here *)
  t.locked <- true;
  t.holder <- pid;
  t.acquisitions <- t.acquisitions + 1;
  Instrument.emit ~obj:t.id ~value:1 ~kind:Instrument.Lock ~file ~line

let unlock ?(file = "<unknown>") ?(line = 0) t =
  if not t.locked then
    raise (Deadlock (Printf.sprintf "%s: unlock of free lock" t.name));
  t.locked <- false;
  t.holder <- -1;
  Instrument.emit ~obj:t.id ~value:0 ~kind:Instrument.Unlock ~file ~line

let with_lock ?file ?line ?pid t f =
  lock ?file ?line ?pid t;
  match f () with
  | v ->
      unlock ?file ?line t;
      v
  | exception e ->
      unlock ?file ?line t;
      raise e

let is_locked t = t.locked
let acquisitions t = t.acquisitions
let id t = t.id
let name t = t.name
