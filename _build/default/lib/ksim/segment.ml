(* x86-style segmentation: a descriptor with base, limit, and permissions.
   Cosy's strong isolation mode places a user-supplied function (or just
   its data) in a segment of its own; any reference outside the segment
   raises a protection fault, which is exactly the property the paper's
   safety argument relies on. *)

type t = {
  name : string;
  base : int;
  limit : int;                   (* size in bytes; valid range [base, base+limit) *)
  readable : bool;
  writable : bool;
  executable : bool;
}

let make ~name ~base ~limit ?(readable = true) ?(writable = true)
    ?(executable = false) () =
  if base < 0 || limit < 0 then invalid_arg "Segment.make";
  { name; base; limit; readable; writable; executable }

(* The flat kernel segment: everything is reachable. *)
let flat = make ~name:"kernel-flat" ~base:0 ~limit:max_int ~executable:true ()

let contains t ~addr ~len =
  len >= 0 && addr >= t.base && addr + len <= t.base + t.limit

let permits t (access : Fault.access) =
  match access with
  | Fault.Read -> t.readable
  | Fault.Write -> t.writable
  | Fault.Execute -> t.executable

let check t ~addr ~len ~access ~pc =
  if not (contains t ~addr ~len && permits t access) then
    Fault.raise_fault ~addr ~access ~reason:Fault.Segment_violation ~pc

let pp ppf t =
  Fmt.pf ppf "%s[0x%x,+0x%x r=%b w=%b x=%b]" t.name t.base t.limit t.readable
    t.writable t.executable
