lib/kgcc/splay.ml:
