lib/kgcc/splay.mli:
