lib/kgcc/instrument.ml: Ast List Minic Option Typecheck
