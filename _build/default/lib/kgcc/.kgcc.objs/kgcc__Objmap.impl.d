lib/kgcc/objmap.ml: Fmt Hashtbl Splay
