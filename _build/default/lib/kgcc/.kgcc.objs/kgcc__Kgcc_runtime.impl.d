lib/kgcc/kgcc_runtime.ml: Hashtbl Ksim Minic Objmap Option Printf Splay String
