lib/kgcc/check_opt.ml: Ast Fmt Hashtbl Instrument List Minic Option Pretty String
