lib/kgcc/instrument.mli: Minic
