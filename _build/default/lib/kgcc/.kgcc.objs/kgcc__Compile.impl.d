lib/kgcc/compile.ml: Check_opt Fmt Instrument Minic
