lib/kgcc/check_opt.mli: Minic
