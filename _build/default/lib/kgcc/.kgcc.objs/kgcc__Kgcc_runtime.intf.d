lib/kgcc/kgcc_runtime.mli: Ksim Minic Objmap
