lib/kgcc/compile.mli: Format Instrument Minic
