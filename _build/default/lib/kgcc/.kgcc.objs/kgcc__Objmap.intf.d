lib/kgcc/objmap.mli: Format Splay
