(** The KGCC object map: every live memory object plus the paper's
    out-of-bounds peer objects.

    §3.4: "Whenever an out-of-bounds address is created by arithmetic on
    an object O, we insert a special out-of-bounds (OOB) object at the
    new address into the address map, and make it a peer of object O.
    Our KGCC runtime permits only pointer arithmetic on OOB objects,
    which can either generate another peer or return to O's bounds." *)

type kind = Stack | Heap | Global | Literal | Oob_peer

val pp_kind : Format.formatter -> kind -> unit

type obj = { kind : kind; name : string; peer_base : int option }

type t

val create : unit -> t

(** The underlying splay-tree address map (for statistics). *)
val splay : t -> obj Splay.t

val register : t -> base:int -> size:int -> kind:kind -> name:string -> unit
val unregister : t -> base:int -> unit

type status =
  | In_bounds of { base : int; size : int; obj : obj }
  | Oob of { peer_base : int }
  | Unknown

val classify : t -> int -> status

(** Record that arithmetic on the object at [obj_base] produced the
    out-of-bounds address [addr]. *)
val make_peer : t -> obj_base:int -> addr:int -> unit

val drop_peer : t -> addr:int -> unit

(** The base object a (possibly OOB) pointer belongs to. *)
val owner : t -> int -> (int * int * obj) option

val live_objects : t -> int
val live_peers : t -> int
val registered : t -> int
val oob_created : t -> int
