(** Check-elimination optimization (§3.4): "common subexpression
    elimination allowed us to reduce the number of checks inserted by
    more than half for typical kernel code."

    Removes a check whose fingerprint (checked address expression + size,
    ignoring the source line) is already established on the same
    straight-line path.  A bounds check's validity depends only on object
    extents, never on stored values, so plain stores cannot invalidate an
    available check; calls that may allocate or free (anything beyond the
    check functions and pure builtins) conservatively invalidate
    everything, loop bodies start from an empty state, and branch states
    rejoin conservatively. *)

(** Returns the optimized program and the number of checks removed. *)
val program : Minic.Ast.program -> Minic.Ast.program * int
