(** The KGCC instrumentation pass (§3.4): "All operations that can
    potentially cause bounds violations, like pointer arithmetic, string
    operations, memory copying, etc. are preceded by checks.  The checks
    are simply function calls to the BCC runtime environment."

    Inserted calls (see {!Kgcc_runtime} for their semantics):
    - dereferences and indexing -> [__kgcc_check_deref];
    - pointer arithmetic on pure base expressions -> [__kgcc_check_arith];
    - memcpy/memset -> [__kgcc_check_range]; strcpy -> [__kgcc_strcpy].

    Stack objects whose addresses are never taken live in registers, so
    no pointer to them can exist and they need no checks — KGCC's first
    check-elimination heuristic falls out of the representation. *)

(** Which check classes to insert. *)
type options = {
  check_deref : bool;
  check_arith : bool;
  check_ranges : bool;
}

val all_checks : options

(** Counts of inserted checks, by class. *)
type counters = {
  mutable deref_checks : int;
  mutable arith_checks : int;
  mutable range_checks : int;
}

val total : counters -> int

(** Names of the pure check functions (consulted by the CSE pass). *)
val check_fns : string list

val is_check_fn : string -> bool

(** Instrument a whole program (typechecks it first for the pointer-type
    annotations). *)
val program : ?opts:options -> Minic.Ast.program -> Minic.Ast.program * counters
