(** The KGCC runtime: the check functions instrumented code calls, and
    the glue that keeps the object map synchronized with a mini-C
    interpreter's allocations.

    Checks follow the paper's §3.4 semantics: dereferences must land
    inside a live object; pointer arithmetic may wander out of bounds
    but the result becomes an out-of-bounds peer object that cannot be
    dereferenced until arithmetic brings it back; range operations
    (memcpy/memset) must fit in one object; string copies move into the
    runtime where the length is known.

    Dynamic deinstrumentation (§3.5, the E9 ablation): each check site
    carries an execution counter; once a site has run cleanly
    [deinstrument_after] times its checks short-circuit. *)

exception Bounds_violation of { addr : int; line : int; detail : string }

type t

val create :
  ?deinstrument_after:int ->
  clock:Ksim.Sim_clock.t ->
  cost:Ksim.Cost_model.t ->
  unit ->
  t

val objmap : t -> Objmap.t
val set_deinstrument_after : t -> int option -> unit

(** [check_deref t p size line]: [p] must point into a live object with
    [size] bytes of room.  Returns [p].  @raise Bounds_violation. *)
val check_deref : t -> int -> int -> int -> int

(** [check_arith t p result line]: arithmetic on [p] produced [result];
    in-bounds results pass, out-of-bounds ones become OOB peers.
    Returns [result].
    @raise Bounds_violation for arithmetic on unknown pointers. *)
val check_arith : t -> int -> int -> int -> int

(** [check_range t p len line]: a [len]-byte operation starting at [p]
    must stay inside one object.  Returns [p].  @raise Bounds_violation. *)
val check_range : t -> int -> int -> int -> int

(** [checked_strcpy t interp dst src line]: length-aware strcpy in the
    runtime; checks then performs the copy.  Returns [dst]. *)
val checked_strcpy : t -> Minic.Interp.t -> int -> int -> int -> int

(** Subscribe to the interpreter's allocation events and register the
    [__kgcc_*] check externs.  Attach before loading the program so the
    object map sees every allocation. *)
val attach : t -> Minic.Interp.t -> unit

type stats = {
  checks_executed : int;
  checks_skipped : int;     (** by dynamic deinstrumentation *)
  violations : int;
  live_objects : int;
  oob_peers_created : int;
  splay_rotations : int;
  splay_lookups : int;
}

val stats : t -> stats
