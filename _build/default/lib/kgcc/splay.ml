(* Splay tree mapping address ranges to object metadata — the BCC/KGCC
   runtime's "map of currently allocated memory in a splay tree; the tree
   is consulted before any memory operation" (§3.4).  Splaying brings the
   most recently touched object to the root, which is why the structure
   is nearly optimal under reference locality; the [rotations] counter
   lets benchmarks expose that behaviour (E8). *)

type 'a tree =
  | Leaf
  | Node of 'a tree * entry * 'a meta_box * 'a tree

and entry = { base : int; size : int }
and 'a meta_box = { mutable meta : 'a }

type 'a t = {
  mutable root : 'a tree;
  mutable count : int;
  mutable rotations : int;
  mutable lookups : int;
}

let create () = { root = Leaf; count = 0; rotations = 0; lookups = 0 }

let size t = t.count
let rotations t = t.rotations
let lookups t = t.lookups

(* Textbook functional splay: brings the node with key [key] — or the
   last node on its search path — to the root. *)
let rec splay t key tree =
  match tree with
  | Leaf -> Leaf
  | Node (l, x, xm, r) ->
      if key = x.base then tree
      else if key < x.base then (
        match l with
        | Leaf -> tree
        | Node (ll, y, ym, lr) ->
            if key = y.base then begin
              t.rotations <- t.rotations + 1;
              Node (ll, y, ym, Node (lr, x, xm, r))
            end
            else if key < y.base then (
              match splay t key ll with
              | Leaf ->
                  t.rotations <- t.rotations + 1;
                  Node (ll, y, ym, Node (lr, x, xm, r))
              | Node (lll, z, zm, llr) ->
                  t.rotations <- t.rotations + 2;
                  Node (lll, z, zm, Node (llr, y, ym, Node (lr, x, xm, r))))
            else
              match splay t key lr with
              | Leaf ->
                  t.rotations <- t.rotations + 1;
                  Node (ll, y, ym, Node (lr, x, xm, r))
              | Node (lrl, z, zm, lrr) ->
                  t.rotations <- t.rotations + 2;
                  Node (Node (ll, y, ym, lrl), z, zm, Node (lrr, x, xm, r)))
      else
        match r with
        | Leaf -> tree
        | Node (rl, y, ym, rr) ->
            if key = y.base then begin
              t.rotations <- t.rotations + 1;
              Node (Node (l, x, xm, rl), y, ym, rr)
            end
            else if key > y.base then (
              match splay t key rr with
              | Leaf ->
                  t.rotations <- t.rotations + 1;
                  Node (Node (l, x, xm, rl), y, ym, rr)
              | Node (rrl, z, zm, rrr) ->
                  t.rotations <- t.rotations + 2;
                  Node (Node (Node (l, x, xm, rl), y, ym, rrl), z, zm, rrr))
            else
              match splay t key rl with
              | Leaf ->
                  t.rotations <- t.rotations + 1;
                  Node (Node (l, x, xm, rl), y, ym, rr)
              | Node (rll, z, zm, rlr) ->
                  t.rotations <- t.rotations + 2;
                  Node (Node (l, x, xm, rll), z, zm, Node (rlr, y, ym, rr))

let do_splay t key = t.root <- splay t key t.root

let insert t ~base ~size ~meta =
  do_splay t base;
  match t.root with
  | Leaf ->
      t.root <- Node (Leaf, { base; size }, { meta }, Leaf);
      t.count <- t.count + 1
  | Node (l, x, xm, r) ->
      if x.base = base then begin
        (* same base re-registered (stack slot reuse): replace in place *)
        xm.meta <- meta;
        t.root <- Node (l, { base; size }, xm, r)
      end
      else begin
        t.count <- t.count + 1;
        if base < x.base then
          t.root <-
            Node (l, { base; size }, { meta }, Node (Leaf, x, xm, r))
        else
          t.root <-
            Node (Node (l, x, xm, Leaf), { base; size }, { meta }, r)
      end

let rec max_entry = function
  | Leaf -> None
  | Node (_, x, xm, Leaf) -> Some (x, xm)
  | Node (_, _, _, r) -> max_entry r

let remove t ~base =
  do_splay t base;
  match t.root with
  | Node (l, x, _, r) when x.base = base ->
      t.count <- t.count - 1;
      (match l with
      | Leaf -> t.root <- r
      | _ -> (
          match max_entry l with
          | None -> t.root <- r
          | Some (m, _) -> (
              match splay t m.base l with
              | Node (l', x', xm', Leaf) -> t.root <- Node (l', x', xm', r)
              | Node (_, _, _, Node _) | Leaf -> assert false)));
      true
  | Node _ | Leaf -> false

let rec pred_in addr = function
  | Leaf -> None
  | Node (l, x, xm, r) ->
      if x.base <= addr then (
        match pred_in addr r with
        | Some _ as res -> res
        | None -> Some (x, xm))
      else pred_in addr l

(* Find the object whose range contains [addr], splaying on success. *)
let find_containing t addr =
  t.lookups <- t.lookups + 1;
  do_splay t addr;
  match t.root with
  | Node (_, x, xm, _) when x.base <= addr && addr < x.base + x.size ->
      Some (x.base, x.size, xm.meta)
  | root -> (
      match pred_in addr root with
      | Some (x, xm) when x.base <= addr && addr < x.base + x.size ->
          do_splay t x.base;
          Some (x.base, x.size, xm.meta)
      | Some _ | None -> None)

let find_exact t base =
  t.lookups <- t.lookups + 1;
  do_splay t base;
  match t.root with
  | Node (_, x, xm, _) when x.base = base -> Some (x.size, xm.meta)
  | Node _ | Leaf -> None

let rec fold_tree f acc = function
  | Leaf -> acc
  | Node (l, x, xm, r) ->
      fold_tree f (f (fold_tree f acc l) (x.base, x.size, xm.meta)) r

let fold f acc t = fold_tree f acc t.root

let reset_stats t =
  t.rotations <- 0;
  t.lookups <- 0
