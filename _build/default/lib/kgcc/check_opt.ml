(* Check-elimination optimization (§3.4): "common subexpression
   elimination allowed us to reduce the number of checks inserted by more
   than half for typical kernel code."

   This pass walks instrumented code and removes a check whose
   fingerprint (checked address expression + size, ignoring the source
   line) has already been established on the same straight-line path.
   A bounds check's validity depends only on object *extents*, never on
   stored values, so ordinary stores cannot invalidate an available
   check.  Invalidations are conservative:

   - a call to any function other than the check functions and the pure
     builtins may allocate or free objects: all checks are invalidated;
   - 'free' in particular definitely invalidates;
   - conditional/loop sub-blocks are optimized with their own entry state
     (empty for loop bodies, the current state for if branches) and the
     state is rejoined conservatively afterwards. *)

open Minic

(* Builtins that cannot change the object map. *)
let pure_fns =
  [ "strlen"; "strcmp"; "print_int"; "print_str"; "putchar"; "memcpy";
    "memset"; "strcpy"; "__kgcc_strcpy" ]

let invalidating_call fn =
  (not (Instrument.is_check_fn fn)) && not (List.mem fn pure_fns)

type state = {
  mutable available : (string, unit) Hashtbl.t;
  mutable removed : int;
}

let fingerprint args =
  (* drop the trailing line-number argument *)
  let rec drop_last = function
    | [] | [ _ ] -> []
    | x :: rest -> x :: drop_last rest
  in
  String.concat "#" (List.map (Fmt.str "%a" Pretty.pp_expr) (drop_last args))

let clear st = Hashtbl.reset st.available

(* Does this expression contain a call that can change the object map? *)
let rec has_invalidating_call (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Call (fn, args) ->
      invalidating_call fn || List.exists has_invalidating_call args
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Var _
  | Ast.Sizeof_ty _ ->
      false
  | Ast.Unop (_, a) | Ast.Deref a | Ast.Addr_of a | Ast.Cast (_, a) ->
      has_invalidating_call a
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Index (a, b) ->
      has_invalidating_call a || has_invalidating_call b
  | Ast.Cond (a, b, c) ->
      has_invalidating_call a || has_invalidating_call b
      || has_invalidating_call c

let rec opt_expr st (e : Ast.expr) : Ast.expr =
  let mk n = { e with Ast.e = n } in
  match e.Ast.e with
  | Ast.Call (fn, args) when Instrument.is_check_fn fn -> (
      let args = List.map (opt_expr st) args in
      let fp = fn ^ ":" ^ fingerprint args in
      if Hashtbl.mem st.available fp then begin
        (* redundant: the checked value is the first argument *)
        st.removed <- st.removed + 1;
        match args with p :: _ -> p | [] -> mk (Ast.Call (fn, args))
      end
      else begin
        Hashtbl.replace st.available fp ();
        mk (Ast.Call (fn, args))
      end)
  | Ast.Call (fn, args) ->
      let args = List.map (opt_expr st) args in
      if invalidating_call fn then clear st;
      mk (Ast.Call (fn, args))
  | Ast.Assign (lhs, rhs) ->
      (* evaluate rhs first (it may contain checks), then lhs *)
      let rhs = opt_expr st rhs in
      let lhs = opt_expr st lhs in
      (* an assignment to a variable that appears in available
         fingerprints changes what those addresses mean *)
      (match lhs.Ast.e with
      | Ast.Var v | Ast.Deref { Ast.e = Ast.Var v; _ } ->
          let stale =
            Hashtbl.fold
              (fun fp () acc ->
                (* cheap containment test on the fingerprint string *)
                let re = v in
                let contains s sub =
                  let n = String.length s and m = String.length sub in
                  let rec go i =
                    i + m <= n && (String.sub s i m = sub || go (i + 1))
                  in
                  m > 0 && go 0
                in
                if contains fp re then fp :: acc else acc)
              st.available []
          in
          List.iter (Hashtbl.remove st.available) stale
      | _ -> clear st);
      mk (Ast.Assign (lhs, rhs))
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Var _
  | Ast.Sizeof_ty _ ->
      e
  | Ast.Unop (op, a) -> mk (Ast.Unop (op, opt_expr st a))
  | Ast.Deref a -> mk (Ast.Deref (opt_expr st a))
  | Ast.Addr_of a -> mk (Ast.Addr_of (opt_expr st a))
  | Ast.Cast (ty, a) -> mk (Ast.Cast (ty, opt_expr st a))
  | Ast.Binop (op, a, b) ->
      let a = opt_expr st a in
      let b = opt_expr st b in
      mk (Ast.Binop (op, a, b))
  | Ast.Index (a, b) ->
      let a = opt_expr st a in
      let b = opt_expr st b in
      mk (Ast.Index (a, b))
  | Ast.Cond (a, b, c) ->
      let a = opt_expr st a in
      (* branches may or may not execute: give them throwaway copies *)
      let b = opt_branch st b in
      let c = opt_branch st c in
      mk (Ast.Cond (a, b, c))

and opt_branch st e =
  let saved = Hashtbl.copy st.available in
  let e = opt_expr st e in
  st.available <- saved;
  e

and opt_stmt st (s : Ast.stmt) : Ast.stmt =
  let mk n = { s with Ast.s = n } in
  match s.Ast.s with
  | Ast.Sexpr e -> mk (Ast.Sexpr (opt_expr st e))
  | Ast.Sdecl (ty, name, init) ->
      mk (Ast.Sdecl (ty, name, Option.map (opt_expr st) init))
  | Ast.Sif (cond, a, b) ->
      let cond = opt_expr st cond in
      let saved = Hashtbl.copy st.available in
      let a = List.map (opt_stmt st) a in
      st.available <- Hashtbl.copy saved;
      let b = List.map (opt_stmt st) b in
      (* join: keep only what held before the branches *)
      st.available <- saved;
      if List.exists stmt_invalidates a || List.exists stmt_invalidates b then
        clear st;
      mk (Ast.Sif (cond, a, b))
  | Ast.Swhile (cond, body) ->
      (* loop entry state is unknown at the back edge: start empty *)
      let saved = Hashtbl.copy st.available in
      st.available <- Hashtbl.create 16;
      let cond = opt_expr st cond in
      let body = List.map (opt_stmt st) body in
      st.available <- saved;
      if
        has_invalidating_call cond || List.exists stmt_invalidates body
      then clear st;
      mk (Ast.Swhile (cond, body))
  | Ast.Sfor (cond, body, step) ->
      let saved = Hashtbl.copy st.available in
      st.available <- Hashtbl.create 16;
      let cond = opt_expr st cond in
      let body = List.map (opt_stmt st) body in
      let step = List.map (opt_stmt st) step in
      st.available <- saved;
      if
        has_invalidating_call cond
        || List.exists stmt_invalidates body
        || List.exists stmt_invalidates step
      then clear st;
      mk (Ast.Sfor (cond, body, step))
  | Ast.Sreturn e -> mk (Ast.Sreturn (Option.map (opt_expr st) e))
  | Ast.Sblock body -> mk (Ast.Sblock (List.map (opt_stmt st) body))
  | Ast.Sbreak | Ast.Scontinue | Ast.Scosy_start | Ast.Scosy_end -> s

and stmt_invalidates (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Sexpr e | Ast.Sdecl (_, _, Some e) | Ast.Sreturn (Some e) ->
      has_invalidating_call e
  | Ast.Sdecl (_, _, None) | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue
  | Ast.Scosy_start | Ast.Scosy_end ->
      false
  | Ast.Sif (c, a, b) ->
      has_invalidating_call c || List.exists stmt_invalidates a
      || List.exists stmt_invalidates b
  | Ast.Swhile (c, body) ->
      has_invalidating_call c || List.exists stmt_invalidates body
  | Ast.Sfor (c, body, step) ->
      has_invalidating_call c
      || List.exists stmt_invalidates body
      || List.exists stmt_invalidates step
  | Ast.Sblock body -> List.exists stmt_invalidates body

(* Run check-CSE over a program; returns the optimized program and the
   number of checks removed. *)
let program (p : Ast.program) : Ast.program * int =
  let removed = ref 0 in
  let funcs =
    List.map
      (fun f ->
        let st = { available = Hashtbl.create 16; removed = 0 } in
        let body = List.map (opt_stmt st) f.Ast.body in
        removed := !removed + st.removed;
        { f with Ast.body })
      p.Ast.funcs
  in
  (({ p with Ast.funcs } : Ast.program), !removed)
