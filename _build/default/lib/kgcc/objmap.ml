(* The KGCC object map: every live memory object (global, heap, literal,
   and addressable stack object), plus the paper's out-of-bounds *peer*
   objects.

   §3.4: "Whenever an out-of-bounds address is created by arithmetic on
   an object O, we insert a special out-of-bounds (OOB) object at the new
   address into the address map, and make it a peer of object O.  Our
   KGCC runtime permits only pointer arithmetic on OOB objects, which can
   either generate another peer or return to O's bounds." *)

type kind = Stack | Heap | Global | Literal | Oob_peer

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Stack -> "stack"
    | Heap -> "heap"
    | Global -> "global"
    | Literal -> "literal"
    | Oob_peer -> "oob-peer")

type obj = { kind : kind; name : string; peer_base : int option }

type t = {
  map : obj Splay.t;
  (* OOB peers are zero-sized, so they live beside the range map *)
  peers : (int, obj) Hashtbl.t;   (* oob address -> peer object *)
  mutable registered : int;
  mutable oob_created : int;
}

let create () =
  { map = Splay.create (); peers = Hashtbl.create 64; registered = 0; oob_created = 0 }

let splay t = t.map

let register t ~base ~size ~kind ~name =
  t.registered <- t.registered + 1;
  Splay.insert t.map ~base ~size ~meta:{ kind; name; peer_base = None }

let unregister t ~base = ignore (Splay.remove t.map ~base)

type status =
  | In_bounds of { base : int; size : int; obj : obj }
  | Oob of { peer_base : int }
  | Unknown

(* Classify an address. *)
let classify t addr =
  match Splay.find_containing t.map addr with
  | Some (base, size, obj) -> In_bounds { base; size; obj }
  | None -> (
      match Hashtbl.find_opt t.peers addr with
      | Some { peer_base = Some b; _ } -> Oob { peer_base = b }
      | Some _ | None -> Unknown)

(* Record that pointer arithmetic on the object at [obj_base] produced
   the out-of-bounds address [addr]. *)
let make_peer t ~obj_base ~addr =
  t.oob_created <- t.oob_created + 1;
  Hashtbl.replace t.peers addr
    { kind = Oob_peer; name = "<oob>"; peer_base = Some obj_base }

let drop_peer t ~addr = Hashtbl.remove t.peers addr

(* The base object a (possibly OOB) pointer is associated with; pointer
   arithmetic is legal only relative to this object. *)
let owner t addr =
  match classify t addr with
  | In_bounds { base; size; obj } -> Some (base, size, obj)
  | Oob { peer_base } -> (
      match Splay.find_exact t.map peer_base with
      | Some (size, obj) -> Some (peer_base, size, obj)
      | None -> None)
  | Unknown -> None

let live_objects t = Splay.size t.map
let live_peers t = Hashtbl.length t.peers
let registered t = t.registered
let oob_created t = t.oob_created
