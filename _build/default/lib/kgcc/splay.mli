(** Splay tree mapping address ranges to object metadata — the BCC/KGCC
    runtime's "map of currently allocated memory in a splay tree; the
    tree is consulted before any memory operation" (§3.4).

    Splaying brings the most recently touched object to the root, so the
    structure is nearly optimal under reference locality; the rotation
    counter lets the E8 ablation expose exactly that. *)

type 'a t

val create : unit -> 'a t

(** Live entries. *)
val size : 'a t -> int

(** Total single rotations performed (a work metric). *)
val rotations : 'a t -> int

(** Total containing/exact queries. *)
val lookups : 'a t -> int

(** Insert (or replace, when [base] is already present) a range. *)
val insert : 'a t -> base:int -> size:int -> meta:'a -> unit

(** Remove by base address; [false] if absent. *)
val remove : 'a t -> base:int -> bool

(** The entry whose range [[base, base+size)] contains the address,
    splayed to the root on success. *)
val find_containing : 'a t -> int -> (int * int * 'a) option

(** Exact lookup by base address. *)
val find_exact : 'a t -> int -> (int * 'a) option

(** In-order fold over [(base, size, meta)]. *)
val fold : ('b -> int * int * 'a -> 'b) -> 'b -> 'a t -> 'b

val reset_stats : 'a t -> unit
