(** KGCC driver: instrumentation plus check-CSE, with the size/check
    accounting the paper reports (code growth; "common subexpression
    elimination allowed us to reduce the number of checks inserted by
    more than half"). *)

type result = {
  program : Minic.Ast.program;  (** the instrumented, optimized program *)
  checks_inserted : int;
  checks_removed : int;         (** by check-CSE *)
  size_before : int;            (** AST nodes, a code-size proxy *)
  size_after : int;
}

val checks_remaining : result -> int

(** Instrument [p]; [optimize] (default true) runs check-CSE after. *)
val compile : ?optimize:bool -> ?opts:Instrument.options -> Minic.Ast.program -> result

(** Program-to-program convenience for consumers that take a compiler
    (e.g. {!Kvfs.Journalfs.create}'s [transform]). *)
val transform :
  ?optimize:bool -> ?opts:Instrument.options -> Minic.Ast.program -> Minic.Ast.program

val pp_result : Format.formatter -> result -> unit
