(* KGCC driver: instrument + optimize, with the size/check accounting the
   paper reports ("A program fully compiled with all the default checks
   in BCC could be up to 15 to 20 times larger than when compiled with
   GCC"; CSE "reduce[d] the number of checks inserted by more than
   half"). *)

type result = {
  program : Minic.Ast.program;
  checks_inserted : int;
  checks_removed : int;        (* by check-CSE *)
  size_before : int;           (* AST nodes, a code-size proxy *)
  size_after : int;
}

let checks_remaining r = r.checks_inserted - r.checks_removed

let compile ?(optimize = true) ?(opts = Instrument.all_checks)
    (p : Minic.Ast.program) : result =
  let size_before = Minic.Ast.program_size p in
  let instrumented, counters = Instrument.program ~opts p in
  let program, removed =
    if optimize then Check_opt.program instrumented else (instrumented, 0)
  in
  {
    program;
    checks_inserted = Instrument.total counters;
    checks_removed = removed;
    size_before;
    size_after = Minic.Ast.program_size program;
  }

(* Convenience: a [transform] for Journalfs-style consumers. *)
let transform ?optimize ?opts p = (compile ?optimize ?opts p).program

let pp_result ppf r =
  Fmt.pf ppf
    "checks: %d inserted, %d removed by CSE (%d remain); size: %d -> %d AST nodes (x%.1f)"
    r.checks_inserted r.checks_removed (checks_remaining r) r.size_before
    r.size_after
    (float_of_int r.size_after /. float_of_int (max 1 r.size_before))
