(* The KGCC instrumentation pass: "All operations that can potentially
   cause bounds violations, like pointer arithmetic, string operations,
   memory copying, etc. are preceded by checks.  The checks are simply
   function calls to the BCC runtime environment" (§3.4).

   Inserted calls, writing [cast] for the cast back to pointer type:
     deref p     ->  deref of cast __kgcc_check_deref(p, elem size, line)
     a[i]        ->  deref of cast __kgcc_check_deref(a + i, elem size, line)
     p + i       ->  cast __kgcc_check_arith(p, p + i, line)
     memcpy/...  ->  arguments wrapped in __kgcc_check_range
     strcpy      ->  __kgcc_strcpy(dst, src, line) in the runtime

   Stack objects whose addresses are never taken live in registers, so no
   pointer to them can exist and they need no checks — KGCC's first
   check-elimination heuristic falls out of the representation.

   The arithmetic check duplicates the base-pointer expression, so it is
   only inserted when that expression is pure (variables, constants,
   casts of pure expressions); this matches BCC, which likewise
   instruments simple pointer expressions. *)

type options = {
  check_deref : bool;
  check_arith : bool;
  check_ranges : bool;
}

let all_checks = { check_deref = true; check_arith = true; check_ranges = true }

type counters = {
  mutable deref_checks : int;
  mutable arith_checks : int;
  mutable range_checks : int;
}

let total c = c.deref_checks + c.arith_checks + c.range_checks

let check_fns = [ "__kgcc_check_deref"; "__kgcc_check_arith"; "__kgcc_check_range" ]

let is_check_fn name = List.mem name check_fns

open Minic

let rec is_pure (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Var _ | Ast.Sizeof_ty _ -> true
  | Ast.Cast (_, a) -> is_pure a
  | Ast.Str_lit _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _ | Ast.Deref _
  | Ast.Addr_of _ | Ast.Index _ | Ast.Call _ | Ast.Cond _ ->
      false

let is_ptr = function
  | Some (Ast.Tptr _) | Some (Ast.Tarray _) -> true
  | Some (Ast.Tvoid | Ast.Tint | Ast.Tchar) | None -> false

let ptr_elem = function
  | Some (Ast.Tptr t) | Some (Ast.Tarray (t, _)) -> t
  | _ -> Ast.Tchar

let line_of (e : Ast.expr) = Ast.mk_expr ~loc:e.Ast.eloc (Ast.Int_lit e.Ast.eloc.Ast.line)

let call_check ~loc name args = Ast.mk_expr ~loc (Ast.Call (name, args))

(* wrap [addr_expr] (pointing at an element of type [elem]) in a deref
   check and give the result back pointer type via a cast *)
let checked_addr c ~loc ~elem addr_expr =
  c.deref_checks <- c.deref_checks + 1;
  let size = Ast.mk_expr ~loc (Ast.Sizeof_ty elem) in
  let line = Ast.mk_expr ~loc (Ast.Int_lit loc.Ast.line) in
  Ast.mk_expr ~loc
    (Ast.Cast
       ( Ast.Tptr elem,
         call_check ~loc "__kgcc_check_deref" [ addr_expr; size; line ] ))

let rec instr_expr opts c (e : Ast.expr) : Ast.expr =
  let loc = e.Ast.eloc in
  let mk n = { e with Ast.e = n } in
  match e.Ast.e with
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Var _
  | Ast.Sizeof_ty _ ->
      e
  | Ast.Unop (op, a) -> mk (Ast.Unop (op, instr_expr opts c a))
  | Ast.Deref a ->
      let a' = instr_expr opts c a in
      if opts.check_deref then
        mk (Ast.Deref (checked_addr c ~loc ~elem:(ptr_elem a.Ast.ety) a'))
      else mk (Ast.Deref a')
  | Ast.Index (a, i) ->
      let a' = instr_expr opts c a in
      let i' = instr_expr opts c i in
      if opts.check_deref then begin
        let elem = ptr_elem a.Ast.ety in
        let addr = Ast.mk_expr ~loc (Ast.Binop (Ast.Add, a', i')) in
        mk (Ast.Deref (checked_addr c ~loc ~elem addr))
      end
      else mk (Ast.Index (a', i'))
  | Ast.Binop ((Ast.Add | Ast.Sub) as op, a, b)
    when opts.check_arith && is_ptr a.Ast.ety
         && (not (is_ptr b.Ast.ety))
         && is_pure a ->
      c.arith_checks <- c.arith_checks + 1;
      let a' = instr_expr opts c a in
      let b' = instr_expr opts c b in
      let raw = Ast.mk_expr ~loc (Ast.Binop (op, a', b')) in
      let line = line_of e in
      Ast.mk_expr ~loc
        (Ast.Cast
           ( Ast.Tptr (ptr_elem a.Ast.ety),
             call_check ~loc "__kgcc_check_arith" [ a'; raw; line ] ))
  | Ast.Binop (op, a, b) ->
      mk (Ast.Binop (op, instr_expr opts c a, instr_expr opts c b))
  | Ast.Assign (lhs, rhs) ->
      mk (Ast.Assign (instr_expr opts c lhs, instr_expr opts c rhs))
  | Ast.Addr_of a -> mk (Ast.Addr_of a) (* taking the address needs no check *)
  | Ast.Call (("memcpy" | "memset") as fn, args) when opts.check_ranges -> (
      let args = List.map (instr_expr opts c) args in
      match (fn, args) with
      | "memcpy", [ d; s; n ] when is_pure n ->
          c.range_checks <- c.range_checks + 2;
          let line = line_of e in
          let wrap p =
            call_check ~loc "__kgcc_check_range" [ p; n; line ]
          in
          mk (Ast.Call (fn, [ wrap d; wrap s; n ]))
      | "memset", [ d; v; n ] when is_pure n ->
          c.range_checks <- c.range_checks + 1;
          let line = line_of e in
          mk
            (Ast.Call
               (fn, [ call_check ~loc "__kgcc_check_range" [ d; n; line ]; v; n ]))
      | _ -> mk (Ast.Call (fn, args)))
  | Ast.Call ("strcpy", [ d; s ]) when opts.check_ranges ->
      (* string operations move into the KGCC runtime, where the copy
         length is known when the check runs *)
      let d' = instr_expr opts c d in
      let s' = instr_expr opts c s in
      c.range_checks <- c.range_checks + 1;
      mk (Ast.Call ("__kgcc_strcpy", [ d'; s'; line_of e ]))
  | Ast.Call (fn, args) -> mk (Ast.Call (fn, List.map (instr_expr opts c) args))
  | Ast.Cast (ty, a) -> mk (Ast.Cast (ty, instr_expr opts c a))
  | Ast.Cond (a, b, d) ->
      mk (Ast.Cond (instr_expr opts c a, instr_expr opts c b, instr_expr opts c d))

let rec instr_stmt opts c (s : Ast.stmt) : Ast.stmt =
  let mk n = { s with Ast.s = n } in
  match s.Ast.s with
  | Ast.Sexpr e -> mk (Ast.Sexpr (instr_expr opts c e))
  | Ast.Sdecl (ty, name, init) ->
      mk (Ast.Sdecl (ty, name, Option.map (instr_expr opts c) init))
  | Ast.Sif (cond, a, b) ->
      mk
        (Ast.Sif
           ( instr_expr opts c cond,
             List.map (instr_stmt opts c) a,
             List.map (instr_stmt opts c) b ))
  | Ast.Swhile (cond, body) ->
      mk (Ast.Swhile (instr_expr opts c cond, List.map (instr_stmt opts c) body))
  | Ast.Sfor (cond, body, step) ->
      mk
        (Ast.Sfor
           ( instr_expr opts c cond,
             List.map (instr_stmt opts c) body,
             List.map (instr_stmt opts c) step ))
  | Ast.Sreturn e -> mk (Ast.Sreturn (Option.map (instr_expr opts c) e))
  | Ast.Sblock body -> mk (Ast.Sblock (List.map (instr_stmt opts c) body))
  | Ast.Sbreak | Ast.Scontinue | Ast.Scosy_start | Ast.Scosy_end -> s

(* Instrument a whole program.  Typechecks first (the pass needs the
   pointer-type annotations); the caller re-typechecks on load. *)
let program ?(opts = all_checks) (p : Ast.program) : Ast.program * counters =
  ignore (Typecheck.check p);
  let c = { deref_checks = 0; arith_checks = 0; range_checks = 0 } in
  let funcs =
    List.map
      (fun f -> { f with Ast.body = List.map (instr_stmt opts c) f.Ast.body })
      p.Ast.funcs
  in
  ({ p with Ast.funcs }, c)
