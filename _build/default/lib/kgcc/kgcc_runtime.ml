(* The KGCC runtime: the check functions that instrumented code calls,
   and the glue that keeps the object map synchronized with the
   interpreter's allocations.

   Dynamic deinstrumentation (§3.5, implemented here as E9's ablation):
   each check site carries an execution counter; once a site has executed
   safely [deinstrument_after] times, its checks short-circuit — "as code
   paths execute safely more times and more often, one can state with
   greater confidence that they are correct ... reclaiming performance
   quickly as the confidence level for frequently-executed code becomes
   acceptable." *)

exception Bounds_violation of { addr : int; line : int; detail : string }

type t = {
  objmap : Objmap.t;
  clock : Ksim.Sim_clock.t;
  cost : Ksim.Cost_model.t;
  mutable checks_executed : int;
  mutable checks_skipped : int;     (* by dynamic deinstrumentation *)
  mutable violations : int;
  mutable deinstrument_after : int option;
  site_counts : (int, int) Hashtbl.t;  (* line -> executions *)
  mutable rotations_before : int;
}

let create ?deinstrument_after ~clock ~cost () =
  {
    objmap = Objmap.create ();
    clock;
    cost;
    checks_executed = 0;
    checks_skipped = 0;
    violations = 0;
    deinstrument_after;
    site_counts = Hashtbl.create 64;
    rotations_before = 0;
  }

let objmap t = t.objmap

let set_deinstrument_after t n = t.deinstrument_after <- n


(* Decide whether this site's check still runs; counts the execution
   either way. *)
let site_active t line =
  match t.deinstrument_after with
  | None -> true
  | Some threshold ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.site_counts line) in
      Hashtbl.replace t.site_counts line n;
      n <= threshold

let charge_check t =
  t.checks_executed <- t.checks_executed + 1;
  let before = Splay.rotations (Objmap.splay t.objmap) in
  Ksim.Sim_clock.advance t.clock t.cost.Ksim.Cost_model.bounds_check;
  t.rotations_before <- before

let charge_rotations t =
  let after = Splay.rotations (Objmap.splay t.objmap) in
  let delta = after - t.rotations_before in
  if delta > 0 then
    Ksim.Sim_clock.advance t.clock (delta * t.cost.Ksim.Cost_model.splay_rotate)

let violation t ~addr ~line ~detail =
  t.violations <- t.violations + 1;
  raise (Bounds_violation { addr; line; detail })

(* __kgcc_check_deref(p, size, line): p must point into a live object and
   the [size]-byte access must stay inside it.  OOB peers may not be
   dereferenced. *)
let check_deref t p size line =
  if not (site_active t line) then begin
    t.checks_skipped <- t.checks_skipped + 1;
    p
  end
  else begin
    charge_check t;
    let r =
      match Objmap.classify t.objmap p with
      | Objmap.In_bounds { base; size = osize; _ } ->
          if p + size > base + osize then
            violation t ~addr:p ~line
              ~detail:
                (Printf.sprintf "access of %d bytes overruns object [0x%x,+%d)"
                   size base osize)
          else p
      | Objmap.Oob _ ->
          violation t ~addr:p ~line ~detail:"dereference of out-of-bounds pointer"
      | Objmap.Unknown ->
          violation t ~addr:p ~line ~detail:"dereference of unknown address"
    in
    charge_rotations t;
    r
  end

(* __kgcc_check_arith(p, result, line): pointer arithmetic must stay
   within the object p belongs to; otherwise the result becomes an OOB
   peer (not an error — C allows transient OOB values). *)
let check_arith t p result line =
  if not (site_active t line) then begin
    t.checks_skipped <- t.checks_skipped + 1;
    result
  end
  else begin
    charge_check t;
    (match Objmap.owner t.objmap p with
    | Some (base, size, _) ->
        (* one-past-the-end is legal C and stays a non-dereferenceable edge *)
        if result < base || result > base + size then
          Objmap.make_peer t.objmap ~obj_base:base ~addr:result
        else if result = base + size && size > 0 then
          Objmap.make_peer t.objmap ~obj_base:base ~addr:result
        else Objmap.drop_peer t.objmap ~addr:result
    | None ->
        violation t ~addr:p ~line ~detail:"pointer arithmetic on unknown address");
    charge_rotations t;
    result
  end

(* __kgcc_check_range(p, len, line): a [len]-byte operation (memcpy,
   memset) must lie inside one object. *)
let check_range t p len line =
  if not (site_active t line) then begin
    t.checks_skipped <- t.checks_skipped + 1;
    p
  end
  else begin
    charge_check t;
    let r =
      match Objmap.classify t.objmap p with
      | Objmap.In_bounds { base; size; _ } ->
          if p + len > base + size then
            violation t ~addr:p ~line
              ~detail:
                (Printf.sprintf "range of %d bytes overruns object [0x%x,+%d)"
                   len base size)
          else p
      | Objmap.Oob _ | Objmap.Unknown ->
          violation t ~addr:p ~line ~detail:"range check on invalid pointer"
    in
    charge_rotations t;
    r
  end


(* __kgcc_strcpy(dst, src, line): BCC moves string operations into its
   runtime so the copy length is known when the check runs. *)
let checked_strcpy t interp dst src line =
  let s = Minic.Interp.read_c_string interp ~loc:Minic.Ast.no_loc ~addr:src in
  let needed = String.length s + 1 in
  ignore (check_range t dst needed line);
  Minic.Interp.write_c_string interp ~loc:Minic.Ast.no_loc ~addr:dst s;
  dst

(* Synchronize the object map with an interpreter's allocation events and
   register the check externs. *)
let attach t (interp : Minic.Interp.t) =
  Minic.Interp.set_on_obj interp (fun ev ->
      match ev with
      | Minic.Interp.Obj_alloc { base; size; kind; name } ->
          let kind =
            match kind with
            | Minic.Interp.Stack -> Objmap.Stack
            | Minic.Interp.Heap -> Objmap.Heap
            | Minic.Interp.Global -> Objmap.Global
            | Minic.Interp.Literal -> Objmap.Literal
          in
          Objmap.register t.objmap ~base ~size ~kind ~name
      | Minic.Interp.Obj_free { base; _ } -> Objmap.unregister t.objmap ~base);
  let arg3 f = fun _interp args ->
    match args with
    | [ a; b; c ] -> f a b c
    | _ -> invalid_arg "kgcc check: bad arity"
  in
  Minic.Interp.register_extern interp "__kgcc_check_deref"
    (arg3 (fun p size line -> check_deref t p size line));
  Minic.Interp.register_extern interp "__kgcc_check_arith"
    (arg3 (fun p result line -> check_arith t p result line));
  Minic.Interp.register_extern interp "__kgcc_check_range"
    (arg3 (fun p len line -> check_range t p len line));
  Minic.Interp.register_extern interp "__kgcc_strcpy"
    (fun interp args ->
      match args with
      | [ dst; src; line ] -> checked_strcpy t interp dst src line
      | _ -> invalid_arg "__kgcc_strcpy: bad arity")

type stats = {
  checks_executed : int;
  checks_skipped : int;
  violations : int;
  live_objects : int;
  oob_peers_created : int;
  splay_rotations : int;
  splay_lookups : int;
}

let stats (t : t) =
  {
    checks_executed = t.checks_executed;
    checks_skipped = t.checks_skipped;
    violations = t.violations;
    live_objects = Objmap.live_objects t.objmap;
    oob_peers_created = Objmap.oob_created t.objmap;
    splay_rotations = Splay.rotations (Objmap.splay t.objmap);
    splay_lookups = Splay.lookups (Objmap.splay t.objmap);
  }
