lib/ksyscall/sys_file.ml: Ksim Kvfs Systable Vfs Vtypes
