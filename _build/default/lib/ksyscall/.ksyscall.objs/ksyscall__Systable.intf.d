lib/ksyscall/systable.mli: Ksim Kvfs
