lib/ksyscall/usyscall.ml: Bytes Consolidated Ksim Kvfs List String Sys_file Systable Vtypes
