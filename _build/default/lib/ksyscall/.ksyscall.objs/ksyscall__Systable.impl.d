lib/ksyscall/systable.ml: Hashtbl Ksim Kvfs List Option
