lib/ksyscall/consolidated.ml: Bytes Ksim Kvfs List Sys_file Systable Vfs Vtypes
