(* Consolidated system calls (§2.2): each replaces a frequently-observed
   sequence with a single kernel entry, saving context switches and, for
   readdirplus, redundant data copies (names need not round-trip through
   user space before the stat calls). *)

open Kvfs

(* readdir + per-entry stat, as introduced by NFSv3 and measured in E1. *)
let service_readdirplus sys ~path =
  Sys_file.check_kernel_mode sys;
  match Vfs.readdir (Systable.vfs sys) path with
  | Error e -> Error e
  | Ok entries ->
      let stat_one d =
        let full =
          if path = "/" then "/" ^ d.Vtypes.d_name
          else path ^ "/" ^ d.Vtypes.d_name
        in
        match Vfs.stat (Systable.vfs sys) full with
        | Ok st -> Some (d, st)
        | Error _ -> None
      in
      Ok (List.filter_map stat_one entries)

(* open + read-to-eof + close in one crossing. *)
let service_open_read_close sys ~path ~maxlen =
  Sys_file.check_kernel_mode sys;
  match Sys_file.service_open sys ~path ~flags:[ Vfs.O_RDONLY ] with
  | Error e -> Error e
  | Ok fd -> (
      let result = Sys_file.service_read sys ~fd ~len:maxlen in
      let _ = Sys_file.service_close sys ~fd in
      result)

(* open + write + close in one crossing. *)
let service_open_write_close sys ~path ~data ~flags =
  Sys_file.check_kernel_mode sys;
  match Sys_file.service_open sys ~path ~flags with
  | Error e -> Error e
  | Ok fd -> (
      let result = Sys_file.service_write sys ~fd ~data in
      let _ = Sys_file.service_close sys ~fd in
      result)

(* sendfile(fd, off, len): stream file data straight from the page cache
   to the (simulated) network interface — the kernel-resident data path
   that AIX/Linux sendfile and IIS TransmitFile provide, cited by the
   paper as the motivating precedent (§2.1).  The payload never crosses
   into user space; the NIC transfer is charged as I/O wait. *)
let service_sendfile sys ~fd ~off ~len =
  Sys_file.check_kernel_mode sys;
  match Sys_file.service_pread sys ~fd ~off ~len with
  | Error e -> Error e
  | Ok data ->
      let kernel = Systable.kernel sys in
      let cost = Ksim.Kernel.cost kernel in
      (* DMA to the NIC: cheap CPU-side, charged as device time *)
      Ksim.Kernel.charge_io kernel
        (Bytes.length data * cost.Ksim.Cost_model.copy_per_byte
         / (4 * max 1 cost.Ksim.Cost_model.copy_byte_div));
      Ok (Bytes.length data)

(* open + fstat in one crossing; returns the open descriptor. *)
let service_open_fstat sys ~path ~flags =
  Sys_file.check_kernel_mode sys;
  match Sys_file.service_open sys ~path ~flags with
  | Error e -> Error e
  | Ok fd -> (
      match Sys_file.service_fstat sys ~fd with
      | Error e ->
          let _ = Sys_file.service_close sys ~fd in
          Error e
      | Ok st -> Ok (fd, st))
