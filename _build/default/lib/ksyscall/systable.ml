(* The system: a kernel plus a VFS plus syscall bookkeeping.  User
   wrappers (Usyscall) cross the boundary and call the in-kernel service
   routines (Sys_file); the Cosy kernel extension calls the service
   routines directly, skipping the crossing — which is the entire point
   of the paper's §2. *)

type trace_record = {
  pid : int;
  name : string;            (* syscall name *)
  arg : string;             (* human-readable principal argument *)
  bytes_in : int;           (* user -> kernel *)
  bytes_out : int;          (* kernel -> user *)
  ok : bool;
  timestamp : int;          (* virtual cycles at completion *)
}

type t = {
  kernel : Ksim.Kernel.t;
  vfs : Kvfs.Vfs.t;
  mutable tracer : (trace_record -> unit) option;
  counts : (string, int) Hashtbl.t;
  mutable total_syscalls : int;
}

let create ?root_fs kernel =
  let vfs = Kvfs.Vfs.create ?root_fs kernel in
  { kernel; vfs; tracer = None; counts = Hashtbl.create 64; total_syscalls = 0 }

let kernel t = t.kernel
let vfs t = t.vfs

let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None

let record t ~name ~arg ~bytes_in ~bytes_out ~ok =
  t.total_syscalls <- t.total_syscalls + 1;
  Hashtbl.replace t.counts name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts name));
  match t.tracer with
  | None -> ()
  | Some f ->
      let p = Ksim.Kernel.current t.kernel in
      f
        {
          pid = p.Ksim.Kproc.pid;
          name;
          arg;
          bytes_in;
          bytes_out;
          ok;
          timestamp = Ksim.Kernel.now t.kernel;
        }

let count t name = Option.value ~default:0 (Hashtbl.find_opt t.counts name)
let total_syscalls t = t.total_syscalls

let counts t =
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
