(* Shared helpers for the workload drivers: a deterministic PRNG (so
   every experiment replays bit-for-bit) and convenience wrappers that
   fail loudly on unexpected errno. *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed lxor 0x9E3779B9) }

(* xorshift64* : deterministic, fast, good enough for workload mixes *)
let rand_int64 r =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let rand_int r bound =
  if bound <= 0 then invalid_arg "rand_int";
  Int64.to_int (Int64.rem (Int64.logand (rand_int64 r) Int64.max_int)
                  (Int64.of_int bound))

let rand_range r lo hi =
  if hi < lo then invalid_arg "rand_range";
  lo + rand_int r (hi - lo + 1)

let rand_bool r = rand_int r 2 = 0

exception Workload_error of string

let ok = function
  | Ok v -> v
  | Error e ->
      raise (Workload_error ("unexpected errno " ^ Kvfs.Vtypes.errno_to_string e))

let payload n = Bytes.make n 'd'

(* Charge user-mode CPU think time: parsing, formatting, compiling... *)
let think kernel cycles = Ksim.Kernel.charge_user kernel cycles
