(* The Am-utils-compile stand-in: a CPU-intensive build over many small
   source files (the paper's standard CPU-bound benchmark for E5/E7).
   Per translation unit: stat the source, open-read-close it, burn user
   CPU "compiling" (dominant cost, as in a real build), then create the
   object file; with periodic directory scans like make does. *)

type config = {
  source_files : int;
  avg_source_size : int;
  compile_cycles_per_byte : int;   (* user-mode CPU per source byte *)
  fork_exec_cycles : int;          (* kernel CPU to spawn one cc1 process *)
  files_per_module : int;          (* sources per subdirectory *)
  prime_objects : bool;            (* true = setup pre-builds the .o files,
                                      so the timed run is an incremental
                                      rebuild; false = full clean build *)
  seed : int;
  dir : string;
}

let default_config =
  {
    source_files = 200;
    avg_source_size = 8_192;
    compile_cycles_per_byte = 60;
    fork_exec_cycles = 240_000;
    files_per_module = 10;
    prime_objects = true;
    seed = 7;
    dir = "/amutils";
  }

type stats = {
  compiled : int;
  source_bytes : int;
  object_bytes : int;
  times : Ksim.Kernel.times;
}

let module_dir cfg i = Printf.sprintf "%s/mod%03d" cfg.dir (i / cfg.files_per_module)
let src_name cfg i = Printf.sprintf "%s/src%04d.c" (module_dir cfg i) i
let obj_name cfg i = Printf.sprintf "%s/src%04d.o" (module_dir cfg i) i

(* Populate the source tree (not timed as part of the build). *)
let setup ?(config = default_config) sys =
  let cfg = config in
  let rng = Wutil.rng cfg.seed in
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:cfg.dir);
  for i = 0 to cfg.source_files - 1 do
    if i mod cfg.files_per_module = 0 then
      ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:(module_dir cfg i));
    let size =
      Wutil.rand_range rng (cfg.avg_source_size / 2) (3 * cfg.avg_source_size / 2)
    in
    ignore
      (Wutil.ok
         (Ksyscall.Usyscall.sys_open_write_close sys ~path:(src_name cfg i)
            ~data:(Wutil.payload size)
            ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ]));
    (* optionally prime the object files: the timed run is then an
       incremental rebuild that overwrites them, like timing `make` twice *)
    if cfg.prime_objects then
      ignore
        (Wutil.ok
           (Ksyscall.Usyscall.sys_open_write_close sys ~path:(obj_name cfg i)
              ~data:(Wutil.payload (size / 2))
              ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ]))
  done

let run ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let source_bytes = ref 0 and object_bytes = ref 0 in
  let body () =
    for i = 0 to cfg.source_files - 1 do
      (* make stats the tree every few files *)
      if i mod 16 = 0 then
        ignore (Ksyscall.Usyscall.sys_readdir sys ~path:(module_dir cfg i));
      (* make forks a cc1 process per translation unit *)
      Ksim.Kernel.enter_kernel kernel;
      Ksim.Kernel.charge_kernel kernel cfg.fork_exec_cycles;
      Ksim.Kernel.exit_kernel kernel;
      let path = src_name cfg i in
      let st = Wutil.ok (Ksyscall.Usyscall.sys_stat sys ~path) in
      let fd = Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
      let src = Wutil.ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:st.Kvfs.Vtypes.st_size) in
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
      source_bytes := !source_bytes + Bytes.length src;
      (* the compile itself: user-mode CPU proportional to input *)
      Wutil.think kernel (Bytes.length src * cfg.compile_cycles_per_byte);
      let obj = Wutil.payload (Bytes.length src / 2) in
      object_bytes := !object_bytes + Bytes.length obj;
      let ofd =
        Wutil.ok
          (Ksyscall.Usyscall.sys_open sys ~path:(obj_name cfg i)
             ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ])
      in
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_write sys ~fd:ofd ~data:obj));
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd:ofd))
    done;
    (* link step: read all objects back (plain syscalls; the consolidated
       variants are benchmarked separately in E1/E2) *)
    for i = 0 to cfg.source_files - 1 do
      let fd =
        Wutil.ok
          (Ksyscall.Usyscall.sys_open sys ~path:(obj_name cfg i)
             ~flags:[ Kvfs.Vfs.O_RDONLY ])
      in
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:max_int));
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd))
    done
  in
  let (), times = Ksim.Kernel.timed kernel body in
  { compiled = cfg.source_files; source_bytes = !source_bytes;
    object_bytes = !object_bytes; times }
