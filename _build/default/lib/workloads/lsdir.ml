(* ls -l: the readdir + per-entry stat pattern of E1, with its
   consolidated readdirplus counterpart. *)

type stats = {
  entries : int;
  syscalls : int;
  times : Ksim.Kernel.times;
}

(* Create a directory with [n] files (untimed setup). *)
let setup sys ~dir ~n =
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:dir);
  for i = 0 to n - 1 do
    let path = Printf.sprintf "%s/file%06d" dir i in
    ignore
      (Wutil.ok
         (Ksyscall.Usyscall.sys_open_write_close sys ~path
            ~data:(Wutil.payload 64)
            ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done

(* Plain: one readdir, then one stat per entry. *)
let run_plain sys ~dir =
  let kernel = Ksyscall.Systable.kernel sys in
  let p = Ksim.Kernel.current kernel in
  let sys0 = p.Ksim.Kproc.syscalls in
  let count = ref 0 in
  let body () =
    let entries = Wutil.ok (Ksyscall.Usyscall.sys_readdir sys ~path:dir) in
    List.iter
      (fun d ->
        let path = dir ^ "/" ^ d.Kvfs.Vtypes.d_name in
        let st = Wutil.ok (Ksyscall.Usyscall.sys_stat sys ~path) in
        (* format one ls -l line: a little user CPU per entry *)
        Wutil.think kernel (70 + (st.Kvfs.Vtypes.st_size land 0));
        incr count)
      entries
  in
  let (), times = Ksim.Kernel.timed kernel body in
  { entries = !count; syscalls = p.Ksim.Kproc.syscalls - sys0; times }

(* Consolidated: one readdirplus. *)
let run_readdirplus sys ~dir =
  let kernel = Ksyscall.Systable.kernel sys in
  let p = Ksim.Kernel.current kernel in
  let sys0 = p.Ksim.Kproc.syscalls in
  let count = ref 0 in
  let body () =
    let entries = Wutil.ok (Ksyscall.Usyscall.sys_readdirplus sys ~path:dir) in
    List.iter
      (fun (_d, st) ->
        Wutil.think kernel (70 + (st.Kvfs.Vtypes.st_size land 0));
        incr count)
      entries
  in
  let (), times = Ksim.Kernel.timed kernel body in
  { entries = !count; syscalls = p.Ksim.Kproc.syscalls - sys0; times }
