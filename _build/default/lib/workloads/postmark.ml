(* PostMark (Katcher, TR3022): the small-file/metadata benchmark used by
   the paper for E6 and E7.  Create an initial pool of files with sizes
   uniform in [min_size, max_size]; run [transactions] transactions, each
   pairing a create-or-delete with a read-or-append; then delete the
   remaining pool. *)

type config = {
  files : int;
  transactions : int;
  min_size : int;
  max_size : int;
  seed : int;
  dir : string;
  (* called between transactions; E6 hangs the user-space logger here *)
  pump : unit -> unit;
}

let default_config =
  {
    files = 500;
    transactions = 2_000;
    min_size = 512;
    max_size = 10_240;
    seed = 42;
    dir = "/postmark";
    pump = (fun () -> ());
  }

type stats = {
  created : int;
  deleted : int;
  read : int;
  appended : int;
  data_read : int;
  data_written : int;
  times : Ksim.Kernel.times;
}

let file_name cfg i = Printf.sprintf "%s/pm%06d" cfg.dir i

let create_file sys cfg rng i =
  let path = file_name cfg i in
  let size = Wutil.rand_range rng cfg.min_size cfg.max_size in
  let fd =
    Wutil.ok
      (Ksyscall.Usyscall.sys_open sys ~path
         ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ])
  in
  let written = Wutil.ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Wutil.payload size)) in
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
  written

let run ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let rng = Wutil.rng cfg.seed in
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:cfg.dir);
  let live = Hashtbl.create cfg.files in
  let next_id = ref 0 in
  let created = ref 0
  and deleted = ref 0
  and read = ref 0
  and appended = ref 0
  and data_read = ref 0
  and data_written = ref 0 in
  let pick_live () =
    (* deterministic pick: nth of the current live set *)
    let n = Hashtbl.length live in
    if n = 0 then None
    else begin
      let k = Wutil.rand_int rng n in
      let i = ref 0 in
      let found = ref None in
      Hashtbl.iter
        (fun id () ->
          if !i = k && !found = None then found := Some id;
          incr i)
        live;
      !found
    end
  in
  let create_one () =
    let id = !next_id in
    incr next_id;
    data_written := !data_written + create_file sys cfg rng id;
    Hashtbl.replace live id ();
    incr created
  in
  let delete_one id =
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_unlink sys ~path:(file_name cfg id)));
    Hashtbl.remove live id;
    incr deleted
  in
  let read_one id =
    let path = file_name cfg id in
    let fd = Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
    let st = Wutil.ok (Ksyscall.Usyscall.sys_fstat sys ~fd) in
    let data =
      Wutil.ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:st.Kvfs.Vtypes.st_size)
    in
    data_read := !data_read + Bytes.length data;
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
    incr read
  in
  let append_one id =
    let path = file_name cfg id in
    let fd =
      Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_APPEND ])
    in
    let n = Wutil.rand_range rng cfg.min_size (max cfg.min_size (cfg.max_size / 4)) in
    data_written :=
      !data_written + Wutil.ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Wutil.payload n));
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd));
    incr appended
  in
  let body () =
    (* phase 1: initial pool *)
    for _ = 1 to cfg.files do
      create_one ()
    done;
    (* phase 2: transactions *)
    for _ = 1 to cfg.transactions do
      (if Wutil.rand_bool rng then create_one ()
       else match pick_live () with Some id -> delete_one id | None -> create_one ());
      (match pick_live () with
      | Some id -> if Wutil.rand_bool rng then read_one id else append_one id
      | None -> ());
      cfg.pump ()
    done;
    (* phase 3: delete the remainder *)
    let remaining = Hashtbl.fold (fun id () acc -> id :: acc) live [] in
    List.iter delete_one (List.sort compare remaining)
  in
  let (), times = Ksim.Kernel.timed kernel body in
  {
    created = !created;
    deleted = !deleted;
    read = !read;
    appended = !appended;
    data_read = !data_read;
    data_written = !data_written;
    times;
  }
