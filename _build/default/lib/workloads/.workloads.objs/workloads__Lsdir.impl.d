lib/workloads/lsdir.ml: Ksim Ksyscall Kvfs List Printf Wutil
