lib/workloads/amutils.ml: Bytes Ksim Ksyscall Kvfs Printf Wutil
