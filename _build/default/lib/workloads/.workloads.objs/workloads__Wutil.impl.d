lib/workloads/wutil.ml: Bytes Int64 Ksim Kvfs
