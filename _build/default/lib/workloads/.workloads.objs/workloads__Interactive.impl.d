lib/workloads/interactive.ml: Ksim Ksyscall Kvfs List Printf Wutil
