lib/workloads/database.ml: Bytes Cosy Ksim Ksyscall Kvfs Wutil
