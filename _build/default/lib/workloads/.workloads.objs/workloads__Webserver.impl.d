lib/workloads/webserver.ml: Array Bytes Cosy Ksim Ksyscall Kvfs Printf Wutil
