lib/workloads/postmark.ml: Bytes Hashtbl Ksim Ksyscall Kvfs List Printf Wutil
