(* Synthetic interactive desktop session for E2: the paper logged ~15
   minutes of "average interactive user load" and computed what
   readdirplus (and friends) would have saved.  The mix below models a
   user alternating between shell work (ls -l bursts = readdir + stat
   runs), editing (open-read-close then open-write-close), launching
   programs (a storm of stats and opens over library paths), and idle
   time (pure clock advance). *)

type config = {
  duration_events : int;      (* number of user actions *)
  ls_dir_size : int;
  seed : int;
  root : string;
}

let default_config =
  { duration_events = 400; ls_dir_size = 40; seed = 99; root = "/home" }

type stats = {
  actions : int;
  syscalls : int;
  duration_cycles : int;
  times : Ksim.Kernel.times;
}

let setup ?(config = default_config) sys =
  let cfg = config in
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:cfg.root);
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:(cfg.root ^ "/docs"));
  ignore (Ksyscall.Usyscall.sys_mkdir sys ~path:"/lib");
  for i = 0 to cfg.ls_dir_size - 1 do
    ignore
      (Ksyscall.Usyscall.sys_open_write_close sys
         ~path:(Printf.sprintf "%s/docs/note%03d.txt" cfg.root i)
         ~data:(Wutil.payload 2048)
         ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ])
  done;
  for i = 0 to 29 do
    ignore
      (Ksyscall.Usyscall.sys_open_write_close sys
         ~path:(Printf.sprintf "/lib/lib%02d.so" i)
         ~data:(Wutil.payload 4096)
         ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ])
  done

let run ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let rng = Wutil.rng cfg.seed in
  let p = Ksim.Kernel.current kernel in
  let sys0 = p.Ksim.Kproc.syscalls in
  let t0 = Ksim.Kernel.now kernel in
  let docs = cfg.root ^ "/docs" in
  let ls_burst () =
    (* shell ls -l: readdir then stat every entry *)
    match Ksyscall.Usyscall.sys_readdir sys ~path:docs with
    | Error _ -> ()
    | Ok entries ->
        List.iter
          (fun d ->
            ignore (Ksyscall.Usyscall.sys_stat sys ~path:(docs ^ "/" ^ d.Kvfs.Vtypes.d_name)))
          entries;
        Wutil.think kernel (200 * List.length entries)
  in
  let edit_file () =
    let i = Wutil.rand_int rng cfg.ls_dir_size in
    let path = Printf.sprintf "%s/note%03d.txt" docs i in
    (* open-read-close, think, open-write-close: the editor pattern *)
    (match Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ] with
    | Error _ -> ()
    | Ok fd ->
        ignore (Ksyscall.Usyscall.sys_read sys ~fd ~len:max_int);
        ignore (Ksyscall.Usyscall.sys_close sys ~fd));
    Wutil.think kernel 50_000;
    match
      Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_TRUNC ]
    with
    | Error _ -> ()
    | Ok fd ->
        ignore (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Wutil.payload 2048));
        ignore (Ksyscall.Usyscall.sys_close sys ~fd)
  in
  let launch_app () =
    (* dynamic linker: stat candidate paths, open the hits *)
    for i = 0 to 9 do
      let path = Printf.sprintf "/lib/lib%02d.so" (Wutil.rand_int rng 30) in
      ignore i;
      match Ksyscall.Usyscall.sys_open sys ~path ~flags:[ Kvfs.Vfs.O_RDONLY ] with
      | Error _ -> ()
      | Ok fd ->
          ignore (Ksyscall.Usyscall.sys_fstat sys ~fd);
          ignore (Ksyscall.Usyscall.sys_read sys ~fd ~len:4096);
          ignore (Ksyscall.Usyscall.sys_close sys ~fd)
    done;
    Wutil.think kernel 500_000
  in
  let idle () = Wutil.think kernel 2_000_000 in
  let body () =
    for _ = 1 to cfg.duration_events do
      match Wutil.rand_int rng 10 with
      | 0 | 1 | 2 -> ls_burst ()
      | 3 | 4 | 5 -> edit_file ()
      | 6 | 7 -> launch_app ()
      | _ -> idle ()
    done
  in
  let (), times = Ksim.Kernel.timed kernel body in
  {
    actions = cfg.duration_events;
    syscalls = p.Ksim.Kproc.syscalls - sys0;
    duration_cycles = Ksim.Kernel.now kernel - t0;
    times;
  }
