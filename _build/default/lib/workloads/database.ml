(* The database workload of E4: a keyed record store over one large file
   exhibiting the sequential and random access patterns the paper
   modified "popular user applications" to exercise.

   [run_plain] issues one lseek+read (or write) syscall pair per record —
   two boundary crossings each.  [run_cosy] performs the same access
   pattern as a single compound whose loop runs inside the kernel, with
   record data staged through the zero-copy shared buffer.  Both variants
   walk the identical deterministic LCG probe sequence, so they do the
   same I/O work and differ only in boundary costs — the quantity E4
   measures. *)

type config = {
  records : int;
  record_size : int;
  lookups : int;            (* random-pattern operations *)
  scans : int;              (* sequential full passes *)
  update_ratio : int;       (* percent of lookups that write *)
  seed : int;
  path : string;
}

let default_config =
  {
    records = 1_000;
    record_size = 256;
    lookups = 2_000;
    scans = 2;
    update_ratio = 10;
    seed = 11;
    path = "/db.dat";
  }

type stats = {
  reads : int;
  writes : int;
  bytes_moved : int;
  times : Ksim.Kernel.times;
}

(* LCG over record indices; must match the compound's arithmetic. *)
let lcg_a = 1103515245
let lcg_c = 12345
let lcg_m = 1 lsl 31

let next_probe state records = ((lcg_a * state) + lcg_c) mod lcg_m mod records |> abs

(* Build the store (untimed). *)
let setup ?(config = default_config) sys =
  let cfg = config in
  let fd =
    Wutil.ok
      (Ksyscall.Usyscall.sys_open sys ~path:cfg.path
         ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ])
  in
  let record = Wutil.payload cfg.record_size in
  for _ = 1 to cfg.records do
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:record))
  done;
  ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd))

let run_plain ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let reads = ref 0 and writes = ref 0 and bytes = ref 0 in
  let body () =
    let fd =
      Wutil.ok (Ksyscall.Usyscall.sys_open sys ~path:cfg.path ~flags:[ Kvfs.Vfs.O_RDWR ])
    in
    (* random lookups/updates *)
    let state = ref cfg.seed in
    for i = 1 to cfg.lookups do
      state := (lcg_a * !state + lcg_c) mod lcg_m;
      let idx = abs !state mod cfg.records in
      let off = idx * cfg.record_size in
      if i mod 100 < cfg.update_ratio then begin
        incr writes;
        bytes := !bytes + cfg.record_size;
        ignore
          (Wutil.ok
             (Ksyscall.Usyscall.sys_pwrite sys ~fd ~off
                ~data:(Wutil.payload cfg.record_size)))
      end
      else begin
        incr reads;
        let data =
          Wutil.ok (Ksyscall.Usyscall.sys_pread sys ~fd ~off ~len:cfg.record_size)
        in
        bytes := !bytes + Bytes.length data
      end
    done;
    (* sequential scans *)
    for _ = 1 to cfg.scans do
      ignore (Wutil.ok (Ksyscall.Usyscall.sys_lseek sys ~fd ~off:0 ~whence:Kvfs.Vfs.SEEK_SET));
      for _ = 1 to cfg.records do
        incr reads;
        let data = Wutil.ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:cfg.record_size) in
        bytes := !bytes + Bytes.length data
      done
    done;
    ignore (Wutil.ok (Ksyscall.Usyscall.sys_close sys ~fd))
  in
  let (), times = Ksim.Kernel.timed kernel body in
  { reads = !reads; writes = !writes; bytes_moved = !bytes; times }

(* The same workload as one compound per phase. *)
let run_cosy ?(config = default_config) sys =
  let cfg = config in
  let kernel = Ksyscall.Systable.kernel sys in
  let exec = Cosy.Cosy_exec.create ~shared_size:(cfg.record_size * 4) sys in
  let reads = ref 0 and writes = ref 0 and bytes = ref 0 in
  let body () =
    (* compound 1: open + random lookups/updates loop + close *)
    let c = Cosy.Cosy_lib.create ~shared_size:(cfg.record_size * 4) () in
    let buf = Cosy.Cosy_lib.alloc_shared c cfg.record_size in
    let fd = Cosy.Cosy_lib.syscall c "open" [ Cosy.Cosy_op.Str cfg.path; Cosy.Cosy_op.Const 1 ] in
    let state = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const cfg.seed) in
    let i = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const 0) in
    let loop_start = Cosy.Cosy_lib.next_index c in
    let cond =
      Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Alt (Cosy.Cosy_op.Slot i)
        (Cosy.Cosy_op.Const cfg.lookups)
    in
    let jz_at = Cosy.Cosy_lib.next_index c in
    Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot cond) 0;
    (* state = (a*state + c) mod m *)
    let t1 = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amul (Cosy.Cosy_op.Slot state) (Cosy.Cosy_op.Const lcg_a) in
    let t2 = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot t1) (Cosy.Cosy_op.Const lcg_c) in
    Cosy.Cosy_lib.arith c ~dst:state Cosy.Cosy_op.Amod (Cosy.Cosy_op.Slot t2) (Cosy.Cosy_op.Const lcg_m);
    (* idx = abs(state) mod records ; abs via (state % m + m) % m is
       unnecessary: slots mirror the OCaml arithmetic which can go
       negative; normalize with ((state mod records) + records) mod records *)
    let m1 = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amod (Cosy.Cosy_op.Slot state) (Cosy.Cosy_op.Const cfg.records) in
    let m2 = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot m1) (Cosy.Cosy_op.Const cfg.records) in
    let idx = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amod (Cosy.Cosy_op.Slot m2) (Cosy.Cosy_op.Const cfg.records) in
    let off = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amul (Cosy.Cosy_op.Slot idx) (Cosy.Cosy_op.Const cfg.record_size) in
    (* mod-100 update decision *)
    let imod = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amod (Cosy.Cosy_op.Slot i) (Cosy.Cosy_op.Const 100) in
    let is_read =
      Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Age (Cosy.Cosy_op.Slot imod)
        (Cosy.Cosy_op.Const cfg.update_ratio)
    in
    let jz_read = Cosy.Cosy_lib.next_index c in
    Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot is_read) 0;
    (* read branch *)
    ignore
      (Cosy.Cosy_lib.syscall c "pread"
         [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf;
           Cosy.Cosy_op.Const cfg.record_size; Cosy.Cosy_op.Slot off ]);
    let jmp_join = Cosy.Cosy_lib.next_index c in
    Cosy.Cosy_lib.jmp c 0;
    Cosy.Cosy_lib.patch_jump c ~at:jz_read ~target:(Cosy.Cosy_lib.next_index c);
    (* write branch *)
    ignore
      (Cosy.Cosy_lib.syscall c "pwrite"
         [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf;
           Cosy.Cosy_op.Const cfg.record_size; Cosy.Cosy_op.Slot off ]);
    Cosy.Cosy_lib.patch_jump c ~at:jmp_join ~target:(Cosy.Cosy_lib.next_index c);
    (* i++ ; loop *)
    Cosy.Cosy_lib.arith c ~dst:i Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot i) (Cosy.Cosy_op.Const 1);
    Cosy.Cosy_lib.jmp c loop_start;
    Cosy.Cosy_lib.patch_jump c ~at:jz_at ~target:(Cosy.Cosy_lib.next_index c);
    (* sequential scans *)
    let s = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const 0) in
    let total = cfg.scans * cfg.records in
    let scan_start = Cosy.Cosy_lib.next_index c in
    let scond =
      Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Alt (Cosy.Cosy_op.Slot s)
        (Cosy.Cosy_op.Const total)
    in
    let sjz = Cosy.Cosy_lib.next_index c in
    Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot scond) 0;
    let soff0 = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amod (Cosy.Cosy_op.Slot s) (Cosy.Cosy_op.Const cfg.records) in
    let soff = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amul (Cosy.Cosy_op.Slot soff0) (Cosy.Cosy_op.Const cfg.record_size) in
    ignore
      (Cosy.Cosy_lib.syscall c "pread"
         [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf;
           Cosy.Cosy_op.Const cfg.record_size; Cosy.Cosy_op.Slot soff ]);
    Cosy.Cosy_lib.arith c ~dst:s Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot s) (Cosy.Cosy_op.Const 1);
    Cosy.Cosy_lib.jmp c scan_start;
    Cosy.Cosy_lib.patch_jump c ~at:sjz ~target:(Cosy.Cosy_lib.next_index c);
    ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
    let compound = Cosy.Cosy_lib.finish c in
    ignore (Cosy.Cosy_exec.submit exec compound);
    (* mirror the op counts for reporting *)
    let upd = cfg.lookups * cfg.update_ratio / 100 in
    writes := upd;
    reads := cfg.lookups - upd + (cfg.scans * cfg.records);
    bytes := (!reads + !writes) * cfg.record_size
  in
  let (), times = Ksim.Kernel.timed kernel body in
  ({ reads = !reads; writes = !writes; bytes_moved = !bytes; times },
   Cosy.Cosy_exec.stats exec)
