(* Debugging a kernel-module buffer overflow with Kefence (§3.2).

   A wrapfs module with an injected off-by-N bug runs over Kefence's
   guarded allocator.  In Crash mode the module dies at the overflowing
   instruction; in Auto_map_rw mode the run continues and syslog shows
   exactly which buffer overflowed and where.

   Run with:  dune exec examples/kefence_debug.exe *)

let attempt_with mode =
  Printf.printf "\n--- Kefence mode: %s ---\n" (Fmt.str "%a" Kefence.pp_mode mode);
  let t = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence mode } in
  (* plant the bug: every temporary name buffer is overrun by 64 bytes,
     which lands on the guardian page right after the buffer *)
  (match Core.wrapfs t with
  | Some w -> Kvfs.Wrapfs.inject_overflow w 64
  | None -> assert false);
  let sys = Core.sys t in
  (match Core.Syscall.sys_open sys ~path:"/victim" ~flags:Core.o_create with
  | exception Ksim.Fault.Fault f ->
      Printf.printf "module crashed (as configured): %s\n" (Fmt.str "%a" Ksim.Fault.pp f)
  | Ok fd ->
      Printf.printf "operation completed despite overflow (as configured)\n";
      ignore (Core.Syscall.sys_close sys ~fd)
  | Error e -> Printf.printf "errno: %s\n" (Kvfs.Vtypes.errno_to_string e));
  match Core.kefence t with
  | Some kf ->
      Printf.printf "syslog:\n";
      List.iter (fun line -> Printf.printf "  %s\n" line) (Kefence.syslog kf)
  | None -> ()

let () =
  Printf.printf "Injecting a 5000-byte overflow into wrapfs's name buffers.\n";
  (* security-critical configuration: kill the module at the overflow *)
  attempt_with Kefence.Crash;
  (* debugging configuration: auto-map a page and keep going *)
  attempt_with Kefence.Auto_map_rw;
  (* clean module: no reports, modest overhead *)
  Printf.printf "\n--- clean module under Kefence ---\n";
  let t = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Crash } in
  Workloads.Lsdir.setup (Core.sys t) ~dir:"/d" ~n:200;
  ignore (Workloads.Lsdir.run_plain (Core.sys t) ~dir:"/d");
  (match Core.kefence t with
  | Some kf ->
      Printf.printf "200-file workload, overflows detected: %d\n"
        (Kefence.overflows_detected kf)
  | None -> ());
  let stats = Ksim.Kalloc.stats (Ksim.Kernel.alloc (Core.kernel t)) in
  Printf.printf "vmalloc pages high-water: %d, mean allocation: %.0f B\n"
    stats.Ksim.Kalloc.pages_high_water stats.Ksim.Kalloc.mean_alloc_bytes
