(* Surviving allocation failure with kfault (DESIGN §14).

   Every kernel has an ENOMEM story it never tests.  This example arms
   the kalloc.kmalloc fault site with a one-shot plan and runs a Cosy
   compound that creates, reads, and closes a fresh file in one kernel
   crossing.  Creating a fresh file drives wrapfs's dynamic allocations
   (name buffers, per-inode private data), so the armed allocator fails
   exactly once on the compound's path — and the failure surfaces where
   it should: as a negative errno in the compound's result slot, never
   as a crash.  Disarming and resubmitting proves the kernel is
   undamaged.

   Run with:  dune exec examples/kfault_ENOMEM.exe *)

let errno_name code =
  match Kvfs.Vtypes.errno_of_code code with
  | Some e -> Kvfs.Vtypes.errno_to_string e
  | None -> Printf.sprintf "errno %d" code

(* open(path, O_RDWR|O_CREAT|O_TRUNC); read(fd, buf, 512); close(fd) —
   three syscalls, one crossing.  Flag bits per Cosy's open encoding:
   1 = write, 2 = create, 4 = trunc. *)
let build_compound path =
  let c = Cosy.Cosy_lib.create () in
  let buf = Cosy.Cosy_lib.alloc_shared c 512 in
  let fd =
    Cosy.Cosy_lib.syscall c "open"
      [ Cosy.Cosy_op.Str path; Cosy.Cosy_op.Const 7 ]
  in
  let n =
    Cosy.Cosy_lib.syscall c "read"
      [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const 512 ]
  in
  ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
  (Cosy.Cosy_lib.finish c, fd, n)

let submit_and_report exec label path =
  let compound, fd, n = build_compound path in
  let slots = Cosy.Cosy_exec.submit exec compound in
  if slots.(fd) < 0 then
    Printf.printf "%s: open(%s) failed cleanly with %s\n" label path
      (errno_name (-slots.(fd)))
  else if slots.(n) < 0 then
    Printf.printf "%s: read failed cleanly with %s\n" label
      (errno_name (-slots.(n)))
  else
    Printf.printf "%s: created %s as fd %d, read %d bytes\n" label path
      slots.(fd) slots.(n)

let () =
  (* wrapfs-kmalloc routes the module's temporary buffers through the
     kernel allocator, so kalloc.kmalloc sits on this workload's path *)
  let t =
    Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kmalloc }
  in
  let sys = Core.sys t in
  (match Ksyscall.Usyscall.sys_mkdir sys ~path:"/data" with
  | Ok _ -> ()
  | Error e -> failwith (Kvfs.Vtypes.errno_to_string e));

  let exec = Core.cosy t in
  submit_and_report exec "before fault" "/data/s1";

  (* arm: the very next kmalloc on the module path fails once *)
  Printf.printf "\narming kalloc.kmalloc with plan once:1\n";
  Kfault.arm (Core.fault t)
    [ { Kfault.site = "kalloc.kmalloc"; trigger = Kfault.One_shot 1 } ];
  submit_and_report exec "under fault " "/data/s2";

  Printf.printf "\nfault-site ledger while armed (occurrences / fired):\n";
  List.iter
    (fun (name, occ, fires) ->
      if occ > 0 then Printf.printf "  %-22s %6d / %d\n" name occ fires)
    (Kfault.counts (Core.fault t));

  (* the failure was contained: disarm and everything works again *)
  Kfault.disarm (Core.fault t);
  Printf.printf "\ndisarmed again\n";
  submit_and_report exec "after disarm" "/data/s2"
