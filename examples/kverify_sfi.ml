(* kverify walkthrough: learn a program's syscall-flow automaton from a
   recorded run, then enforce it at the dispatch choke point.

   Run with:  dune exec examples/kverify_sfi.exe *)

let pf = Printf.printf

(* The "application": a well-behaved config reader — mkdir once, then
   open/write/close to seed, then open/read/close in a loop. *)
let app sys =
  ignore (Core.Syscall.sys_mkdir sys ~path:"/etc");
  let fd =
    Core.ok (Core.Syscall.sys_open sys ~path:"/etc/app.conf" ~flags:Core.o_create)
  in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "threads=4\n")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
  for _ = 1 to 5 do
    let fd =
      Core.ok (Core.Syscall.sys_open sys ~path:"/etc/app.conf" ~flags:Core.o_rdonly)
    in
    ignore (Core.ok (Core.Syscall.sys_read sys ~fd ~len:64));
    ignore (Core.ok (Core.Syscall.sys_close sys ~fd))
  done

let () =
  (* 1. Record a run and compile its syscall digraph into an automaton. *)
  let t = Core.boot_with Core.Config.default in
  let rec_ = Core.trace t in
  app (Core.sys t);
  let automaton = Core.Verify.learn rec_ in
  pf "learned automaton: %d syscalls, %d transitions\n"
    (List.length (Core.Verify.Sfi.members automaton))
    (List.length (Core.Verify.Sfi.transitions automaton));
  List.iter
    (fun (s, d) ->
      pf "  %s -> %s\n" (Core.Sysno.to_string s) (Core.Sysno.to_string d))
    (Core.Verify.Sfi.transitions automaton);

  (* 2. Enforce it on a fresh system: the same program sails through. *)
  let t =
    Core.boot_with
      { Core.Config.default with verify = Some Core.Verify.Kill }
  in
  let kv = Option.get (Core.kverify t) in
  Core.Verify.set_automaton kv (Some automaton);
  app (Core.sys t);
  pf "\nreplay under Kill policy: %d dispatches checked, %d violations\n"
    (Core.Verify.checked kv) (Core.Verify.violations kv);

  (* 3. A compromised run takes a transition the program never makes
     (read -> unlink, say an injected payload deleting the config).
     Under Deny the syscall fails with EPERM and the process lives... *)
  let t =
    Core.boot_with
      { Core.Config.default with verify = Some Core.Verify.Deny }
  in
  let kv = Option.get (Core.kverify t) in
  Core.Verify.set_automaton kv (Some automaton);
  let sys = Core.sys t in
  ignore (Core.Syscall.sys_mkdir sys ~path:"/etc");
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/etc/app.conf" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "x\n")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/etc/app.conf" ~flags:Core.o_rdonly) in
  ignore (Core.ok (Core.Syscall.sys_read sys ~fd ~len:64));
  (match Core.Syscall.sys_unlink sys ~path:"/etc/app.conf" with
  | Error e ->
      pf "\ninjected read->unlink under Deny: %s (process survives)\n"
        (Core.Vtypes.errno_to_string e)
  | Ok () -> pf "\ninjected read->unlink under Deny: UNEXPECTEDLY ALLOWED\n");
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
  pf "violations so far: %d\n" (Core.Verify.violations kv);

  (* 4. ...under Kill the dispatcher kills the offender mid-syscall. *)
  let t =
    Core.boot_with
      { Core.Config.default with verify = Some Core.Verify.Kill }
  in
  let kv = Option.get (Core.kverify t) in
  Core.Verify.set_automaton kv (Some automaton);
  let sys = Core.sys t in
  ignore (Core.Syscall.sys_mkdir sys ~path:"/etc");
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/etc/app.conf" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "x\n")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/etc/app.conf" ~flags:Core.o_rdonly) in
  ignore (Core.ok (Core.Syscall.sys_read sys ~fd ~len:64));
  ignore fd;
  (try ignore (Core.Syscall.sys_unlink sys ~path:"/etc/app.conf")
   with Core.Verify.Flow_violation { pid; sysno } ->
     pf "injected read->unlink under Kill: pid %d killed attempting %s\n" pid
       (Core.Sysno.to_string sysno));

  (* 5. Static admission: a provably bounded compound runs with the
     watchdog elided on the cheaper verified path. *)
  let t =
    Core.boot_with
      { Core.Config.default with verify = Some Core.Verify.Log }
  in
  let kv = Option.get (Core.kverify t) in
  let cx = Core.cosy t in
  let c = Cosy.Cosy_lib.create () in
  let i = Cosy.Cosy_lib.fresh_slot c in
  Cosy.Cosy_lib.set c ~dst:i (Cosy.Cosy_op.Const 0);
  let l_cond = Cosy.Cosy_lib.next_index c in
  let cond =
    Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Alt (Cosy.Cosy_op.Slot i)
      (Cosy.Cosy_op.Const 10)
  in
  let jz_at = Cosy.Cosy_lib.next_index c in
  Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot cond) 0;
  ignore (Cosy.Cosy_lib.syscall c "getpid" []);
  let tmp =
    Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot i)
      (Cosy.Cosy_op.Const 1)
  in
  Cosy.Cosy_lib.set c ~dst:i (Cosy.Cosy_op.Slot tmp);
  Cosy.Cosy_lib.jmp c l_cond;
  Cosy.Cosy_lib.patch_jump c ~at:jz_at ~target:(Cosy.Cosy_lib.next_index c);
  ignore (Cosy.Cosy_exec.submit cx (Cosy.Cosy_lib.finish c));
  pf "\ncompound admission: %d watchdog-elided run(s), %d admitted total\n"
    (Cosy.Cosy_exec.watchdog_elisions cx)
    (Core.Verify.watchdog_elided kv)
