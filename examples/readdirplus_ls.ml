(* ls -l two ways: the readdir + stat-per-entry sequence every shell
   runs, and the consolidated readdirplus syscall (§2.2 / E1).

   Run with:  dune exec examples/readdirplus_ls.exe -- [nfiles] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_000 in

  (* Plain ls -l *)
  let t1 = Core.boot_with Core.Config.default in
  Workloads.Lsdir.setup (Core.sys t1) ~dir:"/dir" ~n;
  let plain = Workloads.Lsdir.run_plain (Core.sys t1) ~dir:"/dir" in

  (* readdirplus ls -l *)
  let t2 = Core.boot_with Core.Config.default in
  Workloads.Lsdir.setup (Core.sys t2) ~dir:"/dir" ~n;
  let merged = Workloads.Lsdir.run_readdirplus (Core.sys t2) ~dir:"/dir" in

  Printf.printf "ls -l over %d files:\n" n;
  Printf.printf "  readdir + stat : %d syscalls, %s\n" plain.Workloads.Lsdir.syscalls
    (Fmt.str "%a" Core.pp_times plain.Workloads.Lsdir.times);
  Printf.printf "  readdirplus    : %d syscalls, %s\n" merged.Workloads.Lsdir.syscalls
    (Fmt.str "%a" Core.pp_times merged.Workloads.Lsdir.times);
  let faster =
    100.
    *. (1.
        -. float_of_int merged.Workloads.Lsdir.times.Ksim.Kernel.elapsed
           /. float_of_int plain.Workloads.Lsdir.times.Ksim.Kernel.elapsed)
  in
  Printf.printf "  => %.1f%% faster elapsed (paper: 60.6-63.8%%)\n" faster;

  (* Mining a real trace for consolidation candidates, like §2.2 *)
  let t3 = Core.boot_with Core.Config.default in
  Workloads.Lsdir.setup (Core.sys t3) ~dir:"/dir" ~n:50;
  let recorder = Core.trace t3 in
  ignore (Workloads.Lsdir.run_plain (Core.sys t3) ~dir:"/dir");
  let mined = Ktrace.Patterns.mine recorder in
  Printf.printf "\ntop syscall patterns in the traced ls run:\n";
  List.iter
    (fun (pattern, count) ->
      Printf.printf "  %-30s x%d\n" (Fmt.str "%a" Ktrace.Patterns.pp_ngram pattern) count)
    (List.filteri (fun i _ -> i < 5) (Ktrace.Patterns.top mined ~n:5))
