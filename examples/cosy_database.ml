(* A database-style application accelerated with Cosy, the way the paper
   describes (§2.3): mark the bottleneck loop with COSY_START/COSY_END,
   let Cosy-GCC compile the region to a compound, and submit it to the
   kernel extension — one boundary crossing instead of thousands.

   Run with:  dune exec examples/cosy_database.exe *)

(* The application, in mini-C.  The marked region scans the first 200
   records of an index file and sums a field from each. *)
let app_source =
  {|
int scan_index(void) {
  int total = 0;
  COSY_START;
  int fd = open("/db/index", 0);
  int i = 0;
  char rec[64];
  while (i < 200) {
    int n = read(fd, rec, 64);
    if (n < 64) break;
    total = total + n;
    i = i + 1;
  }
  close(fd);
  COSY_END;
  return total;
}
|}

let () =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  (* create the index file *)
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/db"));
  ignore
    (Core.ok
       (Core.Syscall.sys_open_write_close sys ~path:"/db/index"
          ~data:(Bytes.make (200 * 64) 'r') ~flags:Core.o_create));

  (* Cosy-GCC: parse the C, extract the marked region, build a compound *)
  let program = Minic.Parser.parse_program ~file:"app.c" app_source in
  let compiled = Cosy.Cosy_gcc.compile program ~fname:"scan_index" in
  Printf.printf "Cosy-GCC compiled the marked region into %d compound ops\n"
    compiled.Cosy.Cosy_gcc.op_count;
  Printf.printf "zero-copy buffers detected: %s\n"
    (String.concat ", " (List.map fst compiled.Cosy.Cosy_gcc.shared_of_bufs));

  (* submit to the Cosy kernel extension *)
  let exec = Core.cosy t in
  let kernel = Core.kernel t in
  let before_crossings = Ksim.Kernel.crossings kernel in
  let (), times =
    Ksim.Kernel.timed kernel (fun () ->
        let slots = Cosy.Cosy_exec.submit exec compiled.Cosy.Cosy_gcc.compound in
        let total = slots.(List.assoc "total" compiled.Cosy.Cosy_gcc.slots_of_vars) in
        Printf.printf "compound result: total = %d bytes scanned\n" total)
  in
  Printf.printf "cosy   : %d crossing(s), %s\n"
    (Ksim.Kernel.crossings kernel - before_crossings)
    (Fmt.str "%a" Core.pp_times times);

  (* the same loop with plain syscalls, for comparison *)
  let t2 = Core.boot_with Core.Config.default in
  let sys2 = Core.sys t2 in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys2 ~path:"/db"));
  ignore
    (Core.ok
       (Core.Syscall.sys_open_write_close sys2 ~path:"/db/index"
          ~data:(Bytes.make (200 * 64) 'r') ~flags:Core.o_create));
  let kernel2 = Core.kernel t2 in
  let before = Ksim.Kernel.crossings kernel2 in
  let (), plain_times =
    Ksim.Kernel.timed kernel2 (fun () ->
        let fd = Core.ok (Core.Syscall.sys_open sys2 ~path:"/db/index" ~flags:Core.o_rdonly) in
        let total = ref 0 in
        (try
           for _ = 1 to 200 do
             let data = Core.ok (Core.Syscall.sys_read sys2 ~fd ~len:64) in
             if Bytes.length data < 64 then raise Exit;
             total := !total + Bytes.length data
           done
         with Exit -> ());
        ignore (Core.ok (Core.Syscall.sys_close sys2 ~fd)))
  in
  Printf.printf "plain  : %d crossing(s), %s\n"
    (Ksim.Kernel.crossings kernel2 - before)
    (Fmt.str "%a" Core.pp_times plain_times);
  Printf.printf "speedup: %.1f%% (paper reports 20-80%% for such loops)\n"
    (100.
    *. (1.
        -. float_of_int times.Ksim.Kernel.elapsed
           /. float_of_int plain_times.Ksim.Kernel.elapsed))
