(* Run K web-server instances across N simulated CPUs and watch the
   global dcache_lock become the bottleneck — then shard it away.
   A compact version of experiment E13 (bench/main.exe -- E13).

     dune exec examples/smp_scaling.exe
*)

let () =
  Kstats.default_enabled := true;
  (* small documents of heterogeneous size: path lookups dominate, so
     the dcache lock carries real load *)
  let cfg =
    { Workloads.Webserver.default_config with
      requests = 200;
      doc_size = 8_192;
      doc_size_spread = 4_096 }
  in
  let run ~ncpus ~shards =
    let t = Core.boot_with { Core.Config.default with ncpus = Some ncpus; dcache_shards = Some shards } in
    let insts = Workloads.Smp.webserver_instances ~config:cfg (Core.sys t) ncpus in
    let r = Workloads.Smp.run (Core.sys t) insts in
    Printf.printf
      "ncpus=%d shards=%-2d steps=%4d makespan=%9d cyc  tput=%8.0f req/s  \
       acq=%5d contended=%5d spin=%9d\n"
      ncpus shards r.Workloads.Smp.steps r.Workloads.Smp.makespan
      (float_of_int r.Workloads.Smp.steps
      /. Ksim.Sim_clock.cycles_to_seconds r.Workloads.Smp.makespan)
      r.Workloads.Smp.lock_acquisitions r.Workloads.Smp.contended
      r.Workloads.Smp.spin_cycles
  in
  List.iter
    (fun ncpus ->
      run ~ncpus ~shards:1;
      run ~ncpus ~shards:64)
    [ 1; 2; 4; 8 ]
