(* Compiling a buggy kernel module with KGCC (§3.4): the bounds-checking
   compiler inserts runtime checks backed by a splay-tree object map, so
   the off-by-one below is caught at the faulty line — before it corrupts
   adjacent kernel memory.

   Run with:  dune exec examples/kgcc_boundscheck.exe *)

let module_source =
  {|
int parse_header(char *buf, int len) {
  int magic = 0;
  int i;
  for (i = 0; i <= len; i++) {     /* BUG: should be i < len */
    magic = magic * 31 + buf[i];
  }
  return magic;
}

int main(void) {
  char *hdr = malloc(16);
  memset(hdr, 7, 16);
  int m = parse_header(hdr, 16);
  free(hdr);
  return m;
}
|}

let mk_interp () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space =
    Ksim.Address_space.create ~name:"mod" ~mem ~clock ~cost:Ksim.Cost_model.default ()
  in
  (clock, Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.default ~base_vpn:16 ~pages:64)

let () =
  (* with plain GCC the overflow reads whatever follows the buffer *)
  Printf.printf "--- compiled with GCC (no checks) ---\n";
  let _, plain = mk_interp () in
  ignore (Minic.Interp.parse_and_load plain ~file:"module.c" module_source);
  (match Minic.Interp.run plain "main" with
  | v -> Printf.printf "module returned %d — the overflow went UNDETECTED\n" v
  | exception _ -> Printf.printf "crashed\n");

  (* with KGCC the first out-of-bounds dereference is flagged *)
  Printf.printf "\n--- compiled with KGCC ---\n";
  let clock, checked = mk_interp () in
  let runtime = Kgcc.Kgcc_runtime.create ~clock ~cost:Ksim.Cost_model.default () in
  Kgcc.Kgcc_runtime.attach runtime checked;
  let program = Minic.Parser.parse_program ~file:"module.c" module_source in
  let compiled = Kgcc.Compile.compile program in
  Printf.printf "%s\n" (Fmt.str "%a" Kgcc.Compile.pp_result compiled);
  ignore (Minic.Interp.load_program checked compiled.Kgcc.Compile.program);
  (match Minic.Interp.run checked "main" with
  | v -> Printf.printf "unexpectedly returned %d\n" v
  | exception Kgcc.Kgcc_runtime.Bounds_violation { addr; line; detail } ->
      Printf.printf "BOUNDS VIOLATION at module.c:%d (address 0x%x)\n  %s\n" line addr detail);
  let stats = Kgcc.Kgcc_runtime.stats runtime in
  Printf.printf "checks executed: %d, splay lookups: %d, rotations: %d\n"
    stats.Kgcc.Kgcc_runtime.checks_executed stats.Kgcc.Kgcc_runtime.splay_lookups
    stats.Kgcc.Kgcc_runtime.splay_rotations;

  (* show a snippet of what the instrumented code looks like *)
  Printf.printf "\ninstrumented parse_header:\n%s\n"
    (match Minic.Ast.find_func compiled.Kgcc.Compile.program "parse_header" with
    | Some f -> Fmt.str "%a" Minic.Pretty.pp_func f
    | None -> "<missing>")
