(* Quickstart: boot a simulated kernel, do some file I/O through the
   syscall layer, and look at what it cost.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Boot a kernel with the default memfs root filesystem. *)
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in

  (* Ordinary POSIX-flavoured syscalls.  Each one crosses the simulated
     user/kernel boundary and is charged virtual cycles. *)
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/home"));
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/home/hello.txt" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "hello, kernel!\n")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));

  let contents =
    Core.ok (Core.Syscall.sys_open_read_close sys ~path:"/home/hello.txt" ~maxlen:4096)
  in
  Printf.printf "file contents: %S\n" (Bytes.to_string contents);

  (* What did that cost?  The kernel tracks boundary crossings, data
     copies, and virtual time. *)
  let kernel = Core.kernel t in
  Printf.printf "syscalls issued      : %d\n" (Core.Systable.total_syscalls sys);
  Printf.printf "boundary crossings   : %d\n" (Ksim.Kernel.crossings kernel);
  Printf.printf "bytes copied in      : %d\n" (Ksim.Kernel.bytes_from_user kernel);
  Printf.printf "bytes copied out     : %d\n" (Ksim.Kernel.bytes_to_user kernel);
  Printf.printf "virtual time elapsed : %d cycles (%.6f s at 1.7 GHz)\n"
    (Ksim.Kernel.now kernel)
    (Ksim.Sim_clock.cycles_to_seconds (Ksim.Kernel.now kernel));

  (* The same work as a single Cosy compound: one crossing total. *)
  let exec = Core.cosy t in
  let c = Cosy.Cosy_lib.create () in
  let buf = Cosy.Cosy_lib.alloc_shared c 4096 in
  let fd = Cosy.Cosy_lib.syscall c "open" [ Cosy.Cosy_op.Str "/home/hello.txt"; Cosy.Cosy_op.Const 0 ] in
  let n = Cosy.Cosy_lib.syscall c "read" [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const 4096 ] in
  ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
  let before = Ksim.Kernel.crossings kernel in
  let slots = Cosy.Cosy_exec.submit exec (Cosy.Cosy_lib.finish c) in
  Printf.printf "cosy: read %d bytes in %d boundary crossing(s)\n" slots.(n)
    (Ksim.Kernel.crossings kernel - before)
