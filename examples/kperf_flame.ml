(* Flamegraph a traced run end to end: boot with the kperf tracer
   enabled, push a metadata-heavy workload through the syscall layer,
   then print the three views the tracer exports —

     - folded stacks (pipe to flamegraph.pl or paste into speedscope)
     - the top-N self-profile ("where did the cycles go")
     - a Chrome trace_event file for Perfetto / chrome://tracing

   Every span carries the simulated-cycle timestamps, so the flamegraph
   is exact, not sampled: syscall spans from the dispatcher, I/O spans
   from the block device, lock-contention spans from the spinlocks, all
   parented causally across the user/kernel boundary.

   Run with:  dune exec examples/kperf_flame.exe *)

let () =
  let t = Core.boot_with { Core.Config.default with trace = Some true } in
  let sys = Core.sys t in

  (* a small postmark mix: creates, reads, appends, unlinks *)
  let cfg =
    { Workloads.Postmark.default_config with files = 40; transactions = 150 }
  in
  ignore (Workloads.Postmark.run ~config:cfg sys);

  (* ... and one batched submission, so the trace shows syscall spans
     nested under a ring:enter span (one crossing, many calls) *)
  let ring = Core.ring t in
  ignore
    (Core.Ring.run_batch ring
       [
         Core.Req.Mkdir { path = "/batch" };
         Core.Req.Open_write_close
           {
             path = "/batch/doc";
             data = Bytes.of_string "traced";
             flags = Core.o_create;
           };
         Core.Req.Stat { path = "/batch/doc" };
       ]);

  let perf = Core.perf t in
  Fmt.pr "=== kperf: traced postmark + one kring batch ===@.";
  Fmt.pr "events emitted: %d  (ring drops: %d, overwritten: %d)@.@."
    (Core.Perf.emitted perf) (Core.Perf.drops perf)
    (Core.Perf.overwritten perf);

  Fmt.pr "--- top spans by self cycles ---@.";
  Fmt.pr "%a@." Core.Perf.pp_top (Core.Perf.top ~n:8 perf);

  Fmt.pr "--- folded stacks (first 12 lines; feed to flamegraph.pl) ---@.";
  let folded = Core.Perf.folded perf in
  String.split_on_char '\n' folded
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> if l <> "" then Fmt.pr "  %s@." l);
  Fmt.pr "  ...@.@.";

  let out = "kperf_flame.trace.json" in
  let oc = open_out out in
  output_string oc (Core.Perf.chrome_json perf);
  close_out oc;
  Fmt.pr "wrote %s — open in https://ui.perfetto.dev@." out
