(* C10K-style serving over knet (§2.2): one process, one epoll loop,
   thousands of concurrent connections.  The same client population is
   served twice — once with read(2)+send(2), where every response byte
   crosses the user/kernel boundary twice (copied out of the page cache,
   then copied back in toward the socket), and once with sendfile(2),
   which stages the file straight from the page cache to the send queue.
   The client-side stream digests prove both servers put byte-identical
   responses on the wire; the crossing and copy counters show what each
   paid for them.

   Run with:  dune exec examples/knet_c10k.exe *)

let ndocs = 16
let conns = 1_000
let requests_per_conn = 3
let doc_path i = Printf.sprintf "/www/%d" i
let doc_size i = 512 + (i * 173 mod 1_536)

(* which document a given request asks for — shared with the clients *)
let doc_of ~conn ~req = ((conn * 7) + (req * 3)) mod ndocs

let setup_docs sys =
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/www"));
  for i = 0 to ndocs - 1 do
    let data = Bytes.make (doc_size i) (Char.chr (97 + (i mod 26))) in
    ignore
      (Core.ok
         (Core.Syscall.sys_open_write_close sys ~path:(doc_path i) ~data
            ~flags:Core.o_create))
  done

(* responses are framed as an 8-byte little-endian body length, then the
   body — the framing knet's traffic generator expects *)
let header len =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int len);
  b

(* a blocking send for example purposes: when the send queue is full,
   step the network simulation (the NIC drain is what frees space) *)
let rec send_all sys net ~sock data =
  if Bytes.length data > 0 then
    match Core.Syscall.sys_send sys ~sock ~data with
    | Ok n when n = Bytes.length data -> ()
    | Ok n -> send_all sys net ~sock (Bytes.sub data n (Bytes.length data - n))
    | Error Kvfs.Vtypes.ENOBUFS ->
        ignore (Knet.step net);
        send_all sys net ~sock data
    | Error e -> failwith (Fmt.str "send: %a" Kvfs.Vtypes.pp_errno e)

let rec sendfile_all sys net ~sock ~fd ~off ~len =
  if len > 0 then
    match Core.Syscall.sys_sendfile_sock sys ~sock ~fd ~off ~len with
    | Ok n when n = len -> ()
    | Ok n -> sendfile_all sys net ~sock ~fd ~off:(off + n) ~len:(len - n)
    | Error Kvfs.Vtypes.ENOBUFS ->
        ignore (Knet.step net);
        sendfile_all sys net ~sock ~fd ~off ~len
    | Error e -> failwith (Fmt.str "sendfile: %a" Kvfs.Vtypes.pp_errno e)

(* drain complete "GET <i>" lines out of a connection's input buffer *)
let take_lines buf =
  let s = Buffer.contents buf in
  Buffer.clear buf;
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.add_string buf (String.sub s !start (String.length s - !start));
  List.rev !lines

let respond mode sys net ~sock line =
  let doc = int_of_string (String.sub line 4 (String.length line - 4)) in
  match mode with
  | `Read_send ->
      (* four syscalls, and the body crosses the boundary twice: page
         cache -> user buffer (read), user buffer -> socket (send) *)
      let fd =
        Core.ok (Core.Syscall.sys_open sys ~path:(doc_path doc) ~flags:Core.o_rdonly)
      in
      let data = Core.ok (Core.Syscall.sys_read sys ~fd ~len:(doc_size doc)) in
      ignore (Core.Syscall.sys_close sys ~fd);
      send_all sys net ~sock (header (Bytes.length data));
      send_all sys net ~sock data
  | `Sendfile ->
      (* only the 8-byte header is user data; the body never leaves the
         kernel *)
      let fd, st =
        Core.ok (Core.Syscall.sys_open_fstat sys ~path:(doc_path doc) ~flags:Core.o_rdonly)
      in
      send_all sys net ~sock (header st.Kvfs.Vtypes.st_size);
      sendfile_all sys net ~sock ~fd ~off:0 ~len:st.Kvfs.Vtypes.st_size;
      ignore (Core.Syscall.sys_close sys ~fd)

let serve mode =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  let net = Core.net t in
  setup_docs sys;
  let lsock = Core.Syscall.sys_socket sys in
  Core.ok (Core.Syscall.sys_bind sys ~sock:lsock ~port:80);
  Core.ok (Core.Syscall.sys_listen sys ~sock:lsock ~backlog:128);
  let ep = Core.Syscall.sys_epoll_create sys in
  Core.ok
    (Core.Syscall.sys_epoll_ctl sys ~ep ~sock:lsock ~add:true ~mask:Knet.ep_in
       ~cookie:lsock);
  Knet.Traffic.install net
    {
      Knet.Traffic.default with
      Knet.Traffic.port = 80;
      conns;
      requests_per_conn;
      pipeline = 1;
      req_of = (fun ~conn ~req -> Printf.sprintf "GET %d\n" (doc_of ~conn ~req));
    };
  let inbufs = Hashtbl.create 256 in
  let kernel = Core.kernel t in
  let crossings0 = Ksim.Kernel.crossings kernel in
  let copied0 = Ksim.Kernel.bytes_to_user kernel + Ksim.Kernel.bytes_from_user kernel in
  let close_conn sock =
    ignore (Core.Syscall.sys_epoll_ctl sys ~ep ~sock ~add:false ~mask:0 ~cookie:0);
    ignore (Core.Syscall.sys_close sys ~fd:sock);
    Hashtbl.remove inbufs sock
  in
  let handle (cookie, _mask) =
    if cookie = lsock then
      (* accept everything queued; register each conn for readability *)
      let rec accept_all () =
        match Core.Syscall.sys_accept sys ~sock:lsock with
        | Ok sock ->
            Core.ok
              (Core.Syscall.sys_epoll_ctl sys ~ep ~sock ~add:true
                 ~mask:Knet.ep_in ~cookie:sock);
            Hashtbl.replace inbufs sock (Buffer.create 64);
            accept_all ()
        | Error _ -> ()
      in
      accept_all ()
    else
      match Core.Syscall.sys_recv sys ~sock:cookie ~len:4096 with
      | Ok b when Bytes.length b = 0 -> close_conn cookie (* EOF *)
      | Ok b ->
          let buf = Hashtbl.find inbufs cookie in
          Buffer.add_bytes buf b;
          List.iter (respond mode sys net ~sock:cookie) (take_lines buf)
      | Error _ -> ()
  in
  let running = ref true in
  while !running do
    match Core.Syscall.sys_epoll_wait sys ~ep ~max:64 with
    | Ok [] -> running := false (* traffic heap exhausted: clients done *)
    | Ok events -> List.iter handle events
    | Error _ -> running := false
  done;
  ( Knet.Traffic.completed net ~port:80,
    Knet.Traffic.digest net ~port:80,
    Ksim.Kernel.crossings kernel - crossings0,
    Ksim.Kernel.bytes_to_user kernel
    + Ksim.Kernel.bytes_from_user kernel
    - copied0 )

let () =
  Printf.printf "serving %d connections x %d requests over knet epoll\n\n" conns
    requests_per_conn;
  let done_rs, digest_rs, crossings_rs, copied_rs = serve `Read_send in
  let done_sf, digest_sf, crossings_sf, copied_sf = serve `Sendfile in
  Printf.printf "read+send: %5d conns served, %7d crossings, %9d bytes copied\n"
    done_rs crossings_rs copied_rs;
  Printf.printf "sendfile : %5d conns served, %7d crossings, %9d bytes copied\n"
    done_sf crossings_sf copied_sf;
  Printf.printf "\nsendfile saved %d crossings and %d copied bytes (%.1f%% of copies)\n"
    (crossings_rs - crossings_sf)
    (copied_rs - copied_sf)
    (100. *. float_of_int (copied_rs - copied_sf) /. float_of_int copied_rs);
  assert (done_rs = conns && done_sf = conns);
  assert (digest_rs = digest_sf);
  print_endline "response streams byte-identical across both servers"
