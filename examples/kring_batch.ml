(* The same small-file workload two ways: one trap per syscall, and
   batched through the kring submission/completion ring at batch size 32
   (one submit crossing drains the whole queue; replies are reaped from
   the completion queue without crossing again).

   Run with:  dune exec examples/kring_batch.exe -- [nops] *)

let batch = 32

(* mkdir + (nops-1) small file writes, as typed syscall descriptors the
   synchronous dispatcher and the ring both accept *)
let mk_reqs nops =
  Core.Req.Mkdir { path = "/data" }
  :: List.init (nops - 1) (fun i ->
         Core.Req.Open_write_close
           {
             path = Printf.sprintf "/data/f%03d" (i + 1);
             data = Bytes.of_string (Printf.sprintf "record %03d" (i + 1));
             flags = Core.o_create;
           })

let crossings t =
  match Core.Stats.find (Core.stats t) "kernel.crossings" with
  | Some (Core.Stats.Counter_v v) -> v
  | _ -> 0

(* every file's name and contents, for the byte-identical check *)
let readback sys =
  List.map
    (fun (d : Core.Vtypes.dirent) ->
      ( d.Core.Vtypes.d_name,
        Bytes.to_string
          (Core.ok
             (Core.Syscall.sys_open_read_close sys
                ~path:("/data/" ^ d.Core.Vtypes.d_name) ~maxlen:256)) ))
    (Core.ok (Core.Syscall.sys_readdir sys ~path:"/data"))
  |> List.sort compare

let () =
  let nops = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64 in
  Core.Stats.default_enabled := true;
  let reqs = mk_reqs nops in

  (* synchronous: every call is its own kernel crossing *)
  let t1 = Core.boot_with Core.Config.default in
  List.iter (fun r -> ignore (Core.Syscall.dispatch (Core.sys t1) r)) reqs;
  let sync_crossings = crossings t1 in

  (* ring: push 32 at a time, one enter per batch *)
  let t2 = Core.boot_with Core.Config.default in
  let ring = Core.ring ~sq_entries:batch t2 in
  let completions = Core.Ring.run_batch ring reqs in
  let ring_crossings = crossings t2 in

  let failures =
    List.length
      (List.filter
         (fun (c : Core.Ring.completion) -> Result.is_error c.Core.Ring.reply)
         completions)
  in
  Printf.printf "%d file ops (%d completions, %d errors):\n"
    (List.length reqs) (List.length completions) failures;
  Printf.printf "  synchronous      : %4d kernel crossings\n" sync_crossings;
  Printf.printf "  ring (batch %2d)  : %4d kernel crossings\n" batch
    ring_crossings;
  Printf.printf "  => %.1fx fewer crossings\n"
    (float_of_int sync_crossings /. float_of_int (max 1 ring_crossings));

  (* the two filesystems must end up byte-identical *)
  let a = readback (Core.sys t1) and b = readback (Core.sys t2) in
  assert (a = b);
  assert (List.length completions = List.length reqs);
  assert (sync_crossings >= 10 * ring_crossings);
  Printf.printf "  filesystem contents byte-identical (%d files verified)\n"
    (List.length a)
