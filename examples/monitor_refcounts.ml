(* Watching kernel invariants with the event-monitoring framework (§3.3):
   reference counters, spinlocks, and interrupt balance, both through
   in-kernel on-line monitors and a user-space logger fed by the
   lock-free ring buffer.

   Run with:  dune exec examples/monitor_refcounts.exe *)

let () =
  let t = Core.boot_with Core.Config.default in
  let dispatcher = Core.enable_monitoring t in
  let monitors = Kmonitor.Monitors.register_standard dispatcher in

  (* a user-space logger on the character device *)
  let chardev = Kmonitor.Chardev.create (Core.kernel t) dispatcher in
  let lib =
    Kmonitor.Libkernevents.create
      ~strategy:(Kmonitor.Libkernevents.Blocking { low_water = 1 }) chardev
  in
  let log_lines = ref [] in
  Kmonitor.Libkernevents.add_sink lib ~name:"printer" (fun ev ->
      log_lines := Fmt.str "%a" Ksim.Instrument.pp_event ev :: !log_lines);

  (* healthy kernel activity: balanced lock/unlock, get/put *)
  let lock = Ksim.Spinlock.create "inode_lock" in
  let count = Ksim.Refcount.create "inode-42" in
  for _ = 1 to 3 do
    Ksim.Spinlock.lock ~file:"example.ml" ~line:28 lock;
    Ksim.Refcount.get ~file:"example.ml" ~line:29 count;
    ignore (Ksim.Refcount.put ~file:"example.ml" ~line:30 count);
    Ksim.Spinlock.unlock ~file:"example.ml" ~line:31 lock
  done;

  (* ...and a buggy path: a refcount that leaks and irqs left disabled *)
  Ksim.Refcount.get ~file:"buggy.c" ~line:101 count;
  Ksim.Kernel.irq_disable ~file:"buggy.c" ~line:102 (Core.kernel t);

  Kmonitor.Libkernevents.drain lib;
  Core.disable_monitoring t;

  Printf.printf "events dispatched : %d\n" (Kmonitor.Dispatcher.events dispatcher);
  Printf.printf "events logged     : %d\n" (Kmonitor.Libkernevents.consumed lib);
  Printf.printf "\nuser-space log (newest first, truncated):\n";
  List.iteri (fun i l -> if i < 6 then Printf.printf "  %s\n" l) !log_lines;

  Printf.printf "\non-line monitor findings:\n";
  let leaks = Kmonitor.Monitors.refcount_leaks monitors.Kmonitor.Monitors.refcounts ~resting:1 in
  List.iter
    (fun (obj, c) -> Printf.printf "  refcount obj=%d leaked (resting count %d)\n" obj c)
    leaks;
  let violations = Kmonitor.Monitors.all_violations monitors in
  if violations = [] then Printf.printf "  no hard violations (the leak shows at teardown)\n"
  else
    List.iter
      (fun v -> Printf.printf "  VIOLATION: %s\n" (Fmt.str "%a" Kmonitor.Monitors.pp_violation v))
      violations;
  Printf.printf "  interrupts still disabled at depth %d (buggy.c:102 never re-enabled)\n"
    (Ksim.Kernel.irq_depth (Core.kernel t))
